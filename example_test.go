package grout_test

import (
	"fmt"
	"log"

	"grout"
)

// The paper's Listing 1, ported to Go: build a kernel from CUDA-C source
// at runtime, fill a framework-managed array, launch, read results back.
// Swapping GrCUDA for GrOUT (and the matching constructor) is the entire
// port between single-node and distributed execution — paper Listing 2.
func Example() {
	cluster, err := grout.NewSimulatedCluster(grout.Config{
		Workers: 2, Policy: "round-robin", Numeric: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := cluster.Context

	build, err := ctx.Eval(grout.GrOUT, "buildkernel")
	if err != nil {
		log.Fatal(err)
	}
	square, err := build.Build.Build(`
extern "C" __global__ void square(float *x, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { x[i] = x[i] * x[i]; }
}`, "pointer float, sint32")
	if err != nil {
		log.Fatal(err)
	}

	xv, err := ctx.Eval(grout.GrOUT, "float[100]")
	if err != nil {
		log.Fatal(err)
	}
	x := xv.Array
	for i := int64(0); i < 100; i++ {
		if err := x.Set(i, float64(i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := square.Configure(4, 32).Launch(x, 100); err != nil {
		log.Fatal(err)
	}
	for _, i := range []int64{2, 9, 99} {
		v, err := x.Get(i)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("x[%d] = %g\n", i, v)
	}
	// Output:
	// x[2] = 4
	// x[9] = 81
	// x[99] = 9801
}

// Pre-compiled (native) kernels resolve by name, without source.
func Example_prebuiltKernel() {
	single := grout.NewSingleNode(true)
	ctx := single.Context

	build, _ := ctx.Eval(grout.GrCUDA, "buildkernel")
	axpy, err := build.Build.Prebuilt("axpy")
	if err != nil {
		log.Fatal(err)
	}
	yv, _ := ctx.Eval(grout.GrCUDA, "float[4]")
	xv, _ := ctx.Eval(grout.GrCUDA, "float[4]")
	for i := int64(0); i < 4; i++ {
		_ = yv.Array.Set(i, 1)
		_ = xv.Array.Set(i, float64(i))
	}
	if err := axpy.Configure(1, 4).Launch(yv.Array, xv.Array, 10.0, 4); err != nil {
		log.Fatal(err)
	}
	v, _ := yv.Array.Get(3)
	fmt.Println(v)
	// Output:
	// 31
}

// Validate configuration before constructing a deployment.
func ExampleConfig_Validate() {
	good := grout.Config{Workers: 4, Policy: "min-transfer-time", Level: "high"}
	fmt.Println(good.Validate())

	bad := grout.Config{Policy: "teleport"}
	fmt.Println(bad.Validate() != nil)
	// Output:
	// <nil>
	// true
}
