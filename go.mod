module grout

go 1.22
