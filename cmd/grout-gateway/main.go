// grout-gateway runs the multi-tenant session gateway: one controller
// fleet shared by many concurrent client programs. Tenants connect with
// grout.Dial (or internal/server.Dial) and get a private array
// namespace, a weighted-fair share of the admission queue, and an
// array-byte quota; /healthz and /metrics expose the gateway's
// operational state.
//
// The fleet is either simulated in-process (-sim-workers, the default)
// or real grout-worker processes (-workers addr,addr,...). With
// -shards N (simulated fleets only) the control plane is split into N
// controller shards behind the same gateway address: each shard owns a
// static partition of the workers and its own drain goroutine, and
// tenants are routed to shards by consistent hash (DESIGN.md §5.8).
//
// Usage:
//
//	grout-gateway -listen :7080 -http :7081 -sim-workers 4 -policy round-robin
//	grout-gateway -listen :7080 -sim-workers 16 -shards 4
//	grout-gateway -listen :7080 -workers w1:7070,w2:7070 -max-inflight 16
//	grout-gateway -listen :7080 -sim-workers 8 -rate 500 -burst 32 -shed-depth 256
//
// Production-traffic knobs (DESIGN.md §5.9): -rate/-burst shape each
// session's admission with a lazily refilled token bucket, -class sets
// the load-shedding priority class, and -shed-depth arms class-based
// shedding when a shard's admission backlog saturates. Clients dialed
// with grout.Dial additionally honor the gateway's backpressure
// advisories, pacing themselves as queues run hot.
//
// Flag convention: 0 means the built-in default, negative disables.
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"grout"
	"grout/internal/core"
	"grout/internal/memmodel"
	"grout/internal/server"
)

func main() {
	listen := flag.String("listen", ":7080", "address to serve tenant sessions on")
	httpAddr := flag.String("http", "", "address for /healthz and /metrics (empty disables)")
	workers := flag.String("workers", "", "comma-separated grout-worker addresses (empty = simulated fleet)")
	simWorkers := flag.Int("sim-workers", 4, "simulated workers when -workers is empty")
	shards := flag.Int("shards", 1, "controller shards over the simulated fleet (1 = classic single controller)")
	pol := flag.String("policy", "round-robin", "inter-node scheduling policy")
	level := flag.String("level", "", "online policy exploration level: low, medium or high (empty = medium)")
	maxInflight := flag.Int("max-inflight", 0, "per-session in-flight CE cap (0 = unlimited, negative = 1)")
	quotaMiB := flag.Int("quota-mib", 0, "per-session array-byte quota in MiB (0 = unlimited)")
	weight := flag.Int("weight", 1, "per-session weight in the round-robin drain")
	rate := flag.Float64("rate", 0, "per-session admission rate limit in launches/sec (0 = unlimited)")
	burst := flag.Int("burst", 0, "token-bucket burst allowance when -rate is set (0 = 16 default)")
	class := flag.Int("class", 0, "session priority class for load shedding (higher classes shed later)")
	shedDepth := flag.Int("shed-depth", 0, "class-0 shed threshold in queued launches per shard (0 disables shedding)")
	queueDepth := flag.Int("queue-depth", 0, "per-session launch queue depth (0 = 64 default, negative = 1)")
	acceptLoops := flag.Int("accept-loops", 1, "concurrent accept goroutines on the listener (raise for dial bursts)")
	failover := flag.Bool("failover", true, "survive worker failures via lineage recovery")
	optWindow := flag.Int("optimize-window", 0, "lookahead optimizer window in CEs (0 = 32 default, negative disables; DESIGN.md §5.6)")
	flag.Parse()

	logger := log.New(os.Stderr, "grout-gateway: ", log.LstdFlags)
	if *maxInflight < 0 {
		*maxInflight = 1
	}
	if *rate > 0 && *burst == 0 {
		*burst = 16
	}

	cfg := grout.Config{
		Policy:         *pol,
		Level:          *level,
		Numeric:        true,
		Pipeline:       true,
		Failover:       *failover,
		OptimizeWindow: *optWindow,
	}
	if *shards < 1 {
		logger.Fatal("-shards must be positive")
	}
	if *shards > 1 && *workers != "" {
		logger.Fatal("-shards requires a simulated fleet; remote fleets run one controller")
	}

	serverOpts := server.Options{
		Limits: core.SessionLimits{
			MaxInflightCEs: *maxInflight,
			MaxArrayBytes:  memmodel.Bytes(*quotaMiB) * memmodel.MiB,
			Weight:         *weight,
			RatePerSec:     *rate,
			Burst:          *burst,
			Class:          *class,
		},
		QueueDepth:  *queueDepth,
		ShedDepth:   *shedDepth,
		AcceptLoops: *acceptLoops,
		Logger:      logger,
	}
	var g *server.Gateway
	var cleanup func()
	switch {
	case *workers != "":
		addrs := strings.Split(*workers, ",")
		r, err := grout.Connect(addrs, cfg)
		if err != nil {
			logger.Fatal(err)
		}
		cleanup = func() { _ = r.Close() }
		logger.Printf("connected to %d workers", len(addrs))
		g, err = server.New(r.Controller, *listen, serverOpts)
		if err != nil {
			cleanup()
			logger.Fatal(err)
		}
	case *shards > 1:
		if *simWorkers < *shards {
			logger.Fatalf("-shards %d needs at least %d simulated workers", *shards, *shards)
		}
		cfg.Workers = *simWorkers
		cfg.Shards = *shards
		sc, err := grout.NewShardedCluster(cfg)
		if err != nil {
			logger.Fatal(err)
		}
		cleanup = func() { _ = sc.Close() }
		logger.Printf("simulated fleet of %d workers across %d controller shards",
			*simWorkers, *shards)
		g, err = server.NewSharded(sc.Plane.Controllers, sc.Plane.Route, *listen, serverOpts)
		if err != nil {
			cleanup()
			logger.Fatal(err)
		}
	default:
		if *simWorkers < 1 {
			logger.Fatal("-sim-workers must be positive")
		}
		cfg.Workers = *simWorkers
		clu, err := grout.NewSimulatedCluster(cfg)
		if err != nil {
			logger.Fatal(err)
		}
		cleanup = func() { _ = clu.Close() }
		logger.Printf("simulated fleet of %d workers", *simWorkers)
		g, err = server.New(clu.Controller, *listen, serverOpts)
		if err != nil {
			cleanup()
			logger.Fatal(err)
		}
	}
	logger.Printf("serving tenant sessions on %s (policy %s)", g.Addr(), *pol)

	var httpSrv *http.Server
	if *httpAddr != "" {
		httpSrv = &http.Server{Addr: *httpAddr, Handler: g.Handler()}
		go func() {
			logger.Printf("metrics on http://%s/metrics", *httpAddr)
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Printf("http: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Printf("shutting down")
	if httpSrv != nil {
		_ = httpSrv.Close()
	}
	if err := g.Close(); err != nil {
		logger.Printf("close: %v", err)
	}
	cleanup()
}
