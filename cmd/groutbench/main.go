// groutbench regenerates the paper's evaluation figures on the simulated
// cluster. Each figure prints as an aligned text table; see EXPERIMENTS.md
// for the paper-vs-measured comparison.
//
// Usage:
//
//	groutbench -fig all        # every figure (default)
//	groutbench -fig 6a         # one of: 1, 6a, 6b, 7, 8, 9
//	groutbench -fig 9 -ces 256 # Fig 9 with a shorter CE stream
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"grout/internal/bench"
	"grout/internal/cluster"
	"grout/internal/core"
	"grout/internal/gpusim"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/policy"
	"grout/internal/workloads"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1, 5, 6a, 6b, 7, 8, 9, fusion, ablation, scaling, whatif, oversub, uvmbench, recovery or all")
	ces := flag.Int("ces", 512, "CE stream length for Fig 9's overhead measurement and the recovery figure's chain")
	runWL := flag.String("run", "", "run one workload instead of a figure: bs, mle, cg, mv, images, deep, or a UVMBench one (kmeans, logreg, conv, bfs, pagerank, spmv, triad, stencil2d)")
	size := flag.String("size", "32GiB", "footprint for -run")
	workers := flag.Int("workers", 2, "worker count for -run (0 = single-node baseline)")
	polName := flag.String("policy", "vector-step", "policy for -run: "+strings.Join(policy.Names(), ", "))
	level := flag.String("level", "medium", "exploration level for -run online policies")
	prefetch := flag.String("prefetch", "", "UVM prefetch policy for -run workers: "+strings.Join(gpusim.PrefetchPolicyNames(), ", "))
	evict := flag.String("evict", "", "UVM eviction policy for -run workers: "+strings.Join(gpusim.EvictionPolicyNames(), ", "))
	chromeTrace := flag.String("chrome-trace", "", "write the -run CE schedule as Chrome trace JSON to this file")
	gantt := flag.Bool("gantt", false, "print the -run CE schedule as an ASCII Gantt chart")
	flag.Parse()

	if *runWL != "" {
		if err := runOne(*runWL, *size, *workers, *polName, *level, *prefetch, *evict, *chromeTrace, *gantt); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	run := func(name string, fn func()) {
		start := time.Now()
		fn()
		fmt.Fprintf(os.Stderr, "[%s regenerated in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := strings.ToLower(*fig)
	matched := false
	sel := func(name string) bool {
		if want == "all" || want == name {
			matched = true
			return true
		}
		return false
	}

	if sel("1") {
		run("fig 1", func() {
			bench.PrintSeries(os.Stdout,
				"Fig 1: Black-Scholes execution time (s) on one node vs input size",
				"size GiB ->", "%.2f", []bench.Series{bench.Fig1()})
		})
	}
	if sel("5") {
		run("fig 5", func() {
			fmt.Println("Fig 5: workload CE-dependency DAGs (Graphviz DOT)")
			dags := bench.Fig5DAGs()
			for _, name := range []string{"mle", "cg", "mv"} {
				fmt.Printf("// ---- %s ----\n%s\n", name, dags[name])
			}
		})
	}
	if sel("6a") {
		run("fig 6a", func() {
			bench.PrintSeries(os.Stdout,
				"Fig 6a: single-node slowdown vs the 4 GiB run (GrCUDA baseline)",
				"size GiB ->", "%.1f", bench.Fig6a())
		})
	}
	if sel("6b") {
		run("fig 6b", func() {
			bench.PrintSeries(os.Stdout,
				"Fig 6b: GrOUT two-node slowdown vs the 4 GiB run (vector-step)",
				"size GiB ->", "%.1f", bench.Fig6b())
		})
	}
	if sel("7") {
		run("fig 7", func() {
			bench.PrintSeries(os.Stdout,
				"Fig 7: GrOUT (2 nodes) speedup over single node per oversubscription factor",
				"factor ->", "%.2f", bench.Fig7())
		})
	}
	if sel("8") {
		run("fig 8", func() {
			bench.PrintFig8(os.Stdout, bench.Fig8())
		})
	}
	if sel("9") {
		run("fig 9", func() {
			bench.PrintSeries(os.Stdout,
				"Fig 9: controller scheduling overhead per CE (wall-clock µs) vs node count",
				"nodes ->", "%.1f", bench.Fig9(*ces))
		})
	}
	if sel("fusion") {
		run("fusion", func() {
			bench.PrintSeries(os.Stdout,
				"Optimizer window: caller-blocked wall-clock per CE (µs) — serial vs pipelined vs pipelined+opt",
				"nodes ->", "%.1f", bench.Fig9Compare(*ces))
		})
	}
	if sel("ablation") {
		run("ablations", func() {
			bench.PrintSeries(os.Stdout,
				"Ablation: hand-tuned UVM (advise+prefetch) vs scale-out — BS, seconds",
				"size GiB ->", "%.2f", bench.AblationHandTuning())
			m, s := bench.AblationStreamOverlap(16 * memmodel.GiB)
			fmt.Printf("Ablation: transfer/computation overlap (BS 16 GiB, 8 partitions):\n"+
				"  multi-stream %.3fs, single-stream %.3fs -> overlap saves %.1f%%\n",
				m.Seconds(), s.Seconds(), 100*(1-m.Seconds()/s.Seconds()))
		})
	}
	if sel("whatif") {
		run("hardware what-if", func() {
			bench.PrintSeries(os.Stdout,
				"What-if: BS on one node of each GPU generation (seconds)",
				"size GiB ->", "%.2f", bench.WhatIfHardware())
			fmt.Println("(-1 = footprint exceeds the node's host memory: allocation impossible)")
			fmt.Println("scale-up moves the knee (V100: 32 GiB/node, A100: 80 GiB/node); it does not remove it")
		})
	}
	if sel("scaling") {
		run("strong scaling", func() {
			var series []bench.Series
			for _, w := range []string{"mle", "cg", "mv"} {
				series = append(series,
					bench.StrongScaling(w, 128*memmodel.GiB, []int{1, 2, 4, 8, 16}))
			}
			bench.PrintSeries(os.Stdout,
				"Strong scaling: execution time (s) at 128 GiB vs node count",
				"nodes ->", "%.1f", series)
		})
	}
	if sel("oversub") {
		run("oversubscription cliff", func() {
			for _, pattern := range workloads.AllPatterns() {
				series, pts, err := bench.FigOversub(pattern)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				bench.PrintSeries(os.Stdout, fmt.Sprintf(
					"Oversubscription sweep (%s): modeled seconds per launch per prefetch+evict combo",
					pattern), "factor ->", "%.2f", series)
				factors := workloads.DefaultSweepFactors()
				fmt.Printf("Cliff per combo (%s):\n%s\n", pattern,
					bench.FmtOversubCliffs(pts, factors[len(factors)-1]))
			}
		})
	}
	if sel("uvmbench") {
		run("uvmbench scale-out", func() {
			factors := workloads.DefaultSweepFactors()
			for _, name := range []string{"spmv", "bfs", "pagerank", "triad", "kmeans"} {
				series, pts, err := bench.FigUVMBench(name, workloads.UVMSweepConfig{})
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				bench.PrintSeries(os.Stdout, fmt.Sprintf(
					"UVMBench %s: modeled makespan (s) vs footprint over one worker's device memory",
					name), "factor ->", "%.2f", series)
				fmt.Printf("Cliff per fleet size (%s):\n%s\n", name,
					bench.FmtUVMCliffs(pts, factors[len(factors)-1]))
			}
		})
	}
	if sel("recovery") {
		run("recovery overhead", func() {
			rep, err := bench.RecoveryOverhead(*ces)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("Recovery: lineage replay after killing the chain tip's only holder\n"+
				"  workload: in-place axpy chain of %d CEs over 2 workers; worker 2\n"+
				"  killed at its launch #%d with the sole copy of the chain tip\n"+
				"  clean run wall-clock:   %10v\n"+
				"  faulted run wall-clock: %10v  (%d failover(s), %d array(s) recovered)\n"+
				"  controller time inside recovery: %v\n"+
				"  overhead vs clean: %.1f%%  (results verified bit-identical)\n",
				rep.CEs, rep.KillAt,
				rep.CleanWall.Round(time.Microsecond),
				rep.FaultWall.Round(time.Microsecond),
				rep.Failovers, rep.Recoveries,
				rep.RecoveryTime.Round(time.Microsecond),
				rep.OverheadPct())
		})
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "unknown figure %q (want 1, 5, 6a, 6b, 7, 8, 9, fusion, ablation, scaling, whatif, oversub, uvmbench, recovery or all)\n", *fig)
		os.Exit(2)
	}
}

// runOne executes a single workload configuration and reports its
// schedule, optionally exporting a Chrome trace.
func runOne(workload, sizeStr string, workers int, polName, levelName, prefetch, evict, tracePath string, gantt bool) error {
	foot, err := memmodel.ParseBytes(sizeStr)
	if err != nil {
		return err
	}
	w, ok := workloads.FullSuite()[workload]
	if !ok {
		return fmt.Errorf("unknown workload %q", workload)
	}
	p := workloads.Params{Footprint: foot}

	if workers <= 0 {
		if prefetch != "" || evict != "" {
			return fmt.Errorf("-prefetch/-evict need a worker fleet (-workers >= 1)")
		}
		r := bench.RunSingle(workload, p)
		if r.Err != nil {
			return r.Err
		}
		fmt.Printf("%s %v on 1 node (GrCUDA baseline): %.3fs simulated%s\n",
			workload, foot, r.Seconds(), capNote(r.Capped))
		return nil
	}

	lvl, err := policy.LevelFromName(levelName)
	if err != nil {
		return err
	}
	pol, err := policy.New(polName, bench.TunedVector(workload), lvl)
	if err != nil {
		return err
	}
	clu := cluster.New(cluster.PaperSpec(workers))
	fab := core.NewLocalFabric(clu, kernels.StdRegistry(), false)
	if prefetch != "" || evict != "" {
		for _, id := range fab.Workers() {
			if err := fab.Runtime(id).Node().UseMemoryPolicies(prefetch, evict); err != nil {
				return err
			}
		}
	}
	ctl := core.NewController(fab, pol, core.Options{})
	s := &workloads.Grout{Ctl: ctl}
	if err := w.Build(s, p); err != nil {
		return err
	}
	fmt.Printf("%s %v on %d nodes (%s): %.3fs simulated, %v moved, %d P2P, %v sched/CE\n",
		workload, foot, workers, pol.Name(), ctl.Elapsed().Seconds(),
		ctl.MovedBytes(), ctl.P2PMoves(), ctl.MeanSchedulingOverhead())
	rep := bench.Utilization(ctl, fab)
	for _, wu := range rep.Workers {
		fmt.Printf("  %-9v kernels %-5d pages in %-9d evicted %-9d written back %d\n",
			wu.Node, wu.KernelsRun, wu.PagesMigratedIn, wu.PagesEvicted, wu.PagesWrittenBack)
	}
	if gantt {
		if err := ctl.WriteGantt(os.Stdout, 100); err != nil {
			return err
		}
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := ctl.WriteChromeTrace(f); err != nil {
			return err
		}
		fmt.Printf("Chrome trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", tracePath)
	}
	return nil
}

func capNote(capped bool) string {
	if capped {
		return " (capped at 2.5h)"
	}
	return ""
}
