// grout-controller connects to remote grout-worker processes and runs a
// demonstration workload across them: a runtime-compiled Black–Scholes
// kernel over a partitioned portfolio, with per-worker statistics. It is
// the deployment counterpart of the simulated experiments — the same
// Controller code over real sockets.
//
// With -shards N the worker list is split into N contiguous partitions,
// one independent controller shard per partition (DESIGN.md §5.8); the
// portfolio partitions are dealt round-robin across the shards, and
// statistics are reported per shard.
//
// Usage:
//
//	grout-worker -listen :7070 &   # on each worker machine
//	grout-worker -listen :7071 &
//	grout-controller -workers localhost:7070,localhost:7071 -policy round-robin
//	grout-controller -workers w1:7070,w2:7070,w3:7070,w4:7070 -shards 2
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"strings"
	"time"

	"grout"
)

const bsKernel = `
extern "C" __global__ void bs_price(float *call, float *put, const float *spot, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        float K = 100.0f;
        float r = 0.05f;
        float vol = 0.2f;
        float T = 1.0f;
        float s = spot[i];
        if (s <= 0.0f) {
            call[i] = 0.0f;
            put[i] = K * expf(0.0f - r * T);
            return;
        }
        float sigRt = vol * sqrtf(T);
        float d1 = (logf(s / K) + (r + vol * vol / 2.0f) * T) / sigRt;
        float d2 = d1 - sigRt;
        call[i] = s * 0.5f * erfcf((0.0f - d1) / sqrtf(2.0f))
                - K * expf(0.0f - r * T) * 0.5f * erfcf((0.0f - d2) / sqrtf(2.0f));
        put[i] = K * expf(0.0f - r * T) * 0.5f * erfcf(d2 / sqrtf(2.0f))
               - s * 0.5f * erfcf(d1 / sqrtf(2.0f));
    }
}`

func main() {
	workers := flag.String("workers", "localhost:7070", "comma-separated worker addresses")
	shards := flag.Int("shards", 1, "controller shards; the worker list is split contiguously across them")
	policyName := flag.String("policy", "round-robin",
		"inter-node policy: "+strings.Join(grout.Policies(), ", "))
	level := flag.String("level", "medium", "exploration level for online policies")
	partitions := flag.Int("partitions", 4, "portfolio partitions (CEs)")
	elems := flag.Int("elems", 4096, "options per partition")
	pipeline := flag.Bool("pipeline", false, "overlap CE dispatch with scheduling (DESIGN.md §5.1)")
	optWindow := flag.Int("optimize-window", 0, "lookahead optimizer window in CEs (0 = 32 default, negative disables; DESIGN.md §5.6)")
	wire := flag.String("wire", "framed", "wire protocol: framed (binary, dedicated bulk channel) or gob (legacy, one release)")
	chunk := flag.Int("chunk", 0, "bulk-transfer chunk bytes (0 = 256 KiB default; clamped to [4 KiB, 64 MiB))")
	failover := flag.Bool("failover", false, "survive worker failures: reroute CEs and replay lost arrays from lineage (DESIGN.md §5.4)")
	retries := flag.Int("retries", 0, "retry a transiently-failing worker this many times before writing it off")
	retryBackoff := flag.Duration("retry-backoff", 0, "base retry delay, doubling per attempt (0 = 50ms default)")
	dialTimeout := flag.Duration("dial-timeout", 0, "TCP connect deadline (0 = 5s default, negative disables)")
	callTimeout := flag.Duration("call-timeout", 0, "control round-trip deadline (0 = 30s default, negative disables)")
	chunkTimeout := flag.Duration("chunk-timeout", 0, "bulk-transfer per-chunk progress deadline (0 = 30s default, negative disables)")
	flag.Parse()

	addrs := strings.Split(*workers, ",")
	if *shards < 1 || *shards > len(addrs) {
		log.Fatalf("-shards %d needs between 1 and %d (the worker count)", *shards, len(addrs))
	}
	cfg := grout.Config{
		Policy: *policyName, Level: *level, Pipeline: *pipeline,
		OptimizeWindow: *optWindow,
		Wire:           *wire, ChunkBytes: *chunk,
		Failover: *failover, RetryAttempts: *retries, RetryBackoff: *retryBackoff,
		DialTimeout: *dialTimeout, CallTimeout: *callTimeout, ChunkTimeout: *chunkTimeout,
	}

	// One Remote (controller + TCP fabric) per shard, over a contiguous
	// slice of the worker list; shard 0 gets any remainder.
	remotes := make([]*grout.Remote, *shards)
	per := len(addrs) / *shards
	extra := len(addrs) % *shards
	lo := 0
	for s := range remotes {
		n := per
		if s < extra {
			n++
		}
		r, err := grout.Connect(addrs[lo:lo+n], cfg)
		if err != nil {
			log.Fatal(err)
		}
		defer r.Close()
		remotes[s] = r
		lo += n
	}
	fmt.Printf("connected to %d worker(s) across %d shard(s); policy %s\n",
		len(addrs), *shards, *policyName)

	// Build the kernel on every shard: each controller compiles for its
	// own partition's workers.
	kerns := make([]*grout.Kernel, *shards)
	for s, r := range remotes {
		build, err := r.Context.Eval(grout.GrOUT, "buildkernel")
		if err != nil {
			log.Fatal(err)
		}
		k, err := build.Build.Build(bsKernel,
			"pointer float, pointer float, const pointer float, sint32")
		if err != nil {
			log.Fatal(err)
		}
		kerns[s] = k
	}

	start := time.Now()
	type part struct{ spot, call, put *grout.DeviceArray }
	parts := make([]part, *partitions)
	for p := range parts {
		// Portfolio partitions are dealt round-robin across shards; each
		// partition's arrays and launch stay on its shard's controller.
		s := p % *shards
		ctx := remotes[s].Context
		mk := func() *grout.DeviceArray {
			v, err := ctx.Eval(grout.GrOUT, fmt.Sprintf("float[%d]", *elems))
			if err != nil {
				log.Fatal(err)
			}
			return v.Array
		}
		parts[p] = part{spot: mk(), call: mk(), put: mk()}
		for i := 0; i < *elems; i++ {
			if err := parts[p].spot.Set(int64(i), 40+float64((i+p*13)%120)); err != nil {
				log.Fatal(err)
			}
		}
		grid := (*elems + 255) / 256
		if err := kerns[s].Configure(grid, 256).Launch(
			parts[p].call, parts[p].put, parts[p].spot, *elems); err != nil {
			log.Fatal(err)
		}
	}

	// Verify put-call parity across every partition.
	worst := 0.0
	for _, p := range parts {
		for i := int64(0); i < int64(*elems); i += 97 {
			s, _ := p.spot.Get(i)
			c, _ := p.call.Get(i)
			pu, _ := p.put.Get(i)
			if d := math.Abs((c - pu) - (s - 100*math.Exp(-0.05))); d > worst {
				worst = d
			}
		}
	}
	fmt.Printf("priced %d options in %v (wall clock); worst parity error %.2e\n",
		*partitions**elems, time.Since(start).Round(time.Millisecond), worst)

	for s, r := range remotes {
		if *shards > 1 {
			fmt.Printf("shard %d:\n", s)
		}
		for _, id := range r.Fabric.Workers() {
			st, err := r.Fabric.Stats(id)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %v: %d kernels executed, %d arrays resident\n", id, st.Kernels, st.Arrays)
		}
		fmt.Printf("  scheduling overhead per CE: %v\n", r.Controller.MeanSchedulingOverhead())
	}
}
