// grout-worker runs one GrOUT Worker: a GrCUDA runtime over a simulated
// multi-GPU node, serving the controller protocol on TCP. Start one per
// machine, then point grout-controller (or grout.Connect) at them.
//
// Usage:
//
//	grout-worker -listen :7070 -gpus 2 -gpu-mem 16 -host-mem 180
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"grout/internal/gpusim"
	"grout/internal/memmodel"
	"grout/internal/transport"
)

func main() {
	listen := flag.String("listen", ":7070", "address to listen on")
	gpus := flag.Int("gpus", 2, "simulated GPUs on this node")
	gpuMem := flag.Int("gpu-mem", 16, "GiB of memory per simulated GPU")
	hostMem := flag.Int("host-mem", 180, "GiB of host memory")
	name := flag.String("name", "worker", "node name in logs")
	chunk := flag.Int("chunk", 0, "chunk bytes for outgoing bulk streams (0 = 256 KiB default; clamped to [4 KiB, 64 MiB))")
	dialTimeout := flag.Duration("dial-timeout", 0, "deadline for dialing peer workers on push transfers (0 = 5s default, negative disables)")
	chunkTimeout := flag.Duration("chunk-timeout", 0, "per-chunk write deadline on outgoing bulk streams (0 = 30s default, negative disables)")
	prefetch := flag.String("prefetch", "", "UVM prefetch policy: "+strings.Join(gpusim.PrefetchPolicyNames(), ", ")+" (empty = eager)")
	evict := flag.String("evict", "", "UVM eviction policy: "+strings.Join(gpusim.EvictionPolicyNames(), ", ")+" (empty = lru)")
	flag.Parse()

	if *gpus < 1 || *gpuMem < 1 || *hostMem < 1 {
		log.Fatal("grout-worker: -gpus, -gpu-mem and -host-mem must be positive")
	}
	spec := gpusim.NodeSpec{
		Name:       *name,
		HostMemory: memmodel.Bytes(*hostMem) * memmodel.GiB,
	}
	for i := 0; i < *gpus; i++ {
		d := gpusim.V100Spec(fmt.Sprintf("%s/gpu%d", *name, i))
		d.Memory = memmodel.Bytes(*gpuMem) * memmodel.GiB
		spec.Devices = append(spec.Devices, d)
	}

	logger := log.New(os.Stderr, "grout-worker: ", log.LstdFlags)
	srv, err := transport.NewWorkerServerOpts(*listen, spec, logger,
		transport.ServerOptions{
			ChunkBytes:   *chunk,
			DialTimeout:  *dialTimeout,
			ChunkTimeout: *chunkTimeout,
			Prefetch:     *prefetch,
			Evict:        *evict,
		})
	if err != nil {
		log.Fatal(err)
	}
	logger.Printf("%s serving %d simulated GPUs (%d GiB each) on %s",
		*name, *gpus, *gpuMem, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Printf("shutting down")
	if err := srv.Close(); err != nil {
		logger.Printf("close: %v", err)
	}
}
