// Benchmarks regenerating every figure of the paper's evaluation, plus
// micro-benchmarks of the scheduling-critical paths. Figure benchmarks
// report the headline quantity of the figure as a custom metric so
// `go test -bench .` doubles as a regression check on the reproduced
// shapes (see EXPERIMENTS.md for the paper-vs-measured discussion).
package grout

import (
	"testing"

	"grout/internal/bench"
	"grout/internal/cluster"
	"grout/internal/core"
	"grout/internal/dag"
	"grout/internal/gpusim"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/minicuda"
	"grout/internal/policy"
	"grout/internal/workloads"
)

// BenchmarkFig1BlackScholesOversub regenerates Figure 1: Black–Scholes
// execution time vs input size on one node. Reports the oversubscription
// wall (time ratio 96 GiB / 64 GiB) as "wall_x".
func BenchmarkFig1BlackScholesOversub(b *testing.B) {
	var wall float64
	for i := 0; i < b.N; i++ {
		s := bench.Fig1()
		wall = s.Points[3].Value / s.Points[2].Value
	}
	b.ReportMetric(wall, "wall_x")
}

// BenchmarkFig6aSingleNodeSlowdown regenerates Figure 6a. Reports MV's
// 64→96 GiB step (paper: 342.6×) as "mv_step_x".
func BenchmarkFig6aSingleNodeSlowdown(b *testing.B) {
	var step float64
	for i := 0; i < b.N; i++ {
		for _, s := range bench.Fig6a() {
			if s.Name == "mv" {
				step = s.Points[3].Value / s.Points[2].Value
			}
		}
	}
	b.ReportMetric(step, "mv_step_x")
}

// BenchmarkFig6bGroutSlowdown regenerates Figure 6b. Reports MV's 64→96
// GiB step under GrOUT (paper: 4.1×) as "mv_step_x".
func BenchmarkFig6bGroutSlowdown(b *testing.B) {
	var step float64
	for i := 0; i < b.N; i++ {
		for _, s := range bench.Fig6b() {
			if s.Name == "mv" {
				step = s.Points[3].Value / s.Points[2].Value
			}
		}
	}
	b.ReportMetric(step, "mv_step_x")
}

// BenchmarkFig7Speedup regenerates Figure 7. Reports MV's speedup at 5×
// oversubscription (paper: >24.42×) as "mv_speedup_x".
func BenchmarkFig7Speedup(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		for _, s := range bench.Fig7() {
			if s.Name == "mv" {
				speedup = s.Points[5].Value
			}
		}
	}
	b.ReportMetric(speedup, "mv_speedup_x")
}

// BenchmarkFig8PolicyComparison regenerates Figure 8. Reports the MV
// online-policy pathology (normalized vs round-robin; paper: ≥100×) as
// "mv_online_norm".
func BenchmarkFig8PolicyComparison(b *testing.B) {
	var norm float64
	for i := 0; i < b.N; i++ {
		for _, e := range bench.Fig8() {
			if e.Workload == "mv" && e.Policy == "min-transfer-size" && e.Level == policy.Low {
				norm = e.Normalized
			}
		}
	}
	b.ReportMetric(norm, "mv_online_norm")
}

// BenchmarkFig9SchedulingOverhead regenerates Figure 9. Reports the
// informed-policy overhead at 256 nodes (paper: ~200 µs) as "us_256nodes".
func BenchmarkFig9SchedulingOverhead(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		for _, s := range bench.Fig9(128) {
			if s.Name == "min-transfer-time" {
				us = s.Points[len(s.Points)-1].Value
			}
		}
	}
	b.ReportMetric(us, "us_256nodes")
}

// --- Micro-benchmarks of the scheduling-critical paths. ---

// BenchmarkPolicyAssign measures one inter-node scheduling decision at the
// paper's largest cluster size (the inner loop of Figure 9).
func BenchmarkPolicyAssign(b *testing.B) {
	for _, mk := range []struct {
		name string
		pol  policy.Policy
	}{
		{"round-robin/256", policy.NewRoundRobin()},
		{"min-transfer-size/256", policy.NewMinTransferSize(policy.Medium)},
	} {
		b.Run(mk.name, func(b *testing.B) {
			nodes := make([]policy.NodeInfo, 256)
			for i := range nodes {
				nodes[i] = policy.NodeInfo{
					ID:       cluster.NodeID(i + 1),
					UpToDate: memmodel.Bytes(i) * memmodel.MiB,
					Transfer: memmodel.Bytes(256-i) * memmodel.MiB,
				}
			}
			req := policy.Request{Total: 256 * memmodel.MiB, Nodes: nodes}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mk.pol.Assign(req)
			}
		})
	}
}

// BenchmarkDAGAdd measures dependency resolution per CE on a growing
// Global DAG (Algorithm 1's first phase).
func BenchmarkDAGAdd(b *testing.B) {
	g := dag.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ce := g.NewCE("k", []dag.Access{
			{Array: dag.ArrayID(i%16 + 1), Mode: memmodel.ReadWrite},
			{Array: dag.ArrayID(i%7 + 20), Mode: memmodel.Read},
		}, nil)
		g.Add(ce)
	}
}

// BenchmarkUVMLaunch measures one simulated kernel launch including page
// accounting at 8 GiB working set.
func BenchmarkUVMLaunch(b *testing.B) {
	node := gpusim.NewNode(gpusim.OCIWorkerSpec("bench"))
	id, err := node.Alloc(8 * memmodel.GiB)
	if err != nil {
		b.Fatal(err)
	}
	acc := memmodel.Access{Mode: memmodel.ReadWrite, Pattern: memmodel.Sequential, Fraction: 1, Passes: 1}
	var ready int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := node.Launch(0, 0, gpusim.KernelCost{Elements: 1 << 20, OpsPerElement: 1},
			[]gpusim.ArgBinding{{Alloc: id, Access: acc}}, 0)
		if err != nil {
			b.Fatal(err)
		}
		ready = int64(res.Interval.End)
	}
	_ = ready
}

// BenchmarkMinicudaCompile measures runtime kernel compilation (the NVRTC
// path of buildkernel).
func BenchmarkMinicudaCompile(b *testing.B) {
	src := `
extern "C" __global__ void saxpy(float *y, const float *x, float a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { y[i] = y[i] + a * x[i]; }
}`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := minicuda.Compile(src, ""); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinicudaInterpret measures interpreted kernel throughput
// (elements per launch = 4096).
func BenchmarkMinicudaInterpret(b *testing.B) {
	src := `
extern "C" __global__ void saxpy(float *y, const float *x, float a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { y[i] = y[i] + a * x[i]; }
}`
	def, err := minicuda.Compile(src, "")
	if err != nil {
		b.Fatal(err)
	}
	y := kernels.NewBuffer(memmodel.Float32, 4096)
	x := kernels.NewBuffer(memmodel.Float32, 4096)
	args := []kernels.Arg{kernels.BufArg(y), kernels.BufArg(x),
		kernels.ScalarArg(2), kernels.ScalarArg(4096)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := def.ExecuteLaunch(16, 256, args); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkControllerLaunch measures a full Algorithm-1 scheduling round
// trip on the in-process fabric (DAG add + policy + movement planning +
// worker submit), cost-model-only.
func BenchmarkControllerLaunch(b *testing.B) {
	clu := cluster.New(cluster.PaperSpec(2))
	fab := core.NewLocalFabric(clu, kernels.StdRegistry(), false)
	ctl := core.NewController(fab, policy.NewMinTransferSize(policy.Medium), core.Options{})
	arr, err := ctl.NewArray(memmodel.Float32, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	inv := core.Invocation{Kernel: "relu",
		Args: []core.ArgRef{core.ArrRef(arr.ID), core.ScalarRef(float64(1 << 20))}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctl.Launch(inv); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadBuildMV measures full workload submission (25 CEs) at
// 8 GiB on the baseline, the end-to-end cost of the simulation approach.
func BenchmarkWorkloadBuildMV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.RunSingle("mv", workloads.Params{Footprint: 8 * memmodel.GiB})
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
}
