package grout

import (
	"testing"
	"time"

	"grout/internal/core"
	"grout/internal/gpusim"
	"grout/internal/memmodel"
	"grout/internal/server"
	"grout/internal/transport"
)

const squareSrc = `
extern "C" __global__ void square(float *x, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { x[i] = x[i] * x[i]; }
}`

// driveListing1 runs the paper's Listing 1 program against any context.
func driveListing1(t *testing.T, ctx *Context, lang Language) {
	t.Helper()
	b, err := ctx.Eval(lang, "buildkernel")
	if err != nil {
		t.Fatal(err)
	}
	square, err := b.Build.Build(squareSrc, "pointer float, sint32")
	if err != nil {
		t.Fatal(err)
	}
	x, err := ctx.Eval(lang, "float[100]")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		if err := x.Array.Set(i, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := square.Configure(4, 32).Launch(x.Array, 100); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int64{0, 7, 99} {
		v, err := x.Array.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		if v != float64(i*i) {
			t.Fatalf("x[%d] = %v, want %d", i, v, i*i)
		}
	}
}

func TestSimulatedClusterQuickstart(t *testing.T) {
	c, err := NewSimulatedCluster(Config{Workers: 2, Policy: "round-robin", Numeric: true})
	if err != nil {
		t.Fatal(err)
	}
	driveListing1(t, c.Context, GrOUT)
	if c.Controller.Elapsed() == 0 {
		t.Fatalf("no virtual time recorded")
	}
}

func TestSingleNodeQuickstart(t *testing.T) {
	s := NewSingleNode(true)
	driveListing1(t, s.Context, GrCUDA)
}

func TestRemoteQuickstartOverTCP(t *testing.T) {
	w1, err := transport.NewWorkerServer("127.0.0.1:0", gpusim.OCIWorkerSpec("w1"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Close()
	w2, err := transport.NewWorkerServer("127.0.0.1:0", gpusim.OCIWorkerSpec("w2"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	r, err := Connect([]string{w1.Addr(), w2.Addr()}, Config{Policy: "round-robin"})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	driveListing1(t, r.Context, GrOUT)
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := (Config{Workers: -1}).Validate(); err == nil {
		t.Fatalf("negative workers accepted")
	}
	if err := (Config{Policy: "bogus"}).Validate(); err == nil {
		t.Fatalf("bogus policy accepted")
	}
	if err := (Config{Policy: "min-transfer-size", Level: "extreme"}).Validate(); err == nil {
		t.Fatalf("bogus level accepted")
	}
	if err := (Config{Policy: "min-transfer-time", Level: "high"}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestPoliciesListed(t *testing.T) {
	ps := Policies()
	if len(ps) != 6 {
		t.Fatalf("policies = %v", ps)
	}
}

func TestDefaultConfigDefaults(t *testing.T) {
	c, err := NewSimulatedCluster(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.Fabric.Workers()); got != 2 {
		t.Fatalf("default workers = %d, want 2", got)
	}
	if c.Controller.Policy().Name() != "vector-step" {
		t.Fatalf("default policy = %s", c.Controller.Policy().Name())
	}
}

// Close must be idempotent and safe after a failed Connect: callers
// write `r, err := Connect(...); defer r.Close()` and only then check
// err, so a nil receiver must not panic.
func TestCloseIdempotentAndNilSafe(t *testing.T) {
	r, err := Connect([]string{"127.0.0.1:1"}, Config{DialTimeout: 50 * time.Millisecond})
	if err == nil {
		t.Fatal("Connect to a dead port succeeded")
	}
	if cerr := r.Close(); cerr != nil {
		t.Fatalf("Close after failed Connect: %v", cerr)
	}
	var nilRemote *Remote
	if cerr := nilRemote.Close(); cerr != nil {
		t.Fatalf("nil Remote Close: %v", cerr)
	}
	var nilCluster *Cluster
	if cerr := nilCluster.Close(); cerr != nil {
		t.Fatalf("nil Cluster Close: %v", cerr)
	}
	if cerr := (&Remote{}).Close(); cerr != nil {
		t.Fatalf("zero Remote Close: %v", cerr)
	}

	c, err := NewSimulatedCluster(Config{Pipeline: true, Numeric: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if cerr := c.Close(); cerr != nil {
			t.Fatalf("Cluster Close #%d: %v", i+1, cerr)
		}
	}

	w, err := transport.NewWorkerServer("127.0.0.1:0", gpusim.OCIWorkerSpec("w"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	r2, err := Connect([]string{w.Addr()}, Config{Policy: "round-robin"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if cerr := r2.Close(); cerr != nil {
			t.Fatalf("Remote Close #%d: %v", i+1, cerr)
		}
	}
}

// Dial gives a workloads.Session view onto a multi-tenant gateway.
func TestDialGateway(t *testing.T) {
	c, err := NewSimulatedCluster(Config{Workers: 2, Policy: "round-robin", Numeric: true, Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	g, err := server.New(c.Controller, "127.0.0.1:0", server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	sess, err := Dial(g.Addr(), "quickstart")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	id, err := sess.NewArray(memmodel.Float32, 32)
	if err != nil {
		t.Fatal(err)
	}
	sess.Buffer(id).Fill(-2)
	if err := sess.HostWrite(id); err != nil {
		t.Fatal(err)
	}
	if err := sess.Launch("relu", 0, 0, core.ArrRef(id), core.ScalarRef(32)); err != nil {
		t.Fatal(err)
	}
	if err := sess.HostRead(id); err != nil {
		t.Fatal(err)
	}
	if got := sess.Buffer(id).At(7); got != 0 {
		t.Fatalf("relu result = %v, want 0", got)
	}
}
