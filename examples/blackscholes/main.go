// Black–Scholes option pricing — the paper's Figure 1 workload. This
// example does two things:
//
//  1. Prices a small portfolio numerically on a distributed GrOUT cluster
//     and verifies put-call parity, demonstrating correct distributed
//     execution with real data.
//
//  2. Sweeps the portfolio's memory footprint past the GPUs' capacity in
//     cost-model-only mode, reproducing Figure 1's oversubscription wall
//     on a single node and GrOUT's recovery on two nodes.
package main

import (
	"fmt"
	"log"
	"math"

	"grout"
	"grout/internal/bench"
	"grout/internal/memmodel"
	"grout/internal/policy"
	"grout/internal/workloads"
)

const bsKernel = `
extern "C" __global__ void bs_price(float *call, float *put, const float *spot, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        float K = 100.0f;
        float r = 0.05f;
        float vol = 0.2f;
        float T = 1.0f;
        float s = spot[i];
        if (s <= 0.0f) {
            call[i] = 0.0f;
            put[i] = K * expf(0.0f - r * T);
            return;
        }
        float sigRt = vol * sqrtf(T);
        float d1 = (logf(s / K) + (r + vol * vol / 2.0f) * T) / sigRt;
        float d2 = d1 - sigRt;
        float nd1 = 0.5f * erfcf((0.0f - d1) / sqrtf(2.0f));
        float nd2 = 0.5f * erfcf((0.0f - d2) / sqrtf(2.0f));
        float nmd1 = 0.5f * erfcf(d1 / sqrtf(2.0f));
        float nmd2 = 0.5f * erfcf(d2 / sqrtf(2.0f));
        call[i] = s * nd1 - K * expf(0.0f - r * T) * nd2;
        put[i] = K * expf(0.0f - r * T) * nmd2 - s * nmd1;
    }
}`

func main() {
	priceNumerically()
	sweepOversubscription()
}

// priceNumerically runs the runtime-compiled kernel on real data across
// two workers and checks put-call parity.
func priceNumerically() {
	cluster, err := grout.NewSimulatedCluster(grout.Config{
		Workers: 2, Policy: "round-robin", Numeric: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := cluster.Context
	build, err := ctx.Eval(grout.GrOUT, "buildkernel")
	if err != nil {
		log.Fatal(err)
	}
	price, err := build.Build.Build(bsKernel,
		"pointer float, pointer float, const pointer float, sint32")
	if err != nil {
		log.Fatal(err)
	}

	const n = 1024
	mk := func() *grout.DeviceArray {
		v, err := ctx.Eval(grout.GrOUT, fmt.Sprintf("float[%d]", n))
		if err != nil {
			log.Fatal(err)
		}
		return v.Array
	}
	spot, call, put := mk(), mk(), mk()
	for i := int64(0); i < n; i++ {
		if err := spot.Set(i, 40+float64(i)*0.12); err != nil {
			log.Fatal(err)
		}
	}
	if err := price.Configure(8, 128).Launch(call, put, spot, n); err != nil {
		log.Fatal(err)
	}

	worst := 0.0
	for i := int64(0); i < n; i++ {
		s, _ := spot.Get(i)
		c, _ := call.Get(i)
		p, _ := put.Get(i)
		parity := math.Abs((c - p) - (s - 100*math.Exp(-0.05)))
		if parity > worst {
			worst = parity
		}
	}
	fmt.Printf("priced %d options on 2 nodes; worst put-call parity error %.2e\n", n, worst)
	if worst > 1e-2 {
		log.Fatalf("put-call parity violated")
	}
	c0, _ := call.Get(500)
	s0, _ := spot.Get(500)
	fmt.Printf("  e.g. spot %.2f -> call %.4f\n", s0, c0)
}

// sweepOversubscription reproduces Figure 1's shape: execution time vs
// footprint on one node, plus the two-node recovery.
func sweepOversubscription() {
	fmt.Println("\nFigure 1 sweep (simulated time, seconds; * = capped at 2.5h):")
	fmt.Printf("%12s %16s %16s\n", "size", "single node", "GrOUT 2 nodes")
	for _, size := range []memmodel.Bytes{
		4 * memmodel.GiB, 32 * memmodel.GiB, 64 * memmodel.GiB, 96 * memmodel.GiB,
	} {
		p := workloads.Params{Footprint: size}
		single := bench.RunSingle("bs", p)
		vs, _ := policy.NewVectorStep([]int{1})
		dist := bench.RunGrout("bs", p, 2, vs)
		fmt.Printf("%12v %15.2f%s %15.2f%s\n", size,
			single.Seconds(), capMark(single.Capped),
			dist.Seconds(), capMark(dist.Capped))
	}
}

func capMark(capped bool) string {
	if capped {
		return "*"
	}
	return " "
}
