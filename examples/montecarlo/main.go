// Monte-Carlo estimation of pi, written entirely in the mini-CUDA dialect
// and distributed over two simulated nodes: each partition's kernel draws
// quasi-random points from a Weyl sequence (deterministic, so the run is
// reproducible), counts hits in the unit circle with atomicAdd, and the
// host combines the per-partition counts. Exercises runtime compilation,
// __device__ helpers, atomics and scale-out in one program.
package main

import (
	"fmt"
	"log"
	"math"

	"grout"
)

const mcSrc = `
__device__ double weyl(double n, double alpha) {
    double v = n * alpha;
    return v - floor(v);
}

extern "C" __global__ void mc_pi(float *hits, double seed, int samples) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < samples) {
        double n = (double) i + seed;
        double x = weyl(n, 0.7548776662466927);
        double y = weyl(n, 0.5698402909980532);
        if (x * x + y * y <= 1.0) {
            atomicAdd(&hits[0], 1.0);
        }
    }
}`

func main() {
	cluster, err := grout.NewSimulatedCluster(grout.Config{
		Workers: 2, Policy: "round-robin", Numeric: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := cluster.Context
	build, err := ctx.Eval(grout.GrOUT, "buildkernel")
	if err != nil {
		log.Fatal(err)
	}
	mc, err := build.Build.Build(mcSrc, "pointer float, double, sint32")
	if err != nil {
		log.Fatal(err)
	}

	const partitions = 4
	const samplesPerPartition = 200_000
	var counters []*grout.DeviceArray
	for p := 0; p < partitions; p++ {
		hv, err := ctx.Eval(grout.GrOUT, "float[1]")
		if err != nil {
			log.Fatal(err)
		}
		counters = append(counters, hv.Array)
		grid := (samplesPerPartition + 255) / 256
		if err := mc.Configure(grid, 256).Launch(
			hv.Array, float64(p*samplesPerPartition), samplesPerPartition); err != nil {
			log.Fatal(err)
		}
	}

	var hits float64
	for _, c := range counters {
		v, err := c.Get(0)
		if err != nil {
			log.Fatal(err)
		}
		hits += v
	}
	total := float64(partitions * samplesPerPartition)
	pi := 4 * hits / total
	fmt.Printf("samples: %.0f across %d partitions on 2 nodes\n", total, partitions)
	fmt.Printf("pi ~= %.5f (error %.2e)\n", pi, math.Abs(pi-math.Pi))
	if math.Abs(pi-math.Pi) > 0.01 {
		log.Fatalf("estimate too far off")
	}
	fmt.Printf("simulated time: %v\n", cluster.Controller.Elapsed())
}
