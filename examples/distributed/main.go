// Distributed deployment demo: worker servers listening on real TCP
// sockets (here spawned in-process on loopback; in production via
// cmd/grout-worker on separate machines), a controller connected over the
// transport fabric, a kernel compiled from source and distributed to every
// worker, data shipped over the wire, and a peer-to-peer transfer between
// workers — the full architecture of the paper's Figure 3, with real
// serialization on every hop.
package main

import (
	"fmt"
	"log"

	"grout"
	"grout/internal/gpusim"
	"grout/internal/transport"
)

const normalizeSrc = `
extern "C" __global__ void normalize(float *x, const float *minmax, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        float lo = minmax[0];
        float hi = minmax[1];
        x[i] = (x[i] - lo) / (hi - lo);
    }
}`

func main() {
	// Start two worker processes (in-process here; the CLI equivalent is
	// `grout-worker -listen :7070` on each machine).
	var addrs []string
	for i := 0; i < 2; i++ {
		w, err := transport.NewWorkerServer("127.0.0.1:0",
			gpusim.OCIWorkerSpec(fmt.Sprintf("worker%d", i+1)), nil)
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
		addrs = append(addrs, w.Addr())
		fmt.Printf("worker %d listening on %s\n", i+1, w.Addr())
	}

	remote, err := grout.Connect(addrs, grout.Config{Policy: "round-robin"})
	if err != nil {
		log.Fatal(err)
	}
	defer remote.Close()
	ctx := remote.Context

	build, err := ctx.Eval(grout.GrOUT, "buildkernel")
	if err != nil {
		log.Fatal(err)
	}
	// The kernel source is compiled on the controller AND shipped to
	// every worker over TCP.
	norm, err := build.Build.Build(normalizeSrc,
		"pointer float, const pointer float, sint32")
	if err != nil {
		log.Fatal(err)
	}

	const n = 512
	xv, err := ctx.Eval(grout.GrOUT, fmt.Sprintf("float[%d]", n))
	if err != nil {
		log.Fatal(err)
	}
	mv, err := ctx.Eval(grout.GrOUT, "float[2]")
	if err != nil {
		log.Fatal(err)
	}
	x, minmax := xv.Array, mv.Array
	for i := int64(0); i < n; i++ {
		if err := x.Set(i, 10+float64(i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := minmax.Set(0, 10); err != nil {
		log.Fatal(err)
	}
	if err := minmax.Set(1, 10+float64(n-1)); err != nil {
		log.Fatal(err)
	}

	// Two launches: round-robin places them on different workers, so x
	// travels controller -> worker1, then worker1 -> worker2 P2P.
	if err := norm.Configure(4, 128).Launch(x, minmax, n); err != nil {
		log.Fatal(err)
	}
	if err := norm.Configure(4, 128).Launch(x, minmax, n); err != nil {
		log.Fatal(err)
	}

	first, _ := x.Get(0)
	last, _ := x.Get(n - 1)
	fmt.Printf("double-normalized over 2 remote workers: x[0]=%g x[%d]=%g\n", first, n-1, last)
	// After the first pass x[n-1] = 1; the second pass maps it to
	// (1-10)/(n-1).
	want := (1.0 - 10.0) / float64(n-1)
	if diff := last - want; diff > 1e-6 || diff < -1e-6 {
		log.Fatalf("unexpected result %v, want %v", last, want)
	}
	fmt.Printf("controller issued %d P2P transfer(s)\n", remote.Controller.P2PMoves())
	for _, id := range remote.Fabric.Workers() {
		st, err := remote.Fabric.Stats(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %v: %d kernels, %d arrays resident\n", id, st.Kernels, st.Arrays)
	}
}
