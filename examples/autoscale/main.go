// Autoscaling — the paper's §V-F discussion: "a heuristical model could
// be built to autonomously allocate more resources at runtime after
// reaching the steep increase in execution time". Earlier revisions of
// this example approximated that by restarting a fresh cluster at each
// size; this one exercises the real mechanism (DESIGN.md §5.9): ONE
// deployment is provisioned with the maximum fleet, only one node is
// rostered active (grout.Config.ActiveWorkers), and a KPI loop calls
// Controller.AddWorker on the RUNNING controller — arrays stay where
// they are, in-flight work keeps streaming, and each new node becomes a
// scheduling candidate for the CEs admitted after the call.
//
// The second act demonstrates the other direction: RetireWorker drains
// and MIGRATES a node's sole-copy arrays to the survivors (failover
// counter untouched), so scaling back in mid-workload is bit-identical
// to never having scaled at all.
package main

import (
	"fmt"

	"grout"
	"grout/internal/cluster"
	"grout/internal/core"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/sim"
)

const (
	maxFleet   = 8
	arrays     = 40
	arrayBytes = 2 * memmodel.GiB // 80 GiB total: 2.5x one 2x16 GiB node
	kpiSeconds = 35.0             // per-round KPI
)

func main() {
	scaleOut()
	scaleIn()
}

// scaleOut is the KPI loop: start on one node of a provisioned-but-idle
// fleet and AddWorker live until a round over the working set meets the
// KPI or the standby pool runs dry. Cost-model-only data (Numeric
// false) keeps the 48 GiB working set free.
func scaleOut() {
	clu, err := grout.NewSimulatedCluster(grout.Config{
		Workers:       maxFleet,
		ActiveWorkers: 1,
		Policy:        "round-robin",
		Pipeline:      true,
	})
	if err != nil {
		panic(err)
	}
	defer clu.Close()
	ctl := clu.Controller

	fmt.Printf("fleet: %d nodes provisioned, %d active; working set %v (%.1fx one node's GPU memory)\n",
		maxFleet, len(ctl.Members()), arrays*arrayBytes,
		float64(arrays*arrayBytes)/float64(2*16*memmodel.GiB))
	fmt.Printf("KPI: one round over the working set under %.0fs of simulated time\n\n", kpiSeconds)

	ids := make([]*core.GlobalArray, arrays)
	for i := range ids {
		a, err := ctl.NewArray(memmodel.Float32, int64(arrayBytes/memmodel.Float32.Size()))
		if err != nil {
			panic(err)
		}
		ids[i] = a
	}
	n := core.ScalarRef(float64(arrayBytes / memmodel.Float32.Size()))

	// One round streams an independent kernel over every block of the
	// working set — the paper's partitioned-workload shape, so extra
	// nodes shrink both each node's share of the compute and its
	// resident footprint (escaping the UVM paging knee).
	round := func() sim.VirtualTime {
		before := ctl.Elapsed()
		for _, a := range ids {
			if _, err := ctl.Submit(core.Invocation{Kernel: "relu",
				Args: []core.ArgRef{core.ArrRef(a.ID), n}}); err != nil {
				panic(err)
			}
		}
		if err := ctl.Drain(); err != nil {
			panic(err)
		}
		return ctl.Elapsed() - before
	}

	fmt.Printf("%8s %14s %14s\n", "nodes", "round (s)", "vs KPI")
	next := cluster.NodeID(2) // node 1 is the seed roster
	for {
		dt := round().Seconds()
		nodes := len(ctl.Members())
		fmt.Printf("%8d %14.2f %14s\n", nodes, dt, verdict(dt, kpiSeconds))
		if dt <= kpiSeconds {
			fmt.Printf("\nKPI met with %d nodes — scaled out live, zero restarts, %d P2P moves so far.\n\n",
				nodes, ctl.P2PMoves())
			return
		}
		if int(next) > maxFleet {
			fmt.Printf("\nstandby pool exhausted at %d nodes; KPI unreachable for this working set.\n\n", nodes)
			return
		}
		// The paper's heuristic: past the oversubscription knee, add a
		// node. The controller keeps running; the next round's CEs see
		// the larger fleet.
		if err := ctl.AddWorker(next); err != nil {
			panic(err)
		}
		fmt.Printf("%8s scaling out: activated standby node %v\n", "", next)
		next++
		// One unmeasured settle round: the first round on the larger
		// fleet pays the data redistribution; the KPI judges steady
		// state.
		round()
	}
}

// scaleIn goes the other way: a numeric run with a mid-workload
// RetireWorker must be bit-identical to the static-fleet run, because
// retirement migrates sole copies instead of recomputing (or losing)
// them.
func scaleIn() {
	const elems = 1 << 16
	run := func(retireMid bool) *kernels.Buffer {
		clu, err := grout.NewSimulatedCluster(grout.Config{
			Workers: 4, Policy: "round-robin", Numeric: true, Pipeline: true,
		})
		if err != nil {
			panic(err)
		}
		defer clu.Close()
		ctl := clu.Controller
		a, err := ctl.NewArray(memmodel.Float32, elems)
		if err != nil {
			panic(err)
		}
		b, err := ctl.NewArray(memmodel.Float32, elems)
		if err != nil {
			panic(err)
		}
		for i := 0; i < elems; i++ {
			a.Buf.Set(i, float64(i%13)-6)
			b.Buf.Set(i, float64(i%7)-3)
		}
		if _, err := ctl.HostWrite(a.ID); err != nil {
			panic(err)
		}
		if _, err := ctl.HostWrite(b.ID); err != nil {
			panic(err)
		}
		n := core.ScalarRef(float64(elems))
		for i := 0; i < 12; i++ {
			if retireMid && i == 6 {
				if err := ctl.RetireWorker(3); err != nil {
					panic(err)
				}
			}
			if _, err := ctl.Submit(core.Invocation{Kernel: "axpy",
				Args: []core.ArgRef{core.ArrRef(a.ID), core.ArrRef(b.ID),
					core.ScalarRef(0.25), n}}); err != nil {
				panic(err)
			}
		}
		if _, err := ctl.HostRead(a.ID); err != nil {
			panic(err)
		}
		if f := ctl.Failovers(); f != 0 {
			panic(fmt.Sprintf("retirement is not a death: failovers = %d", f))
		}
		out := kernels.NewBuffer(memmodel.Float32, elems)
		for i := 0; i < elems; i++ {
			out.Set(i, a.Buf.At(i))
		}
		return out
	}
	static := run(false)
	elastic := run(true)
	fmt.Printf("scale-in: node 3 retired mid-workload; max |static - elastic| = %g (bit-identical: %v)\n",
		elastic.MaxAbsDiff(static), elastic.MaxAbsDiff(static) == 0)
	if elastic.MaxAbsDiff(static) != 0 {
		panic("retire-mid-workload run diverged from the static fleet")
	}
}

func verdict(got, target float64) string {
	if got <= target {
		return "MET"
	}
	return fmt.Sprintf("%.1fx over", got/target)
}
