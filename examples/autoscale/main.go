// Autoscaling sketch — the paper's §V-F discussion: "a heuristical model
// could be built to autonomously allocate more resources at runtime after
// reaching the steep increase in execution time". This example implements
// that KPI-driven loop over the simulator: given a target execution time,
// it grows the cluster until either the knee of the oversubscription
// curve is escaped and the KPI is met, or adding nodes stops helping
// (Amdahl's wall on the workload's serial fraction).
package main

import (
	"fmt"

	"grout/internal/bench"
	"grout/internal/memmodel"
	"grout/internal/policy"
	"grout/internal/workloads"
)

func main() {
	const footprint = 128 * memmodel.GiB // 4x oversubscription on one node
	const targetSeconds = 60.0           // the KPI

	fmt.Printf("workload: MV, footprint %v (%.2gx oversubscription per node)\n",
		footprint, bench.OversubscriptionFactor(footprint))
	fmt.Printf("KPI: complete in under %.0fs of simulated time\n\n", targetSeconds)

	single := bench.RunSingle("mv", workloads.Params{Footprint: footprint})
	fmt.Printf("%8s %14s %14s\n", "nodes", "time (s)", "vs KPI")
	fmt.Printf("%8d %14.2f %14s\n", 1, single.Seconds(), verdict(single.Seconds(), targetSeconds))

	prev := single.Seconds()
	for nodes := 2; nodes <= 16; nodes *= 2 {
		vs, err := policy.NewVectorStep([]int{1})
		if err != nil {
			panic(err)
		}
		r := bench.RunGrout("mv", workloads.Params{Footprint: footprint, Blocks: 2 * nodes}, nodes, vs)
		if r.Err != nil {
			panic(r.Err)
		}
		fmt.Printf("%8d %14.2f %14s\n", nodes, r.Seconds(), verdict(r.Seconds(), targetSeconds))
		if r.Seconds() <= targetSeconds {
			fmt.Printf("\nKPI met with %d nodes: the oversubscription knee "+
				"(factor %.2g per node) is below the storm threshold.\n",
				nodes, bench.OversubscriptionFactor(footprint)/float64(nodes))
			return
		}
		if r.Seconds() > prev*0.9 {
			fmt.Printf("\nscaling stopped helping at %d nodes "+
				"(network-bound); KPI unreachable for this workload shape.\n", nodes)
			return
		}
		prev = r.Seconds()
	}
	fmt.Println("\nKPI not met within 16 nodes.")
}

func verdict(got, target float64) string {
	if got <= target {
		return "MET"
	}
	return fmt.Sprintf("%.1fx over", got/target)
}
