// Multi-tenant gateway demo: one simulated controller fleet shared by
// two concurrent client programs over real TCP. Each tenant runs a
// workload from the paper suite through the same Session interface the
// in-process runs use, and the example verifies both results are
// bit-identical to solo runs on a private fleet — tenancy changes
// scheduling, never results. The CLI equivalent of the server half is
// `grout-gateway -listen :7080 -http :7081 -sim-workers 4`.
package main

import (
	"fmt"
	"log"
	"sync"

	"grout"
	"grout/internal/core"
	"grout/internal/dag"
	"grout/internal/memmodel"
	"grout/internal/server"
	"grout/internal/workloads"
)

// run builds one suite workload through any Session and returns the
// contents of every array the program host-read or host-wrote last
// (locally mirrored data), keyed by session-local array ID.
func run(s workloads.Session, name string) (map[int64][]float64, error) {
	w := workloads.Suite()[name]
	if err := w.Build(s, workloads.Params{Footprint: 4 * memmodel.MiB, Blocks: 2}); err != nil {
		return nil, err
	}
	out := make(map[int64][]float64)
	for id := int64(1); id < 64; id++ {
		buf := s.Buffer(dag.ArrayID(id))
		if buf == nil {
			continue
		}
		vals := make([]float64, buf.Len())
		for i := range vals {
			vals[i] = buf.At(i)
		}
		out[id] = vals
	}
	return out, nil
}

// soloRun executes the workload on a private in-process fleet.
func soloRun(name string) (map[int64][]float64, error) {
	clu, err := grout.NewSimulatedCluster(grout.Config{
		Workers: 4, Policy: "round-robin", Numeric: true, Pipeline: true})
	if err != nil {
		return nil, err
	}
	defer clu.Close()
	g, err := server.New(clu.Controller, "127.0.0.1:0", server.Options{})
	if err != nil {
		return nil, err
	}
	defer g.Close()
	sess, err := grout.Dial(g.Addr(), "solo-"+name)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	return run(sess, name)
}

func main() {
	tenants := []string{"bs", "mv"}

	// Solo baselines: each workload alone on its own fleet.
	solo := make(map[string]map[int64][]float64)
	for _, name := range tenants {
		res, err := soloRun(name)
		if err != nil {
			log.Fatal(err)
		}
		solo[name] = res
		fmt.Printf("solo %-3s done: %d mirrored arrays\n", name, len(res))
	}

	// One shared fleet behind a gateway; both tenants at once over TCP.
	clu, err := grout.NewSimulatedCluster(grout.Config{
		Workers: 4, Policy: "round-robin", Numeric: true, Pipeline: true})
	if err != nil {
		log.Fatal(err)
	}
	defer clu.Close()
	g, err := server.New(clu.Controller, "127.0.0.1:0", server.Options{
		Limits: core.SessionLimits{MaxInflightCEs: 16},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	fmt.Printf("gateway on %s, %d tenants connecting\n", g.Addr(), len(tenants))

	shared := make(map[string]map[int64][]float64)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, name := range tenants {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			sess, err := grout.Dial(g.Addr(), name)
			if err != nil {
				log.Fatal(err)
			}
			defer sess.Close()
			res, err := run(sess, name)
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			mu.Lock()
			shared[name] = res
			mu.Unlock()
		}(name)
	}
	wg.Wait()

	// Bit-identical or bust.
	for _, name := range tenants {
		a, b := solo[name], shared[name]
		if len(a) != len(b) {
			log.Fatalf("%s: %d arrays solo vs %d shared", name, len(a), len(b))
		}
		for id, av := range a {
			bv := b[id]
			if len(av) != len(bv) {
				log.Fatalf("%s array %d: length %d vs %d", name, id, len(av), len(bv))
			}
			for i := range av {
				if av[i] != bv[i] {
					log.Fatalf("%s array %d[%d]: %v solo vs %v shared",
						name, id, i, av[i], bv[i])
				}
			}
		}
		fmt.Printf("tenant %-3s bit-identical to its solo run (%d arrays)\n", name, len(a))
	}

	st := g.Snapshot()
	fmt.Printf("gateway served %d sessions over its lifetime (%d still active)\n",
		st.Total, st.Active)
}
