// Quickstart: the paper's Listing 1 program — build a kernel from CUDA-C
// source at runtime, allocate a framework-managed array, launch, read the
// result — running transparently on a simulated two-node GrOUT cluster.
// Porting from single-node GrCUDA is the one-line language change of the
// paper's Listing 2.
package main

import (
	"fmt"
	"log"

	"grout"
)

const kernelSrc = `
extern "C" __global__ void square(float *x, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        x[i] = x[i] * x[i];
    }
}`

func main() {
	// Two workers, each the paper's 2xV100 16 GiB node.
	cluster, err := grout.NewSimulatedCluster(grout.Config{
		Workers: 2,
		Policy:  "round-robin",
		Numeric: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := cluster.Context

	// build = polyglot.eval(GrOUT, "buildkernel")
	build, err := ctx.Eval(grout.GrOUT, "buildkernel")
	if err != nil {
		log.Fatal(err)
	}
	// square = build(KERNEL, KERNEL_SIGNATURE)
	square, err := build.Build.Build(kernelSrc, "pointer float, sint32")
	if err != nil {
		log.Fatal(err)
	}
	// x = polyglot.eval(GrOUT, "float[100]")
	xv, err := ctx.Eval(grout.GrOUT, "float[100]")
	if err != nil {
		log.Fatal(err)
	}
	x := xv.Array

	// for i in range(100): x[i] = i
	for i := int64(0); i < 100; i++ {
		if err := x.Set(i, float64(i)); err != nil {
			log.Fatal(err)
		}
	}
	// square(GRID_SIZE, BLOCK_SIZE)(x, 100)
	if err := square.Configure(4, 32).Launch(x, 100); err != nil {
		log.Fatal(err)
	}
	// print(x)
	fmt.Print("x = [")
	for i := int64(0); i < 10; i++ {
		v, err := x.Get(i)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%g ", v)
	}
	fmt.Println("... ]")

	fmt.Printf("simulated execution time: %v\n", cluster.Controller.Elapsed())
	for _, tr := range cluster.Controller.Traces() {
		fmt.Printf("  CE %-3d %-12s -> %-10s [%v, %v)\n",
			tr.CE, tr.Label, tr.Node, tr.Start, tr.End)
	}
}
