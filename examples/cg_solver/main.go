// Conjugate-gradient solver — the paper's CG workload (Figure 5) run as a
// real distributed linear solve: a dense symmetric positive-definite
// system is generated on the workers' GPUs, solved by row-partitioned CG
// with all solver scalars kept on-device, and the residual is verified on
// the controller. The same workload code drives the single-node GrCUDA
// baseline and the two-node GrOUT cluster (the paper's Listing 2
// portability property), and both must agree numerically.
package main

import (
	"fmt"
	"log"
	"math"

	"grout"
	"grout/internal/workloads"
)

func main() {
	const n = 128    // system size (N x N dense SPD matrix)
	const iters = 16 // CG iterations

	// Single-node GrCUDA baseline.
	single := grout.NewSingleNode(true)
	snSession := &workloads.SingleNode{RT: single.Runtime}
	hSingle, err := workloads.CGExplicit(snSession, n, iters, 2)
	if err != nil {
		log.Fatal(err)
	}

	// Two-node GrOUT.
	cluster, err := grout.NewSimulatedCluster(grout.Config{
		Workers: 2, Policy: "min-transfer-size", Level: "low", Numeric: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	grSession := &workloads.Grout{Ctl: cluster.Controller}
	hGrout, err := workloads.CGExplicit(grSession, n, iters, 2)
	if err != nil {
		log.Fatal(err)
	}

	rrSingle := residual(snSession, hSingle)
	rrGrout := residual(grSession, hGrout)
	fmt.Printf("CG on %dx%d SPD system, %d iterations\n", n, n, iters)
	fmt.Printf("  single-node residual ||r||/||b|| = %.3e\n", rrSingle)
	fmt.Printf("  GrOUT 2-node residual ||r||/||b|| = %.3e\n", rrGrout)
	if rrSingle > 1e-3 || rrGrout > 1e-3 {
		log.Fatal("CG did not converge")
	}

	// The two runtimes must produce the same solution vector.
	worst := solutionDiff(snSession, hSingle, grSession, hGrout)
	if worst > 1e-5 {
		log.Fatalf("solutions disagree by %v", worst)
	}
	fmt.Printf("  solutions agree (max |dx| = %.2e)\n", worst)
	fmt.Printf("  simulated times: single %v, grout %v\n",
		snSession.Elapsed(), grSession.Elapsed())
	fmt.Printf("  network bytes moved by GrOUT: %v over %d P2P transfers\n",
		cluster.Controller.MovedBytes(), cluster.Controller.P2PMoves())
}

// residual reads the solver's final ||r||/||b||.
func residual(s workloads.Session, h workloads.CGHandles) float64 {
	rr := s.Buffer(h.RR).At(0)
	return math.Sqrt(rr) / math.Sqrt(float64(h.N))
}

// solutionDiff compares two solvers' solution vectors elementwise.
func solutionDiff(sa workloads.Session, ha workloads.CGHandles,
	sb workloads.Session, hb workloads.CGHandles) float64 {
	worst := 0.0
	for b := range ha.X {
		ba := sa.Buffer(ha.X[b])
		bb := sb.Buffer(hb.X[b])
		for i := 0; i < ba.Len(); i++ {
			if d := math.Abs(ba.At(i) - bb.At(i)); d > worst {
				worst = d
			}
		}
	}
	return worst
}
