// Custom scheduling policies — the paper's §IV-D opens with "Policies can
// be easily implemented into the framework to match user-specific
// scenarios". This example does exactly that, twice:
//
//  1. It implements a user-defined policy in ~30 lines (power-of-two-
//     choices over transferred bytes) against the policy.Policy interface
//     and plugs it into a live controller.
//
//  2. It demonstrates the library's UVM-aware policy (an extension built
//     where the paper's §V-E points) eliminating Figure 8's pathology:
//     min-transfer-size piles the whole MV working set onto one node and
//     recreates the single-node storm; the pressure-capped policy does not.
package main

import (
	"fmt"

	"grout/internal/bench"
	"grout/internal/cluster"
	"grout/internal/memmodel"
	"grout/internal/policy"
	"grout/internal/workloads"
)

// powerOfTwo is the user-defined policy: deterministically pick two
// candidate nodes per CE and take the one that would transfer fewer
// bytes — the classic load-balancing trick, here written by a framework
// *user*, not the framework.
type powerOfTwo struct {
	tick int
}

func (p *powerOfTwo) Name() string        { return "user/power-of-two" }
func (p *powerOfTwo) NeedsDataView() bool { return true }

func (p *powerOfTwo) Assign(req policy.Request) cluster.NodeID {
	n := len(req.Nodes)
	a := req.Nodes[p.tick%n]
	b := req.Nodes[(p.tick+1+p.tick%(n*2-1))%n]
	p.tick++
	if b.Transfer < a.Transfer {
		return b.ID
	}
	return a.ID
}

func main() {
	const foot = 96 * memmodel.GiB // the paper's 3x oversubscription point
	p := workloads.Params{Footprint: foot}

	fmt.Println("MV at 96 GiB on 2 nodes (the paper's Figure 8 setting):")
	rows := []struct {
		label string
		pol   policy.Policy
	}{
		{"round-robin (baseline)", policy.NewRoundRobin()},
		{"min-transfer-size (paper's online)", policy.NewMinTransferSize(policy.Low)},
		{"uvm-aware (extension)", policy.NewUVMAware(policy.Low, 64*memmodel.GiB)},
		{"user/power-of-two (this file)", &powerOfTwo{}},
	}
	base := 0.0
	for _, row := range rows {
		r := bench.RunGrout("mv", p, 2, row.pol)
		if r.Err != nil {
			panic(r.Err)
		}
		if base == 0 {
			base = r.Seconds()
		}
		mark := ""
		if r.Capped {
			mark = " (capped)"
		}
		fmt.Printf("  %-36s %9.1fs   %5.2fx vs round-robin%s\n",
			row.label, r.Seconds(), r.Seconds()/base, mark)
	}
	fmt.Println("\nmin-transfer-size chases the shared input vector onto one node and")
	fmt.Println("recreates the single-node UVM storm; the pressure-capped and")
	fmt.Println("user-defined policies keep the working set split.")
}
