package grout

import (
	"testing"

	"grout/internal/bench"
	"grout/internal/cluster"
	"grout/internal/core"
	"grout/internal/dag"
	"grout/internal/gpusim"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/policy"
	"grout/internal/workloads"
)

// integrationFootprint keeps numeric integration runs fast.
const integrationFootprint = 8 * memmodel.MiB

// allPolicies instantiates every inter-node policy.
func allPolicies() map[string]func() policy.Policy {
	return map[string]func() policy.Policy{
		"round-robin": func() policy.Policy { return policy.NewRoundRobin() },
		"vector-step": func() policy.Policy {
			p, _ := policy.NewVectorStep([]int{2, 1})
			return p
		},
		"min-transfer-size": func() policy.Policy { return policy.NewMinTransferSize(policy.Low) },
		"min-transfer-time": func() policy.Policy { return policy.NewMinTransferTime(policy.High) },
	}
}

// snapshotBuffers captures every host-consistent array's contents after
// forcing a host read of all arrays.
func snapshotBuffers(t *testing.T, ctl *core.Controller, maxID int64) map[int64][]float64 {
	t.Helper()
	out := make(map[int64][]float64)
	for id := int64(1); id <= maxID; id++ {
		arr := ctl.Array(dag.ArrayID(id))
		if arr == nil || arr.Buf == nil {
			continue
		}
		if _, err := ctl.HostRead(arr.ID); err != nil {
			t.Fatalf("host read %d: %v", id, err)
		}
		vals := make([]float64, arr.Buf.Len())
		for i := range vals {
			vals[i] = arr.Buf.At(i)
		}
		out[id] = vals
	}
	return out
}

// TestPolicyChoiceDoesNotChangeResults is the correctness invariant behind
// the whole scheduling design: whatever placement a policy picks, the
// dependency DAG must force the same numeric outcome.
func TestPolicyChoiceDoesNotChangeResults(t *testing.T) {
	for _, wl := range []string{"bs", "mle", "cg", "mv"} {
		var reference map[int64][]float64
		var refPolicy string
		for name, mk := range allPolicies() {
			clu := cluster.New(cluster.PaperSpec(2))
			fab := core.NewLocalFabric(clu, kernels.StdRegistry(), true)
			ctl := core.NewController(fab, mk(), core.Options{Numeric: true})
			s := &workloads.Grout{Ctl: ctl}
			w := workloads.Suite()[wl]
			if err := w.Build(s, workloads.Params{Footprint: integrationFootprint, Blocks: 2, Iterations: 4}); err != nil {
				t.Fatalf("%s/%s: %v", wl, name, err)
			}
			snap := snapshotBuffers(t, ctl, 128)
			if reference == nil {
				reference, refPolicy = snap, name
				continue
			}
			if len(snap) != len(reference) {
				t.Fatalf("%s: %s produced %d arrays, %s produced %d",
					wl, name, len(snap), refPolicy, len(reference))
			}
			for id, vals := range reference {
				got := snap[id]
				for i := range vals {
					d := got[i] - vals[i]
					if d > 1e-5 || d < -1e-5 {
						t.Fatalf("%s: array %d differs between %s and %s at %d: %v vs %v",
							wl, id, name, refPolicy, i, got[i], vals[i])
					}
				}
			}
		}
	}
}

// TestSimulationIsDeterministic: identical configurations must produce
// identical schedules and identical virtual times — the property that
// makes the reproduced figures stable.
func TestSimulationIsDeterministic(t *testing.T) {
	run := func() []core.CETrace {
		clu := cluster.New(cluster.PaperSpec(2))
		fab := core.NewLocalFabric(clu, kernels.StdRegistry(), false)
		ctl := core.NewController(fab, policy.NewMinTransferSize(policy.Medium), core.Options{})
		s := &workloads.Grout{Ctl: ctl}
		if err := workloads.MLE().Build(s, workloads.Params{Footprint: 16 * memmodel.GiB}); err != nil {
			t.Fatal(err)
		}
		return ctl.Traces()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].CE != b[i].CE || a[i].Node != b[i].Node ||
			a[i].Start != b[i].Start || a[i].End != b[i].End {
			t.Fatalf("trace %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestTraceSanity: every CE interval is well-formed and dependencies never
// run backwards in virtual time.
func TestTraceSanity(t *testing.T) {
	clu := cluster.New(cluster.PaperSpec(2))
	fab := core.NewLocalFabric(clu, kernels.StdRegistry(), false)
	ctl := core.NewController(fab, policy.NewRoundRobin(), core.Options{})
	s := &workloads.Grout{Ctl: ctl}
	if err := workloads.CG().Build(s, workloads.Params{Footprint: 8 * memmodel.GiB, Iterations: 4}); err != nil {
		t.Fatal(err)
	}
	ends := map[dag.CEID]int64{}
	for _, tr := range ctl.Traces() {
		if tr.End < tr.Start {
			t.Fatalf("CE %d has negative interval: %+v", tr.CE, tr)
		}
		ends[tr.CE] = int64(tr.End)
	}
	// Every CE must end no earlier than all its DAG ancestors.
	g := ctl.Graph()
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	for _, ce := range order {
		v := g.Vertex(ce.ID)
		for _, p := range v.Parents() {
			if ends[ce.ID] < ends[p.CE.ID] {
				t.Fatalf("CE %d (end %d) finished before ancestor %d (end %d)",
					ce.ID, ends[ce.ID], p.CE.ID, ends[p.CE.ID])
			}
		}
	}
}

// TestWorkerHostMemoryExhaustion: a worker whose host memory cannot hold
// the mirrored arrays must surface a clean error through the controller.
func TestWorkerHostMemoryExhaustion(t *testing.T) {
	spec := cluster.PaperSpec(1)
	spec.Workers[0].HostMemory = 1 * memmodel.GiB
	clu := cluster.New(spec)
	fab := core.NewLocalFabric(clu, kernels.StdRegistry(), false)
	ctl := core.NewController(fab, policy.NewRoundRobin(), core.Options{})
	arr, err := ctl.NewArray(memmodel.Float32, int64(2*memmodel.GiB/4))
	if err != nil {
		t.Fatal(err) // controller host memory is not the worker's
	}
	_, err = ctl.Launch(core.Invocation{Kernel: "relu",
		Args: []core.ArgRef{core.ArrRef(arr.ID), core.ScalarRef(float64(2 * memmodel.GiB / 4))}})
	if err == nil {
		t.Fatalf("launch exceeding worker host memory succeeded")
	}
}

// TestUtilizationAfterWorkload: the user-facing report reflects real
// device activity and balances across workers under round-robin.
func TestUtilizationAfterWorkload(t *testing.T) {
	clu := cluster.New(cluster.PaperSpec(2))
	fab := core.NewLocalFabric(clu, kernels.StdRegistry(), false)
	ctl := core.NewController(fab, policy.NewRoundRobin(), core.Options{})
	s := &workloads.Grout{Ctl: ctl}
	if err := workloads.MV().Build(s, workloads.Params{Footprint: 16 * memmodel.GiB, Blocks: 8}); err != nil {
		t.Fatal(err)
	}
	rep := bench.Utilization(ctl, fab)
	if rep.Workers[0].KernelsRun == 0 || rep.Workers[1].KernelsRun == 0 {
		t.Fatalf("round-robin left a worker idle: %+v", rep.Workers)
	}
	if rep.Workers[0].PagesMigratedIn == 0 {
		t.Fatalf("no UVM migration recorded")
	}
	if rep.Moved == 0 {
		t.Fatalf("no network traffic recorded")
	}
}

// TestScaleOutToFourWorkers exercises a larger fleet end to end with
// numeric verification.
func TestScaleOutToFourWorkers(t *testing.T) {
	clu := cluster.New(cluster.PaperSpec(4))
	fab := core.NewLocalFabric(clu, kernels.StdRegistry(), true)
	ctl := core.NewController(fab, policy.NewRoundRobin(), core.Options{Numeric: true})
	s := &workloads.Grout{Ctl: ctl}
	if err := workloads.MV().Build(s, workloads.Params{Footprint: 32 * memmodel.MiB, Blocks: 8}); err != nil {
		t.Fatal(err)
	}
	// All four workers must have executed kernels.
	seen := map[cluster.NodeID]bool{}
	for _, tr := range ctl.Traces() {
		if tr.Node.IsWorker() && tr.Label == "gemv" {
			seen[tr.Node] = true
		}
	}
	if len(seen) != 4 {
		t.Fatalf("gemv CEs reached %d of 4 workers", len(seen))
	}
}

// TestGpusimAdviseThroughStack: the hand-tuning path (§II-A) is reachable
// from the public runtime and actually changes behaviour.
func TestGpusimAdviseThroughStack(t *testing.T) {
	single := NewSingleNode(false)
	rt := single.Runtime
	arr, err := rt.NewArray(memmodel.Float32, int64(8*memmodel.GiB/4))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Advise(arr.ID, gpusim.AdvisePreferredLocation, 0); err != nil {
		t.Fatal(err)
	}
	pref, err := rt.Prefetch(arr.ID, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pref == 0 {
		t.Fatalf("prefetch of 8 GiB took no time")
	}
	if err := rt.Advise(999, gpusim.AdviseReadMostly, 0); err == nil {
		t.Fatalf("advise on unknown array accepted")
	}
	if _, err := rt.Prefetch(999, 0, 0); err == nil {
		t.Fatalf("prefetch of unknown array accepted")
	}
}
