#!/usr/bin/env bash
# ci.sh — the tier-1 gate, a thin wrapper around the repo's own checks:
#
#   1. go vet ./...
#   2. go build ./...
#   3. go test ./...                                   (full suite)
#   4. go test -race ./internal/core/... ./internal/dag/...
#                    ./internal/transport/... ./internal/minicuda/...
#                    ./internal/kernels/... ./internal/server/...
#                    ./internal/optimizer/... ./internal/gpusim/...
#                    ./internal/policy/...
#      (the pipelined controller's determinism property test, the DAG
#      fast path, the framed-wire data plane — concurrent bulk
#      streams, failover teardown — and the parallel kernel engine's
#      block-partitioned executor + atomicAdd CAS loop run under the
#      race detector; this sweep includes the chaos-fabric recovery
#      suite, re-run explicitly in 4b so a rename can't silently drop
#      it from the race gate; the multi-tenant gateway suite —
#      concurrent tenants over real TCP, chaos failover, disconnect
#      teardown — rides in the same sweep via internal/server; the
#      sharded control plane — per-shard drain goroutines, the
#      consistent-hash ring, cross-shard lease recovery — rides via
#      internal/shard plus the 4-shard differential in
#      internal/workloads)
#   5. a short fuzz budget: the slot-compiled kernel engine vs the
#      tree-walking interpreter must stay bit-for-bit identical on
#      generated kernels (10s), fused elementwise kernels must match
#      the separate producer/consumer launches bit-for-bit (10s), and
#      the session-frame codec must round-trip and never panic on
#      adversarial payloads (5s each direction, plus 5s on the
#      backpressure-frame payload codec; corpora persist)
#   6. the controller/DAG/transport/kernel/oversubscription
#      micro-benchmarks with -benchtime=1x as a smoke gate, plus a
#      UVMBench workload-sweep smoke row (spmv + kmeans at 0.5x/2x per
#      fleet size) and the gateway dial-churn pair (they must still
#      compile and complete, not regress — use scripts/bench.sh for
#      numbers)
#
# Run from the repo root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (core, dag, transport, minicuda, kernels, server, optimizer, gpusim, policy, shard)"
go test -race ./internal/core/... ./internal/dag/... ./internal/transport/... \
    ./internal/minicuda/... ./internal/kernels/... ./internal/server/... \
    ./internal/optimizer/... ./internal/gpusim/... ./internal/policy/... \
    ./internal/shard/...

echo "== go test -race sharded-plane differential (4 shards vs 1, incl. chaos)"
go test -race -run 'TestShardDifferential' ./internal/workloads/

echo "== go test -race chaos/recovery suite (lineage replay, deadlines, write-off)"
go test -race -run 'Chaos|Recovery|Failover|HungWorker|DialTimeout' \
    ./internal/core/ ./internal/transport/ ./internal/bench/

echo "== differential fuzz (compiled engine vs interpreter, 10s)"
go test -run FuzzDifferential -fuzz FuzzDifferential -fuzztime 10s \
    ./internal/minicuda/

echo "== fusion fuzz (fused kernel vs separate launches, 10s)"
go test -run FuzzFusion -fuzz FuzzFusion -fuzztime 10s \
    ./internal/minicuda/

echo "== session-frame codec fuzz (5s per direction)"
go test -run '^$' -fuzz FuzzSessionRequest -fuzztime 5s ./internal/transport/
go test -run '^$' -fuzz FuzzSessionResponse -fuzztime 5s ./internal/transport/
go test -run '^$' -fuzz FuzzSessionBackpressure -fuzztime 5s ./internal/transport/

echo "== shard-lease frame fuzz (5s)"
go test -run '^$' -fuzz FuzzLeaseGrant -fuzztime 5s ./internal/transport/

echo "== micro-benchmark smoke (-benchtime=1x)"
go test -run '^$' -bench 'BenchmarkControllerSubmitThroughput|BenchmarkSchedulingOnly' \
    -benchtime=1x ./internal/bench/
go test -run '^$' -bench 'BenchmarkDAGAdd' -benchtime=1x ./internal/dag/
go test -run '^$' -bench 'BenchmarkTransportThroughput/(gob|framed)/1MiB' \
    -benchtime=1x ./internal/bench/
go test -run '^$' -bench 'BenchmarkKernelExec/compiled|BenchmarkKernelBuild' \
    -benchtime=1x ./internal/bench/
go test -run '^$' -bench 'BenchmarkGatewayTenants/4x' -benchtime=1x ./internal/bench/
# The unanchored 64x filter deliberately matches both 64x and 64x-hostile:
# the production-traffic row (rate limits + one backpressure-ignoring
# tenant) must keep compiling and completing.
go test -run '^$' -bench 'BenchmarkGatewayTenants/64x' -benchtime=1x ./internal/bench/
go test -run '^$' -bench 'BenchmarkGatewayShards/4shards' -benchtime=1x ./internal/bench/
go test -run '^$' -bench 'BenchmarkGatewayDialChurn' -benchtime=1x ./internal/bench/
go test -run '^$' -bench 'BenchmarkOversubSweep/sequential/(eager\+lru|stride\+lru)/x1.5' \
    -benchtime=1x ./internal/bench/
# UVMBench workload smoke: one irregular workload (spmv) and one ML
# workload (kmeans) at in-core 0.5x and oversubscribed 2x, per fleet
# size — the full sweep lives in scripts/bench.sh.
go test -run '^$' -bench 'BenchmarkUVMBench/(spmv|kmeans)/eager\+lru/(1|2|4)w/x(0.5|2.0)' \
    -benchtime=1x ./internal/bench/

echo "CI OK"
