#!/usr/bin/env bash
# bench.sh — run the controller/DAG micro-benchmarks and emit
# BENCH_controller.json so future PRs can track the scheduler-throughput
# trajectory against the recorded pre-fast-path baseline.
#
# Usage: ./scripts/bench.sh [benchtime]     (default 2s per benchmark)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-2s}"
OUT=BENCH_controller.json
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== controller benchmarks (-benchtime=$BENCHTIME)"
go test -run '^$' -bench 'BenchmarkControllerSubmitThroughput' \
    -benchtime="$BENCHTIME" -benchmem ./internal/bench/ | tee -a "$RAW"
echo "== dag benchmarks"
go test -run '^$' -bench 'BenchmarkDAGAdd' \
    -benchtime="$BENCHTIME" -benchmem ./internal/dag/ | tee -a "$RAW"

# Parse `BenchmarkName/sub-N  iters  X ns/op  Y B/op  Z allocs/op` lines
# into a JSON object keyed by the benchmark's sub-path.
python3 - "$RAW" "$OUT" <<'EOF'
import json, re, sys

raw, out = sys.argv[1], sys.argv[2]
current = {}
pat = re.compile(
    r'^(Benchmark\S+)\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op\s+(\d+) allocs/op)?')
for line in open(raw):
    m = pat.match(line)
    if not m:
        continue
    # Strip the optional -GOMAXPROCS suffix; benchmark names end in words.
    name = re.sub(r'-\d+$', '', m.group(1).removeprefix('Benchmark'))
    current[name] = {'ns_per_op': float(m.group(2))}
    if m.group(3):
        current[name]['bytes_per_op'] = float(m.group(3))
        current[name]['allocs_per_op'] = int(m.group(4))

# Pre-fast-path baseline (commit 8ad30ca seed tree, same machine class),
# measured with this same harness before the pipelined dispatch, DAG
# epoch-mark rewrite, and cached policy data-views landed.
baseline = {
    'ControllerSubmitThroughput/rr-256w/serial':
        {'ns_per_op': 18507, 'bytes_per_op': 14986, 'allocs_per_op': 41},
    'ControllerSubmitThroughput/mtt-16w/serial':
        {'ns_per_op': 8023, 'bytes_per_op': 3506, 'allocs_per_op': 39},
    'ControllerSubmitThroughput/mtt-256w/serial':
        {'ns_per_op': 39497, 'bytes_per_op': 15026, 'allocs_per_op': 39},
    'DAGAdd/deep-chain': {'ns_per_op': 1212},
    'DAGAdd/wide-fanout': {'ns_per_op': 4651},
    'DAGAdd/fig9-stream': {'ns_per_op': 1021},
}

doc = {
    'description': 'Controller fast-path micro-benchmarks (Fig. 9 synthetic '
                   'stream); ns_per_op is ns per CE.',
    'baseline_pre_fast_path': baseline,
    'current': current,
}
for name, base in baseline.items():
    cur = current.get(name)
    if cur and cur['ns_per_op'] > 0:
        doc.setdefault('speedup_vs_baseline', {})[name] = round(
            base['ns_per_op'] / cur['ns_per_op'], 2)
json.dump(doc, open(out, 'w'), indent=2)
print(f'wrote {out}')
EOF
