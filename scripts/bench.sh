#!/usr/bin/env bash
# bench.sh — run the controller/DAG (including the failover/lineage
# recovery-overhead pair), transport, kernel-engine, gateway
# tenant-scaling/dial-churn, UVM oversubscription-sweep and UVMBench
# workload-sweep micro-benchmarks and emit BENCH_controller.json +
# BENCH_transport.json + BENCH_kernels.json + BENCH_server.json +
# BENCH_gpusim.json + BENCH_workloads.json so future PRs can track the
# fast-path trajectories against recorded baselines.
#
# Usage: ./scripts/bench.sh [benchtime]     (default 2s per benchmark)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-2s}"
OUT=BENCH_controller.json
RAW="$(mktemp)"
TRAW="$(mktemp)"
KRAW="$(mktemp)"
SRAW="$(mktemp)"
GRAW="$(mktemp)"
trap 'rm -f "$RAW" "$TRAW" "$KRAW" "$SRAW" "$GRAW"' EXIT

echo "== controller benchmarks (-benchtime=$BENCHTIME)"
go test -run '^$' -bench 'BenchmarkControllerSubmitThroughput' \
    -benchtime="$BENCHTIME" -benchmem ./internal/bench/ | tee -a "$RAW"
echo "== dag benchmarks"
go test -run '^$' -bench 'BenchmarkDAGAdd' \
    -benchtime="$BENCHTIME" -benchmem ./internal/dag/ | tee -a "$RAW"
echo "== recovery benchmarks (clean vs chaos-kill lineage replay)"
go test -run '^$' -bench 'BenchmarkRecovery' \
    -benchtime="$BENCHTIME" -benchmem ./internal/bench/ | tee -a "$RAW"

# Parse `BenchmarkName/sub-N  iters  X ns/op  Y B/op  Z allocs/op` lines
# into a JSON object keyed by the benchmark's sub-path.
python3 - "$RAW" "$OUT" <<'EOF'
import json, re, sys

raw, out = sys.argv[1], sys.argv[2]
current = {}
pat = re.compile(
    r'^(Benchmark\S+)\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op\s+(\d+) allocs/op)?')
for line in open(raw):
    m = pat.match(line)
    if not m:
        continue
    # Strip the optional -GOMAXPROCS suffix; benchmark names end in words.
    name = re.sub(r'-\d+$', '', m.group(1).removeprefix('Benchmark'))
    current[name] = {'ns_per_op': float(m.group(2))}
    if m.group(3):
        current[name]['bytes_per_op'] = float(m.group(3))
        current[name]['allocs_per_op'] = int(m.group(4))

# Pre-fast-path baseline (commit 8ad30ca seed tree, same machine class),
# measured with this same harness before the pipelined dispatch, DAG
# epoch-mark rewrite, and cached policy data-views landed.
baseline = {
    'ControllerSubmitThroughput/rr-256w/serial':
        {'ns_per_op': 18507, 'bytes_per_op': 14986, 'allocs_per_op': 41},
    'ControllerSubmitThroughput/mtt-16w/serial':
        {'ns_per_op': 8023, 'bytes_per_op': 3506, 'allocs_per_op': 39},
    'ControllerSubmitThroughput/mtt-256w/serial':
        {'ns_per_op': 39497, 'bytes_per_op': 15026, 'allocs_per_op': 39},
    'DAGAdd/deep-chain': {'ns_per_op': 1212},
    'DAGAdd/wide-fanout': {'ns_per_op': 4651},
    'DAGAdd/fig9-stream': {'ns_per_op': 1021},
    'DAGAdd/diamond': {'ns_per_op': 4467, 'bytes_per_op': 902,
                       'allocs_per_op': 14},
}
# The pipelined and optimizer-window submission paths postdate the
# pre-fast-path tree; their speedups are computed against the same
# case's serial baseline (the paths replace serial submission, so the
# ratio is still per-CE admission cost, old tree vs new path).
for case in ('rr-256w', 'mtt-16w', 'mtt-256w'):
    serial = baseline[f'ControllerSubmitThroughput/{case}/serial']
    for mode in ('pipelined', 'pipelined+opt'):
        baseline[f'ControllerSubmitThroughput/{case}/{mode}'] = serial

doc = {
    'description': 'Controller fast-path micro-benchmarks (Fig. 9 synthetic '
                   'stream); ns_per_op is ns per CE.',
    'baseline_pre_fast_path': baseline,
    'current': current,
}
for name, base in baseline.items():
    cur = current.get(name)
    if cur and cur['ns_per_op'] > 0:
        doc.setdefault('speedup_vs_baseline', {})[name] = round(
            base['ns_per_op'] / cur['ns_per_op'], 2)

# Recovery overhead: one 64-CE in-place chain per op, clean vs with a
# mid-stream chaos kill that forces a failover + full lineage replay.
rec_clean = current.get('Recovery/clean', {}).get('ns_per_op')
rec_kill = current.get('Recovery/chaos-kill', {}).get('ns_per_op')
if rec_clean and rec_kill:
    doc['recovery_overhead'] = {
        'clean_ns_per_run': rec_clean,
        'chaos_kill_ns_per_run': rec_kill,
        'overhead_pct': round(100 * (rec_kill - rec_clean) / rec_clean, 1),
    }
json.dump(doc, open(out, 'w'), indent=2)
print(f'wrote {out}')
EOF

# --- transport data-plane benchmarks (DESIGN.md §5.2) ----------------------
# Runs every wire (gob and framed) over the size ladder and records MB/s,
# B/op and allocs/op per point, plus framed-vs-gob ratios. The largest
# size (256MiB) is skipped here to keep the script fast; run it manually
# for the head-of-line-blocking sweep.

echo "== transport benchmarks (-benchtime=$BENCHTIME)"
go test -run '^$' -bench 'BenchmarkTransportThroughput/(gob|framed)/(1KiB|64KiB|1MiB|16MiB)' \
    -benchtime="$BENCHTIME" -benchmem ./internal/bench/ | tee "$TRAW"

python3 - "$TRAW" BENCH_transport.json <<'EOF'
import json, re, sys

raw, out = sys.argv[1], sys.argv[2]
current = {}
pat = re.compile(
    r'^BenchmarkTransportThroughput/(\w+)/(\S+?)(?:-\d+)?\s+\d+\s+'
    r'([\d.]+) ns/op\s+([\d.]+) MB/s\s+([\d.]+) B/op\s+(\d+) allocs/op')
for line in open(raw):
    m = pat.match(line)
    if not m:
        continue
    wire, size = m.group(1), m.group(2)
    current.setdefault(wire, {})[size] = {
        'ns_per_op': float(m.group(3)),
        'mb_per_s': float(m.group(4)),
        'bytes_per_op': float(m.group(5)),
        'allocs_per_op': int(m.group(6)),
    }

ratios = {}
for size, fr in current.get('framed', {}).items():
    gb = current.get('gob', {}).get(size)
    if not gb or not gb['mb_per_s']:
        continue
    ratios[size] = {
        'throughput_speedup': round(fr['mb_per_s'] / gb['mb_per_s'], 2),
        'alloc_reduction': round(
            gb['allocs_per_op'] / max(fr['allocs_per_op'], 1), 2),
        'bytes_reduction': round(
            gb['bytes_per_op'] / max(fr['bytes_per_op'], 1), 1),
    }

doc = {
    'description': 'Data-plane wire benchmarks: one MoveArray (controller '
                   'host -> worker) per op over a loopback TCP worker, per '
                   'wire protocol and array size.',
    'current': current,
    'framed_vs_gob': ratios,
}
json.dump(doc, open(out, 'w'), indent=2)
print(f'wrote {out}')
EOF

# --- kernel execution-engine benchmarks (DESIGN.md §5.3) -------------------
# Black–Scholes at 1M elements: the tree-walking reference interpreter vs
# the slot-compiled engine, serial and block-partitioned across
# GOMAXPROCS workers. The interpreter takes seconds per launch, so the
# execution benchmarks run a fixed 3 iterations rather than a time
# budget. GOMAXPROCS is recorded alongside the numbers: parallel scaling
# over compiled-1w is only observable when it is > 1.

echo "== kernel engine benchmarks (-benchtime=3x)"
go test -run '^$' -bench 'BenchmarkKernelExec' -benchtime=3x \
    ./internal/bench/ | tee "$KRAW"
go test -run '^$' -bench 'BenchmarkKernelBuild' -benchtime="$BENCHTIME" \
    ./internal/bench/ | tee -a "$KRAW"

GOMAXPROCS_NOW="${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN)}"
python3 - "$KRAW" BENCH_kernels.json "$GOMAXPROCS_NOW" <<'EOF'
import json, re, sys

raw, out, nproc = sys.argv[1], sys.argv[2], int(sys.argv[3])
current = {}
pat = re.compile(
    r'^Benchmark(KernelExec|KernelBuild)/(\S+?)(?:-\d+)?\s+\d+\s+'
    r'([\d.]+) ns/op')
for line in open(raw):
    m = pat.match(line)
    if not m:
        continue
    current.setdefault(m.group(1), {})[m.group(2)] = {
        'ns_per_op': float(m.group(3))}

doc = {
    'description': 'Kernel execution-engine benchmarks: Black-Scholes over '
                   '1M float32 elements (grid 4096 x block 256), tree-walk '
                   'interpreter vs slot-compiled closures; plus the '
                   'buildkernel path cold vs compiled-kernel cache hit.',
    'gomaxprocs': nproc,
    'current': current,
}
ex = current.get('KernelExec', {})
interp = ex.get('interp', {}).get('ns_per_op')
c1 = ex.get('compiled-1w', {}).get('ns_per_op')
cn = ex.get('compiled-nw', {}).get('ns_per_op')
if interp and c1:
    doc['compiled_1w_speedup_vs_interp'] = round(interp / c1, 2)
if c1 and cn:
    doc['parallel_scaling_nw_vs_1w'] = round(c1 / cn, 2)
    if nproc == 1:
        doc['parallel_scaling_note'] = (
            'GOMAXPROCS=1 on this machine: compiled-nw degenerates to the '
            'serial engine, so no scaling is observable here.')
bd = current.get('KernelBuild', {})
cold = bd.get('cold', {}).get('ns_per_op')
cached = bd.get('cached', {}).get('ns_per_op')
if cold and cached:
    doc['build_cache_speedup'] = round(cold / cached, 1)
json.dump(doc, open(out, 'w'), indent=2)
print(f'wrote {out}')
EOF

# --- gateway tenant-scaling + shard sweep benchmarks (DESIGN.md §5.5, §5.8)
# Tenants: N concurrent client sessions over loopback TCP against one
# shared 4-worker controller. ns/op is the per-tenant per-launch round
# trip; ce_per_s is aggregate admitted throughput across all tenants and
# p99adm_us the worst per-tenant 99th-percentile admission wait, both
# scraped from the same session counters /metrics exports. The 64x
# rows run under production rate limits; 64x-hostile adds one tenant
# that ignores backpressure, and the recorded containment ratio
# (hostile neighbor p99 / plain 64x p99) must stay <= 2.
# Shards: 16 tenants over a 16-worker fleet, controller fleet sharded
# 1/4/8/16 ways behind one gateway. GOMAXPROCS is recorded alongside:
# the shard speedup is contention relief in the admission/scheduling
# sections, and on a 1-core box no CPU parallelism is observable.

echo "== gateway tenant-scaling benchmarks (-benchtime=$BENCHTIME)"
go test -run '^$' -bench 'BenchmarkGatewayTenants' \
    -benchtime="$BENCHTIME" ./internal/bench/ | tee "$SRAW"
echo "== gateway shard-sweep benchmarks (-benchtime=$BENCHTIME)"
go test -run '^$' -bench 'BenchmarkGatewayShards' \
    -benchtime="$BENCHTIME" ./internal/bench/ | tee -a "$SRAW"
echo "== gateway dial-churn benchmarks (-benchtime=$BENCHTIME)"
go test -run '^$' -bench 'BenchmarkGatewayDialChurn' \
    -benchtime="$BENCHTIME" ./internal/bench/ | tee -a "$SRAW"

GOMAXPROCS_NOW="${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN)}"
python3 - "$SRAW" BENCH_server.json "$GOMAXPROCS_NOW" <<'EOF'
import json, re, sys

raw, out, nproc = sys.argv[1], sys.argv[2], int(sys.argv[3])
current = {}
shards = {}
tpat = re.compile(
    r'^BenchmarkGatewayTenants/(\d+)x(?:-\d+)?\s+\d+\s+([\d.]+) ns/op'
    r'\s+([\d.]+) ce_per_s\s+([\d.]+) p99adm_us')
hpat = re.compile(
    r'^BenchmarkGatewayTenants/(\d+)x-hostile(?:-\d+)?\s+\d+\s+'
    r'([\d.]+) ns/op\s+([\d.]+) ce_per_s\s+([\d.]+) p99adm_us')
spat = re.compile(
    r'^BenchmarkGatewayShards/(\d+)shards(?:-\d+)?\s+\d+\s+([\d.]+) ns/op'
    r'\s+([\d.]+) ce_per_s\s+([\d.]+) p99adm_us')
dpat = re.compile(
    r'^BenchmarkGatewayDialChurn/(\d+)loops(?:-\d+)?\s+\d+\s+([\d.]+) ns/op'
    r'\s+([\d.]+) dial_p99_us')
churn = {}
for line in open(raw):
    # hpat first: tpat's (?:-\d+)? cannot swallow "-hostile", but keep
    # the specific pattern ahead of the general one anyway.
    m = hpat.match(line)
    if m:
        current[m.group(1) + 'x-hostile'] = {
            'tenants': int(m.group(1)),
            'hostile_tenants': 1,
            'ns_per_launch': float(m.group(2)),
            'ce_per_s_aggregate': float(m.group(3)),
            'p99_admission_wait_us': float(m.group(4)),
        }
        continue
    m = tpat.match(line)
    if m:
        current[m.group(1) + 'x'] = {
            'tenants': int(m.group(1)),
            'ns_per_launch': float(m.group(2)),
            'ce_per_s_aggregate': float(m.group(3)),
            'p99_admission_wait_us': float(m.group(4)),
        }
        continue
    m = spat.match(line)
    if m:
        shards[m.group(1) + 'shards'] = {
            'shards': int(m.group(1)),
            'ns_per_launch': float(m.group(2)),
            'ce_per_s_aggregate': float(m.group(3)),
            'p99_admission_wait_us': float(m.group(4)),
        }
        continue
    m = dpat.match(line)
    if m:
        churn[m.group(1) + 'loops'] = {
            'accept_loops': int(m.group(1)),
            'ns_per_burst': float(m.group(2)),
            'worst_dial_us': float(m.group(3)),
        }

doc = {
    'description': 'Gateway tenant-scaling: N concurrent sessions over '
                   'loopback TCP sharing one 4-worker controller; relu '
                   'launches on 256Ki-element arrays, cost-only fleet so '
                   'the admission path dominates. Shard sweep: 16 tenants '
                   'over a 16-worker fleet, controller fleet sharded '
                   '1/4/8/16 ways behind one gateway.',
    'gomaxprocs': nproc,
    'current': current,
    'shard_sweep': shards,
}
one = current.get('1x', {}).get('ce_per_s_aggregate')
for name, row in sorted(current.items()):
    if one and row['tenants'] > 1 and 'hostile' not in name:
        doc.setdefault('aggregate_scaling_vs_1x', {})[name] = round(
            row['ce_per_s_aggregate'] / one, 2)

# The acceptance row: with one hostile (backpressure-ignoring) tenant
# among 64 rate-limited ones, the worst WELL-BEHAVED tenant's p99
# admission wait must stay within 2x of the no-hostile run — the
# hostile tenant's own wait is excluded by the benchmark itself.
plain = current.get('64x', {}).get('p99_admission_wait_us')
host = current.get('64x-hostile', {}).get('p99_admission_wait_us')
if plain and host:
    ratio = round(host / plain, 2)
    doc['hostile_tenant_containment'] = {
        'neighbor_p99_us_plain': plain,
        'neighbor_p99_us_with_hostile': host,
        'p99_ratio': ratio,
        'within_2x': ratio <= 2.0,
    }
sone = shards.get('1shards', {}).get('ce_per_s_aggregate')
for name, row in sorted(shards.items(), key=lambda kv: kv[1]['shards']):
    if sone and row['shards'] > 1:
        doc.setdefault('shard_scaling_vs_1shard', {})[name] = round(
            row['ce_per_s_aggregate'] / sone, 2)
# Dial latency under churn: a 32-way concurrent dial burst per op, one
# accept goroutine vs Options.AcceptLoops=4 pulling handshakes off the
# shared listener.
if churn:
    doc['dial_churn'] = churn
    one_l = churn.get('1loops', {}).get('worst_dial_us')
    four_l = churn.get('4loops', {}).get('worst_dial_us')
    if one_l and four_l:
        doc['dial_churn']['worst_dial_speedup_4loops'] = round(one_l / four_l, 2)
    if nproc == 1:
        doc['dial_churn']['note'] = (
            'GOMAXPROCS=1 on this machine: the accept loops time-slice '
            'one core, so no concurrent-handshake speedup is observable '
            'here; the row tracks that the sharded accept path keeps '
            'completing.')
if sone and nproc == 1:
    doc['shard_scaling_note'] = (
        'GOMAXPROCS=1 on this machine: all shard drain goroutines '
        'time-slice one core and the simulated data path is a single '
        'shared lock, so only admission-contention relief is '
        'observable, not CPU parallelism. The >=3x aggregate target '
        'for 8 shards requires a multi-core run.')
json.dump(doc, open(out, 'w'), indent=2)
print(f'wrote {out}')
EOF

# --- UVM oversubscription sweep (DESIGN.md §5.7) ---------------------------
# One cell per (pattern, prefetch+evict combo, oversubscription factor):
# the modeled ns per kernel launch, total migration traffic and the
# per-regime launch histogram, all deterministic simulator output (the
# sweep is exact, so -benchtime=1x is enough). The derived summary
# records each combo's storm cliff and the stride-aware prefetcher's
# speedup over the eager/LRU baseline at 1.5x — the cliff-shift row the
# adaptive-oversubscription work is gated on.

echo "== UVM oversubscription sweep (-benchtime=1x)"
go test -run '^$' -bench 'BenchmarkOversubSweep' -benchtime=1x \
    ./internal/bench/ | tee "$GRAW"

python3 - "$GRAW" BENCH_gpusim.json <<'EOF'
import json, re, sys

raw, out = sys.argv[1], sys.argv[2]
current = {}
pat = re.compile(
    r'^BenchmarkOversubSweep/(\w+)/([\w+-]+)/x([\d.]+)(?:-\d+)?\s+\d+\s+'
    r'[\d.]+ ns/op\s+(.*)$')
metric = re.compile(r'([\d.e+]+) (\w+)')
for line in open(raw):
    m = pat.match(line)
    if not m:
        continue
    pattern, combo, factor = m.group(1), m.group(2), float(m.group(3))
    mets = {name: float(v) for v, name in metric.findall(m.group(4))}
    cell = {
        'ns_per_launch': mets.get('ns_per_launch'),
        'mb_migrated': mets.get('mb_migrated'),
        'regimes': {r: int(mets.get(r + '_launches', 0))
                    for r in ('resident', 'streaming', 'storm')},
    }
    current.setdefault(pattern, {}).setdefault(combo, {})[f'{factor}x'] = cell

doc = {
    'description': 'UVM oversubscription sweep: modeled ns per launch, MB '
                   'migrated and regime histogram per (access pattern, '
                   'prefetch+evict policy, footprint/device-memory factor) '
                   'on one simulated V100; deterministic simulator output.',
    'current': current,
}

# Storm cliff per pattern/combo: the lowest factor where any launch hit
# the storm regime (null = no storm within the swept ladder).
cliffs = {}
for pattern, combos in current.items():
    for combo, cells in combos.items():
        cliff = None
        for fname, cell in sorted(cells.items(), key=lambda kv: float(kv[0][:-1])):
            if cell['regimes']['storm'] > 0:
                cliff = float(fname[:-1])
                break
        cliffs.setdefault(pattern, {})[combo] = cliff
doc['storm_cliff_factor'] = cliffs

# The acceptance row: stride-aware prefetch vs the eager/LRU baseline on
# the sequential sweep at >=1.5x oversubscription (want >= 2x).
seq = current.get('sequential', {})
base = seq.get('eager+lru', {}).get('1.5x', {}).get('ns_per_launch')
stride = seq.get('stride+lru', {}).get('1.5x', {}).get('ns_per_launch')
if base and stride:
    doc['stride_speedup_at_1.5x_sequential'] = round(base / stride, 2)
json.dump(doc, open(out, 'w'), indent=2)
print(f'wrote {out}')
EOF

# --- UVMBench workload-level oversubscription sweep (DESIGN.md §5.10) ------
# One cell per (workload, prefetch+evict combo, fleet size, footprint
# factor): the full workload DAG through the real controller on a
# cost-only simulated fleet, modeled makespan and CE count as reported
# metrics. Deterministic, so -benchtime=1x; the derived summary records
# each workload's Figure-1 cliff per fleet size — the acceptance row is
# the 1-worker cliff shifting right or flattening at 2 and 4 workers.

WRAW="$(mktemp)"
trap 'rm -f "$RAW" "$TRAW" "$KRAW" "$SRAW" "$GRAW" "$WRAW"' EXIT
echo "== UVMBench workload sweep (-benchtime=1x)"
go test -run '^$' -bench 'BenchmarkUVMBench' -benchtime=1x \
    ./internal/bench/ | tee "$WRAW"

GOMAXPROCS_NOW="${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN)}"
python3 - "$WRAW" BENCH_workloads.json "$GOMAXPROCS_NOW" <<'EOF'
import json, re, sys

raw, out, nproc = sys.argv[1], sys.argv[2], int(sys.argv[3])
current = {}
pat = re.compile(
    r'^BenchmarkUVMBench/(\w+)/([\w+-]+)/(\d+)w/x([\d.]+)(?:-\d+)?\s+\d+\s+'
    r'[\d.]+ ns/op\s+(.*)$')
metric = re.compile(r'([\d.e+]+) (\w+)')
for line in open(raw):
    m = pat.match(line)
    if not m:
        continue
    wl, combo, workers, factor = (m.group(1), m.group(2),
                                  int(m.group(3)), float(m.group(4)))
    mets = {name: float(v) for v, name in metric.findall(m.group(5))}
    current.setdefault(wl, {}).setdefault(combo, {}).setdefault(
        f'{workers}w', {})[f'{factor}x'] = {
        'makespan_ms': mets.get('makespan_ms'),
        'ces': int(mets.get('ces', 0)),
    }

doc = {
    'description': 'UVMBench workload-level oversubscription sweep: each '
                   'workload DAG through the real controller '
                   '(min-transfer-time, pipelined, optimizer window) on a '
                   'cost-only simulated V100 fleet; footprint factor is '
                   'total workload footprint over ONE worker\'s device '
                   'memory, so the 1w column oversubscribes where the '
                   'wider fleets still fit. Deterministic modeled output.',
    'gomaxprocs': nproc,
    'current': current,
}

# Cliff per (workload, combo, fleet size): lowest factor whose makespan
# slope (makespan/factor) exceeds 2.5x the cheapest rung's slope — the
# same rule workloads.UVMCliffs applies. null = flat through the ladder.
cliffs = {}
for wl, combos in current.items():
    for combo, fleets in combos.items():
        for fleet, cells in fleets.items():
            rungs = sorted(((float(f[:-1]), c['makespan_ms'])
                            for f, c in cells.items()))
            if not rungs:
                continue
            best = min(ms / f for f, ms in rungs if f > 0)
            cliff = None
            for f, ms in rungs:
                if ms / f > 2.5 * best:
                    cliff = f
                    break
            cliffs.setdefault(wl, {}).setdefault(combo, {})[fleet] = cliff
doc['cliff_factor'] = cliffs

# The acceptance rows: for the irregular workloads, scale-out must shift
# the 1-worker cliff right or flatten it entirely.
flattened = {}
for wl, combos in cliffs.items():
    for combo, fleets in combos.items():
        c1, c2, c4 = fleets.get('1w'), fleets.get('2w'), fleets.get('4w')
        if c1 is None:
            continue  # never fell off a cliff solo; nothing to flatten
        flattened.setdefault(wl, {})[combo] = {
            'cliff_1w': c1, 'cliff_2w': c2, 'cliff_4w': c4,
            'scale_out_helps': (c2 is None or c2 > c1)
                               and (c4 is None or c4 > c1),
        }
doc['scale_out_flattening'] = flattened
json.dump(doc, open(out, 'w'), indent=2)
print(f'wrote {out}')
EOF
