// Package grout is a Go reproduction of "GrOUT: Transparent Scale-Out to
// Overcome UVM's Oversubscription Slowdowns" (Di Dio Lavore et al.,
// IPDPSW 2024): a language- and domain-agnostic runtime that distributes
// GPU workloads over multiple multi-GPU nodes to escape the performance
// collapse of oversubscribed Unified Virtual Memory.
//
// Since no GPUs are assumed, workers run over a calibrated discrete-event
// GPU/UVM simulator (see internal/gpusim); kernels additionally carry
// numeric host implementations, so programs compute real results while
// execution time is modelled. A real TCP deployment mode
// (internal/transport, cmd/grout-worker, cmd/grout-controller) runs the
// identical controller against remote worker processes.
//
// The primary entry points:
//
//   - NewSimulatedCluster: a controller plus N in-process simulated
//     workers — the configuration all paper experiments use.
//   - NewSingleNode: the GrCUDA single-node baseline.
//   - Connect: a controller over real TCP workers.
//
// Each returns a polyglot Context exposing the paper's API (Listing 1):
// Eval(language, "float[N]"), Eval(language, "buildkernel"), kernel
// Configure(grid, block).Launch(args...).
package grout

import (
	"fmt"
	"time"

	"grout/internal/cluster"
	"grout/internal/core"
	"grout/internal/gpusim"
	"grout/internal/grcuda"
	"grout/internal/kernels"
	"grout/internal/policy"
	"grout/internal/polyglot"
	"grout/internal/server"
	"grout/internal/shard"
	"grout/internal/transport"
)

// Re-exported types: the public names a downstream user needs.
type (
	// Controller is GrOUT's scheduling front end (paper Algorithm 1).
	Controller = core.Controller
	// Context is the polyglot evaluation context (paper Listing 1).
	Context = polyglot.Context
	// DeviceArray is a framework-managed UVM array.
	DeviceArray = polyglot.DeviceArray
	// Kernel is a runtime-built kernel handle (Eval "buildkernel").
	Kernel = polyglot.KernelHandle
	// Language selects GrCUDA (single node) or GrOUT (distributed).
	Language = polyglot.Language
	// Policy is an inter-node scheduling policy (paper §IV-D).
	Policy = policy.Policy
	// NodeID identifies cluster endpoints.
	NodeID = cluster.NodeID
)

// The two polyglot languages (paper Listing 2's one-line change).
const (
	GrCUDA = polyglot.GrCUDA
	GrOUT  = polyglot.GrOUT
)

// Config shapes a simulated deployment.
type Config struct {
	// Workers is the number of GPU nodes (each the paper's 2×V100
	// 16 GiB OCI shape). Default 2, as in the paper's main evaluation.
	Workers int
	// ActiveWorkers, when positive and below Workers, rosters only the
	// first ActiveWorkers nodes as scheduling members at start; the
	// rest idle as a provisioned standby pool that
	// Controller.AddWorker activates live (and RetireWorker returns
	// nodes to) — fleet elasticity without restarting the deployment
	// (DESIGN.md §5.9). 0 activates the whole fleet.
	ActiveWorkers int
	// Shards splits the simulated controller fleet into N independent
	// shards behind one logical plane (DESIGN.md §5.8): each shard
	// controller owns a static partition of the workers and its own
	// array-ID namespace, and tenants are routed to shards by
	// consistent hash. 0 or 1 means the classic single controller.
	// Only NewShardedCluster consults this field.
	Shards int
	// Policy is the inter-node scheduling policy name: "round-robin",
	// "vector-step", "min-transfer-size" or "min-transfer-time".
	// Default "vector-step" (the paper's offline roofline).
	Policy string
	// Vector parameterizes vector-step (default [1]).
	Vector []int
	// Level is the online policies' exploration level: "low", "medium"
	// or "high" (default medium).
	Level string
	// Numeric enables real data: kernels execute host implementations
	// and transfers ship buffer contents. Use for correctness-sensitive
	// programs; disable for large cost-model-only sweeps.
	Numeric bool
	// Pipeline overlaps CE dispatch with scheduling: Submit returns after
	// the scheduling decision and per-worker goroutines issue data
	// movements and launches in the background (results identical to the
	// serial schedule; see DESIGN.md §5.1). Launch/HostRead/HostWrite
	// still synchronize where required.
	Pipeline bool
	// OptimizeWindow sizes the controller's lookahead optimizer window
	// (DESIGN.md §5.6): submissions park until the window fills (or a
	// synchronization point flushes it), then the whole batch runs
	// through kernel fusion, transfer coalescing, redundant-move
	// elimination, and one batched policy evaluation. 0 picks the
	// default (DefaultOptimizeWindow); negative disables the window,
	// restoring per-CE admission.
	OptimizeWindow int
	// Wire selects the TCP wire protocol for Connect: "framed" (default —
	// binary frames with a dedicated bulk channel per worker, DESIGN.md
	// §5.2) or "gob" (the legacy codec, kept for one release). Ignored by
	// simulated clusters.
	Wire string
	// ChunkBytes is the bulk-transfer chunk size for Connect (default
	// 256 KiB; clamped to [4 KiB, 64 MiB) and 8-byte aligned). Ignored by
	// simulated clusters.
	ChunkBytes int
	// Failover makes the Controller survive worker failures: failed CEs
	// reroute to survivors, and arrays whose only copy died are
	// recomputed from lineage (DESIGN.md §5.4). ErrDataLost only
	// surfaces when a lineage root itself is unrecoverable.
	Failover bool
	// RetryAttempts is how many times a transient fabric failure (dial,
	// timeout, severed connection) retries in place, with capped
	// exponential backoff, before the worker is written off. Default 0
	// (fail over immediately).
	RetryAttempts int
	// RetryBackoff is the base retry delay, doubling per attempt up to
	// 40× (default 50ms when retries are enabled).
	RetryBackoff time.Duration
	// DialTimeout bounds TCP connection establishment for Connect (0 =
	// 5 s default, negative disables). Ignored by simulated clusters.
	DialTimeout time.Duration
	// CallTimeout bounds one control round trip for Connect (0 = 30 s
	// default, negative disables). Ignored by simulated clusters.
	CallTimeout time.Duration
	// ChunkTimeout bounds progress (per chunk, not total) of bulk
	// transfers for Connect (0 = 30 s default, negative disables).
	// Ignored by simulated clusters.
	ChunkTimeout time.Duration
}

// DefaultOptimizeWindow is the lookahead window size used when
// Config.OptimizeWindow is zero: large enough to amortize the batched
// policy evaluation and find fusion chains, small enough that parked
// work never waits long for a synchronization point.
const DefaultOptimizeWindow = 32

// optimizeWindow maps the Config convention (0 = default, negative =
// disabled) onto core.Options' (positive = on, else off).
func (c Config) optimizeWindow() int {
	switch {
	case c.OptimizeWindow < 0:
		return 0
	case c.OptimizeWindow == 0:
		return DefaultOptimizeWindow
	default:
		return c.OptimizeWindow
	}
}

// coreOptions builds the controller options shared by both deployments.
func (c Config) coreOptions(numeric bool) core.Options {
	opts := core.Options{
		Numeric:        numeric,
		Pipeline:       c.Pipeline,
		OptimizeWindow: c.optimizeWindow(),
		Failover:       c.Failover,
		Retry: core.RetryPolicy{
			Attempts: c.RetryAttempts,
			Backoff:  c.RetryBackoff,
		},
	}
	if c.ActiveWorkers > 0 {
		// Worker node IDs are 1-based; roster the first ActiveWorkers.
		for i := 1; i <= c.ActiveWorkers; i++ {
			opts.Workers = append(opts.Workers, cluster.NodeID(i))
		}
	}
	return opts
}

func (c Config) policy() (policy.Policy, error) {
	name := c.Policy
	if name == "" {
		name = "vector-step"
	}
	level := policy.Medium
	if c.Level != "" {
		var err error
		level, err = policy.LevelFromName(c.Level)
		if err != nil {
			return nil, err
		}
	}
	return policy.New(name, c.Vector, level)
}

// Cluster is a simulated GrOUT deployment.
type Cluster struct {
	// Controller is the scheduling front end.
	Controller *core.Controller
	// Context is the polyglot API surface.
	Context *polyglot.Context
	// Fabric exposes the in-process workers (inspection and tests).
	Fabric *core.LocalFabric
}

// NewSimulatedCluster builds a controller over cfg.Workers in-process
// simulated GPU nodes joined by the paper's OCI interconnect.
func NewSimulatedCluster(cfg Config) (*Cluster, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = 2
	}
	pol, err := cfg.policy()
	if err != nil {
		return nil, err
	}
	clu := cluster.New(cluster.PaperSpec(workers))
	fab := core.NewLocalFabric(clu, kernels.StdRegistry(), cfg.Numeric)
	ctl := core.NewController(fab, pol, cfg.coreOptions(cfg.Numeric))
	return &Cluster{
		Controller: ctl,
		Context:    polyglot.NewGroutContext(ctl),
		Fabric:     fab,
	}, nil
}

// ShardedCluster is a simulated GrOUT deployment whose control plane is
// split into Config.Shards independent controller shards over one
// worker fleet (DESIGN.md §5.8). Pass Plane.Controllers and Plane.Route
// to server.NewSharded to serve it as one logical gateway.
type ShardedCluster struct {
	// Plane owns the shard controllers, the consistent-hash ring and
	// the shared fabric.
	Plane *shard.Plane
	// Contexts expose the polyglot API per shard, index-aligned with
	// Plane.Controllers.
	Contexts []*polyglot.Context
}

// NewShardedCluster builds cfg.Shards controller shards over cfg.Workers
// in-process simulated GPU nodes. Each shard schedules only its own
// worker partition; cross-shard reads ride the worker P2P lease path.
func NewShardedCluster(cfg Config) (*ShardedCluster, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = 2
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = 1
	}
	p, err := shard.New(shard.Options{
		Shards:    shards,
		Workers:   workers,
		NewPolicy: func(int) (policy.Policy, error) { return cfg.policy() },
		Core:      cfg.coreOptions(cfg.Numeric),
	})
	if err != nil {
		return nil, err
	}
	sc := &ShardedCluster{Plane: p}
	for _, ctl := range p.Controllers {
		sc.Contexts = append(sc.Contexts, polyglot.NewGroutContext(ctl))
	}
	return sc, nil
}

// Close drains and stops every shard controller. Idempotent and
// nil-receiver safe, like Cluster.Close.
func (s *ShardedCluster) Close() error {
	if s == nil || s.Plane == nil {
		return nil
	}
	return s.Plane.Close()
}

// SingleNode is the GrCUDA baseline: one simulated two-GPU node.
type SingleNode struct {
	// Runtime is the GrCUDA engine.
	Runtime *grcuda.Runtime
	// Context is the polyglot API surface (language GrCUDA).
	Context *polyglot.Context
}

// NewSingleNode builds the paper's single-node baseline.
func NewSingleNode(numeric bool) *SingleNode {
	rt := grcuda.NewRuntime(gpusim.NewNode(gpusim.OCIWorkerSpec("single")),
		kernels.StdRegistry(), grcuda.Options{ExecuteNumeric: numeric})
	return &SingleNode{Runtime: rt, Context: polyglot.NewSingleNodeContext(rt)}
}

// Remote is a GrOUT deployment over real TCP workers.
type Remote struct {
	Controller *core.Controller
	Context    *polyglot.Context
	Fabric     *transport.TCPFabric
}

// Connect dials worker processes (started with cmd/grout-worker) and
// builds a controller over them. Data is always numeric in this mode.
func Connect(workerAddrs []string, cfg Config) (*Remote, error) {
	pol, err := cfg.policy()
	if err != nil {
		return nil, err
	}
	wire, err := transport.ParseWire(cfg.Wire)
	if err != nil {
		return nil, err
	}
	fab, err := transport.DialWith(workerAddrs, transport.DialOptions{
		Wire:          wire,
		ChunkBytes:    cfg.ChunkBytes,
		DialTimeout:   cfg.DialTimeout,
		CallTimeout:   cfg.CallTimeout,
		ChunkTimeout:  cfg.ChunkTimeout,
		RetryAttempts: cfg.RetryAttempts,
		RetryBackoff:  cfg.RetryBackoff,
	})
	if err != nil {
		return nil, err
	}
	ctl := core.NewController(fab, pol, cfg.coreOptions(true))
	return &Remote{
		Controller: ctl,
		Context:    polyglot.NewGroutContext(ctl),
		Fabric:     fab,
	}, nil
}

// Close releases the remote deployment's connections (draining the
// dispatch pipeline first when one is running). It is idempotent and
// safe on a nil receiver, so `defer r.Close()` works even when Connect
// failed and returned nil.
func (r *Remote) Close() error {
	if r == nil {
		return nil
	}
	var err error
	if r.Controller != nil {
		err = r.Controller.Close()
	}
	if r.Fabric != nil {
		if cerr := r.Fabric.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Close drains and stops the controller's dispatch pipeline, if any.
// Idempotent and nil-receiver safe, like Remote.Close.
func (c *Cluster) Close() error {
	if c == nil || c.Controller == nil {
		return nil
	}
	return c.Controller.Close()
}

// GatewayClient is one tenant session on a multi-tenant gateway
// (cmd/grout-gateway). It implements the workloads.Session surface, so
// programs written against it run unchanged in-process or remotely.
type GatewayClient = server.Client

// Backpressure is the gateway's per-tenant flow-control advisory: queue
// fill plus a suggested pause. Dialed clients honor advisories by
// default, adaptively pacing their launches instead of filling the
// bounded queue and blocking on the socket;
// GatewayClient.SetHonorBackpressure(false) opts out.
type Backpressure = transport.Backpressure

// Dial opens a tenant session on the multi-tenant gateway at addr.
// tenant labels the session in the gateway's /metrics; empty picks a
// server-assigned name. Timeouts are the transport defaults; use
// server.Dial directly to tune them. The session honors the gateway's
// backpressure advisories (see Backpressure).
func Dial(addr, tenant string) (*GatewayClient, error) {
	return server.Dial(addr, tenant, 0, 0)
}

// Policies lists the available inter-node policy names.
func Policies() []string { return policy.Names() }

// Validate sanity-checks a config without building anything.
func (c Config) Validate() error {
	if c.Workers < 0 {
		return fmt.Errorf("grout: negative worker count %d", c.Workers)
	}
	if c.Shards < 0 {
		return fmt.Errorf("grout: negative shard count %d", c.Shards)
	}
	if c.Shards > 0 && c.Workers > 0 && c.Shards > c.Workers {
		return fmt.Errorf("grout: %d shards need at least %d workers, have %d",
			c.Shards, c.Shards, c.Workers)
	}
	if _, err := transport.ParseWire(c.Wire); err != nil {
		return err
	}
	_, err := c.policy()
	return err
}
