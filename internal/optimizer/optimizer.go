// Package optimizer rewrites a lookahead window of admitted-but-
// undispatched CEs: elementwise kernel fusion, transfer coalescing, and
// redundant-move planning (DESIGN.md §5.6). The controller parks window
// entries at admission, runs the passes, then admits the rewritten
// window in one batch — so every rewrite happens before the ticket
// sequencer assigns an order, and the serial-equivalence guarantee of
// pipelined dispatch carries over unchanged.
//
// The package is deliberately state-free: it sees plain Op descriptors
// (kernel def, launch config, argument bindings, tenant tag) and returns
// rewritten descriptors plus plans. Controller state — versions,
// lineage, placement — stays in internal/core, which translates both
// ways. That keeps the passes unit-testable without a cluster and keeps
// the import direction acyclic (core → optimizer → minicuda).
package optimizer

import (
	"grout/internal/kernels"
	"grout/internal/minicuda"
)

// Arg is one kernel argument of a window op: an array binding (Array
// nonzero, Meta.IsBuffer set) or a scalar (Meta.Scalar).
type Arg struct {
	// Array is the controller-global array ID; zero for scalars.
	Array uint64
	// Meta is the scheduler-visible shape, reused for access analysis of
	// rewritten kernels.
	Meta kernels.ArgMeta
}

// Op is one parked CE, stripped to what the passes need.
type Op struct {
	Def         *kernels.Def
	Grid, Block int
	Args        []Arg
	// Tenant isolates namespaces: fusion never combines ops with
	// different tags (nil is the direct embedded client). Compared
	// with ==, so tags must be comparable (core uses session pointers).
	Tenant any
	// Ref is the caller's opaque handle for this op (the controller's
	// window entry); passes never inspect it.
	Ref any
	// Absorbed collects the Refs of producers fused into this op, in
	// fusion order. The controller resolves their completions alongside
	// this op's.
	Absorbed []any
	// DroppedArrays lists array IDs whose writes were elided by fusion
	// (dead intermediates): the rewritten op no longer produces a new
	// version of them.
	DroppedArrays []uint64
}

// metas projects the op's argument metadata for Def.Access/CostLaunch.
func (o *Op) metas() []kernels.ArgMeta {
	m := make([]kernels.ArgMeta, len(o.Args))
	for i, a := range o.Args {
		m[i] = a.Meta
	}
	return m
}

// elementwise returns the op's fusion descriptor, if its kernel has the
// canonical shape.
func (o *Op) elementwise() *minicuda.Elementwise {
	ew, _ := o.Def.Fusion.(*minicuda.Elementwise)
	return ew
}

// touches reports whether any argument binds the array.
func (o *Op) touches(id uint64) bool {
	for _, a := range o.Args {
		if a.Array == id {
			return true
		}
	}
	return false
}

// Compiler turns fused kernel source into a registered definition. The
// controller's implementation goes through the shared compile cache and
// broadcasts the build to the fabric, exactly like a client BuildKernel.
type Compiler func(src string) (*kernels.Def, error)
