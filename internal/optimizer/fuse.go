package optimizer

import (
	"grout/internal/memmodel"
	"grout/internal/minicuda"
)

// FuseResult is the outcome of FusePass.
type FuseResult struct {
	// Ops is the rewritten window, in order. Fused consumers keep their
	// position; absorbed producers are removed.
	Ops []*Op
	// Fused counts absorbed producers (CEs eliminated from the window).
	Fused int
}

// FusePass greedily fuses elementwise producer→consumer pairs inside one
// tenant. A pair (P at i, C at j, i<j) fuses when:
//
//   - both kernels carry the compiler's Elementwise descriptor;
//   - same tenant tag, grid, block, and guard argument value (fusion
//     equates the two launches' thread sets);
//   - C reads at least one array P stores, and every C parameter bound
//     to a P-stored array is read-only in C;
//   - no op between them touches any array P binds (P's effects move
//     from slot i to slot j).
//
// The store of an intermediate is elided ("dropped") when the window
// proves it dead: P is its only binding, and the next op after C that
// touches it overwrites it fully before anything reads it. An
// intermediate the window stops tracking (no later toucher) stays
// materialized — a host read or a CE beyond the window may still want
// it.
//
// Compilation of the fused source goes through compile; a compile
// failure skips that pair (the window stays correct, just unfused).
// Rounds repeat until a fixpoint so chains collapse: fusing A→B yields a
// kernel that itself carries an Elementwise descriptor and can absorb
// into C next round.
func FusePass(ops []*Op, compile Compiler) FuseResult {
	res := FuseResult{Ops: ops}
	if compile == nil {
		return res
	}
	for round := 0; round < len(ops); round++ {
		if !fuseOne(&res, compile) {
			break
		}
	}
	return res
}

// fuseOne applies the first legal fusion and reports whether one fired.
func fuseOne(res *FuseResult, compile Compiler) bool {
	ops := res.Ops
	for j := 1; j < len(ops); j++ {
		c := ops[j]
		cEw := c.elementwise()
		if cEw == nil {
			continue
		}
		for i := j - 1; i >= 0; i-- {
			fused := tryFuse(ops, i, j, compile)
			if fused == nil {
				continue
			}
			// Producer i is absorbed into slot j.
			out := make([]*Op, 0, len(ops)-1)
			out = append(out, ops[:i]...)
			out = append(out, ops[i+1:j]...)
			out = append(out, fused)
			out = append(out, ops[j+1:]...)
			res.Ops = out
			res.Fused++
			return true
		}
	}
	return false
}

// touchesAnyOf reports whether o binds any array the other op binds.
func (o *Op) touchesAnyOf(other *Op) bool {
	for _, a := range other.Args {
		if a.Array != 0 && o.touches(a.Array) {
			return true
		}
	}
	return false
}

// tryFuse checks the full legality of fusing producer i into consumer j
// and returns the rewritten op, or nil.
func tryFuse(ops []*Op, i, j int, compile Compiler) *Op {
	p, c := ops[i], ops[j]
	pEw, cEw := p.elementwise(), c.elementwise()
	if pEw == nil || cEw == nil || p.Tenant != c.Tenant {
		return nil
	}
	if p.Grid != c.Grid || p.Block != c.Block {
		return nil
	}
	if len(p.Args) != pEw.NumParams() || len(c.Args) != cEw.NumParams() {
		return nil // cost-only metas or mismatched binding; be safe
	}
	if p.Args[pEw.Guard].Meta.Scalar != c.Args[cEw.Guard].Meta.Scalar {
		return nil
	}

	// Producer stores by array ID; the last store to an array wins, so a
	// consumer read links to the final value.
	storeOf := map[uint64]int{}
	for _, si := range pEw.Stores {
		if id := p.Args[si].Array; id != 0 {
			storeOf[id] = si
		}
	}
	link := map[int]int{}
	for ci, ca := range c.Args {
		si, stored := storeOf[ca.Array]
		if ca.Array == 0 || !stored {
			continue
		}
		if cEw.IsStore(ci) {
			return nil // consumer overwrites the intermediate: order matters
		}
		link[ci] = si
	}
	if len(link) == 0 {
		return nil
	}

	// Moving P's execution to slot j must not reorder it around anything
	// touching its arrays.
	for k := i + 1; k < j; k++ {
		if ops[k].touchesAnyOf(p) {
			return nil
		}
	}

	// Dead-intermediate analysis: elide stores whose value nothing can
	// observe before a full overwrite inside the window.
	drop := map[int]bool{}
	var dropped []uint64
	for _, si := range deduped(link) {
		id := p.Args[si].Array
		if bindings(p, id)+bindings(c, id) > len(linkedTo(link, si))+1 {
			continue // aliased elsewhere in the pair; keep the store
		}
		if overwrittenUnread(ops, j, id) {
			drop[si] = true
			dropped = append(dropped, id)
		}
	}

	fk, err := minicuda.FuseElementwise(pEw, cEw, minicuda.FuseSpec{Link: link, Drop: drop})
	if err != nil {
		return nil
	}
	def, err := compile(fk.Src)
	if err != nil || def == nil {
		return nil
	}

	args := make([]Arg, len(fk.Params))
	for n, fp := range fk.Params {
		if fp.FromConsumer {
			args[n] = c.Args[fp.Index]
		} else {
			args[n] = p.Args[fp.Index]
		}
	}
	absorbed := make([]any, 0, len(p.Absorbed)+1+len(c.Absorbed))
	absorbed = append(absorbed, c.Absorbed...)
	absorbed = append(absorbed, p.Absorbed...)
	absorbed = append(absorbed, p.Ref)
	return &Op{
		Def:           def,
		Grid:          c.Grid,
		Block:         c.Block,
		Args:          args,
		Tenant:        c.Tenant,
		Ref:           c.Ref,
		Absorbed:      absorbed,
		DroppedArrays: append(append(append([]uint64(nil), c.DroppedArrays...), p.DroppedArrays...), dropped...),
	}
}

// deduped returns the distinct producer store params of a link map.
func deduped(link map[int]int) []int {
	seen := map[int]bool{}
	var out []int
	for _, si := range link {
		if !seen[si] {
			seen[si] = true
			out = append(out, si)
		}
	}
	return out
}

// linkedTo returns the consumer params linked to a producer store.
func linkedTo(link map[int]int, si int) []int {
	var out []int
	for ci, s := range link {
		if s == si {
			out = append(out, ci)
		}
	}
	return out
}

// bindings counts how many of the op's args bind the array.
func bindings(o *Op, id uint64) int {
	n := 0
	for _, a := range o.Args {
		if a.Array == id {
			n++
		}
	}
	return n
}

// overwrittenUnread reports whether, after index j, the first window op
// touching the array overwrites all of it without reading it. False when
// nothing later touches it (the value may escape the window).
func overwrittenUnread(ops []*Op, j int, id uint64) bool {
	for m := j + 1; m < len(ops); m++ {
		o := ops[m]
		if !o.touches(id) {
			continue
		}
		accs := o.Def.Access(o.metas())
		full := false
		for ai, a := range o.Args {
			if a.Array != id || ai >= len(accs) {
				continue
			}
			acc := accs[ai].Normalize()
			if acc.Mode.Reads() || acc.Fraction < 1 {
				return false
			}
			if acc.Mode == memmodel.Write {
				full = true
			}
		}
		return full
	}
	return false
}
