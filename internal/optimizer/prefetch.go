package optimizer

import "grout/internal/cluster"

// PlacedOp is the post-placement view of one window op, as the
// controller sees it after the batched policy evaluation: where it will
// run and which array arguments will need their old bytes moved there
// (reads, or partial writes, of arrays whose fresh replica the target is
// not predicted to hold).
type PlacedOp struct {
	Target cluster.NodeID
	// Needs lists array IDs this op must pull to Target before running.
	Needs []uint64
	// Writes lists array IDs this op writes (any fraction): a write
	// invalidates other replicas, so later ops in the window must fetch
	// from the writer, not ride an earlier bulk move.
	Writes []uint64
}

// Prefetch is one planned bulk transfer: when the leader op dispatches,
// the controller ships every listed array to the target in a single
// bulk-channel operation instead of len(Arrays) individual moves.
type Prefetch struct {
	// Leader is the window index whose dispatch performs the move.
	Leader int
	Target cluster.NodeID
	// Arrays is deduplicated, in first-need order; always ≥ 2 (a single
	// move gains nothing from coalescing).
	Arrays []uint64
}

// PlanPrefetch coalesces the moves of maximal consecutive same-target
// runs of window ops. Within a run, each array is shipped once (the run
// leader carries it); an array written by an earlier op of the same
// window is excluded — its bytes are not final until that op commits, so
// the regular per-op move path handles it. Runs needing fewer than two
// arrays yield no plan.
//
// The plan is a hint, not a promise: dispatch re-validates every array
// against authoritative replica state (and skips ones already present or
// since-invalidated), and a failover that reassigns the leader simply
// drops the bulk move — followers fall back to their own moves.
func PlanPrefetch(ops []PlacedOp) []Prefetch {
	var plans []Prefetch
	written := map[uint64]bool{}
	for start := 0; start < len(ops); {
		end := start + 1
		for end < len(ops) && ops[end].Target == ops[start].Target {
			end++
		}
		seen := map[uint64]bool{}
		var arrs []uint64
		for k := start; k < end; k++ {
			for _, id := range ops[k].Needs {
				if !seen[id] && !written[id] {
					seen[id] = true
					arrs = append(arrs, id)
				}
			}
			for _, id := range ops[k].Writes {
				written[id] = true
			}
		}
		if len(arrs) >= 2 {
			plans = append(plans, Prefetch{Leader: start, Target: ops[start].Target, Arrays: arrs})
		}
		start = end
	}
	return plans
}
