package optimizer

import (
	"testing"

	"grout/internal/cluster"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/minicuda"
)

const producerSrc = `__global__ void scale(float *s, const float *x, float a, int n) {
	int i = blockIdx.x * blockDim.x + threadIdx.x;
	if (i < n) { s[i] = a * x[i]; }
}`

const consumerSrc = `__global__ void addv(float *o, const float *u, const float *v, int n) {
	int i = blockIdx.x * blockDim.x + threadIdx.x;
	if (i < n) { o[i] = u[i] + v[i]; }
}`

func compileDef(t *testing.T, src string) *kernels.Def {
	t.Helper()
	def, err := minicuda.Compile(src, "")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if def.Fusion == nil {
		t.Fatalf("kernel not elementwise:\n%s", src)
	}
	return def
}

func testCompiler(t *testing.T) Compiler {
	return func(src string) (*kernels.Def, error) { return minicuda.Compile(src, "") }
}

func arr(id uint64, n int64) Arg {
	return Arg{Array: id, Meta: kernels.ArgMeta{IsBuffer: true, Len: n}}
}
func scal(v float64) Arg { return Arg{Meta: kernels.ArgMeta{Scalar: v}} }
func refs(ops []*Op) (out []any) {
	for _, o := range ops {
		out = append(out, o.Ref)
	}
	return
}

// scaleOp builds "scale(s, x, a, n)": s ← a*x.
func scaleOp(t *testing.T, dst, src uint64, ref any) *Op {
	return &Op{
		Def: compileDef(t, producerSrc), Grid: 4, Block: 8,
		Args: []Arg{arr(dst, 32), arr(src, 32), scal(2), scal(32)},
		Ref:  ref,
	}
}

// addOp builds "addv(o, u, v, n)": o ← u+v.
func addOp(t *testing.T, dst, u, v uint64, ref any) *Op {
	return &Op{
		Def: compileDef(t, consumerSrc), Grid: 4, Block: 8,
		Args: []Arg{arr(dst, 32), arr(u, 32), arr(v, 32), scal(32)},
		Ref:  ref,
	}
}

func TestFusePassPair(t *testing.T) {
	ops := []*Op{
		scaleOp(t, 10, 11, "p"),   // 10 ← 2*11
		addOp(t, 12, 10, 13, "c"), // 12 ← 10+13: reads the intermediate
	}
	res := FusePass(ops, testCompiler(t))
	if res.Fused != 1 || len(res.Ops) != 1 {
		t.Fatalf("fused=%d ops=%d, want 1/1", res.Fused, len(res.Ops))
	}
	f := res.Ops[0]
	if f.Ref != "c" || len(f.Absorbed) != 1 || f.Absorbed[0] != "p" {
		t.Fatalf("refs wrong: ref=%v absorbed=%v", f.Ref, f.Absorbed)
	}
	if f.Def.Fusion == nil {
		t.Fatal("fused def lost elementwise shape")
	}
	// Nothing downstream touches array 10, so its store must survive.
	if len(f.DroppedArrays) != 0 {
		t.Fatalf("unexpected drop: %v", f.DroppedArrays)
	}
	// Args: producer keeps s,x,a,n; consumer keeps o,v,n (u linked away).
	want := []uint64{10, 11, 0, 0, 12, 13, 0}
	if len(f.Args) != len(want) {
		t.Fatalf("args %v", f.Args)
	}
	for i, w := range want {
		if f.Args[i].Array != w {
			t.Fatalf("arg %d: got array %d want %d", i, f.Args[i].Array, w)
		}
	}
}

func TestFusePassChainCollapses(t *testing.T) {
	ops := []*Op{
		scaleOp(t, 10, 11, "a"),
		scaleOp(t, 12, 10, "b"),   // reads 10
		addOp(t, 13, 12, 10, "c"), // reads both intermediates
	}
	res := FusePass(ops, testCompiler(t))
	if res.Fused != 2 || len(res.Ops) != 1 {
		t.Fatalf("fused=%d ops=%d, want 2/1", res.Fused, len(res.Ops))
	}
	if got := res.Ops[0].Absorbed; len(got) != 2 {
		t.Fatalf("absorbed %v", got)
	}
}

func TestFusePassTenantBoundary(t *testing.T) {
	p := scaleOp(t, 10, 11, "p")
	c := addOp(t, 12, 10, 13, "c")
	p.Tenant, c.Tenant = "t1", "t2"
	if res := FusePass([]*Op{p, c}, testCompiler(t)); res.Fused != 0 {
		t.Fatalf("fused across tenants: %+v", res)
	}
	c.Tenant = "t1"
	if res := FusePass([]*Op{p, c}, testCompiler(t)); res.Fused != 1 {
		t.Fatal("same tenant should fuse")
	}
}

func TestFusePassLaunchMismatch(t *testing.T) {
	p := scaleOp(t, 10, 11, "p")
	c := addOp(t, 12, 10, 13, "c")
	c.Grid = 5
	if res := FusePass([]*Op{p, c}, testCompiler(t)); res.Fused != 0 {
		t.Fatal("fused across grid mismatch")
	}
	c.Grid = 4
	c.Args[3] = scal(16) // different guard value
	if res := FusePass([]*Op{p, c}, testCompiler(t)); res.Fused != 0 {
		t.Fatal("fused across guard mismatch")
	}
}

func TestFusePassInterference(t *testing.T) {
	ops := []*Op{
		scaleOp(t, 10, 11, "p"),
		scaleOp(t, 11, 14, "w"), // overwrites the producer's input
		addOp(t, 12, 10, 13, "c"),
	}
	res := FusePass(ops, testCompiler(t))
	if res.Fused != 0 {
		t.Fatalf("fused across an interfering writer: %+v", res.Ops)
	}
	// An unrelated op between them is fine.
	ops = []*Op{
		scaleOp(t, 10, 11, "p"),
		scaleOp(t, 20, 21, "w"),
		addOp(t, 12, 10, 13, "c"),
	}
	res = FusePass(ops, testCompiler(t))
	if res.Fused != 1 || len(res.Ops) != 2 {
		t.Fatalf("unrelated op blocked fusion: fused=%d", res.Fused)
	}
	if res.Ops[0].Ref != "w" || res.Ops[1].Ref != "c" {
		t.Fatalf("order wrong: %v", refs(res.Ops))
	}
}

func TestFusePassConsumerStoresLinked(t *testing.T) {
	ops := []*Op{
		scaleOp(t, 10, 11, "p"),
		scaleOp(t, 10, 10, "c"), // in-place consumer of the intermediate
	}
	if res := FusePass(ops, testCompiler(t)); res.Fused != 0 {
		t.Fatal("fused a consumer that overwrites the intermediate")
	}
}

// fakeToucher builds a non-elementwise op with explicit access modes so
// the dead-intermediate analysis sees exactly the given use.
func fakeToucher(id uint64, mode memmodel.AccessMode, fraction float64) *Op {
	def := &kernels.Def{
		Name: "touch",
		Sig:  kernels.Signature{Params: []kernels.Param{{Name: "b", Pointer: true}}},
		AccessOf: func(meta []kernels.ArgMeta) []memmodel.Access {
			return []memmodel.Access{{Param: 0, Mode: mode, Fraction: fraction, Passes: 1}}
		},
	}
	return &Op{Def: def, Grid: 4, Block: 8, Args: []Arg{arr(id, 32)}}
}

func TestFusePassDropStore(t *testing.T) {
	mk := func(later *Op) FuseResult {
		ops := []*Op{
			scaleOp(t, 10, 11, "p"),
			addOp(t, 12, 10, 13, "c"),
		}
		if later != nil {
			ops = append(ops, later)
		}
		return FusePass(ops, testCompiler(t))
	}

	// Fully overwritten before any read: the store is dead.
	res := mk(fakeToucher(10, memmodel.Write, 1))
	if res.Fused != 1 || len(res.Ops[len(res.Ops)-2].DroppedArrays) != 1 ||
		res.Ops[len(res.Ops)-2].DroppedArrays[0] != 10 {
		t.Fatalf("expected drop of 10: %+v", res.Ops[0])
	}

	// Read first: keep.
	if res := mk(fakeToucher(10, memmodel.Read, 1)); res.Fused != 1 &&
		len(res.Ops[0].DroppedArrays) != 0 {
		t.Fatal("dropped a live intermediate (read)")
	}
	// Partial write still needs old bytes: keep.
	if res := mk(fakeToucher(10, memmodel.Write, 0.5)); len(res.Ops[0].DroppedArrays) != 0 {
		t.Fatal("dropped a live intermediate (partial write)")
	}
	// Untouched for the rest of the window: keep (may escape).
	if res := mk(nil); len(res.Ops[0].DroppedArrays) != 0 {
		t.Fatal("dropped an escaping intermediate")
	}
}

func TestPlanPrefetch(t *testing.T) {
	w1, w2 := cluster.NodeID(1), cluster.NodeID(2)
	plans := PlanPrefetch([]PlacedOp{
		{Target: w1, Needs: []uint64{10, 11}},
		{Target: w1, Needs: []uint64{11, 12}, Writes: []uint64{20}},
		{Target: w1, Needs: []uint64{20, 13}}, // 20 written above: excluded
		{Target: w2, Needs: []uint64{14}},     // run of one array: no plan
		{Target: w1, Needs: []uint64{15, 16}},
	})
	if len(plans) != 2 {
		t.Fatalf("plans: %+v", plans)
	}
	p0 := plans[0]
	if p0.Leader != 0 || p0.Target != w1 {
		t.Fatalf("leader/target: %+v", p0)
	}
	want := []uint64{10, 11, 12, 13}
	if len(p0.Arrays) != len(want) {
		t.Fatalf("arrays: %v want %v", p0.Arrays, want)
	}
	for i, id := range want {
		if p0.Arrays[i] != id {
			t.Fatalf("arrays: %v want %v", p0.Arrays, want)
		}
	}
	if plans[1].Leader != 4 || len(plans[1].Arrays) != 2 {
		t.Fatalf("second run: %+v", plans[1])
	}
}
