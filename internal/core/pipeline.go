// Pipelined CE dispatch.
//
// With Options.Pipeline the controller's per-CE work splits in two:
//
//   - The scheduling stage (Submit) runs on the caller's goroutine: DAG
//     insertion, the policy decision, and the membership prediction. This
//     is the timed section the paper's Figure 9 measures, and it never
//     blocks on data movement.
//   - The dispatch stage runs on per-worker dispatcher goroutines fed by
//     bounded queues: waiting for DAG ancestors, issuing EnsureArray /
//     MoveArray / Launch, and committing results to the authoritative
//     registry.
//
// Ordering is enforced by dependencies, not by serializing the stages:
// a dispatcher blocks until (a) every DAG ancestor of its CE has
// committed (waitDeps) and (b) every array copy the scheduler predicted
// for its target has been published by the producing CE (waitLocalCopy).
// Both waits are keyed to earlier-submitted CEs only, so the
// submission order is a topological order of the wait graph and no
// deadlock is possible.
//
// Virtual-time determinism: fabrics that simulate time (LocalFabric)
// mutate shared NIC timelines in call order, so bit-identical virtual
// times additionally require fabric operations to be issued in
// submission order. The pipeline therefore runs a ticket sequencer —
// dispatcher i may only touch the fabric when every earlier ticket has
// finished — unless the fabric declares itself safe for concurrent
// dispatch via ConcurrentDispatcher. Scheduling still overlaps dispatch
// either way; the sequencer only orders the dispatch stage itself, and
// subsumes the two dependency waits (an ancestor always holds an
// earlier ticket). The scheduler's membership prediction
// (predictMembership) guarantees every placement decision sees exactly
// the data-location view the serial controller would have had, so the
// pipelined schedule — placements, transfers, and virtual times — is
// identical to the serial one. TestPipelineMatchesSerial checks this
// property over random DAGs, seeds, and policies.
package core

import (
	"fmt"
	"sync"

	"grout/internal/cluster"
	"grout/internal/sim"
)

// ConcurrentDispatcher is implemented by fabrics whose operations are
// safe to issue from multiple goroutines at once (real transports doing
// wall-clock I/O). Virtual-time fabrics must not implement it: their
// shared timelines make operation order observable.
type ConcurrentDispatcher interface {
	ConcurrentDispatch() bool
}

// defaultPipelineDepth bounds each worker's dispatch queue when
// Options.PipelineDepth is zero.
const defaultPipelineDepth = 64

// job is one scheduled CE traveling through the dispatch stage.
type job struct {
	s   *scheduled
	seq uint64
	p   *Pending
	// followers are the Pendings of CEs the window optimizer fused into
	// this one; they resolve with the same end time and error.
	followers []*Pending
}

// finish resolves the job's Pending and every follower.
func (j *job) finish(end sim.VirtualTime, err error) {
	j.p.end, j.p.err = end, err
	close(j.p.done)
	for _, f := range j.followers {
		f.end, f.err = end, err
		close(f.done)
	}
}

// jobBatch is one flushed optimizer window in flight to the batch
// dispatcher. scheds is the jobs' backing slab; the dispatcher recycles
// it once the whole window has dispatched (nothing retains a *scheduled
// past dispatch — the serial path's schedBuf reuse relies on the same
// contract).
type jobBatch struct {
	jobs   []job
	scheds []scheduled
}

// pipeline is the dispatch engine behind Options.Pipeline.
type pipeline struct {
	c         *Controller
	queues    map[cluster.NodeID]chan *job
	wg        sync.WaitGroup
	sequenced bool

	// batch feeds whole optimizer windows to a single dispatcher
	// goroutine: one channel handoff per window instead of one ticket
	// hand-over per CE, which is where the pipelined submit path loses
	// against serial on scheduler-bound streams. Jobs inside a batch run
	// FIFO on that one goroutine; the ticket sequencer still orders them
	// against any per-worker queue traffic.
	batch chan jobBatch

	// mu guards the submission/completion counters and closed flag.
	mu        sync.Mutex
	drainCond *sync.Cond
	submitted uint64
	completed uint64
	closed    bool

	// err is the sticky first terminal error; guarded by c.mu so the
	// controller's wait loops can check it under their own lock.
	err error

	// ticket sequencer (virtual-time fabrics only).
	seqMu   sync.Mutex
	seqCond *sync.Cond
	next    uint64
}

func newPipeline(c *Controller, depth int) *pipeline {
	if depth <= 0 {
		depth = defaultPipelineDepth
	}
	pl := &pipeline{
		c:         c,
		queues:    make(map[cluster.NodeID]chan *job),
		sequenced: true,
	}
	if cd, ok := c.fabric.(ConcurrentDispatcher); ok && cd.ConcurrentDispatch() {
		pl.sequenced = false
	}
	pl.drainCond = sync.NewCond(&pl.mu)
	pl.seqCond = sync.NewCond(&pl.seqMu)
	for _, w := range c.fabric.Workers() {
		q := make(chan *job, depth)
		pl.queues[w] = q
		pl.wg.Add(1)
		go pl.dispatcher(q)
	}
	pl.batch = make(chan jobBatch, depth)
	pl.wg.Add(1)
	go pl.batchDispatcher()
	return pl
}

// enqueue hands a scheduled CE to its target's dispatcher, blocking when
// the queue is full (backpressure on the scheduling stage). Tickets are
// issued in call order, which — scheduling methods being single-goroutine
// by contract — is the schedule order.
func (pl *pipeline) enqueue(s *scheduled) (*Pending, error) {
	q, ok := pl.queues[s.target]
	if !ok {
		return nil, fmt.Errorf("core: policy assigned unknown worker %v", s.target)
	}
	j := &job{s: s, p: &Pending{done: make(chan struct{})}}
	pl.mu.Lock()
	if pl.closed {
		pl.mu.Unlock()
		return nil, fmt.Errorf("core: controller closed")
	}
	j.seq = pl.submitted
	pl.submitted++
	pl.mu.Unlock()
	q <- j
	return j.p, nil
}

// enqueueBatch hands a flushed optimizer window to the batch dispatcher
// in one operation. Jobs arrive with their Pendings already made (Submit
// returned them while the CEs were parked); tickets are issued here, in
// window order, so the sequencer interleaves the batch correctly with
// any directly enqueued CEs.
func (pl *pipeline) enqueueBatch(b jobBatch) error {
	if len(b.jobs) == 0 {
		return nil
	}
	pl.mu.Lock()
	if pl.closed {
		pl.mu.Unlock()
		return fmt.Errorf("core: controller closed")
	}
	for i := range b.jobs {
		b.jobs[i].seq = pl.submitted
		pl.submitted++
	}
	pl.mu.Unlock()
	pl.batch <- b
	return nil
}

func (pl *pipeline) dispatcher(q chan *job) {
	defer pl.wg.Done()
	for j := range q {
		if pl.sequenced {
			pl.waitTurn(j.seq)
		}
		pl.runJob(j)
		if pl.sequenced {
			pl.advance()
		}
		pl.mu.Lock()
		pl.completed++
		pl.drainCond.Broadcast()
		pl.mu.Unlock()
	}
}

// batchDispatcher drains whole optimizer windows. The jobs of one batch
// carry consecutive tickets, so in sequenced mode waitTurn degenerates
// to a cheap check after the first job.
func (pl *pipeline) batchDispatcher() {
	defer pl.wg.Done()
	for b := range pl.batch {
		for i := range b.jobs {
			j := &b.jobs[i]
			if pl.sequenced {
				pl.waitTurn(j.seq)
			}
			pl.runJob(j)
			if pl.sequenced {
				pl.advance()
			}
		}
		pl.mu.Lock()
		pl.completed += uint64(len(b.jobs))
		pl.drainCond.Broadcast()
		pl.mu.Unlock()
		pl.c.putSchedSlab(b.scheds)
	}
}

// runJob dispatches one CE (or records the sticky failure) and resolves
// its Pending and any fusion followers.
func (pl *pipeline) runJob(j *job) {
	err := pl.sticky()
	var end = j.p.end
	if err == nil {
		end, err = pl.c.dispatch(j.s)
		if err != nil {
			pl.fail(err)
		}
	} else {
		// A prior CE failed terminally; record this one as failed
		// too so dependents stop waiting on it.
		pl.c.commitError(j.s, err)
	}
	j.finish(end, err)
}

// sticky reads the first terminal error under the controller lock.
func (pl *pipeline) sticky() error {
	pl.c.mu.Lock()
	defer pl.c.mu.Unlock()
	return pl.err
}

// fail records the first terminal error and wakes every wait loop.
func (pl *pipeline) fail(err error) {
	pl.c.mu.Lock()
	if pl.err == nil {
		pl.err = err
	}
	pl.c.cond.Broadcast()
	pl.c.mu.Unlock()
}

// waitTurn blocks until every earlier ticket has finished dispatching.
func (pl *pipeline) waitTurn(seq uint64) {
	pl.seqMu.Lock()
	for pl.next != seq {
		pl.seqCond.Wait()
	}
	pl.seqMu.Unlock()
}

func (pl *pipeline) advance() {
	pl.seqMu.Lock()
	pl.next++
	pl.seqCond.Broadcast()
	pl.seqMu.Unlock()
}

// drain blocks until every submitted CE has dispatched and returns the
// sticky error, if any.
func (pl *pipeline) drain() error {
	pl.mu.Lock()
	target := pl.submitted
	for pl.completed < target {
		pl.drainCond.Wait()
	}
	pl.mu.Unlock()
	return pl.sticky()
}

// close drains, stops the dispatchers, and makes further submissions
// fail. Idempotent.
func (pl *pipeline) close() error {
	err := pl.drain()
	pl.mu.Lock()
	if pl.closed {
		pl.mu.Unlock()
		return err
	}
	pl.closed = true
	pl.mu.Unlock()
	for _, q := range pl.queues {
		close(q)
	}
	close(pl.batch)
	pl.wg.Wait()
	return err
}
