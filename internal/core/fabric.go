// Package core implements GrOUT itself: the Controller/Worker architecture
// of paper §IV. The Controller keeps the Global DAG of Computational
// Elements, tracks which nodes hold an up-to-date copy of every
// framework-managed array, applies an inter-node scheduling policy
// (Algorithm 1) and issues the minimal data movements
// (controller→worker sends and worker↔worker P2P). Each Worker runs the
// GrCUDA intra-node engine (Algorithm 2) over its simulated GPUs.
//
// The Controller talks to workers through the Fabric interface. LocalFabric
// runs every worker in-process over the cluster simulator in virtual time —
// this is the configuration all experiments use. The transport package
// provides a TCP fabric with the same semantics over real sockets.
package core

import (
	"errors"
	"fmt"

	"grout/internal/cluster"
	"grout/internal/dag"
	"grout/internal/gpusim"
	"grout/internal/grcuda"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/minicuda"
	"grout/internal/sim"
)

// ArgRef is a kernel argument by global array ID (or a scalar).
type ArgRef struct {
	IsArray bool
	Array   dag.ArrayID
	Scalar  float64
}

// ArrRef makes an array argument reference.
func ArrRef(id dag.ArrayID) ArgRef { return ArgRef{IsArray: true, Array: id} }

// ScalarRef makes a scalar argument reference.
func ScalarRef(v float64) ArgRef { return ArgRef{Scalar: v} }

// Invocation is a kernel launch expressed against global array IDs.
type Invocation struct {
	Kernel      string
	Grid, Block int
	Args        []ArgRef
}

// Fabric is the Controller's view of the worker fleet and interconnect.
type Fabric interface {
	// Workers lists the worker node IDs.
	Workers() []cluster.NodeID
	// EnsureArray mirrors a global array's metadata on a worker
	// (idempotent; allocates host memory there).
	EnsureArray(w cluster.NodeID, meta grcuda.ArrayMeta) error
	// MoveArray ships array id from src to dst (either may be the
	// controller, ControllerID). srcBuf carries the payload when src is
	// the controller; dstBuf, when non-nil and dst is the controller,
	// receives the payload. The move may not start before srcReady.
	// Returns the arrival time at dst.
	//
	// Concurrent-bulk contract: a fabric that declares
	// ConcurrentDispatcher must accept MoveArray calls for *different*
	// arrays concurrently — with each other and with Launch/EnsureArray/
	// Healthy on any worker — without blocking small control operations
	// behind a large payload. Concurrent moves of the same array are the
	// Controller's responsibility to order (the DAG serializes them).
	MoveArray(id dag.ArrayID, src, dst cluster.NodeID, srcReady sim.VirtualTime,
		srcBuf, dstBuf *kernels.Buffer) (sim.VirtualTime, error)
	// Launch executes a kernel on worker w, starting no earlier than
	// ready; returns the completion time.
	Launch(w cluster.NodeID, inv Invocation, ready sim.VirtualTime) (sim.VirtualTime, error)
	// EstimateTransfer predicts an idle-network transfer duration, for
	// the min-transfer-time policy's interconnection matrix.
	EstimateTransfer(src, dst cluster.NodeID, n memmodel.Bytes) sim.VirtualTime
	// FreeArray drops a worker's replica of an array, if present.
	FreeArray(w cluster.NodeID, id dag.ArrayID) error
	// Healthy reports whether a worker currently responds; the
	// Controller's failover uses it to identify which node an operation
	// actually died on.
	Healthy(w cluster.NodeID) bool
}

// BulkEstimator is an optional Fabric fast path: fill the idle-network
// estimates from one source to many destinations in a single call, so the
// controller's O(workers) scheduling loop pays one interface call per
// (array, source) instead of one per (array, worker) cell. out is indexed
// by destination NodeID and must be at least max(dsts)+1 long.
type BulkEstimator interface {
	EstimateTransferAll(src cluster.NodeID, n memmodel.Bytes, dsts []cluster.NodeID, out []sim.VirtualTime)
}

// StallPredictor is an optional Fabric extension: predict the UVM
// migration stall a kernel with the given working-set size and dominant
// access pattern would pay on worker w after add more bytes landed there.
// The controller only queries it for policies that request the stall view
// (policy.StallAware), and treats fabrics without the extension — or
// workers it cannot see into — as stall-free, which degrades gracefully
// to pure transfer-time ranking.
type StallPredictor interface {
	PredictStall(w cluster.NodeID, add, working memmodel.Bytes,
		pattern memmodel.Pattern) sim.VirtualTime
}

// BulkMover is an optional Fabric fast path for the window optimizer's
// transfer coalescing (DESIGN.md §5.6): ship several controller-resident
// arrays to one worker as a single bulk operation instead of len(ids)
// individual moves. bufs[i] is the controller payload for ids[i] (nil in
// cost-only mode). Every array must already be ensured on dst. The move
// may not start before srcReady; the returned time is when the whole
// bulk frame has arrived. Fabrics that cannot do better than a per-array
// loop should not implement this — the controller falls back to
// MoveArray and loses nothing.
type BulkMover interface {
	MoveArrays(dst cluster.NodeID, ids []dag.ArrayID, srcReady sim.VirtualTime,
		bufs []*kernels.Buffer) (sim.VirtualTime, error)
}

// LocalFabric runs workers in-process over the cluster simulator.
// Operations mutate shared virtual timelines and must not be issued
// concurrently; the controller's pipelined mode sequences them (it does
// not implement ConcurrentDispatcher).
type LocalFabric struct {
	clu     *cluster.Cluster
	reg     *kernels.Registry
	numeric bool
	workers map[cluster.NodeID]*grcuda.Runtime
	// valsBuf is Launch's argument scratch; safe because operations are
	// never concurrent (see above).
	valsBuf []grcuda.Value
}

// NewLocalFabric builds an in-process fabric: one GrCUDA runtime per
// worker in the cluster spec. With numeric set, kernels execute their host
// implementations and transfers copy real buffers.
func NewLocalFabric(clu *cluster.Cluster, reg *kernels.Registry, numeric bool) *LocalFabric {
	f := &LocalFabric{
		clu:     clu,
		reg:     reg,
		numeric: numeric,
		workers: make(map[cluster.NodeID]*grcuda.Runtime),
	}
	for _, id := range clu.Workers() {
		f.workers[id] = grcuda.NewRuntime(clu.Worker(id), reg, grcuda.Options{ExecuteNumeric: numeric})
	}
	return f
}

// Runtime exposes a worker's GrCUDA engine (tests and traces).
func (f *LocalFabric) Runtime(w cluster.NodeID) *grcuda.Runtime { return f.workers[w] }

// Cluster exposes the underlying cluster simulator.
func (f *LocalFabric) Cluster() *cluster.Cluster { return f.clu }

// Workers implements Fabric.
func (f *LocalFabric) Workers() []cluster.NodeID { return f.clu.Workers() }

// EnsureArray implements Fabric.
func (f *LocalFabric) EnsureArray(w cluster.NodeID, meta grcuda.ArrayMeta) error {
	rt, ok := f.workers[w]
	if !ok {
		return fmt.Errorf("core: unknown worker %v", w)
	}
	if rt.Array(meta.ID) != nil {
		return nil
	}
	_, err := rt.NewArrayWithID(meta.ID, meta.Kind, meta.Len)
	if err != nil && errors.Is(err, gpusim.ErrHostMemoryExhausted) {
		err = fmt.Errorf("%w: %v", ErrOOM, err)
	}
	return err
}

// MoveArray implements Fabric.
func (f *LocalFabric) MoveArray(id dag.ArrayID, src, dst cluster.NodeID,
	srcReady sim.VirtualTime, srcBuf, dstBuf *kernels.Buffer) (sim.VirtualTime, error) {
	if src == dst {
		return srcReady, nil
	}

	var payload *kernels.Buffer
	ready := srcReady
	var size memmodel.Bytes

	if src.IsWorker() {
		rt, ok := f.workers[src]
		if !ok {
			return 0, fmt.Errorf("core: unknown source worker %v", src)
		}
		arr := rt.Array(id)
		if arr == nil {
			return 0, fmt.Errorf("core: array %d not present on %v: %w", id, src, ErrArrayNotFound)
		}
		// Dirty device pages must reach the worker's host copy first.
		flushed, err := rt.Node().FlushForSend(arr.Alloc, srcReady)
		if err != nil {
			return 0, err
		}
		ready = flushed
		payload = arr.Buf
		size = arr.Bytes()
	} else {
		payload = srcBuf
		if payload != nil {
			size = payload.Bytes()
		}
	}

	if dst.IsWorker() {
		rt, ok := f.workers[dst]
		if !ok {
			return 0, fmt.Errorf("core: unknown destination worker %v", dst)
		}
		arr := rt.Array(id)
		if arr == nil {
			return 0, fmt.Errorf("core: array %d not ensured on %v before move: %w", id, dst, ErrArrayNotFound)
		}
		size = arr.Bytes()
		iv := f.clu.Transfer(src, dst, size, ready)
		// The arriving data overwrites the worker's host copy; stale
		// device pages drop without write-back.
		if err := rt.Node().Invalidate(arr.Alloc); err != nil {
			return 0, err
		}
		if f.numeric && payload != nil && arr.Buf != nil {
			copyBuffer(arr.Buf, payload)
		}
		return iv.End, nil
	}

	// Worker -> controller.
	iv := f.clu.Transfer(src, dst, size, ready)
	if f.numeric && payload != nil && dstBuf != nil {
		copyBuffer(dstBuf, payload)
	}
	return iv.End, nil
}

// MoveArrays implements BulkMover: one cluster transfer of the summed
// size carries every array, so the per-transfer fixed cost (latency,
// scheduling slot) is paid once per bulk frame instead of once per
// array — the coalescing win the window optimizer plans for.
func (f *LocalFabric) MoveArrays(dst cluster.NodeID, ids []dag.ArrayID,
	srcReady sim.VirtualTime, bufs []*kernels.Buffer) (sim.VirtualTime, error) {
	rt, ok := f.workers[dst]
	if !ok {
		return 0, fmt.Errorf("core: unknown destination worker %v", dst)
	}
	var total memmodel.Bytes
	for _, id := range ids {
		arr := rt.Array(id)
		if arr == nil {
			return 0, fmt.Errorf("core: array %d not ensured on %v before move: %w", id, dst, ErrArrayNotFound)
		}
		total += arr.Bytes()
	}
	iv := f.clu.Transfer(cluster.ControllerID, dst, total, srcReady)
	for k, id := range ids {
		arr := rt.Array(id)
		if err := rt.Node().Invalidate(arr.Alloc); err != nil {
			return 0, err
		}
		if f.numeric && k < len(bufs) && bufs[k] != nil && arr.Buf != nil {
			copyBuffer(arr.Buf, bufs[k])
		}
	}
	return iv.End, nil
}

// copyBuffer copies src's contents into dst (same kind and length by
// construction; shorter of the two otherwise).
func copyBuffer(dst, src *kernels.Buffer) {
	n := dst.Len()
	if src.Len() < n {
		n = src.Len()
	}
	for i := 0; i < n; i++ {
		dst.Set(i, src.At(i))
	}
}

// Launch implements Fabric.
func (f *LocalFabric) Launch(w cluster.NodeID, inv Invocation, ready sim.VirtualTime) (sim.VirtualTime, error) {
	rt, ok := f.workers[w]
	if !ok {
		return 0, fmt.Errorf("core: unknown worker %v", w)
	}
	if cap(f.valsBuf) < len(inv.Args) {
		f.valsBuf = make([]grcuda.Value, len(inv.Args))
	}
	vals := f.valsBuf[:len(inv.Args)]
	for i, a := range inv.Args {
		if !a.IsArray {
			vals[i] = grcuda.ScalarValue(a.Scalar)
			continue
		}
		arr := rt.Array(a.Array)
		if arr == nil {
			return 0, fmt.Errorf("core: worker %v launch references unknown array %d: %w", w, a.Array, ErrArrayNotFound)
		}
		vals[i] = grcuda.ArrValue(arr)
	}
	return rt.Submit(grcuda.Invocation{
		Kernel: inv.Kernel, Grid: inv.Grid, Block: inv.Block, Args: vals,
	}, ready)
}

// EstimateTransfer implements Fabric.
func (f *LocalFabric) EstimateTransfer(src, dst cluster.NodeID, n memmodel.Bytes) sim.VirtualTime {
	return f.clu.EstimateTransfer(src, dst, n)
}

// PredictStall implements StallPredictor by asking the worker's simulated
// node directly — the in-process fabric can see real allocation pressure
// and the installed prefetch policy.
func (f *LocalFabric) PredictStall(w cluster.NodeID, add, working memmodel.Bytes,
	pattern memmodel.Pattern) sim.VirtualTime {
	rt, ok := f.workers[w]
	if !ok {
		return 0
	}
	return rt.Node().PredictStall(add, working, pattern)
}

// EstimateTransferAll implements BulkEstimator.
func (f *LocalFabric) EstimateTransferAll(src cluster.NodeID, n memmodel.Bytes,
	dsts []cluster.NodeID, out []sim.VirtualTime) {
	f.clu.EstimateTransferAll(src, n, dsts, out)
}

// FreeArray implements Fabric.
func (f *LocalFabric) FreeArray(w cluster.NodeID, id dag.ArrayID) error {
	rt, ok := f.workers[w]
	if !ok {
		return fmt.Errorf("core: unknown worker %v", w)
	}
	if rt.Array(id) == nil {
		return nil
	}
	return rt.FreeArray(id)
}

// Healthy implements Fabric: in-process workers cannot die.
func (f *LocalFabric) Healthy(w cluster.NodeID) bool {
	_, ok := f.workers[w]
	return ok
}

// WorkerStats aggregates a worker's device counters for reports.
func (f *LocalFabric) WorkerStats(w cluster.NodeID) []gpusim.Stats {
	rt, ok := f.workers[w]
	if !ok {
		return nil
	}
	devs := rt.Node().Devices()
	out := make([]gpusim.Stats, len(devs))
	for i, d := range devs {
		out[i] = d.Stats()
	}
	return out
}

// KernelBuilder is implemented by fabrics that can distribute
// runtime-compiled kernels to their workers (the buildkernel path of the
// paper's Listing 1: the Controller issues the NVRTC build and every
// Worker must know the resulting kernel).
type KernelBuilder interface {
	// BuildKernel compiles source with an NFI signature and registers
	// the kernel wherever workers resolve kernels.
	BuildKernel(src, signature string) error
}

// BuildKernel implements KernelBuilder: the kernel is compiled once and
// registered in the registry shared by every in-process worker.
func (f *LocalFabric) BuildKernel(src, signature string) error {
	def, err := minicuda.Compile(src, signature)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrKernelCompile, err)
	}
	if _, exists := f.reg.Lookup(def.Name); exists {
		return nil
	}
	return f.reg.Register(def)
}
