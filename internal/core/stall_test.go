package core

import (
	"testing"

	"grout/internal/cluster"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/policy"
)

// runSteeringScenario reproduces the oversubscription trap end to end: an
// 8 GiB array lands on worker 1, then worker 1's UVM allocation balloons
// past the storm threshold (100 GiB of ballast on a 32 GiB node). The
// next kernel over the array is launched and the worker that executed it
// is returned. Pure transfer-time cost keeps the kernel on worker 1 (the
// data is there, transfer cost zero); a fault-aware policy must eat the
// network transfer and steer to idle worker 2.
func runSteeringScenario(t *testing.T, pol policy.Policy, opts Options) cluster.NodeID {
	t.Helper()
	clu := cluster.New(cluster.PaperSpec(2))
	fab := NewLocalFabric(clu, kernels.StdRegistry(), false)
	ctl := NewController(fab, pol, opts)

	const n = int64(1 << 31) // 8 GiB of Float32
	x, err := ctl.NewArray(memmodel.Float32, n)
	if err != nil {
		t.Fatal(err)
	}
	// fill is a write-only full overwrite: both policies tie-break it onto
	// worker 1, making worker 1 the data holder.
	if _, err := ctl.Launch(Invocation{Kernel: "fill",
		Args: []ArgRef{ArrRef(x.ID), ScalarRef(1), ScalarRef(float64(n))}}); err != nil {
		t.Fatal(err)
	}
	if err := ctl.FlushWindow(); err != nil {
		t.Fatal(err)
	}
	if !x.UpToDateOn(1) {
		t.Fatalf("setup: fill did not land on worker 1: %v", x.Locations())
	}

	// Worker 1 oversubscribes: 100 GiB of live UVM allocation against
	// 32 GiB of device memory — allocation pressure 3.4, deep in the
	// storm regime for any substantial kernel.
	if _, err := fab.Runtime(1).Node().Alloc(100 * memmodel.GiB); err != nil {
		t.Fatal(err)
	}

	if _, err := ctl.Launch(Invocation{Kernel: "relu",
		Args: []ArgRef{ArrRef(x.ID), ScalarRef(float64(n))}}); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Close(); err != nil {
		t.Fatal(err)
	}
	// relu writes x, so exactly the executing worker is now up to date.
	for _, w := range fab.Workers() {
		if x.UpToDateOn(w) {
			return w
		}
	}
	t.Fatal("relu result registered on no worker")
	return 0
}

// TestStallAwareSteeringEndToEnd is the tentpole acceptance scenario: the
// controller, consuming predicted fault rates through the fabric, steers
// a launch away from the oversubscribed worker that pure transfer-time
// cost would have chosen.
func TestStallAwareSteeringEndToEnd(t *testing.T) {
	if got := runSteeringScenario(t, policy.NewMinTransferTime(policy.Medium), Options{}); got != 1 {
		t.Fatalf("min-transfer-time control pick = %v, want trapped on worker 1", got)
	}
	if got := runSteeringScenario(t, policy.NewMinStallTime(), Options{}); got != 2 {
		t.Fatalf("min-stall-time pick = %v, want steered to worker 2", got)
	}
}

// TestStallAwareSteeringBatchedWindow exercises the same steering through
// the optimizer window's batched policy evaluation (AssignBatch over the
// frozen snapshot) instead of per-CE Assign.
func TestStallAwareSteeringBatchedWindow(t *testing.T) {
	opts := Options{OptimizeWindow: 4}
	if got := runSteeringScenario(t, policy.NewMinTransferTime(policy.Medium), opts); got != 1 {
		t.Fatalf("windowed min-transfer-time pick = %v, want trapped on worker 1", got)
	}
	if got := runSteeringScenario(t, policy.NewMinStallTime(), opts); got != 2 {
		t.Fatalf("windowed min-stall-time pick = %v, want steered to worker 2", got)
	}
}
