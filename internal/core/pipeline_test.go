package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"grout/internal/cluster"
	"grout/internal/dag"
	"grout/internal/grcuda"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/policy"
	"grout/internal/sim"
)

const ppElems = 256

// ppPolicies builds fresh instances of the four paper policies (they keep
// internal state and must not be shared between controllers).
func ppPolicies() map[string]func() policy.Policy {
	return map[string]func() policy.Policy{
		"round-robin": func() policy.Policy { return policy.NewRoundRobin() },
		"vector-step": func() policy.Policy {
			p, err := policy.NewVectorStep([]int{1, 2})
			if err != nil {
				panic(err)
			}
			return p
		},
		"min-transfer-size": func() policy.Policy { return policy.NewMinTransferSize(policy.Medium) },
		"min-transfer-time": func() policy.Policy { return policy.NewMinTransferTime(policy.Medium) },
	}
}

// ppSystem builds a 4-worker numeric system with 6 arrays.
func ppSystem(pol policy.Policy, opts Options) (*Controller, []dag.ArrayID) {
	clu := cluster.New(cluster.PaperSpec(4))
	fab := NewLocalFabric(clu, kernels.StdRegistry(), true)
	opts.Numeric = true
	ctl := NewController(fab, pol, opts)
	ids := make([]dag.ArrayID, 6)
	for i := range ids {
		arr, err := ctl.NewArray(memmodel.Float32, ppElems)
		if err != nil {
			panic(err)
		}
		for j := 0; j < ppElems; j++ {
			arr.Buf.Set(j, float64(i+1)*float64(j%17)-8)
		}
		ids[i] = arr.ID
	}
	return ctl, ids
}

// ppStream derives a random CE stream from a seed: fills (write-only full
// overwrites), relu (read-write), copy (write+read, sometimes aliased),
// axpy (read-write + read), with occasional host reads/writes as
// synchronization points.
type ppOp struct {
	inv      Invocation
	hostRead dag.ArrayID // when nonzero, a HostRead instead of a launch
	hostWr   dag.ArrayID // when nonzero, a HostWrite instead of a launch
}

func ppStream(seed int64, ids []dag.ArrayID, n int) []ppOp {
	rng := rand.New(rand.NewSource(seed))
	pick := func() ArgRef { return ArrRef(ids[rng.Intn(len(ids))]) }
	nArg := ScalarRef(float64(ppElems))
	ops := make([]ppOp, 0, n)
	for i := 0; i < n; i++ {
		switch r := rng.Intn(20); {
		case r == 0:
			ops = append(ops, ppOp{hostRead: ids[rng.Intn(len(ids))]})
		case r == 1:
			ops = append(ops, ppOp{hostWr: ids[rng.Intn(len(ids))]})
		case r < 6:
			ops = append(ops, ppOp{inv: Invocation{Kernel: "fill",
				Args: []ArgRef{pick(), ScalarRef(float64(rng.Intn(9)) - 4), nArg}}})
		case r < 11:
			ops = append(ops, ppOp{inv: Invocation{Kernel: "relu",
				Args: []ArgRef{pick(), nArg}}})
		case r < 15:
			ops = append(ops, ppOp{inv: Invocation{Kernel: "copy",
				Args: []ArgRef{pick(), pick(), nArg}}})
		default:
			ops = append(ops, ppOp{inv: Invocation{Kernel: "axpy",
				Args: []ArgRef{pick(), pick(), ScalarRef(0.5), nArg}}})
		}
	}
	return ops
}

// ppRun drives a stream and returns the trace with wall-clock overhead
// zeroed (the only field allowed to differ between serial and pipelined).
func ppRun(ctl *Controller, ids []dag.ArrayID, ops []ppOp) ([]CETrace, error) {
	for _, op := range ops {
		var err error
		switch {
		case op.hostRead != 0:
			_, err = ctl.HostRead(op.hostRead)
		case op.hostWr != 0:
			_, err = ctl.HostWrite(op.hostWr)
		default:
			_, err = ctl.Submit(op.inv)
		}
		if err != nil {
			return nil, err
		}
	}
	if err := ctl.Drain(); err != nil {
		return nil, err
	}
	traces := append([]CETrace(nil), ctl.Traces()...)
	for i := range traces {
		traces[i].SchedOverhd = 0
	}
	return traces, nil
}

// TestPipelineMatchesSerial is the determinism property: for random CE
// streams, seeds, and all four policies, the pipelined controller yields
// bit-identical virtual-time traces and numerical outputs to the serial
// one. Run under -race this also exercises the pipeline's locking.
func TestPipelineMatchesSerial(t *testing.T) {
	polNames := ppPolicies()
	f := func(seed int64) bool {
		for name, mk := range polNames {
			serial, sIDs := ppSystem(mk(), Options{})
			piped, pIDs := ppSystem(mk(), Options{Pipeline: true, PipelineDepth: 8})
			ops := ppStream(seed, sIDs, 60)
			sTr, err := ppRun(serial, sIDs, ops)
			if err != nil {
				t.Logf("%s serial: %v", name, err)
				return false
			}
			pTr, err := ppRun(piped, pIDs, ops)
			if err != nil {
				t.Logf("%s pipelined: %v", name, err)
				return false
			}
			if len(sTr) != len(pTr) {
				t.Logf("%s: trace count %d vs %d", name, len(sTr), len(pTr))
				return false
			}
			for i := range sTr {
				if sTr[i] != pTr[i] {
					t.Logf("%s seed %d: trace %d differs:\nserial    %+v\npipelined %+v",
						name, seed, i, sTr[i], pTr[i])
					return false
				}
			}
			if serial.Elapsed() != piped.Elapsed() ||
				serial.MovedBytes() != piped.MovedBytes() ||
				serial.P2PMoves() != piped.P2PMoves() {
				t.Logf("%s: totals differ (%v/%v, %v/%v, %d/%d)", name,
					serial.Elapsed(), piped.Elapsed(),
					serial.MovedBytes(), piped.MovedBytes(),
					serial.P2PMoves(), piped.P2PMoves())
				return false
			}
			// Numerical outputs must agree bit for bit.
			for i := range sIDs {
				if _, err := serial.HostRead(sIDs[i]); err != nil {
					t.Logf("serial host read: %v", err)
					return false
				}
				if _, err := piped.HostRead(pIDs[i]); err != nil {
					t.Logf("pipelined host read: %v", err)
					return false
				}
				sb, pb := serial.Array(sIDs[i]).Buf, piped.Array(pIDs[i]).Buf
				for j := 0; j < ppElems; j++ {
					if sb.At(j) != pb.At(j) {
						t.Logf("%s seed %d: array %d elem %d: %v vs %v",
							name, seed, sIDs[i], j, sb.At(j), pb.At(j))
						return false
					}
				}
			}
			if err := piped.Close(); err != nil {
				t.Logf("%s close: %v", name, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// concFabric is a thread-safe fake fabric that declares itself safe for
// concurrent dispatch, applies fixed virtual costs, and records the order
// and concurrency of launches.
type concFabric struct {
	workers []cluster.NodeID

	mu       sync.Mutex
	order    []dag.ArrayID // first array arg of each launched CE
	inFlight int
	maxSeen  int
	launches int
}

func newConcFabric(n int) *concFabric {
	f := &concFabric{}
	for i := 1; i <= n; i++ {
		f.workers = append(f.workers, cluster.NodeID(i))
	}
	return f
}

func (f *concFabric) ConcurrentDispatch() bool                           { return true }
func (f *concFabric) Workers() []cluster.NodeID                          { return f.workers }
func (f *concFabric) Healthy(w cluster.NodeID) bool                      { return true }
func (f *concFabric) FreeArray(cluster.NodeID, dag.ArrayID) error        { return nil }
func (f *concFabric) EnsureArray(cluster.NodeID, grcuda.ArrayMeta) error { return nil }

func (f *concFabric) MoveArray(id dag.ArrayID, src, dst cluster.NodeID,
	srcReady sim.VirtualTime, srcBuf, dstBuf *kernels.Buffer) (sim.VirtualTime, error) {
	return srcReady + 10, nil
}

func (f *concFabric) Launch(w cluster.NodeID, inv Invocation, ready sim.VirtualTime) (sim.VirtualTime, error) {
	f.mu.Lock()
	f.inFlight++
	if f.inFlight > f.maxSeen {
		f.maxSeen = f.inFlight
	}
	f.launches++
	for _, a := range inv.Args {
		if a.IsArray {
			f.order = append(f.order, a.Array)
			break
		}
	}
	f.mu.Unlock()
	time.Sleep(2 * time.Millisecond) // widen the overlap window
	f.mu.Lock()
	f.inFlight--
	f.mu.Unlock()
	return ready + 100, nil
}

func (f *concFabric) EstimateTransfer(src, dst cluster.NodeID, n memmodel.Bytes) sim.VirtualTime {
	return 5
}

// TestConcurrentFabricOrdering checks the unsequenced mode: with a fabric
// that allows concurrent dispatch, DAG dependencies alone enforce order —
// a read-write chain on one array launches strictly in submission order,
// while independent chains actually overlap across dispatchers.
func TestConcurrentFabricOrdering(t *testing.T) {
	fab := newConcFabric(4)
	ctl := NewController(fab, policy.NewRoundRobin(), Options{Pipeline: true})
	defer ctl.Close()

	arrs := make([]dag.ArrayID, 4)
	for i := range arrs {
		arr, err := ctl.NewArray(memmodel.Float32, ppElems)
		if err != nil {
			t.Fatal(err)
		}
		arrs[i] = arr.ID
	}
	// Interleave four independent relu chains, one per array.
	const rounds = 12
	for r := 0; r < rounds; r++ {
		for _, id := range arrs {
			if _, err := ctl.Submit(Invocation{Kernel: "relu",
				Args: []ArgRef{ArrRef(id), ScalarRef(float64(ppElems))}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := ctl.Drain(); err != nil {
		t.Fatal(err)
	}

	fab.mu.Lock()
	defer fab.mu.Unlock()
	if fab.launches != rounds*len(arrs) {
		t.Fatalf("launches = %d, want %d", fab.launches, rounds*len(arrs))
	}
	// Per-array launch order must be the submission order (the DAG chain).
	pos := map[dag.ArrayID]int{}
	for _, id := range fab.order {
		pos[id]++
	}
	for _, id := range arrs {
		if pos[id] != rounds {
			t.Fatalf("array %d launched %d times, want %d", id, pos[id], rounds)
		}
	}
	// A strict chain cannot reorder: within each array the recorded
	// sequence is trivially ordered (same dispatcher or ancestor waits);
	// verify cross-array overlap actually happened — otherwise the
	// "concurrent" mode silently serialized.
	if fab.maxSeen < 2 {
		t.Fatalf("no dispatch overlap observed (max in-flight %d)", fab.maxSeen)
	}
}

// chainFabric: same as concFabric but used single-array to assert strict
// ordering of a dependency chain under concurrent dispatch.
func TestConcurrentFabricChainOrder(t *testing.T) {
	fab := newConcFabric(4)
	ctl := NewController(fab, policy.NewRoundRobin(), Options{Pipeline: true})
	defer ctl.Close()
	arr, err := ctl.NewArray(memmodel.Float32, ppElems)
	if err != nil {
		t.Fatal(err)
	}
	const n = 24
	for i := 0; i < n; i++ {
		// fill writes the whole array: WAW chain in submission order.
		if _, err := ctl.Submit(Invocation{Kernel: "fill",
			Args: []ArgRef{ArrRef(arr.ID), ScalarRef(float64(i)), ScalarRef(float64(ppElems))}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ctl.Drain(); err != nil {
		t.Fatal(err)
	}
	fab.mu.Lock()
	defer fab.mu.Unlock()
	if len(fab.order) != n {
		t.Fatalf("launches = %d, want %d", len(fab.order), n)
	}
	// The chain hops workers round-robin, so any reorder would be a
	// missing ancestor wait; traces record monotonically increasing CEs.
	traces := ctl.Traces()
	for i := 1; i < len(traces); i++ {
		if traces[i].CE <= traces[i-1].CE {
			t.Fatalf("chain trace out of order: %v after %v", traces[i].CE, traces[i-1].CE)
		}
		if traces[i].Start < traces[i-1].End {
			t.Fatalf("chain CE %d starts %v before ancestor end %v",
				traces[i].CE, traces[i].Start, traces[i-1].End)
		}
	}
}

// failingFabric wraps LocalFabric: the chosen worker starts failing after
// failAfter launches and reports unhealthy from then on.
type failingFabric struct {
	*LocalFabric
	victim    cluster.NodeID
	failAfter int
	launches  int
	down      bool
}

func (f *failingFabric) Launch(w cluster.NodeID, inv Invocation, ready sim.VirtualTime) (sim.VirtualTime, error) {
	f.launches++
	if f.launches > f.failAfter && w == f.victim {
		f.down = true
	}
	if f.down && w == f.victim {
		return 0, fmt.Errorf("worker %v: connection reset", w)
	}
	return f.LocalFabric.Launch(w, inv, ready)
}

func (f *failingFabric) Healthy(w cluster.NodeID) bool {
	if f.down && w == f.victim {
		return false
	}
	return f.LocalFabric.Healthy(w)
}

// TestPipelineFailover pushes a worker failure through the pipelined
// dispatch path: already-queued CEs for the dead worker reschedule onto
// survivors and the stream completes.
func TestPipelineFailover(t *testing.T) {
	clu := cluster.New(cluster.PaperSpec(3))
	fab := &failingFabric{
		LocalFabric: NewLocalFabric(clu, kernels.StdRegistry(), false),
		victim:      cluster.NodeID(2),
		failAfter:   5,
	}
	ctl := NewController(fab, policy.NewRoundRobin(), Options{Pipeline: true, Failover: true})
	defer ctl.Close()
	arr, err := ctl.NewArray(memmodel.Float32, ppElems)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := ctl.Submit(Invocation{Kernel: "relu",
			Args: []ArgRef{ArrRef(arr.ID), ScalarRef(float64(ppElems))}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ctl.Drain(); err != nil {
		t.Fatal(err)
	}
	if ctl.Failovers() != 1 {
		t.Fatalf("failovers = %d, want 1", ctl.Failovers())
	}
	sawVictimLate := false
	for _, tr := range ctl.Traces()[10:] {
		if tr.Node == fab.victim {
			sawVictimLate = true
		}
	}
	if sawVictimLate {
		t.Fatalf("dead worker still scheduled after failover")
	}
}

// TestPipelineCloseSemantics: Close drains, is idempotent, and further
// submissions fail cleanly.
func TestPipelineCloseSemantics(t *testing.T) {
	clu := cluster.New(cluster.PaperSpec(2))
	fab := NewLocalFabric(clu, kernels.StdRegistry(), false)
	ctl := NewController(fab, policy.NewRoundRobin(), Options{Pipeline: true})
	arr, err := ctl.NewArray(memmodel.Float32, ppElems)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ctl.Submit(Invocation{Kernel: "relu",
		Args: []ArgRef{ArrRef(arr.ID), ScalarRef(float64(ppElems))}})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-p.Done():
	default:
		t.Fatalf("Close returned before pending CE dispatched")
	}
	if err := ctl.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if _, err := ctl.Submit(Invocation{Kernel: "relu",
		Args: []ArgRef{ArrRef(arr.ID), ScalarRef(float64(ppElems))}}); err == nil {
		t.Fatalf("submit after close succeeded")
	}
}

// TestTraceOptions: DisableTraces stops accumulation but keeps aggregate
// counters; TraceCapacity preallocates.
func TestTraceOptions(t *testing.T) {
	clu := cluster.New(cluster.PaperSpec(2))
	fab := NewLocalFabric(clu, kernels.StdRegistry(), false)
	ctl := NewController(fab, policy.NewRoundRobin(), Options{DisableTraces: true})
	arr, err := ctl.NewArray(memmodel.Float32, ppElems)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := ctl.Launch(Invocation{Kernel: "relu",
			Args: []ArgRef{ArrRef(arr.ID), ScalarRef(float64(ppElems))}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := ctl.Traces(); got != nil {
		t.Fatalf("traces with DisableTraces = %d entries", len(got))
	}
	if ctl.Elapsed() == 0 || ctl.MeanSchedulingOverhead() == 0 {
		t.Fatalf("aggregate counters stopped with traces disabled")
	}
	if _, err := ctl.HostRead(arr.ID); err != nil {
		t.Fatal(err)
	}
	if got := ctl.Traces(); got != nil {
		t.Fatalf("host ops traced with DisableTraces")
	}

	ctl2 := NewController(fab, policy.NewRoundRobin(), Options{TraceCapacity: 128})
	arr2, err := ctl2.NewArray(memmodel.Float32, ppElems)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctl2.Launch(Invocation{Kernel: "relu",
		Args: []ArgRef{ArrRef(arr2.ID), ScalarRef(float64(ppElems))}}); err != nil {
		t.Fatal(err)
	}
	if len(ctl2.Traces()) != 1 {
		t.Fatalf("traces = %d, want 1", len(ctl2.Traces()))
	}
}
