package core

import "grout/internal/gpusim"

func gpusimNewNode() *gpusim.Node {
	return gpusim.NewNode(gpusim.OCIWorkerSpec("baseline"))
}
