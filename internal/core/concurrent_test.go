package core

// TestConcurrentSubmitters exercises the Controller's documented
// concurrency contract: submission-side methods are safe from multiple
// goroutines, serializing on the submission lock. Each goroutine plays an
// independent tenant — its own arrays, its own CE chain, its own
// synchronization points — over one shared controller, and its results
// must be bit-identical to the same chain mirrored on host buffers.
// Run with -race (ci.sh's core sweep does).

import (
	"fmt"
	"sync"
	"testing"

	"grout/internal/cluster"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/policy"
)

const ccElems = 128

// ccProgram drives one tenant's CE chain against the shared controller
// and checks the outcome against a host-side mirror of the same ops.
func ccProgram(ctl *Controller, tenant int) error {
	a, err := ctl.NewArray(memmodel.Float32, ccElems)
	if err != nil {
		return err
	}
	b, err := ctl.NewArray(memmodel.Float32, ccElems)
	if err != nil {
		return err
	}
	ma := kernels.NewBuffer(memmodel.Float32, ccElems)
	mb := kernels.NewBuffer(memmodel.Float32, ccElems)
	for j := 0; j < ccElems; j++ {
		av := float64(tenant+1)*float64(j%13) - 6
		bv := float64(j%7) - 3
		a.Buf.Set(j, av)
		ma.Set(j, av)
		b.Buf.Set(j, bv)
		mb.Set(j, bv)
	}
	if _, err := ctl.HostWrite(a.ID); err != nil {
		return err
	}
	if _, err := ctl.HostWrite(b.ID); err != nil {
		return err
	}
	nArg := ScalarRef(float64(ccElems))
	for i := 0; i < 24; i++ {
		if _, err := ctl.Submit(Invocation{Kernel: "axpy",
			Args: []ArgRef{ArrRef(a.ID), ArrRef(b.ID), ScalarRef(0.5), nArg}}); err != nil {
			return err
		}
		for j := 0; j < ccElems; j++ {
			ma.Set(j, ma.At(j)+0.5*mb.At(j))
		}
		if i%5 == 2 {
			if _, err := ctl.Submit(Invocation{Kernel: "relu",
				Args: []ArgRef{ArrRef(a.ID), nArg}}); err != nil {
				return err
			}
			for j := 0; j < ccElems; j++ {
				if ma.At(j) < 0 {
					ma.Set(j, 0)
				}
			}
		}
		if i%8 == 6 {
			// Mid-run synchronization point (a global barrier).
			if _, err := ctl.HostRead(a.ID); err != nil {
				return err
			}
		}
		// Metric reads must be safe while everyone else submits.
		_ = ctl.Elapsed()
		_ = ctl.Failovers()
	}
	if _, err := ctl.HostRead(a.ID); err != nil {
		return err
	}
	if d := a.Buf.MaxAbsDiff(ma); d != 0 {
		return fmt.Errorf("tenant %d: result diverged from mirror by %g", tenant, d)
	}
	if err := ctl.FreeArray(a.ID); err != nil {
		return err
	}
	return ctl.FreeArray(b.ID)
}

func TestConcurrentSubmitters(t *testing.T) {
	for _, mode := range []struct {
		name     string
		pipeline bool
	}{{"serial", false}, {"pipelined", true}} {
		t.Run(mode.name, func(t *testing.T) {
			clu := cluster.New(cluster.PaperSpec(4))
			fab := NewLocalFabric(clu, kernels.StdRegistry(), true)
			ctl := NewController(fab, policy.NewRoundRobin(),
				Options{Numeric: true, Pipeline: mode.pipeline})
			defer ctl.Close()

			const tenants = 4
			errs := make(chan error, tenants)
			var wg sync.WaitGroup
			for g := 0; g < tenants; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					errs <- ccProgram(ctl, g)
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
			if err := ctl.Drain(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
