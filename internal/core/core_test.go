package core

import (
	"math"
	"testing"

	"grout/internal/cluster"
	"grout/internal/grcuda"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/policy"
)

// newSystem builds a controller over n in-process workers.
func newSystem(t testing.TB, n int, pol policy.Policy, numeric bool) (*Controller, *LocalFabric) {
	t.Helper()
	clu := cluster.New(cluster.PaperSpec(n))
	fab := NewLocalFabric(clu, kernels.StdRegistry(), numeric)
	ctl := NewController(fab, pol, Options{Numeric: numeric})
	return ctl, fab
}

func TestNewArrayRegistry(t *testing.T) {
	ctl, _ := newSystem(t, 2, policy.NewRoundRobin(), false)
	a, err := ctl.NewArray(memmodel.Float32, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !a.UpToDateOn(cluster.ControllerID) {
		t.Fatalf("fresh array not up to date on controller")
	}
	if a.UpToDateOn(1) {
		t.Fatalf("fresh array up to date on worker")
	}
	if ctl.Array(a.ID) != a {
		t.Fatalf("array lookup failed")
	}
	if _, err := ctl.NewArray(memmodel.Float32, -1); err == nil {
		t.Fatalf("negative length accepted")
	}
}

func TestLaunchValidation(t *testing.T) {
	ctl, _ := newSystem(t, 1, policy.NewRoundRobin(), false)
	a, _ := ctl.NewArray(memmodel.Float32, 128)
	if _, err := ctl.Launch(Invocation{Kernel: "nope"}); err == nil {
		t.Fatalf("unknown kernel accepted")
	}
	if _, err := ctl.Launch(Invocation{Kernel: "fill", Args: []ArgRef{ArrRef(a.ID)}}); err == nil {
		t.Fatalf("arity mismatch accepted")
	}
	if _, err := ctl.Launch(Invocation{Kernel: "fill",
		Args: []ArgRef{ScalarRef(0), ScalarRef(0), ScalarRef(128)}}); err == nil {
		t.Fatalf("scalar-for-pointer accepted")
	}
	if _, err := ctl.Launch(Invocation{Kernel: "fill",
		Args: []ArgRef{ArrRef(999), ScalarRef(0), ScalarRef(128)}}); err == nil {
		t.Fatalf("unknown array accepted")
	}
	if _, err := ctl.Launch(Invocation{Kernel: "fill",
		Args: []ArgRef{ArrRef(a.ID), ArrRef(a.ID), ScalarRef(128)}}); err == nil {
		t.Fatalf("array-for-scalar accepted")
	}
}

func TestLaunchMovesDataAndTracksLocations(t *testing.T) {
	ctl, _ := newSystem(t, 2, policy.NewRoundRobin(), false)
	const n = int64(1 << 26) // 256 MiB
	x, _ := ctl.NewArray(memmodel.Float32, n)
	// relu reads+writes x: the controller copy must ship to worker 1.
	end, err := ctl.Launch(Invocation{Kernel: "relu",
		Args: []ArgRef{ArrRef(x.ID), ScalarRef(float64(n))}})
	if err != nil {
		t.Fatal(err)
	}
	if end == 0 {
		t.Fatalf("zero completion time")
	}
	if ctl.MovedBytes() != 256*memmodel.MiB {
		t.Fatalf("moved = %v, want 256MiB", ctl.MovedBytes())
	}
	// After the write, only worker1 is up to date.
	if x.UpToDateOn(cluster.ControllerID) || !x.UpToDateOn(1) || x.UpToDateOn(2) {
		t.Fatalf("locations after write: %v", x.Locations())
	}
}

func TestWriteOnlyFullOverwriteSkipsTransfer(t *testing.T) {
	ctl, _ := newSystem(t, 2, policy.NewRoundRobin(), false)
	const n = int64(1 << 26)
	x, _ := ctl.NewArray(memmodel.Float32, n)
	// fill writes the whole array: no transfer needed.
	if _, err := ctl.Launch(Invocation{Kernel: "fill",
		Args: []ArgRef{ArrRef(x.ID), ScalarRef(1), ScalarRef(float64(n))}}); err != nil {
		t.Fatal(err)
	}
	if ctl.MovedBytes() != 0 {
		t.Fatalf("full overwrite moved %v bytes", ctl.MovedBytes())
	}
	if !x.UpToDateOn(1) {
		t.Fatalf("fill result not registered on worker")
	}
}

func TestP2PTransferBetweenWorkers(t *testing.T) {
	ctl, _ := newSystem(t, 2, policy.NewRoundRobin(), false)
	const n = int64(1 << 26)
	x, _ := ctl.NewArray(memmodel.Float32, n)
	// fill on worker1 (round-robin), then relu must run on worker2 and
	// pull x peer-to-peer.
	if _, err := ctl.Launch(Invocation{Kernel: "fill",
		Args: []ArgRef{ArrRef(x.ID), ScalarRef(1), ScalarRef(float64(n))}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Launch(Invocation{Kernel: "relu",
		Args: []ArgRef{ArrRef(x.ID), ScalarRef(float64(n))}}); err != nil {
		t.Fatal(err)
	}
	if ctl.P2PMoves() != 1 {
		t.Fatalf("p2p moves = %d, want 1", ctl.P2PMoves())
	}
	tr := ctl.Traces()
	if tr[0].Node != 1 || tr[1].Node != 2 {
		t.Fatalf("round-robin placement = %v, %v", tr[0].Node, tr[1].Node)
	}
}

func TestHostReadPullsResultBack(t *testing.T) {
	ctl, _ := newSystem(t, 2, policy.NewRoundRobin(), false)
	const n = int64(1 << 26)
	x, _ := ctl.NewArray(memmodel.Float32, n)
	end1, _ := ctl.Launch(Invocation{Kernel: "fill",
		Args: []ArgRef{ArrRef(x.ID), ScalarRef(1), ScalarRef(float64(n))}})
	end2, err := ctl.HostRead(x.ID)
	if err != nil {
		t.Fatal(err)
	}
	if end2 <= end1 {
		t.Fatalf("host read did not account transfer: %v <= %v", end2, end1)
	}
	if !x.UpToDateOn(cluster.ControllerID) || !x.UpToDateOn(1) {
		t.Fatalf("read should leave both copies valid: %v", x.Locations())
	}
	// Second read is free (already consistent).
	end3, _ := ctl.HostRead(x.ID)
	if end3 != end2 {
		t.Fatalf("cached host read = %v, want %v", end3, end2)
	}
}

func TestHostWriteInvalidatesWorkers(t *testing.T) {
	ctl, _ := newSystem(t, 2, policy.NewRoundRobin(), false)
	const n = int64(1 << 20)
	x, _ := ctl.NewArray(memmodel.Float32, n)
	if _, err := ctl.Launch(Invocation{Kernel: "fill",
		Args: []ArgRef{ArrRef(x.ID), ScalarRef(1), ScalarRef(float64(n))}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.HostWrite(x.ID); err != nil {
		t.Fatal(err)
	}
	if x.UpToDateOn(1) || !x.UpToDateOn(cluster.ControllerID) {
		t.Fatalf("host write locations: %v", x.Locations())
	}
}

func TestHostOpsUnknownArray(t *testing.T) {
	ctl, _ := newSystem(t, 1, policy.NewRoundRobin(), false)
	if _, err := ctl.HostRead(42); err == nil {
		t.Fatalf("host read of unknown array succeeded")
	}
	if _, err := ctl.HostWrite(42); err == nil {
		t.Fatalf("host write of unknown array succeeded")
	}
}

func TestNumericDistributedExecution(t *testing.T) {
	ctl, _ := newSystem(t, 2, policy.NewRoundRobin(), true)
	const n = int64(1000)
	x, _ := ctl.NewArray(memmodel.Float32, n)
	y, _ := ctl.NewArray(memmodel.Float32, n)
	// Initialize x on the host.
	for i := 0; i < int(n); i++ {
		x.Buf.Set(i, float64(i))
	}
	if _, err := ctl.HostWrite(x.ID); err != nil {
		t.Fatal(err)
	}
	// y = 0; y += 2x, distributed across workers.
	if _, err := ctl.Launch(Invocation{Kernel: "fill",
		Args: []ArgRef{ArrRef(y.ID), ScalarRef(0), ScalarRef(float64(n))}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Launch(Invocation{Kernel: "axpy",
		Args: []ArgRef{ArrRef(y.ID), ArrRef(x.ID), ScalarRef(2), ScalarRef(float64(n))}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.HostRead(y.ID); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < int(n); i++ {
		if got := y.Buf.At(i); got != 2*float64(i) {
			t.Fatalf("y[%d] = %v, want %v", i, got, 2*float64(i))
		}
	}
}

// Distributed numeric execution must match a single-node GrCUDA run.
func TestDistributedMatchesSingleNodeNumerically(t *testing.T) {
	const n = int64(512)
	// Single node.
	single := func() []float64 {
		node := newSingleNode(t)
		spot, _ := node.NewArray(memmodel.Float32, n)
		call, _ := node.NewArray(memmodel.Float32, n)
		put, _ := node.NewArray(memmodel.Float32, n)
		for i := 0; i < int(n); i++ {
			spot.Buf.Set(i, 80+float64(i)*0.1)
		}
		if _, err := node.Submit(grcuda.Invocation{Kernel: "blackscholes",
			Args: []grcuda.Value{grcuda.ArrValue(call), grcuda.ArrValue(put),
				grcuda.ArrValue(spot), grcuda.ScalarValue(float64(n))}}, 0); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = call.Buf.At(i)
		}
		return out
	}()

	// Distributed (2 workers).
	ctl, _ := newSystem(t, 2, policy.NewRoundRobin(), true)
	spot, _ := ctl.NewArray(memmodel.Float32, n)
	call, _ := ctl.NewArray(memmodel.Float32, n)
	put, _ := ctl.NewArray(memmodel.Float32, n)
	for i := 0; i < int(n); i++ {
		spot.Buf.Set(i, 80+float64(i)*0.1)
	}
	if _, err := ctl.HostWrite(spot.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Launch(Invocation{Kernel: "blackscholes",
		Args: []ArgRef{ArrRef(call.ID), ArrRef(put.ID), ArrRef(spot.ID), ScalarRef(float64(n))}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.HostRead(call.ID); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < int(n); i++ {
		if d := math.Abs(call.Buf.At(i) - single[i]); d > 1e-6 {
			t.Fatalf("distributed differs from single node at %d by %v", i, d)
		}
	}
}

func TestSchedulingOverheadRecorded(t *testing.T) {
	ctl, _ := newSystem(t, 2, policy.NewMinTransferSize(policy.Low), false)
	a, _ := ctl.NewArray(memmodel.Float32, 1<<20)
	for i := 0; i < 5; i++ {
		if _, err := ctl.Launch(Invocation{Kernel: "relu",
			Args: []ArgRef{ArrRef(a.ID), ScalarRef(float64(1 << 20))}}); err != nil {
			t.Fatal(err)
		}
	}
	if ctl.MeanSchedulingOverhead() <= 0 {
		t.Fatalf("scheduling overhead not measured")
	}
	for _, tr := range ctl.Traces() {
		if tr.Label == "relu" && tr.SchedOverhd <= 0 {
			t.Fatalf("per-CE overhead missing: %+v", tr)
		}
	}
}

func TestMinTransferSizeKeepsDataLocal(t *testing.T) {
	ctl, _ := newSystem(t, 2, policy.NewMinTransferSize(policy.Low), false)
	const n = int64(1 << 26)
	x, _ := ctl.NewArray(memmodel.Float32, n)
	if _, err := ctl.Launch(Invocation{Kernel: "fill",
		Args: []ArgRef{ArrRef(x.ID), ScalarRef(1), ScalarRef(float64(n))}}); err != nil {
		t.Fatal(err)
	}
	first := ctl.Traces()[0].Node
	// Ten follow-up kernels on the same array must stay on that worker.
	for i := 0; i < 10; i++ {
		if _, err := ctl.Launch(Invocation{Kernel: "relu",
			Args: []ArgRef{ArrRef(x.ID), ScalarRef(float64(n))}}); err != nil {
			t.Fatal(err)
		}
		if got := ctl.Traces()[i+1].Node; got != first {
			t.Fatalf("min-transfer-size migrated CE %d to %v", i, got)
		}
	}
	if ctl.P2PMoves() != 0 {
		t.Fatalf("unnecessary p2p moves: %d", ctl.P2PMoves())
	}
}

func TestFreeArrayEverywhere(t *testing.T) {
	ctl, _ := newSystem(t, 2, policy.NewRoundRobin(), false)
	const n = int64(1 << 20)
	x, _ := ctl.NewArray(memmodel.Float32, n)
	if _, err := ctl.Launch(Invocation{Kernel: "fill",
		Args: []ArgRef{ArrRef(x.ID), ScalarRef(1), ScalarRef(float64(n))}}); err != nil {
		t.Fatal(err)
	}
	if err := ctl.FreeArray(x.ID); err != nil {
		t.Fatal(err)
	}
	if err := ctl.FreeArray(x.ID); err == nil {
		t.Fatalf("double free accepted")
	}
	if ctl.Array(x.ID) != nil {
		t.Fatalf("freed array still registered")
	}
}

func TestNoWorkersError(t *testing.T) {
	ctl, _ := newSystem(t, 0, policy.NewRoundRobin(), false)
	a, _ := ctl.NewArray(memmodel.Float32, 16)
	if _, err := ctl.Launch(Invocation{Kernel: "relu",
		Args: []ArgRef{ArrRef(a.ID), ScalarRef(16)}}); err == nil {
		t.Fatalf("launch with no workers succeeded")
	}
}

func TestDependencyOrderingAcrossNodes(t *testing.T) {
	// A chain of dependent CEs forced round-robin across two workers must
	// still serialize: each CE starts after its ancestor plus transfer.
	ctl, _ := newSystem(t, 2, policy.NewRoundRobin(), false)
	const n = int64(1 << 26)
	x, _ := ctl.NewArray(memmodel.Float32, n)
	var prevEnd int64
	if _, err := ctl.Launch(Invocation{Kernel: "fill",
		Args: []ArgRef{ArrRef(x.ID), ScalarRef(1), ScalarRef(float64(n))}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		end, err := ctl.Launch(Invocation{Kernel: "relu",
			Args: []ArgRef{ArrRef(x.ID), ScalarRef(float64(n))}})
		if err != nil {
			t.Fatal(err)
		}
		if int64(end) <= prevEnd {
			t.Fatalf("dependent CE %d did not serialize: %v <= %v", i, end, prevEnd)
		}
		prevEnd = int64(end)
	}
	if ctl.P2PMoves() != 4 {
		t.Fatalf("expected 4 p2p bounces, got %d", ctl.P2PMoves())
	}
}

func TestSetPolicy(t *testing.T) {
	ctl, _ := newSystem(t, 2, policy.NewRoundRobin(), false)
	if ctl.Policy().Name() != "round-robin" {
		t.Fatalf("initial policy = %s", ctl.Policy().Name())
	}
	ctl.SetPolicy(policy.NewMinTransferTime(policy.High))
	if ctl.Policy().Name() != "min-transfer-time" {
		t.Fatalf("swapped policy = %s", ctl.Policy().Name())
	}
}

// newSingleNode builds a standalone GrCUDA runtime (the paper's baseline)
// with numeric execution for equivalence tests.
func newSingleNode(t testing.TB) *grcuda.Runtime {
	t.Helper()
	return grcuda.NewRuntime(
		gpusimNewNode(),
		kernels.StdRegistry(),
		grcuda.Options{ExecuteNumeric: true},
	)
}
