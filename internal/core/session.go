package core

// Multi-tenant session layer. A ControllerSession gives one client
// program (a "tenant") a private view of a shared Controller:
//
//   - Namespace isolation: the tenant names arrays by session-local IDs
//     that this layer maps onto global ones. A session can only ever
//     resolve IDs it allocated itself, so CEs from different sessions
//     can never share an array — and since DAG dependencies are
//     array-based, the global DAG never links CEs across tenants.
//   - Admission accounting: per-session in-flight CE count (the gateway
//     enforces MaxInflightCEs against it), cumulative admitted /
//     completed / aborted counters, and summed admission wait.
//   - Resource quota: a per-tenant array-byte budget; NewArray beyond it
//     fails with ErrQuotaExceeded.
//   - Clean teardown: Close waits out in-flight CEs, then frees every
//     array the session still holds — other sessions are undisturbed.
//
// Concurrency: one session's methods are NOT safe for concurrent use
// with each other — the owner (the gateway's per-session serve
// goroutine) serializes them. Different sessions over one Controller
// are safe concurrently; that is the Controller's documented submission
// contract. The internal mutex exists because Submit's completion
// watchers fire from dispatcher goroutines.

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"grout/internal/dag"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/sim"
)

// SessionLimits bounds one tenant session. Zero values mean unlimited;
// the gateway applies its own defaults before constructing the session.
type SessionLimits struct {
	// MaxInflightCEs caps how many of the session's CEs may be admitted
	// but not yet dispatched. Enforced by the gateway's drain loop, not
	// by Submit itself.
	MaxInflightCEs int
	// MaxArrayBytes caps the sum of the session's live array sizes.
	MaxArrayBytes memmodel.Bytes
	// Weight is the session's share in the gateway's weighted
	// round-robin drain; values < 1 are treated as 1.
	Weight int
	// RatePerSec caps the session's sustained admission rate in launches
	// per second via a token bucket the gateway's drain loop consults
	// (refilled lazily from the wall clock — no timer goroutine). Zero or
	// negative means unlimited.
	RatePerSec float64
	// Burst is the token bucket's capacity: how many launches the session
	// may admit back-to-back after idling. Values < 1 are treated as 1.
	// Ignored when RatePerSec is unlimited.
	Burst int
	// Class is the session's priority class for load shedding: when a
	// shard's admission backlog saturates, the gateway sheds class 0
	// first, class 1 next, and so on (ErrShedded).
	Class int
}

// SessionStats is a point-in-time snapshot of one session's counters.
type SessionStats struct {
	Admitted   int64 // CEs handed to the controller
	Completed  int64 // CEs whose dispatch finished cleanly
	Aborted    int64 // CEs whose dispatch ended in error
	Inflight   int   // admitted minus finished, right now
	Arrays     int   // live arrays
	ArrayBytes memmodel.Bytes
	// AdmissionWait sums the time the session's launches spent queued
	// before Submit (recorded by the gateway via NoteAdmissionWait).
	AdmissionWait time.Duration
	// AdmissionWaitP99 is the 99th-percentile wait over a uniform
	// reservoir sample (Algorithm R, admSampleCap entries) of every wait
	// recorded so far, so it keeps tracking current behavior past the
	// first admSampleCap admissions.
	AdmissionWaitP99 time.Duration
	// LaunchesShed counts launches the gateway refused with ErrShedded
	// (recorded via NoteShed; they never reach the controller).
	LaunchesShed int64
	// Optimizer-window counters (window.go): producer CEs fused away,
	// transfers coalesced into bulk frames, and moves skipped because the
	// target already held a fresh replica. All zero while the
	// controller's OptimizeWindow is off.
	FusedCEs           int64
	CoalescedTransfers int64
	EliminatedMoves    int64
}

// admSampleCap bounds the per-session admission-wait reservoir. Beyond
// it NoteAdmissionWait keeps sampling uniformly (Algorithm R) instead of
// freezing, so the p99 reflects the whole stream, late overload
// included.
const admSampleCap = 8192

// ControllerSession is one tenant's isolated handle on a shared
// Controller. Construct with NewControllerSession.
type ControllerSession struct {
	ctl  *Controller
	name string
	lim  SessionLimits

	mu         sync.Mutex
	idle       sync.Cond // signaled when inflight drops to zero
	arrays     map[dag.ArrayID]*GlobalArray
	nextLocal  dag.ArrayID
	bytes      memmodel.Bytes
	inflight   int
	admitted   int64
	completed  int64
	aborted    int64
	admWait    time.Duration
	admSamples []time.Duration
	admSeen    int64
	admRng     *rand.Rand
	shed       int64
	closed     bool

	// opt aggregates the optimizer window's per-tenant counters; the
	// session pointer doubles as the tenant tag fusion isolates on. Not
	// under mu — the counters are atomics bumped from dispatcher
	// goroutines.
	opt OptCounters
}

// NewControllerSession opens a tenant session on ctl. The name is used
// only for diagnostics and metrics labels.
func NewControllerSession(ctl *Controller, name string, lim SessionLimits) *ControllerSession {
	if lim.Weight < 1 {
		lim.Weight = 1
	}
	s := &ControllerSession{
		ctl:    ctl,
		name:   name,
		lim:    lim,
		arrays: make(map[dag.ArrayID]*GlobalArray),
		admRng: rand.New(rand.NewSource(admSeed(name))),
	}
	s.idle.L = &s.mu
	return s
}

// admSeed derives the admission reservoir's deterministic seed from the
// tenant name (FNV-1a), so repeated runs sample identically.
func admSeed(name string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	if h == 0 {
		h = 1
	}
	return int64(h & (1<<63 - 1))
}

// Name reports the tenant name given at session open.
func (s *ControllerSession) Name() string { return s.name }

// Limits reports the session's (defaulted) limits.
func (s *ControllerSession) Limits() SessionLimits { return s.lim }

// Controller exposes the shared controller (for metric readers).
func (s *ControllerSession) Controller() *Controller { return s.ctl }

func (s *ControllerSession) checkOpen() error {
	if s.closed {
		return fmt.Errorf("core: session %q is closed", s.name)
	}
	return nil
}

// MaxSessionArrayBytes is the absolute ceiling on a single array
// allocated through a session, independent of the tenant quota. Session
// lengths arrive straight off the wire, and a quota-free session must
// still not be able to drive make() into a multi-exabyte request (or an
// int64 byte-size overflow that slips past the quota check) and panic
// the shared gateway process. 1 TiB is far beyond anything the
// simulated fleet hosts while leaving local quota-free sessions
// unconstrained in practice.
const MaxSessionArrayBytes = memmodel.Bytes(1) << 40

// NewArray allocates an array charged against the session's byte quota
// and returns its session-local ID. Both kind and n come straight off
// the wire in gateway use, so they are validated here — rejected, never
// panicked on — before any size arithmetic or allocation.
func (s *ControllerSession) NewArray(kind memmodel.ElemKind, n int64) (dag.ArrayID, error) {
	if err := s.checkOpen(); err != nil {
		return 0, err
	}
	if !kind.Valid() {
		return 0, fmt.Errorf("core: session %q: invalid element kind %d", s.name, int(kind))
	}
	// Bounding n by the byte ceiling first makes the multiplication
	// below overflow-free (the ceiling is far under MaxInt64).
	if n <= 0 || n > int64(MaxSessionArrayBytes/kind.Size()) {
		return 0, fmt.Errorf("core: session %q: invalid array length %d (max %d B per array)",
			s.name, n, MaxSessionArrayBytes)
	}
	size := memmodel.Bytes(n) * kind.Size()
	if s.lim.MaxArrayBytes > 0 && s.bytes+size > s.lim.MaxArrayBytes {
		return 0, fmt.Errorf("%w: session %q holds %d B, requested %d B of a %d B quota",
			ErrQuotaExceeded, s.name, s.bytes, size, s.lim.MaxArrayBytes)
	}
	arr, err := s.ctl.NewArray(kind, n)
	if err != nil {
		return 0, err
	}
	s.nextLocal++
	local := s.nextLocal
	s.mu.Lock()
	s.arrays[local] = arr
	s.bytes += size
	s.mu.Unlock()
	return local, nil
}

// resolve maps a session-local array ID to its global array. Unknown
// IDs — including every other tenant's — are errors, not panics: they
// arrive straight off the wire.
func (s *ControllerSession) resolve(local dag.ArrayID) (*GlobalArray, error) {
	s.mu.Lock()
	arr := s.arrays[local]
	s.mu.Unlock()
	if arr == nil {
		return nil, fmt.Errorf("core: session %q: unknown array %d", s.name, local)
	}
	return arr, nil
}

// Array returns the session's array by local ID, or nil.
func (s *ControllerSession) Array(local dag.ArrayID) *GlobalArray {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.arrays[local]
}

// translate rewrites an invocation's array references from the session
// namespace to the global one.
func (s *ControllerSession) translate(inv Invocation) (Invocation, error) {
	out := inv
	out.Args = make([]ArgRef, len(inv.Args))
	for i, a := range inv.Args {
		if !a.IsArray {
			out.Args[i] = a
			continue
		}
		arr, err := s.resolve(a.Array)
		if err != nil {
			return Invocation{}, err
		}
		out.Args[i] = ArrRef(arr.ID)
	}
	return out, nil
}

// Submit translates and submits one CE on the tenant's behalf and
// tracks it until its dispatch finishes. The returned Pending reports
// the CE's completion exactly as Controller.Submit's does.
func (s *ControllerSession) Submit(inv Invocation) (*Pending, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	tinv, err := s.translate(inv)
	if err != nil {
		return nil, err
	}
	p, err := s.ctl.SubmitTagged(tinv, &s.opt, s)
	if err != nil {
		s.mu.Lock()
		s.admitted++
		s.aborted++
		s.mu.Unlock()
		return nil, err
	}
	s.mu.Lock()
	s.admitted++
	s.inflight++
	s.mu.Unlock()
	go func() {
		_, werr := p.Wait()
		s.mu.Lock()
		s.inflight--
		if werr != nil {
			s.aborted++
		} else {
			s.completed++
		}
		if s.inflight == 0 {
			s.idle.Broadcast()
		}
		s.mu.Unlock()
	}()
	return p, nil
}

// NoteAdmissionWait records time a launch spent queued before Submit.
// Sampling is a uniform reservoir (Algorithm R): the first admSampleCap
// waits fill it, and every later wait replaces a random slot with
// probability cap/seen — so the p99 stays an unbiased view of the whole
// stream instead of freezing on the first 8192 admissions. The RNG is
// seeded deterministically per session (admSeed).
func (s *ControllerSession) NoteAdmissionWait(d time.Duration) {
	s.mu.Lock()
	s.admWait += d
	s.admSeen++
	if len(s.admSamples) < admSampleCap {
		s.admSamples = append(s.admSamples, d)
	} else if j := s.admRng.Int63n(s.admSeen); j < admSampleCap {
		s.admSamples[j] = d
	}
	s.mu.Unlock()
}

// NoteShed records a launch the gateway refused with ErrShedded before
// it ever reached the controller.
func (s *ControllerSession) NoteShed() {
	s.mu.Lock()
	s.shed++
	s.mu.Unlock()
}

// Inflight reports the session's currently in-flight CE count.
func (s *ControllerSession) Inflight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}

// WaitIdle blocks until none of the session's CEs are in flight.
func (s *ControllerSession) WaitIdle() {
	s.mu.Lock()
	for s.inflight > 0 {
		s.idle.Wait()
	}
	s.mu.Unlock()
}

// Stats snapshots the session's counters.
func (s *ControllerSession) Stats() SessionStats {
	opt := s.opt.Snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionStats{
		Admitted:           s.admitted,
		Completed:          s.completed,
		Aborted:            s.aborted,
		Inflight:           s.inflight,
		Arrays:             len(s.arrays),
		ArrayBytes:         s.bytes,
		AdmissionWait:      s.admWait,
		AdmissionWaitP99:   quantileLocked(s.admSamples, 0.99),
		LaunchesShed:       s.shed,
		FusedCEs:           opt.FusedCEs,
		CoalescedTransfers: opt.CoalescedTransfers,
		EliminatedMoves:    opt.EliminatedMoves,
	}
}

// quantileLocked computes the q-quantile (nearest-rank) of the samples.
func quantileLocked(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// HostWrite overwrites the array's contents with data and marks the
// controller copy authoritative. It drains first so no in-flight CE is
// mid-shipment from the buffer being overwritten; no other tenant can
// reference this array, so nothing new can touch it before the copy
// lands (this session's owner is right here).
func (s *ControllerSession) HostWrite(local dag.ArrayID, data *kernels.Buffer) (sim.VirtualTime, error) {
	if err := s.checkOpen(); err != nil {
		return 0, err
	}
	arr, err := s.resolve(local)
	if err != nil {
		return 0, err
	}
	if data == nil {
		return 0, fmt.Errorf("core: session %q: host write of array %d without data", s.name, local)
	}
	if data.Kind != arr.Kind || int64(data.Len()) != arr.Len {
		return 0, fmt.Errorf("core: session %q: host write of array %d: got %d×%v, want %d×%v",
			s.name, local, data.Len(), data.Kind, arr.Len, arr.Kind)
	}
	if err := s.ctl.Drain(); err != nil {
		return 0, err
	}
	if arr.Buf != nil {
		if err := arr.Buf.SetRawBytes(0, data.RawBytes()); err != nil {
			return 0, err
		}
	}
	return s.ctl.HostWrite(arr.ID)
}

// HostRead synchronizes the array back to the controller and returns a
// private copy of its contents (nil in cost-only mode). The tenant's
// copy never aliases controller state.
func (s *ControllerSession) HostRead(local dag.ArrayID) (*kernels.Buffer, sim.VirtualTime, error) {
	if err := s.checkOpen(); err != nil {
		return nil, 0, err
	}
	arr, err := s.resolve(local)
	if err != nil {
		return nil, 0, err
	}
	t, err := s.ctl.HostRead(arr.ID)
	if err != nil {
		return nil, 0, err
	}
	if arr.Buf == nil {
		return nil, t, nil
	}
	return arr.Buf.Clone(), t, nil
}

// Free releases the array and refunds its bytes against the quota.
func (s *ControllerSession) Free(local dag.ArrayID) error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	arr, err := s.resolve(local)
	if err != nil {
		return err
	}
	if err := s.ctl.FreeArray(arr.ID); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.arrays, local)
	s.bytes -= arr.Bytes()
	s.mu.Unlock()
	return nil
}

// BuildKernel compiles and registers a kernel fleet-wide. Kernel names
// are global — sessions share the registry — so the compiled name is
// returned for the tenant to launch by.
func (s *ControllerSession) BuildKernel(src, signature string) (*kernels.Def, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	return s.ctl.BuildKernel(src, signature)
}

// Elapsed reports the shared cluster's virtual clock (a global barrier,
// like Controller.Elapsed).
func (s *ControllerSession) Elapsed() sim.VirtualTime {
	return s.ctl.Elapsed()
}

// Close tears the session down: waits out in-flight CEs, then frees
// every array it still holds. Idempotent; safe after partial failure.
// Other sessions on the same controller are untouched.
func (s *ControllerSession) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	// Flush the optimizer window first: CEs of this session still parked
	// there haven't started dispatching, and WaitIdle would sleep on them
	// forever.
	s.ctl.FlushWindow()
	s.WaitIdle()
	s.mu.Lock()
	locals := make([]dag.ArrayID, 0, len(s.arrays))
	for id := range s.arrays {
		locals = append(locals, id)
	}
	s.mu.Unlock()
	var first error
	for _, local := range locals {
		s.mu.Lock()
		arr := s.arrays[local]
		delete(s.arrays, local)
		if arr != nil {
			s.bytes -= arr.Bytes()
		}
		s.mu.Unlock()
		if arr == nil {
			continue
		}
		if err := s.ctl.FreeArray(arr.ID); err != nil && first == nil {
			first = err
		}
	}
	return first
}
