package core

// Cross-shard lease roots (DESIGN.md §5.8). In a sharded control plane
// (internal/shard) every controller owns a static partition of the
// worker fleet; its policies, registry and failover machinery only ever
// see those workers. A lease exports one quiescent array version to a
// worker *outside* the partition — bytes travel over the shared fabric,
// worker→worker when a worker holds a valid copy, so they never bounce
// through either controller host — and records that replica on the
// GlobalArray as a recovery root. Lineage recovery (lineage.go) then
// treats the foreign copy exactly like a host-written root: if every
// local copy of the leased version dies, the replay chain bottoms out at
// the lease and re-ships from the foreign worker instead of surfacing
// ErrDataLost.
//
// The replica is deliberately kept out of upToDate/member: placement
// must never read from (or schedule onto) a node the shard does not own,
// so the lease is invisible to policies until a loss republishes it.

import (
	"fmt"

	"grout/internal/cluster"
	"grout/internal/dag"
	"grout/internal/kernels"
)

// LeaseArray exports a copy of array id to dst, a worker that need not
// be in this controller's fabric view, and records the replica as a
// lineage recovery root. full is the fabric to move bytes over — the
// unpartitioned fleet view in sharded deployments (nil falls back to
// the controller's own fabric). The controller drains first so the
// leased version is the committed tip at the time of the export; the
// leased version is returned. A later lease of the same array replaces
// the previous root (one lease per array).
func (c *Controller) LeaseArray(full Fabric, id dag.ArrayID, dst cluster.NodeID) (uint64, error) {
	if full == nil {
		full = c.fabric
	}
	c.subMu.Lock()
	defer c.subMu.Unlock()
	if err := c.drainLocked(); err != nil {
		return 0, err
	}
	c.mu.Lock()
	arr, ok := c.arrays[id]
	if !ok {
		c.mu.Unlock()
		return 0, fmt.Errorf("core: lease of unknown array %d", id)
	}
	if len(arr.upToDate) == 0 {
		c.mu.Unlock()
		return 0, fmt.Errorf("core: lease of array %d with no live copy: %w", id, ErrDataLost)
	}
	src := c.bestSource(arr, dst)
	srcReady := arr.upToDate[src]
	var buf *kernels.Buffer
	if src == cluster.ControllerID {
		buf = arr.Buf
	}
	meta := arr.ArrayMeta
	size := arr.size
	c.mu.Unlock()

	if err := full.EnsureArray(dst, meta); err != nil {
		return 0, err
	}
	at, err := full.MoveArray(id, src, dst, srcReady, buf, nil)
	if err != nil {
		return 0, err
	}

	c.mu.Lock()
	arr.leased = true
	arr.leaseNode = dst
	arr.leaseVer = arr.cver
	arr.leaseAt = at
	ver := arr.leaseVer
	c.movedBytes += size
	if src.IsWorker() {
		c.p2pMoves++
	}
	c.mu.Unlock()
	return ver, nil
}

// Lease reports the array's current lease root: the foreign worker
// holding the replica and the version it holds. ok is false when the
// array has never been leased (or does not exist).
func (c *Controller) Lease(id dag.ArrayID) (node cluster.NodeID, ver uint64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	arr := c.arrays[id]
	if arr == nil || !arr.leased {
		return 0, 0, false
	}
	return arr.leaseNode, arr.leaseVer, true
}
