package core

import (
	"errors"
	"fmt"
	"time"

	"grout/internal/cluster"
	"grout/internal/dag"
	"grout/internal/grcuda"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/minicuda"
	"grout/internal/policy"
	"grout/internal/sim"
)

// GlobalArray is a framework-managed array as the Controller sees it:
// metadata, the controller-side host buffer (numeric mode), and the
// data-location registry entry — which nodes hold an up-to-date copy and
// since when.
type GlobalArray struct {
	grcuda.ArrayMeta
	// Buf is the controller's host copy (nil in cost-only mode).
	Buf *kernels.Buffer
	// upToDate[n] holds the virtual time the copy on node n became
	// valid; a node absent from the map is stale.
	upToDate map[cluster.NodeID]sim.VirtualTime
}

// UpToDateOn reports whether node n holds a valid copy.
func (g *GlobalArray) UpToDateOn(n cluster.NodeID) bool {
	_, ok := g.upToDate[n]
	return ok
}

// ReadyAt reports when node n's copy became valid (0, false if stale).
func (g *GlobalArray) ReadyAt(n cluster.NodeID) (sim.VirtualTime, bool) {
	t, ok := g.upToDate[n]
	return t, ok
}

// Locations lists the nodes holding valid copies.
func (g *GlobalArray) Locations() []cluster.NodeID {
	out := make([]cluster.NodeID, 0, len(g.upToDate))
	for n := range g.upToDate {
		out = append(out, n)
	}
	return out
}

// CETrace records one scheduled CE for reports and tests.
type CETrace struct {
	CE          dag.CEID
	Label       string
	Node        cluster.NodeID
	Start       sim.VirtualTime
	End         sim.VirtualTime
	MovedBytes  memmodel.Bytes
	P2PMoves    int
	SchedOverhd time.Duration // wall-clock controller scheduling cost
}

// Options configures a Controller.
type Options struct {
	// Numeric allocates controller-side buffers and ships real data.
	Numeric bool
	// Registry is the kernel registry; defaults to kernels.StdRegistry.
	Registry *kernels.Registry
	// Failover makes the Controller survive worker failures: a CE whose
	// worker errors is marked against that worker and rescheduled on the
	// survivors, re-shipping inputs from a live source. Arrays whose only
	// valid copy died surface a data-loss error instead.
	Failover bool
}

// Controller is GrOUT's front end: the component user programs talk to.
type Controller struct {
	fabric   Fabric
	pol      policy.Policy
	reg      *kernels.Registry
	numeric  bool
	failover bool

	graph   *dag.Graph
	arrays  map[dag.ArrayID]*GlobalArray
	nextArr dag.ArrayID
	ceEnd   map[dag.CEID]sim.VirtualTime
	traces  []CETrace
	elapsed sim.VirtualTime

	// dead records workers the controller has written off (Failover).
	dead map[cluster.NodeID]bool

	// totals
	movedBytes memmodel.Bytes
	p2pMoves   int
	schedTime  time.Duration
	schedCEs   int
	failovers  int
}

// NewController builds a controller over a fabric with an inter-node
// policy.
func NewController(fabric Fabric, pol policy.Policy, opts Options) *Controller {
	reg := opts.Registry
	if reg == nil {
		reg = kernels.StdRegistry()
	}
	return &Controller{
		fabric:   fabric,
		pol:      pol,
		reg:      reg,
		numeric:  opts.Numeric,
		failover: opts.Failover,
		graph:    dag.New(),
		arrays:   make(map[dag.ArrayID]*GlobalArray),
		nextArr:  1,
		ceEnd:    make(map[dag.CEID]sim.VirtualTime),
		dead:     make(map[cluster.NodeID]bool),
	}
}

// aliveWorkers filters the fabric's workers through the dead list.
func (c *Controller) aliveWorkers() []cluster.NodeID {
	all := c.fabric.Workers()
	if len(c.dead) == 0 {
		return all
	}
	alive := make([]cluster.NodeID, 0, len(all))
	for _, w := range all {
		if !c.dead[w] {
			alive = append(alive, w)
		}
	}
	return alive
}

// markDead writes a worker off: it disappears from scheduling candidates
// and from every array's valid-location set.
func (c *Controller) markDead(w cluster.NodeID) {
	if c.dead[w] {
		return
	}
	c.dead[w] = true
	c.failovers++
	for _, arr := range c.arrays {
		delete(arr.upToDate, w)
	}
}

// Failovers reports how many workers the controller has written off.
func (c *Controller) Failovers() int { return c.failovers }

// DeadWorkers lists written-off workers.
func (c *Controller) DeadWorkers() []cluster.NodeID {
	out := make([]cluster.NodeID, 0, len(c.dead))
	for w := range c.dead {
		out = append(out, w)
	}
	return out
}

// Policy returns the active inter-node policy.
func (c *Controller) Policy() policy.Policy { return c.pol }

// SetPolicy swaps the inter-node policy (between workloads).
func (c *Controller) SetPolicy(p policy.Policy) { c.pol = p }

// Graph exposes the Global DAG.
func (c *Controller) Graph() *dag.Graph { return c.graph }

// Registry exposes the kernel registry.
func (c *Controller) Registry() *kernels.Registry { return c.reg }

// Traces returns the per-CE schedule trace.
func (c *Controller) Traces() []CETrace { return c.traces }

// Elapsed reports the workload makespan in virtual time.
func (c *Controller) Elapsed() sim.VirtualTime { return c.elapsed }

// MovedBytes reports total bytes shipped over the network.
func (c *Controller) MovedBytes() memmodel.Bytes { return c.movedBytes }

// P2PMoves reports how many worker-to-worker transfers were issued.
func (c *Controller) P2PMoves() int { return c.p2pMoves }

// MeanSchedulingOverhead reports the mean wall-clock time the Controller
// spent deciding placement per CE — the quantity of the paper's Figure 9.
func (c *Controller) MeanSchedulingOverhead() time.Duration {
	if c.schedCEs == 0 {
		return 0
	}
	return c.schedTime / time.Duration(c.schedCEs)
}

// NewArray allocates a global array, initially up to date on the
// controller only (time 0).
func (c *Controller) NewArray(kind memmodel.ElemKind, n int64) (*GlobalArray, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: invalid array length %d", n)
	}
	id := c.nextArr
	c.nextArr++
	arr := &GlobalArray{
		ArrayMeta: grcuda.ArrayMeta{ID: id, Kind: kind, Len: n},
		upToDate:  map[cluster.NodeID]sim.VirtualTime{cluster.ControllerID: 0},
	}
	if c.numeric {
		arr.Buf = kernels.NewBuffer(kind, int(n))
	}
	c.arrays[id] = arr
	return arr, nil
}

// Array returns a global array by ID, or nil.
func (c *Controller) Array(id dag.ArrayID) *GlobalArray { return c.arrays[id] }

// FreeArray releases a global array everywhere.
func (c *Controller) FreeArray(id dag.ArrayID) error {
	if _, ok := c.arrays[id]; !ok {
		return fmt.Errorf("core: free of unknown array %d", id)
	}
	for _, w := range c.fabric.Workers() {
		if err := c.fabric.FreeArray(w, id); err != nil {
			return err
		}
	}
	delete(c.arrays, id)
	return nil
}

// Launch submits a kernel CE: paper Algorithm 1. The CE enters the Global
// DAG, the policy picks a Worker, the minimal data movements are issued
// (controller→worker or P2P), and the CE is forwarded to the Worker's
// intra-node scheduler. Returns the CE's completion time.
func (c *Controller) Launch(inv Invocation) (sim.VirtualTime, error) {
	def, ok := c.reg.Lookup(inv.Kernel)
	if !ok {
		return 0, fmt.Errorf("core: unknown kernel %q", inv.Kernel)
	}
	if len(inv.Args) != len(def.Sig.Params) {
		return 0, fmt.Errorf("core: %s wants %d arguments, got %d",
			inv.Kernel, len(def.Sig.Params), len(inv.Args))
	}
	if len(c.aliveWorkers()) == 0 {
		return 0, fmt.Errorf("core: no workers available")
	}

	// Argument metadata and access derivation.
	metas := make([]kernels.ArgMeta, len(inv.Args))
	for i, a := range inv.Args {
		if a.IsArray {
			if !def.Sig.Params[i].Pointer {
				return 0, fmt.Errorf("core: %s argument %d must be a scalar", inv.Kernel, i)
			}
			arr, ok := c.arrays[a.Array]
			if !ok {
				return 0, fmt.Errorf("core: %s references unknown array %d", inv.Kernel, a.Array)
			}
			metas[i] = kernels.ArgMeta{IsBuffer: true, Len: arr.Len}
		} else {
			if def.Sig.Params[i].Pointer {
				return 0, fmt.Errorf("core: %s argument %d must be an array", inv.Kernel, i)
			}
			metas[i] = kernels.ArgMeta{Scalar: a.Scalar}
		}
	}
	accs := def.Access(metas)

	// --- Scheduling decision (timed: this is Figure 9's overhead). ---
	schedStart := time.Now()

	// Add CE to the Global DAG's frontier.
	var dagAccs []dag.Access
	for i, a := range inv.Args {
		if a.IsArray {
			dagAccs = append(dagAccs, dag.Access{Array: a.Array, Mode: accs[i].Mode})
		}
	}
	ce := c.graph.NewCE(inv.Kernel, dagAccs, nil)
	ancestors := c.graph.Add(ce)
	depReady := sim.VirtualTime(0)
	for _, a := range ancestors {
		if end := c.ceEnd[a.CE.ID]; end > depReady {
			depReady = end
		}
	}

	// Apply the node-level scheduling policy.
	req := c.buildRequest(ce, inv.Args, accs)
	target := c.pol.Assign(req)

	schedDur := time.Since(schedStart)
	c.schedTime += schedDur
	c.schedCEs++
	// --- End of timed scheduling section. ---

	// Issue the data movements and forward the CE; under Failover a
	// failing worker is written off and the CE rescheduled on survivors.
	var end sim.VirtualTime
	var ready sim.VirtualTime
	var moved memmodel.Bytes
	var p2p int
	for {
		transferReady, m, p, err := c.ensureArgs(target, inv.Args, accs)
		if err == nil {
			ready = sim.Max(depReady, transferReady)
			moved, p2p = m, p
			end, err = c.fabric.Launch(target, inv, ready)
		}
		if err == nil {
			break
		}
		if !c.failover || errorIsDataLoss(err) {
			return 0, err
		}
		// Identify which worker actually died (the error may come from
		// the CE's target or from a transfer source) and write it off.
		anyDead := false
		for _, w := range c.aliveWorkers() {
			if !c.fabric.Healthy(w) {
				c.markDead(w)
				anyDead = true
			}
		}
		if !anyDead {
			return 0, err // not a worker failure; don't spin
		}
		if len(c.aliveWorkers()) == 0 {
			return 0, fmt.Errorf("core: no workers left after failover: %w", err)
		}
		req = c.buildRequest(ce, inv.Args, accs)
		target = c.pol.Assign(req)
	}

	// Update the data-location registry.
	for i, a := range inv.Args {
		if !a.IsArray {
			continue
		}
		arr := c.arrays[a.Array]
		if accs[i].Mode.Writes() {
			// The writer's copy is now the only valid one.
			arr.upToDate = map[cluster.NodeID]sim.VirtualTime{target: end}
		} else if _, ok := arr.upToDate[target]; !ok {
			arr.upToDate[target] = end
		}
	}

	c.ceEnd[ce.ID] = end
	if end > c.elapsed {
		c.elapsed = end
	}
	c.movedBytes += moved
	c.p2pMoves += p2p
	c.traces = append(c.traces, CETrace{
		CE: ce.ID, Label: inv.Kernel, Node: target,
		Start: ready, End: end, MovedBytes: moved, P2PMoves: p2p,
		SchedOverhd: schedDur,
	})
	return end, nil
}

// errDataLoss marks errors no failover can fix: the only valid copy of an
// array died with its worker.
type errDataLoss struct{ id dag.ArrayID }

func (e *errDataLoss) Error() string {
	return fmt.Sprintf("core: array %d lost: its only valid copy was on a failed worker", e.id)
}

func errorIsDataLoss(err error) bool {
	var dl *errDataLoss
	return errors.As(err, &dl)
}

// buildRequest assembles the policy's view: per worker, the bytes of the
// CE's parameters already up to date there, the bytes that would move, and
// the estimated transfer time from the interconnection matrix.
func (c *Controller) buildRequest(ce *dag.CE, args []ArgRef, accs []memmodel.Access) policy.Request {
	workers := c.aliveWorkers()
	req := policy.Request{CE: ce, Nodes: make([]policy.NodeInfo, len(workers))}
	if !c.pol.NeedsDataView() {
		// Static policies only need the candidate list.
		for wi, w := range workers {
			req.Nodes[wi] = policy.NodeInfo{ID: w}
		}
		return req
	}
	var total memmodel.Bytes
	for i, a := range args {
		if !a.IsArray {
			continue
		}
		// Write-only full overwrites don't need their old bytes moved.
		if accs[i].Mode == memmodel.Write && accs[i].Fraction >= 1 {
			continue
		}
		total += c.arrays[a.Array].Bytes()
	}
	req.Total = total
	for wi, w := range workers {
		info := policy.NodeInfo{ID: w}
		for i, a := range args {
			if !a.IsArray {
				continue
			}
			if accs[i].Mode == memmodel.Write && accs[i].Fraction >= 1 {
				continue
			}
			arr := c.arrays[a.Array]
			if arr.UpToDateOn(w) {
				info.UpToDate += arr.Bytes()
			} else {
				info.Transfer += arr.Bytes()
				src := c.bestSource(arr, w)
				info.TransferTime += c.fabric.EstimateTransfer(src, w, arr.Bytes())
			}
		}
		req.Nodes[wi] = info
	}
	return req
}

// bestSource picks where to pull a stale array from: the up-to-date node
// with the fastest link to the target, preferring workers (P2P) over the
// controller when both hold valid copies, as in Algorithm 1.
func (c *Controller) bestSource(arr *GlobalArray, target cluster.NodeID) cluster.NodeID {
	best := cluster.ControllerID
	bestTime := sim.Infinity
	haveWorker := false
	for n := range arr.upToDate {
		if n == target || c.dead[n] {
			continue
		}
		est := c.fabric.EstimateTransfer(n, target, arr.Bytes())
		isWorker := n.IsWorker()
		// Prefer P2P sources; among equals, the fastest link.
		better := false
		switch {
		case isWorker && !haveWorker:
			better = true
		case isWorker == haveWorker && est < bestTime:
			better = true
		}
		if better {
			best, bestTime, haveWorker = n, est, isWorker
		}
	}
	return best
}

// ensureArgs issues the data movements Algorithm 1 requires: every array
// parameter that is not up to date on the target is shipped from its best
// source. Write-only full overwrites skip the transfer but still allocate.
func (c *Controller) ensureArgs(target cluster.NodeID, args []ArgRef, accs []memmodel.Access) (ready sim.VirtualTime, moved memmodel.Bytes, p2p int, err error) {
	for i, a := range args {
		if !a.IsArray {
			continue
		}
		arr := c.arrays[a.Array]
		if err := c.fabric.EnsureArray(target, arr.ArrayMeta); err != nil {
			return 0, 0, 0, err
		}
		if arr.UpToDateOn(target) {
			if t := arr.upToDate[target]; t > ready {
				ready = t
			}
			continue
		}
		if accs[i].Mode == memmodel.Write && accs[i].Fraction >= 1 {
			continue // full overwrite: old contents don't matter
		}
		if len(arr.upToDate) == 0 {
			return 0, 0, 0, &errDataLoss{id: a.Array}
		}
		src := c.bestSource(arr, target)
		srcReady := arr.upToDate[src]
		arrival, err := c.fabric.MoveArray(a.Array, src, target, srcReady, arr.Buf, nil)
		if err != nil {
			return 0, 0, 0, err
		}
		arr.upToDate[target] = arrival
		moved += arr.Bytes()
		if src.IsWorker() {
			p2p++
		}
		if arrival > ready {
			ready = arrival
		}
		if arrival > c.elapsed {
			c.elapsed = arrival
		}
	}
	return ready, moved, p2p, nil
}

// HostRead makes the controller's copy of an array consistent (the user
// reading results, paper Listing 1's print(x)): a read CE that may pull
// the array back from the worker that last wrote it.
func (c *Controller) HostRead(id dag.ArrayID) (sim.VirtualTime, error) {
	arr, ok := c.arrays[id]
	if !ok {
		return 0, fmt.Errorf("core: host read of unknown array %d", id)
	}
	ce := c.graph.NewCE("host-read", []dag.Access{{Array: id, Mode: memmodel.Read}}, nil)
	ancestors := c.graph.Add(ce)
	depReady := sim.VirtualTime(0)
	for _, a := range ancestors {
		if end := c.ceEnd[a.CE.ID]; end > depReady {
			depReady = end
		}
	}
	end := depReady
	if !arr.UpToDateOn(cluster.ControllerID) {
		if len(arr.upToDate) == 0 {
			return 0, &errDataLoss{id: id}
		}
		src := c.bestSource(arr, cluster.ControllerID)
		arrival, err := c.fabric.MoveArray(id, src, cluster.ControllerID,
			sim.Max(arr.upToDate[src], depReady), nil, arr.Buf)
		if err != nil {
			return 0, err
		}
		arr.upToDate[cluster.ControllerID] = arrival
		c.movedBytes += arr.Bytes()
		end = arrival
	} else if t := arr.upToDate[cluster.ControllerID]; t > end {
		end = t
	}
	c.ceEnd[ce.ID] = end
	if end > c.elapsed {
		c.elapsed = end
	}
	c.traces = append(c.traces, CETrace{CE: ce.ID, Label: "host-read",
		Node: cluster.ControllerID, Start: depReady, End: end})
	return end, nil
}

// HostWrite marks an array as (re)initialized by the controller's host
// code: the controller copy becomes the only valid one. In numeric mode
// the caller mutates arr.Buf directly around this call.
func (c *Controller) HostWrite(id dag.ArrayID) (sim.VirtualTime, error) {
	arr, ok := c.arrays[id]
	if !ok {
		return 0, fmt.Errorf("core: host write of unknown array %d", id)
	}
	ce := c.graph.NewCE("host-write", []dag.Access{{Array: id, Mode: memmodel.Write}}, nil)
	ancestors := c.graph.Add(ce)
	depReady := sim.VirtualTime(0)
	for _, a := range ancestors {
		if end := c.ceEnd[a.CE.ID]; end > depReady {
			depReady = end
		}
	}
	arr.upToDate = map[cluster.NodeID]sim.VirtualTime{cluster.ControllerID: depReady}
	c.ceEnd[ce.ID] = depReady
	if depReady > c.elapsed {
		c.elapsed = depReady
	}
	c.traces = append(c.traces, CETrace{CE: ce.ID, Label: "host-write",
		Node: cluster.ControllerID, Start: depReady, End: depReady})
	return depReady, nil
}

// BuildKernel compiles a mini-CUDA kernel from source (the NVRTC path of
// buildkernel) and registers it with the controller and, through the
// fabric, with every worker.
func (c *Controller) BuildKernel(src, signature string) (*kernels.Def, error) {
	def, err := minicuda.Compile(src, signature)
	if err != nil {
		return nil, err
	}
	if _, exists := c.reg.Lookup(def.Name); !exists {
		if err := c.reg.Register(def); err != nil {
			return nil, err
		}
	}
	if kb, ok := c.fabric.(KernelBuilder); ok {
		if err := kb.BuildKernel(src, signature); err != nil {
			return nil, err
		}
	}
	return def, nil
}
