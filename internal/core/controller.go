package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"grout/internal/cluster"
	"grout/internal/dag"
	"grout/internal/grcuda"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/minicuda"
	"grout/internal/optimizer"
	"grout/internal/policy"
	"grout/internal/sim"
)

// GlobalArray is a framework-managed array as the Controller sees it:
// metadata, the controller-side host buffer (numeric mode), and the
// data-location registry entry — which nodes hold an up-to-date copy and
// since when.
type GlobalArray struct {
	grcuda.ArrayMeta
	// Buf is the controller's host copy (nil in cost-only mode).
	Buf *kernels.Buffer
	// upToDate[n] holds the virtual time the copy on node n became
	// valid; a node absent from the map is stale. It is the
	// authoritative registry, written as CEs actually dispatch.
	upToDate map[cluster.NodeID]sim.VirtualTime
	// member is the scheduler's membership view of upToDate: the same
	// key set, but updated at scheduling time. In serial mode the two
	// always agree; under pipelined dispatch member runs ahead,
	// reflecting the post-dispatch locations of every CE already
	// admitted — exactly the view the next scheduling decision needs.
	member map[cluster.NodeID]struct{}
	// mask mirrors member as a NodeID-indexed bitmap so the O(workers)
	// scheduling loop avoids per-cell map lookups.
	mask []bool
	// gen invalidates est: it advances whenever member changes.
	gen uint64
	// ver is the array's write version on the scheduler's timeline: it
	// advances when a writing CE is admitted (and on HostWrite). cver is
	// the committed version — the version whose locations upToDate
	// records — advancing as writers actually dispatch. Writers of one
	// array are DAG-ordered, so cver trails ver by exactly the in-flight
	// writes. Version 0 is the NewArray state (controller-resident).
	// Lineage recovery (lineage.go) keys producer records by version.
	ver, cver uint64
	// hostVer is the version Buf holds: workers mutate their own copies,
	// so the controller's buffer keeps a host-written (or host-read)
	// version's bytes even after in-place overwrites commit elsewhere.
	// Lineage recovery re-ships it when a chain bottoms out there.
	// Version 0 (the zeroed NewArray state) is the zero value.
	hostVer uint64
	// leaseNode/leaseVer/leaseAt record a cross-shard lease replica
	// (LeaseArray, used by internal/shard): a copy of version leaseVer
	// exported to a worker that may lie outside this controller's fabric
	// view. The replica is deliberately NOT in upToDate — placement never
	// reads from it — but lineage recovery accepts it as a root, so a
	// shard can lose every local copy and still recover worker→worker
	// from the foreign replica (lineage.go). leased gates validity.
	leased    bool
	leaseNode cluster.NodeID
	leaseVer  uint64
	leaseAt   sim.VirtualTime
	// est caches the per-worker best-source transfer estimates the
	// informed policies consult, indexed by NodeID. The vector is valid
	// while estAgen/estDgen match the array's location generation and
	// the controller's dead-set generation — the only events that can
	// change a best source or its idle-network estimate (bandwidths are
	// fixed at cluster construction).
	est              []sim.VirtualTime
	estAgen, estDgen uint64
	// size caches Bytes() for the scheduling hot path.
	size memmodel.Bytes
}

// maskHas reports membership via the bitmap.
func (g *GlobalArray) maskHas(n cluster.NodeID) bool {
	return int(n) < len(g.mask) && g.mask[n]
}

func (g *GlobalArray) maskSet(n cluster.NodeID) {
	if int(n) >= len(g.mask) {
		grown := make([]bool, int(n)+1)
		copy(grown, g.mask)
		g.mask = grown
	}
	g.mask[n] = true
}

func (g *GlobalArray) maskClearAll() {
	for i := range g.mask {
		g.mask[i] = false
	}
}

// UpToDateOn reports whether node n holds a valid copy (scheduler view).
func (g *GlobalArray) UpToDateOn(n cluster.NodeID) bool {
	_, ok := g.member[n]
	return ok
}

// ReadyAt reports when node n's copy became valid (0, false if stale).
func (g *GlobalArray) ReadyAt(n cluster.NodeID) (sim.VirtualTime, bool) {
	t, ok := g.upToDate[n]
	return t, ok
}

// Locations lists the nodes holding valid copies.
func (g *GlobalArray) Locations() []cluster.NodeID {
	out := make([]cluster.NodeID, 0, len(g.member))
	for n := range g.member {
		out = append(out, n)
	}
	return out
}

// CETrace records one scheduled CE for reports and tests.
type CETrace struct {
	CE          dag.CEID
	Label       string
	Node        cluster.NodeID
	Start       sim.VirtualTime
	End         sim.VirtualTime
	MovedBytes  memmodel.Bytes
	P2PMoves    int
	SchedOverhd time.Duration // wall-clock controller scheduling cost
}

// Options configures a Controller.
type Options struct {
	// Numeric allocates controller-side buffers and ships real data.
	Numeric bool
	// Registry is the kernel registry; defaults to kernels.StdRegistry.
	Registry *kernels.Registry
	// Failover makes the Controller survive worker failures: a CE whose
	// worker errors is marked against that worker and rescheduled on the
	// survivors, re-shipping inputs from a live source. Arrays whose only
	// valid copy died are recomputed from lineage — the recorded producer
	// chain re-executes on the survivors (lineage.go) — and only surface
	// ErrDataLost when the chain bottoms out in an unrecoverable root.
	Failover bool
	// Retry bounds in-place retries of transient dispatch failures
	// (timeouts, severed connections) before the failover machinery
	// writes the worker off. The zero value disables retries.
	Retry RetryPolicy
	// Pipeline decouples the timed scheduling section from data movement
	// and launch: Submit admits CEs while per-worker dispatch goroutines
	// issue transfers and launches in the background. Virtual-time
	// results are identical to the serial path (see pipeline.go). Call
	// Close when done to stop the dispatchers.
	Pipeline bool
	// PipelineDepth bounds each worker's dispatch queue (default 64).
	PipelineDepth int
	// OptimizeWindow, when positive, parks up to that many admitted CEs
	// in a lookahead window and runs the optimizer passes — kernel
	// fusion, transfer coalescing, redundant-move elimination, batched
	// policy evaluation — over the whole batch before dispatch (see
	// window.go and DESIGN.md §5.6). Zero or negative disables the
	// window. Synchronization points (Drain, HostRead/HostWrite,
	// FreeArray, SetPolicy, BuildKernel, Close, FlushWindow) flush a
	// partial window.
	OptimizeWindow int
	// Workers, when non-nil, restricts the controller's initial scheduling
	// membership to this subset of the fabric's fleet; the rest of the
	// fleet is a standby pool AddWorker can activate later (elastic.go).
	// nil (the default) makes every fabric worker a member, preserving the
	// fixed-fleet behavior.
	Workers []cluster.NodeID
	// ArrayIDBase offsets the controller's array-ID namespace: NewArray
	// assigns IDs starting at ArrayIDBase+1. A sharded control plane
	// (internal/shard) gives every shard controller a disjoint base so a
	// cross-shard lease replica can land on a foreign worker's runtime
	// without colliding with an ID that shard allocated itself. Zero
	// keeps the default namespace (IDs from 1).
	ArrayIDBase dag.ArrayID
	// TraceCapacity preallocates the per-CE trace buffer for long
	// streams (a hint; the buffer still grows past it).
	TraceCapacity int
	// DisableTraces stops per-CE trace accumulation entirely so
	// long-running production streams do not grow memory linearly.
	// Aggregate counters (Elapsed, MovedBytes, scheduling overhead)
	// still update; Traces() returns nil and trace export is empty.
	DisableTraces bool
}

// RetryPolicy shapes transient-failure retries: capped exponential
// backoff with optional deterministic jitter.
type RetryPolicy struct {
	// Attempts is how many times a transiently failing operation retries
	// in place before failover takes over (0 disables retries).
	Attempts int
	// Backoff is the first retry's delay; each further retry doubles it.
	// Defaults to 50ms when Attempts > 0.
	Backoff time.Duration
	// MaxBackoff caps the doubling (default 2s).
	MaxBackoff time.Duration
	// Jitter subtracts a random fraction of up to Jitter (in [0,1)) from
	// each delay, decorrelating retry storms across dispatchers.
	Jitter float64
	// Seed makes the jitter deterministic; 0 means seed 1.
	Seed int64
}

// delay computes the backoff before retry attempt n (1-based).
func (p RetryPolicy) delay(n int, rng *rand.Rand) time.Duration {
	d := p.Backoff
	if d <= 0 {
		d = 50 * time.Millisecond
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = 2 * time.Second
	}
	for i := 1; i < n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if p.Jitter > 0 && rng != nil {
		d -= time.Duration(float64(d) * p.Jitter * rng.Float64())
	}
	return d
}

// Controller is GrOUT's front end: the component user programs talk to.
//
// Concurrency contract: every submission-side method (Submit, Launch,
// NewArray, FreeArray, HostRead, HostWrite, BuildKernel, SetPolicy, and
// the drained metric readers Elapsed/MovedBytes/P2PMoves/Traces) is safe
// to call from multiple goroutines — they serialize on subMu, so
// interleaved submissions from concurrent clients observe a single total
// submission order (the order that defines the schedule). Dispatch-side
// state is guarded separately by mu; with Options.Pipeline the dispatch
// stage runs concurrently behind the submission lock. Synchronizing
// operations (HostRead, HostWrite, FreeArray, SetPolicy, BuildKernel)
// drain the pipeline and therefore act as global barriers across all
// submitting goroutines. TestConcurrentSubmitters exercises this contract
// under the race detector.
type Controller struct {
	fabric   Fabric
	pol      policy.Policy
	reg      *kernels.Registry
	numeric  bool
	failover bool

	graph   *dag.Graph
	arrays  map[dag.ArrayID]*GlobalArray
	nextArr dag.ArrayID

	// lineage maps (array, version) to the producer record that can
	// recompute it (failover mode only; see lineage.go). Guarded by mu.
	lineage map[lineageKey]*producerRec
	// recMu serializes recoveries: concurrent dispatchers hitting the
	// same loss queue here, and the second one finds the data restored.
	recMu sync.Mutex

	// retry is the transient-failure retry policy; retryRng jitters its
	// backoff deterministically (guarded by retryMu).
	retry    RetryPolicy
	retryMu  sync.Mutex
	retryRng *rand.Rand

	// subMu serializes the submission side: Submit/Launch admissions,
	// array allocation and release, host reads/writes, policy swaps and
	// kernel builds. It establishes the total submission order the
	// schedule is defined by. Lock order: subMu before mu; dispatchers
	// take only mu.
	subMu sync.Mutex

	// mu guards the dispatch-shared state below (ceEnd, array registry
	// times, totals, traces, dead set, policy, the arrays map). cond is
	// broadcast whenever a dispatch commit publishes new state.
	mu   sync.Mutex
	cond *sync.Cond

	ceEnd   map[dag.CEID]sim.VirtualTime
	traces  []CETrace
	noTrace bool
	elapsed sim.VirtualTime

	// dead records workers the controller has written off (Failover);
	// deadGen advances on every change, invalidating estimate caches.
	dead    map[cluster.NodeID]bool
	deadGen uint64
	// roster is the elastic membership overlay: the subset of fabric
	// workers the controller currently schedules on (elastic.go). nil
	// means every fabric worker is a member. Guarded by mu; deadGen
	// advances on every roster change too, since membership edits
	// invalidate the same caches a death does.
	roster map[cluster.NodeID]bool
	// alive caches the live worker list; nil means rebuild.
	alive []cluster.NodeID

	// reqNodes is the reusable buildRequest scratch buffer. Policies may
	// not retain Request.Nodes past Assign.
	reqNodes []policy.NodeInfo
	// estScratch is the reusable per-source buffer of refreshEst.
	estScratch []sim.VirtualTime
	// metasBuf is validate's argument-metadata scratch (kernel Access
	// hooks must not retain it).
	metasBuf []kernels.ArgMeta
	// schedBuf is the serial path's reusable scheduled record; the
	// pipelined path allocates per CE since dispatch outlives Submit.
	schedBuf scheduled

	// pipe is the pipelined dispatch engine (nil in serial mode).
	pipe *pipeline

	// Lookahead optimizer window (window.go). optWindow > 0 enables it;
	// win holds parked entries and winErr the sticky flush error, both
	// guarded by subMu. bulkMover caches the fabric's optional coalescing
	// interface; optStats aggregates controller-wide optimizer counters.
	optWindow int
	win       []*winEntry
	winErr    error
	bulkMover BulkMover
	// stallPred caches the fabric's optional oversubscription predictor;
	// nil when the fabric cannot see into worker memory (TCP transport),
	// which degrades stall-aware policies to transfer-time ranking.
	stallPred StallPredictor
	optStats  OptCounters
	// winReqs/winNodes are the batched policy evaluation's scratch —
	// every request of a window alive at once, reused across windows
	// (guarded by mu; policies may not retain them past AssignBatch).
	winReqs  []policy.Request
	winNodes []policy.NodeInfo
	// winPlaced is planPrefetchLocked's reusable op scratch (guarded by
	// mu; PlanPrefetch copies what it keeps).
	winPlaced []optimizer.PlacedOp
	// winViews dedupes identical data views within one window's batched
	// policy evaluation: view-key → first window index (guarded by mu).
	winViews map[uint64]int
	// schedSlabs recycles the window's scheduled slabs: the batch
	// dispatcher (or the serial flush path) returns a slab once its whole
	// window has dispatched. Own mutex — recycling must not contend with
	// the scheduling stage's locks.
	schedSlabMu sync.Mutex
	schedSlabs  [][]scheduled

	// totals
	movedBytes memmodel.Bytes
	p2pMoves   int
	schedTime  time.Duration
	schedCEs   int
	failovers  int
	// recoveries counts arrays recomputed from lineage; recoveryTime is
	// the wall clock spent doing it (the groutbench recovery column).
	recoveries   int
	recoveryTime time.Duration
}

// NewController builds a controller over a fabric with an inter-node
// policy.
func NewController(fabric Fabric, pol policy.Policy, opts Options) *Controller {
	reg := opts.Registry
	if reg == nil {
		reg = kernels.StdRegistry()
	}
	c := &Controller{
		fabric:   fabric,
		pol:      pol,
		reg:      reg,
		numeric:  opts.Numeric,
		failover: opts.Failover,
		graph:    dag.New(),
		arrays:   make(map[dag.ArrayID]*GlobalArray),
		nextArr:  1,
		ceEnd:    make(map[dag.CEID]sim.VirtualTime),
		dead:     make(map[cluster.NodeID]bool),
		deadGen:  1,
		noTrace:  opts.DisableTraces,
		retry:    opts.Retry,
	}
	if opts.ArrayIDBase > 0 {
		c.nextArr = opts.ArrayIDBase + 1
	}
	if opts.Workers != nil {
		c.roster = make(map[cluster.NodeID]bool, len(opts.Workers))
		for _, w := range opts.Workers {
			c.roster[w] = true
		}
	}
	if opts.Failover {
		c.lineage = make(map[lineageKey]*producerRec)
	}
	if opts.OptimizeWindow > 0 {
		c.optWindow = opts.OptimizeWindow
	}
	c.bulkMover, _ = fabric.(BulkMover)
	c.stallPred, _ = fabric.(StallPredictor)
	if opts.Retry.Jitter > 0 {
		seed := opts.Retry.Seed
		if seed == 0 {
			seed = 1
		}
		c.retryRng = rand.New(rand.NewSource(seed))
	}
	c.cond = sync.NewCond(&c.mu)
	if opts.TraceCapacity > 0 && !opts.DisableTraces {
		c.traces = make([]CETrace, 0, opts.TraceCapacity)
	}
	if opts.Pipeline {
		c.pipe = newPipeline(c, opts.PipelineDepth)
	}
	return c
}

// Close stops the pipelined dispatchers after draining in-flight CEs
// (flushing the optimizer window first, so parked CEs still run). It is
// a no-op for serial controllers without a window and is idempotent.
func (c *Controller) Close() error {
	c.subMu.Lock()
	ferr := c.flushWindowLocked()
	c.subMu.Unlock()
	if c.pipe == nil {
		return ferr
	}
	if err := c.pipe.close(); err != nil {
		return err
	}
	return ferr
}

// Drain flushes the optimizer window, waits until every submitted CE has
// dispatched, and reports the first terminal error, if any.
func (c *Controller) Drain() error {
	c.subMu.Lock()
	defer c.subMu.Unlock()
	return c.drainLocked()
}

// aliveWorkers returns the live worker list, maintained incrementally:
// the fabric's worker set is fixed, so the list only changes when a
// worker is written off or the elastic roster changes (AddWorker /
// RetireWorker in elastic.go).
func (c *Controller) aliveWorkers() []cluster.NodeID {
	if c.alive == nil {
		all := c.fabric.Workers()
		alive := make([]cluster.NodeID, 0, len(all))
		for _, w := range all {
			if c.dead[w] || (c.roster != nil && !c.roster[w]) {
				continue
			}
			alive = append(alive, w)
		}
		c.alive = alive
	}
	return c.alive
}

// markDead writes a worker off: it disappears from scheduling candidates
// and from every array's valid-location set. Caller holds mu.
func (c *Controller) markDead(w cluster.NodeID) {
	if c.dead[w] {
		return
	}
	c.dead[w] = true
	c.deadGen++
	c.alive = nil
	c.failovers++
	for _, arr := range c.arrays {
		delete(arr.upToDate, w)
		if _, ok := arr.member[w]; ok {
			delete(arr.member, w)
			if int(w) < len(arr.mask) {
				arr.mask[w] = false
			}
			arr.gen++
		}
	}
	c.cond.Broadcast()
}

// Failovers reports how many workers the controller has written off.
// markDead mutates the counter under mu from dispatcher goroutines, so
// the read takes the lock too.
func (c *Controller) Failovers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failovers
}

// Recoveries reports how many arrays lineage recovery has recomputed.
func (c *Controller) Recoveries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recoveries
}

// RecoveryTime reports the wall clock spent in lineage recovery.
func (c *Controller) RecoveryTime() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recoveryTime
}

// DeadWorkers lists written-off workers.
func (c *Controller) DeadWorkers() []cluster.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]cluster.NodeID, 0, len(c.dead))
	for w := range c.dead {
		out = append(out, w)
	}
	return out
}

// Policy returns the active inter-node policy.
func (c *Controller) Policy() policy.Policy { return c.pol }

// SetPolicy swaps the inter-node policy (between workloads). It drains
// the pipeline, so no in-flight CE sees the swap.
func (c *Controller) SetPolicy(p policy.Policy) {
	c.subMu.Lock()
	defer c.subMu.Unlock()
	c.drainLocked()
	c.mu.Lock()
	c.pol = p
	c.mu.Unlock()
}

// Graph exposes the Global DAG.
func (c *Controller) Graph() *dag.Graph { return c.graph }

// Registry exposes the kernel registry.
func (c *Controller) Registry() *kernels.Registry { return c.reg }

// Traces returns the per-CE schedule trace (nil with DisableTraces).
func (c *Controller) Traces() []CETrace {
	c.subMu.Lock()
	defer c.subMu.Unlock()
	c.drainLocked()
	return c.traces
}

// Elapsed reports the workload makespan in virtual time.
func (c *Controller) Elapsed() sim.VirtualTime {
	c.subMu.Lock()
	defer c.subMu.Unlock()
	c.drainLocked()
	return c.elapsed
}

// MovedBytes reports total bytes shipped over the network.
func (c *Controller) MovedBytes() memmodel.Bytes {
	c.subMu.Lock()
	defer c.subMu.Unlock()
	c.drainLocked()
	return c.movedBytes
}

// P2PMoves reports how many worker-to-worker transfers were issued.
func (c *Controller) P2PMoves() int {
	c.subMu.Lock()
	defer c.subMu.Unlock()
	c.drainLocked()
	return c.p2pMoves
}

// MeanSchedulingOverhead reports the mean wall-clock time the Controller
// spent deciding placement per CE — the quantity of the paper's Figure 9.
func (c *Controller) MeanSchedulingOverhead() time.Duration {
	c.subMu.Lock()
	defer c.subMu.Unlock()
	if c.schedCEs == 0 {
		return 0
	}
	return c.schedTime / time.Duration(c.schedCEs)
}

// NewArray allocates a global array, initially up to date on the
// controller only (time 0).
func (c *Controller) NewArray(kind memmodel.ElemKind, n int64) (*GlobalArray, error) {
	if !kind.Valid() {
		return nil, fmt.Errorf("core: invalid element kind %d", int(kind))
	}
	// The upper bound rejects lengths whose byte size would overflow
	// int64 (Size is a power of two, so the division is exact); without
	// it a huge n slips past byte-based quota checks and panics make.
	if n <= 0 || n > math.MaxInt64/int64(kind.Size()) {
		return nil, fmt.Errorf("core: invalid array length %d", n)
	}
	c.subMu.Lock()
	defer c.subMu.Unlock()
	id := c.nextArr
	c.nextArr++
	arr := &GlobalArray{
		ArrayMeta: grcuda.ArrayMeta{ID: id, Kind: kind, Len: n},
		upToDate:  map[cluster.NodeID]sim.VirtualTime{cluster.ControllerID: 0},
		member:    map[cluster.NodeID]struct{}{cluster.ControllerID: {}},
		gen:       1,
	}
	arr.maskSet(cluster.ControllerID)
	arr.size = arr.Bytes()
	if c.numeric {
		arr.Buf = kernels.NewBuffer(kind, int(n))
	}
	// The map write takes mu too: dispatch-side readers (commit,
	// markDead, lineage) hold mu but not subMu.
	c.mu.Lock()
	c.arrays[id] = arr
	c.mu.Unlock()
	return arr, nil
}

// Array returns a global array by ID, or nil. Safe from any goroutine.
func (c *Controller) Array(id dag.ArrayID) *GlobalArray {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.arrays[id]
}

// FreeArray releases a global array everywhere. Like HostRead/HostWrite
// it drains the dispatch pipeline first.
func (c *Controller) FreeArray(id dag.ArrayID) error {
	c.subMu.Lock()
	defer c.subMu.Unlock()
	c.drainLocked()
	c.mu.Lock()
	arr, ok := c.arrays[id]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: free of unknown array %d", id)
	}
	for _, w := range c.fabric.Workers() {
		if err := c.fabric.FreeArray(w, id); err != nil {
			return err
		}
	}
	// A cross-shard lease replica lives on a worker outside this
	// controller's partition; the fabric delegates the free to the full
	// fleet view, so the foreign copy is released too.
	if arr.leased {
		if err := c.fabric.FreeArray(arr.leaseNode, id); err != nil {
			return err
		}
	}
	c.mu.Lock()
	delete(c.arrays, id)
	c.mu.Unlock()
	return nil
}

// refreshEst recomputes an array's per-worker transfer-estimate vector:
// for every worker w, the idle-network time to pull the array from its
// best live source (workers preferred over the controller, fastest link
// within a class — bestSource's rule). The vector is then served from
// cache until the array's location set or the dead set changes.
func (c *Controller) refreshEst(arr *GlobalArray, workers []cluster.NodeID) {
	maxID := 0
	for _, w := range workers {
		if int(w) > maxID {
			maxID = int(w)
		}
	}
	if len(arr.est) < maxID+1 {
		arr.est = make([]sim.VirtualTime, maxID+1)
	}
	est := arr.est
	for i := range est {
		est[i] = sim.Infinity
	}
	if cap(c.estScratch) < maxID+1 {
		c.estScratch = make([]sim.VirtualTime, maxID+1)
	}
	scratch := c.estScratch[:maxID+1]

	merge := func(src cluster.NodeID) {
		c.bulkEstimate(src, arr.size, workers, scratch)
		for _, w := range workers {
			if scratch[w] < est[w] {
				est[w] = scratch[w]
			}
		}
	}
	// Worker sources shadow the controller (P2P preference): only fall
	// back to controller/no-source estimates for workers no live worker
	// source can serve — with a single shared vector that means "when
	// there are no worker sources at all", which matches bestSource since
	// source sets don't vary per target (only the target itself is
	// excluded, and a target that is its own source is already handled by
	// the UpToDate branch).
	haveWorkerSrc := false
	for n := range arr.member {
		if n.IsWorker() && !c.dead[n] {
			haveWorkerSrc = true
			merge(n)
		}
	}
	if !haveWorkerSrc {
		// Controller source, or — with no live copy anywhere — the
		// controller link as a placeholder (the policy's view only; the
		// dispatch stage surfaces data loss).
		merge(cluster.ControllerID)
	}
	arr.estAgen, arr.estDgen = arr.gen, c.deadGen
}

// bulkEstimate fills out[w] for every worker with the idle-network
// estimate for shipping n bytes from src, using the fabric's bulk path
// when it has one.
func (c *Controller) bulkEstimate(src cluster.NodeID, n memmodel.Bytes, workers []cluster.NodeID, out []sim.VirtualTime) {
	if be, ok := c.fabric.(BulkEstimator); ok {
		be.EstimateTransferAll(src, n, workers, out)
		return
	}
	for _, w := range workers {
		out[w] = c.fabric.EstimateTransfer(src, w, n)
	}
}

// scheduled is the outcome of the timed scheduling section: everything
// the dispatch stage needs to move data and launch the CE.
type scheduled struct {
	ce        *dag.CE
	ancestors []*dag.Vertex // read-only view owned by the DAG
	inv       Invocation
	accs      []memmodel.Access
	target    cluster.NodeID
	// upAtSched[i] records, for array argument i, whether the target
	// already held (or was already scheduled to receive) a valid copy
	// when this CE was admitted — the dispatch stage waits for that copy
	// instead of issuing a redundant move.
	upAtSched []bool
	// outVers[j] is the version recordLineage assigned to the j-th
	// written array argument; commit publishes these as cver so aborted
	// CEs (which bump ver but never commit) cannot desynchronize the
	// committed version from the lineage index.
	outVers  []uint64
	schedDur time.Duration
	// arrs[i] is the resolved GlobalArray of array argument i (nil for
	// scalars), captured at admission under mu so the dispatch stage
	// never reads the arrays map unlocked.
	arrs []*GlobalArray
	// windowed marks CEs admitted through the optimizer window: their
	// membership predictions are trusted for the pass-3 replica check.
	windowed bool
	// stats is the submitting session's optimizer counter block (nil for
	// the direct client); prefetch, if set, is the transfer-coalescing
	// plan this CE leads (window.go).
	stats    *OptCounters
	prefetch *prefetchPlan
}

// validate checks an invocation against the kernel registry and returns
// its definition and argument metadata.
func (c *Controller) validate(inv Invocation) (*kernels.Def, []memmodel.Access, error) {
	def, ok := c.reg.Lookup(inv.Kernel)
	if !ok {
		return nil, nil, fmt.Errorf("core: unknown kernel %q", inv.Kernel)
	}
	if len(inv.Args) != len(def.Sig.Params) {
		return nil, nil, fmt.Errorf("core: %s wants %d arguments, got %d",
			inv.Kernel, len(def.Sig.Params), len(inv.Args))
	}
	if cap(c.metasBuf) < len(inv.Args) {
		c.metasBuf = make([]kernels.ArgMeta, len(inv.Args))
	}
	metas := c.metasBuf[:len(inv.Args)]
	for i, a := range inv.Args {
		if a.IsArray {
			if !def.Sig.Params[i].Pointer {
				return nil, nil, fmt.Errorf("core: %s argument %d must be a scalar", inv.Kernel, i)
			}
			arr, ok := c.arrays[a.Array]
			if !ok {
				return nil, nil, fmt.Errorf("core: %s references unknown array %d", inv.Kernel, a.Array)
			}
			metas[i] = kernels.ArgMeta{IsBuffer: true, Len: arr.Len}
		} else {
			if def.Sig.Params[i].Pointer {
				return nil, nil, fmt.Errorf("core: %s argument %d must be an array", inv.Kernel, i)
			}
			metas[i] = kernels.ArgMeta{Scalar: a.Scalar}
		}
	}
	return def, def.Access(metas), nil
}

// skipOldBytes reports whether argument i's old contents never move: a
// write-only full overwrite.
func skipOldBytes(accs []memmodel.Access, i int) bool {
	return accs[i].Mode == memmodel.Write && accs[i].Fraction >= 1
}

// schedule runs the timed scheduling section (the paper's Figure 9
// overhead): DAG insertion, the policy's placement decision, and the
// membership prediction that lets the next CE be admitted before this one
// has dispatched. It fills s in place. Caller holds mu.
func (c *Controller) schedule(inv Invocation, accs []memmodel.Access, s *scheduled) {
	schedStart := time.Now()

	// Add CE to the Global DAG's frontier.
	var dagAccs []dag.Access
	for i, a := range inv.Args {
		if a.IsArray {
			dagAccs = append(dagAccs, dag.Access{Array: a.Array, Mode: accs[i].Mode})
		}
	}
	ce := c.graph.NewCE(inv.Kernel, dagAccs, nil)
	ancestors := c.graph.Add(ce)

	// Apply the node-level scheduling policy.
	req := c.buildRequest(ce, inv.Args, accs)
	target := c.pol.Assign(req)

	s.ce, s.ancestors, s.inv, s.accs, s.target = ce, ancestors, inv, accs, target
	c.recordLineage(s)
	c.predictMembership(s)

	s.schedDur = time.Since(schedStart)
	c.schedTime += s.schedDur
	c.schedCEs++
}

// predictMembership applies the CE's effect on the data-location
// membership view at admission time: moved arrays gain the target, written
// arrays collapse to it. This is what keeps scheduling decisions identical
// to the serial schedule while dispatch lags behind.
func (c *Controller) predictMembership(s *scheduled) {
	if cap(s.upAtSched) < len(s.inv.Args) {
		s.upAtSched = make([]bool, len(s.inv.Args))
	}
	if cap(s.arrs) < len(s.inv.Args) {
		s.arrs = make([]*GlobalArray, len(s.inv.Args))
	}
	// Only array-argument slots are written and read; stale scratch in
	// scalar slots is never consulted.
	s.upAtSched = s.upAtSched[:len(s.inv.Args)]
	s.arrs = s.arrs[:len(s.inv.Args)]
	for i, a := range s.inv.Args {
		if !a.IsArray {
			s.arrs[i] = nil
			continue
		}
		arr := c.arrays[a.Array]
		s.arrs[i] = arr
		_, up := arr.member[s.target]
		s.upAtSched[i] = up
		if !up && !skipOldBytes(s.accs, i) {
			arr.member[s.target] = struct{}{}
			arr.maskSet(s.target)
			arr.gen++
		}
	}
	evicted := false
	for i, a := range s.inv.Args {
		if a.IsArray && s.accs[i].Mode.Writes() {
			arr := c.arrays[a.Array]
			if _, only := arr.member[s.target]; !only || len(arr.member) > 1 {
				evicted = true
			}
			clear(arr.member)
			arr.maskClearAll()
			arr.member[s.target] = struct{}{}
			arr.maskSet(s.target)
			arr.gen++
		}
	}
	// A write collapse can void an earlier CE's admission-time expectation:
	// a waitLocalCopy waiter sleeping on a node this collapse just evicted
	// would otherwise only be woken by a commit, and in sequenced dispatch
	// no later ticket can commit past it. Wake waiters so they recheck
	// membership and fall back to a fresh move.
	if evicted {
		c.cond.Broadcast()
	}
}

// Launch submits a kernel CE and waits for it: paper Algorithm 1. The CE
// enters the Global DAG, the policy picks a Worker, the minimal data
// movements are issued (controller→worker or P2P), and the CE is forwarded
// to the Worker's intra-node scheduler. Returns the CE's completion time.
//
// With Options.Pipeline, Launch still blocks until the CE completes; use
// Submit to overlap scheduling with dispatch.
func (c *Controller) Launch(inv Invocation) (sim.VirtualTime, error) {
	if c.optWindow > 0 {
		// Window mode: park, then flush immediately — Launch is a
		// synchronous call, so there is nothing to look ahead at.
		c.subMu.Lock()
		p, err := c.parkLocked(inv, nil, nil)
		if err == nil {
			c.flushWindowLocked()
		}
		c.subMu.Unlock()
		if err != nil {
			return 0, err
		}
		return p.Wait()
	}
	if c.pipe == nil {
		// Serial fast path: reuse the controller's scheduled record,
		// skip the Pending. The whole admit+dispatch runs under the
		// submission lock, so concurrent callers interleave whole CEs.
		c.subMu.Lock()
		defer c.subMu.Unlock()
		s, err := c.admit(inv, &c.schedBuf)
		if err != nil {
			return 0, err
		}
		return c.dispatch(s)
	}
	c.subMu.Lock()
	p, err := c.submitLocked(inv)
	c.subMu.Unlock()
	if err != nil {
		return 0, err
	}
	return p.Wait()
}

// Submit admits a kernel CE. In serial mode it schedules and dispatches
// synchronously; with Options.Pipeline it returns as soon as the
// scheduling decision is made, leaving data movement and launch to the
// per-worker dispatchers. Validation errors surface here; dispatch errors
// surface on the returned Pending (and on Drain).
func (c *Controller) Submit(inv Invocation) (*Pending, error) {
	c.subMu.Lock()
	defer c.subMu.Unlock()
	return c.submitLocked(inv)
}

// submitLocked is Submit under subMu (Launch shares it without
// re-locking).
func (c *Controller) submitLocked(inv Invocation) (*Pending, error) {
	if c.optWindow > 0 {
		return c.parkLocked(inv, nil, nil)
	}
	s, err := c.admit(inv, nil)
	if err != nil {
		return nil, err
	}
	if c.pipe != nil {
		return c.pipe.enqueue(s)
	}
	end, err := c.dispatch(s)
	p := &Pending{done: closedChan, end: end, err: err}
	return p, err
}

// admit validates an invocation and runs the scheduling stage, filling
// into (or allocating, when into is nil) the scheduled record.
func (c *Controller) admit(inv Invocation, into *scheduled) (*scheduled, error) {
	_, accs, err := c.validate(inv)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pipe != nil {
		if err := c.pipe.err; err != nil {
			return nil, err
		}
	}
	if len(c.aliveWorkers()) == 0 {
		return nil, fmt.Errorf("core: no workers available")
	}
	if into == nil {
		into = new(scheduled)
	}
	c.schedule(inv, accs, into)
	return into, nil
}

// closedChan is the pre-closed done channel shared by already-completed
// Pendings.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// Pending is a submitted CE whose dispatch may still be in flight.
type Pending struct {
	done chan struct{}
	end  sim.VirtualTime
	err  error
}

// Wait blocks until the CE has dispatched and returns its completion time.
func (p *Pending) Wait() (sim.VirtualTime, error) {
	<-p.done
	return p.end, p.err
}

// Done returns a channel closed when the CE has dispatched.
func (p *Pending) Done() <-chan struct{} { return p.done }

// dispatch runs the untimed half of Algorithm 1 for a scheduled CE: wait
// for dependencies, issue the data movements, forward the CE, and commit
// the results. Under Failover a failing worker is written off and the CE
// rescheduled on survivors.
func (c *Controller) dispatch(s *scheduled) (sim.VirtualTime, error) {
	depReady, err := c.waitDeps(s)
	if err != nil {
		return 0, err
	}

	target := s.target
	firstTry := true
	var end, ready sim.VirtualTime
	var moved memmodel.Bytes
	var p2p int
	retries, recoveries := 0, 0

	// Pass 2: this CE leads a coalesced bulk move — ship the run's
	// controller-resident inputs in one fabric operation before the
	// per-argument path walks them.
	var pfMoved memmodel.Bytes
	if s.prefetch != nil {
		pfMoved = c.bulkPrefetch(s)
	}
	for {
		// A job scheduled before a failover may carry a target that has
		// since been written off; reassign before touching the fabric.
		c.mu.Lock()
		if c.dead[target] {
			if len(c.aliveWorkers()) == 0 {
				c.mu.Unlock()
				err := fmt.Errorf("core: no workers left after failover")
				c.commitError(s, err)
				return 0, err
			}
			req := c.buildRequest(s.ce, s.inv.Args, s.accs)
			target = c.pol.Assign(req)
			firstTry = false
		}
		c.mu.Unlock()

		transferReady, m, p, err := c.ensureArgs(target, s, firstTry)
		if err == nil {
			ready = sim.Max(depReady, transferReady)
			moved, p2p = m, p
			end, err = c.fabric.Launch(target, s.inv, ready)
		}
		if err == nil {
			break
		}
		// Transient failures (timeouts, severed connections) retry in
		// place with capped backoff before anyone is written off: a
		// momentary stall should not cost a worker its replicas.
		if retries < c.retry.Attempts && IsTransient(err) {
			retries++
			time.Sleep(c.retryDelay(retries))
			firstTry = false
			continue
		}
		if errorIsDataLoss(err) {
			// Every live copy of an input died. Re-execute its recorded
			// producer chain on the survivors (lineage.go), then retry
			// the dispatch against the recovered registry. Bounded, in
			// case the recovery target itself keeps dying.
			if c.failover && recoveries < maxRecoveryRounds {
				recoveries++
				if rerr := c.recoverLoss(err); rerr == nil {
					firstTry = false
					continue
				} else {
					err = rerr
				}
			}
			c.commitError(s, err)
			return 0, err
		}
		if !c.failover {
			c.commitError(s, err)
			return 0, err
		}
		// Identify which worker actually died (the error may come from
		// the CE's target or from a transfer source) and write it off.
		c.mu.Lock()
		anyDead := false
		for _, w := range c.aliveWorkers() {
			if !c.fabric.Healthy(w) {
				c.markDead(w)
				anyDead = true
			}
		}
		if !anyDead && !c.dead[target] {
			c.mu.Unlock()
			c.commitError(s, err)
			return 0, err // not a worker failure; don't spin
		}
		if len(c.aliveWorkers()) == 0 {
			c.mu.Unlock()
			err = fmt.Errorf("core: no workers left after failover: %w", err)
			c.commitError(s, err)
			return 0, err
		}
		// Reschedule on the survivors. After a failover the schedule-time
		// membership prediction is void; the retry works from the
		// authoritative registry alone (firstTry=false).
		req := c.buildRequest(s.ce, s.inv.Args, s.accs)
		target = c.pol.Assign(req)
		c.mu.Unlock()
		firstTry = false
	}

	c.commit(s, target, ready, end, moved+pfMoved, p2p)
	return end, nil
}

// maxRecoveryRounds bounds lineage-recovery attempts per dispatched CE:
// each round can only fail by losing another worker mid-recovery.
const maxRecoveryRounds = 3

// retryDelay computes the n-th retry's backoff under the jitter lock.
func (c *Controller) retryDelay(n int) time.Duration {
	c.retryMu.Lock()
	defer c.retryMu.Unlock()
	return c.retry.delay(n, c.retryRng)
}

// commit publishes a dispatched CE's results under mu.
func (c *Controller) commit(s *scheduled, target cluster.NodeID, ready, end sim.VirtualTime, moved memmodel.Bytes, p2p int) {
	c.mu.Lock()
	defer c.mu.Unlock()

	// Update the data-location registry.
	outIdx := 0
	for i, a := range s.inv.Args {
		if !a.IsArray {
			continue
		}
		arr := c.arrays[a.Array]
		if s.accs[i].Mode.Writes() {
			// The writer's copy is now the only valid one. Only the
			// authoritative view changes here: the membership view already
			// collapsed to the scheduled target in predictMembership, and
			// later CEs' predictions may have advanced it further — commit
			// must not rewind them. (After a failover reschedule the views
			// can drift conservatively; registerCopy and the dead checks
			// keep dispatch correct regardless.)
			clear(arr.upToDate)
			arr.upToDate[target] = end
			// The registry now describes the version recordLineage
			// assigned this CE at admission. Writers of one array commit
			// in submission order (WAW dependencies serialize their
			// dispatch), so cver moves monotonically — but via the
			// recorded value, not an increment, because an aborted writer
			// consumes a version number without ever committing it.
			if outIdx < len(s.outVers) {
				arr.cver = s.outVers[outIdx]
			}
			outIdx++
		} else {
			c.registerCopy(arr, target, end, false)
		}
	}

	c.ceEnd[s.ce.ID] = end
	if end > c.elapsed {
		c.elapsed = end
	}
	c.movedBytes += moved
	c.p2pMoves += p2p
	if !c.noTrace {
		c.traces = append(c.traces, CETrace{
			CE: s.ce.ID, Label: s.inv.Kernel, Node: target,
			Start: ready, End: end, MovedBytes: moved, P2PMoves: p2p,
			SchedOverhd: s.schedDur,
		})
	}
	c.cond.Broadcast()
}

// commitError records a terminally failed CE so dependents stop waiting on
// it (its end time is its dependencies' ready time; the error itself is
// propagated by the pipeline's sticky error).
func (c *Controller) commitError(s *scheduled, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.ceEnd[s.ce.ID]; !ok {
		c.ceEnd[s.ce.ID] = 0
	}
	c.cond.Broadcast()
}

// registerCopy records in the authoritative view that node holds a valid
// copy since t. Caller holds mu. overwrite resets the time even if the
// node is already registered. The membership view is deliberately left
// alone: it belongs to the scheduler's timeline (predictMembership,
// HostRead/HostWrite, markDead) — a dispatch-time add could resurrect a
// member that a later CE's schedule-time write collapse already removed.
func (c *Controller) registerCopy(arr *GlobalArray, node cluster.NodeID, t sim.VirtualTime, overwrite bool) {
	if _, ok := arr.upToDate[node]; !ok || overwrite {
		arr.upToDate[node] = t
	}
}

// waitDeps blocks until every DAG ancestor of the CE has dispatched and
// returns the latest ancestor end time. In serial mode ancestors have
// always already dispatched and this never blocks.
func (c *Controller) waitDeps(s *scheduled) (sim.VirtualTime, error) {
	depReady := sim.VirtualTime(0)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, a := range s.ancestors {
		for {
			if end, ok := c.ceEnd[a.CE.ID]; ok {
				if end > depReady {
					depReady = end
				}
				break
			}
			if c.pipe == nil {
				// Serial dispatch runs in submission order; a missing
				// ancestor end is a scheduler bug.
				panic(fmt.Sprintf("core: serial dispatch missing ancestor CE %d", a.CE.ID))
			}
			if err := c.pipe.err; err != nil {
				return 0, err
			}
			c.cond.Wait()
		}
	}
	return depReady, nil
}

// waitLocalCopy blocks until the target's copy of arr is valid when the
// scheduler predicted one would appear (expected), returning its ready
// time. Returns ok=false when no copy is expected or the expectation was
// voided (the producer's worker died).
func (c *Controller) waitLocalCopy(arr *GlobalArray, target cluster.NodeID, expected bool) (sim.VirtualTime, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if t, ok := arr.upToDate[target]; ok {
			return t, true, nil
		}
		if !expected {
			return 0, false, nil
		}
		if c.pipe == nil {
			// Serial mode keeps member and upToDate in lockstep.
			return 0, false, nil
		}
		if c.pipe.sequenced {
			// Sequenced dispatch: every earlier ticket has fully
			// committed before this dispatch runs, so a predicted copy
			// that is absent now can never arrive — the delivery was
			// rerouted by a dead-worker redispatch or lineage recovery.
			// Fall back to a fresh move from the survivors.
			return 0, false, nil
		}
		if err := c.pipe.err; err != nil {
			return 0, false, err
		}
		if _, stillMember := arr.member[target]; !stillMember || c.dead[target] {
			// The predicted producer was written off; fall back to a
			// fresh move from the survivors.
			return 0, false, nil
		}
		c.cond.Wait()
	}
}

// ensureArgs issues the data movements Algorithm 1 requires: every array
// parameter that is not up to date on the target is shipped from its best
// source. Write-only full overwrites skip the transfer but still allocate.
// usePrediction selects whether the schedule-time membership prediction
// gates waiting for in-flight producer CEs (first dispatch attempt only).
func (c *Controller) ensureArgs(target cluster.NodeID, s *scheduled, usePrediction bool) (ready sim.VirtualTime, moved memmodel.Bytes, p2p int, err error) {
	for i, a := range s.inv.Args {
		if !a.IsArray {
			continue
		}
		arr := s.arrs[i] // resolved at admission; no unlocked map read
		expected := usePrediction && s.upAtSched[i]
		if s.windowed && expected && target == s.target {
			// Pass 3: the window predicted a fresh replica here; when the
			// authoritative registry confirms it, the whole per-argument
			// fabric round trip (EnsureArray + move) is redundant. A
			// worker only ever appears in upToDate after an EnsureArray
			// reached it, so skipping the allocation call is safe.
			c.mu.Lock()
			t, up := arr.upToDate[target]
			c.mu.Unlock()
			if up {
				if t > ready {
					ready = t
				}
				c.countEliminatedMove(s)
				continue
			}
		}
		if err := c.fabric.EnsureArray(target, arr.ArrayMeta); err != nil {
			return 0, 0, 0, err
		}
		t, ok, werr := c.waitLocalCopy(arr, target, expected)
		if werr != nil {
			return 0, 0, 0, werr
		}
		if ok {
			if t > ready {
				ready = t
			}
			continue
		}
		if skipOldBytes(s.accs, i) {
			continue // full overwrite: old contents don't matter
		}

		c.mu.Lock()
		if len(arr.upToDate) == 0 {
			err := c.lossError(a.Array)
			c.mu.Unlock()
			return 0, 0, 0, err
		}
		src := c.bestSource(arr, target)
		srcReady := arr.upToDate[src]
		c.mu.Unlock()

		arrival, err := c.fabric.MoveArray(a.Array, src, target, srcReady, arr.Buf, nil)
		if err != nil {
			return 0, 0, 0, err
		}

		c.mu.Lock()
		c.registerCopy(arr, target, arrival, true)
		if arrival > c.elapsed {
			c.elapsed = arrival
		}
		c.cond.Broadcast()
		c.mu.Unlock()

		moved += arr.size
		if src.IsWorker() {
			p2p++
		}
		if arrival > ready {
			ready = arrival
		}
	}
	return ready, moved, p2p, nil
}

// errDataLoss marks a lost array: the only valid copy died with its
// worker. With failover the dispatcher tries lineage recovery first; the
// error is terminal only when the producer chain cannot be replayed.
type errDataLoss struct {
	id dag.ArrayID
	// lastCE is the CE that last wrote the array per the Global DAG's
	// lineage index (0 when the array was never kernel-written) — it
	// names the producer a recovery would have had to replay.
	lastCE dag.CEID
}

func (e *errDataLoss) Error() string {
	if e.lastCE != 0 {
		return fmt.Sprintf("core: array %d lost: its only valid copy was on a failed worker (last written by CE %d)", e.id, e.lastCE)
	}
	return fmt.Sprintf("core: array %d lost: its only valid copy was on a failed worker", e.id)
}

// lossError builds the data-loss error for an array, annotated with the
// DAG's last-writer lineage hook.
func (c *Controller) lossError(id dag.ArrayID) error {
	e := &errDataLoss{id: id}
	if w := c.graph.LastWriter(id); w != nil {
		e.lastCE = w.ID
	}
	return e
}

// Unwrap surfaces the ErrDataLost sentinel so callers can errors.Is on it.
func (e *errDataLoss) Unwrap() error { return ErrDataLost }

func errorIsDataLoss(err error) bool {
	var dl *errDataLoss
	return errors.As(err, &dl)
}

// buildRequest assembles the policy's view: per worker, the bytes of the
// CE's parameters already up to date there, the bytes that would move, and
// the estimated transfer time from the interconnection matrix. The
// returned Request reuses the controller's scratch buffer; policies must
// not retain it past Assign. Caller holds mu.
func (c *Controller) buildRequest(ce *dag.CE, args []ArgRef, accs []memmodel.Access) policy.Request {
	workers := c.aliveWorkers()
	if cap(c.reqNodes) < len(workers) {
		c.reqNodes = make([]policy.NodeInfo, len(workers))
	}
	return c.buildRequestInto(ce, args, accs, c.reqNodes[:len(workers)], workers)
}

// buildRequestInto is buildRequest writing into caller-owned node
// storage, so the window's batched policy evaluation can hold every
// request of a window alive at once (the scratch-based path cannot).
// Caller holds mu; len(nodes) == len(workers).
func (c *Controller) buildRequestInto(ce *dag.CE, args []ArgRef, accs []memmodel.Access,
	nodes []policy.NodeInfo, workers []cluster.NodeID) policy.Request {
	req := policy.Request{CE: ce, Nodes: nodes}
	if !c.pol.NeedsDataView() {
		// Static policies only need the candidate list.
		for wi, w := range workers {
			nodes[wi] = policy.NodeInfo{ID: w}
		}
		return req
	}
	var total memmodel.Bytes
	for i, a := range args {
		if !a.IsArray {
			continue
		}
		// Write-only full overwrites don't need their old bytes moved.
		if skipOldBytes(accs, i) {
			continue
		}
		total += c.arrays[a.Array].size
	}
	req.Total = total
	for wi, w := range workers {
		nodes[wi] = policy.NodeInfo{ID: w}
	}
	for i, a := range args {
		if !a.IsArray || skipOldBytes(accs, i) {
			continue
		}
		arr := c.arrays[a.Array]
		if arr.estAgen != arr.gen || arr.estDgen != c.deadGen {
			c.refreshEst(arr, workers)
		}
		est, mask, size := arr.est, arr.mask, arr.size
		for wi, w := range workers {
			if int(w) < len(mask) && mask[w] {
				nodes[wi].UpToDate += size
			} else {
				nodes[wi].Transfer += size
				nodes[wi].TransferTime += est[w]
			}
		}
	}
	for wi := range nodes {
		if nodes[wi].UpToDate > req.MaxUp {
			req.MaxUp = nodes[wi].UpToDate
		}
	}
	c.fillStallView(args, accs, nodes)
	return req
}

// fillStallView adds the predicted-fault-rate cost term to the candidate
// view: per worker, what UVM oversubscription would do to this CE's
// kernel once its data landed there. Only policies that request the view
// (policy.StallAware) pay for the fabric queries, and only on fabrics
// that can see into worker memory (StallPredictor). The working set is
// the CE's full parameter footprint — write-only overwrites skip the data
// move, but their pages still occupy device memory — under the CE's
// worst (least batchable) access pattern. Caller holds mu.
func (c *Controller) fillStallView(args []ArgRef, accs []memmodel.Access, nodes []policy.NodeInfo) {
	if c.stallPred == nil {
		return
	}
	sa, ok := c.pol.(policy.StallAware)
	if !ok || !sa.NeedsStallView() {
		return
	}
	var working memmodel.Bytes
	pattern := memmodel.Sequential
	for i, a := range args {
		if !a.IsArray {
			continue
		}
		working += c.arrays[a.Array].size
		if i < len(accs) && accs[i].Pattern.BatchFactor() < pattern.BatchFactor() {
			pattern = accs[i].Pattern
		}
	}
	if working == 0 {
		return
	}
	for wi := range nodes {
		nodes[wi].PredictedStall = c.stallPred.PredictStall(
			nodes[wi].ID, nodes[wi].Transfer, working, pattern)
	}
}

// bestSource picks where to pull a stale array from: the up-to-date node
// with the fastest link to the target, preferring workers (P2P) over the
// controller when both hold valid copies, as in Algorithm 1. It consults
// the authoritative registry; caller holds mu.
func (c *Controller) bestSource(arr *GlobalArray, target cluster.NodeID) cluster.NodeID {
	best := cluster.ControllerID
	bestTime := sim.Infinity
	haveWorker := false
	for n := range arr.upToDate {
		if n == target || c.dead[n] {
			continue
		}
		est := c.fabric.EstimateTransfer(n, target, arr.size)
		isWorker := n.IsWorker()
		// Prefer P2P sources; among equals, the fastest link, then the
		// lowest ID — the deterministic tie-break keeps the schedule
		// independent of map iteration order.
		better := false
		switch {
		case isWorker && !haveWorker:
			better = true
		case isWorker == haveWorker && (est < bestTime || (est == bestTime && n < best)):
			better = true
		}
		if better {
			best, bestTime, haveWorker = n, est, isWorker
		}
	}
	return best
}

// HostRead makes the controller's copy of an array consistent (the user
// reading results, paper Listing 1's print(x)): a read CE that may pull
// the array back from the worker that last wrote it. It drains the
// dispatch pipeline first: a host read is a synchronization point — a
// global one, barriering every concurrently submitting goroutine.
func (c *Controller) HostRead(id dag.ArrayID) (sim.VirtualTime, error) {
	c.subMu.Lock()
	defer c.subMu.Unlock()
	// After the drain the dispatchers are quiescent and subMu excludes
	// new submissions, so the body below owns every structure it touches.
	if err := c.drainLocked(); err != nil {
		return 0, err
	}
	arr, ok := c.arrays[id]
	if !ok {
		return 0, fmt.Errorf("core: host read of unknown array %d", id)
	}
	ce := c.graph.NewCE("host-read", []dag.Access{{Array: id, Mode: memmodel.Read}}, nil)
	ancestors := c.graph.Add(ce)
	depReady := sim.VirtualTime(0)
	for _, a := range ancestors {
		if end := c.ceEnd[a.CE.ID]; end > depReady {
			depReady = end
		}
	}
	end := depReady
	if _, up := arr.upToDate[cluster.ControllerID]; !up {
		if len(arr.upToDate) == 0 {
			// Every live copy died with its worker. Recompute the array
			// from its recorded lineage before giving up on the read.
			if !c.failover {
				return 0, c.lossError(id)
			}
			if rerr := c.recoverArrays([]dag.ArrayID{id}); rerr != nil {
				return 0, rerr
			}
		}
		src := c.bestSource(arr, cluster.ControllerID)
		arrival, err := c.fabric.MoveArray(id, src, cluster.ControllerID,
			sim.Max(arr.upToDate[src], depReady), nil, arr.Buf)
		if err != nil {
			return 0, err
		}
		// The pipeline is drained here, so the membership view is in
		// lockstep with the authoritative one and gains the copy too.
		c.registerCopy(arr, cluster.ControllerID, arrival, true)
		arr.hostVer = arr.cver
		if _, ok := arr.member[cluster.ControllerID]; !ok {
			arr.member[cluster.ControllerID] = struct{}{}
			arr.maskSet(cluster.ControllerID)
			arr.gen++
		}
		c.movedBytes += arr.size
		end = arrival
	} else if t := arr.upToDate[cluster.ControllerID]; t > end {
		end = t
	}
	c.ceEnd[ce.ID] = end
	if end > c.elapsed {
		c.elapsed = end
	}
	if !c.noTrace {
		c.traces = append(c.traces, CETrace{CE: ce.ID, Label: "host-read",
			Node: cluster.ControllerID, Start: depReady, End: end})
	}
	return end, nil
}

// HostWrite marks an array as (re)initialized by the controller's host
// code: the controller copy becomes the only valid one. In numeric mode
// the caller mutates arr.Buf directly around this call (serialize those
// mutations against Submit yourself — a buffer being overwritten must not
// be mid-shipment; draining first via Drain or HostRead suffices). Like
// HostRead it drains the dispatch pipeline first.
func (c *Controller) HostWrite(id dag.ArrayID) (sim.VirtualTime, error) {
	c.subMu.Lock()
	defer c.subMu.Unlock()
	if err := c.drainLocked(); err != nil {
		return 0, err
	}
	arr, ok := c.arrays[id]
	if !ok {
		return 0, fmt.Errorf("core: host write of unknown array %d", id)
	}
	ce := c.graph.NewCE("host-write", []dag.Access{{Array: id, Mode: memmodel.Write}}, nil)
	ancestors := c.graph.Add(ce)
	depReady := sim.VirtualTime(0)
	for _, a := range ancestors {
		if end := c.ceEnd[a.CE.ID]; end > depReady {
			depReady = end
		}
	}
	clear(arr.upToDate)
	arr.upToDate[cluster.ControllerID] = depReady
	clear(arr.member)
	arr.maskClearAll()
	arr.member[cluster.ControllerID] = struct{}{}
	arr.maskSet(cluster.ControllerID)
	arr.gen++
	// A host write starts a new root version: host data has no producer
	// record, but the controller's buffer keeps holding it even after
	// in-place overwrites commit on workers, so lineage chains reaching
	// it recover by re-shipping, not recompute. (The pipeline is
	// drained, so ver and cver advance in lockstep.)
	arr.ver++
	arr.cver = arr.ver
	arr.hostVer = arr.ver
	c.ceEnd[ce.ID] = depReady
	if depReady > c.elapsed {
		c.elapsed = depReady
	}
	if !c.noTrace {
		c.traces = append(c.traces, CETrace{CE: ce.ID, Label: "host-write",
			Node: cluster.ControllerID, Start: depReady, End: depReady})
	}
	return depReady, nil
}

// BuildKernel compiles a mini-CUDA kernel from source (the NVRTC path of
// buildkernel) and registers it with the controller and, through the
// fabric, with every worker. It drains the pipeline before broadcasting,
// so the fabric-wide registration never races in-flight dispatches.
func (c *Controller) BuildKernel(src, signature string) (*kernels.Def, error) {
	c.subMu.Lock()
	defer c.subMu.Unlock()
	if err := c.drainLocked(); err != nil {
		return nil, err
	}
	key := minicuda.CacheKey(src, signature)
	var def *kernels.Def
	if name, ok := c.reg.CachedSource(key); ok {
		if d, ok := c.reg.Lookup(name); ok {
			def = d
		}
	}
	if def == nil {
		d, err := minicuda.Compile(src, signature)
		if err != nil {
			return nil, err
		}
		if _, exists := c.reg.Lookup(d.Name); !exists {
			if err := c.reg.Register(d); err != nil {
				return nil, err
			}
		}
		c.reg.CacheSource(key, d.Name)
		def = d
	}
	// Always broadcast, cache hit or not: workers that joined after the
	// first build still need the kernel propagated.
	if kb, ok := c.fabric.(KernelBuilder); ok {
		if err := kb.BuildKernel(src, signature); err != nil {
			return nil, err
		}
	}
	return def, nil
}
