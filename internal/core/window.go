// The lookahead optimizer window (DESIGN.md §5.6).
//
// With Options.OptimizeWindow > 0 the controller stops admitting CEs one
// by one: Submit validates the invocation and parks it, and only when
// the window fills (or a synchronization point flushes it) does the
// whole batch run through the optimizer passes and the scheduling stage:
//
//  1. Kernel fusion (internal/optimizer.FusePass): elementwise
//     producer→consumer chains collapse into one fused CE before the DAG
//     ever sees them, eliminating the intermediate's materialization —
//     and, when the window proves the intermediate dead, its transfer.
//  2. Transfer coalescing (optimizer.PlanPrefetch): the controller→worker
//     moves of a consecutive same-target run ship as one bulk fabric
//     operation when the leader CE dispatches.
//  3. Redundant-move elimination: dispatch consults the authoritative
//     replica registry before issuing the per-argument EnsureArray round
//     trip, skipping fabric traffic for replicas the window's lineage
//     already placed.
//  4. Batched policy evaluation: every window CE's placement request is
//     built against one frozen membership snapshot, so the per-array
//     transfer-estimate vectors refresh at most once per window instead
//     of once per CE — the serial-vs-pipelined mtt regression this PR
//     targets.
//
// Serial equivalence: all rewrites happen before the batch is admitted
// to the DAG and before the pipeline's ticket sequencer assigns an
// order, so the guarantee of pipeline.go — at any CE's dispatch time all
// earlier tickets have fully committed — carries over to the rewritten
// window unchanged. Within the window, fusion legality (optimizer
// package) proves the fused CE equivalent to its parts, and phases A–C
// below apply lineage and membership prediction in window order exactly
// as serial admission would. Only the *policy inputs* differ: phase B
// deliberately evaluates every placement against the pre-window
// membership view (the snapshot), so placements may differ from the
// serial schedule — outputs never do, because dispatch re-validates
// every move against authoritative replica state.
//
// Tenancy: fusion never crosses a tenant tag (optimizer.FusePass), but
// placement packs CEs from different tenants onto shared workers under
// whatever policy weights are active — the window is one shared batch.
package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"grout/internal/cluster"
	"grout/internal/dag"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/minicuda"
	"grout/internal/optimizer"
	"grout/internal/policy"
	"grout/internal/sim"
)

// OptCounters aggregates the optimizer's work. Sessions pass one to
// SubmitTagged for per-tenant accounting; the controller keeps a global
// one. Atomics, because dispatch-side passes (coalescing, move
// elimination) bump them from dispatcher goroutines.
type OptCounters struct {
	// FusedCEs counts producer CEs absorbed into fused kernels.
	FusedCEs atomic.Int64
	// CoalescedTransfers counts controller→worker moves that rode a bulk
	// frame instead of going out individually.
	CoalescedTransfers atomic.Int64
	// EliminatedMoves counts argument transfers skipped because the
	// target already held a fresh replica the window predicted.
	EliminatedMoves atomic.Int64
}

// OptStats is a point-in-time snapshot of OptCounters.
type OptStats struct {
	FusedCEs           int64
	CoalescedTransfers int64
	EliminatedMoves    int64
}

// Snapshot reads the counters.
func (o *OptCounters) Snapshot() OptStats {
	return OptStats{
		FusedCEs:           o.FusedCEs.Load(),
		CoalescedTransfers: o.CoalescedTransfers.Load(),
		EliminatedMoves:    o.EliminatedMoves.Load(),
	}
}

// OptStats reports the controller-wide optimizer counters.
func (c *Controller) OptStats() OptStats { return c.optStats.Snapshot() }

// winEntry is one parked, validated, not-yet-admitted CE.
type winEntry struct {
	inv  Invocation
	def  *kernels.Def
	accs []memmodel.Access
	// p resolves when the CE (or the fused CE that absorbed it)
	// dispatches; made at park time since Submit returns before flush.
	// On parked entries it points at pend — one allocation instead of
	// two on the per-CE admission path; fused entries borrow the
	// consumer's.
	p    *Pending
	pend Pending
	// followers are absorbed producers' Pendings (set on fused entries).
	followers []*Pending
	// stats is the submitting session's counter block (nil for the
	// direct embedded client).
	stats *OptCounters
	// tenant isolates fusion (compared with ==); nil is the direct
	// embedded client.
	tenant any
}

// prefetchPlan is a transfer-coalescing plan attached to a run leader's
// scheduled record: ship these arrays to target in one bulk move when
// the leader dispatches. A hint only — bulkPrefetch re-validates every
// array against the authoritative registry and silently degrades to the
// regular per-argument path.
type prefetchPlan struct {
	target cluster.NodeID
	arrs   []*GlobalArray
	stats  *OptCounters
}

// SubmitTagged is Submit carrying a tenant tag and a per-tenant counter
// block for the optimizer window. With the window disabled it behaves
// exactly like Submit.
func (c *Controller) SubmitTagged(inv Invocation, stats *OptCounters, tenant any) (*Pending, error) {
	c.subMu.Lock()
	defer c.subMu.Unlock()
	if c.optWindow > 0 {
		return c.parkLocked(inv, stats, tenant)
	}
	return c.submitLocked(inv)
}

// FlushWindow forces the parked window to admit and dispatch without
// waiting for it to fill. Gateways call this at the end of a drain round
// so tenant streams shorter than the window never stall; Drain, Close,
// and every synchronizing controller method flush implicitly.
func (c *Controller) FlushWindow() error {
	c.subMu.Lock()
	defer c.subMu.Unlock()
	return c.flushWindowLocked()
}

// drainLocked flushes the window and waits out the dispatch pipeline.
// Caller holds subMu.
func (c *Controller) drainLocked() error {
	ferr := c.flushWindowLocked()
	if c.pipe != nil {
		if err := c.pipe.drain(); err != nil {
			return err
		}
	}
	return ferr
}

// parkLocked validates an invocation and parks it in the window,
// flushing when full. Caller holds subMu.
func (c *Controller) parkLocked(inv Invocation, stats *OptCounters, tenant any) (*Pending, error) {
	if c.winErr != nil {
		return nil, c.winErr
	}
	if c.pipe != nil {
		if err := c.pipe.sticky(); err != nil {
			return nil, err
		}
	}
	def, accs, err := c.validate(inv)
	if err != nil {
		return nil, err
	}
	e := &winEntry{
		inv: inv, def: def, accs: accs,
		stats: stats, tenant: tenant,
	}
	e.pend.done = make(chan struct{})
	e.p = &e.pend
	c.win = append(c.win, e)
	if len(c.win) >= c.optWindow {
		if err := c.flushWindowLocked(); err != nil {
			return e.p, err
		}
	}
	return e.p, nil
}

// failWindow resolves every entry's Pending (and followers) with err.
// Nothing here has been admitted to the DAG, so there is no CE state to
// unwind.
func failWindow(entries []*winEntry, err error) {
	for _, e := range entries {
		e.p.err = err
		close(e.p.done)
		for _, f := range e.followers {
			f.err = err
			close(f.done)
		}
	}
}

// flushWindowLocked runs the optimizer passes over the parked window and
// admits the rewritten batch: phase A inserts every CE into the DAG,
// phase B evaluates the policy for all of them against the frozen
// membership snapshot, phase C applies lineage and membership prediction
// in window order. Caller holds subMu. The returned error is the sticky
// window error, admission failure, or (serial mode) the first dispatch
// error; pipelined dispatch errors surface on Pendings and Drain as
// usual.
func (c *Controller) flushWindowLocked() error {
	entries := c.win
	c.win = nil
	if len(entries) == 0 {
		return c.winErr
	}
	if c.winErr != nil {
		failWindow(entries, c.winErr)
		return c.winErr
	}

	// Pass 1: kernel fusion. Worth attempting only when at least two
	// entries carry the compiler's elementwise descriptor.
	ws := entries
	fusable := 0
	for _, e := range entries {
		if e.def.Fusion != nil {
			fusable++
		}
	}
	if fusable >= 2 {
		ws = c.fuseWindowLocked(entries)
	}

	n := len(ws)

	c.mu.Lock()
	if c.pipe != nil {
		if err := c.pipe.err; err != nil {
			c.mu.Unlock()
			failWindow(ws, err)
			return err
		}
	}
	workers := c.aliveWorkers()
	if len(workers) == 0 {
		err := fmt.Errorf("core: no workers available")
		c.winErr = err
		c.mu.Unlock()
		failWindow(ws, err)
		return err
	}

	schedStart := time.Now()
	scheds := c.getSchedSlab(n)

	// Phase A: DAG admission in window order.
	for i, e := range ws {
		s := &scheds[i]
		var dagAccs []dag.Access
		for k, a := range e.inv.Args {
			if a.IsArray {
				dagAccs = append(dagAccs, dag.Access{Array: a.Array, Mode: e.accs[k].Mode})
			}
		}
		ce := c.graph.NewCE(e.inv.Kernel, dagAccs, nil)
		s.ce = ce
		s.ancestors = c.graph.Add(ce)
		s.inv, s.accs = e.inv, e.accs
		s.windowed = true
		s.stats = e.stats
	}

	// Phase B: batched policy evaluation. Membership (and thus every
	// per-array estimate cache) is frozen across the loop — no
	// predictions are applied between evaluations — so refreshEst runs
	// at most once per distinct array per window, and two CEs over the
	// same contributing arrays share one data view outright (policies
	// treat Request.Nodes as read-only).
	if ba, ok := c.pol.(policy.BatchAssigner); ok && n > 1 {
		if cap(c.winReqs) < n {
			c.winReqs = make([]policy.Request, n)
		}
		if cap(c.winNodes) < n*len(workers) {
			c.winNodes = make([]policy.NodeInfo, n*len(workers))
		}
		if c.winViews == nil {
			c.winViews = make(map[uint64]int, c.optWindow)
		}
		clear(c.winViews)
		reqs := c.winReqs[:n]
		slab := c.winNodes[:n*len(workers)]
		dedupe := c.pol.NeedsDataView()
		for i := range ws {
			s := &scheds[i]
			if dedupe {
				key := dataViewKey(s.inv.Args, s.accs)
				if j, ok := c.winViews[key]; ok && sameDataView(&scheds[j], s) {
					reqs[i] = policy.Request{CE: s.ce, Nodes: reqs[j].Nodes,
						Total: reqs[j].Total, MaxUp: reqs[j].MaxUp}
					continue
				}
				c.winViews[key] = i
			}
			nodes := slab[i*len(workers) : (i+1)*len(workers)]
			reqs[i] = c.buildRequestInto(s.ce, s.inv.Args, s.accs, nodes, workers)
		}
		targets := ba.AssignBatch(reqs)
		for i := range scheds {
			scheds[i].target = targets[i]
		}
	} else {
		for i := range ws {
			s := &scheds[i]
			req := c.buildRequest(s.ce, s.inv.Args, s.accs)
			s.target = c.pol.Assign(req)
		}
	}

	// Phase C: lineage and membership prediction, in window order, so
	// dispatch-correctness state (upAtSched, versions) is exactly what
	// per-CE admission would have produced for these placements.
	for i := range ws {
		s := &scheds[i]
		c.recordLineage(s)
		c.predictMembership(s)
	}

	dur := time.Since(schedStart)
	per := dur / time.Duration(n)
	for i := range scheds {
		scheds[i].schedDur = per
	}
	c.schedTime += dur
	c.schedCEs += n

	// Pass 2: transfer-coalescing plans, attached to run leaders.
	if c.bulkMover != nil && n > 1 {
		c.planPrefetchLocked(ws, scheds)
	}
	c.mu.Unlock()

	if c.pipe != nil {
		b := jobBatch{jobs: make([]job, n), scheds: scheds}
		for i := range ws {
			b.jobs[i] = job{s: &scheds[i], p: ws[i].p, followers: ws[i].followers}
		}
		if err := c.pipe.enqueueBatch(b); err != nil {
			// Closed mid-flush: the CEs are in the DAG but will never
			// dispatch — exactly the post-Close behavior of enqueue.
			c.winErr = err
			failWindow(ws, err)
			c.putSchedSlab(scheds)
			return err
		}
		return nil
	}

	// Serial mode: dispatch inline, in window order. The first terminal
	// error sticks — parked submissions have already returned, so later
	// errors can only surface on Pendings and Drain, like the pipeline.
	var firstErr error
	for i := range ws {
		s := &scheds[i]
		e := ws[i]
		var end sim.VirtualTime
		err := firstErr
		if err == nil {
			end, err = c.dispatch(s)
			if err != nil {
				firstErr = err
			}
		} else {
			c.commitError(s, err)
		}
		e.p.end, e.p.err = end, err
		close(e.p.done)
		for _, f := range e.followers {
			f.end, f.err = end, err
			close(f.done)
		}
	}
	if firstErr != nil {
		c.winErr = firstErr
	}
	c.putSchedSlab(scheds)
	return firstErr
}

// dataViewKey hashes (FNV-1a) the sequence of array arguments that
// contribute to the policy data view — the inputs buildRequestInto sums
// over. Two window CEs with equal sequences see identical views under
// the frozen snapshot.
func dataViewKey(args []ArgRef, accs []memmodel.Access) uint64 {
	h := uint64(14695981039346656037)
	for i, a := range args {
		if !a.IsArray || skipOldBytes(accs, i) {
			continue
		}
		h ^= uint64(a.Array)
		h *= 1099511628211
	}
	return h
}

// sameDataView confirms a key match: the contributing-array sequences
// are actually equal, not merely hash-equal.
func sameDataView(a, b *scheduled) bool {
	i, j := 0, 0
	for {
		for i < len(a.inv.Args) && (!a.inv.Args[i].IsArray || skipOldBytes(a.accs, i)) {
			i++
		}
		for j < len(b.inv.Args) && (!b.inv.Args[j].IsArray || skipOldBytes(b.accs, j)) {
			j++
		}
		ia, jb := i < len(a.inv.Args), j < len(b.inv.Args)
		if !ia || !jb {
			return ia == jb
		}
		if a.inv.Args[i].Array != b.inv.Args[j].Array {
			return false
		}
		i++
		j++
	}
}

// getSchedSlab pops a recycled scheduled slab (or allocates one with the
// full window's capacity, so every slab fits every later window).
func (c *Controller) getSchedSlab(n int) []scheduled {
	c.schedSlabMu.Lock()
	if k := len(c.schedSlabs); k > 0 && cap(c.schedSlabs[k-1]) >= n {
		s := c.schedSlabs[k-1]
		c.schedSlabs = c.schedSlabs[:k-1]
		c.schedSlabMu.Unlock()
		return s[:n]
	}
	c.schedSlabMu.Unlock()
	return make([]scheduled, n, max(n, c.optWindow))
}

// putSchedSlab resets a fully dispatched slab and parks it for reuse.
// The reset happens here — on the dispatcher, off the scheduling stage's
// critical path — and keeps the per-CE scratch slices' capacity (the
// same reuse the serial path's schedBuf gets), while zeroing every other
// field so flushWindowLocked's conditional writes (prefetch above all)
// can't see stale state.
func (c *Controller) putSchedSlab(s []scheduled) {
	for i := range s {
		sc := &s[i]
		arrs := sc.arrs[:0]
		clear(arrs[:cap(arrs)]) // no retained array pointers
		*sc = scheduled{upAtSched: sc.upAtSched[:0], outVers: sc.outVers[:0], arrs: arrs}
	}
	c.schedSlabMu.Lock()
	if len(c.schedSlabs) < 4 {
		c.schedSlabs = append(c.schedSlabs, s)
	}
	c.schedSlabMu.Unlock()
}

// fuseWindowLocked runs the fusion pass and maps the rewritten ops back
// to window entries. Caller holds subMu (the arrays map and registry are
// stable under it).
func (c *Controller) fuseWindowLocked(entries []*winEntry) []*winEntry {
	ops := make([]*optimizer.Op, len(entries))
	for i, e := range entries {
		args := make([]optimizer.Arg, len(e.inv.Args))
		for k, a := range e.inv.Args {
			if a.IsArray {
				// validate accepted the entry, so the array exists.
				arr := c.arrays[a.Array]
				args[k] = optimizer.Arg{Array: uint64(a.Array), Meta: kernels.ArgMeta{IsBuffer: true, Len: arr.Len}}
			} else {
				args[k] = optimizer.Arg{Meta: kernels.ArgMeta{Scalar: a.Scalar}}
			}
		}
		ops[i] = &optimizer.Op{
			Def: e.def, Grid: e.inv.Grid, Block: e.inv.Block,
			Args: args, Tenant: e.tenant, Ref: e,
		}
	}
	res := optimizer.FusePass(ops, c.compileFused)
	if res.Fused == 0 {
		return entries
	}
	out := make([]*winEntry, len(res.Ops))
	for i, op := range res.Ops {
		e := op.Ref.(*winEntry)
		if len(op.Absorbed) == 0 {
			out[i] = e
			continue
		}
		args := make([]ArgRef, len(op.Args))
		metas := make([]kernels.ArgMeta, len(op.Args))
		for k, a := range op.Args {
			metas[k] = a.Meta
			if a.Meta.IsBuffer {
				args[k] = ArrRef(dag.ArrayID(a.Array))
			} else {
				args[k] = ScalarRef(a.Meta.Scalar)
			}
		}
		fe := &winEntry{
			inv:  Invocation{Kernel: op.Def.Name, Grid: op.Grid, Block: op.Block, Args: args},
			def:  op.Def,
			accs: op.Def.Access(metas),
			p:    e.p, stats: e.stats, tenant: e.tenant,
			followers: e.followers,
		}
		for _, ref := range op.Absorbed {
			pe := ref.(*winEntry)
			fe.followers = append(fe.followers, pe.p)
			fe.followers = append(fe.followers, pe.followers...)
		}
		fused := int64(len(op.Absorbed))
		c.optStats.FusedCEs.Add(fused)
		if fe.stats != nil {
			fe.stats.FusedCEs.Add(fused)
		}
		out[i] = fe
	}
	return out
}

// compileFused is the optimizer's Compiler: fused source goes through
// the shared compile cache (keyed on the fused source hash), registers
// with the controller, and broadcasts to the fabric — a BuildKernel that
// does not drain. Safe against in-flight dispatchers because the
// registry is internally locked and fabric kernel builds touch no
// timeline state.
func (c *Controller) compileFused(src string) (*kernels.Def, error) {
	key := minicuda.CacheKey(src, "")
	var def *kernels.Def
	if name, ok := c.reg.CachedSource(key); ok {
		if d, ok := c.reg.Lookup(name); ok {
			def = d
		}
	}
	if def == nil {
		d, err := minicuda.Compile(src, "")
		if err != nil {
			return nil, err
		}
		if _, exists := c.reg.Lookup(d.Name); !exists {
			if err := c.reg.Register(d); err != nil {
				return nil, err
			}
		}
		c.reg.CacheSource(key, d.Name)
		def = d
	}
	if kb, ok := c.fabric.(KernelBuilder); ok {
		if err := kb.BuildKernel(src, ""); err != nil {
			return nil, err
		}
	}
	return def, nil
}

// planPrefetchLocked computes coalescing plans for the admitted window
// and attaches each to its run leader. Caller holds mu (and subMu).
func (c *Controller) planPrefetchLocked(ws []*winEntry, scheds []scheduled) {
	if cap(c.winPlaced) < len(scheds) {
		c.winPlaced = make([]optimizer.PlacedOp, len(scheds))
	}
	placed := c.winPlaced[:len(scheds)]
	for i := range scheds {
		s := &scheds[i]
		po := &placed[i]
		po.Target = s.target
		po.Needs, po.Writes = po.Needs[:0], po.Writes[:0]
		for k, a := range s.inv.Args {
			if !a.IsArray {
				continue
			}
			if s.accs[k].Mode.Writes() {
				po.Writes = append(po.Writes, uint64(a.Array))
			}
			if skipOldBytes(s.accs, k) || s.upAtSched[k] {
				continue
			}
			po.Needs = append(po.Needs, uint64(a.Array))
		}
	}
	for _, plan := range optimizer.PlanPrefetch(placed) {
		pf := &prefetchPlan{target: plan.Target, stats: ws[plan.Leader].stats}
		for _, id := range plan.Arrays {
			if arr := c.arrays[dag.ArrayID(id)]; arr != nil {
				pf.arrs = append(pf.arrs, arr)
			}
		}
		if len(pf.arrs) >= 2 {
			scheds[plan.Leader].prefetch = pf
		}
	}
}

// bulkPrefetch executes a run leader's coalescing plan: every planned
// array whose fresh bytes sit on the controller and not yet on the
// target ships in one bulk fabric move. Purely opportunistic — any
// filter or fabric failure degrades to the regular per-argument path,
// and registration re-checks the committed version so a concurrent
// writer (concurrent-dispatch fabrics) can never be resurrected by a
// stale payload. Returns the bytes it moved.
func (c *Controller) bulkPrefetch(s *scheduled) memmodel.Bytes {
	pf := s.prefetch
	s.prefetch = nil // one shot, even across failover retries
	bm := c.bulkMover
	if bm == nil {
		return 0
	}

	var (
		ids      []dag.ArrayID
		arrs     []*GlobalArray
		cvers    []uint64
		bufs     []*kernels.Buffer
		srcReady sim.VirtualTime
	)
	c.mu.Lock()
	if c.dead[pf.target] {
		c.mu.Unlock()
		return 0
	}
	for _, arr := range pf.arrs {
		if _, up := arr.upToDate[pf.target]; up {
			continue // already resident
		}
		t, up := arr.upToDate[cluster.ControllerID]
		if !up {
			continue // not controller-resident: per-op path picks a source
		}
		ids = append(ids, arr.ID)
		arrs = append(arrs, arr)
		cvers = append(cvers, arr.cver)
		bufs = append(bufs, arr.Buf)
		if t > srcReady {
			srcReady = t
		}
	}
	c.mu.Unlock()
	if len(ids) < 2 {
		return 0
	}

	for _, arr := range arrs {
		if err := c.fabric.EnsureArray(pf.target, arr.ArrayMeta); err != nil {
			return 0
		}
	}
	arrival, err := bm.MoveArrays(pf.target, ids, srcReady, bufs)
	if err != nil {
		return 0
	}

	var moved memmodel.Bytes
	shipped := 0
	c.mu.Lock()
	if !c.dead[pf.target] {
		for k, arr := range arrs {
			if arr.cver != cvers[k] {
				continue // overwritten since planning: payload is stale
			}
			c.registerCopy(arr, pf.target, arrival, true)
			shipped++
			moved += arr.size
		}
		if shipped > 0 {
			if arrival > c.elapsed {
				c.elapsed = arrival
			}
			c.cond.Broadcast()
		}
	}
	c.mu.Unlock()
	if shipped >= 2 {
		c.optStats.CoalescedTransfers.Add(int64(shipped))
		if pf.stats != nil {
			pf.stats.CoalescedTransfers.Add(int64(shipped))
		}
	}
	return moved
}

// countEliminatedMove records a pass-3 skip on both counter blocks.
func (c *Controller) countEliminatedMove(s *scheduled) {
	c.optStats.EliminatedMoves.Add(1)
	if s.stats != nil {
		s.stats.EliminatedMoves.Add(1)
	}
}
