// Lineage-based array recovery (DESIGN.md §5.4).
//
// The failover path reroutes CEs around dead workers, but an array whose
// only valid copy died with its worker used to be terminal (ErrDataLost).
// This file turns that into a recoverable event, Spark-RDD/Ray style:
// while failover is enabled the Controller records, for every version of
// every written array, the invocation that produced it and the (array,
// version) pairs it read. On a loss it walks that lineage closure back to
// data that still lives somewhere (a live replica, or the controller's
// copy of a host-written root), replays the producer chain on the
// survivors, and republishes the recovered locations — only surfacing
// ErrDataLost when the chain bottoms out in something genuinely gone.
//
// Arrays are mutable, so last-writer alone is not enough: a producer
// record is only replayable if each input is available *at the version the
// record read*. Version bookkeeping lives on GlobalArray (ver/cver, see
// controller.go); records are keyed by (array, version). Replaying an
// in-place overwrite chain (relu x: x@v2 = f(x@v1)) necessarily rolls the
// physical buffer back to an older state, so the planner extends every
// such chain forward to the array's committed tip before publishing.
//
// Replayed CEs bypass the Global DAG and the dispatch pipeline entirely:
// inserting them would create WAR edges from the very CE whose dispatch is
// blocked on the loss, deadlocking waitDeps. Instead the executor drives
// the fabric directly — policy placement, input shipping, launch — under
// the recovery mutex, and keeps intermediate versions out of the public
// registry so concurrent dispatchers never mistake a half-replayed buffer
// for current data.
package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"grout/internal/cluster"
	"grout/internal/dag"
	"grout/internal/grcuda"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/sim"
)

// lineageKey names one version of one array.
type lineageKey struct {
	id  dag.ArrayID
	ver uint64
}

// producerRec is the replayable record of the CE that produced one or more
// array versions. One record serves every array the CE wrote.
type producerRec struct {
	// ce is the retained Global-DAG vertex payload; recovery reuses it
	// for the policy's placement request, like any reschedule.
	ce *dag.CE
	// inv is the invocation with its argument slice deep-copied: callers
	// may reuse their Args backing across launches.
	inv Invocation
	// accs is the kernel's access analysis (fresh per validate call).
	accs []memmodel.Access
	// inputs lists the read array arguments in argument order, each at
	// the version current when the CE was admitted.
	inputs []lineageKey
	// outs lists the written array arguments with the versions this CE
	// produced.
	outs []lineageKey
}

// recordLineage assigns the scheduled CE's output versions (always, so
// cver semantics don't depend on failover being enabled) and, when the
// lineage index is on, stores its producer record. Called from schedule
// with mu held, before predictMembership. Input versions are captured
// before output versions advance, so an in-place read-write (relu x)
// records x@v as the input of x@v+1.
func (c *Controller) recordLineage(s *scheduled) {
	s.outVers = s.outVers[:0]
	var rec *producerRec
	if c.lineage != nil {
		for i, a := range s.inv.Args {
			if a.IsArray && s.accs[i].Mode.Writes() {
				rec = &producerRec{ce: s.ce, inv: s.inv, accs: s.accs}
				rec.inv.Args = append([]ArgRef(nil), s.inv.Args...)
				break
			}
		}
		if rec != nil {
			for i, a := range s.inv.Args {
				if a.IsArray && s.accs[i].Mode.Reads() {
					rec.inputs = append(rec.inputs, lineageKey{a.Array, c.arrays[a.Array].ver})
				}
			}
		}
	}
	for i, a := range s.inv.Args {
		if a.IsArray && s.accs[i].Mode.Writes() {
			arr := c.arrays[a.Array]
			arr.ver++
			s.outVers = append(s.outVers, arr.ver)
			if rec != nil {
				k := lineageKey{a.Array, arr.ver}
				rec.outs = append(rec.outs, k)
				c.lineage[k] = rec
			}
		}
	}
}

// recoverLoss extracts the lost array from a data-loss error and runs
// recovery for it.
func (c *Controller) recoverLoss(err error) error {
	var dl *errDataLoss
	if !errors.As(err, &dl) {
		return err
	}
	return c.recoverArrays([]dag.ArrayID{dl.id})
}

// recoveryPlan is an ordered replay of producer CEs plus the arrays whose
// committed-tip versions it reproduces.
type recoveryPlan struct {
	steps  []*producerRec
	arrays map[dag.ArrayID]bool
}

// recoverArrays recomputes lost arrays from lineage. Safe to call from
// concurrent dispatchers: recoveries serialize on recMu, and a caller
// whose loss an earlier recovery already repaired returns immediately.
func (c *Controller) recoverArrays(ids []dag.ArrayID) error {
	c.recMu.Lock()
	defer c.recMu.Unlock()
	start := time.Now()

	c.mu.Lock()
	lost := make([]dag.ArrayID, 0, len(ids))
	for _, id := range ids {
		arr := c.arrays[id]
		if arr == nil || len(arr.upToDate) != 0 {
			continue
		}
		if arr.leased && arr.leaseVer == arr.cver && !c.dead[arr.leaseNode] &&
			c.fabric.Healthy(arr.leaseNode) {
			// Lease-at-tip fast path: the cross-shard replica already
			// holds the committed version, so republish it instead of
			// replaying the producer chain. Subsequent dispatches pull
			// it worker→worker; no controller bounce, no replay.
			arr.upToDate[arr.leaseNode] = arr.leaseAt
			if len(arr.member) == 0 {
				arr.member[arr.leaseNode] = struct{}{}
				arr.maskSet(arr.leaseNode)
				arr.gen++
			}
			c.recoveries++
			// Waiters blocked on the array's registry state must re-check.
			c.cond.Broadcast()
			continue
		}
		lost = append(lost, id)
	}
	if len(lost) == 0 {
		c.mu.Unlock()
		return nil
	}
	plan, err := c.planRecovery(lost)
	c.mu.Unlock()
	if err == nil {
		err = c.executeRecovery(plan)
	}

	c.mu.Lock()
	c.recoveryTime += time.Since(start)
	c.mu.Unlock()
	return err
}

// planRecovery builds the replay closure for the lost arrays: the minimal
// set of producer records that rebuilds each array at its committed
// version from data that still lives somewhere. Caller holds mu.
func (c *Controller) planRecovery(ids []dag.ArrayID) (*recoveryPlan, error) {
	plan := &recoveryPlan{arrays: make(map[dag.ArrayID]bool)}
	visited := make(map[lineageKey]bool)
	inPlan := make(map[*producerRec]bool)

	var need func(k lineageKey) error
	need = func(k lineageKey) error {
		if visited[k] {
			return nil
		}
		visited[k] = true
		arr := c.arrays[k.id]
		if arr == nil {
			return fmt.Errorf("core: recovery needs freed array %d: %w", k.id, ErrDataLost)
		}
		if len(arr.upToDate) > 0 {
			if k.ver == arr.cver {
				return nil // live at the needed version: ship, don't replay
			}
			if k.ver == arr.hostVer {
				return nil // superseded, but the host buffer still holds it
			}
			if arr.leased && k.ver == arr.leaseVer && !c.dead[arr.leaseNode] {
				return nil // superseded, but a cross-shard lease replica holds it
			}
			// A newer committed version is live somewhere; replaying the
			// older one would clobber it. Conservatively unrecoverable.
			return fmt.Errorf("core: array %d lost at version %d but version %d is live: %w",
				k.id, k.ver, arr.cver, ErrDataLost)
		}
		rec := c.lineage[k]
		if rec == nil {
			if k.ver == arr.hostVer {
				// Host-initialized root: the controller's buffer still
				// holds exactly this version; replayStep re-ships it.
				return nil
			}
			if arr.leased && k.ver == arr.leaseVer && !c.dead[arr.leaseNode] {
				// Cross-shard lease root: the replica exported to a
				// foreign worker holds exactly this version; replayStep
				// pulls it worker→worker over the shared fabric.
				return nil
			}
			// A root with no producer record whose bytes the controller
			// no longer holds either.
			return fmt.Errorf("core: array %d version %d has no replayable producer: %w",
				k.id, k.ver, ErrDataLost)
		}
		for _, in := range rec.inputs {
			if err := need(in); err != nil {
				return err
			}
		}
		if !inPlan[rec] {
			inPlan[rec] = true
			plan.steps = append(plan.steps, rec)
		}
		if k.ver < arr.cver {
			// In-place overwrite chain: replay forward to the committed
			// tip, or the registry would claim a version the buffer does
			// not hold.
			return need(lineageKey{k.id, k.ver + 1})
		}
		plan.arrays[k.id] = true
		return nil
	}

	for _, id := range ids {
		if err := need(lineageKey{id, c.arrays[id].cver}); err != nil {
			return nil, err
		}
	}
	// Ascending CE ID is a topological order of the replay: any plan CE
	// reading version v of an array was admitted before the CE producing
	// v+1 (the DAG's WAR edge ordered them), so every step finds its
	// inputs at the right version when it runs.
	sort.Slice(plan.steps, func(i, j int) bool { return plan.steps[i].ce.ID < plan.steps[j].ce.ID })
	return plan, nil
}

// planLoc is where an in-plan array's freshest replayed version lives
// while a recovery runs.
type planLoc struct {
	node cluster.NodeID
	t    sim.VirtualTime
}

// executeRecovery replays the plan's producer chain and publishes the
// recovered locations. Intermediate versions stay in the plan-local map:
// the public registry only ever shows committed-tip data.
func (c *Controller) executeRecovery(plan *recoveryPlan) error {
	locs := make(map[dag.ArrayID]planLoc)
	for _, rec := range plan.steps {
		if err := c.replayStep(rec, locs); err != nil {
			return err
		}
	}

	c.mu.Lock()
	for id := range plan.arrays {
		l, ok := locs[id]
		if !ok {
			continue // defensive: the planner always schedules a producer
		}
		arr := c.arrays[id]
		clear(arr.upToDate)
		arr.upToDate[l.node] = l.t
		// The membership view belongs to the scheduler's timeline; only
		// repair it where the loss emptied it, so admitted-but-undispatched
		// predictions stay intact.
		if len(arr.member) == 0 {
			arr.member[l.node] = struct{}{}
			arr.maskSet(l.node)
			arr.gen++
		}
		if l.t > c.elapsed {
			c.elapsed = l.t
		}
		c.recoveries++
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	return nil
}

// replayStep re-executes one producer CE against the fabric: policy
// placement, input shipping (plan-local locations first, live replicas
// otherwise), launch. Worker deaths mid-replay fail over within the step.
func (c *Controller) replayStep(rec *producerRec, locs map[dag.ArrayID]planLoc) error {
	type pendingMove struct {
		id    dag.ArrayID
		src   cluster.NodeID
		ready sim.VirtualTime
		buf   *kernels.Buffer
		size  memmodel.Bytes
	}
	for attempt := 0; ; attempt++ {
		c.mu.Lock()
		if len(c.aliveWorkers()) == 0 {
			c.mu.Unlock()
			return fmt.Errorf("core: no workers left to replay CE %d: %w", rec.ce.ID, ErrDataLost)
		}
		req := c.buildRequest(rec.ce, rec.inv.Args, rec.accs)
		target := c.pol.Assign(req)

		var moves []pendingMove
		var metas []grcuda.ArrayMeta
		var ready sim.VirtualTime
		var ierr error
		inIdx := 0
		for i, a := range rec.inv.Args {
			if !a.IsArray {
				continue
			}
			arr := c.arrays[a.Array]
			if arr == nil {
				ierr = fmt.Errorf("core: replay of CE %d references freed array %d: %w",
					rec.ce.ID, a.Array, ErrDataLost)
				break
			}
			metas = append(metas, arr.ArrayMeta)
			if !rec.accs[i].Mode.Reads() {
				continue
			}
			k := rec.inputs[inIdx]
			inIdx++
			if l, ok := locs[a.Array]; ok {
				// Produced earlier in this plan; read the replayed copy.
				if l.node != target {
					moves = append(moves, pendingMove{a.Array, l.node, l.t, nil, arr.size})
				} else if l.t > ready {
					ready = l.t
				}
				continue
			}
			if arr.cver != k.ver || len(arr.upToDate) == 0 {
				if arr.hostVer == k.ver {
					// Host-written root the planner approved: the
					// controller's buffer holds these exact bytes.
					moves = append(moves, pendingMove{a.Array, cluster.ControllerID, 0, arr.Buf, arr.size})
					continue
				}
				if arr.leased && arr.leaseVer == k.ver && !c.dead[arr.leaseNode] {
					// Cross-shard lease root: pull the replica from the
					// foreign worker (P2P over the shared fabric).
					moves = append(moves, pendingMove{a.Array, arr.leaseNode, arr.leaseAt, nil, arr.size})
					continue
				}
				ierr = fmt.Errorf("core: replay input array %d version %d no longer available: %w",
					a.Array, k.ver, ErrDataLost)
				break
			}
			if t, ok := arr.upToDate[target]; ok {
				if t > ready {
					ready = t
				}
				continue
			}
			src := c.bestSource(arr, target)
			var buf *kernels.Buffer
			if src == cluster.ControllerID {
				buf = arr.Buf
			}
			moves = append(moves, pendingMove{a.Array, src, arr.upToDate[src], buf, arr.size})
		}
		c.mu.Unlock()
		if ierr != nil {
			return ierr
		}

		var moved memmodel.Bytes
		var p2p int
		err := func() error {
			for _, m := range metas {
				if err := c.fabric.EnsureArray(target, m); err != nil {
					return err
				}
			}
			for _, m := range moves {
				at, err := c.fabric.MoveArray(m.id, m.src, target, m.ready, m.buf, nil)
				if err != nil {
					return err
				}
				moved += m.size
				if m.src.IsWorker() {
					p2p++
				}
				if at > ready {
					ready = at
				}
			}
			end, err := c.fabric.Launch(target, rec.inv, ready)
			if err != nil {
				return err
			}
			for _, o := range rec.outs {
				locs[o.id] = planLoc{target, end}
			}
			c.mu.Lock()
			c.movedBytes += moved
			c.p2pMoves += p2p
			if !c.noTrace {
				c.traces = append(c.traces, CETrace{
					CE: rec.ce.ID, Label: "recover:" + rec.inv.Kernel, Node: target,
					Start: ready, End: end, MovedBytes: moved, P2PMoves: p2p,
				})
			}
			c.mu.Unlock()
			return nil
		}()
		if err == nil {
			return nil
		}

		// The same probe-and-write-off the normal dispatch path uses.
		c.mu.Lock()
		anyDead := false
		for _, w := range c.aliveWorkers() {
			if !c.fabric.Healthy(w) {
				c.markDead(w)
				anyDead = true
			}
		}
		survivors := len(c.aliveWorkers())
		targetDead := c.dead[target]
		c.mu.Unlock()
		if (!anyDead && !targetDead) || survivors == 0 || attempt >= maxRecoveryRounds {
			return fmt.Errorf("core: lineage replay of CE %d (%s) failed: %w", rec.ce.ID, rec.inv.Kernel, err)
		}
	}
}
