package core

import "errors"

// Sentinel errors shared by every fabric implementation. Workers and
// fabrics wrap these with %w (the transport additionally maps them to
// wire-level error codes so they survive a socket round trip), letting
// callers branch with errors.Is instead of string matching:
//
//   - the Controller's failover must distinguish rerouteable failures from
//     unsalvageable ones (ErrDataLost),
//   - tests assert on the failure class, not on message spelling,
//   - clients can react to OOM (shrink, spill) differently from a missing
//     array (a scheduling bug) or a compile error (a user bug).
var (
	// ErrArrayNotFound: an operation referenced an array the target node
	// does not hold.
	ErrArrayNotFound = errors.New("array not found")
	// ErrKernelCompile: mini-CUDA source failed to compile.
	ErrKernelCompile = errors.New("kernel compile failed")
	// ErrOOM: the node could not allocate host memory for an array.
	ErrOOM = errors.New("out of memory")
	// ErrDataLost: the only valid copy of an array died with a failed
	// worker and lineage recovery could not recompute it.
	ErrDataLost = errors.New("array data lost")
	// ErrTimeout: an operation exceeded its deadline (a framed call's
	// read/write deadline, a bulk chunk's progress deadline, or a chaos
	// fabric's modeled RPC deadline). Timeouts are transient: the
	// Controller retries them with backoff before writing a worker off.
	ErrTimeout = errors.New("operation timed out")
	// ErrTransient: a failure worth retrying before failover — a dial
	// refusal, a severed connection, an injected chaos fault. Transports
	// wrap connection-level errors with it so the Controller can
	// distinguish them from remote execution errors (bad kernel, OOM),
	// which retrying cannot fix.
	ErrTransient = errors.New("transient transport failure")
	// ErrQuotaExceeded: a tenant session asked for more array bytes than
	// its quota allows (gateway multi-tenancy). Not transient: the tenant
	// must free arrays or negotiate a bigger quota.
	ErrQuotaExceeded = errors.New("array-byte quota exceeded")
	// ErrShedded: the gateway refused a launch because the shard's
	// admission backlog crossed the shed threshold for the tenant's
	// priority class. Unlike a poisoned stream this is retryable overload,
	// not a sticky session error: the tenant may back off and resubmit the
	// same launch.
	ErrShedded = errors.New("launch shed: gateway overloaded")
)

// IsTransient reports whether err is worth retrying in place: a timeout
// or a connection-level failure, as opposed to a remote execution error.
func IsTransient(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, ErrTimeout)
}
