package core

import "errors"

// Sentinel errors shared by every fabric implementation. Workers and
// fabrics wrap these with %w (the transport additionally maps them to
// wire-level error codes so they survive a socket round trip), letting
// callers branch with errors.Is instead of string matching:
//
//   - the Controller's failover must distinguish rerouteable failures from
//     unsalvageable ones (ErrDataLost),
//   - tests assert on the failure class, not on message spelling,
//   - clients can react to OOM (shrink, spill) differently from a missing
//     array (a scheduling bug) or a compile error (a user bug).
var (
	// ErrArrayNotFound: an operation referenced an array the target node
	// does not hold.
	ErrArrayNotFound = errors.New("array not found")
	// ErrKernelCompile: mini-CUDA source failed to compile.
	ErrKernelCompile = errors.New("kernel compile failed")
	// ErrOOM: the node could not allocate host memory for an array.
	ErrOOM = errors.New("out of memory")
	// ErrDataLost: the only valid copy of an array died with a failed
	// worker; no failover can recover it.
	ErrDataLost = errors.New("array data lost")
)
