package core

import (
	"testing"

	"grout/internal/cluster"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/policy"
)

// Elementwise pair for the fusion pass: wmul is a producer whose store
// feeds wmadd's second parameter. Names avoid the stdlib registry
// ("scale" is taken by a native kernel).
const winProdSrc = `__global__ void wmul(float *s, const float *x, float a, int n) {
	int i = blockIdx.x * blockDim.x + threadIdx.x;
	if (i < n) { s[i] = a * x[i]; }
}`

const winConsSrc = `__global__ void wmadd(float *o, const float *u, const float *v, float b, int n) {
	int i = blockIdx.x * blockDim.x + threadIdx.x;
	if (i < n) { o[i] = u[i] + v[i] * b; }
}`

// newWindowSystem builds a numeric controller with the optimizer window.
func newWindowSystem(t testing.TB, workers, window int, pipeline bool) *Controller {
	t.Helper()
	clu := cluster.New(cluster.PaperSpec(workers))
	fab := NewLocalFabric(clu, kernels.StdRegistry(), true)
	return NewController(fab, policy.NewRoundRobin(),
		Options{Numeric: true, Pipeline: pipeline, OptimizeWindow: window})
}

// seedArray fills an array with deterministic values and versions it.
func seedArray(t testing.TB, ctl *Controller, arr *GlobalArray) {
	t.Helper()
	for i := 0; i < int(arr.Len); i++ {
		arr.Buf.Set(i, float64(i)*0.5-3)
	}
	if _, err := ctl.HostWrite(arr.ID); err != nil {
		t.Fatal(err)
	}
}

// runChain submits the wmul→wmadd chain (fused or not, depending on the
// controller's window) and returns the intermediate and output buffers.
func runChain(t testing.TB, ctl *Controller, submit bool) (s, o []float64) {
	t.Helper()
	const n = int64(64)
	for _, src := range []string{winProdSrc, winConsSrc} {
		if _, err := ctl.BuildKernel(src, ""); err != nil {
			t.Fatal(err)
		}
	}
	x, err := ctl.NewArray(memmodel.Float32, n)
	if err != nil {
		t.Fatal(err)
	}
	sArr, _ := ctl.NewArray(memmodel.Float32, n)
	oArr, _ := ctl.NewArray(memmodel.Float32, n)
	seedArray(t, ctl, x)

	prod := Invocation{Kernel: "wmul", Grid: 1, Block: int(n),
		Args: []ArgRef{ArrRef(sArr.ID), ArrRef(x.ID), ScalarRef(2.5), ScalarRef(float64(n))}}
	cons := Invocation{Kernel: "wmadd", Grid: 1, Block: int(n),
		Args: []ArgRef{ArrRef(oArr.ID), ArrRef(sArr.ID), ArrRef(x.ID), ScalarRef(0.75), ScalarRef(float64(n))}}
	if submit {
		p1, err := ctl.Submit(prod)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := ctl.Submit(cons)
		if err != nil {
			t.Fatal(err)
		}
		if err := ctl.Drain(); err != nil {
			t.Fatal(err)
		}
		if end, err := p1.Wait(); err != nil || end == 0 {
			t.Fatalf("producer pending: end=%v err=%v", end, err)
		}
		if end, err := p2.Wait(); err != nil || end == 0 {
			t.Fatalf("consumer pending: end=%v err=%v", end, err)
		}
	} else {
		if _, err := ctl.Launch(prod); err != nil {
			t.Fatal(err)
		}
		if _, err := ctl.Launch(cons); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ctl.HostRead(sArr.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.HostRead(oArr.ID); err != nil {
		t.Fatal(err)
	}
	return snapshot(sArr.Buf), snapshot(oArr.Buf)
}

// TestWindowFusionBitIdentical: the windowed controller fuses the
// elementwise chain into one CE and still produces bit-identical buffers
// — including the intermediate, which stays live (it is read back below,
// so the drop analysis must keep its store).
func TestWindowFusionBitIdentical(t *testing.T) {
	plain := NewController(numericFabric(2), policy.NewRoundRobin(), Options{Numeric: true})
	defer plain.Close()
	wantS, wantO := runChain(t, plain, false)

	ctl := newWindowSystem(t, 2, 8, true)
	defer ctl.Close()
	gotS, gotO := runChain(t, ctl, true)

	sameValues(t, "s", gotS, wantS)
	sameValues(t, "o", gotO, wantO)
	if fused := ctl.OptStats().FusedCEs; fused != 1 {
		t.Fatalf("FusedCEs = %d, want 1 (producer absorbed)", fused)
	}
	if plain.OptStats().FusedCEs != 0 {
		t.Fatalf("window-off controller reported fusion work")
	}
}

// TestWindowSerialLaunch: with Pipeline off, Launch parks and flushes a
// one-deep window inline and still behaves like the blocking call.
func TestWindowSerialLaunch(t *testing.T) {
	ctl := newWindowSystem(t, 2, 4, false)
	defer ctl.Close()
	gotS, gotO := runChain(t, ctl, false)

	plain := NewController(numericFabric(2), policy.NewRoundRobin(), Options{Numeric: true})
	defer plain.Close()
	wantS, wantO := runChain(t, plain, false)

	sameValues(t, "s", gotS, wantS)
	sameValues(t, "o", gotO, wantO)
	if ctl.Elapsed() == 0 {
		t.Fatalf("no virtual time elapsed")
	}
}

// TestWindowPartialFlush: a window larger than the submission count must
// flush on Drain (and on HostRead), never stall, and resolve every
// Pending.
func TestWindowPartialFlush(t *testing.T) {
	ctl := newWindowSystem(t, 2, 32, true)
	defer ctl.Close()
	const n = int64(1 << 10)
	var pendings []*Pending
	for i := 0; i < 3; i++ {
		a, err := ctl.NewArray(memmodel.Float32, n)
		if err != nil {
			t.Fatal(err)
		}
		p, err := ctl.Submit(Invocation{Kernel: "fill",
			Args: []ArgRef{ArrRef(a.ID), ScalarRef(float64(i)), ScalarRef(float64(n))}})
		if err != nil {
			t.Fatal(err)
		}
		pendings = append(pendings, p)
	}
	if err := ctl.Drain(); err != nil {
		t.Fatal(err)
	}
	for i, p := range pendings {
		if end, err := p.Wait(); err != nil || end == 0 {
			t.Fatalf("pending %d: end=%v err=%v", i, end, err)
		}
	}
	if got := ctl.OptStats().FusedCEs; got != 0 {
		t.Fatalf("FusedCEs = %d for native (unfusable) kernels", got)
	}
}

// TestWindowCoalescingAndMoveElimination: with one worker the whole
// window is a single same-target run, so the two axpy CEs' three operand
// moves coalesce into one bulk frame at the leader's dispatch, and the
// second CE's shared operand — predicted and then confirmed resident —
// skips its per-argument fabric round trip entirely.
func TestWindowCoalescingAndMoveElimination(t *testing.T) {
	ctl := newWindowSystem(t, 1, 8, true)
	defer ctl.Close()
	const n = int64(1 << 20) // 4 MiB per array
	x, err := ctl.NewArray(memmodel.Float32, n)
	if err != nil {
		t.Fatal(err)
	}
	y1, _ := ctl.NewArray(memmodel.Float32, n)
	y2, _ := ctl.NewArray(memmodel.Float32, n)
	seedArray(t, ctl, x)

	for _, y := range []*GlobalArray{y1, y2} {
		if _, err := ctl.Submit(Invocation{Kernel: "axpy",
			Args: []ArgRef{ArrRef(y.ID), ArrRef(x.ID), ScalarRef(1), ScalarRef(float64(n))}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ctl.Drain(); err != nil {
		t.Fatal(err)
	}

	// y1, x and y2 ride one bulk frame; x never moves again.
	if got := ctl.MovedBytes(); got != 3*4*memmodel.MiB {
		t.Fatalf("moved = %v, want 12MiB (x shipped once, in bulk)", got)
	}
	st := ctl.OptStats()
	if st.CoalescedTransfers != 3 {
		t.Fatalf("CoalescedTransfers = %d, want 3", st.CoalescedTransfers)
	}
	if st.EliminatedMoves < 1 {
		t.Fatalf("EliminatedMoves = %d, want >= 1 (x was resident)", st.EliminatedMoves)
	}

	// The arithmetic survived the optimizations: y = 0 + 1*x.
	if _, err := ctl.HostRead(y1.ID); err != nil {
		t.Fatal(err)
	}
	sameValues(t, "y1", snapshot(y1.Buf), snapshot(x.Buf))
}

// TestWindowStickyError: in serial window mode parked submissions have
// already returned, so a dispatch failure must surface on the Pendings,
// poison the window, and reject later submissions — mirroring the
// pipeline's sticky-error contract.
func TestWindowStickyError(t *testing.T) {
	chaos := NewChaosFabric(numericFabric(1), ChaosOptions{
		KillAtLaunch: map[cluster.NodeID]int{1: 1},
	})
	ctl := NewController(chaos, policy.NewRoundRobin(),
		Options{Numeric: true, OptimizeWindow: 4})
	defer ctl.Close()
	const n = int64(256)
	a, err := ctl.NewArray(memmodel.Float32, n)
	if err != nil {
		t.Fatal(err)
	}
	var pendings []*Pending
	for i := 0; i < 2; i++ {
		p, err := ctl.Submit(Invocation{Kernel: "fill",
			Args: []ArgRef{ArrRef(a.ID), ScalarRef(1), ScalarRef(float64(n))}})
		if err != nil {
			t.Fatal(err)
		}
		pendings = append(pendings, p)
	}
	if err := ctl.Drain(); err == nil {
		t.Fatal("Drain succeeded over a killed worker")
	}
	for i, p := range pendings {
		if _, err := p.Wait(); err == nil {
			t.Fatalf("pending %d resolved without error", i)
		}
	}
	// The window is poisoned: new work is rejected at park time.
	if _, err := ctl.Submit(Invocation{Kernel: "fill",
		Args: []ArgRef{ArrRef(a.ID), ScalarRef(1), ScalarRef(float64(n))}}); err == nil {
		t.Fatal("submission accepted after sticky window error")
	}
}
