// ChaosFabric: deterministic fault injection for recovery testing.
//
// Wraps any Fabric and injects failures at precise, seeded points —
// kill-worker-at-Nth-launch, hang-worker (every call eats the modeled RPC
// deadline, then times out), sever-the-Nth-transfer, slow links, and
// seeded random transient faults — so the Controller's failover, lineage
// recovery, and retry/backoff paths are testable in-process, without real
// sockets and without flaky timing. ChaosFabric deliberately does NOT
// implement ConcurrentDispatcher even when its inner fabric does: the
// pipelined controller then sequences every fabric call, which makes the
// injection counters (and therefore each run's fault schedule) exactly
// reproducible.
package core

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"grout/internal/cluster"
	"grout/internal/dag"
	"grout/internal/grcuda"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/sim"
)

// ChaosOptions declares a deterministic fault schedule.
type ChaosOptions struct {
	// KillAtLaunch kills a worker at its Nth Launch call (1-based): that
	// launch fails, and every later operation touching the worker —
	// including reads of data it exclusively holds — fails too, with
	// Healthy reporting false. Zero means never.
	KillAtLaunch map[cluster.NodeID]int
	// HangAtLaunch makes a worker unresponsive starting at its Nth Launch
	// call (1-based): that call and every later one block for
	// CallDeadline of wall time and then return ErrTimeout, exactly like
	// an RPC deadline expiring against a wedged process.
	HangAtLaunch map[cluster.NodeID]int
	// CallDeadline is the modeled RPC deadline a hung worker's calls
	// (and Healthy probes) consume before timing out. Default 25ms.
	CallDeadline time.Duration
	// SeverMoves lists 1-based global MoveArray indices that fail once
	// with ErrTransient, as if the connection died mid-chunk; the
	// transfer performs no work, and a retry of the same move succeeds.
	SeverMoves []int
	// SlowLink adds a wall-clock delay to every MoveArray, for exercising
	// timing budgets.
	SlowLink time.Duration
	// FailRate injects random transient Launch failures with the given
	// probability, drawn from a generator seeded with Seed — noisy but
	// reproducible.
	FailRate float64
	// Seed seeds the FailRate generator. Zero means seed 1.
	Seed int64
}

// ChaosFabric wraps an inner Fabric with the fault schedule.
type ChaosFabric struct {
	inner Fabric
	opt   ChaosOptions

	mu       sync.Mutex
	launches map[cluster.NodeID]int
	moves    int
	sever    map[int]bool
	dead     map[cluster.NodeID]bool
	hung     map[cluster.NodeID]bool
	rng      *rand.Rand
	injected int
}

// NewChaosFabric wraps inner with a deterministic fault schedule.
func NewChaosFabric(inner Fabric, opt ChaosOptions) *ChaosFabric {
	if opt.CallDeadline <= 0 {
		opt.CallDeadline = 25 * time.Millisecond
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	f := &ChaosFabric{
		inner:    inner,
		opt:      opt,
		launches: make(map[cluster.NodeID]int),
		sever:    make(map[int]bool),
		dead:     make(map[cluster.NodeID]bool),
		hung:     make(map[cluster.NodeID]bool),
		rng:      rand.New(rand.NewSource(seed)),
	}
	for _, m := range opt.SeverMoves {
		f.sever[m] = true
	}
	return f
}

// Injected reports how many faults the schedule has fired so far.
func (f *ChaosFabric) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Inner exposes the wrapped fabric (tests read worker state through it).
func (f *ChaosFabric) Inner() Fabric { return f.inner }

// errDead is the terminal failure every operation on a killed worker
// returns. Deliberately not transient: retrying a dead process in place
// cannot help, only failover can.
func (f *ChaosFabric) errDead(w cluster.NodeID) error {
	return fmt.Errorf("chaos: worker %v was killed", w)
}

// checkWorker fires the dead/hung behavior for one endpoint. Caller must
// NOT hold f.mu (hung workers sleep).
func (f *ChaosFabric) checkWorker(w cluster.NodeID) error {
	if !w.IsWorker() {
		return nil
	}
	f.mu.Lock()
	dead, hung := f.dead[w], f.hung[w]
	f.mu.Unlock()
	if dead {
		return f.errDead(w)
	}
	if hung {
		time.Sleep(f.opt.CallDeadline)
		return fmt.Errorf("chaos: call to hung worker %v: %w", w, ErrTimeout)
	}
	return nil
}

// Workers implements Fabric.
func (f *ChaosFabric) Workers() []cluster.NodeID { return f.inner.Workers() }

// EnsureArray implements Fabric.
func (f *ChaosFabric) EnsureArray(w cluster.NodeID, meta grcuda.ArrayMeta) error {
	if err := f.checkWorker(w); err != nil {
		return err
	}
	return f.inner.EnsureArray(w, meta)
}

// MoveArray implements Fabric. Severed moves fail before any data flows,
// so a retry or a reroute observes a clean source.
func (f *ChaosFabric) MoveArray(id dag.ArrayID, src, dst cluster.NodeID,
	srcReady sim.VirtualTime, srcBuf, dstBuf *kernels.Buffer) (sim.VirtualTime, error) {
	if f.opt.SlowLink > 0 {
		time.Sleep(f.opt.SlowLink)
	}
	f.mu.Lock()
	f.moves++
	severed := f.sever[f.moves]
	if severed {
		delete(f.sever, f.moves)
		f.injected++
	}
	f.mu.Unlock()
	if severed {
		return 0, fmt.Errorf("chaos: transfer of array %d severed mid-chunk: %w", id, ErrTransient)
	}
	if err := f.checkWorker(src); err != nil {
		return 0, err
	}
	if err := f.checkWorker(dst); err != nil {
		return 0, err
	}
	return f.inner.MoveArray(id, src, dst, srcReady, srcBuf, dstBuf)
}

// MoveArrays implements BulkMover when the inner fabric does: the bulk
// frame counts as one move against the sever schedule and one SlowLink
// delay, like the single wire operation it models. With a plain inner
// fabric the assertion fails and the controller never sees a BulkMover,
// so coalescing silently degrades to per-array moves.
func (f *ChaosFabric) MoveArrays(dst cluster.NodeID, ids []dag.ArrayID,
	srcReady sim.VirtualTime, bufs []*kernels.Buffer) (sim.VirtualTime, error) {
	bm, ok := f.inner.(BulkMover)
	if !ok {
		return 0, fmt.Errorf("chaos: inner fabric cannot bulk-move arrays")
	}
	if f.opt.SlowLink > 0 {
		time.Sleep(f.opt.SlowLink)
	}
	f.mu.Lock()
	f.moves++
	severed := f.sever[f.moves]
	if severed {
		delete(f.sever, f.moves)
		f.injected++
	}
	f.mu.Unlock()
	if severed {
		return 0, fmt.Errorf("chaos: bulk transfer of %d arrays severed mid-chunk: %w", len(ids), ErrTransient)
	}
	if err := f.checkWorker(dst); err != nil {
		return 0, err
	}
	return bm.MoveArrays(dst, ids, srcReady, bufs)
}

// Launch implements Fabric and is where kill/hang schedules trigger.
func (f *ChaosFabric) Launch(w cluster.NodeID, inv Invocation, ready sim.VirtualTime) (sim.VirtualTime, error) {
	f.mu.Lock()
	f.launches[w]++
	n := f.launches[w]
	if k := f.opt.KillAtLaunch[w]; k > 0 && n >= k && !f.dead[w] {
		f.dead[w] = true
		f.injected++
	}
	if h := f.opt.HangAtLaunch[w]; h > 0 && n >= h && !f.hung[w] && !f.dead[w] {
		f.hung[w] = true
		f.injected++
	}
	roll := f.opt.FailRate > 0 && !f.dead[w] && !f.hung[w] && f.rng.Float64() < f.opt.FailRate
	if roll {
		f.injected++
	}
	f.mu.Unlock()
	if err := f.checkWorker(w); err != nil {
		return 0, err
	}
	if roll {
		return 0, fmt.Errorf("chaos: injected transient launch failure on %v: %w", w, ErrTransient)
	}
	return f.inner.Launch(w, inv, ready)
}

// EstimateTransfer implements Fabric; estimates are controller-local and
// never fault.
func (f *ChaosFabric) EstimateTransfer(src, dst cluster.NodeID, n memmodel.Bytes) sim.VirtualTime {
	return f.inner.EstimateTransfer(src, dst, n)
}

// EstimateTransferAll implements BulkEstimator when the inner fabric does.
func (f *ChaosFabric) EstimateTransferAll(src cluster.NodeID, n memmodel.Bytes,
	dsts []cluster.NodeID, out []sim.VirtualTime) {
	if be, ok := f.inner.(BulkEstimator); ok {
		be.EstimateTransferAll(src, n, dsts, out)
		return
	}
	for _, d := range dsts {
		out[d] = f.inner.EstimateTransfer(src, d, n)
	}
}

// FreeArray implements Fabric. Freeing a replica on a dead or hung worker
// is moot — the data is unreachable either way — so it succeeds silently
// rather than failing cleanup paths.
func (f *ChaosFabric) FreeArray(w cluster.NodeID, id dag.ArrayID) error {
	f.mu.Lock()
	gone := f.dead[w] || f.hung[w]
	f.mu.Unlock()
	if gone {
		return nil
	}
	return f.inner.FreeArray(w, id)
}

// Healthy implements Fabric: a killed worker reports dead immediately; a
// hung worker eats the probe's deadline first, like a real timed-out ping.
func (f *ChaosFabric) Healthy(w cluster.NodeID) bool {
	f.mu.Lock()
	dead, hung := f.dead[w], f.hung[w]
	f.mu.Unlock()
	if dead {
		return false
	}
	if hung {
		time.Sleep(f.opt.CallDeadline)
		return false
	}
	return f.inner.Healthy(w)
}

// BuildKernel implements KernelBuilder when the inner fabric does.
func (f *ChaosFabric) BuildKernel(src, signature string) error {
	if kb, ok := f.inner.(KernelBuilder); ok {
		return kb.BuildKernel(src, signature)
	}
	return fmt.Errorf("chaos: inner fabric cannot build kernels: %w", ErrKernelCompile)
}
