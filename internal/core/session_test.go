package core

import (
	"errors"
	"math"
	"testing"

	"grout/internal/cluster"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/policy"
)

func sessSystem(t *testing.T) *Controller {
	t.Helper()
	clu := cluster.New(cluster.PaperSpec(4))
	fab := NewLocalFabric(clu, kernels.StdRegistry(), true)
	ctl := NewController(fab, policy.NewRoundRobin(), Options{Numeric: true, Pipeline: true})
	t.Cleanup(func() { ctl.Close() })
	return ctl
}

// Two sessions allocate the same local IDs; they must land on different
// global arrays, and neither session can name the other's.
func TestSessionNamespaceIsolation(t *testing.T) {
	ctl := sessSystem(t)
	s1 := NewControllerSession(ctl, "t1", SessionLimits{})
	s2 := NewControllerSession(ctl, "t2", SessionLimits{})

	const n = 64
	a1, err := s1.NewArray(memmodel.Float32, n)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := s2.NewArray(memmodel.Float32, n)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatalf("local IDs should be session-scoped: got %d and %d", a1, a2)
	}
	if s1.Array(a1).ID == s2.Array(a2).ID {
		t.Fatalf("local ID %d resolved to the same global array for both sessions", a1)
	}

	init := kernels.NewBuffer(memmodel.Float32, n)
	nArg := ScalarRef(float64(n))
	for i := 0; i < n; i++ {
		init.Set(i, float64(i))
	}
	if _, err := s1.HostWrite(a1, init); err != nil {
		t.Fatal(err)
	}
	init.Fill(-3)
	if _, err := s2.HostWrite(a2, init); err != nil {
		t.Fatal(err)
	}
	// t1 scales its array; t2's must be untouched.
	if _, err := s1.Submit(Invocation{Kernel: "scale",
		Args: []ArgRef{ArrRef(a1), ArrRef(a1), ScalarRef(2), nArg}}); err != nil {
		t.Fatal(err)
	}
	got1, _, err := s1.HostRead(a1)
	if err != nil {
		t.Fatal(err)
	}
	got2, _, err := s2.HostRead(a2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got1.At(i) != 2*float64(i) {
			t.Fatalf("t1[%d] = %g, want %g", i, got1.At(i), 2*float64(i))
		}
		if got2.At(i) != -3 {
			t.Fatalf("t2[%d] = %g, want -3", i, got2.At(i))
		}
	}

	// Cross-tenant references must fail loudly, not alias.
	bogus := a1 + 100
	if _, err := s1.Submit(Invocation{Kernel: "relu",
		Args: []ArgRef{ArrRef(bogus), nArg}}); err == nil {
		t.Fatal("submit naming an unknown array succeeded")
	}
	if _, _, err := s1.HostRead(bogus); err == nil {
		t.Fatal("host read of an unknown array succeeded")
	}
}

func TestSessionQuota(t *testing.T) {
	ctl := sessSystem(t)
	quota := memmodel.Bytes(256) * memmodel.Float32.Size()
	s := NewControllerSession(ctl, "q", SessionLimits{MaxArrayBytes: quota})

	a, err := s.NewArray(memmodel.Float32, 200)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewArray(memmodel.Float32, 100); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota NewArray: got %v, want ErrQuotaExceeded", err)
	}
	// Freeing refunds the quota.
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewArray(memmodel.Float32, 256); err != nil {
		t.Fatalf("NewArray after refund: %v", err)
	}
}

// Kind and length reach NewArray straight off the wire: unknown kinds,
// overflowing lengths and over-ceiling lengths must be rejected before
// any size arithmetic or allocation — never panicked on — and must not
// consume quota or poison the session.
func TestSessionNewArrayValidation(t *testing.T) {
	ctl := sessSystem(t)
	s := NewControllerSession(ctl, "wire", SessionLimits{MaxArrayBytes: 4096})

	if _, err := s.NewArray(memmodel.ElemKind(200), 8); err == nil {
		t.Fatal("NewArray with an unknown element kind succeeded")
	}
	// n=1<<61 with an 8-byte kind wraps the byte size negative, which
	// would slip past the quota check and panic make().
	if _, err := s.NewArray(memmodel.Float64, 1<<61); err == nil {
		t.Fatal("NewArray with an int64-overflowing length succeeded")
	}
	if _, err := s.NewArray(memmodel.Float64, int64(MaxSessionArrayBytes/8)+1); err == nil {
		t.Fatal("NewArray above the absolute byte ceiling succeeded")
	}
	if _, err := s.NewArray(memmodel.Float32, 0); err == nil {
		t.Fatal("NewArray of zero length succeeded")
	}
	if st := s.Stats(); st.Arrays != 0 || st.ArrayBytes != 0 {
		t.Fatalf("rejected allocations left residue: %+v", st)
	}
	if _, err := s.NewArray(memmodel.Float32, 256); err != nil {
		t.Fatalf("valid NewArray after rejections: %v", err)
	}
}

// The controller itself guards the same admission edge (sessions are
// not the only callers).
func TestControllerNewArrayValidation(t *testing.T) {
	ctl := sessSystem(t)
	if _, err := ctl.NewArray(memmodel.ElemKind(-1), 8); err == nil {
		t.Fatal("controller NewArray with an invalid kind succeeded")
	}
	if _, err := ctl.NewArray(memmodel.Float64, math.MaxInt64/8+1); err == nil {
		t.Fatal("controller NewArray with an overflowing length succeeded")
	}
	if _, err := ctl.NewArray(memmodel.Float64, -1); err == nil {
		t.Fatal("controller NewArray with a negative length succeeded")
	}
}

// chainResult runs a fixed CE chain in a session and returns its final
// array contents.
func chainResult(s *ControllerSession) (*kernels.Buffer, error) {
	const n = 64
	nArg := ScalarRef(float64(n))
	a, err := s.NewArray(memmodel.Float32, n)
	if err != nil {
		return nil, err
	}
	b, err := s.NewArray(memmodel.Float32, n)
	if err != nil {
		return nil, err
	}
	init := kernels.NewBuffer(memmodel.Float32, n)
	for i := 0; i < n; i++ {
		init.Set(i, float64(i%9)-4)
	}
	if _, err := s.HostWrite(a, init); err != nil {
		return nil, err
	}
	if _, err := s.HostWrite(b, init); err != nil {
		return nil, err
	}
	for i := 0; i < 8; i++ {
		if _, err := s.Submit(Invocation{Kernel: "axpy",
			Args: []ArgRef{ArrRef(a), ArrRef(b), ScalarRef(0.25), nArg}}); err != nil {
			return nil, err
		}
		if i%3 == 1 {
			if _, err := s.Submit(Invocation{Kernel: "relu",
				Args: []ArgRef{ArrRef(a), nArg}}); err != nil {
				return nil, err
			}
		}
	}
	got, _, err := s.HostRead(a)
	return got, err
}

// Closing one session frees its arrays and disturbs nothing of its
// neighbor's: the survivor's results stay bit-identical to a solo run.
func TestSessionCloseLeavesNeighborUndisturbed(t *testing.T) {
	want, err := chainResult(NewControllerSession(sessSystem(t), "solo", SessionLimits{}))
	if err != nil {
		t.Fatal(err)
	}

	ctl := sessSystem(t)
	victim := NewControllerSession(ctl, "victim", SessionLimits{})
	survivor := NewControllerSession(ctl, "survivor", SessionLimits{})

	done := make(chan error, 1)
	go func() {
		got, err := chainResult(survivor)
		if err == nil && got.MaxAbsDiff(want) != 0 {
			err = errors.New("survivor result diverged from solo run")
		}
		done <- err
	}()

	va, err := victim.NewArray(memmodel.Float32, 64)
	if err != nil {
		t.Fatal(err)
	}
	gid := victim.Array(va).ID
	init := kernels.NewBuffer(memmodel.Float32, 64)
	init.Fill(1)
	if _, err := victim.HostWrite(va, init); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := victim.Submit(Invocation{Kernel: "relu",
			Args: []ArgRef{ArrRef(va), ScalarRef(64)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := victim.Close(); err != nil {
		t.Fatal(err)
	}
	if ctl.Array(gid) != nil {
		t.Fatal("victim's array survived session close")
	}
	if _, err := victim.NewArray(memmodel.Float32, 8); err == nil {
		t.Fatal("NewArray on a closed session succeeded")
	}
	if err := victim.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The in-flight counter is released by per-CE watcher goroutines,
	// which can lag the final HostRead's drain.
	survivor.WaitIdle()
	if st := survivor.Stats(); st.Admitted == 0 || st.Aborted != 0 || st.Inflight != 0 {
		t.Fatalf("survivor stats off: %+v", st)
	}
}
