package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"grout/internal/dag"
	"grout/internal/sim"
)

// chromeEvent is one complete event ("ph":"X") in the Chrome trace-viewer
// JSON format (chrome://tracing, Perfetto).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeMeta names a process or thread in the viewer.
type chromeMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// WriteChromeTrace exports the controller's CE schedule as Chrome
// trace-viewer JSON: one process per node, CE intervals as complete
// events. Load the output in chrome://tracing or https://ui.perfetto.dev
// to inspect a placement visually.
func (c *Controller) WriteChromeTrace(w io.Writer) error {
	var events []any

	// Name the processes (one per node seen in the trace).
	nodes := map[int]bool{}
	for _, tr := range c.traces {
		nodes[int(tr.Node)] = true
	}
	ids := make([]int, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		name := "controller"
		if id > 0 {
			name = fmt.Sprintf("worker%d", id)
		}
		events = append(events, chromeMeta{
			Name: "process_name", Ph: "M", PID: id, TID: 0,
			Args: map[string]any{"name": name},
		})
	}

	for _, tr := range c.traces {
		dur := float64(tr.End-tr.Start) / 1e3
		if dur <= 0 {
			dur = 0.001 // zero-width events are invisible in the viewer
		}
		events = append(events, chromeEvent{
			Name: fmt.Sprintf("%s #%d", tr.Label, tr.CE),
			Cat:  "ce",
			Ph:   "X",
			TS:   float64(tr.Start) / 1e3,
			Dur:  dur,
			PID:  int(tr.Node),
			TID:  0,
			Args: map[string]string{
				"moved":          tr.MovedBytes.String(),
				"p2p":            fmt.Sprintf("%d", tr.P2PMoves),
				"sched_overhead": tr.SchedOverhd.String(),
			},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}

// WriteGantt renders the CE schedule as an ASCII Gantt chart, one row per
// node, time flowing left to right over the given width — the quick-look
// companion to WriteChromeTrace.
func (c *Controller) WriteGantt(w io.Writer, width int) error {
	if width < 20 {
		width = 80
	}
	if len(c.traces) == 0 {
		_, err := fmt.Fprintln(w, "(no CEs scheduled)")
		return err
	}
	horizon := c.elapsed
	if horizon <= 0 {
		horizon = 1
	}
	nodes := map[int]bool{}
	for _, tr := range c.traces {
		nodes[int(tr.Node)] = true
	}
	ids := make([]int, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	glyphs := "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	fmt.Fprintf(w, "schedule over %v (one column ~ %v)\n",
		horizon, horizon/sim.VirtualTime(width))
	for _, id := range ids {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, tr := range c.traces {
			if int(tr.Node) != id {
				continue
			}
			g := glyphs[int(tr.CE-1)%len(glyphs)]
			s := int(int64(tr.Start) * int64(width) / int64(horizon))
			e := int(int64(tr.End) * int64(width) / int64(horizon))
			if e <= s {
				e = s + 1
			}
			if e > width {
				e = width
			}
			for i := s; i < e; i++ {
				row[i] = g
			}
		}
		name := "controller"
		if id > 0 {
			name = fmt.Sprintf("worker%d", id)
		}
		fmt.Fprintf(w, "%-11s |%s|\n", name, row)
	}
	// Legend for the first few CEs.
	fmt.Fprint(w, "legend: ")
	max := len(c.traces)
	if max > 12 {
		max = 12
	}
	for i := 0; i < max; i++ {
		tr := c.traces[i]
		fmt.Fprintf(w, "%c=%s#%d ", glyphs[int(tr.CE-1)%len(glyphs)], tr.Label, tr.CE)
	}
	if len(c.traces) > max {
		fmt.Fprintf(w, "... (%d more)", len(c.traces)-max)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Describe writes a human-readable summary of the controller's state: the
// data-location registry, totals and failover status.
func (c *Controller) Describe(w io.Writer) {
	fmt.Fprintf(w, "GrOUT controller: %d CEs scheduled, makespan %v\n",
		len(c.traces), c.elapsed)
	fmt.Fprintf(w, "  policy %s; moved %v over the network (%d P2P); mean scheduling %v/CE\n",
		c.pol.Name(), c.movedBytes, c.p2pMoves, c.MeanSchedulingOverhead())
	if len(c.dead) > 0 {
		fmt.Fprintf(w, "  failovers: %d dead worker(s): %v\n", c.failovers, c.DeadWorkers())
	}
	ids := make([]dag.ArrayID, 0, len(c.arrays))
	for id := range c.arrays {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Fprintf(w, "  arrays (%d):\n", len(ids))
	for _, id := range ids {
		arr := c.arrays[id]
		locs := arr.Locations()
		sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })
		fmt.Fprintf(w, "    #%-4d %-8v %-10s valid on %v\n",
			id, arr.Bytes(), arr.Kind, locs)
	}
}
