package core

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"grout/internal/cluster"
	"grout/internal/dag"
	"grout/internal/grcuda"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/policy"
)

func TestBestSourcePrefersP2POverController(t *testing.T) {
	ctl, _ := newSystem(t, 2, policy.NewRoundRobin(), false)
	const n = int64(1 << 26)
	x, _ := ctl.NewArray(memmodel.Float32, n)
	// HostRead after a worker write leaves copies on worker1 AND the
	// controller; the next consumer on worker2 must pull P2P from
	// worker1, not from the controller (Algorithm 1's preference).
	if _, err := ctl.Launch(Invocation{Kernel: "fill",
		Args: []ArgRef{ArrRef(x.ID), ScalarRef(1), ScalarRef(float64(n))}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.HostRead(x.ID); err != nil {
		t.Fatal(err)
	}
	if !x.UpToDateOn(cluster.ControllerID) || !x.UpToDateOn(1) {
		t.Fatalf("setup: locations %v", x.Locations())
	}
	before := ctl.P2PMoves()
	if _, err := ctl.Launch(Invocation{Kernel: "relu",
		Args: []ArgRef{ArrRef(x.ID), ScalarRef(float64(n))}}); err != nil {
		t.Fatal(err)
	}
	if ctl.P2PMoves() != before+1 {
		t.Fatalf("consumer did not use P2P: %d -> %d", before, ctl.P2PMoves())
	}
}

// TestMinTransferTimeUsesInterconnectMatrix reproduces the §IV-D scenario
// the policy was designed for: heterogeneous links (VNIC SLAs). Data sits
// on two workers; a third runs the next CE. min-transfer-time must pick
// the source/destination combination behind the faster link.
func TestMinTransferTimeUsesInterconnectMatrix(t *testing.T) {
	spec := cluster.PaperSpec(3)
	// Worker1 -> worker3 is fast; worker2 -> worker3 is crippled;
	// links toward worker2 are also crippled so the data's home matters.
	spec.PairBW = map[[2]cluster.NodeID]float64{
		{1, 3}: 500e6,
		{2, 3}: 10e6,
		{1, 2}: 10e6,
		{3, 2}: 10e6,
		{2, 1}: 10e6,
		{3, 1}: 500e6,
	}
	clu := cluster.New(spec)
	fab := NewLocalFabric(clu, kernels.StdRegistry(), false)
	ctl := NewController(fab, policy.NewMinTransferTime(policy.Low), Options{})

	const n = int64(1 << 26)
	a, _ := ctl.NewArray(memmodel.Float32, n) // will live on worker1
	b, _ := ctl.NewArray(memmodel.Float32, n) // will live on worker2
	// Place a on worker1 and b on worker2 via explicit vector-step runs.
	ctl.SetPolicy(mustVS(t, []int{1}))
	if _, err := ctl.Launch(Invocation{Kernel: "fill",
		Args: []ArgRef{ArrRef(a.ID), ScalarRef(1), ScalarRef(float64(n))}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Launch(Invocation{Kernel: "fill",
		Args: []ArgRef{ArrRef(b.ID), ScalarRef(1), ScalarRef(float64(n))}}); err != nil {
		t.Fatal(err)
	}
	if !a.UpToDateOn(1) || !b.UpToDateOn(2) {
		t.Fatalf("setup: a on %v, b on %v", a.Locations(), b.Locations())
	}
	// A CE reading both: equal bytes everywhere, but pulling b over the
	// 10 MB/s links is far slower than pulling a over 500 MB/s — the
	// policy must choose worker2 (where b lives) or worker1? Transfer
	// times: to worker1: move b from w2 at 10MB/s (slow). To worker2:
	// move a from w1 at 10MB/s (slow). To worker3: a from w1 at 500MB/s +
	// b from w2 at 10MB/s (slow). Fastest total is worker1 vs worker2
	// tie... make it asymmetric: b is tiny, a is big.
	ctl.SetPolicy(policy.NewMinTransferTime(policy.Low))
	small, _ := ctl.NewArray(memmodel.Float32, 1024)
	if _, err := ctl.Launch(Invocation{Kernel: "copy",
		Args: []ArgRef{ArrRef(small.ID), ArrRef(a.ID), ScalarRef(1024)}}); err != nil {
		t.Fatal(err)
	}
	// copy reads a (big, on worker1): the cheapest node is worker1.
	tr := ctl.Traces()
	if got := tr[len(tr)-1].Node; got != 1 {
		t.Fatalf("min-transfer-time ignored the interconnect matrix: chose %v", got)
	}
}

func mustVS(t *testing.T, v []int) policy.Policy {
	t.Helper()
	p, err := policy.NewVectorStep(v)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestReadReplication(t *testing.T) {
	ctl, _ := newSystem(t, 3, policy.NewRoundRobin(), false)
	const n = int64(1 << 24)
	x, _ := ctl.NewArray(memmodel.Float32, n)
	out1, _ := ctl.NewArray(memmodel.Float32, n)
	out2, _ := ctl.NewArray(memmodel.Float32, n)
	out3, _ := ctl.NewArray(memmodel.Float32, n)
	if _, err := ctl.HostWrite(x.ID); err != nil {
		t.Fatal(err)
	}
	// Three readers round-robin across three workers: x replicates.
	for _, out := range []*GlobalArray{ctl.Array(out1.ID), ctl.Array(out2.ID), ctl.Array(out3.ID)} {
		if _, err := ctl.Launch(Invocation{Kernel: "copy",
			Args: []ArgRef{ArrRef(out.ID), ArrRef(x.ID), ScalarRef(float64(n))}}); err != nil {
			t.Fatal(err)
		}
	}
	if !(x.UpToDateOn(1) && x.UpToDateOn(2) && x.UpToDateOn(3)) {
		t.Fatalf("x not replicated to all readers: %v", x.Locations())
	}
	// A writer invalidates every replica but its own node.
	if _, err := ctl.Launch(Invocation{Kernel: "relu",
		Args: []ArgRef{ArrRef(x.ID), ScalarRef(float64(n))}}); err != nil {
		t.Fatal(err)
	}
	if len(x.Locations()) != 1 {
		t.Fatalf("write left stale replicas: %v", x.Locations())
	}
}

func TestTraceAccounting(t *testing.T) {
	ctl, _ := newSystem(t, 2, policy.NewRoundRobin(), false)
	const n = int64(1 << 26) // 256 MiB
	x, _ := ctl.NewArray(memmodel.Float32, n)
	if _, err := ctl.HostWrite(x.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Launch(Invocation{Kernel: "relu",
		Args: []ArgRef{ArrRef(x.ID), ScalarRef(float64(n))}}); err != nil {
		t.Fatal(err)
	}
	var kernelTrace *CETrace
	for i := range ctl.Traces() {
		if ctl.Traces()[i].Label == "relu" {
			kernelTrace = &ctl.Traces()[i]
		}
	}
	if kernelTrace == nil {
		t.Fatalf("kernel trace missing")
	}
	if kernelTrace.MovedBytes != 256*memmodel.MiB {
		t.Fatalf("trace moved = %v, want 256MiB", kernelTrace.MovedBytes)
	}
	if kernelTrace.P2PMoves != 0 {
		t.Fatalf("trace p2p = %d, want 0", kernelTrace.P2PMoves)
	}
}

func TestFabricErrorPaths(t *testing.T) {
	_, fab := newSystem(t, 1, policy.NewRoundRobin(), false)
	if err := fab.EnsureArray(9, grcuda.ArrayMeta{ID: 1, Kind: memmodel.Float32, Len: 4}); err == nil {
		t.Fatalf("EnsureArray on unknown worker succeeded")
	}
	if _, err := fab.MoveArray(1, 9, 1, 0, nil, nil); err == nil {
		t.Fatalf("MoveArray from unknown worker succeeded")
	}
	if _, err := fab.MoveArray(1, cluster.ControllerID, 9, 0, nil, nil); err == nil {
		t.Fatalf("MoveArray to unknown worker succeeded")
	}
	if _, err := fab.Launch(9, Invocation{Kernel: "relu"}, 0); err == nil {
		t.Fatalf("Launch on unknown worker succeeded")
	}
	if err := fab.FreeArray(9, 1); err == nil {
		t.Fatalf("FreeArray on unknown worker succeeded")
	}
	// Moving an array that was never ensured at the destination fails.
	if _, err := fab.MoveArray(42, cluster.ControllerID, 1, 0, nil, nil); err == nil {
		t.Fatalf("MoveArray of unknown array succeeded")
	}
	if err := fab.FreeArray(1, 42); err != nil {
		t.Fatalf("FreeArray of absent array should be a no-op: %v", err)
	}
	if fab.WorkerStats(9) != nil {
		t.Fatalf("stats of unknown worker non-nil")
	}
}

func TestBuildKernelThroughController(t *testing.T) {
	ctl, fab := newSystem(t, 2, policy.NewRoundRobin(), true)
	src := `
extern "C" __global__ void triple(float *x, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { x[i] = 3.0 * x[i]; }
}`
	def, err := ctl.BuildKernel(src, "pointer float, sint32")
	if err != nil {
		t.Fatal(err)
	}
	if def.Name != "triple" {
		t.Fatalf("def name = %q", def.Name)
	}
	// Compiling the same source again is idempotent.
	if _, err := ctl.BuildKernel(src, "pointer float, sint32"); err != nil {
		t.Fatalf("re-build failed: %v", err)
	}
	// The kernel executes on workers.
	x, _ := ctl.NewArray(memmodel.Float32, 8)
	for i := 0; i < 8; i++ {
		x.Buf.Set(i, float64(i))
	}
	if _, err := ctl.HostWrite(x.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Launch(Invocation{Kernel: "triple", Grid: 1, Block: 8,
		Args: []ArgRef{ArrRef(x.ID), ScalarRef(8)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.HostRead(x.ID); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if x.Buf.At(i) != 3*float64(i) {
			t.Fatalf("x[%d] = %v", i, x.Buf.At(i))
		}
	}
	// Garbage source fails cleanly.
	if _, err := ctl.BuildKernel("garbage(", ""); err == nil {
		t.Fatalf("garbage source accepted")
	}
	_ = fab
}

func TestWriteChromeTrace(t *testing.T) {
	ctl, _ := newSystem(t, 2, policy.NewRoundRobin(), false)
	const n = int64(1 << 20)
	x, _ := ctl.NewArray(memmodel.Float32, n)
	if _, err := ctl.Launch(Invocation{Kernel: "fill",
		Args: []ArgRef{ArrRef(x.ID), ScalarRef(1), ScalarRef(float64(n))}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.HostRead(x.ID); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ctl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var complete, meta int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
		case "M":
			meta++
		}
	}
	// fill + host-read CEs, plus process names for worker1 & controller.
	if complete != 2 || meta < 2 {
		t.Fatalf("trace events: %d complete, %d meta", complete, meta)
	}
}

// Property: arbitrary CE streams leave the data-location registry
// consistent — every array has at least one valid location, traces are
// well-formed, and the simulated cluster's page accounting holds.
func TestControllerRegistryInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pols := []policy.Policy{
			policy.NewRoundRobin(),
			policy.NewMinTransferSize(policy.Low),
			policy.NewMinTransferTime(policy.High),
			policy.NewUVMAware(policy.Medium, 48*memmodel.GiB),
		}
		ctl, fab := newSystem(t, 3, pols[rng.Intn(len(pols))], false)
		var ids []dag.ArrayID
		for i := 0; i < 5; i++ {
			arr, err := ctl.NewArray(memmodel.Float32, int64(rng.Intn(1<<22)+1))
			if err != nil {
				return false
			}
			ids = append(ids, arr.ID)
		}
		for op := 0; op < 40; op++ {
			id := ids[rng.Intn(len(ids))]
			n := float64(1024)
			var err error
			switch rng.Intn(5) {
			case 0:
				_, err = ctl.Launch(Invocation{Kernel: "fill",
					Args: []ArgRef{ArrRef(id), ScalarRef(1), ScalarRef(n)}})
			case 1:
				_, err = ctl.Launch(Invocation{Kernel: "relu",
					Args: []ArgRef{ArrRef(id), ScalarRef(n)}})
			case 2:
				other := ids[rng.Intn(len(ids))]
				if other == id {
					continue
				}
				_, err = ctl.Launch(Invocation{Kernel: "axpy",
					Args: []ArgRef{ArrRef(id), ArrRef(other), ScalarRef(2), ScalarRef(n)}})
			case 3:
				_, err = ctl.HostRead(id)
			case 4:
				_, err = ctl.HostWrite(id)
			}
			if err != nil {
				t.Logf("op %d failed: %v", op, err)
				return false
			}
		}
		// Registry invariants.
		for _, id := range ids {
			arr := ctl.Array(id)
			if len(arr.Locations()) == 0 {
				t.Logf("array %d has no valid location", id)
				return false
			}
		}
		// Trace invariants.
		for _, tr := range ctl.Traces() {
			if tr.End < tr.Start {
				return false
			}
		}
		// Simulated page accounting on every worker.
		for _, w := range fab.Workers() {
			if err := fab.Runtime(w).Node().CheckInvariants(); err != nil {
				t.Logf("worker %v: %v", w, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestGanttAndDescribe(t *testing.T) {
	ctl, _ := newSystem(t, 2, policy.NewRoundRobin(), false)
	const n = int64(1 << 24)
	x, _ := ctl.NewArray(memmodel.Float32, n)
	y, _ := ctl.NewArray(memmodel.Float32, n)
	for _, id := range []dag.ArrayID{x.ID, y.ID} {
		if _, err := ctl.Launch(Invocation{Kernel: "fill",
			Args: []ArgRef{ArrRef(id), ScalarRef(1), ScalarRef(float64(n))}}); err != nil {
			t.Fatal(err)
		}
	}
	var g bytes.Buffer
	if err := ctl.WriteGantt(&g, 60); err != nil {
		t.Fatal(err)
	}
	out := g.String()
	for _, want := range []string{"worker1", "worker2", "legend:", "fill#"} {
		if !strings.Contains(out, want) {
			t.Fatalf("gantt missing %q:\n%s", want, out)
		}
	}
	var d bytes.Buffer
	ctl.Describe(&d)
	for _, want := range []string{"2 CEs scheduled", "round-robin", "arrays (2)", "valid on"} {
		if !strings.Contains(d.String(), want) {
			t.Fatalf("describe missing %q:\n%s", want, d.String())
		}
	}
	// Empty controller edge case.
	empty, _ := newSystem(t, 1, policy.NewRoundRobin(), false)
	var e bytes.Buffer
	if err := empty.WriteGantt(&e, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.String(), "no CEs") {
		t.Fatalf("empty gantt output: %q", e.String())
	}
}
