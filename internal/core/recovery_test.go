package core

// Chaos-fabric scenario tests for lineage recovery, deadline/retry, and
// the failover accessors' concurrency (ISSUE 4). Every scenario runs a
// deterministic fault schedule against a numeric LocalFabric and checks
// results bit-for-bit against a fault-free run of the same workload.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"grout/internal/cluster"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/policy"
)

const recElems = 64

// chainWorkload submits fill(x,5) → relu×3(x) → fill(y,3) → axpy(y,x,2):
// with round-robin over two workers, x's committed version after the relu
// chain lives ONLY on worker 2, and the axpy lands there as its third
// launch. Returns the final x and y contents via HostRead.
func chainWorkload(t *testing.T, ctl *Controller) ([]float64, []float64) {
	t.Helper()
	x, err := ctl.NewArray(memmodel.Float32, recElems)
	if err != nil {
		t.Fatal(err)
	}
	y, err := ctl.NewArray(memmodel.Float32, recElems)
	if err != nil {
		t.Fatal(err)
	}
	n := ScalarRef(float64(recElems))
	launch := func(inv Invocation) {
		t.Helper()
		if _, err := ctl.Submit(inv); err != nil {
			t.Fatal(err)
		}
	}
	launch(Invocation{Kernel: "fill", Args: []ArgRef{ArrRef(x.ID), ScalarRef(5), n}})
	for i := 0; i < 3; i++ {
		launch(Invocation{Kernel: "relu", Args: []ArgRef{ArrRef(x.ID), n}})
	}
	launch(Invocation{Kernel: "fill", Args: []ArgRef{ArrRef(y.ID), ScalarRef(3), n}})
	launch(Invocation{Kernel: "axpy", Args: []ArgRef{ArrRef(y.ID), ArrRef(x.ID), ScalarRef(2), n}})
	if err := ctl.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.HostRead(x.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.HostRead(y.ID); err != nil {
		t.Fatal(err)
	}
	return snapshot(x.Buf), snapshot(y.Buf)
}

func snapshot(b *kernels.Buffer) []float64 {
	out := make([]float64, b.Len())
	for i := range out {
		out[i] = b.At(i)
	}
	return out
}

func sameValues(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s[%d] = %v, want %v (recovered run diverged)", name, i, got[i], want[i])
		}
	}
}

func numericFabric(workers int) *LocalFabric {
	return NewLocalFabric(cluster.New(cluster.PaperSpec(workers)), kernels.StdRegistry(), true)
}

// TestChaosKillLineageRecovery kills the sole holder of an intermediate
// (non-root) array version mid-run: worker 2 dies at its third launch,
// taking the only copy of x (produced there by the relu chain) with it.
// Lineage recovery must replay fill→relu×3 on the survivor and the run
// must finish bit-identical to the fault-free baseline, with zero
// ErrDataLost surfaced.
func TestChaosKillLineageRecovery(t *testing.T) {
	cleanCtl := NewController(numericFabric(2), policy.NewRoundRobin(), Options{Numeric: true})
	cleanX, cleanY := chainWorkload(t, cleanCtl)
	cleanCtl.Close()

	victim := cluster.NodeID(2)
	chaos := NewChaosFabric(numericFabric(2), ChaosOptions{
		KillAtLaunch: map[cluster.NodeID]int{victim: 3},
	})
	ctl := NewController(chaos, policy.NewRoundRobin(), Options{Numeric: true, Failover: true})
	defer ctl.Close()
	gotX, gotY := chainWorkload(t, ctl)

	sameValues(t, "x", gotX, cleanX)
	sameValues(t, "y", gotY, cleanY)
	if ctl.Failovers() < 1 {
		t.Fatalf("failovers = %d, want >= 1", ctl.Failovers())
	}
	if ctl.Recoveries() < 1 {
		t.Fatalf("recoveries = %d, want >= 1 (lineage replay should have run)", ctl.Recoveries())
	}
	if chaos.Injected() != 1 {
		t.Fatalf("injected faults = %d, want 1", chaos.Injected())
	}
	dead := ctl.DeadWorkers()
	if len(dead) != 1 || dead[0] != victim {
		t.Fatalf("dead workers = %v, want [%v]", dead, victim)
	}
}

// TestChaosKillRecoveryPipelined is the same scenario through the
// pipelined dispatch path, with a goroutine hammering the failover
// accessors while the failure unfolds — the -race companion for both the
// recovery machinery and the Failovers()/DeadWorkers() locking fix.
func TestChaosKillRecoveryPipelined(t *testing.T) {
	cleanCtl := NewController(numericFabric(2), policy.NewRoundRobin(), Options{Numeric: true, Pipeline: true})
	cleanX, cleanY := chainWorkload(t, cleanCtl)
	cleanCtl.Close()

	chaos := NewChaosFabric(numericFabric(2), ChaosOptions{
		KillAtLaunch: map[cluster.NodeID]int{2: 3},
	})
	ctl := NewController(chaos, policy.NewRoundRobin(), Options{Numeric: true, Pipeline: true, Failover: true})
	defer ctl.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Poll the failover accessors concurrently with markDead and the
		// recovery bookkeeping; the race detector owns the assertion.
		for {
			select {
			case <-stop:
				return
			default:
				_ = ctl.Failovers()
				_ = ctl.DeadWorkers()
				_ = ctl.Recoveries()
				_ = ctl.RecoveryTime()
			}
		}
	}()
	gotX, gotY := chainWorkload(t, ctl)
	close(stop)
	wg.Wait()

	sameValues(t, "x", gotX, cleanX)
	sameValues(t, "y", gotY, cleanY)
	if ctl.Failovers() < 1 || ctl.Recoveries() < 1 {
		t.Fatalf("failovers = %d recoveries = %d, want both >= 1",
			ctl.Failovers(), ctl.Recoveries())
	}
}

// TestChaosUnrecoverableRoot: when the lineage closure bottoms out in a
// host-written version the controller no longer holds, recovery must give
// up with ErrDataLost — and the rest of the cluster must stay usable.
func TestChaosUnrecoverableRoot(t *testing.T) {
	chaos := NewChaosFabric(numericFabric(2), ChaosOptions{
		KillAtLaunch: map[cluster.NodeID]int{1: 2},
	})
	ctl := NewController(chaos, policy.NewRoundRobin(), Options{Numeric: true, Failover: true})
	defer ctl.Close()

	x, err := ctl.NewArray(memmodel.Float32, recElems)
	if err != nil {
		t.Fatal(err)
	}
	y, err := ctl.NewArray(memmodel.Float32, recElems)
	if err != nil {
		t.Fatal(err)
	}
	z, err := ctl.NewArray(memmodel.Float32, recElems)
	if err != nil {
		t.Fatal(err)
	}
	n := ScalarRef(float64(recElems))
	for i := 0; i < recElems; i++ {
		x.Buf.Set(i, float64(-i))
	}
	if _, err := ctl.HostWrite(x.ID); err != nil {
		t.Fatal(err)
	}
	// y is derived from x's first host version on worker 1. A second
	// host write then overwrites the controller's buffer: y's lineage
	// root x@1 is now neither live anywhere nor host-held.
	if _, err := ctl.Launch(Invocation{Kernel: "axpy",
		Args: []ArgRef{ArrRef(y.ID), ArrRef(x.ID), ScalarRef(1), n}}); err != nil {
		t.Fatal(err)
	}
	x.Buf.Fill(1)
	if _, err := ctl.HostWrite(x.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Launch(Invocation{Kernel: "fill", Args: []ArgRef{ArrRef(z.ID), ScalarRef(3), n}}); err != nil {
		t.Fatal(err)
	}
	// Worker 1's second launch kills it; the write-only fill reroutes.
	if _, err := ctl.Launch(Invocation{Kernel: "fill", Args: []ArgRef{ArrRef(z.ID), ScalarRef(9), n}}); err != nil {
		t.Fatalf("write-only fill should survive the kill via reroute: %v", err)
	}
	// A reader of y cannot: its sole copy died with worker 1, and the
	// replay bottoms out in the superseded host root.
	_, err = ctl.Launch(Invocation{Kernel: "relu", Args: []ArgRef{ArrRef(y.ID), n}})
	if !errors.Is(err, ErrDataLost) {
		t.Fatalf("unrecoverable loss reported as %v, want ErrDataLost", err)
	}
	// The surviving worker's data is intact and readable.
	if _, err := ctl.HostRead(z.ID); err != nil {
		t.Fatal(err)
	}
	if z.Buf.At(0) != 9 {
		t.Fatalf("z[0] = %v, want 9", z.Buf.At(0))
	}
}

// TestChaosHostRootRecovered: a chain rooted in a host write is
// replayable as long as the controller's buffer still holds that
// version — the recovery plan re-ships it instead of bottoming out.
func TestChaosHostRootRecovered(t *testing.T) {
	chaos := NewChaosFabric(numericFabric(2), ChaosOptions{
		KillAtLaunch: map[cluster.NodeID]int{1: 2},
	})
	ctl := NewController(chaos, policy.NewRoundRobin(), Options{Numeric: true, Failover: true})
	defer ctl.Close()

	x, err := ctl.NewArray(memmodel.Float32, recElems)
	if err != nil {
		t.Fatal(err)
	}
	y, err := ctl.NewArray(memmodel.Float32, recElems)
	if err != nil {
		t.Fatal(err)
	}
	n := ScalarRef(float64(recElems))
	for i := 0; i < recElems; i++ {
		x.Buf.Set(i, float64(i%5)-2)
	}
	if _, err := ctl.HostWrite(x.ID); err != nil {
		t.Fatal(err)
	}
	// relu mutates x in place on worker 1: the committed version's only
	// lineage input is the host write, whose bytes the controller still
	// holds.
	if _, err := ctl.Launch(Invocation{Kernel: "relu", Args: []ArgRef{ArrRef(x.ID), n}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Launch(Invocation{Kernel: "fill", Args: []ArgRef{ArrRef(y.ID), ScalarRef(3), n}}); err != nil {
		t.Fatal(err)
	}
	// Worker 1's second launch kills it, taking x's only copy along.
	if _, err := ctl.Launch(Invocation{Kernel: "fill", Args: []ArgRef{ArrRef(y.ID), ScalarRef(9), n}}); err != nil {
		t.Fatalf("write-only fill should survive the kill via reroute: %v", err)
	}
	// The reader triggers recovery: re-ship the host root, replay the
	// relu on the survivor, then run.
	if _, err := ctl.Launch(Invocation{Kernel: "relu", Args: []ArgRef{ArrRef(x.ID), n}}); err != nil {
		t.Fatalf("host-rooted chain should recover: %v", err)
	}
	if _, err := ctl.HostRead(x.ID); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < recElems; i++ {
		want := float64(i%5) - 2
		if want < 0 {
			want = 0
		}
		if x.Buf.At(i) != want {
			t.Fatalf("x[%d] = %v, want %v", i, x.Buf.At(i), want)
		}
	}
}

// TestChaosHungWorkerWrittenOffWithinBudget: a worker that accepts calls
// but never answers must cost at most the deadline+retry budget, not hang
// the run. The chaos fabric models each call to the hung worker as eating
// the RPC deadline and returning ErrTimeout.
func TestChaosHungWorkerWrittenOffWithinBudget(t *testing.T) {
	const deadline = 15 * time.Millisecond
	victim := cluster.NodeID(2)
	chaos := NewChaosFabric(numericFabric(2), ChaosOptions{
		HangAtLaunch: map[cluster.NodeID]int{victim: 1},
		CallDeadline: deadline,
	})
	ctl := NewController(chaos, policy.NewRoundRobin(), Options{
		Numeric:  true,
		Failover: true,
		Retry:    RetryPolicy{Attempts: 2, Backoff: time.Millisecond},
	})
	defer ctl.Close()

	start := time.Now()
	cleanX, cleanY := chainWorkload(t, ctl)
	elapsed := time.Since(start)

	// Budget: 2 retries + first attempt eat one deadline each, the probe
	// one more, plus backoff — anything near a second means we hung.
	if budget := 100 * deadline; elapsed > budget {
		t.Fatalf("hung-worker run took %v, budget %v", elapsed, budget)
	}
	if ctl.Failovers() != 1 {
		t.Fatalf("failovers = %d, want 1", ctl.Failovers())
	}
	dead := ctl.DeadWorkers()
	if len(dead) != 1 || dead[0] != victim {
		t.Fatalf("dead workers = %v, want [%v]", dead, victim)
	}
	// And the values must match a clean run on fresh state.
	cleanCtl := NewController(numericFabric(2), policy.NewRoundRobin(), Options{Numeric: true})
	defer cleanCtl.Close()
	wantX, wantY := chainWorkload(t, cleanCtl)
	sameValues(t, "x", cleanX, wantX)
	sameValues(t, "y", cleanY, wantY)
}

// TestChaosTransientSeverRetried: a transfer severed mid-chunk is
// transient — the controller's retry/backoff must absorb it without
// writing any worker off.
func TestChaosTransientSeverRetried(t *testing.T) {
	chaos := NewChaosFabric(numericFabric(2), ChaosOptions{
		SeverMoves: []int{1},
	})
	ctl := NewController(chaos, policy.NewRoundRobin(), Options{
		Numeric:  true,
		Failover: true,
		Retry:    RetryPolicy{Attempts: 2, Backoff: time.Millisecond},
	})
	defer ctl.Close()
	gotX, gotY := chainWorkload(t, ctl)

	cleanCtl := NewController(numericFabric(2), policy.NewRoundRobin(), Options{Numeric: true})
	defer cleanCtl.Close()
	wantX, wantY := chainWorkload(t, cleanCtl)

	sameValues(t, "x", gotX, wantX)
	sameValues(t, "y", gotY, wantY)
	if ctl.Failovers() != 0 {
		t.Fatalf("failovers = %d, want 0 (sever is transient)", ctl.Failovers())
	}
	if chaos.Injected() != 1 {
		t.Fatalf("injected = %d, want 1", chaos.Injected())
	}
	if len(ctl.DeadWorkers()) != 0 {
		t.Fatalf("dead workers = %v, want none", ctl.DeadWorkers())
	}
}

// TestRetryPolicyDelay pins the backoff curve: exponential from Backoff,
// capped at MaxBackoff, jitter only subtracts.
func TestRetryPolicyDelay(t *testing.T) {
	p := RetryPolicy{Attempts: 5, Backoff: 10 * time.Millisecond, MaxBackoff: 40 * time.Millisecond}
	want := []time.Duration{10, 20, 40, 40, 40}
	for i, w := range want {
		if d := p.delay(i+1, nil); d != w*time.Millisecond {
			t.Fatalf("delay(%d) = %v, want %v", i+1, d, w*time.Millisecond)
		}
	}
	d := RetryPolicy{}.delay(1, nil)
	if d <= 0 {
		t.Fatalf("zero-value policy delay = %v, want positive default", d)
	}
}
