package core

// Fleet-elasticity tests: workers joining and retiring from a RUNNING
// controller. The contract under test is the one DESIGN.md §5.9 states:
// AddWorker makes a standby node schedulable for subsequent CEs,
// RetireWorker drains and MIGRATES sole copies instead of recomputing
// them (failover counter untouched), and a retire mid-workload is
// bit-identical to the static-fleet run.

import (
	"testing"
	"time"

	"grout/internal/cluster"
	"grout/internal/dag"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/policy"
)

// replicaHolders counts, per worker, how many arrays hold an up-to-date
// replica there.
func replicaHolders(ctl *Controller) map[cluster.NodeID]int {
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	holders := map[cluster.NodeID]int{}
	for _, arr := range ctl.arrays {
		for w := range arr.upToDate {
			holders[w]++
		}
	}
	return holders
}

// elasticLaunch allocates a fresh array, writes a recognizable pattern
// and runs one relu over it, so the array ends up placed somewhere.
func elasticLaunch(t *testing.T, s *ControllerSession, bias float64) dag.ArrayID {
	t.Helper()
	const n = 32
	a, err := s.NewArray(memmodel.Float32, n)
	if err != nil {
		t.Fatal(err)
	}
	buf := kernels.NewBuffer(memmodel.Float32, n)
	for i := 0; i < n; i++ {
		buf.Set(i, float64(i%7)-3+bias)
	}
	if _, err := s.HostWrite(a, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(Invocation{Kernel: "relu",
		Args: []ArgRef{ArrRef(a), ScalarRef(float64(n))}}); err != nil {
		t.Fatal(err)
	}
	return a
}

// A controller provisioned over a 4-worker fabric but rostered to 2
// schedules only on its members; AddWorker activates a standby node for
// every CE admitted after the call.
func TestElasticAddWorkerGrowsPlacement(t *testing.T) {
	clu := cluster.New(cluster.PaperSpec(4))
	fab := NewLocalFabric(clu, kernels.StdRegistry(), true)
	ctl := NewController(fab, policy.NewRoundRobin(), Options{
		Numeric:  true,
		Pipeline: true,
		Workers:  []cluster.NodeID{1, 2},
	})
	t.Cleanup(func() { ctl.Close() })
	s := NewControllerSession(ctl, "elastic-add", SessionLimits{})

	if m := ctl.Members(); len(m) != 2 {
		t.Fatalf("rostered members = %v, want the 2-node roster", m)
	}
	for i := 0; i < 6; i++ {
		elasticLaunch(t, s, float64(i))
	}
	if err := ctl.Drain(); err != nil {
		t.Fatal(err)
	}
	holders := replicaHolders(ctl)
	if holders[3] != 0 || holders[4] != 0 {
		t.Fatalf("standby workers hold replicas before AddWorker: %v", holders)
	}

	// Guard rails: double-add, fleet-foreign add.
	if err := ctl.AddWorker(3); err != nil {
		t.Fatalf("AddWorker(3): %v", err)
	}
	if err := ctl.AddWorker(3); err == nil {
		t.Fatal("adding a current member succeeded")
	}
	if err := ctl.AddWorker(9); err == nil {
		t.Fatal("adding a worker outside the provisioned fleet succeeded")
	}
	if m := ctl.Members(); len(m) != 3 {
		t.Fatalf("members after AddWorker = %v, want 3", m)
	}

	for i := 0; i < 6; i++ {
		elasticLaunch(t, s, float64(10+i))
	}
	if err := ctl.Drain(); err != nil {
		t.Fatal(err)
	}
	if holders := replicaHolders(ctl); holders[3] == 0 {
		t.Fatalf("joined worker 3 was never scheduled: %v", holders)
	}
}

// Retirement migrates every sole copy to a survivor, leaves the data
// readable and correct, never touches the failover counter, and returns
// the worker to the standby pool (AddWorker re-activates it).
func TestElasticRetireWorkerMigratesSoleCopies(t *testing.T) {
	ctl := sessSystem(t)
	s := NewControllerSession(ctl, "elastic-retire", SessionLimits{})

	const arrays = 8
	ids := make([]dag.ArrayID, arrays)
	for i := range ids {
		ids[i] = elasticLaunch(t, s, float64(i))
	}
	if err := ctl.Drain(); err != nil {
		t.Fatal(err)
	}
	// Round-robin over 4 workers spreads the 8 sole copies; worker 2 must
	// hold some, or the retire below would migrate nothing.
	if holders := replicaHolders(ctl); holders[2] == 0 {
		t.Fatalf("worker 2 holds nothing; placement changed under the test: %v", holders)
	}

	if err := ctl.RetireWorker(2); err != nil {
		t.Fatal(err)
	}
	if holders := replicaHolders(ctl); holders[2] != 0 {
		t.Fatalf("retired worker still holds replicas: %v", holders)
	}
	if m := ctl.Members(); len(m) != 3 {
		t.Fatalf("members after retire = %v, want 3", m)
	}
	if f := ctl.Failovers(); f != 0 {
		t.Fatalf("retirement bumped the failover counter to %d; it is not a death", f)
	}
	// The migrated data is intact: relu of the known pattern.
	for i, id := range ids {
		got, _, err := s.HostRead(id)
		if err != nil {
			t.Fatalf("array %d after retire: %v", i, err)
		}
		for j := 0; j < 32; j++ {
			want := float64(j%7) - 3 + float64(i)
			if want < 0 {
				want = 0
			}
			if got.At(j) != want {
				t.Fatalf("array %d[%d] = %g after retire, want %g", i, j, got.At(j), want)
			}
		}
	}

	// Guard rails and the standby round trip.
	if err := ctl.RetireWorker(2); err == nil {
		t.Fatal("retiring a non-member succeeded")
	}
	if err := ctl.AddWorker(2); err != nil {
		t.Fatalf("re-activating the retired worker: %v", err)
	}
	for _, w := range []cluster.NodeID{1, 3, 4} {
		if err := ctl.RetireWorker(w); err != nil {
			t.Fatalf("retire %v: %v", w, err)
		}
	}
	if err := ctl.RetireWorker(2); err == nil {
		t.Fatal("retiring the last live member succeeded")
	}
}

// The acceptance gate: a worker retired mid-workload yields results
// bit-identical to the static-fleet run. Kernels are element-wise
// deterministic, so migration (unlike recomputation) must not perturb a
// single bit.
func TestElasticRetireMidWorkloadBitIdentical(t *testing.T) {
	const n, rounds = 64, 12
	run := func(retire bool) *kernels.Buffer {
		clu := cluster.New(cluster.PaperSpec(4))
		fab := NewLocalFabric(clu, kernels.StdRegistry(), true)
		ctl := NewController(fab, policy.NewRoundRobin(), Options{Numeric: true, Pipeline: true})
		defer ctl.Close()
		s := NewControllerSession(ctl, "mid", SessionLimits{})
		a, err := s.NewArray(memmodel.Float32, n)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.NewArray(memmodel.Float32, n)
		if err != nil {
			t.Fatal(err)
		}
		init := kernels.NewBuffer(memmodel.Float32, n)
		for i := 0; i < n; i++ {
			init.Set(i, float64(i%11)-5)
		}
		if _, err := s.HostWrite(a, init); err != nil {
			t.Fatal(err)
		}
		if _, err := s.HostWrite(b, init); err != nil {
			t.Fatal(err)
		}
		nArg := ScalarRef(float64(n))
		for i := 0; i < rounds; i++ {
			if retire && i == rounds/2 {
				if err := ctl.RetireWorker(2); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := s.Submit(Invocation{Kernel: "axpy",
				Args: []ArgRef{ArrRef(a), ArrRef(b), ScalarRef(0.5), nArg}}); err != nil {
				t.Fatal(err)
			}
			if i%3 == 1 {
				if _, err := s.Submit(Invocation{Kernel: "relu",
					Args: []ArgRef{ArrRef(a), nArg}}); err != nil {
					t.Fatal(err)
				}
			}
		}
		got, _, err := s.HostRead(a)
		if err != nil {
			t.Fatal(err)
		}
		if retire && ctl.Failovers() != 0 {
			t.Fatalf("mid-workload retire fell back to failover (%d)", ctl.Failovers())
		}
		return got
	}
	want := run(false)
	got := run(true)
	if d := got.MaxAbsDiff(want); d != 0 {
		t.Fatalf("retire-mid-workload run diverged from the static fleet by %g", d)
	}
}

// Regression: AdmissionWaitP99 used to freeze over the first
// admSampleCap waits — a long-lived tenant whose early queue was empty
// reported a rosy p99 forever, no matter how bad admission later got.
// The reservoir keeps sampling uniformly, so late waits must dominate
// the quantile once they dominate the stream; and it is seeded from the
// session name, so same-named sessions report bit-identical stats.
func TestSessionAdmissionWaitReservoirTracksLateWaits(t *testing.T) {
	ctl := sessSystem(t)
	s := NewControllerSession(ctl, "reservoir", SessionLimits{})
	const early, late = admSampleCap, 3 * admSampleCap
	for i := 0; i < early; i++ {
		s.NoteAdmissionWait(time.Microsecond)
	}
	if p99 := s.Stats().AdmissionWaitP99; p99 != time.Microsecond {
		t.Fatalf("p99 over uniform early waits = %v, want 1µs", p99)
	}
	for i := 0; i < late; i++ {
		s.NoteAdmissionWait(time.Millisecond)
	}
	// Millisecond waits are now 3/4 of the stream, so a uniform sample
	// fills ~75% of the reservoir with them and the 99th percentile is a
	// late wait. The frozen-cap bug reported 1µs here forever.
	if p99 := s.Stats().AdmissionWaitP99; p99 != time.Millisecond {
		t.Fatalf("p99 after late waits dominate = %v, want 1ms", p99)
	}
	s2 := NewControllerSession(ctl, "reservoir", SessionLimits{})
	for i := 0; i < early; i++ {
		s2.NoteAdmissionWait(time.Microsecond)
	}
	for i := 0; i < late; i++ {
		s2.NoteAdmissionWait(time.Millisecond)
	}
	if a, b := s.Stats().AdmissionWaitP99, s2.Stats().AdmissionWaitP99; a != b {
		t.Fatalf("same-named sessions diverged: %v vs %v", a, b)
	}
}
