package core

// Fleet elasticity: workers join and leave a RUNNING controller.
//
// The fabric's worker set stays fixed at construction (the cluster's
// bandwidth matrix and the pipeline's per-worker dispatchers are sized
// then), so elasticity is a membership overlay: Options.Workers seeds a
// roster of active members, the rest of the fleet idles as a standby
// pool, and AddWorker/RetireWorker move nodes between the two while
// CEs stream.
//
// Retirement is deliberately NOT death. markDead (failover) forgets a
// worker's replicas and leans on lineage to recompute whatever is lost;
// retirement instead drains the pipeline and MIGRATES every sole-copy
// array to a surviving member first — reusing the fabric move path the
// lineage replayer uses (replayStep's worker→worker MoveArray idiom) —
// and only falls back to lineage recovery when a migration move fails.
// The failover counter is untouched and nothing is recomputed in the
// happy path, so a retire mid-workload yields bit-identical results to
// a static-fleet run.

import (
	"fmt"
	"sort"

	"grout/internal/cluster"
	"grout/internal/dag"
	"grout/internal/sim"
)

// Members reports the controller's current scheduling membership: the
// roster (or the whole fabric fleet when no roster was ever set) minus
// workers written off by failover.
func (c *Controller) Members() []cluster.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]cluster.NodeID(nil), c.aliveWorkers()...)
}

// memberOfFleet reports whether the fabric was provisioned with w.
func (c *Controller) memberOfFleet(w cluster.NodeID) bool {
	for _, n := range c.fabric.Workers() {
		if n == w {
			return true
		}
	}
	return false
}

// AddWorker activates a standby worker on a running controller: it
// becomes a scheduling candidate for every CE admitted after the call.
// The worker must belong to the fabric's provisioned fleet (the standby
// pool), be healthy, not be a current member, and not have been written
// off by failover — a written-off worker's replicas were already
// forgotten, so letting it rejoin silently would resurrect stale data.
func (c *Controller) AddWorker(w cluster.NodeID) error {
	if !c.memberOfFleet(w) {
		return fmt.Errorf("core: add worker %v: not in the provisioned fleet", w)
	}
	if !c.fabric.Healthy(w) {
		return fmt.Errorf("core: add worker %v: not healthy", w)
	}
	c.subMu.Lock()
	defer c.subMu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead[w] {
		return fmt.Errorf("core: add worker %v: written off by failover; cannot rejoin", w)
	}
	if c.roster == nil {
		return fmt.Errorf("core: add worker %v: already a member (no roster set; the whole fleet is active)", w)
	}
	if c.roster[w] {
		return fmt.Errorf("core: add worker %v: already a member", w)
	}
	c.roster[w] = true
	// Membership edits invalidate the same caches a death does: the
	// alive list and every per-array transfer-estimate vector.
	c.deadGen++
	c.alive = nil
	c.cond.Broadcast()
	return nil
}

// RetireWorker removes a member from a running controller gracefully:
// it drains the dispatch pipeline, migrates every array whose only
// valid copy lives on w to a surviving member (lineage recovery is the
// fallback when a move fails), frees w's replicas, and drops w from the
// roster. Unlike a failover death the worker's data is preserved by
// migration, the failover counter is untouched, and w returns to the
// standby pool — AddWorker can re-activate it later.
func (c *Controller) RetireWorker(w cluster.NodeID) error {
	c.subMu.Lock()
	defer c.subMu.Unlock()
	// Drain first: after this no CE is mid-dispatch, so the registry is
	// quiescent and member == upToDate for every array w touches.
	if err := c.drainLocked(); err != nil {
		return fmt.Errorf("core: retire worker %v: drain: %w", w, err)
	}

	c.mu.Lock()
	if c.dead[w] {
		c.mu.Unlock()
		return fmt.Errorf("core: retire worker %v: already written off by failover", w)
	}
	if c.roster == nil {
		// First elastic operation on a full-fleet controller: materialize
		// the implicit roster so membership can shrink.
		c.roster = make(map[cluster.NodeID]bool)
		for _, n := range c.fabric.Workers() {
			if !c.dead[n] {
				c.roster[n] = true
			}
		}
	}
	if !c.roster[w] {
		c.mu.Unlock()
		return fmt.Errorf("core: retire worker %v: not a member", w)
	}
	var survivors []cluster.NodeID
	for _, n := range c.aliveWorkers() {
		if n != w {
			survivors = append(survivors, n)
		}
	}
	if len(survivors) == 0 {
		c.mu.Unlock()
		return fmt.Errorf("core: retire worker %v: it is the last live member", w)
	}
	sort.Slice(survivors, func(i, j int) bool { return survivors[i] < survivors[j] })

	// Plan the evacuation: every array with a replica on w needs that
	// replica freed; arrays where it is the ONLY valid copy need it
	// migrated to a survivor first. Iterate in ID order so destination
	// choice (round-robin over survivors) is deterministic.
	ids := make([]dag.ArrayID, 0, len(c.arrays))
	for id := range c.arrays {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	type evac struct {
		arr   *GlobalArray
		dst   cluster.NodeID // destination for a sole-copy migration
		ready sim.VirtualTime
		sole  bool
	}
	var plan []evac
	rr := 0
	for _, id := range ids {
		arr := c.arrays[id]
		at, held := arr.upToDate[w]
		if !held {
			continue
		}
		e := evac{arr: arr, ready: at, sole: true}
		for n := range arr.upToDate {
			if n != w {
				e.sole = false
				break
			}
		}
		if e.sole {
			e.dst = survivors[rr%len(survivors)]
			rr++
		}
		plan = append(plan, e)
	}
	c.mu.Unlock()

	// Execute the moves off the controller locks (fabric calls may be
	// slow RPCs). subMu is still held, so no submission races us, and
	// the drained pipeline means no dispatcher does either. This is the
	// lineage replayer's worker→worker move idiom: nil buffers, the
	// fabric ships P2P from the source runtime.
	var lost []dag.ArrayID
	for _, e := range plan {
		if !e.sole {
			continue
		}
		arr := e.arr
		err := c.fabric.EnsureArray(e.dst, arr.ArrayMeta)
		var at sim.VirtualTime
		if err == nil {
			at, err = c.fabric.MoveArray(arr.ID, w, e.dst, e.ready, nil, nil)
		}
		c.mu.Lock()
		if err != nil {
			// Migration failed: treat w's copy as lost and let lineage
			// recompute the array on the survivors below.
			delete(arr.upToDate, w)
			delete(arr.member, w)
			if int(w) < len(arr.mask) {
				arr.mask[w] = false
			}
			arr.gen++
			lost = append(lost, arr.ID)
			c.mu.Unlock()
			continue
		}
		arr.upToDate[e.dst] = at
		if _, ok := arr.member[e.dst]; !ok {
			arr.member[e.dst] = struct{}{}
			arr.maskSet(e.dst)
			arr.gen++
		}
		if at > c.elapsed {
			c.elapsed = at
		}
		c.movedBytes += arr.size
		c.p2pMoves++
		c.mu.Unlock()
	}

	// Drop w's replicas from the registry and the roster before any
	// lineage fallback runs, so recovery can neither read from nor place
	// onto the retiring worker.
	c.mu.Lock()
	for _, e := range plan {
		arr := e.arr
		delete(arr.upToDate, w)
		if _, ok := arr.member[w]; ok {
			delete(arr.member, w)
			if int(w) < len(arr.mask) {
				arr.mask[w] = false
			}
			arr.gen++
		}
	}
	delete(c.roster, w)
	c.deadGen++
	c.alive = nil
	c.cond.Broadcast()
	c.mu.Unlock()

	if len(lost) > 0 {
		if err := c.recoverArrays(lost); err != nil {
			return fmt.Errorf("core: retire worker %v: migration failed and lineage recovery could not recompute: %w", w, err)
		}
	}

	// Best-effort: release the retired worker's replicas so the standby
	// node holds no framework memory. Foreign lease replicas other
	// shards exported onto w are NOT ours to free — they stay resident,
	// which is what keeps cross-shard lineage roots on a retired node
	// valid (DESIGN.md §5.9).
	for _, e := range plan {
		_ = c.fabric.FreeArray(w, e.arr.ID)
	}
	return nil
}
