// Package memmodel defines the memory-footprint vocabulary shared by the
// UVM simulator, the kernel cost model and the scheduler: byte sizes, page
// ranges and kernel access patterns.
//
// The simulator manages memory at UVM migration granularity. Real UVM uses
// 64 KiB basic blocks coalesced up to 2 MiB; we model the coalesced 2 MiB
// granule directly, which keeps page counts tractable at the paper's
// 160 GiB scale (81,920 pages) while preserving the thrashing dynamics.
package memmodel

import (
	"fmt"
	"strconv"
	"strings"
)

// Bytes is a size in bytes.
type Bytes int64

// Common size units.
const (
	KiB Bytes = 1 << 10
	MiB Bytes = 1 << 20
	GiB Bytes = 1 << 30
)

// PageSize is the UVM migration granule modelled by the simulator.
const PageSize = 2 * MiB

// String renders the size with a binary-unit suffix.
func (b Bytes) String() string {
	switch {
	case b >= GiB && b%GiB == 0:
		return fmt.Sprintf("%dGiB", b/GiB)
	case b >= MiB && b%MiB == 0:
		return fmt.Sprintf("%dMiB", b/MiB)
	case b >= KiB && b%KiB == 0:
		return fmt.Sprintf("%dKiB", b/KiB)
	default:
		return fmt.Sprintf("%dB", int64(b))
	}
}

// GiBf reports the size in floating-point GiB.
func (b Bytes) GiBf() float64 { return float64(b) / float64(GiB) }

// Pages reports how many whole pages are needed to hold b bytes.
func (b Bytes) Pages() int64 {
	if b <= 0 {
		return 0
	}
	return int64((b + PageSize - 1) / PageSize)
}

// PageID identifies one page within an allocation (zero-based).
type PageID int64

// PageRange is a half-open range [First, First+Count) of pages within a
// single allocation.
type PageRange struct {
	First PageID
	Count int64
}

// Contains reports whether p falls inside the range.
func (r PageRange) Contains(p PageID) bool {
	return p >= r.First && p < r.First+PageID(r.Count)
}

// Bytes reports the byte size covered by the range.
func (r PageRange) Bytes() Bytes { return Bytes(r.Count) * PageSize }

// Pattern classifies how a kernel walks an array. The pattern drives both
// which pages are touched and how efficiently the UVM fault engine can
// batch the resulting migrations.
type Pattern int

const (
	// Sequential: a dense streaming walk; faults batch perfectly and the
	// prefetcher tracks it well.
	Sequential Pattern = iota
	// Strided: regular but non-unit stride; faults batch moderately.
	Strided
	// Random: data-dependent accesses (hash joins, sparse gathers);
	// faults arrive one page at a time and defeat the prefetcher.
	Random
	// Broadcast: every thread reads the same small region (e.g. the dense
	// vector in MV); the region is hot on every device that runs a kernel
	// touching it — the canonical FALL (Frequently Accessed, Low Locality)
	// page situation from Shao et al.
	Broadcast
)

var patternNames = [...]string{"sequential", "strided", "random", "broadcast"}

func (p Pattern) String() string {
	if p < 0 || int(p) >= len(patternNames) {
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
	return patternNames[p]
}

// BatchFactor reports how many pages the fault engine can service per
// fault-handling round trip under this pattern. Sequential misses coalesce
// into large migrations; random misses pay a full round trip per page.
func (p Pattern) BatchFactor() int64 {
	switch p {
	case Sequential:
		return 64
	case Strided:
		return 16
	case Broadcast:
		return 8
	default: // Random
		return 1
	}
}

// Access describes how a kernel uses one of its array parameters.
type Access struct {
	// Param is the parameter index in the kernel signature.
	Param int
	// Mode is read, write or read-write.
	Mode AccessMode
	// Pattern is the page-visit order.
	Pattern Pattern
	// Fraction of the array actually touched (0,1]. 1 means the whole
	// array. A row-partitioned kernel that reads 1/N of a matrix uses 1/N.
	Fraction float64
	// Passes is how many times the kernel sweeps the touched region.
	// Iterative kernels (CG's matrix) revisit pages; under eviction
	// pressure every pass re-faults.
	Passes int
}

// AccessMode distinguishes reads from writes; writes dirty pages and force
// write-backs on eviction.
type AccessMode int

const (
	Read AccessMode = iota
	Write
	ReadWrite
)

var modeNames = [...]string{"r", "w", "rw"}

func (m AccessMode) String() string {
	if m < 0 || int(m) >= len(modeNames) {
		return fmt.Sprintf("AccessMode(%d)", int(m))
	}
	return modeNames[m]
}

// Reads reports whether the access includes reading.
func (m AccessMode) Reads() bool { return m == Read || m == ReadWrite }

// Writes reports whether the access includes writing.
func (m AccessMode) Writes() bool { return m == Write || m == ReadWrite }

// Normalize clamps the access into a valid state: Fraction into (0,1],
// Passes to at least 1.
func (a Access) Normalize() Access {
	if a.Fraction <= 0 || a.Fraction > 1 {
		a.Fraction = 1
	}
	if a.Passes < 1 {
		a.Passes = 1
	}
	return a
}

// TouchedPages reports how many pages of an allocation of the given size
// this access visits per pass.
func (a Access) TouchedPages(size Bytes) int64 {
	a = a.Normalize()
	n := int64(float64(size.Pages()) * a.Fraction)
	if n < 1 && size > 0 {
		n = 1
	}
	return n
}

// ElemKind is the element type of a device array.
type ElemKind int

const (
	Float32 ElemKind = iota
	Float64
	Int32
	Int64
)

var kindNames = [...]string{"float", "double", "int", "long"}
var kindSizes = [...]Bytes{4, 8, 4, 8}

func (k ElemKind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("ElemKind(%d)", int(k))
	}
	return kindNames[k]
}

// Size reports the element size in bytes.
func (k ElemKind) Size() Bytes {
	if k < 0 || int(k) >= len(kindSizes) {
		return 4
	}
	return kindSizes[k]
}

// Valid reports whether k is one of the defined element kinds. Kinds
// decoded off the wire must be checked before they reach an allocator.
func (k ElemKind) Valid() bool {
	return k >= 0 && int(k) < len(kindSizes)
}

// KindFromName parses a mini-CUDA type name into an ElemKind.
func KindFromName(name string) (ElemKind, bool) {
	switch name {
	case "float", "float32":
		return Float32, true
	case "double", "float64":
		return Float64, true
	case "int", "int32":
		return Int32, true
	case "long", "int64", "int64_t", "long long":
		return Int64, true
	}
	return 0, false
}

// ParseBytes parses a human-readable size: "96GiB", "512MiB", "64KiB",
// "4G" (binary GiB shorthand), "1024" (bytes). Case-insensitive suffixes.
func ParseBytes(s string) (Bytes, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("memmodel: empty size")
	}
	mult := Bytes(1)
	lower := strings.ToLower(s)
	for _, suf := range []struct {
		name string
		m    Bytes
	}{
		{"gib", GiB}, {"mib", MiB}, {"kib", KiB},
		{"gb", GiB}, {"mb", MiB}, {"kb", KiB},
		{"g", GiB}, {"m", MiB}, {"k", KiB}, {"b", 1},
	} {
		if strings.HasSuffix(lower, suf.name) {
			mult = suf.m
			lower = strings.TrimSpace(strings.TrimSuffix(lower, suf.name))
			break
		}
	}
	v, err := strconv.ParseFloat(lower, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("memmodel: bad size %q", s)
	}
	return Bytes(v * float64(mult)), nil
}
