package memmodel

import (
	"testing"
	"testing/quick"
)

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{4 * GiB, "4GiB"},
		{2 * MiB, "2MiB"},
		{64 * KiB, "64KiB"},
		{1000, "1000B"},
		{3*GiB + 5*MiB, "3077MiB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestBytesPages(t *testing.T) {
	cases := []struct {
		in   Bytes
		want int64
	}{
		{0, 0},
		{-5, 0},
		{1, 1},
		{PageSize, 1},
		{PageSize + 1, 2},
		{160 * GiB, 81920},
	}
	for _, c := range cases {
		if got := c.in.Pages(); got != c.want {
			t.Errorf("Bytes(%d).Pages() = %d, want %d", int64(c.in), got, c.want)
		}
	}
}

func TestBytesGiBf(t *testing.T) {
	if got := (32 * GiB).GiBf(); got != 32.0 {
		t.Fatalf("GiBf = %v, want 32", got)
	}
}

func TestPageRange(t *testing.T) {
	r := PageRange{First: 10, Count: 5}
	if !r.Contains(10) || !r.Contains(14) {
		t.Fatalf("range should contain endpoints")
	}
	if r.Contains(9) || r.Contains(15) {
		t.Fatalf("range contains out-of-range page")
	}
	if r.Bytes() != 5*PageSize {
		t.Fatalf("range bytes = %v", r.Bytes())
	}
}

func TestPatternBatchFactors(t *testing.T) {
	// The physical story: sequential misses coalesce best, random worst.
	if !(Sequential.BatchFactor() > Strided.BatchFactor() &&
		Strided.BatchFactor() > Broadcast.BatchFactor() &&
		Broadcast.BatchFactor() > Random.BatchFactor()) {
		t.Fatalf("batch factors not strictly ordered: %d %d %d %d",
			Sequential.BatchFactor(), Strided.BatchFactor(),
			Broadcast.BatchFactor(), Random.BatchFactor())
	}
	if Random.BatchFactor() != 1 {
		t.Fatalf("random batch factor must be 1")
	}
}

func TestPatternString(t *testing.T) {
	for p, want := range map[Pattern]string{
		Sequential: "sequential", Strided: "strided",
		Random: "random", Broadcast: "broadcast",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
	if Pattern(99).String() != "Pattern(99)" {
		t.Errorf("out-of-range pattern string = %q", Pattern(99).String())
	}
}

func TestAccessModes(t *testing.T) {
	if !Read.Reads() || Read.Writes() {
		t.Fatalf("Read mode flags wrong")
	}
	if Write.Reads() || !Write.Writes() {
		t.Fatalf("Write mode flags wrong")
	}
	if !ReadWrite.Reads() || !ReadWrite.Writes() {
		t.Fatalf("ReadWrite mode flags wrong")
	}
	if Read.String() != "r" || Write.String() != "w" || ReadWrite.String() != "rw" {
		t.Fatalf("mode strings wrong")
	}
}

func TestAccessNormalize(t *testing.T) {
	a := Access{Fraction: -1, Passes: 0}.Normalize()
	if a.Fraction != 1 || a.Passes != 1 {
		t.Fatalf("normalize = %+v", a)
	}
	b := Access{Fraction: 0.25, Passes: 3}.Normalize()
	if b.Fraction != 0.25 || b.Passes != 3 {
		t.Fatalf("normalize changed valid access: %+v", b)
	}
}

func TestAccessTouchedPages(t *testing.T) {
	a := Access{Fraction: 0.5, Passes: 1}
	if got := a.TouchedPages(100 * PageSize); got != 50 {
		t.Fatalf("touched = %d, want 50", got)
	}
	// Tiny arrays still touch at least one page.
	tiny := Access{Fraction: 0.001}
	if got := tiny.TouchedPages(PageSize); got != 1 {
		t.Fatalf("tiny touched = %d, want 1", got)
	}
	if got := a.TouchedPages(0); got != 0 {
		t.Fatalf("zero-size touched = %d, want 0", got)
	}
}

// Property: TouchedPages never exceeds the allocation's page count and is
// monotone in Fraction.
func TestTouchedPagesProperty(t *testing.T) {
	f := func(sizeGiB uint8, fracPct uint8) bool {
		size := Bytes(int64(sizeGiB%64)+1) * GiB
		frac := float64(fracPct%100+1) / 100
		a := Access{Fraction: frac}
		got := a.TouchedPages(size)
		if got < 1 || got > size.Pages() {
			return false
		}
		bigger := Access{Fraction: 1}
		return bigger.TouchedPages(size) >= got
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestElemKind(t *testing.T) {
	if Float32.Size() != 4 || Float64.Size() != 8 || Int32.Size() != 4 || Int64.Size() != 8 {
		t.Fatalf("elem sizes wrong")
	}
	if Float32.String() != "float" || Int64.String() != "long" {
		t.Fatalf("kind names wrong")
	}
	for name, want := range map[string]ElemKind{
		"float": Float32, "float32": Float32,
		"double": Float64, "float64": Float64,
		"int": Int32, "int32": Int32,
		"long": Int64, "int64": Int64,
	} {
		got, ok := KindFromName(name)
		if !ok || got != want {
			t.Errorf("KindFromName(%q) = %v,%v", name, got, ok)
		}
	}
	if _, ok := KindFromName("quaternion"); ok {
		t.Fatalf("unknown kind accepted")
	}
	if !Float32.Valid() || !Int64.Valid() {
		t.Fatalf("defined kinds reported invalid")
	}
	if ElemKind(-1).Valid() || ElemKind(4).Valid() || ElemKind(200).Valid() {
		t.Fatalf("out-of-range kinds reported valid")
	}
}

func TestParseBytes(t *testing.T) {
	cases := map[string]Bytes{
		"96GiB":  96 * GiB,
		"512MiB": 512 * MiB,
		"64KiB":  64 * KiB,
		"4G":     4 * GiB,
		"2g":     2 * GiB,
		"100MB":  100 * MiB,
		"1024":   1024,
		"0.5GiB": GiB / 2,
		" 8 GiB": 8 * GiB,
		"7b":     7,
	}
	for in, want := range cases {
		got, err := ParseBytes(in)
		if err != nil || got != want {
			t.Errorf("ParseBytes(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "GiB", "-4GiB", "x12", "12XB"} {
		if _, err := ParseBytes(bad); err == nil {
			t.Errorf("ParseBytes(%q) accepted", bad)
		}
	}
}

// Property: String() of whole binary sizes round-trips through ParseBytes.
func TestParseBytesRoundTripProperty(t *testing.T) {
	f := func(gib uint8) bool {
		b := Bytes(int64(gib%200)+1) * GiB
		parsed, err := ParseBytes(b.String())
		return err == nil && parsed == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
