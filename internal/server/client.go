package server

// Client is the tenant side of the session wire: it implements the
// workloads.Session surface over a gateway connection, so any workload
// written against that interface runs unmodified through the gateway.
//
// Numeric-mode workloads initialize and inspect arrays through
// Buffer(id); a remote client can't alias the controller's host copy,
// so each array gets a local mirror buffer. HostWrite ships the mirror
// to the gateway; HostRead refreshes it. Between the two, the mirror is
// simply the tenant's private staging memory — exactly the host-code
// role it plays in-process.
//
// A Client is not safe for concurrent use; one client program drives it
// sequentially, like a CUDA stream. Open several clients for
// concurrency — that's the gateway's whole point.

import (
	"fmt"
	"time"

	"grout/internal/core"
	"grout/internal/dag"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/sim"
	"grout/internal/transport"
	"grout/internal/workloads"
)

// Client is one tenant session on a gateway.
type Client struct {
	conn    *transport.SessionConn
	name    string
	mirrors map[dag.ArrayID]*kernels.Buffer
	// deferred holds an error a non-fallible call (Elapsed) had to
	// swallow; the next Sync reports it instead of silently losing it.
	deferred error
	closed   bool

	// pace is the client's adaptive launch pacing from the gateway's
	// backpressure advisories: it tracks the latest suggested pause and
	// halves whenever a launch ack arrives without one, so the client
	// slows while the gateway runs hot and speeds back up as the backlog
	// clears. ignoreBP (SetHonorBackpressure) disables the slowdown —
	// the behavior of a hostile or legacy client, which instead fills
	// its bounded queue and blocks on its own socket.
	pace     time.Duration
	ignoreBP bool
}

// minPace is the decay floor: a pace below it snaps to zero.
const minPace = 50 * time.Microsecond

// SetHonorBackpressure chooses whether Launch honors the gateway's
// backpressure advisories by pacing itself (the default). Passing false
// models a hostile over-limit tenant: launches go out full tilt and the
// gateway's queue bound plus token bucket do all the throttling.
func (c *Client) SetHonorBackpressure(honor bool) {
	c.ignoreBP = !honor
	if c.ignoreBP {
		c.pace = 0
	}
}

// Pace reports the client's current backpressure pacing (0 = full
// speed); mostly for tests and diagnostics.
func (c *Client) Pace() time.Duration { return c.pace }

// Backpressure polls the gateway's flow-control advisory for this
// tenant and folds it into the client's pacing.
func (c *Client) Backpressure() (*transport.Backpressure, error) {
	resp, err := c.call(&transport.SessionRequest{Kind: transport.SessBackpressure})
	if err != nil {
		return nil, err
	}
	c.observeBP(resp.BP)
	return resp.BP, nil
}

// observeBP folds one ack's advisory (or its absence) into the pace.
func (c *Client) observeBP(bp *transport.Backpressure) {
	if c.ignoreBP {
		return
	}
	if bp != nil && bp.Pause > 0 {
		// Move halfway toward the gateway's suggestion — adaptive, so a
		// single outlier advisory doesn't park the client.
		c.pace = (c.pace + bp.Pause) / 2
		if c.pace < bp.Pause/2 {
			c.pace = bp.Pause / 2
		}
		return
	}
	c.pace /= 2
	if c.pace < minPace {
		c.pace = 0
	}
}

// Dial opens a tenant session on the gateway at addr. name labels the
// tenant in the gateway's metrics; empty picks a server-assigned one.
// dialTimeout zero means transport.DefaultDialTimeout, negative
// disables; callTimeout bounds each round trip the same way (reads and
// synchronization legitimately take long — prefer generous values).
func Dial(addr, name string, dialTimeout, callTimeout time.Duration) (*Client, error) {
	conn, err := transport.DialSession(addr, dialTimeout, callTimeout)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, mirrors: make(map[dag.ArrayID]*kernels.Buffer)}
	resp, err := c.call(&transport.SessionRequest{Kind: transport.SessOpen, Name: name})
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	c.name = resp.Name
	return c, nil
}

// Name reports the tenant name the gateway assigned.
func (c *Client) Name() string { return c.name }

// call runs one round trip and folds the remote error in.
func (c *Client) call(req *transport.SessionRequest) (*transport.SessionResponse, error) {
	if c.closed {
		return nil, fmt.Errorf("grout: session client is closed")
	}
	resp, err := c.conn.Call(req)
	if err != nil {
		return nil, err
	}
	return resp, resp.Ok()
}

// NewArray implements workloads.Session.
func (c *Client) NewArray(kind memmodel.ElemKind, n int64) (dag.ArrayID, error) {
	resp, err := c.call(&transport.SessionRequest{Kind: transport.SessNewArray, Elem: kind, Len: n})
	if err != nil {
		return 0, err
	}
	c.mirrors[resp.Array] = kernels.NewBuffer(kind, int(n))
	return resp.Array, nil
}

// Launch implements workloads.Session. The gateway acknowledges the
// enqueue; a failure after that poisons the session and surfaces on the
// next operation. When the ack carries a backpressure advisory the
// client paces itself before returning (unless SetHonorBackpressure
// turned that off), adaptively slowing instead of filling its queue and
// blocking on the socket.
func (c *Client) Launch(kernel string, grid, block int, args ...core.ArgRef) error {
	resp, err := c.call(&transport.SessionRequest{Kind: transport.SessLaunch,
		Inv: core.Invocation{Kernel: kernel, Grid: grid, Block: block, Args: args}})
	if err != nil {
		return err
	}
	c.observeBP(resp.BP)
	if c.pace > 0 {
		time.Sleep(c.pace)
	}
	return nil
}

// HostRead implements workloads.Session: it synchronizes the array on
// the gateway and refreshes the local mirror in place (so references
// from Buffer stay valid).
func (c *Client) HostRead(id dag.ArrayID) error {
	resp, err := c.call(&transport.SessionRequest{Kind: transport.SessHostRead, Array: id})
	if err != nil {
		return err
	}
	mirror := c.mirrors[id]
	if mirror == nil || resp.Data == nil {
		return nil
	}
	return mirror.SetRawBytes(0, resp.Data.RawBytes())
}

// HostWrite implements workloads.Session: it ships the mirror's
// contents as the array's new authoritative data.
func (c *Client) HostWrite(id dag.ArrayID) error {
	mirror := c.mirrors[id]
	if mirror == nil {
		return fmt.Errorf("grout: host write of unknown array %d", id)
	}
	_, err := c.call(&transport.SessionRequest{Kind: transport.SessHostWrite, Array: id, Data: mirror})
	return err
}

// Buffer implements workloads.Session: the local mirror.
func (c *Client) Buffer(id dag.ArrayID) workloads.BufferLike {
	if b := c.mirrors[id]; b != nil {
		return b
	}
	return nil
}

// Free implements workloads.Session.
func (c *Client) Free(id dag.ArrayID) error {
	if _, err := c.call(&transport.SessionRequest{Kind: transport.SessFree, Array: id}); err != nil {
		return err
	}
	delete(c.mirrors, id)
	return nil
}

// Elapsed implements workloads.Session. It is a synchronization point:
// the gateway flushes the session's queue and drains the controller to
// time-stamp it, so an error-free return also means every prior launch
// dispatched cleanly. The interface gives Elapsed no error return, so a
// failed round trip (sticky session poison, transport loss) yields 0 —
// but the error is retained and reported by the next Sync. Callers
// recording makespans must pair Elapsed with Sync to tell a genuine
// zero from a failed session.
func (c *Client) Elapsed() sim.VirtualTime {
	resp, err := c.call(&transport.SessionRequest{Kind: transport.SessElapsed})
	if err != nil {
		if c.deferred == nil {
			c.deferred = err
		}
		return 0
	}
	return sim.VirtualTime(resp.Elapsed)
}

// Sync waits until every launch the session submitted has dispatched,
// reporting the session's sticky error, if any — including one a prior
// Elapsed had to swallow.
func (c *Client) Sync() error {
	if err := c.deferred; err != nil {
		c.deferred = nil
		return err
	}
	_, err := c.call(&transport.SessionRequest{Kind: transport.SessElapsed})
	return err
}

// BuildKernel compiles a mini-CUDA kernel fleet-wide and returns the
// name to launch it by.
func (c *Client) BuildKernel(src, signature string) (string, error) {
	resp, err := c.call(&transport.SessionRequest{Kind: transport.SessBuildKernel, Src: src, Signature: signature})
	if err != nil {
		return "", err
	}
	return resp.Name, nil
}

// ShardInfo reports which controller shard serves this tenant and the
// gateway's shard count (0 of 1 on an unsharded gateway).
func (c *Client) ShardInfo() (shard, count int, err error) {
	resp, err := c.call(&transport.SessionRequest{Kind: transport.SessShardInfo})
	if err != nil {
		return 0, 0, err
	}
	return resp.Shard, resp.ShardCount, nil
}

// Ping round-trips an empty frame (liveness checks).
func (c *Client) Ping() error {
	_, err := c.call(&transport.SessionRequest{Kind: transport.SessPing})
	return err
}

// Close ends the session: the gateway frees the tenant's arrays and
// drops its queued launches. Idempotent.
func (c *Client) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	// Best-effort goodbye; the gateway tears down on disconnect anyway.
	_, _ = c.conn.Call(&transport.SessionRequest{Kind: transport.SessClose})
	return c.conn.Close()
}
