package server

// End-to-end tests of the multi-tenant gateway over real TCP: namespace
// isolation, bit-identical results under concurrency, fairness knobs,
// chaos-fabric failover, disconnect teardown, quotas, sticky launch
// errors and the metrics surface. Everything runs under -race in ci.
//
// The bit-identity baseline is a solo run: the same client program on a
// gateway all by itself. Kernels are element-wise deterministic, so a
// tenant's results must not depend on who else shares the fleet.

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"grout/internal/cluster"
	"grout/internal/core"
	"grout/internal/dag"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/policy"
	"grout/internal/workloads"
)

const gwElems = 96

// gwSystem builds a pipelined numeric controller over a simulated
// 4-worker cluster, optionally behind a chaos fabric. The optimizer
// window is on, as in the production gateway default, so every test
// here also exercises the park/flush admission path under multitenancy.
func gwSystem(t testing.TB, chaos *core.ChaosOptions) *core.Controller {
	t.Helper()
	return gwSystemN(t, 4, chaos)
}

// gwSystemN is gwSystem with a worker count.
func gwSystemN(t testing.TB, workers int, chaos *core.ChaosOptions) *core.Controller {
	t.Helper()
	clu := cluster.New(cluster.PaperSpec(workers))
	var fab core.Fabric = core.NewLocalFabric(clu, kernels.StdRegistry(), true)
	opts := core.Options{Numeric: true, Pipeline: true, OptimizeWindow: 32}
	if chaos != nil {
		fab = core.NewChaosFabric(fab, *chaos)
		opts.Failover = true
	}
	ctl := core.NewController(fab, policy.NewRoundRobin(), opts)
	t.Cleanup(func() { ctl.Close() })
	return ctl
}

func gwStart(t testing.TB, ctl *core.Controller, opt Options) *Gateway {
	t.Helper()
	g, err := New(ctl, "127.0.0.1:0", opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

func gwDial(t testing.TB, g *Gateway, name string) *Client {
	t.Helper()
	c, err := Dial(g.Addr(), name, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// clientProgram runs a deterministic per-tenant CE chain through the
// workloads.Session surface and returns the final array contents.
func clientProgram(s workloads.Session, tenant, iters int) (*kernels.Buffer, error) {
	a, err := s.NewArray(memmodel.Float32, gwElems)
	if err != nil {
		return nil, err
	}
	b, err := s.NewArray(memmodel.Float32, gwElems)
	if err != nil {
		return nil, err
	}
	ab, bb := s.Buffer(a), s.Buffer(b)
	for j := 0; j < gwElems; j++ {
		ab.Set(j, float64(tenant+2)*float64(j%11)-7)
		bb.Set(j, float64(j%5)-2)
	}
	if err := s.HostWrite(a); err != nil {
		return nil, err
	}
	if err := s.HostWrite(b); err != nil {
		return nil, err
	}
	nArg := core.ScalarRef(float64(gwElems))
	for i := 0; i < iters; i++ {
		if err := s.Launch("axpy", 1024, 256,
			core.ArrRef(a), core.ArrRef(b), core.ScalarRef(0.5), nArg); err != nil {
			return nil, err
		}
		if i%4 == 1 {
			if err := s.Launch("relu", 1024, 256, core.ArrRef(a), nArg); err != nil {
				return nil, err
			}
		}
		if i%9 == 7 {
			if err := s.HostRead(a); err != nil {
				return nil, err
			}
		}
	}
	if err := s.HostRead(a); err != nil {
		return nil, err
	}
	out := kernels.NewBuffer(memmodel.Float32, gwElems)
	for j := 0; j < gwElems; j++ {
		out.Set(j, s.Buffer(a).At(j))
	}
	return out, nil
}

// soloBaselines runs each tenant's program alone on a fresh fleet.
func soloBaselines(t *testing.T, tenants, iters int) []*kernels.Buffer {
	t.Helper()
	want := make([]*kernels.Buffer, tenants)
	for k := 0; k < tenants; k++ {
		g := gwStart(t, gwSystem(t, nil), Options{})
		c := gwDial(t, g, fmt.Sprintf("solo-%d", k))
		buf, err := clientProgram(c, k, iters)
		if err != nil {
			t.Fatalf("solo tenant %d: %v", k, err)
		}
		want[k] = buf
	}
	return want
}

// runTenants runs all tenant programs concurrently against one gateway
// and checks each against its solo baseline.
func runTenants(t *testing.T, g *Gateway, want []*kernels.Buffer, iters int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, len(want))
	for k := range want {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c, err := Dial(g.Addr(), fmt.Sprintf("tenant-%c", 'a'+k), 0, 0)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			got, err := clientProgram(c, k, iters)
			if err != nil {
				errs <- fmt.Errorf("tenant %d: %w", k, err)
				return
			}
			if d := got.MaxAbsDiff(want[k]); d != 0 {
				errs <- fmt.Errorf("tenant %d diverged from its solo run by %g", k, d)
				return
			}
			errs <- nil
		}(k)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// Concurrent tenants over real TCP must be bit-identical to solo runs.
func TestGatewayTenantsBitIdentical(t *testing.T) {
	const tenants, iters = 4, 18
	want := soloBaselines(t, tenants, iters)
	g := gwStart(t, gwSystem(t, nil), Options{})
	runTenants(t, g, want, iters)
	if st := g.Snapshot(); st.Total != int64(tenants) || st.Active != 0 {
		t.Fatalf("lifecycle counters off after runs: %+v", st)
	}
}

// The fairness knobs — tight in-flight cap, tiny queue, uneven weights —
// must change scheduling only, never results.
func TestGatewayFairnessKnobsPreserveResults(t *testing.T) {
	const tenants, iters = 3, 14
	want := soloBaselines(t, tenants, iters)
	g := gwStart(t, gwSystem(t, nil), Options{
		Limits:     core.SessionLimits{MaxInflightCEs: 1, Weight: 3},
		QueueDepth: 2,
	})
	runTenants(t, g, want, iters)
}

// A worker dying mid-run (chaos fabric) must stay invisible to every
// tenant: lineage recovery is per-tenant-correct and results stay
// bit-identical to healthy solo runs.
func TestGatewayChaosFailoverBitIdentical(t *testing.T) {
	const tenants, iters = 3, 14
	want := soloBaselines(t, tenants, iters)
	chaos := &core.ChaosOptions{KillAtLaunch: map[cluster.NodeID]int{2: 5}}
	g := gwStart(t, gwSystem(t, chaos), Options{})
	runTenants(t, g, want, iters)
	if st := g.Snapshot(); st.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1 (the chaos kill)", st.Failovers)
	}
}

// An abrupt disconnect tears the tenant down — session unregistered,
// arrays freed — while its neighbor's run stays bit-identical.
func TestGatewayDisconnectCleanup(t *testing.T) {
	const iters = 14
	want := soloBaselines(t, 1, iters)
	g := gwStart(t, gwSystem(t, nil), Options{})

	victim := gwDial(t, g, "victim")
	va, err := victim.NewArray(memmodel.Float32, gwElems)
	if err != nil {
		t.Fatal(err)
	}
	victim.Buffer(va).Fill(1)
	if err := victim.HostWrite(va); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		c, err := Dial(g.Addr(), "survivor", 0, 0)
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		got, err := clientProgram(c, 0, iters)
		if err == nil && got.MaxAbsDiff(want[0]) != 0 {
			err = errors.New("survivor diverged from its solo run")
		}
		done <- err
	}()
	for i := 0; i < 6; i++ {
		if err := victim.Launch("relu", 0, 0, core.ArrRef(va), core.ScalarRef(gwElems)); err != nil {
			t.Fatal(err)
		}
	}
	// Drop the raw connection without the polite close handshake.
	if err := victim.conn.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := g.Snapshot(); st.Active == 0 {
			if st.Total != 2 {
				t.Fatalf("sessions total = %d, want 2", st.Total)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim session never torn down")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A tenant over its array-byte quota gets ErrQuotaExceeded through the
// wire; the fleet and its neighbors are undisturbed.
func TestGatewayQuota(t *testing.T) {
	const iters = 10
	want := soloBaselines(t, 1, iters)
	quota := memmodel.Bytes(3*gwElems) * memmodel.Float32.Size()
	g := gwStart(t, gwSystem(t, nil), Options{
		Limits: core.SessionLimits{MaxArrayBytes: quota},
	})

	greedy := gwDial(t, g, "greedy")
	if _, err := greedy.NewArray(memmodel.Float32, gwElems); err != nil {
		t.Fatal(err)
	}
	if _, err := greedy.NewArray(memmodel.Float64, 2*gwElems); !errors.Is(err, core.ErrQuotaExceeded) {
		t.Fatalf("over-quota alloc: got %v, want ErrQuotaExceeded", err)
	}
	// The quota-tripped session keeps working under its budget — the
	// error is not sticky — and a neighbor runs bit-identically. The
	// neighbor's own two arrays fit the quota exactly.
	if _, err := greedy.NewArray(memmodel.Float32, gwElems); err != nil {
		t.Fatalf("in-quota alloc after quota error: %v", err)
	}
	got, err := clientProgram(gwDial(t, g, "neighbor"), 0, iters)
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxAbsDiff(want[0]) != 0 {
		t.Fatal("neighbor diverged beside a quota-tripped tenant")
	}
}

// Malformed allocation requests off the wire — an unknown element kind,
// an int64-overflowing length, a negative length — must come back as
// error responses; one bad frame must never crash the shared gateway.
func TestGatewayRejectsMalformedNewArray(t *testing.T) {
	g := gwStart(t, gwSystem(t, nil), Options{})
	evil := gwDial(t, g, "evil")
	if _, err := evil.NewArray(memmodel.ElemKind(200), 8); err == nil {
		t.Fatal("alloc with an unknown element kind succeeded")
	}
	if _, err := evil.NewArray(memmodel.Float64, 1<<61); err == nil {
		t.Fatal("alloc with an int64-overflowing length succeeded")
	}
	if _, err := evil.NewArray(memmodel.Float64, -4); err == nil {
		t.Fatal("alloc with a negative length succeeded")
	}
	// The rejections are not sticky, and the gateway still serves both
	// this session and fresh ones.
	if _, err := evil.NewArray(memmodel.Float32, 16); err != nil {
		t.Fatalf("valid alloc after rejections: %v", err)
	}
	if err := gwDial(t, g, "bystander").Ping(); err != nil {
		t.Fatalf("gateway unhealthy after malformed frames: %v", err)
	}
}

// Elapsed has no error return, so a failed sync there reports 0 — but
// the swallowed error must surface on the next Sync instead of the run
// being silently recorded as a zero makespan.
func TestGatewayElapsedDefersError(t *testing.T) {
	g := gwStart(t, gwSystem(t, nil), Options{})
	c := gwDial(t, g, "timed")
	a, err := c.NewArray(memmodel.Float32, gwElems)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Launch("no-such-kernel", 0, 0, core.ArrRef(a), core.ScalarRef(gwElems)); err != nil {
		t.Fatalf("launch enqueue: %v", err)
	}
	if d := c.Elapsed(); d != 0 {
		t.Fatalf("Elapsed over a poisoned session = %v, want 0", d)
	}
	if err := c.Sync(); err == nil {
		t.Fatal("Sync after a failed Elapsed reported no error")
	}
}

// A launch that fails on submission poisons only its own session, like
// a CUDA stream error: reported on the next sync point, sticky after,
// invisible to neighbors.
func TestGatewayStickyLaunchError(t *testing.T) {
	const iters = 10
	want := soloBaselines(t, 1, iters)
	g := gwStart(t, gwSystem(t, nil), Options{})

	bad := gwDial(t, g, "bad")
	a, err := bad.NewArray(memmodel.Float32, gwElems)
	if err != nil {
		t.Fatal(err)
	}
	// Enqueue is acknowledged; the failure surfaces at the sync point.
	if err := bad.Launch("no-such-kernel", 0, 0, core.ArrRef(a), core.ScalarRef(gwElems)); err != nil {
		t.Fatalf("launch enqueue: %v", err)
	}
	if err := bad.Sync(); err == nil {
		t.Fatal("sync after a bad launch reported no error")
	}
	if _, err := bad.NewArray(memmodel.Float32, 8); err == nil {
		t.Fatal("session not poisoned after launch failure")
	}
	got, err := clientProgram(gwDial(t, g, "clean"), 0, iters)
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxAbsDiff(want[0]) != 0 {
		t.Fatal("clean tenant diverged beside a poisoned one")
	}
}

// A real workload from the paper suite runs through the gateway
// unmodified (the Session interface is the whole point) while another
// tenant hammers the fleet.
func TestGatewayRunsSuiteWorkloads(t *testing.T) {
	g := gwStart(t, gwSystem(t, nil), Options{})
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, name := range []string{"bs", "mv"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			c, err := Dial(g.Addr(), name, 0, 0)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			w := workloads.Suite()[name]
			if err := w.Build(c, workloads.Params{Footprint: 4 * memmodel.MiB, Blocks: 2}); err != nil {
				errs <- fmt.Errorf("%s: %w", name, err)
				return
			}
			errs <- c.Sync()
		}(name)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// The metrics surface reflects the session lifecycle and per-tenant
// counters.
func TestGatewayMetrics(t *testing.T) {
	g := gwStart(t, gwSystem(t, nil), Options{})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	c := gwDial(t, g, "metered")
	if _, err := clientProgram(c, 0, 8); err != nil {
		t.Fatal(err)
	}

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", code, body)
	}
	_, body := get("/metrics")
	for _, line := range []string{
		"grout_gateway_sessions_active 1",
		"grout_gateway_sessions_total 1",
		"grout_gateway_failovers_total 0",
		`grout_gateway_ces_admitted_total{tenant="metered",shard="0"}`,
		`grout_gateway_ces_completed_total{tenant="metered",shard="0"}`,
		`grout_gateway_array_bytes{tenant="metered",shard="0"} 768`,
		`grout_gateway_admission_wait_seconds_total{tenant="metered",shard="0"}`,
	} {
		if !strings.Contains(body, line) {
			t.Fatalf("metrics missing %q in:\n%s", line, body)
		}
	}
	st := g.Snapshot()
	if len(st.Tenants) != 1 || st.Tenants[0].Admitted == 0 ||
		st.Tenants[0].Admitted != st.Tenants[0].Completed {
		t.Fatalf("tenant counters off: %+v", st.Tenants)
	}

	// Teardown drops the session from the scrape.
	c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, body := get("/metrics"); strings.Contains(body, "grout_gateway_sessions_active 0") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("metrics never showed the session closed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// tenantSession digs a tenant's controller session out of the gateway.
func tenantSession(t *testing.T, g *Gateway, name string) *core.ControllerSession {
	t.Helper()
	for _, sh := range g.shards {
		sh.mu.Lock()
		for _, tn := range sh.sessions {
			if tn.name == name {
				sh.mu.Unlock()
				return tn.sess
			}
		}
		sh.mu.Unlock()
	}
	t.Fatalf("no tenant %q", name)
	return nil
}

const gwProdSrc = `__global__ void gwmul(float *s, const float *x, float a, int n) {
	int i = blockIdx.x * blockDim.x + threadIdx.x;
	if (i < n) { s[i] = a * x[i]; }
}`

const gwConsSrc = `__global__ void gwmadd(float *o, const float *u, const float *v, float b, int n) {
	int i = blockIdx.x * blockDim.x + threadIdx.x;
	if (i < n) { o[i] = u[i] + v[i] * b; }
}`

// The optimizer window's per-tenant counters reach the metrics surface:
// two tenants' interleaved elementwise chains fuse within their own
// tenant (never across), their operand moves coalesce into one bulk
// frame, and re-reads of placed arrays skip their transfers — and each
// effect shows up under the right tenant label.
func TestGatewayOptimizerMetrics(t *testing.T) {
	// One worker makes every placement (and so the coalescing run
	// structure and counter values) deterministic.
	g := gwStart(t, gwSystemN(t, 1, nil), Options{})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	gwDial(t, g, "opt-a")
	gwDial(t, g, "opt-b")
	sa := tenantSession(t, g, "opt-a")
	sb := tenantSession(t, g, "opt-b")

	type tenantArrays struct{ x, s, o dag.ArrayID }
	setup := func(s *core.ControllerSession, bias float64) tenantArrays {
		t.Helper()
		var ta tenantArrays
		var err error
		if ta.x, err = s.NewArray(memmodel.Float32, gwElems); err != nil {
			t.Fatal(err)
		}
		if ta.s, err = s.NewArray(memmodel.Float32, gwElems); err != nil {
			t.Fatal(err)
		}
		if ta.o, err = s.NewArray(memmodel.Float32, gwElems); err != nil {
			t.Fatal(err)
		}
		buf := kernels.NewBuffer(memmodel.Float32, gwElems)
		for j := 0; j < gwElems; j++ {
			buf.Set(j, float64(j%13)+bias)
		}
		if _, err := s.HostWrite(ta.x, buf); err != nil {
			t.Fatal(err)
		}
		for _, src := range []string{gwProdSrc, gwConsSrc} {
			if _, err := s.BuildKernel(src, ""); err != nil {
				t.Fatal(err)
			}
		}
		return ta
	}
	aa, ab := setup(sa, 1), setup(sb, 2)

	// One shared window, tenants interleaved: a.mul, b.mul, a.madd,
	// b.madd. Fusion must pair within each tenant only.
	nArg := core.ScalarRef(float64(gwElems))
	submit := func(s *core.ControllerSession, inv core.Invocation) {
		t.Helper()
		if _, err := s.Submit(inv); err != nil {
			t.Fatal(err)
		}
	}
	mul := func(ta tenantArrays) core.Invocation {
		return core.Invocation{Kernel: "gwmul", Grid: 1, Block: gwElems,
			Args: []core.ArgRef{core.ArrRef(ta.s), core.ArrRef(ta.x), core.ScalarRef(2.5), nArg}}
	}
	madd := func(ta tenantArrays) core.Invocation {
		return core.Invocation{Kernel: "gwmadd", Grid: 1, Block: gwElems,
			Args: []core.ArgRef{core.ArrRef(ta.o), core.ArrRef(ta.s), core.ArrRef(ta.x), core.ScalarRef(0.75), nArg}}
	}
	submit(sa, mul(aa))
	submit(sb, mul(ab))
	submit(sa, madd(aa))
	submit(sb, madd(ab))
	if err := g.shards[0].ctl.FlushWindow(); err != nil {
		t.Fatal(err)
	}

	// Second window: each tenant re-reads its own freshly placed output,
	// so the predicted-and-confirmed replica skips the transfer.
	relu := func(ta tenantArrays) core.Invocation {
		return core.Invocation{Kernel: "relu",
			Args: []core.ArgRef{core.ArrRef(ta.o), nArg}}
	}
	submit(sa, relu(aa))
	submit(sb, relu(ab))
	if err := g.shards[0].ctl.Drain(); err != nil {
		t.Fatal(err)
	}

	// The arithmetic survived: o = relu(2.5*x + 0.75*x), x > 0.
	got, _, err := sa.HostRead(aa.o)
	if err != nil {
		t.Fatal(err)
	}
	xa, _, err := sa.HostRead(aa.x)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < gwElems; j++ {
		want := 3.25 * xa.At(j)
		f32 := kernels.NewBuffer(memmodel.Float32, 1)
		f32.Set(0, want)
		if got.At(j) != f32.At(0) {
			t.Fatalf("o[%d] = %v, want %v", j, got.At(j), f32.At(0))
		}
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		// One producer absorbed per tenant — and only within the tenant.
		`grout_gateway_fused_ces_total{tenant="opt-a",shard="0"} 1`,
		`grout_gateway_fused_ces_total{tenant="opt-b",shard="0"} 1`,
		// Both tenants' inputs rode one bulk frame; the run leader's
		// session carries the credit.
		`grout_gateway_coalesced_transfers_total{tenant="opt-a",shard="0"} 2`,
		// Two per tenant: the fused kernel binds x through both the
		// producer's and the consumer's parameter slot, and the second
		// slot's transfer is skipped once the bulk move lands — plus the
		// relu re-read of the placed output.
		`grout_gateway_eliminated_moves_total{tenant="opt-a",shard="0"} 2`,
		`grout_gateway_eliminated_moves_total{tenant="opt-b",shard="0"} 2`,
	} {
		if !strings.Contains(string(body), line) {
			t.Fatalf("metrics missing %q in:\n%s", line, body)
		}
	}
}

// Session-local IDs must be translated, never trusted: two tenants use
// identical local IDs with different data.
func TestGatewayNamespaceTranslation(t *testing.T) {
	g := gwStart(t, gwSystem(t, nil), Options{})
	c1 := gwDial(t, g, "one")
	c2 := gwDial(t, g, "two")
	a1, err := c1.NewArray(memmodel.Float32, 16)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := c2.NewArray(memmodel.Float32, 16)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatalf("expected identical session-local IDs, got %d and %d", a1, a2)
	}
	c1.Buffer(a1).Fill(5)
	c2.Buffer(a2).Fill(-5)
	if err := c1.HostWrite(a1); err != nil {
		t.Fatal(err)
	}
	if err := c2.HostWrite(a2); err != nil {
		t.Fatal(err)
	}
	if err := c2.Launch("relu", 0, 0, core.ArrRef(a2), core.ScalarRef(16)); err != nil {
		t.Fatal(err)
	}
	if err := c1.HostRead(a1); err != nil {
		t.Fatal(err)
	}
	if err := c2.HostRead(a2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if c1.Buffer(a1).At(i) != 5 {
			t.Fatalf("tenant one's data clobbered at %d: %g", i, c1.Buffer(a1).At(i))
		}
		if c2.Buffer(a2).At(i) != 0 {
			t.Fatalf("tenant two's relu missing at %d: %g", i, c2.Buffer(a2).At(i))
		}
	}
	// Reaching into an ID the session never allocated fails loudly.
	if err := c1.Launch("relu", 0, 0, core.ArrRef(dag.ArrayID(99)), core.ScalarRef(16)); err != nil {
		t.Fatalf("launch enqueue: %v", err)
	}
	if err := c1.Sync(); err == nil {
		t.Fatal("launch against an unknown array survived the sync point")
	}
}

// TestGatewayAcceptLoopsConcurrentDials exercises the sharded accept
// path: four goroutines blocked in Accept on the shared listener, hit
// by a burst of concurrent dials (the fleet-reconnect-after-restart
// shape). Every session must open, answer a ping, and run a tiny
// program correctly; Close must then reap all accept loops without
// leaking (the deferred Close hangs if the waitgroup miscounts).
func TestGatewayAcceptLoopsConcurrentDials(t *testing.T) {
	ctl := gwSystem(t, nil)
	g := gwStart(t, ctl, Options{AcceptLoops: 4})
	const burst = 24
	var wg sync.WaitGroup
	errs := make(chan error, burst)
	for k := 0; k < burst; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c, err := Dial(g.Addr(), fmt.Sprintf("burst-%02d", k), 0, 0)
			if err != nil {
				errs <- fmt.Errorf("dial %d: %w", k, err)
				return
			}
			defer c.Close()
			if err := c.Ping(); err != nil {
				errs <- fmt.Errorf("ping %d: %w", k, err)
				return
			}
			a, err := c.NewArray(memmodel.Float32, 16)
			if err != nil {
				errs <- fmt.Errorf("alloc %d: %w", k, err)
				return
			}
			c.Buffer(a).Fill(float64(k) - 8)
			if err := c.HostWrite(a); err != nil {
				errs <- fmt.Errorf("write %d: %w", k, err)
				return
			}
			if err := c.Launch("relu", 0, 0, core.ArrRef(a), core.ScalarRef(16)); err != nil {
				errs <- fmt.Errorf("launch %d: %w", k, err)
				return
			}
			if err := c.HostRead(a); err != nil {
				errs <- fmt.Errorf("read %d: %w", k, err)
				return
			}
			want := float64(k) - 8
			if want < 0 {
				want = 0
			}
			if got := c.Buffer(a).At(3); got != want {
				errs <- fmt.Errorf("tenant %d: relu gave %g, want %g", k, got, want)
				return
			}
			errs <- nil
		}(k)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := g.Snapshot().Total; got != burst {
		t.Fatalf("sessions opened = %d, want %d", got, burst)
	}
}
