package server

// Sharded-gateway tests: per-shard drain independence (the -race guard
// that two shards' admission loops never serialize on a shared lock),
// deterministic routing, the SessShardInfo surface, and the /metrics
// label-cardinality bound.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"grout/internal/cluster"
	"grout/internal/core"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/policy"
	"grout/internal/sim"
)

// gatedFabric delays every Launch until the gate opens — it simulates a
// shard whose fleet has stalled, so a test can prove the other shard's
// drain keeps admitting.
type gatedFabric struct {
	core.Fabric
	gate chan struct{}
}

func (f *gatedFabric) Launch(w cluster.NodeID, inv core.Invocation, ready sim.VirtualTime) (sim.VirtualTime, error) {
	<-f.gate
	return f.Fabric.Launch(w, inv, ready)
}

// Embedding hides LocalFabric's optional interfaces behind the Fabric
// field, which is exactly right here: the controller must fall back to
// the plain paths, every one of which funnels Launch through the gate.

// nameRoute routes tenants whose name ends in "-<digit>" to that shard.
func nameRoute(tenant string, loads []int) int {
	if i := strings.LastIndex(tenant, "-"); i >= 0 && i+1 < len(tenant) {
		if d := int(tenant[i+1] - '0'); d >= 0 && d < len(loads) {
			return d
		}
	}
	return 0
}

func shardedStart(t *testing.T, ctls []*core.Controller, route RouteFunc) *Gateway {
	t.Helper()
	g, err := NewSharded(ctls, route, "127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

// Two shards' drain goroutines must be independent: with shard 0's
// entire fleet gated shut mid-launch, shard 1's tenants still run to
// completion. Under -race this also proves the drains share no mutable
// state. If the drains serialized on one lock or condvar, shard 1 would
// hang behind shard 0's stuck submission and the watchdog would fire.
func TestShardDrainsIndependent(t *testing.T) {
	gate := make(chan struct{})
	mk := func(gated bool) *core.Controller {
		clu := cluster.New(cluster.PaperSpec(2))
		var fab core.Fabric = core.NewLocalFabric(clu, kernels.StdRegistry(), true)
		if gated {
			fab = &gatedFabric{Fabric: fab, gate: gate}
		}
		ctl := core.NewController(fab, policy.NewRoundRobin(), core.Options{Numeric: true})
		t.Cleanup(func() { ctl.Close() })
		return ctl
	}
	g := shardedStart(t, []*core.Controller{mk(true), mk(false)}, nameRoute)
	// Open the gate before the gateway tears down, or teardown would
	// wait forever on the stuck launch.
	defer close(gate)

	// Tenant on shard 0: the launch is acknowledged at enqueue, then its
	// drain goroutine blocks inside the gated fabric.
	blocked := gwDial(t, g, "stuck-0")
	ba, err := blocked.NewArray(memmodel.Float32, gwElems)
	if err != nil {
		t.Fatal(err)
	}
	blocked.Buffer(ba).Fill(1)
	if err := blocked.HostWrite(ba); err != nil {
		t.Fatal(err)
	}
	if err := blocked.Launch("relu", 0, 0, core.ArrRef(ba), core.ScalarRef(gwElems)); err != nil {
		t.Fatal(err)
	}

	// Tenant on shard 1 must complete a full synchronizing program while
	// shard 0 is wedged.
	done := make(chan error, 1)
	go func() {
		c, err := Dial(g.Addr(), "free-1", 0, 0)
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		_, err = clientProgram(c, 1, 10)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shard 1 tenant failed while shard 0 was gated: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("shard 1 tenant hung behind shard 0's gated drain: drains are not independent")
	}

	// Shard 0's launch really is still wedged (its drain popped it but
	// the fabric hasn't released it).
	st := g.Snapshot()
	if st.Shards[1].CEs == 0 {
		t.Fatalf("shard 1 admitted nothing: %+v", st.Shards)
	}
}

// Routing is deterministic per tenant name, the wire reports it, and
// sessions land on the shard the route picked.
func TestShardInfoAndRouting(t *testing.T) {
	mk := func() *core.Controller { return gwSystemN(t, 2, nil) }
	g := shardedStart(t, []*core.Controller{mk(), mk()}, nameRoute)

	for i, want := range []int{0, 1, 0, 1} {
		c := gwDial(t, g, fmt.Sprintf("t%d-%d", i, want))
		shard, count, err := c.ShardInfo()
		if err != nil {
			t.Fatal(err)
		}
		if count != 2 || shard != want {
			t.Fatalf("tenant %d: shard %d of %d, want %d of 2", i, shard, count, want)
		}
	}
	st := g.Snapshot()
	if st.Shards[0].Sessions != 2 || st.Shards[1].Sessions != 2 {
		t.Fatalf("sessions not split as routed: %+v", st.Shards)
	}

	// An unsharded gateway answers 0 of 1.
	g1 := gwStart(t, gwSystemN(t, 2, nil), Options{})
	c := gwDial(t, g1, "solo")
	shard, count, err := c.ShardInfo()
	if err != nil || shard != 0 || count != 1 {
		t.Fatalf("unsharded shard info = (%d, %d, %v), want (0, 1, nil)", shard, count, err)
	}
}

// The cardinality guard: per-tenant families carry exactly the tenant
// and shard labels — series count O(tenants), never O(tenants×shards) —
// per-shard families carry exactly one shard series each, and per-class
// overload families carry exactly the class label, O(classes) series.
func TestMetricsLabelCardinality(t *testing.T) {
	const shards, tenants = 2, 6
	mk := func() *core.Controller { return gwSystemN(t, 2, nil) }
	g := shardedStart(t, []*core.Controller{mk(), mk()}, nameRoute)
	for i := 0; i < tenants; i++ {
		c := gwDial(t, g, fmt.Sprintf("card-%d", i%shards))
		if err := c.Ping(); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	series := regexp.MustCompile(`^(\w+)\{([^}]*)\} `)
	perFamily := map[string]int{}
	for _, line := range strings.Split(string(body), "\n") {
		m := series.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		family, labels := m[1], m[2]
		perFamily[family]++
		switch {
		case strings.HasPrefix(family, "grout_shard_"):
			if !regexp.MustCompile(`^shard="\d+"$`).MatchString(labels) {
				t.Fatalf("per-shard family %s has labels %q, want exactly shard", family, labels)
			}
		case strings.HasPrefix(family, "grout_gateway_"):
			if !regexp.MustCompile(`^tenant="[^"]*",shard="\d+"$`).MatchString(labels) {
				t.Fatalf("per-tenant family %s has labels %q, want exactly tenant+shard", family, labels)
			}
		case strings.HasPrefix(family, "grout_class_"):
			if !regexp.MustCompile(`^class="\d+"$`).MatchString(labels) {
				t.Fatalf("per-class family %s has labels %q, want exactly class", family, labels)
			}
		}
	}
	sawClass := false
	for family, n := range perFamily {
		if strings.HasPrefix(family, "grout_shard_") && n != shards {
			t.Fatalf("family %s has %d series, want %d (one per shard)", family, n, shards)
		}
		if strings.HasPrefix(family, "grout_gateway_") && n != tenants {
			t.Fatalf("family %s has %d series, want %d (one per tenant)", family, n, tenants)
		}
		if strings.HasPrefix(family, "grout_class_") {
			sawClass = true
			// Every tenant here runs in the default class: exactly one
			// series, NOT one per tenant.
			if n != 1 {
				t.Fatalf("family %s has %d series, want 1 (one per class)", family, n)
			}
		}
	}
	if !sawClass {
		t.Fatal("no per-class series scraped; the class guard tested nothing")
	}
	if len(perFamily) == 0 {
		t.Fatal("no labeled series scraped; the guard tested nothing")
	}
}
