package server

// Production-traffic gateway tests: per-tenant token-bucket rate
// limiting, backpressure advisories and the client's adaptive pacing,
// class-based load shedding, and teardown racing the drain loop under
// an enqueue storm. Everything runs under -race in ci.

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"grout/internal/cluster"
	"grout/internal/core"
	"grout/internal/dag"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/policy"
)

// trafficArray allocates and host-writes one array so launches on it
// are valid; writes happen before any launch storm, because sync ops
// flush the queue first.
func trafficArray(t *testing.T, c *Client) dag.ArrayID {
	t.Helper()
	a, err := c.NewArray(memmodel.Float32, gwElems)
	if err != nil {
		t.Fatal(err)
	}
	c.Buffer(a).Fill(1)
	if err := c.HostWrite(a); err != nil {
		t.Fatal(err)
	}
	return a
}

// A rate-limited tenant's admission is bounded by its token bucket:
// launches burst up to Burst, then the drain loop meters the rest at
// RatePerSec, so the whole program cannot finish faster than the
// tokens allow.
func TestGatewayRateLimitBoundsAdmission(t *testing.T) {
	const rate, burst, launches = 100.0, 2, 22
	g := gwStart(t, gwSystem(t, nil), Options{
		Limits: core.SessionLimits{RatePerSec: rate, Burst: burst},
	})
	c := gwDial(t, g, "metered")
	a := trafficArray(t, c)
	start := time.Now()
	for i := 0; i < launches; i++ {
		if err := c.Launch("relu", 0, 0, core.ArrRef(a), core.ScalarRef(gwElems)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// 22 launches on a burst of 2 need >= 20 refills at 100/s = 200ms.
	// Allow generous slack below the theoretical floor for clock grain.
	if min := 150 * time.Millisecond; elapsed < min {
		t.Fatalf("rate-limited program finished in %v; the bucket allows no less than ~200ms", elapsed)
	}
	if st := g.Snapshot(); st.Tenants[0].Admitted != launches {
		t.Fatalf("admitted %d, want %d (rate limiting must delay, never drop)", st.Tenants[0].Admitted, launches)
	}
}

// Backpressure advisories reach the client and pace it; a client that
// opts out keeps launching full tilt and reports no pace.
func TestGatewayBackpressurePacesClient(t *testing.T) {
	g := gwStart(t, gwSystem(t, nil), Options{
		Limits: core.SessionLimits{RatePerSec: 50, Burst: 1},
	})
	c := gwDial(t, g, "polite")
	a := trafficArray(t, c)
	for i := 0; i < 6; i++ {
		if err := c.Launch("relu", 0, 0, core.ArrRef(a), core.ScalarRef(gwElems)); err != nil {
			t.Fatal(err)
		}
	}
	// With one token and a 50/s refill, the backlog outruns the bucket
	// and the launch acks must have carried pause advisories.
	if c.Pace() == 0 {
		t.Fatal("client pace is 0 after out-running its token bucket")
	}
	bp, err := c.Backpressure()
	if err != nil {
		t.Fatal(err)
	}
	if bp == nil {
		t.Fatal("backpressure poll returned no frame")
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}

	hostile := gwDial(t, g, "hostile")
	hostile.SetHonorBackpressure(false)
	ha := trafficArray(t, hostile)
	for i := 0; i < 6; i++ {
		if err := hostile.Launch("relu", 0, 0, core.ArrRef(ha), core.ScalarRef(gwElems)); err != nil {
			t.Fatal(err)
		}
	}
	if hostile.Pace() != 0 {
		t.Fatalf("opted-out client paced itself to %v", hostile.Pace())
	}
	if err := hostile.Sync(); err != nil {
		t.Fatal(err)
	}
}

// Shedding refuses lowest classes first when the shard backlog
// saturates, the refusal is errors.Is-able as core.ErrShedded through
// the wire, it is retryable (never sticky), and the per-class shed
// series reach /metrics.
func TestGatewayShedsByClass(t *testing.T) {
	// A gated, non-pipelined controller: the drain's Submit blocks inside
	// the fabric, so the backlog builds deterministically.
	gate := make(chan struct{})
	clu := cluster.New(cluster.PaperSpec(2))
	var fab core.Fabric = &gatedFabric{
		Fabric: core.NewLocalFabric(clu, kernels.StdRegistry(), true),
		gate:   gate,
	}
	ctl := core.NewController(fab, policy.NewRoundRobin(), core.Options{Numeric: true})
	t.Cleanup(func() { ctl.Close() })
	g := gwStart(t, ctl, Options{
		ShedDepth: 2,
		LimitsFor: func(tenant string) (core.SessionLimits, bool) {
			if strings.HasPrefix(tenant, "vip") {
				return core.SessionLimits{Class: 1}, true
			}
			return core.SessionLimits{}, false // class 0
		},
	})
	gateOpen := false
	defer func() {
		if !gateOpen {
			close(gate)
		}
	}()

	// All controller-touching setup happens BEFORE the launch storm: the
	// gated controller's non-pipelined Submit blocks holding its lock,
	// so once the drain wedges, only enqueue-side paths stay responsive.
	low := gwDial(t, g, "steerage")
	la := trafficArray(t, low)
	vip := gwDial(t, g, "vip")
	va := trafficArray(t, vip)

	// Build backlog until class 0 sheds: threshold is ShedDepth*(0+1)=2,
	// and the drain is wedged in the gate, so this happens within a few
	// launches.
	var shedErr error
	for i := 0; i < 10 && shedErr == nil; i++ {
		shedErr = low.Launch("relu", 0, 0, core.ArrRef(la), core.ScalarRef(gwElems))
	}
	if !errors.Is(shedErr, core.ErrShedded) {
		t.Fatalf("class-0 launch storm got %v, want ErrShedded", shedErr)
	}
	// Class 1 tolerates twice the backlog (threshold 4 > the <=3 backlog
	// that shed class 0): its launch is still admitted.
	if err := vip.Launch("relu", 0, 0, core.ArrRef(va), core.ScalarRef(gwElems)); err != nil {
		t.Fatalf("class-1 launch refused while only class 0 should shed: %v", err)
	}

	// Unwedge the drain; the shed counters are cumulative, so the
	// accounting checks below still see the storm.
	close(gate)
	gateOpen = true
	if err := low.Sync(); err != nil {
		t.Fatalf("sync after shed: %v (shed must not poison the session)", err)
	}
	if err := vip.Sync(); err != nil {
		t.Fatal(err)
	}

	// Per-class accounting: class 0 shed, class 1 clean.
	st := g.Snapshot()
	if len(st.Classes) != 2 || st.Classes[0].Shed == 0 || st.Classes[1].Shed != 0 {
		t.Fatalf("class stats off: %+v", st.Classes)
	}
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`grout_class_shed_total{class="0"} `,
		`grout_class_shed_total{class="1"} 0`,
		`grout_gateway_launches_shed_total{tenant="steerage",shard="0"} `,
	} {
		if !strings.Contains(string(body), line) {
			t.Fatalf("metrics missing %q in:\n%s", line, body)
		}
	}

	// Retryable, not sticky: with the backlog drained, the shed tenant's
	// next launch goes through.
	if err := low.Launch("relu", 0, 0, core.ArrRef(la), core.ScalarRef(gwElems)); err != nil {
		t.Fatalf("launch after backlog cleared: %v", err)
	}
	if err := low.Sync(); err != nil {
		t.Fatal(err)
	}
}

// The -race gate for the tentpole's moving parts: tenants storm a tiny
// rate-limited queue while their connections are torn down abruptly,
// racing the drain loop's submissions and the backpressure advisories.
// The gateway must stay serviceable for a fresh tenant afterwards.
func TestGatewayTeardownRacesDrain(t *testing.T) {
	const stormers, launches = 4, 40
	g := gwStart(t, gwSystem(t, nil), Options{
		Limits:     core.SessionLimits{RatePerSec: 500, Burst: 1},
		QueueDepth: 2,
	})
	var wg sync.WaitGroup
	for k := 0; k < stormers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c, err := Dial(g.Addr(), fmt.Sprintf("storm-%d", k), 0, 0)
			if err != nil {
				t.Error(err)
				return
			}
			if k%2 == 0 {
				c.SetHonorBackpressure(false)
			}
			a, err := c.NewArray(memmodel.Float32, gwElems)
			if err != nil {
				t.Error(err)
				return
			}
			c.Buffer(a).Fill(1)
			if err := c.HostWrite(a); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < launches; i++ {
				// Errors are expected once teardown wins the race.
				if err := c.Launch("relu", 0, 0, core.ArrRef(a), core.ScalarRef(gwElems)); err != nil {
					break
				}
				if i == launches/2 {
					// Drop the raw connection mid-storm, no goodbye.
					_ = c.conn.Close()
				}
			}
			_ = c.conn.Close()
		}(k)
	}
	wg.Wait()

	// Every storm session is eventually torn down and the gateway still
	// serves a full program.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := g.Snapshot(); st.Active == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("storm sessions never torn down")
		}
		time.Sleep(5 * time.Millisecond)
	}
	c := gwDial(t, g, "after-the-storm")
	if _, err := clientProgram(c, 0, 8); err != nil {
		t.Fatalf("gateway unserviceable after the storm: %v", err)
	}
}
