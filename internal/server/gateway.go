// Package server implements the multi-tenant session gateway: one TCP
// listener multiplexing many concurrent client programs ("tenants")
// onto a control plane of one or more core.Controller shards sharing a
// worker fleet (DESIGN.md §5.8).
//
// Each connection gets a core.ControllerSession on exactly one shard —
// a private array namespace, an array-byte quota, and per-tenant
// counters. Routing is pluggable (RouteFunc); the sharded plane
// (internal/shard) supplies a seeded consistent-hash ring so a
// restarted gateway routes identically. Launches are not submitted
// inline: the serve goroutine enqueues them on the tenant's bounded
// queue and the owning shard's weighted-round-robin drain goroutine
// feeds that shard's controller, so one chatty tenant cannot starve the
// rest, and a tenant at its in-flight cap simply waits its turn. Each
// shard drains independently — no lock, condvar or credit pool is
// shared between drains, which is what makes aggregate admission scale
// with the shard count. Synchronous operations (allocate, read, write,
// free, build, elapsed) run on the serve goroutine after the tenant's
// queue has flushed, so each session observes its own program order.
//
// Error model: launch submission is asynchronous, so a launch that
// fails after its enqueue turns into a per-session sticky error — every
// later operation of that session reports it, like a poisoned CUDA
// stream. Other sessions never see it.
package server

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"grout/internal/core"
	"grout/internal/transport"
)

// DefaultQueueDepth bounds a tenant's launch queue when Options doesn't.
const DefaultQueueDepth = 64

// Options tune a Gateway. The zero value is serviceable.
type Options struct {
	// Limits apply to every session (Weight < 1 becomes 1; zero fields
	// mean unlimited, per core.SessionLimits).
	Limits core.SessionLimits
	// LimitsFor, when non-nil, overrides Limits per tenant: it is called
	// with the tenant name at session open and its result is used when
	// the second return is true. Lets one gateway give different rate,
	// quota, weight or class to different tenants.
	LimitsFor func(tenant string) (core.SessionLimits, bool)
	// QueueDepth bounds each session's launch queue; a tenant that
	// outruns the drain loop blocks on its own socket, nobody else's.
	// 0 means DefaultQueueDepth, negative means 1.
	QueueDepth int
	// ShedDepth enables class-based load shedding: when a shard's
	// aggregate queued-launch backlog reaches ShedDepth*(class+1), new
	// launches from tenants of that priority class are refused with
	// core.ErrShedded instead of enqueued — lowest class first, each
	// higher class tolerating one more ShedDepth of backlog. Shedding is
	// retryable overload, not a sticky error. 0 disables shedding.
	ShedDepth int
	// HandshakeTimeout bounds the protocol hello on accept. 0 means
	// transport.DefaultDialTimeout, negative disables.
	HandshakeTimeout time.Duration
	// AcceptLoops is the number of goroutines blocked in Accept on the
	// shared listener. One loop serializes the accept+handshake
	// hand-off, so a dial burst (a fleet of clients reconnecting after a
	// gateway restart) queues behind the kernel's accept backlog; N
	// loops pull from it concurrently, the accept-side analog of the
	// per-shard drains. 0 or 1 means one loop; values above the shard
	// count are fine — loops are cheap (a goroutine apiece) and the
	// kernel serializes Accept itself.
	AcceptLoops int
	// Logger, optional.
	Logger *log.Logger
}

// RouteFunc picks the shard for a new tenant session: loads[s] is shard
// s's current session count. Implementations must be safe for
// concurrent calls and deterministic given (tenant, loads) — the
// sharded plane's bounded-load consistent-hash ring qualifies
// (shard.Plane.Route).
type RouteFunc func(tenant string, loads []int) int

// queuedLaunch is one launch waiting in a tenant's queue.
type queuedLaunch struct {
	inv core.Invocation
	at  time.Time
}

// tenant is the gateway's per-connection state around a controller
// session.
type tenant struct {
	id    uint64
	name  string
	sess  *core.ControllerSession
	conn  *transport.SessionConn
	shard *shardState

	queue chan queuedLaunch

	mu       sync.Mutex
	flushed  sync.Cond // signaled when queued drops to 0
	queued   int       // enqueued but not yet handed to the controller
	inflight int       // submitted but not yet dispatched (drain-loop view)
	sticky   error     // first asynchronous launch failure; poisons the session
	dropped  int64     // launches discarded (teardown or poisoned session)
	gone     bool      // torn down; the drain loop must not submit for it

	// Token bucket (SessionLimits.RatePerSec/Burst): tokens is the
	// current allowance, refilled lazily from the wall clock at each
	// check — no timer goroutine per tenant. Guarded by mu.
	tokens     float64
	lastRefill time.Time
}

// rateRoomLocked refills the token bucket from the wall clock and
// reports whether an admission token is available; when not, the second
// return is how long until one refills. Caller holds t.mu. Unlimited
// sessions (RatePerSec <= 0) always have room.
func (t *tenant) rateRoomLocked(now time.Time) (bool, time.Duration) {
	lim := t.sess.Limits()
	if lim.RatePerSec <= 0 {
		return true, 0
	}
	burst := float64(lim.Burst)
	if burst < 1 {
		burst = 1
	}
	t.tokens += now.Sub(t.lastRefill).Seconds() * lim.RatePerSec
	t.lastRefill = now
	if t.tokens > burst {
		t.tokens = burst
	}
	if t.tokens >= 1 {
		return true, 0
	}
	return false, time.Duration((1 - t.tokens) / lim.RatePerSec * float64(time.Second))
}

// takeTokenLocked charges one admission against the bucket. Caller
// holds t.mu and has seen rateRoomLocked return true this round.
func (t *tenant) takeTokenLocked() {
	if t.sess.Limits().RatePerSec > 0 {
		t.tokens--
	}
}

// fillPauseMax scales the queue-fill component of a backpressure
// advisory: a completely full queue suggests this much pause.
const fillPauseMax = 5 * time.Millisecond

// maxAdvisoryPause caps any single suggested pause so a stale advisory
// cannot park a well-behaved client for long.
const maxAdvisoryPause = time.Second

// advisoryLocked builds the tenant's backpressure advisory, or nil when
// the tenant needs none (shallow queue, no token deficit). The pause is
// the larger of two estimates: how long the token bucket needs to cover
// the current backlog, and a queue-fill ramp that reaches fillPauseMax
// at a full queue. Caller holds t.mu.
func (t *tenant) advisoryLocked(qcap int, now time.Time) *transport.Backpressure {
	var pause time.Duration
	if lim := t.sess.Limits(); lim.RatePerSec > 0 {
		// Refill first so the deficit reflects this instant.
		t.rateRoomLocked(now)
		if deficit := float64(t.queued) - t.tokens; deficit > 0 {
			pause = time.Duration(deficit / lim.RatePerSec * float64(time.Second))
		}
	}
	if qcap > 0 && 2*t.queued >= qcap {
		fill := time.Duration(float64(fillPauseMax) * (2*float64(t.queued)/float64(qcap) - 1))
		if fill > pause {
			pause = fill
		}
	}
	if pause <= 0 {
		return nil
	}
	if pause > maxAdvisoryPause {
		pause = maxAdvisoryPause
	}
	return &transport.Backpressure{Queued: t.queued, QueueCap: qcap, Pause: pause}
}

// setSticky records the session's first asynchronous failure.
func (t *tenant) setSticky(err error) {
	t.mu.Lock()
	if t.sticky == nil {
		t.sticky = err
	}
	t.mu.Unlock()
}

// flush blocks until every queued launch has been handed to the
// controller, then reports the session's sticky error, if any. Sync ops
// call it first so each session observes its own program order.
func (t *tenant) flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for t.queued > 0 {
		t.flushed.Wait()
	}
	return t.sticky
}

// shardState is one controller shard's slice of the gateway: its
// sessions, its drain goroutine's condvar and rotation cursor, and its
// admission counter. Every field is guarded by the shard's own mu —
// drains of different shards never touch a shared lock.
type shardState struct {
	idx int
	ctl *core.Controller

	mu        sync.Mutex
	drainCond sync.Cond // wakes this shard's drain loop: enqueue, completion, teardown
	sessions  map[uint64]*tenant
	rr        int           // round-robin rotation cursor
	ces       int64         // launches this shard's drain handed to its controller
	sheds     map[int]int64 // launches refused with ErrShedded, by priority class
}

// Gateway serves tenant sessions over TCP against a sharded control
// plane. The controllers stay owned by the caller: Close tears down
// sessions and the listener, not the fleet.
type Gateway struct {
	shards []*shardState
	route  RouteFunc
	opt    Options
	ln     net.Listener
	log    *log.Logger

	mu     sync.Mutex
	nextID uint64
	total  int64 // sessions ever opened
	closed bool
	done   chan struct{}
	wg     sync.WaitGroup
}

// New starts a single-shard gateway for ctl listening on addr
// ("host:0" picks a free port) — the one-controller deployment is just
// the sharded gateway with N=1.
func New(ctl *core.Controller, addr string, opt Options) (*Gateway, error) {
	return NewSharded([]*core.Controller{ctl}, nil, addr, opt)
}

// NewSharded starts a gateway over one controller shard per entry of
// ctls. route picks each new tenant's shard; nil defaults to an FNV
// hash of the tenant name modulo the shard count (deterministic across
// restarts, but without the bounded-load and minimal-remap properties
// of the consistent-hash ring — pass shard.Plane.Route for those).
func NewSharded(ctls []*core.Controller, route RouteFunc, addr string, opt Options) (*Gateway, error) {
	if len(ctls) == 0 {
		return nil, fmt.Errorf("server: gateway needs at least one controller shard")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	if opt.QueueDepth == 0 {
		opt.QueueDepth = DefaultQueueDepth
	} else if opt.QueueDepth < 0 {
		opt.QueueDepth = 1
	}
	logger := opt.Logger
	if logger == nil {
		logger = log.New(discard{}, "", 0)
	}
	if route == nil {
		route = hashRoute
	}
	g := &Gateway{
		route: route,
		opt:   opt,
		ln:    ln,
		log:   logger,
		done:  make(chan struct{}),
	}
	for i, ctl := range ctls {
		sh := &shardState{idx: i, ctl: ctl, sessions: make(map[uint64]*tenant)}
		sh.drainCond.L = &sh.mu
		g.shards = append(g.shards, sh)
	}
	accepts := opt.AcceptLoops
	if accepts < 1 {
		accepts = 1
	}
	g.wg.Add(accepts + len(g.shards))
	for i := 0; i < accepts; i++ {
		go g.acceptLoop()
	}
	for _, sh := range g.shards {
		go g.drainLoop(sh)
	}
	return g, nil
}

// hashRoute is the default RouteFunc: FNV-1a of the tenant name modulo
// the shard count. Deterministic, load-blind.
func hashRoute(tenant string, loads []int) int {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < len(tenant); i++ {
		h ^= uint64(tenant[i])
		h *= prime
	}
	return int(h % uint64(len(loads)))
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Addr reports the gateway's listening address.
func (g *Gateway) Addr() string { return g.ln.Addr().String() }

// Shards reports the gateway's controller shard count.
func (g *Gateway) Shards() int { return len(g.shards) }

// Close stops accepting, disconnects every session (their arrays are
// freed, their queued launches dropped), and waits for the serve and
// drain goroutines. The controllers are left running.
func (g *Gateway) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	close(g.done)
	g.mu.Unlock()
	var conns []*transport.SessionConn
	for _, sh := range g.shards {
		sh.mu.Lock()
		for _, t := range sh.sessions {
			conns = append(conns, t.conn)
		}
		sh.drainCond.Broadcast()
		sh.mu.Unlock()
	}
	err := g.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	g.wg.Wait()
	return err
}

func (g *Gateway) acceptLoop() {
	defer g.wg.Done()
	for {
		raw, err := g.ln.Accept()
		if err != nil {
			return // listener closed
		}
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			conn, err := transport.AcceptSession(raw, g.opt.HandshakeTimeout)
			if err != nil {
				g.log.Printf("server: handshake from %s: %v", raw.RemoteAddr(), err)
				return
			}
			g.serve(conn)
		}()
	}
}

// loads snapshots every shard's current session count, indexed by shard.
func (g *Gateway) loads() []int {
	out := make([]int, len(g.shards))
	for i, sh := range g.shards {
		sh.mu.Lock()
		out[i] = len(sh.sessions)
		sh.mu.Unlock()
	}
	return out
}

// register opens a session for conn under the given tenant name,
// routing it to a shard.
func (g *Gateway) register(conn *transport.SessionConn, name string) (*tenant, error) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil, fmt.Errorf("server: gateway is shut down")
	}
	g.nextID++
	g.total++
	id := g.nextID
	g.mu.Unlock()
	if name == "" {
		name = fmt.Sprintf("tenant-%d", id)
	}
	s := g.route(name, g.loads())
	if s < 0 || s >= len(g.shards) {
		return nil, fmt.Errorf("server: route sent tenant %q to shard %d of %d", name, s, len(g.shards))
	}
	sh := g.shards[s]
	lim := g.opt.Limits
	if g.opt.LimitsFor != nil {
		if l, ok := g.opt.LimitsFor(name); ok {
			lim = l
		}
	}
	t := &tenant{
		id:    id,
		name:  name,
		sess:  core.NewControllerSession(sh.ctl, name, lim),
		conn:  conn,
		shard: sh,
		queue: make(chan queuedLaunch, g.opt.QueueDepth),
	}
	t.flushed.L = &t.mu
	if lim.RatePerSec > 0 {
		// Start with a full bucket: a fresh session may burst.
		t.tokens = float64(lim.Burst)
		if t.tokens < 1 {
			t.tokens = 1
		}
		t.lastRefill = time.Now()
	}
	sh.mu.Lock()
	sh.sessions[t.id] = t
	sh.mu.Unlock()
	return t, nil
}

// teardown disconnects a tenant: drop its queued launches, wait out the
// ones already handed to the controller, then free its arrays. Runs on
// the tenant's own serve goroutine, so no session method races it.
func (g *Gateway) teardown(t *tenant) {
	sh := t.shard
	sh.mu.Lock()
	delete(sh.sessions, t.id)
	sh.drainCond.Broadcast()
	sh.mu.Unlock()
	t.mu.Lock()
	t.gone = true
	t.mu.Unlock()
	// Drain the queue ourselves; the drain loop may race us for items,
	// but it drops a gone tenant's pops, so either way nothing more is
	// submitted. Then wait for pops still mid-flight in the drain loop.
	for {
		select {
		case <-t.queue:
			t.mu.Lock()
			t.queued--
			t.dropped++
			if t.queued == 0 {
				t.flushed.Broadcast()
			}
			t.mu.Unlock()
			continue
		default:
		}
		break
	}
	t.mu.Lock()
	for t.queued > 0 {
		t.flushed.Wait()
	}
	t.mu.Unlock()
	if err := t.sess.Close(); err != nil {
		g.log.Printf("server: teardown of %q: %v", t.name, err)
	}
}

// serve runs one tenant's request loop. The first frame must be
// SessOpen; every later frame is answered in order.
func (g *Gateway) serve(conn *transport.SessionConn) {
	req := &transport.SessionRequest{}
	reqID, err := conn.ReadRequest(req)
	if err != nil {
		_ = conn.Close()
		return
	}
	resp := &transport.SessionResponse{}
	if req.Kind != transport.SessOpen {
		resp.SetErr(fmt.Errorf("server: expected open, got %v", req.Kind))
		_ = conn.Reply(reqID, resp)
		_ = conn.Close()
		return
	}
	t, err := g.register(conn, req.Name)
	if err != nil {
		resp.SetErr(err)
		_ = conn.Reply(reqID, resp)
		_ = conn.Close()
		return
	}
	resp.Name = t.name
	resp.Shard = t.shard.idx
	resp.ShardCount = len(g.shards)
	if err := conn.Reply(reqID, resp); err != nil {
		g.teardown(t)
		_ = conn.Close()
		return
	}
	g.log.Printf("server: session %q open from %s on shard %d", t.name, conn.RemoteAddr(), t.shard.idx)
	for {
		reqID, err := conn.ReadRequest(req)
		if err != nil {
			break // disconnect: tear the session down below
		}
		resp := &transport.SessionResponse{}
		stop := false
		switch req.Kind {
		case transport.SessPing:
			// nothing: the empty OK response is the answer
		case transport.SessShardInfo:
			resp.Shard = t.shard.idx
			resp.ShardCount = len(g.shards)
		case transport.SessBackpressure:
			t.mu.Lock()
			resp.BP = t.advisoryLocked(g.opt.QueueDepth, time.Now())
			if resp.BP == nil {
				// A poll always gets a frame, even when all is calm.
				resp.BP = &transport.Backpressure{Queued: t.queued, QueueCap: g.opt.QueueDepth}
			}
			t.mu.Unlock()
		case transport.SessLaunch:
			g.handleLaunch(t, req, resp)
		case transport.SessNewArray:
			if err := t.flush(); err != nil {
				resp.SetErr(err)
				break
			}
			id, err := t.sess.NewArray(req.Elem, req.Len)
			resp.Array = id
			resp.SetErr(err)
		case transport.SessHostWrite:
			if err := t.flush(); err != nil {
				resp.SetErr(err)
				break
			}
			_, err := t.sess.HostWrite(req.Array, req.Data)
			resp.SetErr(err)
		case transport.SessHostRead:
			if err := t.flush(); err != nil {
				resp.SetErr(err)
				break
			}
			buf, _, err := t.sess.HostRead(req.Array)
			resp.Data = buf
			resp.SetErr(err)
		case transport.SessFree:
			if err := t.flush(); err != nil {
				resp.SetErr(err)
				break
			}
			resp.SetErr(t.sess.Free(req.Array))
		case transport.SessBuildKernel:
			if err := t.flush(); err != nil {
				resp.SetErr(err)
				break
			}
			def, err := t.sess.BuildKernel(req.Src, req.Signature)
			if err == nil {
				resp.Name = def.Name
			}
			resp.SetErr(err)
		case transport.SessElapsed:
			if err := t.flush(); err != nil {
				resp.SetErr(err)
				break
			}
			resp.Elapsed = int64(t.sess.Elapsed())
		case transport.SessClose:
			stop = true
		case transport.SessOpen:
			resp.SetErr(fmt.Errorf("server: session %q is already open", t.name))
		default:
			resp.SetErr(fmt.Errorf("server: unknown request %v", req.Kind))
		}
		if err := conn.Reply(reqID, resp); err != nil || stop {
			break
		}
	}
	g.teardown(t)
	_ = conn.Close()
	g.log.Printf("server: session %q closed", t.name)
}

// handleLaunch enqueues one launch on the tenant's queue. The reply
// acknowledges the enqueue and, when the tenant's backlog runs hot,
// piggybacks a backpressure advisory; submission failures surface as
// the session's sticky error. With shedding enabled, a launch that
// finds the shard's aggregate backlog over the tenant class's threshold
// is refused with core.ErrShedded instead of enqueued — a retryable
// refusal, not a sticky one.
func (g *Gateway) handleLaunch(t *tenant, req *transport.SessionRequest, resp *transport.SessionResponse) {
	t.mu.Lock()
	if t.sticky != nil {
		err := t.sticky
		t.mu.Unlock()
		resp.SetErr(err)
		return
	}
	t.mu.Unlock()
	if g.opt.ShedDepth > 0 {
		class := t.sess.Limits().Class
		if class < 0 {
			class = 0
		}
		if backlog := t.shard.queuedTotal(); backlog >= g.opt.ShedDepth*(class+1) {
			t.sess.NoteShed()
			t.shard.noteShed(class)
			resp.SetErr(fmt.Errorf("%w: shard %d backlog %d over class-%d threshold %d",
				core.ErrShedded, t.shard.idx, backlog, class, g.opt.ShedDepth*(class+1)))
			return
		}
	}
	t.mu.Lock()
	t.queued++
	t.mu.Unlock()
	q := queuedLaunch{inv: req.Inv, at: time.Now()}
	select {
	case t.queue <- q:
		sh := t.shard
		sh.mu.Lock()
		sh.drainCond.Broadcast()
		sh.mu.Unlock()
		t.mu.Lock()
		resp.BP = t.advisoryLocked(g.opt.QueueDepth, time.Now())
		t.mu.Unlock()
	case <-g.done:
		t.mu.Lock()
		t.queued--
		t.dropped++
		if t.queued == 0 {
			t.flushed.Broadcast()
		}
		t.mu.Unlock()
		resp.SetErr(fmt.Errorf("server: gateway is shut down"))
	}
}

// queuedTotal sums the shard's tenants' queued launches: the aggregate
// admission backlog the shed thresholds compare against.
func (sh *shardState) queuedTotal() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	total := 0
	for _, t := range sh.sessions {
		t.mu.Lock()
		total += t.queued
		t.mu.Unlock()
	}
	return total
}

// noteShed bumps the shard's per-class shed counter.
func (sh *shardState) noteShed(class int) {
	sh.mu.Lock()
	if sh.sheds == nil {
		sh.sheds = make(map[int]int64)
	}
	sh.sheds[class]++
	sh.mu.Unlock()
}

// drainLoop is one shard's admission goroutine: it feeds the shard's
// controller from its tenants' queues by weighted round-robin, honoring
// each session's in-flight cap. Weight-w tenants get up to w
// submissions per pass; a capped or empty tenant just loses its turn.
// Credits are scoped per shard — each loop owns its condvar, cursor and
// roster, so shards admit concurrently without sharing a lock.
func (g *Gateway) drainLoop(sh *shardState) {
	defer g.wg.Done()
	for {
		sh.mu.Lock()
		for !g.isClosed() {
			ready, retry := sh.workReadyLocked(time.Now())
			if ready {
				break
			}
			if retry > 0 {
				// Every submittable tenant is only waiting on its token
				// bucket: nothing will signal the condvar when it refills,
				// so sleep until the earliest refill (bounded, so shutdown
				// stays snappy) and re-check.
				sh.mu.Unlock()
				if retry > maxRateSleep {
					retry = maxRateSleep
				}
				time.Sleep(retry)
				sh.mu.Lock()
				continue
			}
			sh.drainCond.Wait()
		}
		if g.isClosed() {
			sh.mu.Unlock()
			return
		}
		roster := make([]*tenant, 0, len(sh.sessions))
		for _, t := range sh.sessions {
			roster = append(roster, t)
		}
		// Rotate the starting tenant so map-order ties don't favor
		// anyone across rounds.
		if n := len(roster); n > 1 {
			sh.rr = (sh.rr + 1) % n
			roster = append(roster[sh.rr:], roster[:sh.rr]...)
		}
		sh.mu.Unlock()
		sh.drainRound(roster)
		// The round's submissions are this shard's cross-tenant
		// optimizer batch: flush so tenant streams shorter than the
		// lookahead window dispatch now instead of waiting for an
		// unrelated synchronization point (or, at an in-flight cap,
		// forever). Errors surface on the launches' Pendings.
		_ = sh.ctl.FlushWindow()
	}
}

// isClosed reports the gateway-wide shutdown flag; the per-shard drain
// loops poll it between rounds.
func (g *Gateway) isClosed() bool {
	select {
	case <-g.done:
		return true
	default:
		return false
	}
}

// maxRateSleep bounds one rate-limited drain nap so the loop re-checks
// the shutdown flag (and newly signaled work) promptly.
const maxRateSleep = 25 * time.Millisecond

// workReadyLocked reports whether any of the shard's tenants has a
// submittable launch. When none has but at least one is blocked only on
// its token bucket, the second return is the earliest refill delay —
// the drain loop sleeps that long instead of waiting on the condvar,
// which nothing would signal. Caller holds sh.mu.
func (sh *shardState) workReadyLocked(now time.Time) (bool, time.Duration) {
	var retry time.Duration
	for _, t := range sh.sessions {
		t.mu.Lock()
		ready := t.queued > 0 && !t.gone && t.capRoomLocked()
		if ready {
			var wait time.Duration
			if ready, wait = t.rateRoomLocked(now); !ready && (retry == 0 || wait < retry) {
				retry = wait
			}
		}
		t.mu.Unlock()
		if ready {
			return true, 0
		}
	}
	return false, retry
}

// capRoomLocked reports whether the tenant is under its in-flight cap.
func (t *tenant) capRoomLocked() bool {
	cap := t.sess.Limits().MaxInflightCEs
	return cap <= 0 || t.inflight < cap
}

// drainRound makes weighted passes over the shard's roster until no
// tenant can submit anything more right now.
func (sh *shardState) drainRound(roster []*tenant) {
	for progress := true; progress; {
		progress = false
		for _, t := range roster {
			for credits := t.sess.Limits().Weight; credits > 0; credits-- {
				t.mu.Lock()
				rateOK, _ := t.rateRoomLocked(time.Now())
				room := !t.gone && t.capRoomLocked() && rateOK
				t.mu.Unlock()
				if !room {
					// Capped or out of tokens: the tenant loses its turn
					// (the drain loop naps on the refill when every
					// submittable tenant is rate-blocked).
					break
				}
				select {
				case q := <-t.queue:
					t.mu.Lock()
					t.takeTokenLocked()
					t.mu.Unlock()
					sh.submitOne(t, q)
					progress = true
				default:
					credits = 0
				}
			}
		}
	}
}

// submitOne hands one queued launch to the shard's controller on the
// tenant's behalf and watches its dispatch.
func (sh *shardState) submitOne(t *tenant, q queuedLaunch) {
	t.mu.Lock()
	if t.gone || t.sticky != nil {
		t.queued--
		t.dropped++
		if t.queued == 0 {
			t.flushed.Broadcast()
		}
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	t.sess.NoteAdmissionWait(time.Since(q.at))
	p, err := t.sess.Submit(q.inv)
	t.mu.Lock()
	t.queued--
	if err != nil && t.sticky == nil {
		t.sticky = err
	}
	if err == nil {
		t.inflight++
	}
	if t.queued == 0 {
		t.flushed.Broadcast()
	}
	t.mu.Unlock()
	if err != nil {
		return
	}
	sh.mu.Lock()
	sh.ces++
	sh.mu.Unlock()
	go func() {
		_, werr := p.Wait()
		if werr != nil {
			t.setSticky(werr)
		}
		t.mu.Lock()
		t.inflight--
		t.mu.Unlock()
		sh.mu.Lock()
		sh.drainCond.Broadcast()
		sh.mu.Unlock()
	}()
}
