// Package server implements the multi-tenant session gateway: one TCP
// listener multiplexing many concurrent client programs ("tenants")
// onto a single shared core.Controller and its worker fleet.
//
// Each connection gets a core.ControllerSession — a private array
// namespace, an array-byte quota, and per-tenant counters. Launches are
// not submitted inline: the serve goroutine enqueues them on the
// tenant's bounded queue and a single weighted-round-robin drain
// goroutine feeds the controller, so one chatty tenant cannot starve
// the rest, and a tenant at its in-flight cap simply waits its turn.
// Synchronous operations (allocate, read, write, free, build, elapsed)
// run on the serve goroutine after the tenant's queue has flushed, so
// each session observes its own program order.
//
// Error model: launch submission is asynchronous, so a launch that
// fails after its enqueue turns into a per-session sticky error — every
// later operation of that session reports it, like a poisoned CUDA
// stream. Other sessions never see it.
package server

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"grout/internal/core"
	"grout/internal/transport"
)

// DefaultQueueDepth bounds a tenant's launch queue when Options doesn't.
const DefaultQueueDepth = 64

// Options tune a Gateway. The zero value is serviceable.
type Options struct {
	// Limits apply to every session (Weight < 1 becomes 1; zero fields
	// mean unlimited, per core.SessionLimits).
	Limits core.SessionLimits
	// QueueDepth bounds each session's launch queue; a tenant that
	// outruns the drain loop blocks on its own socket, nobody else's.
	// 0 means DefaultQueueDepth, negative means 1.
	QueueDepth int
	// HandshakeTimeout bounds the protocol hello on accept. 0 means
	// transport.DefaultDialTimeout, negative disables.
	HandshakeTimeout time.Duration
	// Logger, optional.
	Logger *log.Logger
}

// queuedLaunch is one launch waiting in a tenant's queue.
type queuedLaunch struct {
	inv core.Invocation
	at  time.Time
}

// tenant is the gateway's per-connection state around a controller
// session.
type tenant struct {
	id   uint64
	name string
	sess *core.ControllerSession
	conn *transport.SessionConn

	queue chan queuedLaunch

	mu       sync.Mutex
	flushed  sync.Cond // signaled when queued drops to 0
	queued   int       // enqueued but not yet handed to the controller
	inflight int       // submitted but not yet dispatched (drain-loop view)
	sticky   error     // first asynchronous launch failure; poisons the session
	dropped  int64     // launches discarded (teardown or poisoned session)
	gone     bool      // torn down; the drain loop must not submit for it
}

// setSticky records the session's first asynchronous failure.
func (t *tenant) setSticky(err error) {
	t.mu.Lock()
	if t.sticky == nil {
		t.sticky = err
	}
	t.mu.Unlock()
}

// flush blocks until every queued launch has been handed to the
// controller, then reports the session's sticky error, if any. Sync ops
// call it first so each session observes its own program order.
func (t *tenant) flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for t.queued > 0 {
		t.flushed.Wait()
	}
	return t.sticky
}

// Gateway serves tenant sessions over TCP against one shared
// controller. The controller stays owned by the caller: Close tears
// down sessions and the listener, not the fleet.
type Gateway struct {
	ctl *core.Controller
	opt Options
	ln  net.Listener
	log *log.Logger

	mu        sync.Mutex
	drainCond sync.Cond // wakes the drain loop: enqueue, completion, teardown
	sessions  map[uint64]*tenant
	nextID    uint64
	total     int64 // sessions ever opened
	rr        int   // round-robin rotation cursor
	closed    bool
	done      chan struct{}
	wg        sync.WaitGroup
}

// New starts a gateway for ctl listening on addr ("host:0" picks a
// free port).
func New(ctl *core.Controller, addr string, opt Options) (*Gateway, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	if opt.QueueDepth == 0 {
		opt.QueueDepth = DefaultQueueDepth
	} else if opt.QueueDepth < 0 {
		opt.QueueDepth = 1
	}
	logger := opt.Logger
	if logger == nil {
		logger = log.New(discard{}, "", 0)
	}
	g := &Gateway{
		ctl:      ctl,
		opt:      opt,
		ln:       ln,
		log:      logger,
		sessions: make(map[uint64]*tenant),
		done:     make(chan struct{}),
	}
	g.drainCond.L = &g.mu
	g.wg.Add(2)
	go g.acceptLoop()
	go g.drainLoop()
	return g, nil
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Addr reports the gateway's listening address.
func (g *Gateway) Addr() string { return g.ln.Addr().String() }

// Close stops accepting, disconnects every session (their arrays are
// freed, their queued launches dropped), and waits for the serve and
// drain goroutines. The controller is left running.
func (g *Gateway) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	close(g.done)
	conns := make([]*transport.SessionConn, 0, len(g.sessions))
	for _, t := range g.sessions {
		conns = append(conns, t.conn)
	}
	g.drainCond.Broadcast()
	g.mu.Unlock()
	err := g.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	g.wg.Wait()
	return err
}

func (g *Gateway) acceptLoop() {
	defer g.wg.Done()
	for {
		raw, err := g.ln.Accept()
		if err != nil {
			return // listener closed
		}
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			conn, err := transport.AcceptSession(raw, g.opt.HandshakeTimeout)
			if err != nil {
				g.log.Printf("server: handshake from %s: %v", raw.RemoteAddr(), err)
				return
			}
			g.serve(conn)
		}()
	}
}

// register opens a session for conn under the given tenant name.
func (g *Gateway) register(conn *transport.SessionConn, name string) (*tenant, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil, fmt.Errorf("server: gateway is shut down")
	}
	g.nextID++
	g.total++
	if name == "" {
		name = fmt.Sprintf("tenant-%d", g.nextID)
	}
	t := &tenant{
		id:    g.nextID,
		name:  name,
		sess:  core.NewControllerSession(g.ctl, name, g.opt.Limits),
		conn:  conn,
		queue: make(chan queuedLaunch, g.opt.QueueDepth),
	}
	t.flushed.L = &t.mu
	g.sessions[t.id] = t
	return t, nil
}

// teardown disconnects a tenant: drop its queued launches, wait out the
// ones already handed to the controller, then free its arrays. Runs on
// the tenant's own serve goroutine, so no session method races it.
func (g *Gateway) teardown(t *tenant) {
	g.mu.Lock()
	delete(g.sessions, t.id)
	g.drainCond.Broadcast()
	g.mu.Unlock()
	t.mu.Lock()
	t.gone = true
	t.mu.Unlock()
	// Drain the queue ourselves; the drain loop may race us for items,
	// but it drops a gone tenant's pops, so either way nothing more is
	// submitted. Then wait for pops still mid-flight in the drain loop.
	for {
		select {
		case <-t.queue:
			t.mu.Lock()
			t.queued--
			t.dropped++
			if t.queued == 0 {
				t.flushed.Broadcast()
			}
			t.mu.Unlock()
			continue
		default:
		}
		break
	}
	t.mu.Lock()
	for t.queued > 0 {
		t.flushed.Wait()
	}
	t.mu.Unlock()
	if err := t.sess.Close(); err != nil {
		g.log.Printf("server: teardown of %q: %v", t.name, err)
	}
}

// serve runs one tenant's request loop. The first frame must be
// SessOpen; every later frame is answered in order.
func (g *Gateway) serve(conn *transport.SessionConn) {
	req := &transport.SessionRequest{}
	reqID, err := conn.ReadRequest(req)
	if err != nil {
		_ = conn.Close()
		return
	}
	resp := &transport.SessionResponse{}
	if req.Kind != transport.SessOpen {
		resp.SetErr(fmt.Errorf("server: expected open, got %v", req.Kind))
		_ = conn.Reply(reqID, resp)
		_ = conn.Close()
		return
	}
	t, err := g.register(conn, req.Name)
	if err != nil {
		resp.SetErr(err)
		_ = conn.Reply(reqID, resp)
		_ = conn.Close()
		return
	}
	resp.Name = t.name
	if err := conn.Reply(reqID, resp); err != nil {
		g.teardown(t)
		_ = conn.Close()
		return
	}
	g.log.Printf("server: session %q open from %s", t.name, conn.RemoteAddr())
	for {
		reqID, err := conn.ReadRequest(req)
		if err != nil {
			break // disconnect: tear the session down below
		}
		resp := &transport.SessionResponse{}
		stop := false
		switch req.Kind {
		case transport.SessPing:
			// nothing: the empty OK response is the answer
		case transport.SessLaunch:
			g.handleLaunch(t, req, resp)
		case transport.SessNewArray:
			if err := t.flush(); err != nil {
				resp.SetErr(err)
				break
			}
			id, err := t.sess.NewArray(req.Elem, req.Len)
			resp.Array = id
			resp.SetErr(err)
		case transport.SessHostWrite:
			if err := t.flush(); err != nil {
				resp.SetErr(err)
				break
			}
			_, err := t.sess.HostWrite(req.Array, req.Data)
			resp.SetErr(err)
		case transport.SessHostRead:
			if err := t.flush(); err != nil {
				resp.SetErr(err)
				break
			}
			buf, _, err := t.sess.HostRead(req.Array)
			resp.Data = buf
			resp.SetErr(err)
		case transport.SessFree:
			if err := t.flush(); err != nil {
				resp.SetErr(err)
				break
			}
			resp.SetErr(t.sess.Free(req.Array))
		case transport.SessBuildKernel:
			if err := t.flush(); err != nil {
				resp.SetErr(err)
				break
			}
			def, err := t.sess.BuildKernel(req.Src, req.Signature)
			if err == nil {
				resp.Name = def.Name
			}
			resp.SetErr(err)
		case transport.SessElapsed:
			if err := t.flush(); err != nil {
				resp.SetErr(err)
				break
			}
			resp.Elapsed = int64(t.sess.Elapsed())
		case transport.SessClose:
			stop = true
		case transport.SessOpen:
			resp.SetErr(fmt.Errorf("server: session %q is already open", t.name))
		default:
			resp.SetErr(fmt.Errorf("server: unknown request %v", req.Kind))
		}
		if err := conn.Reply(reqID, resp); err != nil || stop {
			break
		}
	}
	g.teardown(t)
	_ = conn.Close()
	g.log.Printf("server: session %q closed", t.name)
}

// handleLaunch enqueues one launch on the tenant's queue. The reply
// acknowledges the enqueue; submission failures surface as the
// session's sticky error.
func (g *Gateway) handleLaunch(t *tenant, req *transport.SessionRequest, resp *transport.SessionResponse) {
	t.mu.Lock()
	if t.sticky != nil {
		err := t.sticky
		t.mu.Unlock()
		resp.SetErr(err)
		return
	}
	t.queued++
	t.mu.Unlock()
	q := queuedLaunch{inv: req.Inv, at: time.Now()}
	select {
	case t.queue <- q:
		g.mu.Lock()
		g.drainCond.Broadcast()
		g.mu.Unlock()
	case <-g.done:
		t.mu.Lock()
		t.queued--
		t.dropped++
		if t.queued == 0 {
			t.flushed.Broadcast()
		}
		t.mu.Unlock()
		resp.SetErr(fmt.Errorf("server: gateway is shut down"))
	}
}

// drainLoop is the gateway's single admission goroutine: it feeds the
// controller from the per-tenant queues by weighted round-robin,
// honoring each session's in-flight cap. Weight-w tenants get up to w
// submissions per pass; a capped or empty tenant just loses its turn.
func (g *Gateway) drainLoop() {
	defer g.wg.Done()
	for {
		g.mu.Lock()
		for !g.closed && !g.workReadyLocked() {
			g.drainCond.Wait()
		}
		if g.closed {
			g.mu.Unlock()
			return
		}
		roster := make([]*tenant, 0, len(g.sessions))
		for _, t := range g.sessions {
			roster = append(roster, t)
		}
		// Rotate the starting tenant so map-order ties don't favor
		// anyone across rounds.
		if n := len(roster); n > 1 {
			g.rr = (g.rr + 1) % n
			roster = append(roster[g.rr:], roster[:g.rr]...)
		}
		g.mu.Unlock()
		g.drainRound(roster)
		// The round's submissions are the controller's cross-tenant
		// optimizer batch: flush so tenant streams shorter than the
		// lookahead window dispatch now instead of waiting for an
		// unrelated synchronization point (or, at an in-flight cap,
		// forever). Errors surface on the launches' Pendings.
		_ = g.ctl.FlushWindow()
	}
}

// workReadyLocked reports whether any tenant has a submittable launch.
func (g *Gateway) workReadyLocked() bool {
	for _, t := range g.sessions {
		t.mu.Lock()
		ready := t.queued > 0 && !t.gone && t.capRoomLocked()
		t.mu.Unlock()
		if ready {
			return true
		}
	}
	return false
}

// capRoomLocked reports whether the tenant is under its in-flight cap.
func (t *tenant) capRoomLocked() bool {
	cap := t.sess.Limits().MaxInflightCEs
	return cap <= 0 || t.inflight < cap
}

// drainRound makes weighted passes over the roster until no tenant can
// submit anything more right now.
func (g *Gateway) drainRound(roster []*tenant) {
	for progress := true; progress; {
		progress = false
		for _, t := range roster {
			for credits := t.sess.Limits().Weight; credits > 0; credits-- {
				t.mu.Lock()
				room := !t.gone && t.capRoomLocked()
				t.mu.Unlock()
				if !room {
					break
				}
				select {
				case q := <-t.queue:
					g.submitOne(t, q)
					progress = true
				default:
					credits = 0
				}
			}
		}
	}
}

// submitOne hands one queued launch to the controller on the tenant's
// behalf and watches its dispatch.
func (g *Gateway) submitOne(t *tenant, q queuedLaunch) {
	t.mu.Lock()
	if t.gone || t.sticky != nil {
		t.queued--
		t.dropped++
		if t.queued == 0 {
			t.flushed.Broadcast()
		}
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	t.sess.NoteAdmissionWait(time.Since(q.at))
	p, err := t.sess.Submit(q.inv)
	t.mu.Lock()
	t.queued--
	if err != nil && t.sticky == nil {
		t.sticky = err
	}
	if err == nil {
		t.inflight++
	}
	if t.queued == 0 {
		t.flushed.Broadcast()
	}
	t.mu.Unlock()
	if err != nil {
		return
	}
	go func() {
		_, werr := p.Wait()
		if werr != nil {
			t.setSticky(werr)
		}
		t.mu.Lock()
		t.inflight--
		t.mu.Unlock()
		g.mu.Lock()
		g.drainCond.Broadcast()
		g.mu.Unlock()
	}()
}
