package server

// Operational surface: /healthz and a Prometheus-text /metrics, fed by
// the per-session counters the core session layer keeps. Hand-rolled
// exposition — the container has no Prometheus client library, and the
// text format is trivial to emit.

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"grout/internal/core"
)

// TenantStats is one session's public counter snapshot.
type TenantStats struct {
	Name string
	core.SessionStats
	// Queued counts launches sitting in the gateway queue right now.
	Queued int
	// Dropped counts launches discarded (teardown / poisoned session).
	Dropped int64
}

// Stats is a point-in-time snapshot of the whole gateway.
type Stats struct {
	Active    int   // sessions currently open
	Total     int64 // sessions ever opened
	Failovers int   // workers the shared controller has written off
	Tenants   []TenantStats
}

// Snapshot collects the gateway's current stats, tenants sorted by name.
func (g *Gateway) Snapshot() Stats {
	g.mu.Lock()
	tenants := make([]*tenant, 0, len(g.sessions))
	for _, t := range g.sessions {
		tenants = append(tenants, t)
	}
	st := Stats{Active: len(tenants), Total: g.total}
	g.mu.Unlock()
	st.Failovers = g.ctl.Failovers()
	for _, t := range tenants {
		ts := TenantStats{Name: t.name, SessionStats: t.sess.Stats()}
		t.mu.Lock()
		ts.Queued = t.queued
		ts.Dropped = t.dropped
		t.mu.Unlock()
		st.Tenants = append(st.Tenants, ts)
	}
	sort.Slice(st.Tenants, func(i, j int) bool { return st.Tenants[i].Name < st.Tenants[j].Name })
	return st
}

// Handler returns the gateway's HTTP surface: GET /healthz and
// GET /metrics (Prometheus text exposition).
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		g.mu.Lock()
		closed := g.closed
		g.mu.Unlock()
		if closed {
			http.Error(w, "shutting down", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeMetrics(w, g.Snapshot())
	})
	return mux
}

// escapeLabel escapes a Prometheus label value.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func writeMetrics(w http.ResponseWriter, st Stats) {
	fmt.Fprintln(w, "# HELP grout_gateway_sessions_active Tenant sessions currently open.")
	fmt.Fprintln(w, "# TYPE grout_gateway_sessions_active gauge")
	fmt.Fprintf(w, "grout_gateway_sessions_active %d\n", st.Active)
	fmt.Fprintln(w, "# HELP grout_gateway_sessions_total Tenant sessions ever opened.")
	fmt.Fprintln(w, "# TYPE grout_gateway_sessions_total counter")
	fmt.Fprintf(w, "grout_gateway_sessions_total %d\n", st.Total)
	fmt.Fprintln(w, "# HELP grout_gateway_failovers_total Workers the shared controller wrote off.")
	fmt.Fprintln(w, "# TYPE grout_gateway_failovers_total counter")
	fmt.Fprintf(w, "grout_gateway_failovers_total %d\n", st.Failovers)

	perTenant := []struct {
		name, help, typ string
		val             func(TenantStats) string
	}{
		{"grout_gateway_ces_admitted_total", "CEs handed to the controller.", "counter",
			func(t TenantStats) string { return fmt.Sprintf("%d", t.Admitted) }},
		{"grout_gateway_ces_completed_total", "CEs whose dispatch finished cleanly.", "counter",
			func(t TenantStats) string { return fmt.Sprintf("%d", t.Completed) }},
		{"grout_gateway_ces_aborted_total", "CEs whose dispatch failed.", "counter",
			func(t TenantStats) string { return fmt.Sprintf("%d", t.Aborted) }},
		{"grout_gateway_launches_dropped_total", "Launches discarded before submission.", "counter",
			func(t TenantStats) string { return fmt.Sprintf("%d", t.Dropped) }},
		{"grout_gateway_launch_queue_depth", "Launches waiting in the admission queue.", "gauge",
			func(t TenantStats) string { return fmt.Sprintf("%d", t.Queued) }},
		{"grout_gateway_inflight_ces", "CEs submitted but not yet dispatched.", "gauge",
			func(t TenantStats) string { return fmt.Sprintf("%d", t.Inflight) }},
		{"grout_gateway_array_bytes", "Live framework-managed array bytes.", "gauge",
			func(t TenantStats) string { return fmt.Sprintf("%d", t.ArrayBytes) }},
		{"grout_gateway_admission_wait_seconds_total", "Time launches spent queued before admission.", "counter",
			func(t TenantStats) string { return fmt.Sprintf("%g", t.AdmissionWait.Seconds()) }},
		{"grout_gateway_admission_wait_p99_seconds", "99th-percentile admission wait.", "gauge",
			func(t TenantStats) string { return fmt.Sprintf("%g", t.AdmissionWaitP99.Seconds()) }},
		{"grout_gateway_fused_ces_total", "Producer CEs absorbed into fused kernels by the optimizer window.", "counter",
			func(t TenantStats) string { return fmt.Sprintf("%d", t.FusedCEs) }},
		{"grout_gateway_coalesced_transfers_total", "Operand moves that rode a bulk frame instead of going out individually.", "counter",
			func(t TenantStats) string { return fmt.Sprintf("%d", t.CoalescedTransfers) }},
		{"grout_gateway_eliminated_moves_total", "Argument transfers skipped because the target already held a fresh replica.", "counter",
			func(t TenantStats) string { return fmt.Sprintf("%d", t.EliminatedMoves) }},
	}
	for _, m := range perTenant {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ)
		for _, t := range st.Tenants {
			fmt.Fprintf(w, "%s{tenant=\"%s\"} %s\n", m.name, escapeLabel(t.Name), m.val(t))
		}
	}
}
