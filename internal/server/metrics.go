package server

// Operational surface: /healthz and a Prometheus-text /metrics, fed by
// the per-session counters the core session layer keeps. Hand-rolled
// exposition — the container has no Prometheus client library, and the
// text format is trivial to emit.
//
// Label cardinality: per-tenant series carry exactly two labels, tenant
// and shard, and shard is a function of tenant (one session, one
// shard), so the series count stays O(tenants) — the sharded plane adds
// the shard dimension without multiplying series. Per-shard series
// (grout_shard_*) are O(shards). TestMetricsLabelCardinality enforces
// both bounds.

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"grout/internal/core"
)

// TenantStats is one session's public counter snapshot.
type TenantStats struct {
	Name string
	// Shard is the controller shard serving this session.
	Shard int
	// Class is the session's load-shedding priority class.
	Class int
	core.SessionStats
	// Queued counts launches sitting in the gateway queue right now.
	Queued int
	// Dropped counts launches discarded (teardown / poisoned session).
	Dropped int64
}

// ShardStats is one controller shard's aggregate snapshot.
type ShardStats struct {
	Shard int
	// Sessions currently routed to this shard.
	Sessions int
	// CEs this shard's drain handed to its controller.
	CEs int64
	// QueueDepth is the shard's aggregate admission backlog: launches
	// enqueued by its tenants and not yet submitted.
	QueueDepth int
	// Failovers counts workers this shard's controller wrote off.
	Failovers int
}

// ClassStats aggregates one load-shedding priority class across the
// gateway: the series stay O(classes), far below O(tenants).
type ClassStats struct {
	Class int
	// Shed counts launches of this class refused with ErrShedded.
	Shed int64
	// WaitP99 is the worst per-tenant p99 admission wait in the class.
	WaitP99 time.Duration
}

// Stats is a point-in-time snapshot of the whole gateway.
type Stats struct {
	Active    int   // sessions currently open
	Total     int64 // sessions ever opened
	Failovers int   // workers written off, summed over shards
	Shards    []ShardStats
	Tenants   []TenantStats
	// Classes aggregates shed rate and latency per priority class,
	// sorted by class.
	Classes []ClassStats
}

// Snapshot collects the gateway's current stats, tenants sorted by name
// and classes by class.
func (g *Gateway) Snapshot() Stats {
	g.mu.Lock()
	st := Stats{Total: g.total}
	g.mu.Unlock()
	classes := map[int]*ClassStats{}
	class := func(c int) *ClassStats {
		if cs := classes[c]; cs != nil {
			return cs
		}
		cs := &ClassStats{Class: c}
		classes[c] = cs
		return cs
	}
	for _, sh := range g.shards {
		sh.mu.Lock()
		tenants := make([]*tenant, 0, len(sh.sessions))
		for _, t := range sh.sessions {
			tenants = append(tenants, t)
		}
		ss := ShardStats{Shard: sh.idx, Sessions: len(tenants), CEs: sh.ces}
		for c, n := range sh.sheds {
			class(c).Shed += n
		}
		sh.mu.Unlock()
		ss.Failovers = sh.ctl.Failovers()
		for _, t := range tenants {
			ts := TenantStats{Name: t.name, Shard: sh.idx,
				Class: t.sess.Limits().Class, SessionStats: t.sess.Stats()}
			t.mu.Lock()
			ts.Queued = t.queued
			ts.Dropped = t.dropped
			t.mu.Unlock()
			ss.QueueDepth += ts.Queued
			if cs := class(ts.Class); ts.AdmissionWaitP99 > cs.WaitP99 {
				cs.WaitP99 = ts.AdmissionWaitP99
			}
			st.Tenants = append(st.Tenants, ts)
		}
		st.Active += ss.Sessions
		st.Failovers += ss.Failovers
		st.Shards = append(st.Shards, ss)
	}
	sort.Slice(st.Tenants, func(i, j int) bool { return st.Tenants[i].Name < st.Tenants[j].Name })
	for _, cs := range classes {
		st.Classes = append(st.Classes, *cs)
	}
	sort.Slice(st.Classes, func(i, j int) bool { return st.Classes[i].Class < st.Classes[j].Class })
	return st
}

// Handler returns the gateway's HTTP surface: GET /healthz and
// GET /metrics (Prometheus text exposition).
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if g.isClosed() {
			http.Error(w, "shutting down", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeMetrics(w, g.Snapshot())
	})
	return mux
}

// escapeLabel escapes a Prometheus label value.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func writeMetrics(w http.ResponseWriter, st Stats) {
	fmt.Fprintln(w, "# HELP grout_gateway_sessions_active Tenant sessions currently open.")
	fmt.Fprintln(w, "# TYPE grout_gateway_sessions_active gauge")
	fmt.Fprintf(w, "grout_gateway_sessions_active %d\n", st.Active)
	fmt.Fprintln(w, "# HELP grout_gateway_sessions_total Tenant sessions ever opened.")
	fmt.Fprintln(w, "# TYPE grout_gateway_sessions_total counter")
	fmt.Fprintf(w, "grout_gateway_sessions_total %d\n", st.Total)
	fmt.Fprintln(w, "# HELP grout_gateway_failovers_total Workers written off, summed over shards.")
	fmt.Fprintln(w, "# TYPE grout_gateway_failovers_total counter")
	fmt.Fprintf(w, "grout_gateway_failovers_total %d\n", st.Failovers)

	fmt.Fprintln(w, "# HELP grout_shard_ce_total Launches each shard's drain handed to its controller.")
	fmt.Fprintln(w, "# TYPE grout_shard_ce_total counter")
	for _, s := range st.Shards {
		fmt.Fprintf(w, "grout_shard_ce_total{shard=\"%d\"} %d\n", s.Shard, s.CEs)
	}
	fmt.Fprintln(w, "# HELP grout_shard_queue_depth Launches waiting in each shard's admission queues.")
	fmt.Fprintln(w, "# TYPE grout_shard_queue_depth gauge")
	for _, s := range st.Shards {
		fmt.Fprintf(w, "grout_shard_queue_depth{shard=\"%d\"} %d\n", s.Shard, s.QueueDepth)
	}

	perTenant := []struct {
		name, help, typ string
		val             func(TenantStats) string
	}{
		{"grout_gateway_ces_admitted_total", "CEs handed to the controller.", "counter",
			func(t TenantStats) string { return fmt.Sprintf("%d", t.Admitted) }},
		{"grout_gateway_ces_completed_total", "CEs whose dispatch finished cleanly.", "counter",
			func(t TenantStats) string { return fmt.Sprintf("%d", t.Completed) }},
		{"grout_gateway_ces_aborted_total", "CEs whose dispatch failed.", "counter",
			func(t TenantStats) string { return fmt.Sprintf("%d", t.Aborted) }},
		{"grout_gateway_launches_dropped_total", "Launches discarded before submission.", "counter",
			func(t TenantStats) string { return fmt.Sprintf("%d", t.Dropped) }},
		{"grout_gateway_launches_shed_total", "Launches refused with ErrShedded (class-based load shedding).", "counter",
			func(t TenantStats) string { return fmt.Sprintf("%d", t.LaunchesShed) }},
		{"grout_gateway_launch_queue_depth", "Launches waiting in the admission queue.", "gauge",
			func(t TenantStats) string { return fmt.Sprintf("%d", t.Queued) }},
		{"grout_gateway_inflight_ces", "CEs submitted but not yet dispatched.", "gauge",
			func(t TenantStats) string { return fmt.Sprintf("%d", t.Inflight) }},
		{"grout_gateway_array_bytes", "Live framework-managed array bytes.", "gauge",
			func(t TenantStats) string { return fmt.Sprintf("%d", t.ArrayBytes) }},
		{"grout_gateway_admission_wait_seconds_total", "Time launches spent queued before admission.", "counter",
			func(t TenantStats) string { return fmt.Sprintf("%g", t.AdmissionWait.Seconds()) }},
		{"grout_gateway_admission_wait_p99_seconds", "99th-percentile admission wait.", "gauge",
			func(t TenantStats) string { return fmt.Sprintf("%g", t.AdmissionWaitP99.Seconds()) }},
		{"grout_gateway_fused_ces_total", "Producer CEs absorbed into fused kernels by the optimizer window.", "counter",
			func(t TenantStats) string { return fmt.Sprintf("%d", t.FusedCEs) }},
		{"grout_gateway_coalesced_transfers_total", "Operand moves that rode a bulk frame instead of going out individually.", "counter",
			func(t TenantStats) string { return fmt.Sprintf("%d", t.CoalescedTransfers) }},
		{"grout_gateway_eliminated_moves_total", "Argument transfers skipped because the target already held a fresh replica.", "counter",
			func(t TenantStats) string { return fmt.Sprintf("%d", t.EliminatedMoves) }},
	}
	for _, m := range perTenant {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ)
		for _, t := range st.Tenants {
			fmt.Fprintf(w, "%s{tenant=\"%s\",shard=\"%d\"} %s\n", m.name, escapeLabel(t.Name), t.Shard, m.val(t))
		}
	}

	// Per-class overload series: O(classes) cardinality, one label.
	fmt.Fprintln(w, "# HELP grout_class_shed_total Launches refused with ErrShedded, by priority class.")
	fmt.Fprintln(w, "# TYPE grout_class_shed_total counter")
	for _, c := range st.Classes {
		fmt.Fprintf(w, "grout_class_shed_total{class=\"%d\"} %d\n", c.Class, c.Shed)
	}
	fmt.Fprintln(w, "# HELP grout_class_admission_wait_p99_seconds Worst per-tenant p99 admission wait, by priority class.")
	fmt.Fprintln(w, "# TYPE grout_class_admission_wait_p99_seconds gauge")
	for _, c := range st.Classes {
		fmt.Fprintf(w, "grout_class_admission_wait_p99_seconds{class=\"%d\"} %g\n", c.Class, c.WaitP99.Seconds())
	}
}
