package server

// Operational surface: /healthz and a Prometheus-text /metrics, fed by
// the per-session counters the core session layer keeps. Hand-rolled
// exposition — the container has no Prometheus client library, and the
// text format is trivial to emit.
//
// Label cardinality: per-tenant series carry exactly two labels, tenant
// and shard, and shard is a function of tenant (one session, one
// shard), so the series count stays O(tenants) — the sharded plane adds
// the shard dimension without multiplying series. Per-shard series
// (grout_shard_*) are O(shards). TestMetricsLabelCardinality enforces
// both bounds.

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"grout/internal/core"
)

// TenantStats is one session's public counter snapshot.
type TenantStats struct {
	Name string
	// Shard is the controller shard serving this session.
	Shard int
	core.SessionStats
	// Queued counts launches sitting in the gateway queue right now.
	Queued int
	// Dropped counts launches discarded (teardown / poisoned session).
	Dropped int64
}

// ShardStats is one controller shard's aggregate snapshot.
type ShardStats struct {
	Shard int
	// Sessions currently routed to this shard.
	Sessions int
	// CEs this shard's drain handed to its controller.
	CEs int64
	// QueueDepth is the shard's aggregate admission backlog: launches
	// enqueued by its tenants and not yet submitted.
	QueueDepth int
	// Failovers counts workers this shard's controller wrote off.
	Failovers int
}

// Stats is a point-in-time snapshot of the whole gateway.
type Stats struct {
	Active    int   // sessions currently open
	Total     int64 // sessions ever opened
	Failovers int   // workers written off, summed over shards
	Shards    []ShardStats
	Tenants   []TenantStats
}

// Snapshot collects the gateway's current stats, tenants sorted by name.
func (g *Gateway) Snapshot() Stats {
	g.mu.Lock()
	st := Stats{Total: g.total}
	g.mu.Unlock()
	for _, sh := range g.shards {
		sh.mu.Lock()
		tenants := make([]*tenant, 0, len(sh.sessions))
		for _, t := range sh.sessions {
			tenants = append(tenants, t)
		}
		ss := ShardStats{Shard: sh.idx, Sessions: len(tenants), CEs: sh.ces}
		sh.mu.Unlock()
		ss.Failovers = sh.ctl.Failovers()
		for _, t := range tenants {
			ts := TenantStats{Name: t.name, Shard: sh.idx, SessionStats: t.sess.Stats()}
			t.mu.Lock()
			ts.Queued = t.queued
			ts.Dropped = t.dropped
			t.mu.Unlock()
			ss.QueueDepth += ts.Queued
			st.Tenants = append(st.Tenants, ts)
		}
		st.Active += ss.Sessions
		st.Failovers += ss.Failovers
		st.Shards = append(st.Shards, ss)
	}
	sort.Slice(st.Tenants, func(i, j int) bool { return st.Tenants[i].Name < st.Tenants[j].Name })
	return st
}

// Handler returns the gateway's HTTP surface: GET /healthz and
// GET /metrics (Prometheus text exposition).
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if g.isClosed() {
			http.Error(w, "shutting down", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeMetrics(w, g.Snapshot())
	})
	return mux
}

// escapeLabel escapes a Prometheus label value.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func writeMetrics(w http.ResponseWriter, st Stats) {
	fmt.Fprintln(w, "# HELP grout_gateway_sessions_active Tenant sessions currently open.")
	fmt.Fprintln(w, "# TYPE grout_gateway_sessions_active gauge")
	fmt.Fprintf(w, "grout_gateway_sessions_active %d\n", st.Active)
	fmt.Fprintln(w, "# HELP grout_gateway_sessions_total Tenant sessions ever opened.")
	fmt.Fprintln(w, "# TYPE grout_gateway_sessions_total counter")
	fmt.Fprintf(w, "grout_gateway_sessions_total %d\n", st.Total)
	fmt.Fprintln(w, "# HELP grout_gateway_failovers_total Workers written off, summed over shards.")
	fmt.Fprintln(w, "# TYPE grout_gateway_failovers_total counter")
	fmt.Fprintf(w, "grout_gateway_failovers_total %d\n", st.Failovers)

	fmt.Fprintln(w, "# HELP grout_shard_ce_total Launches each shard's drain handed to its controller.")
	fmt.Fprintln(w, "# TYPE grout_shard_ce_total counter")
	for _, s := range st.Shards {
		fmt.Fprintf(w, "grout_shard_ce_total{shard=\"%d\"} %d\n", s.Shard, s.CEs)
	}
	fmt.Fprintln(w, "# HELP grout_shard_queue_depth Launches waiting in each shard's admission queues.")
	fmt.Fprintln(w, "# TYPE grout_shard_queue_depth gauge")
	for _, s := range st.Shards {
		fmt.Fprintf(w, "grout_shard_queue_depth{shard=\"%d\"} %d\n", s.Shard, s.QueueDepth)
	}

	perTenant := []struct {
		name, help, typ string
		val             func(TenantStats) string
	}{
		{"grout_gateway_ces_admitted_total", "CEs handed to the controller.", "counter",
			func(t TenantStats) string { return fmt.Sprintf("%d", t.Admitted) }},
		{"grout_gateway_ces_completed_total", "CEs whose dispatch finished cleanly.", "counter",
			func(t TenantStats) string { return fmt.Sprintf("%d", t.Completed) }},
		{"grout_gateway_ces_aborted_total", "CEs whose dispatch failed.", "counter",
			func(t TenantStats) string { return fmt.Sprintf("%d", t.Aborted) }},
		{"grout_gateway_launches_dropped_total", "Launches discarded before submission.", "counter",
			func(t TenantStats) string { return fmt.Sprintf("%d", t.Dropped) }},
		{"grout_gateway_launch_queue_depth", "Launches waiting in the admission queue.", "gauge",
			func(t TenantStats) string { return fmt.Sprintf("%d", t.Queued) }},
		{"grout_gateway_inflight_ces", "CEs submitted but not yet dispatched.", "gauge",
			func(t TenantStats) string { return fmt.Sprintf("%d", t.Inflight) }},
		{"grout_gateway_array_bytes", "Live framework-managed array bytes.", "gauge",
			func(t TenantStats) string { return fmt.Sprintf("%d", t.ArrayBytes) }},
		{"grout_gateway_admission_wait_seconds_total", "Time launches spent queued before admission.", "counter",
			func(t TenantStats) string { return fmt.Sprintf("%g", t.AdmissionWait.Seconds()) }},
		{"grout_gateway_admission_wait_p99_seconds", "99th-percentile admission wait.", "gauge",
			func(t TenantStats) string { return fmt.Sprintf("%g", t.AdmissionWaitP99.Seconds()) }},
		{"grout_gateway_fused_ces_total", "Producer CEs absorbed into fused kernels by the optimizer window.", "counter",
			func(t TenantStats) string { return fmt.Sprintf("%d", t.FusedCEs) }},
		{"grout_gateway_coalesced_transfers_total", "Operand moves that rode a bulk frame instead of going out individually.", "counter",
			func(t TenantStats) string { return fmt.Sprintf("%d", t.CoalescedTransfers) }},
		{"grout_gateway_eliminated_moves_total", "Argument transfers skipped because the target already held a fresh replica.", "counter",
			func(t TenantStats) string { return fmt.Sprintf("%d", t.EliminatedMoves) }},
	}
	for _, m := range perTenant {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ)
		for _, t := range st.Tenants {
			fmt.Fprintf(w, "%s{tenant=\"%s\",shard=\"%d\"} %s\n", m.name, escapeLabel(t.Name), t.Shard, m.val(t))
		}
	}
}
