// Package polyglot is the reproduction's stand-in for the GraalVM polyglot
// API surface GrOUT exposes (paper §IV-A, Listing 1): host programs obtain
// framework-managed arrays and kernels by evaluating descriptor strings in
// a "language" — GrCUDA for the single-node runtime, GrOUT for the
// scale-out controller. Porting a workload between the two is the paper's
// Listing 2 one-line change: the language name in Eval.
//
//	ctx := polyglot.NewGroutContext(controller)
//	build, _ := ctx.Eval(polyglot.GrOUT, "buildkernel")
//	square, _ := build.Build(kernelSrc, "pointer float, sint32")
//	x, _ := ctx.Eval(polyglot.GrOUT, "float[100]")
//	square.Configure(4, 32).Launch(x.Array, 100)
//	v, _ := x.Array.Get(0)
package polyglot

import (
	"fmt"
	"strconv"
	"strings"

	"grout/internal/core"
	"grout/internal/dag"
	"grout/internal/gpusim"
	"grout/internal/grcuda"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/sim"
	"grout/internal/workloads"
)

// Language selects the runtime a descriptor is evaluated against.
type Language string

// The two languages of the paper's evaluation.
const (
	GrCUDA Language = "grcuda"
	GrOUT  Language = "grout"
)

// Context is a polyglot evaluation context bound to one runtime engine.
type Context struct {
	lang    Language
	session workloads.Session
	reg     *kernels.Registry
	build   func(src, signature string) (*kernels.Def, error)
	arrays  map[dag.ArrayID]*DeviceArray
	// rt is set for single-node contexts and enables the manual UVM
	// tuning surface (advise/prefetch, paper §II-A).
	rt *grcuda.Runtime
}

// NewSingleNodeContext binds a context to a GrCUDA single-node runtime.
func NewSingleNodeContext(rt *grcuda.Runtime) *Context {
	return &Context{
		lang:    GrCUDA,
		session: &workloads.SingleNode{RT: rt},
		reg:     rt.Registry(),
		build:   rt.BuildKernel,
		arrays:  make(map[dag.ArrayID]*DeviceArray),
		rt:      rt,
	}
}

// NewGroutContext binds a context to a GrOUT controller.
func NewGroutContext(ctl *core.Controller) *Context {
	return &Context{
		lang:    GrOUT,
		session: &workloads.Grout{Ctl: ctl},
		reg:     ctl.Registry(),
		build:   ctl.BuildKernel,
		arrays:  make(map[dag.ArrayID]*DeviceArray),
	}
}

// Language reports the context's bound language.
func (c *Context) Language() Language { return c.lang }

// Elapsed reports the bound runtime's virtual makespan.
func (c *Context) Elapsed() sim.VirtualTime { return c.session.Elapsed() }

// Value is the result of Eval: a device array, a 2-D device matrix, or a
// kernel builder.
type Value struct {
	Array  *DeviceArray
	Matrix *DeviceMatrix
	Build  *Builder
}

// Eval evaluates a descriptor: either "buildkernel" (returns a Builder) or
// an array constructor like "float[1024]", "int[100]" or "double[4096]".
func (c *Context) Eval(lang Language, code string) (Value, error) {
	if lang != c.lang {
		return Value{}, fmt.Errorf("polyglot: context is bound to %q, not %q (construct the matching context)", c.lang, lang)
	}
	code = strings.TrimSpace(code)
	if code == "buildkernel" {
		return Value{Build: &Builder{ctx: c}}, nil
	}
	kind, dims, err := parseDescriptor(code)
	if err != nil {
		return Value{}, err
	}
	total := int64(1)
	for _, d := range dims {
		total *= d
	}
	id, err := c.session.NewArray(kind, total)
	if err != nil {
		return Value{}, err
	}
	arr := &DeviceArray{ctx: c, id: id, kind: kind, length: total, hostValid: true}
	c.arrays[id] = arr
	if len(dims) == 2 {
		return Value{Matrix: &DeviceMatrix{flat: arr, rows: dims[0], cols: dims[1]}}, nil
	}
	return Value{Array: arr}, nil
}

// DeviceMatrix is a row-major 2-D device array ("float[R][C]" in Eval),
// stored as one flat UVM allocation — GrCUDA's multi-dimensional device
// array surface.
type DeviceMatrix struct {
	flat *DeviceArray
	rows int64
	cols int64
}

// Rows returns the row count.
func (m *DeviceMatrix) Rows() int64 { return m.rows }

// Cols returns the column count.
func (m *DeviceMatrix) Cols() int64 { return m.cols }

// Array returns the flat backing array, usable as a kernel argument
// (kernels receive row-major data plus the dimensions as scalars).
func (m *DeviceMatrix) Array() *DeviceArray { return m.flat }

// Get reads element (i, j) from host code.
func (m *DeviceMatrix) Get(i, j int64) (float64, error) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		return 0, fmt.Errorf("polyglot: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols)
	}
	return m.flat.Get(i*m.cols + j)
}

// Set writes element (i, j) from host code.
func (m *DeviceMatrix) Set(i, j int64, v float64) error {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		return fmt.Errorf("polyglot: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols)
	}
	return m.flat.Set(i*m.cols+j, v)
}

// parseDescriptor parses "float[1024]" and "float[2][512]" constructors,
// returning the element kind and the dimension list (one or two entries).
func parseDescriptor(code string) (memmodel.ElemKind, []int64, error) {
	open := strings.IndexByte(code, '[')
	if open < 0 || !strings.HasSuffix(code, "]") {
		return 0, nil, fmt.Errorf("polyglot: unknown descriptor %q (want \"buildkernel\" or \"<type>[<len>]\")", code)
	}
	kindName := strings.TrimSpace(code[:open])
	kind, ok := memmodel.KindFromName(kindName)
	if !ok {
		return 0, nil, fmt.Errorf("polyglot: unknown element type %q", kindName)
	}
	var dims []int64
	rest := strings.TrimSpace(code[open:])
	for rest != "" {
		if rest[0] != '[' {
			return 0, nil, fmt.Errorf("polyglot: malformed descriptor %q", code)
		}
		close := strings.IndexByte(rest, ']')
		if close < 0 {
			return 0, nil, fmt.Errorf("polyglot: malformed descriptor %q", code)
		}
		lenStr := strings.TrimSpace(rest[1:close])
		n, err := strconv.ParseInt(lenStr, 10, 64)
		if err != nil || n <= 0 {
			return 0, nil, fmt.Errorf("polyglot: bad array length %q", lenStr)
		}
		dims = append(dims, n)
		rest = strings.TrimSpace(rest[close+1:])
	}
	if len(dims) == 0 || len(dims) > 2 {
		return 0, nil, fmt.Errorf("polyglot: %d dimensions not supported in %q", len(dims), code)
	}
	return kind, dims, nil
}

// parseArrayDescriptor retains the 1-D entry point used by fuzzing.
func parseArrayDescriptor(code string) (memmodel.ElemKind, int64, error) {
	kind, dims, err := parseDescriptor(code)
	if err != nil {
		return 0, 0, err
	}
	total := int64(1)
	for _, d := range dims {
		total *= d
	}
	return kind, total, nil
}

// DeviceArray is a UVM array exposed to the host language. Host-side reads
// and writes are tracked lazily: element writes become one host-write CE
// when a kernel next consumes the array; element reads trigger one
// host-read CE when the host copy is stale.
type DeviceArray struct {
	ctx       *Context
	id        dag.ArrayID
	kind      memmodel.ElemKind
	length    int64
	hostValid bool
	hostDirty bool
}

// ID returns the framework-wide array ID.
func (a *DeviceArray) ID() dag.ArrayID { return a.id }

// Len returns the element count.
func (a *DeviceArray) Len() int64 { return a.length }

// Kind returns the element kind.
func (a *DeviceArray) Kind() memmodel.ElemKind { return a.kind }

// Set writes element i from host code.
func (a *DeviceArray) Set(i int64, v float64) error {
	if i < 0 || i >= a.length {
		return fmt.Errorf("polyglot: index %d out of range for array of %d", i, a.length)
	}
	buf := a.ctx.session.Buffer(a.id)
	if buf == nil {
		return fmt.Errorf("polyglot: array data is unavailable in cost-model-only mode")
	}
	if !a.hostValid {
		// Read-modify-write: fetch the current contents first.
		if err := a.ctx.session.HostRead(a.id); err != nil {
			return err
		}
		a.hostValid = true
	}
	buf.Set(int(i), v)
	a.hostDirty = true
	return nil
}

// Get reads element i from host code, synchronizing with pending device
// work (the print(x) of paper Listing 1).
func (a *DeviceArray) Get(i int64) (float64, error) {
	if i < 0 || i >= a.length {
		return 0, fmt.Errorf("polyglot: index %d out of range for array of %d", i, a.length)
	}
	buf := a.ctx.session.Buffer(a.id)
	if buf == nil {
		return 0, fmt.Errorf("polyglot: array data is unavailable in cost-model-only mode")
	}
	if !a.hostValid {
		if err := a.ctx.session.HostRead(a.id); err != nil {
			return 0, err
		}
		a.hostValid = true
	}
	return buf.At(int(i)), nil
}

// Free releases the array on every node that holds a replica. Further use
// of the handle fails.
func (a *DeviceArray) Free() error {
	if err := a.ctx.session.Free(a.id); err != nil {
		return err
	}
	delete(a.ctx.arrays, a.id)
	a.hostValid = false
	return nil
}

// flushHostWrites emits the pending host-write CE, making host mutations
// visible to subsequent kernels.
func (a *DeviceArray) flushHostWrites() error {
	if !a.hostDirty {
		return nil
	}
	if err := a.ctx.session.HostWrite(a.id); err != nil {
		return err
	}
	a.hostDirty = false
	a.hostValid = true
	return nil
}

// Builder is the buildkernel function: it compiles mini-CUDA source (the
// NVRTC path) or resolves a pre-registered native kernel.
type Builder struct {
	ctx *Context
}

// Build compiles CUDA-C source with an NFI signature and registers the
// kernel with the bound runtime (and, under GrOUT, with every worker).
func (b *Builder) Build(src, signature string) (*KernelHandle, error) {
	def, err := b.ctx.build(src, signature)
	if err != nil {
		return nil, err
	}
	return &KernelHandle{ctx: b.ctx, def: def}, nil
}

// Prebuilt resolves an already-registered (native) kernel by name — the
// paper's "pre-compiled kernels are also supported" path.
func (b *Builder) Prebuilt(name string) (*KernelHandle, error) {
	def, ok := b.ctx.reg.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("polyglot: no registered kernel %q", name)
	}
	return &KernelHandle{ctx: b.ctx, def: def}, nil
}

// KernelHandle is a compiled kernel bound to a context.
type KernelHandle struct {
	ctx *Context
	def *kernels.Def
}

// Name returns the kernel's name.
func (k *KernelHandle) Name() string { return k.def.Name }

// Configure sets the launch configuration, mirroring CUDA's
// kernel<<<grid, block>>> (paper: square(GRID_SIZE, BLOCK_SIZE)).
func (k *KernelHandle) Configure(grid, block int) *ConfiguredKernel {
	return &ConfiguredKernel{handle: k, grid: grid, block: block}
}

// ConfiguredKernel is a kernel with its launch configuration applied.
type ConfiguredKernel struct {
	handle      *KernelHandle
	grid, block int
}

// Launch submits the kernel as a CE. Arguments are *DeviceArray for
// pointer parameters and Go numbers for scalars.
func (ck *ConfiguredKernel) Launch(args ...any) error {
	k := ck.handle
	refs := make([]core.ArgRef, len(args))
	var touched []*DeviceArray
	for i, a := range args {
		switch v := a.(type) {
		case *DeviceArray:
			if v.ctx != k.ctx {
				return fmt.Errorf("polyglot: argument %d belongs to a different context", i)
			}
			if err := v.flushHostWrites(); err != nil {
				return err
			}
			refs[i] = core.ArrRef(v.id)
			touched = append(touched, v)
		case int:
			refs[i] = core.ScalarRef(float64(v))
		case int64:
			refs[i] = core.ScalarRef(float64(v))
		case float64:
			refs[i] = core.ScalarRef(v)
		case float32:
			refs[i] = core.ScalarRef(float64(v))
		default:
			return fmt.Errorf("polyglot: unsupported argument %d of type %T", i, a)
		}
	}
	if err := k.ctx.session.Launch(k.def.Name, ck.grid, ck.block, refs...); err != nil {
		return err
	}
	// Mark written arrays host-stale.
	metas := make([]kernels.ArgMeta, len(args))
	for i, r := range refs {
		if r.IsArray {
			if arr := k.ctx.arrays[r.Array]; arr != nil {
				metas[i] = kernels.ArgMeta{IsBuffer: true, Len: arr.length}
			}
		} else {
			metas[i] = kernels.ArgMeta{Scalar: r.Scalar}
		}
	}
	accs := k.def.Access(metas)
	for i, r := range refs {
		if !r.IsArray || i >= len(accs) {
			continue
		}
		if accs[i].Mode.Writes() {
			if arr := k.ctx.arrays[r.Array]; arr != nil {
				arr.hostValid = false
			}
		}
	}
	_ = touched
	return nil
}

// Advise applies a manual UVM hint to the array (the paper §II-A
// hand-tuning path). Only available on single-node (GrCUDA) contexts:
// under GrOUT, placement is the scheduler's job.
func (a *DeviceArray) Advise(adv gpusim.Advise, preferredDevice int) error {
	if a.ctx.rt == nil {
		return fmt.Errorf("polyglot: memory advise is managed automatically under GrOUT")
	}
	return a.ctx.rt.Advise(a.id, adv, preferredDevice)
}

// Prefetch issues a bulk migration of the array to a device (single-node
// contexts only).
func (a *DeviceArray) Prefetch(device int) error {
	if a.ctx.rt == nil {
		return fmt.Errorf("polyglot: prefetch is managed automatically under GrOUT")
	}
	if err := a.flushHostWrites(); err != nil {
		return err
	}
	_, err := a.ctx.rt.Prefetch(a.id, device, 0)
	return err
}
