package polyglot

import "testing"

// FuzzArrayDescriptor: arbitrary Eval descriptors must never panic and
// accepted ones must describe positive-length arrays.
func FuzzArrayDescriptor(f *testing.F) {
	f.Add("float[100]")
	f.Add("double[1]")
	f.Add("int[999999]")
	f.Add("float[")
	f.Add("[4]")
	f.Add("float[2][3]")
	f.Fuzz(func(t *testing.T, code string) {
		kind, n, err := parseArrayDescriptor(code)
		if err != nil {
			return
		}
		if n <= 0 {
			t.Fatalf("accepted non-positive length %d for %q (kind %v)", n, code, kind)
		}
	})
}
