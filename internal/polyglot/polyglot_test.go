package polyglot

import (
	"math"
	"testing"

	"grout/internal/cluster"
	"grout/internal/core"
	"grout/internal/gpusim"
	"grout/internal/grcuda"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/policy"
)

const squareSrc = `
extern "C" __global__ void square(float *x, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        x[i] = x[i] * x[i];
    }
}`

func singleCtx(t testing.TB) *Context {
	t.Helper()
	rt := grcuda.NewRuntime(gpusim.NewNode(gpusim.OCIWorkerSpec("w")),
		kernels.StdRegistry(), grcuda.Options{ExecuteNumeric: true})
	return NewSingleNodeContext(rt)
}

func groutCtx(t testing.TB) *Context {
	t.Helper()
	clu := cluster.New(cluster.PaperSpec(2))
	fab := core.NewLocalFabric(clu, kernels.StdRegistry(), true)
	ctl := core.NewController(fab, policy.NewRoundRobin(), core.Options{Numeric: true})
	return NewGroutContext(ctl)
}

// runListing1 runs the paper's Listing 1 program on any context: build the
// square kernel, allocate x[100], initialize x[i] = i, launch, read back.
func runListing1(t *testing.T, ctx *Context, lang Language) {
	t.Helper()
	buildVal, err := ctx.Eval(lang, "buildkernel")
	if err != nil {
		t.Fatal(err)
	}
	square, err := buildVal.Build.Build(squareSrc, "pointer float, sint32")
	if err != nil {
		t.Fatal(err)
	}
	xVal, err := ctx.Eval(lang, "float[100]")
	if err != nil {
		t.Fatal(err)
	}
	x := xVal.Array
	for i := int64(0); i < 100; i++ {
		if err := x.Set(i, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := square.Configure(4, 32).Launch(x, 100); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		v, err := x.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		if v != float64(i*i) {
			t.Fatalf("x[%d] = %v, want %v", i, v, i*i)
		}
	}
	if ctx.Elapsed() == 0 {
		t.Fatalf("no virtual time elapsed")
	}
}

func TestListing1OnGrCUDA(t *testing.T) {
	runListing1(t, singleCtx(t), GrCUDA)
}

func TestListing1OnGrOUT(t *testing.T) {
	// The paper's Listing 2: same program, language switched to GrOUT.
	runListing1(t, groutCtx(t), GrOUT)
}

func TestLanguageMismatch(t *testing.T) {
	ctx := singleCtx(t)
	if _, err := ctx.Eval(GrOUT, "float[10]"); err == nil {
		t.Fatalf("wrong language accepted")
	}
	if ctx.Language() != GrCUDA {
		t.Fatalf("language = %v", ctx.Language())
	}
}

func TestArrayDescriptors(t *testing.T) {
	ctx := singleCtx(t)
	for code, kind := range map[string]memmodel.ElemKind{
		"float[16]":   memmodel.Float32,
		"double[8]":   memmodel.Float64,
		"int[4]":      memmodel.Int32,
		"long[2]":     memmodel.Int64,
		" float[16] ": memmodel.Float32,
	} {
		v, err := ctx.Eval(GrCUDA, code)
		if err != nil {
			t.Fatalf("Eval(%q): %v", code, err)
		}
		if v.Array == nil || v.Array.Kind() != kind {
			t.Fatalf("Eval(%q) = %+v", code, v)
		}
	}
	for _, bad := range []string{
		"float[0]", "float[-3]", "float[x]", "quaternion[4]", "float", "banana",
	} {
		if _, err := ctx.Eval(GrCUDA, bad); err == nil {
			t.Fatalf("Eval(%q) accepted", bad)
		}
	}
}

func TestArrayBounds(t *testing.T) {
	ctx := singleCtx(t)
	v, _ := ctx.Eval(GrCUDA, "float[4]")
	if err := v.Array.Set(4, 1); err == nil {
		t.Fatalf("out-of-range set accepted")
	}
	if _, err := v.Array.Get(-1); err == nil {
		t.Fatalf("out-of-range get accepted")
	}
	if v.Array.Len() != 4 {
		t.Fatalf("len = %d", v.Array.Len())
	}
}

func TestPrebuiltKernels(t *testing.T) {
	ctx := singleCtx(t)
	b, _ := ctx.Eval(GrCUDA, "buildkernel")
	axpy, err := b.Build.Prebuilt("axpy")
	if err != nil {
		t.Fatal(err)
	}
	if axpy.Name() != "axpy" {
		t.Fatalf("name = %q", axpy.Name())
	}
	if _, err := b.Build.Prebuilt("nonexistent"); err == nil {
		t.Fatalf("missing prebuilt accepted")
	}
	y, _ := ctx.Eval(GrCUDA, "float[8]")
	x, _ := ctx.Eval(GrCUDA, "float[8]")
	for i := int64(0); i < 8; i++ {
		if err := x.Array.Set(i, 2); err != nil {
			t.Fatal(err)
		}
		if err := y.Array.Set(i, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := axpy.Configure(1, 8).Launch(y.Array, x.Array, 3.0, 8); err != nil {
		t.Fatal(err)
	}
	got, _ := y.Array.Get(0)
	if got != 7 { // 1 + 3*2
		t.Fatalf("axpy result = %v, want 7", got)
	}
}

func TestLaunchArgValidation(t *testing.T) {
	ctx := singleCtx(t)
	b, _ := ctx.Eval(GrCUDA, "buildkernel")
	square, err := b.Build.Build(squareSrc, "")
	if err != nil {
		t.Fatal(err)
	}
	x, _ := ctx.Eval(GrCUDA, "float[4]")
	// Unsupported argument type.
	if err := square.Configure(1, 4).Launch(x.Array, "four"); err == nil {
		t.Fatalf("string argument accepted")
	}
	// Array from another context.
	other := singleCtx(t)
	foreign, _ := other.Eval(GrCUDA, "float[4]")
	if err := square.Configure(1, 4).Launch(foreign.Array, 4); err == nil {
		t.Fatalf("foreign array accepted")
	}
}

func TestHostWriteFlushCreatesDependency(t *testing.T) {
	// Set -> Launch -> Get must produce host-write, kernel, host-read CEs
	// in dependency order.
	rt := grcuda.NewRuntime(gpusim.NewNode(gpusim.OCIWorkerSpec("w")),
		kernels.StdRegistry(), grcuda.Options{ExecuteNumeric: true})
	ctx := NewSingleNodeContext(rt)
	b, _ := ctx.Eval(GrCUDA, "buildkernel")
	square, _ := b.Build.Build(squareSrc, "")
	x, _ := ctx.Eval(GrCUDA, "float[16]")
	if err := x.Array.Set(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := square.Configure(1, 16).Launch(x.Array, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := x.Array.Get(0); err != nil {
		t.Fatal(err)
	}
	g := rt.Graph()
	if g.Size() != 3 {
		t.Fatalf("CE count = %d, want 3 (host-write, kernel, host-read)", g.Size())
	}
	if g.MaxDepth() != 3 {
		t.Fatalf("chain depth = %d, want 3", g.MaxDepth())
	}
	// Repeated Get without intervening kernel must not add CEs.
	if _, err := x.Array.Get(1); err != nil {
		t.Fatal(err)
	}
	if g.Size() != 3 {
		t.Fatalf("cached read created CE")
	}
}

func TestBuildErrors(t *testing.T) {
	ctx := singleCtx(t)
	b, _ := ctx.Eval(GrCUDA, "buildkernel")
	if _, err := b.Build.Build("not a kernel", ""); err == nil {
		t.Fatalf("garbage source accepted")
	}
	if _, err := b.Build.Build(squareSrc, "pointer double, sint32"); err == nil {
		t.Fatalf("mismatched signature accepted")
	}
}

func TestGroutDistributesListing1Work(t *testing.T) {
	clu := cluster.New(cluster.PaperSpec(2))
	fab := core.NewLocalFabric(clu, kernels.StdRegistry(), true)
	ctl := core.NewController(fab, policy.NewRoundRobin(), core.Options{Numeric: true})
	ctx := NewGroutContext(ctl)
	b, _ := ctx.Eval(GrOUT, "buildkernel")
	square, err := b.Build.Build(squareSrc, "")
	if err != nil {
		t.Fatal(err)
	}
	// Two independent arrays: round-robin should place their kernels on
	// different workers.
	for i := 0; i < 2; i++ {
		v, _ := ctx.Eval(GrOUT, "float[64]")
		if err := v.Array.Set(0, 2); err != nil {
			t.Fatal(err)
		}
		if err := square.Configure(2, 32).Launch(v.Array, 64); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[cluster.NodeID]bool{}
	for _, tr := range ctl.Traces() {
		if tr.Label == "square" {
			seen[tr.Node] = true
		}
	}
	if len(seen) != 2 {
		t.Fatalf("kernels not distributed: %v", seen)
	}
}

func TestGetNumericAcrossRuntimesMatch(t *testing.T) {
	run := func(ctx *Context, lang Language) float64 {
		b, _ := ctx.Eval(lang, "buildkernel")
		square, err := b.Build.Build(squareSrc, "")
		if err != nil {
			t.Fatal(err)
		}
		x, _ := ctx.Eval(lang, "float[32]")
		for i := int64(0); i < 32; i++ {
			if err := x.Array.Set(i, float64(i)*0.5); err != nil {
				t.Fatal(err)
			}
		}
		if err := square.Configure(1, 32).Launch(x.Array, 32); err != nil {
			t.Fatal(err)
		}
		var sum float64
		for i := int64(0); i < 32; i++ {
			v, err := x.Array.Get(i)
			if err != nil {
				t.Fatal(err)
			}
			sum += v
		}
		return sum
	}
	a := run(singleCtx(t), GrCUDA)
	g := run(groutCtx(t), GrOUT)
	if math.Abs(a-g) > 1e-6 {
		t.Fatalf("results differ: single %v vs grout %v", a, g)
	}
}

func TestHandTuningSurface(t *testing.T) {
	ctx := singleCtx(t)
	v, _ := ctx.Eval(GrCUDA, "float[1048576]")
	if err := v.Array.Advise(gpusim.AdvisePreferredLocation, 0); err != nil {
		t.Fatal(err)
	}
	if err := v.Array.Prefetch(0); err != nil {
		t.Fatal(err)
	}
	// Under GrOUT the manual surface is rejected: placement is the
	// scheduler's job.
	g := groutCtx(t)
	gv, _ := g.Eval(GrOUT, "float[1024]")
	if err := gv.Array.Advise(gpusim.AdviseReadMostly, 0); err == nil {
		t.Fatalf("advise accepted under GrOUT")
	}
	if err := gv.Array.Prefetch(0); err == nil {
		t.Fatalf("prefetch accepted under GrOUT")
	}
}

func TestMatrixDescriptor(t *testing.T) {
	ctx := singleCtx(t)
	v, err := ctx.Eval(GrCUDA, "float[2][3]")
	if err != nil {
		t.Fatal(err)
	}
	m := v.Matrix
	if m == nil || v.Array != nil {
		t.Fatalf("2-D descriptor did not return a matrix: %+v", v)
	}
	if m.Rows() != 2 || m.Cols() != 3 || m.Array().Len() != 6 {
		t.Fatalf("matrix shape = %dx%d/%d", m.Rows(), m.Cols(), m.Array().Len())
	}
	if err := m.Set(1, 2, 42); err != nil {
		t.Fatal(err)
	}
	got, err := m.Get(1, 2)
	if err != nil || got != 42 {
		t.Fatalf("m[1][2] = %v, %v", got, err)
	}
	// Row-major layout: element (1,2) is flat index 5.
	flat, _ := m.Array().Get(5)
	if flat != 42 {
		t.Fatalf("flat[5] = %v, want 42", flat)
	}
	if err := m.Set(2, 0, 1); err == nil {
		t.Fatalf("row out of range accepted")
	}
	if _, err := m.Get(0, 3); err == nil {
		t.Fatalf("col out of range accepted")
	}
	// 3-D descriptors are rejected.
	if _, err := ctx.Eval(GrCUDA, "float[2][3][4]"); err == nil {
		t.Fatalf("3-D descriptor accepted")
	}
}

func TestMatrixAsKernelArgument(t *testing.T) {
	// The gemv native kernel over a matrix built with the 2-D descriptor.
	ctx := singleCtx(t)
	b, _ := ctx.Eval(GrCUDA, "buildkernel")
	gemv, err := b.Build.Prebuilt("gemv")
	if err != nil {
		t.Fatal(err)
	}
	av, _ := ctx.Eval(GrCUDA, "float[2][3]")
	A := av.Matrix
	for i := int64(0); i < 2; i++ {
		for j := int64(0); j < 3; j++ {
			if err := A.Set(i, j, float64(i*3+j+1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	xv, _ := ctx.Eval(GrCUDA, "float[3]")
	for j := int64(0); j < 3; j++ {
		_ = xv.Array.Set(j, 1)
	}
	yv, _ := ctx.Eval(GrCUDA, "float[2]")
	if err := gemv.Configure(1, 2).Launch(yv.Array, A.Array(), xv.Array, 2, 3); err != nil {
		t.Fatal(err)
	}
	y0, _ := yv.Array.Get(0)
	y1, _ := yv.Array.Get(1)
	if y0 != 6 || y1 != 15 {
		t.Fatalf("gemv over matrix = [%v %v], want [6 15]", y0, y1)
	}
}

func TestDeviceArrayFree(t *testing.T) {
	for _, mk := range []func() (*Context, Language){
		func() (*Context, Language) { return singleCtx(t), GrCUDA },
		func() (*Context, Language) { return groutCtx(t), GrOUT },
	} {
		ctx, lang := mk()
		v, err := ctx.Eval(lang, "float[64]")
		if err != nil {
			t.Fatal(err)
		}
		if err := v.Array.Set(0, 5); err != nil {
			t.Fatal(err)
		}
		if err := v.Array.Free(); err != nil {
			t.Fatal(err)
		}
		if err := v.Array.Free(); err == nil {
			t.Fatalf("%s: double free accepted", lang)
		}
		// A fresh array can be allocated afterwards.
		if _, err := ctx.Eval(lang, "float[64]"); err != nil {
			t.Fatal(err)
		}
	}
}
