package polyglot

import (
	"testing"

	"grout/internal/minicuda"
)

// TestRepeatedBuildHitsCache: a host program that evaluates "buildkernel"
// and rebuilds the same source every iteration (the common pattern in
// ported GrCUDA workloads) must only pay for compilation once, on both the
// single-node and the scale-out language bindings.
func TestRepeatedBuildHitsCache(t *testing.T) {
	for _, tc := range []struct {
		lang Language
		ctx  *Context
	}{
		{GrCUDA, singleCtx(t)},
		{GrOUT, groutCtx(t)},
	} {
		t.Run(string(tc.lang), func(t *testing.T) {
			buildVal, err := tc.ctx.Eval(tc.lang, "buildkernel")
			if err != nil {
				t.Fatal(err)
			}
			h1, err := buildVal.Build.Build(squareSrc, "pointer float, sint32")
			if err != nil {
				t.Fatal(err)
			}
			_, _, frontend0 := minicuda.CompileStats()
			for i := 0; i < 4; i++ {
				h2, err := buildVal.Build.Build(squareSrc, "pointer float, sint32")
				if err != nil {
					t.Fatal(err)
				}
				if h2.def != h1.def {
					t.Fatalf("rebuild %d produced a different kernel definition", i)
				}
			}
			if _, _, frontend1 := minicuda.CompileStats(); frontend1 != frontend0 {
				t.Fatalf("%s: rebuilds re-ran the compiler front end (%d -> %d)",
					tc.lang, frontend0, frontend1)
			}
		})
	}
}
