// Package bench regenerates every figure of the paper's evaluation
// (§V): Figure 1 (Black–Scholes under oversubscription), Figure 6a
// (single-node slowdowns), Figure 6b (GrOUT two-node slowdowns), Figure 7
// (speedup vs single node), Figure 8 (online vs offline policies at 3×
// oversubscription) and Figure 9 (controller scheduling overhead vs
// cluster size).
//
// Workload execution time is virtual (the GPU/UVM and network simulators);
// Figure 9's scheduling overhead is measured wall-clock around the real
// policy code, exactly as the paper does.
package bench

import (
	"fmt"
	"io"
	"time"

	"grout/internal/cluster"
	"grout/internal/core"
	"grout/internal/gpusim"
	"grout/internal/grcuda"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/policy"
	"grout/internal/sim"
	"grout/internal/workloads"
)

// RunCap is the paper's per-run execution-time cap (2.5 hours): runs whose
// virtual time exceeds it are reported as capped, like the paper's
// out-of-time single-node MV runs.
const RunCap = sim.VirtualTime(2*time.Hour + 30*time.Minute)

// PaperSizes are the evaluated footprints, 4 GiB (0.125×) to 160 GiB (5×).
var PaperSizes = []memmodel.Bytes{
	4 * memmodel.GiB, 32 * memmodel.GiB, 64 * memmodel.GiB,
	96 * memmodel.GiB, 128 * memmodel.GiB, 160 * memmodel.GiB,
}

// OversubscriptionFactor reports footprint over the 32 GiB of a worker's
// two V100s, the paper's x-axis.
func OversubscriptionFactor(footprint memmodel.Bytes) float64 {
	return float64(footprint) / float64(32*memmodel.GiB)
}

// Result is the outcome of one workload run.
type Result struct {
	Workload  string
	Footprint memmodel.Bytes
	Factor    float64
	Workers   int // 0 = single-node GrCUDA baseline
	Policy    string
	Elapsed   sim.VirtualTime
	Capped    bool
	Moved     memmodel.Bytes
	Err       error
}

// cap applies the paper's execution-time cap.
func (r Result) cap() Result {
	if r.Elapsed > RunCap {
		r.Elapsed = RunCap
		r.Capped = true
	}
	return r
}

// Seconds reports elapsed virtual seconds.
func (r Result) Seconds() float64 { return r.Elapsed.Seconds() }

// TunedVector returns the user-provided vector-step vector the paper's
// offline roofline uses for each workload: it maps each partition's CE
// run to one node.
func TunedVector(workload string) []int {
	switch workload {
	case "mle":
		return []int{8} // one pipeline-pair (8 kernel CEs) per node
	default:
		return []int{1} // alternate partitions across nodes
	}
}

// RunSingle executes a workload on the single-node GrCUDA baseline.
func RunSingle(name string, p workloads.Params) Result {
	w, ok := workloads.ExtendedSuite()[name]
	if !ok {
		return Result{Workload: name, Err: fmt.Errorf("bench: unknown workload %q", name)}
	}
	rt := grcuda.NewRuntime(gpusim.NewNode(gpusim.OCIWorkerSpec("single")),
		kernels.StdRegistry(), grcuda.Options{})
	s := &workloads.SingleNode{RT: rt}
	res := Result{
		Workload:  name,
		Footprint: p.Footprint,
		Factor:    OversubscriptionFactor(p.Footprint),
		Workers:   0,
		Policy:    "single-node",
	}
	if err := w.Build(s, p); err != nil {
		res.Err = err
		return res
	}
	res.Elapsed = s.Elapsed()
	return res.cap()
}

// RunGrout executes a workload on GrOUT with the given worker count and
// policy.
func RunGrout(name string, p workloads.Params, workers int, pol policy.Policy) Result {
	w, ok := workloads.ExtendedSuite()[name]
	if !ok {
		return Result{Workload: name, Err: fmt.Errorf("bench: unknown workload %q", name)}
	}
	clu := cluster.New(cluster.PaperSpec(workers))
	fab := core.NewLocalFabric(clu, kernels.StdRegistry(), false)
	ctl := core.NewController(fab, pol, core.Options{})
	s := &workloads.Grout{Ctl: ctl}
	res := Result{
		Workload:  name,
		Footprint: p.Footprint,
		Factor:    OversubscriptionFactor(p.Footprint),
		Workers:   workers,
		Policy:    pol.Name(),
	}
	if err := w.Build(s, p); err != nil {
		res.Err = err
		return res
	}
	res.Elapsed = s.Elapsed()
	res.Moved = ctl.MovedBytes()
	return res.cap()
}

// Series is one line of a figure: a labelled sequence of points.
type Series struct {
	Name   string
	Points []Point
}

// Point is one measurement.
type Point struct {
	// X is the sweep coordinate (footprint GiB, node count, ...).
	X float64
	// Value is the measured quantity (seconds, slowdown, speedup, µs).
	Value float64
	// Capped marks runs that hit the 2.5 h execution cap.
	Capped bool
}

// Fig1 regenerates Figure 1: Black–Scholes execution time for increasing
// input sizes on one two-GPU node; sizes past 32 GiB oversubscribe (the
// paper's red bars).
func Fig1() Series {
	s := Series{Name: "blackscholes-single-node"}
	for _, size := range PaperSizes {
		r := RunSingle("bs", workloads.Params{Footprint: size})
		s.Points = append(s.Points, Point{
			X: size.GiBf(), Value: r.Seconds(), Capped: r.Capped,
		})
	}
	return s
}

// Fig6a regenerates Figure 6a: per-workload slowdown relative to the 4 GiB
// run on a single node.
func Fig6a() []Series {
	return slowdownSweep(func(name string, p workloads.Params) Result {
		return RunSingle(name, p)
	})
}

// Fig6b regenerates Figure 6b: the same slowdown sweep on GrOUT with two
// nodes under the offline vector-step policy.
func Fig6b() []Series {
	return slowdownSweep(func(name string, p workloads.Params) Result {
		vs, err := policy.NewVectorStep(TunedVector(name))
		if err != nil {
			return Result{Workload: name, Err: err}
		}
		return RunGrout(name, p, 2, vs)
	})
}

func slowdownSweep(run func(string, workloads.Params) Result) []Series {
	var out []Series
	for _, name := range []string{"mle", "cg", "mv"} {
		s := Series{Name: name}
		var base float64
		for _, size := range PaperSizes {
			r := run(name, workloads.Params{Footprint: size})
			secs := r.Seconds()
			if size == PaperSizes[0] {
				base = secs
			}
			v := 0.0
			if base > 0 {
				v = secs / base
			}
			s.Points = append(s.Points, Point{X: size.GiBf(), Value: v, Capped: r.Capped})
		}
		out = append(out, s)
	}
	return out
}

// Fig7 regenerates Figure 7: the speedup of GrOUT (two nodes, vector-step)
// over the single-node execution at the same oversubscription factor.
func Fig7() []Series {
	var out []Series
	for _, name := range []string{"mle", "cg", "mv"} {
		s := Series{Name: name}
		for _, size := range PaperSizes {
			p := workloads.Params{Footprint: size}
			single := RunSingle(name, p)
			vs, _ := policy.NewVectorStep(TunedVector(name))
			grout := RunGrout(name, p, 2, vs)
			v := 0.0
			if grout.Seconds() > 0 {
				v = single.Seconds() / grout.Seconds()
			}
			s.Points = append(s.Points, Point{
				X: OversubscriptionFactor(size), Value: v,
				Capped: single.Capped || grout.Capped,
			})
		}
		out = append(out, s)
	}
	return out
}

// Fig8Entry is one bar of Figure 8: a workload × policy execution time at
// 3× oversubscription, normalized to the round-robin baseline.
type Fig8Entry struct {
	Workload   string
	Policy     string
	Level      policy.ExplorationLevel
	Seconds    float64
	Normalized float64 // vs round-robin (lower is better)
	Capped     bool
}

// Fig8 regenerates Figure 8: online (min-transfer-size/time) vs offline
// (vector-step) policies against the round-robin baseline at 96 GiB, under
// the three exploration/exploitation levels.
func Fig8() []Fig8Entry {
	const foot = 96 * memmodel.GiB
	var out []Fig8Entry
	for _, level := range []policy.ExplorationLevel{policy.Low, policy.Medium, policy.High} {
		for _, name := range []string{"mle", "cg", "mv"} {
			p := workloads.Params{Footprint: foot}
			base := RunGrout(name, p, 2, policy.NewRoundRobin())
			entries := []struct {
				pol policy.Policy
			}{
				{policy.NewRoundRobin()},
				{mustVectorStep(TunedVector(name))},
				{policy.NewMinTransferSize(level)},
				{policy.NewMinTransferTime(level)},
			}
			for _, e := range entries {
				r := RunGrout(name, p, 2, e.pol)
				norm := 0.0
				if base.Seconds() > 0 {
					norm = r.Seconds() / base.Seconds()
				}
				out = append(out, Fig8Entry{
					Workload: name, Policy: e.pol.Name(), Level: level,
					Seconds: r.Seconds(), Normalized: norm, Capped: r.Capped,
				})
			}
		}
	}
	return out
}

func mustVectorStep(v []int) policy.Policy {
	p, err := policy.NewVectorStep(v)
	if err != nil {
		panic(err)
	}
	return p
}

// Fig9NodeCounts are the cluster sizes of Figure 9.
var Fig9NodeCounts = []int{2, 4, 8, 16, 32, 64, 128, 256}

// Fig9 regenerates Figure 9: the wall-clock time the Controller spends on
// the scheduling decision per CE, for each policy, as the node count
// grows. Returns series of mean microseconds per CE.
func Fig9(cesPerRun int) []Series {
	if cesPerRun <= 0 {
		cesPerRun = 512
	}
	mk := func(name string) func() policy.Policy {
		return func() policy.Policy {
			p, err := policy.New(name, []int{1}, policy.Medium)
			if err != nil {
				panic(err)
			}
			return p
		}
	}
	policies := []func() policy.Policy{
		mk("round-robin"), mk("vector-step"),
		mk("min-transfer-size"), mk("min-transfer-time"),
	}
	var out []Series
	for _, mkPol := range policies {
		s := Series{Name: mkPol().Name()}
		for _, nodes := range Fig9NodeCounts {
			us := schedulingOverheadProbe(nodes, cesPerRun, mkPol())
			s.Points = append(s.Points, Point{X: float64(nodes), Value: us})
		}
		out = append(out, s)
	}
	return out
}

// Fig9Compare contrasts the submission paths on the Figure 9 synthetic
// stream: for each policy and node count, the wall-clock time the CE
// stream is blocked per submission — Launch for the serial path
// (scheduling + dispatch inline), Submit for the pipelined one
// (scheduling only; dispatch overlaps with later admissions), and Submit
// behind the lookahead optimizer window (batched scheduling, fusion,
// transfer coalescing). Three series per policy — "<policy>/serial",
// "<policy>/pipelined" and "<policy>/pipelined+opt" — in microseconds
// per CE.
func Fig9Compare(cesPerRun int) []Series {
	if cesPerRun <= 0 {
		cesPerRun = 512
	}
	names := []string{"round-robin", "vector-step", "min-transfer-size", "min-transfer-time"}
	mk := func(name string) policy.Policy {
		p, err := policy.New(name, []int{1}, policy.Medium)
		if err != nil {
			panic(err)
		}
		return p
	}
	modes := []struct {
		suffix string
		opts   core.Options
	}{
		{"/serial", core.Options{}},
		{"/pipelined", core.Options{Pipeline: true}},
		{"/pipelined+opt", core.Options{Pipeline: true, OptimizeWindow: 32}},
	}
	var out []Series
	for _, name := range names {
		for _, mode := range modes {
			s := Series{Name: name + mode.suffix}
			for _, nodes := range Fig9NodeCounts {
				us := submitWallClockProbe(nodes, cesPerRun, mk(name), mode.opts)
				s.Points = append(s.Points, Point{X: float64(nodes), Value: us})
			}
			out = append(out, s)
		}
	}
	return out
}

// submitWallClockProbe measures the wall-clock microseconds per CE the
// caller is blocked submitting the Fig. 9 stream (the final drain is not
// part of the per-CE admission cost and is excluded).
func submitWallClockProbe(nodes, ces int, pol policy.Policy, opts core.Options) float64 {
	clu := cluster.New(cluster.PaperSpec(nodes))
	fab := core.NewLocalFabric(clu, kernels.StdRegistry(), false)
	ctl := core.NewController(fab, pol, opts)
	defer ctl.Close()
	const arrays = 16
	ids := make([]core.ArgRef, arrays)
	const elems = int64(16 * memmodel.MiB / 4)
	for i := range ids {
		arr, err := ctl.NewArray(memmodel.Float32, elems)
		if err != nil {
			panic(err)
		}
		ids[i] = core.ArrRef(arr.ID)
	}
	start := time.Now()
	for i := 0; i < ces; i++ {
		inv := core.Invocation{
			Kernel: "relu",
			Args:   []core.ArgRef{ids[i%arrays], core.ScalarRef(float64(elems))},
		}
		var err error
		if opts.Pipeline || opts.OptimizeWindow > 0 {
			_, err = ctl.Submit(inv)
		} else {
			_, err = ctl.Launch(inv)
		}
		if err != nil {
			panic(err)
		}
	}
	blocked := time.Since(start)
	if err := ctl.Drain(); err != nil {
		panic(err)
	}
	return float64(blocked.Nanoseconds()) / float64(ces) / 1e3
}

// schedulingOverheadProbe runs a synthetic CE stream on a cluster of the
// given size and reports the controller's mean scheduling overhead in
// microseconds per CE.
func schedulingOverheadProbe(nodes, ces int, pol policy.Policy) float64 {
	clu := cluster.New(cluster.PaperSpec(nodes))
	fab := core.NewLocalFabric(clu, kernels.StdRegistry(), false)
	ctl := core.NewController(fab, pol, core.Options{})
	const arrays = 16
	ids := make([]core.ArgRef, arrays)
	const elems = int64(16 * memmodel.MiB / 4)
	for i := range ids {
		arr, err := ctl.NewArray(memmodel.Float32, elems)
		if err != nil {
			panic(err)
		}
		ids[i] = core.ArrRef(arr.ID)
	}
	for i := 0; i < ces; i++ {
		_, err := ctl.Launch(core.Invocation{
			Kernel: "relu",
			Args:   []core.ArgRef{ids[i%arrays], core.ScalarRef(float64(elems))},
		})
		if err != nil {
			panic(err)
		}
	}
	return float64(ctl.MeanSchedulingOverhead().Nanoseconds()) / 1e3
}

// PrintSeries renders series as an aligned text table, one row per series.
func PrintSeries(w io.Writer, title, xLabel, vFmt string, series []Series) {
	fmt.Fprintf(w, "%s\n", title)
	if len(series) == 0 {
		return
	}
	nameW := len(xLabel)
	for _, s := range series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	fmt.Fprintf(w, "%-*s", nameW, xLabel)
	for _, p := range series[0].Points {
		fmt.Fprintf(w, "%12.4g", p.X)
	}
	fmt.Fprintln(w)
	for _, s := range series {
		fmt.Fprintf(w, "%-*s", nameW, s.Name)
		for _, p := range s.Points {
			cell := fmt.Sprintf(vFmt, p.Value)
			if p.Capped {
				cell += "*"
			}
			fmt.Fprintf(w, "%12s", cell)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(* = hit the 2.5h execution cap)")
}

// PrintFig8 renders Figure 8's entries grouped by exploration level.
func PrintFig8(w io.Writer, entries []Fig8Entry) {
	fmt.Fprintln(w, "Fig 8: policy comparison at 3x oversubscription (96 GiB, 2 nodes)")
	fmt.Fprintln(w, "normalized execution time vs round-robin (lower is better)")
	last := policy.ExplorationLevel(-1)
	for _, e := range entries {
		if e.Level != last {
			fmt.Fprintf(w, "-- exploration level: %s --\n", e.Level)
			last = e.Level
		}
		capped := ""
		if e.Capped {
			capped = " (capped)"
		}
		fmt.Fprintf(w, "  %-4s %-18s %10.2fs   norm %6.3f%s\n",
			e.Workload, e.Policy, e.Seconds, e.Normalized, capped)
	}
}

// Fig5DAGs renders each workload's CE-dependency graph in Graphviz DOT
// format — the structural content of the paper's Figure 5 — built from a
// small cost-model-only run.
func Fig5DAGs() map[string]string {
	out := make(map[string]string)
	for _, name := range []string{"mle", "cg", "mv"} {
		rt := grcuda.NewRuntime(gpusim.NewNode(gpusim.OCIWorkerSpec("fig5")),
			kernels.StdRegistry(), grcuda.Options{})
		s := &workloads.SingleNode{RT: rt}
		w := Suite()[name]
		if err := w.Build(s, workloads.Params{
			Footprint: 256 * memmodel.MiB, Blocks: 2, Iterations: 1,
		}); err != nil {
			out[name] = "// error: " + err.Error()
			continue
		}
		out[name] = rt.Graph().DOT(name)
	}
	return out
}

// Suite re-exports the workload suite for callers that already import
// bench.
func Suite() map[string]*workloads.Workload { return workloads.Suite() }
