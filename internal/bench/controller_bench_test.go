package bench

import (
	"testing"

	"grout/internal/cluster"
	"grout/internal/core"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/policy"
)

// throughputCase is one controller-throughput configuration: a policy
// constructor and a cluster size.
type throughputCase struct {
	name  string
	nodes int
	pol   func() policy.Policy
}

func throughputCases() []throughputCase {
	mtt := func() policy.Policy { return policy.NewMinTransferTime(policy.Medium) }
	return []throughputCase{
		{name: "rr-256w", nodes: 256, pol: func() policy.Policy { return policy.NewRoundRobin() }},
		{name: "mtt-16w", nodes: 16, pol: mtt},
		{name: "mtt-256w", nodes: 256, pol: mtt},
	}
}

// streamController builds the Fig. 9 probe system: a paper-spec cluster of
// the given size and 16 × 16 MiB framework arrays.
func streamController(nodes int, pol policy.Policy) (*core.Controller, []core.ArgRef) {
	return streamControllerOpts(nodes, pol, core.Options{})
}

func streamControllerOpts(nodes int, pol policy.Policy, opts core.Options) (*core.Controller, []core.ArgRef) {
	clu := cluster.New(cluster.PaperSpec(nodes))
	fab := core.NewLocalFabric(clu, kernels.StdRegistry(), false)
	ctl := core.NewController(fab, pol, opts)
	const arrays = 16
	const elems = int64(16 * memmodel.MiB / 4)
	ids := make([]core.ArgRef, arrays)
	for i := range ids {
		arr, err := ctl.NewArray(memmodel.Float32, elems)
		if err != nil {
			panic(err)
		}
		ids[i] = core.ArrRef(arr.ID)
	}
	return ctl, ids
}

// fig9Invocation is the i-th CE of the Fig. 9 synthetic stream: relu
// (read-write) over the arrays round-robin.
func fig9Invocation(ids []core.ArgRef, i int) core.Invocation {
	const elems = int64(16 * memmodel.MiB / 4)
	return core.Invocation{
		Kernel: "relu",
		Args:   []core.ArgRef{ids[i%len(ids)], core.ScalarRef(float64(elems))},
	}
}

// BenchmarkControllerSubmitThroughput measures the controller's end-to-end
// per-CE submission cost (scheduling + dispatch) on the Fig. 9 synthetic
// stream. ns/op is ns per CE.
func BenchmarkControllerSubmitThroughput(b *testing.B) {
	const resetEvery = 8192 // bound graph/trace growth: steady-state cost
	for _, tc := range throughputCases() {
		b.Run(tc.name+"/serial", func(b *testing.B) {
			b.ReportAllocs()
			ctl, ids := streamController(tc.nodes, tc.pol())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i > 0 && i%resetEvery == 0 {
					b.StopTimer()
					ctl, ids = streamController(tc.nodes, tc.pol())
					b.StartTimer()
				}
				if _, err := ctl.Launch(fig9Invocation(ids, i)); err != nil {
					b.Fatal(err)
				}
			}
		})
		// pipelined admission alone, and pipelined admission behind the
		// lookahead optimizer window (fusion, coalescing, batched policy).
		pipeOpts := []struct {
			name string
			opts core.Options
		}{
			{"pipelined", core.Options{Pipeline: true}},
			{"pipelined+opt", core.Options{Pipeline: true, OptimizeWindow: 32}},
		}
		for _, po := range pipeOpts {
			opts := po.opts
			b.Run(tc.name+"/"+po.name, func(b *testing.B) {
				b.ReportAllocs()
				ctl, ids := streamControllerOpts(tc.nodes, tc.pol(), opts)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if i > 0 && i%resetEvery == 0 {
						b.StopTimer()
						if err := ctl.Close(); err != nil {
							b.Fatal(err)
						}
						ctl, ids = streamControllerOpts(tc.nodes, tc.pol(), opts)
						b.StartTimer()
					}
					if _, err := ctl.Submit(fig9Invocation(ids, i)); err != nil {
						b.Fatal(err)
					}
				}
				if err := ctl.Drain(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := ctl.Close(); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// BenchmarkSchedulingOnly isolates the timed scheduling section (the
// paper's Figure 9 quantity) by reading the controller's own overhead
// meter after a fixed stream.
func BenchmarkSchedulingOnly(b *testing.B) {
	for _, tc := range throughputCases() {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			ctl, ids := streamController(tc.nodes, tc.pol())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i > 0 && i%8192 == 0 {
					b.StopTimer()
					ctl, ids = streamController(tc.nodes, tc.pol())
					b.StartTimer()
				}
				if _, err := ctl.Launch(fig9Invocation(ids, i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(ctl.MeanSchedulingOverhead().Nanoseconds()), "sched-ns/CE")
		})
	}
}
