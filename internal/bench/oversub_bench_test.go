package bench

// Oversubscription sweep benchmark: one sub-benchmark per (pattern,
// policy combo, factor) cell of the UVM simulator's footprint ladder.
// ns/op is harness wall time (the simulator itself); the modeled numbers
// ride along as reported metrics — ns_per_launch, mb_migrated, and the
// per-regime launch counts — which scripts/bench.sh scrapes into
// BENCH_gpusim.json. The combos cover the LRU/eager baseline, the
// stride-aware prefetcher (the cliff-shift acceptance row compares its
// 1.5x sequential cell against the baseline's) and the fully adaptive
// pair.

import (
	"fmt"
	"testing"

	"grout/internal/memmodel"
	"grout/internal/workloads"
)

func BenchmarkOversubSweep(b *testing.B) {
	patterns := []memmodel.Pattern{
		memmodel.Sequential, memmodel.Strided, memmodel.Random,
	}
	combos := [][2]string{
		{"eager", "lru"},
		{"stride", "lru"},
		{"adaptive", "working-set"},
	}
	for _, pattern := range patterns {
		for _, combo := range combos {
			for _, factor := range workloads.DefaultSweepFactors() {
				name := fmt.Sprintf("%s/%s+%s/x%.1f",
					pattern, combo[0], combo[1], factor)
				b.Run(name, func(b *testing.B) {
					var last workloads.SweepPoint
					for i := 0; i < b.N; i++ {
						pts, err := workloads.OversubscriptionSweep(workloads.SweepConfig{
							Factors:  []float64{factor},
							Patterns: []memmodel.Pattern{pattern},
							Combos:   [][2]string{combo},
						})
						if err != nil {
							b.Fatal(err)
						}
						last = pts[0]
					}
					b.ReportMetric(float64(last.NsPerLaunch), "ns_per_launch")
					b.ReportMetric(float64(last.BytesMigrated)/1e6, "mb_migrated")
					for _, regime := range []string{"resident", "streaming", "storm"} {
						b.ReportMetric(float64(last.Regimes[regime]), regime+"_launches")
					}
				})
			}
		}
	}
}
