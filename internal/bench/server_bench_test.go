package bench

// Gateway tenant-scaling benchmark: N concurrent client sessions over
// real loopback TCP against one shared 4-worker controller. ns/op is
// the per-tenant per-launch cost (round trip + weighted admission);
// the reported metrics add aggregate throughput (ce_per_s across all
// tenants) and the worst per-tenant p99 admission wait (p99adm_us),
// scraped from the gateway's session counters — the same numbers
// /metrics exports. Cost-only controller: the point is the admission
// path, not kernel arithmetic.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"grout/internal/cluster"
	"grout/internal/core"
	"grout/internal/dag"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/policy"
	"grout/internal/server"
	"grout/internal/shard"
)

const gwBenchElems = int64(memmodel.MiB / 4)

func gatewayBenchSystem(b *testing.B, opt server.Options) (*server.Gateway, func()) {
	b.Helper()
	clu := cluster.New(cluster.PaperSpec(4))
	fab := core.NewLocalFabric(clu, kernels.StdRegistry(), false)
	ctl := core.NewController(fab, policy.NewRoundRobin(), core.Options{Pipeline: true})
	g, err := server.New(ctl, "127.0.0.1:0", opt)
	if err != nil {
		b.Fatal(err)
	}
	return g, func() { g.Close(); ctl.Close() }
}

// runGatewayTenants drives `tenants` concurrent sessions for b.N
// launches each and reports aggregate throughput plus the worst
// well-behaved tenant's p99 admission wait. With hostile true, tenant 0
// ignores the gateway's backpressure advisories (the over-limit
// neighbor of the acceptance gate) and is excluded from the p99 — the
// point is what its presence does to everyone else.
func runGatewayTenants(b *testing.B, g *server.Gateway, tenants int, elems int64, hostile bool) {
	b.Helper()
	clients := make([]*server.Client, tenants)
	arrays := make([][]dag.ArrayID, tenants)
	for k := range clients {
		c, err := server.Dial(g.Addr(), fmt.Sprintf("t%03d", k), 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		clients[k] = c
		if hostile && k == 0 {
			c.SetHonorBackpressure(false)
		}
		for a := 0; a < 4; a++ {
			id, err := c.NewArray(memmodel.Float32, elems)
			if err != nil {
				b.Fatal(err)
			}
			arrays[k] = append(arrays[k], id)
		}
	}
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, tenants)
	for k, c := range clients {
		wg.Add(1)
		go func(k int, c *server.Client) {
			defer wg.Done()
			nArg := core.ScalarRef(float64(elems))
			for i := 0; i < b.N; i++ {
				id := arrays[k][i%len(arrays[k])]
				if err := c.Launch("relu", 1024, 256,
					core.ArrRef(id), nArg); err != nil {
					errs <- err
					return
				}
			}
			errs <- c.Sync()
		}(k, c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	totalCEs := float64(tenants) * float64(b.N)
	b.ReportMetric(totalCEs/elapsed.Seconds(), "ce_per_s")
	var p99 time.Duration
	for _, t := range g.Snapshot().Tenants {
		if hostile && t.Name == "t000" {
			continue // the hostile tenant's own wait is not the story
		}
		if t.AdmissionWaitP99 > p99 {
			p99 = t.AdmissionWaitP99
		}
	}
	b.ReportMetric(float64(p99.Microseconds()), "p99adm_us")
}

// gwRateLimits is the production-traffic shape for the 64-tenant rows:
// every tenant token-bucketed, so a hostile over-limit tenant is
// contained by its own bucket and queue bound instead of starving
// neighbors.
var gwRateLimits = core.SessionLimits{MaxInflightCEs: 32, RatePerSec: 400, Burst: 16}

func BenchmarkGatewayTenants(b *testing.B) {
	for _, tenants := range []int{1, 4, 16, 64, 256} {
		// At 256 tenants the per-tenant mirrors dominate memory; shrink
		// the arrays so the row measures admission, not allocation.
		elems := gwBenchElems
		if tenants >= 256 {
			elems = gwBenchElems / 16
		}
		b.Run(fmt.Sprintf("%dx", tenants), func(b *testing.B) {
			opt := server.Options{Limits: core.SessionLimits{MaxInflightCEs: 32}}
			if tenants >= 64 {
				opt.Limits = gwRateLimits
			}
			g, stop := gatewayBenchSystem(b, opt)
			defer stop()
			runGatewayTenants(b, g, tenants, elems, false)
		})
	}
	// The acceptance row: 64 rate-limited tenants, one of them hostile
	// (ignores backpressure, hammers its queue). Neighbor p99 must stay
	// within 2x of the plain 64x row — scripts/bench.sh records the
	// ratio in BENCH_server.json.
	b.Run("64x-hostile", func(b *testing.B) {
		g, stop := gatewayBenchSystem(b, server.Options{Limits: gwRateLimits})
		defer stop()
		runGatewayTenants(b, g, 64, gwBenchElems, true)
	})
}

// BenchmarkGatewayShards is the control-plane scale-out sweep: 16
// concurrent tenants over a 16-worker fleet, with the controller fleet
// sharded 1/4/8/16 ways behind one gateway (consistent-hash routing,
// per-shard drain goroutines). ce_per_s is aggregate admission
// throughput across all tenants; p99adm_us is the worst tenant's p99
// admission wait. The simulated fleet's data path is one shared lock (a
// virtual-time constraint), so on a single-core box the sweep measures
// contention relief in the admission/scheduling sections, not CPU
// parallelism — scripts/bench.sh records gomaxprocs alongside the
// numbers.
func BenchmarkGatewayShards(b *testing.B) {
	const tenants = 16
	for _, shards := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("%dshards", shards), func(b *testing.B) {
			p, err := shard.New(shard.Options{
				Shards:  shards,
				Workers: 16,
				Core:    core.Options{Pipeline: true},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			g, err := server.NewSharded(p.Controllers, p.Route, "127.0.0.1:0", server.Options{
				Limits: core.SessionLimits{MaxInflightCEs: 32},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer g.Close()

			clients := make([]*server.Client, tenants)
			arrays := make([][]dag.ArrayID, tenants)
			for k := range clients {
				c, err := server.Dial(g.Addr(), fmt.Sprintf("t%02d", k), 0, 0)
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				clients[k] = c
				for a := 0; a < 4; a++ {
					id, err := c.NewArray(memmodel.Float32, gwBenchElems)
					if err != nil {
						b.Fatal(err)
					}
					arrays[k] = append(arrays[k], id)
				}
			}
			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			errs := make(chan error, tenants)
			for k, c := range clients {
				wg.Add(1)
				go func(k int, c *server.Client) {
					defer wg.Done()
					nArg := core.ScalarRef(float64(gwBenchElems))
					for i := 0; i < b.N; i++ {
						id := arrays[k][i%len(arrays[k])]
						if err := c.Launch("relu", 1024, 256,
							core.ArrRef(id), nArg); err != nil {
							errs <- err
							return
						}
					}
					errs <- c.Sync()
				}(k, c)
			}
			wg.Wait()
			elapsed := time.Since(start)
			close(errs)
			for err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			totalCEs := float64(tenants) * float64(b.N)
			b.ReportMetric(totalCEs/elapsed.Seconds(), "ce_per_s")
			var p99 time.Duration
			for _, t := range g.Snapshot().Tenants {
				if t.AdmissionWaitP99 > p99 {
					p99 = t.AdmissionWaitP99
				}
			}
			b.ReportMetric(float64(p99.Microseconds()), "p99adm_us")
		})
	}
}

// BenchmarkGatewayDialChurn measures session open latency under dial
// churn: each iteration fires a 32-way concurrent burst of
// dial+ping+close against the gateway (the fleet-reconnect shape). The
// 1loop row is the pre-sharding accept path — one goroutine pulling
// handshakes off the listener — and the 4loops row runs
// Options.AcceptLoops accept goroutines. dial_p99_us is the burst's
// worst observed dial+handshake latency; scripts/bench.sh records the
// 1loop/4loops pair into BENCH_server.json as the dial-churn row.
func BenchmarkGatewayDialChurn(b *testing.B) {
	const burst = 32
	for _, loops := range []int{1, 4} {
		b.Run(fmt.Sprintf("%dloops", loops), func(b *testing.B) {
			g, stop := gatewayBenchSystem(b, server.Options{AcceptLoops: loops})
			defer stop()
			var worst time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lats := make([]time.Duration, burst)
				var wg sync.WaitGroup
				errs := make(chan error, burst)
				for k := 0; k < burst; k++ {
					wg.Add(1)
					go func(k int) {
						defer wg.Done()
						t0 := time.Now()
						c, err := server.Dial(g.Addr(), fmt.Sprintf("churn-%02d", k), 0, 0)
						if err != nil {
							errs <- err
							return
						}
						err = c.Ping()
						lats[k] = time.Since(t0)
						_ = c.Close()
						errs <- err
					}(k)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
				for _, l := range lats {
					if l > worst {
						worst = l
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(worst.Microseconds()), "dial_p99_us")
		})
	}
}
