package bench

// Kernel-execution micro-benchmarks (DESIGN.md §5.3): the tree-walking
// reference interpreter vs the slot-compiled engine, serial and
// block-partitioned, on the paper's Black–Scholes kernel at 1M elements.
// scripts/bench.sh runs these and records the numbers (plus GOMAXPROCS —
// parallel scaling is only visible on multi-core machines) in
// BENCH_kernels.json.

import (
	"runtime"
	"testing"

	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/minicuda"
)

const bsBenchSrc = `
extern "C" __global__ void blackscholes(float *call, float *put, const float *spot, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        float K = 100.0;
        float r = 0.05;
        float vol = 0.2;
        float T = 1.0;
        float s = spot[i];
        if (s <= 0.0) {
            call[i] = 0.0;
            put[i] = K * expf(0.0 - r * T);
            return;
        }
        float sigRt = vol * sqrtf(T);
        float d1 = (logf(s / K) + (r + vol * vol / 2.0) * T) / sigRt;
        float d2 = d1 - sigRt;
        float df = K * expf(0.0 - r * T);
        call[i] = s * 0.5 * erfcf((0.0 - d1) / sqrtf(2.0)) - df * 0.5 * erfcf((0.0 - d2) / sqrtf(2.0));
        put[i] = df * 0.5 * erfcf(d2 / sqrtf(2.0)) - s * 0.5 * erfcf(d1 / sqrtf(2.0));
    }
}`

const bsBenchSig = "pointer float, pointer float, const pointer float, sint32"

func bsBenchArgs(n int) []kernels.Arg {
	call := kernels.NewBuffer(memmodel.Float32, n)
	put := kernels.NewBuffer(memmodel.Float32, n)
	spot := kernels.NewBuffer(memmodel.Float32, n)
	for i := 0; i < n; i++ {
		spot.Set(i, 60+float64(i%80))
	}
	return []kernels.Arg{kernels.BufArg(call), kernels.BufArg(put),
		kernels.BufArg(spot), kernels.ScalarArg(float64(n))}
}

func benchBS(b *testing.B, opts minicuda.EngineOpts) {
	const n = 1 << 20
	def, err := minicuda.CompileOpts(bsBenchSrc, bsBenchSig, opts)
	if err != nil {
		b.Fatal(err)
	}
	args := bsBenchArgs(n)
	grid, block := (n+255)/256, 256
	b.SetBytes(int64(n) * 4 * 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := def.ExecuteLaunch(grid, block, args); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelExec(b *testing.B) {
	b.Run("interp", func(b *testing.B) {
		benchBS(b, minicuda.EngineOpts{Engine: minicuda.EngineInterp})
	})
	b.Run("compiled-1w", func(b *testing.B) {
		benchBS(b, minicuda.EngineOpts{Engine: minicuda.EngineCompiled, Workers: 1})
	})
	b.Run("compiled-nw", func(b *testing.B) {
		benchBS(b, minicuda.EngineOpts{
			Engine: minicuda.EngineCompiled, Workers: runtime.GOMAXPROCS(0)})
	})
}

// BenchmarkKernelBuild measures the buildkernel control path: a cold
// compile (front end + lowering) vs a compiled-kernel cache hit.
func BenchmarkKernelBuild(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			minicuda.FlushCompileCache()
			if _, err := minicuda.Compile(bsBenchSrc, bsBenchSig); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		minicuda.FlushCompileCache()
		if _, err := minicuda.Compile(bsBenchSrc, bsBenchSig); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := minicuda.Compile(bsBenchSrc, bsBenchSig); err != nil {
				b.Fatal(err)
			}
		}
	})
}
