// Recovery overhead measurement (DESIGN.md §5.4): the same axpy chain is
// run fault-free and under a chaos fabric that kills the worker holding
// the chain's only committed copy mid-stream, so the run pays a failover
// plus a lineage replay. The two runs must end bit-identical; the report
// compares their wall-clock and isolates the controller time spent inside
// recovery.
package bench

import (
	"fmt"
	"time"

	"grout/internal/cluster"
	"grout/internal/core"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/policy"
)

// RecoveryReport compares a clean run with a chaos-kill run of the same
// CE chain.
type RecoveryReport struct {
	// CEs is the chain length (axpy launches after the two fills).
	CEs int
	// KillAt is the victim worker's 1-based launch index of the kill.
	KillAt int
	// CleanWall and FaultWall are the two runs' wall-clock times.
	CleanWall, FaultWall time.Duration
	// RecoveryTime is the controller wall-clock spent inside lineage
	// recovery during the faulted run.
	RecoveryTime time.Duration
	// Recoveries and Failovers are the faulted run's controller counters.
	Recoveries, Failovers int
}

// OverheadPct is the faulted run's wall-clock overhead over clean.
func (r RecoveryReport) OverheadPct() float64 {
	if r.CleanWall <= 0 {
		return 0
	}
	return 100 * (r.FaultWall - r.CleanWall).Seconds() / r.CleanWall.Seconds()
}

// recoveryElems keeps the numeric kernels cheap relative to the
// scheduling and replay work being measured.
const recoveryElems = int64(4096)

// RecoveryOverhead runs the chain clean and faulted (worker 2 killed
// just as the chain's consumer launches there, with the chain tip's only
// copy) and checks the results match exactly.
func RecoveryOverhead(ces int) (RecoveryReport, error) {
	if ces < 8 {
		ces = 8
	}
	ces &^= 1 // even, so the chain tip commits on worker 2
	killAt := (ces + 4) / 2
	clean, cleanWall, _, err := recoveryRun(ces, 0)
	if err != nil {
		return RecoveryReport{}, fmt.Errorf("clean run: %w", err)
	}
	faulted, faultWall, ctl, err := recoveryRun(ces, killAt)
	if err != nil {
		return RecoveryReport{}, fmt.Errorf("faulted run: %w", err)
	}
	for i := range clean {
		if clean[i] != faulted[i] {
			return RecoveryReport{}, fmt.Errorf(
				"recovered y[%d] = %v, clean run has %v", i, faulted[i], clean[i])
		}
	}
	if ctl.Failovers() < 1 || ctl.Recoveries() < 1 {
		return RecoveryReport{}, fmt.Errorf(
			"chaos kill did not trigger recovery (failovers %d, recoveries %d)",
			ctl.Failovers(), ctl.Recoveries())
	}
	return RecoveryReport{
		CEs: ces, KillAt: killAt,
		CleanWall: cleanWall, FaultWall: faultWall,
		RecoveryTime: ctl.RecoveryTime(),
		Recoveries:   ctl.Recoveries(),
		Failovers:    ctl.Failovers(),
	}, nil
}

// recoveryRun builds an in-place chain whose committed tip hops workers
// with every step — fill(ones,1), fill(x,1), then ces× axpy(x,ones,1)
// (x += 1 each step, sole copy on the last writer) — then fill(z,3) and
// the consumer axpy(z,x,2). Round-robin over two workers puts the chain
// tip AND the consumer on worker 2, so killing worker 2 at the consumer
// launch loses the tip and forces a full-chain replay on worker 1.
// Returns z's final values (3 + 2*(1+ces)).
func recoveryRun(ces, killAt int) ([]float64, time.Duration, *core.Controller, error) {
	clu := cluster.New(cluster.PaperSpec(2))
	var fab core.Fabric = core.NewLocalFabric(clu, kernels.StdRegistry(), true)
	if killAt > 0 {
		fab = core.NewChaosFabric(fab, core.ChaosOptions{
			KillAtLaunch: map[cluster.NodeID]int{2: killAt},
		})
	}
	ctl := core.NewController(fab, policy.NewRoundRobin(),
		core.Options{Numeric: true, Failover: true})

	start := time.Now()
	n := recoveryElems
	nArg := core.ScalarRef(float64(n))
	mk := func() (*core.GlobalArray, error) { return ctl.NewArray(memmodel.Float32, n) }
	ones, err := mk()
	if err != nil {
		return nil, 0, nil, err
	}
	x, err := mk()
	if err != nil {
		return nil, 0, nil, err
	}
	z, err := mk()
	if err != nil {
		return nil, 0, nil, err
	}
	launch := func(kernel string, args ...core.ArgRef) error {
		_, err := ctl.Launch(core.Invocation{Kernel: kernel, Args: args})
		return err
	}
	if err := launch("fill", core.ArrRef(ones.ID), core.ScalarRef(1), nArg); err != nil {
		return nil, 0, nil, err
	}
	if err := launch("fill", core.ArrRef(x.ID), core.ScalarRef(1), nArg); err != nil {
		return nil, 0, nil, err
	}
	for i := 0; i < ces; i++ {
		if err := launch("axpy", core.ArrRef(x.ID), core.ArrRef(ones.ID),
			core.ScalarRef(1), nArg); err != nil {
			return nil, 0, nil, err
		}
	}
	if err := launch("fill", core.ArrRef(z.ID), core.ScalarRef(3), nArg); err != nil {
		return nil, 0, nil, err
	}
	if err := launch("axpy", core.ArrRef(z.ID), core.ArrRef(x.ID),
		core.ScalarRef(2), nArg); err != nil {
		return nil, 0, nil, err
	}
	if _, err := ctl.HostRead(z.ID); err != nil {
		return nil, 0, nil, err
	}
	wall := time.Since(start)
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = z.Buf.At(i)
	}
	return vals, wall, ctl, nil
}
