package bench

// Workload-level oversubscription benchmark: one sub-benchmark per
// (workload, policy combo, fleet size, factor) cell. ns/op is harness
// wall time (cost-only simulation); the modeled numbers ride along as
// reported metrics — makespan_ms and the CE count — which
// scripts/bench.sh scrapes into BENCH_workloads.json. The acceptance
// rows compare each irregular workload's 1-worker cells against its 2-
// and 4-worker cells: the cliff a single node falls off shifts right or
// flattens as min-transfer-time spreads the partitions.

import (
	"fmt"
	"testing"

	"grout/internal/workloads"
)

func BenchmarkUVMBench(b *testing.B) {
	names := []string{"spmv", "bfs", "pagerank", "triad", "kmeans"}
	combos := [][2]string{
		{"eager", "lru"},
		{"adaptive", "working-set"},
	}
	for _, name := range names {
		for _, combo := range combos {
			for _, workers := range workloads.DefaultSweepWorkers() {
				for _, factor := range workloads.DefaultSweepFactors() {
					bname := fmt.Sprintf("%s/%s+%s/%dw/x%.1f",
						name, combo[0], combo[1], workers, factor)
					b.Run(bname, func(b *testing.B) {
						var last workloads.UVMSweepPoint
						for i := 0; i < b.N; i++ {
							pts, err := workloads.UVMBenchSweep(workloads.UVMSweepConfig{
								Workloads: []string{name},
								Factors:   []float64{factor},
								Workers:   []int{workers},
								Combos:    [][2]string{combo},
							})
							if err != nil {
								b.Fatal(err)
							}
							last = pts[0]
						}
						b.ReportMetric(float64(last.MakespanNs)/1e6, "makespan_ms")
						b.ReportMetric(float64(last.CEs), "ces")
					})
				}
			}
		}
	}
}
