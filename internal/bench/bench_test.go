package bench

import (
	"strings"
	"testing"

	"grout/internal/cluster"
	"grout/internal/core"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/policy"
	"grout/internal/workloads"
)

func TestOversubscriptionFactor(t *testing.T) {
	if f := OversubscriptionFactor(32 * memmodel.GiB); f != 1.0 {
		t.Fatalf("factor(32GiB) = %v", f)
	}
	if f := OversubscriptionFactor(160 * memmodel.GiB); f != 5.0 {
		t.Fatalf("factor(160GiB) = %v", f)
	}
}

func TestRunSingleUnknownWorkload(t *testing.T) {
	r := RunSingle("nope", workloads.Params{Footprint: memmodel.GiB})
	if r.Err == nil {
		t.Fatalf("unknown workload accepted")
	}
	r2 := RunGrout("nope", workloads.Params{Footprint: memmodel.GiB}, 2, policy.NewRoundRobin())
	if r2.Err == nil {
		t.Fatalf("unknown workload accepted by RunGrout")
	}
}

func TestRunSingleAndGrout(t *testing.T) {
	p := workloads.Params{Footprint: 8 * memmodel.GiB}
	s := RunSingle("mv", p)
	if s.Err != nil || s.Elapsed <= 0 || s.Capped {
		t.Fatalf("single run = %+v", s)
	}
	if s.Factor != 0.25 {
		t.Fatalf("factor = %v", s.Factor)
	}
	g := RunGrout("mv", p, 2, policy.NewRoundRobin())
	if g.Err != nil || g.Elapsed <= 0 {
		t.Fatalf("grout run = %+v", g)
	}
	if g.Moved == 0 {
		t.Fatalf("grout run moved no data")
	}
}

func TestRunCapApplies(t *testing.T) {
	// 160 GiB CG single-node storms far past the 2.5 h cap.
	r := RunSingle("cg", workloads.Params{Footprint: 160 * memmodel.GiB, Iterations: 8})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if !r.Capped || r.Elapsed != RunCap {
		t.Fatalf("cap not applied: %+v", r)
	}
}

// The headline claims of the paper, asserted as invariants of the
// regenerated figures.

func TestFig1Shape(t *testing.T) {
	s := Fig1()
	if len(s.Points) != len(PaperSizes) {
		t.Fatalf("points = %d", len(s.Points))
	}
	// Within capacity: roughly linear. 4 -> 32 GiB is 8x data.
	if ratio := s.Points[1].Value / s.Points[0].Value; ratio > 20 {
		t.Fatalf("in-capacity growth %.1fx, want roughly linear", ratio)
	}
	// The oversubscription wall: 96 GiB must cost two orders of
	// magnitude over 64 GiB (the paper's red bars).
	if ratio := s.Points[3].Value / s.Points[2].Value; ratio < 50 {
		t.Fatalf("Fig 1 wall ratio = %.1f, want > 50", ratio)
	}
}

func TestFig6aCliffs(t *testing.T) {
	series := Fig6a()
	byName := map[string][]Point{}
	for _, s := range series {
		byName[s.Name] = s.Points
	}
	// Sizes: 4, 32, 64, 96, 128, 160 GiB.
	// MLE collapses first (random access): the 32->64 step is huge.
	mle := byName["mle"]
	if step := mle[2].Value / mle[1].Value; step < 20 {
		t.Fatalf("MLE 32->64 step = %.1f, want > 20 (paper: 72x)", step)
	}
	// CG collapses at 64->96 (paper: 77.3x).
	cg := byName["cg"]
	if step := cg[3].Value / cg[2].Value; step < 20 {
		t.Fatalf("CG 64->96 step = %.1f, want > 20 (paper: 77.3x)", step)
	}
	// MV collapses at 64->96 with the largest factor (paper: 342.6x).
	mv := byName["mv"]
	if step := mv[3].Value / mv[2].Value; step < 50 {
		t.Fatalf("MV 64->96 step = %.1f, want > 50 (paper: 342.6x)", step)
	}
	// Below the cliff MV grows roughly linearly.
	if step := mv[1].Value / mv[0].Value; step > 16 {
		t.Fatalf("MV 4->32 step = %.1f, want <= 16 (linear region)", step)
	}
}

func TestFig6bDistributionTamesCliffs(t *testing.T) {
	single := Fig6a()
	dist := Fig6b()
	for i, s := range single {
		d := dist[i]
		if s.Name != d.Name {
			t.Fatalf("series order mismatch")
		}
		// At 96 GiB (index 3) the distributed slowdown must be far below
		// the single-node slowdown (paper: 342.6 -> 4.1 for MV etc.).
		if d.Points[3].Value*5 > s.Points[3].Value {
			t.Fatalf("%s: 2-node slowdown %.1f not far below single %.1f",
				s.Name, d.Points[3].Value, s.Points[3].Value)
		}
	}
}

func TestFig7Crossovers(t *testing.T) {
	series := Fig7()
	for _, s := range series {
		// Under normal conditions (factor 0.125, index 0) the single
		// node must win: speedup < 1 (paper §V-D).
		if s.Points[0].Value >= 1 {
			t.Fatalf("%s: GrOUT wins below capacity (%.2f)", s.Name, s.Points[0].Value)
		}
		// At 3x (index 3) every workload must be faster distributed.
		if s.Points[3].Value <= 1 {
			t.Fatalf("%s: no speedup at 3x (%.2f)", s.Name, s.Points[3].Value)
		}
	}
	// MV at 2x still loses (paper: only CG benefits at 2x).
	for _, s := range series {
		if s.Name == "mv" && s.Points[2].Value >= 1 {
			t.Fatalf("MV should lose at 2x, got %.2f", s.Points[2].Value)
		}
		if s.Name == "cg" && s.Points[2].Value <= 1 {
			t.Fatalf("CG should win at 2x, got %.2f", s.Points[2].Value)
		}
	}
}

func TestFig8PolicyFindings(t *testing.T) {
	entries := Fig8()
	byKey := map[string]Fig8Entry{}
	for _, e := range entries {
		if e.Level == policy.Low {
			byKey[e.Workload+"/"+e.Policy] = e
		}
	}
	// MLE: online policies match the offline roofline (paper §V-E).
	mleOff := byKey["mle/vector-step"].Normalized
	mleOn := byKey["mle/min-transfer-size"].Normalized
	if mleOn > mleOff*1.2 {
		t.Fatalf("MLE online %.3f far above offline %.3f", mleOn, mleOff)
	}
	// MV: online policies catastrophically worse than round-robin
	// (paper: >= 100x; shape requirement: an order of magnitude).
	if mv := byKey["mv/min-transfer-size"].Normalized; mv < 5 {
		t.Fatalf("MV online pathology missing: normalized %.2f, want > 5", mv)
	}
	// Round-robin normalizes to 1 by construction.
	if rr := byKey["cg/round-robin"].Normalized; rr != 1 {
		t.Fatalf("round-robin normalization = %v", rr)
	}
	// The exploration level has no noteworthy impact (paper §V-E).
	var lowMV, highMV float64
	for _, e := range entries {
		if e.Workload == "mv" && e.Policy == "min-transfer-size" {
			switch e.Level {
			case policy.Low:
				lowMV = e.Seconds
			case policy.High:
				highMV = e.Seconds
			}
		}
	}
	if lowMV == 0 || highMV == 0 || lowMV/highMV > 2 || highMV/lowMV > 2 {
		t.Fatalf("exploration level changed MV drastically: low %.1f vs high %.1f", lowMV, highMV)
	}
}

func TestFig9OverheadShape(t *testing.T) {
	series := Fig9(128)
	byName := map[string][]Point{}
	for _, s := range series {
		byName[s.Name] = s.Points
	}
	last := len(Fig9NodeCounts) - 1
	// Static policies stay cheap even at 256 nodes (paper: < 30 µs).
	for _, name := range []string{"round-robin", "vector-step"} {
		if v := byName[name][last].Value; v > 30 {
			t.Fatalf("%s overhead at 256 nodes = %.1fµs, want < 30", name, v)
		}
	}
	// Informed policies still grow with node count (their data view is
	// O(nodes)), but the cached-view fast path flattens the curve far
	// below the paper's ~200 µs: only the slope survives, not the 2×+
	// blowup the unoptimized controller showed.
	for _, name := range []string{"min-transfer-size", "min-transfer-time"} {
		pts := byName[name]
		if pts[last].Value < 1.15*pts[0].Value {
			t.Fatalf("%s overhead does not grow with nodes: %v -> %v",
				name, pts[0].Value, pts[last].Value)
		}
		if pts[last].Value > 30 {
			t.Fatalf("%s overhead at 256 nodes = %.1fµs, want < 30 with the fast path",
				name, pts[last].Value)
		}
	}
}

func TestPrintersProduceTables(t *testing.T) {
	var b strings.Builder
	PrintSeries(&b, "title", "x", "%.1f", []Series{
		{Name: "s", Points: []Point{{X: 1, Value: 2}, {X: 2, Value: 3, Capped: true}}},
	})
	out := b.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "3.0*") {
		t.Fatalf("series table malformed:\n%s", out)
	}
	b.Reset()
	PrintSeries(&b, "empty", "x", "%v", nil)
	if !strings.Contains(b.String(), "empty") {
		t.Fatalf("empty table missing title")
	}
	b.Reset()
	PrintFig8(&b, []Fig8Entry{{Workload: "mv", Policy: "round-robin",
		Level: policy.Low, Seconds: 1, Normalized: 1, Capped: true}})
	if !strings.Contains(b.String(), "capped") || !strings.Contains(b.String(), "low") {
		t.Fatalf("fig8 table malformed:\n%s", b.String())
	}
}

func TestTunedVector(t *testing.T) {
	if v := TunedVector("mle"); len(v) != 1 || v[0] != 8 {
		t.Fatalf("mle vector = %v", v)
	}
	if v := TunedVector("mv"); len(v) != 1 || v[0] != 1 {
		t.Fatalf("mv vector = %v", v)
	}
}

func TestAblationHandTuning(t *testing.T) {
	series := AblationHandTuning()
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	naive, tuned, scaled := series[0].Points, series[1].Points, series[2].Points
	// Below capacity (4 GiB) the hand tuning helps.
	if tuned[0].Value >= naive[0].Value {
		t.Fatalf("hand tuning did not help below capacity: %.2f vs %.2f",
			tuned[0].Value, naive[0].Value)
	}
	// At 3x (96 GiB, index 3) hand tuning cannot remove the collapse:
	// still within 20% of naive, while scale-out is orders faster.
	if tuned[3].Value < naive[3].Value*0.8 {
		t.Fatalf("hand tuning unexpectedly fixed the collapse: %.1f vs %.1f",
			tuned[3].Value, naive[3].Value)
	}
	if scaled[3].Value*10 > naive[3].Value {
		t.Fatalf("scale-out did not beat naive at 3x: %.1f vs %.1f",
			scaled[3].Value, naive[3].Value)
	}
}

func TestAblationStreamOverlap(t *testing.T) {
	multi, single := AblationStreamOverlap(16 * memmodel.GiB)
	if multi.Err != nil || single.Err != nil {
		t.Fatal(multi.Err, single.Err)
	}
	if multi.Seconds() >= single.Seconds() {
		t.Fatalf("multi-stream (%.3f) not faster than single-stream (%.3f)",
			multi.Seconds(), single.Seconds())
	}
}

func TestStrongScaling(t *testing.T) {
	s := StrongScaling("mv", 96*memmodel.GiB, []int{1, 2, 4})
	if len(s.Points) != 3 {
		t.Fatalf("points = %d", len(s.Points))
	}
	// 2 nodes must beat 1 at 3x oversubscription.
	if s.Points[1].Value >= s.Points[0].Value {
		t.Fatalf("2 nodes (%.1f) not faster than 1 (%.1f)",
			s.Points[1].Value, s.Points[0].Value)
	}
	// Additional nodes never make it slower than 2x the best seen.
	best := s.Points[1].Value
	if s.Points[2].Value > 2*best {
		t.Fatalf("4 nodes regressed: %.1f vs best %.1f", s.Points[2].Value, best)
	}
}

func TestUtilizationReport(t *testing.T) {
	clu := cluster.New(cluster.PaperSpec(2))
	fab := core.NewLocalFabric(clu, kernels.StdRegistry(), false)
	ctl := core.NewController(fab, policy.NewRoundRobin(), core.Options{})
	g := &workloads.Grout{Ctl: ctl}
	if err := workloads.MV().Build(g, workloads.Params{Footprint: 8 * memmodel.GiB}); err != nil {
		t.Fatal(err)
	}
	rep := Utilization(ctl, fab)
	if len(rep.Workers) != 2 {
		t.Fatalf("workers = %d", len(rep.Workers))
	}
	var kernels64 int64
	for _, w := range rep.Workers {
		kernels64 += w.KernelsRun
	}
	if kernels64 == 0 {
		t.Fatalf("no kernels recorded")
	}
}

// The UVM-aware extension policy (built where the paper's §V-E points)
// must eliminate the MV pile-on pathology of Figure 8 while staying
// locality-friendly.
func TestUVMAwareFixesFig8Pathology(t *testing.T) {
	const foot = 96 * memmodel.GiB
	p := workloads.Params{Footprint: foot}
	rr := RunGrout("mv", p, 2, policy.NewRoundRobin())
	online := RunGrout("mv", p, 2, policy.NewMinTransferSize(policy.Low))
	aware := RunGrout("mv", p, 2, policy.NewUVMAware(policy.Low, 64*memmodel.GiB))
	if online.Seconds() < 5*rr.Seconds() {
		t.Fatalf("setup: pathology missing (online %.0fs vs rr %.0fs)",
			online.Seconds(), rr.Seconds())
	}
	if aware.Seconds() > 1.5*rr.Seconds() {
		t.Fatalf("uvm-aware did not fix the pile-on: %.0fs vs rr %.0fs",
			aware.Seconds(), rr.Seconds())
	}
	// And it must not regress the workloads where locality-chasing is
	// right (MLE matches the offline roofline).
	vs, _ := policy.NewVectorStep(TunedVector("mle"))
	off := RunGrout("mle", p, 2, vs)
	mleAware := RunGrout("mle", p, 2, policy.NewUVMAware(policy.Low, 64*memmodel.GiB))
	if mleAware.Seconds() > 1.3*off.Seconds() {
		t.Fatalf("uvm-aware regressed MLE: %.0fs vs offline %.0fs",
			mleAware.Seconds(), off.Seconds())
	}
}

func TestWhatIfHardwareMovesTheKnee(t *testing.T) {
	series := WhatIfHardware()
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	v100, a100 := series[0], series[1]
	// Sizes: 4, 32, 64, 80, 96, 160, 240 GiB.
	// At 96 GiB the V100 node storms (3x) while the A100 node (1.2x) is
	// still near-linear.
	if ratio := v100.Points[4].Value / a100.Points[4].Value; ratio < 20 {
		t.Fatalf("A100 did not defer the knee: v100/a100 = %.1f at 96GiB", ratio)
	}
	// But at 240 GiB (3x of the A100 node) the knee is back.
	if step := a100.Points[6].Value / a100.Points[5].Value; step < 20 {
		t.Fatalf("A100 knee missing at 240GiB: step = %.1f", step)
	}
}
