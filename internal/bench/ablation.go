package bench

import (
	"fmt"

	"grout/internal/cluster"
	"grout/internal/core"
	"grout/internal/gpusim"
	"grout/internal/grcuda"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/policy"
	"grout/internal/workloads"
)

// This file holds the ablation experiments that go beyond the paper's
// figures but directly test its design arguments:
//
//   - AblationHandTuning: the paper's §I alternative to scale-out —
//     hand-tuned prefetch + memory-advise — helps only while the working
//     set fits; past the oversubscription knee it cannot remove the root
//     cause, which is GrOUT's motivation.
//
//   - AblationStreamOverlap: §IV-A claims automatic transfer/computation
//     overlap via multi-stream scheduling; disabling stream parallelism
//     quantifies that claim.
//
//   - StrongScaling: §V-F discusses scaling past two nodes; this sweep
//     measures where adding nodes stops paying (the controller's NIC).

// AblationHandTuning compares three ways of running Black–Scholes across
// footprints: naive UVM, hand-tuned UVM (advise + prefetch, the paper's
// §II-A manual path), and GrOUT on two nodes.
func AblationHandTuning() []Series {
	naive := Series{Name: "uvm-naive"}
	tuned := Series{Name: "uvm-hand-tuned"}
	scaled := Series{Name: "grout-2-nodes"}
	for _, size := range PaperSizes {
		p := workloads.Params{Footprint: size}
		n := RunSingle("bs", p)
		naive.Points = append(naive.Points, Point{X: size.GiBf(), Value: n.Seconds(), Capped: n.Capped})

		t := runHandTunedBS(size)
		tuned.Points = append(tuned.Points, Point{X: size.GiBf(), Value: t.Seconds(), Capped: t.Capped})

		vs, _ := policy.NewVectorStep([]int{1})
		g := RunGrout("bs", p, 2, vs)
		scaled.Points = append(scaled.Points, Point{X: size.GiBf(), Value: g.Seconds(), Capped: g.Capped})
	}
	return []Series{naive, tuned, scaled}
}

// runHandTunedBS is the §II-A manual optimization: each partition's
// arrays are advised to a preferred GPU and prefetched before the kernel,
// so migrations overlap compute — exactly what an expert CUDA programmer
// would do before giving up and distributing.
func runHandTunedBS(footprint memmodel.Bytes) Result {
	rt := grcuda.NewRuntime(gpusim.NewNode(gpusim.OCIWorkerSpec("tuned")),
		kernels.StdRegistry(), grcuda.Options{})
	res := Result{
		Workload:  "bs-hand-tuned",
		Footprint: footprint,
		Factor:    OversubscriptionFactor(footprint),
		Policy:    "hand-tuned",
	}
	const blocks = 4
	perArray := int64(footprint) / int64(3*blocks) / 4
	if perArray < 1 {
		res.Err = fmt.Errorf("bench: footprint %v too small", footprint)
		return res
	}
	devices := len(rt.Node().Devices())
	for b := 0; b < blocks; b++ {
		dev := b % devices
		spot, err := rt.NewArray(memmodel.Float32, perArray)
		if err != nil {
			res.Err = err
			return res
		}
		call, err := rt.NewArray(memmodel.Float32, perArray)
		if err != nil {
			res.Err = err
			return res
		}
		put, err := rt.NewArray(memmodel.Float32, perArray)
		if err != nil {
			res.Err = err
			return res
		}
		if _, err := rt.HostWrite(spot.ID, 0); err != nil {
			res.Err = err
			return res
		}
		// The manual tuning: pin and prefetch every operand.
		for _, arr := range []*grcuda.Array{spot, call, put} {
			if err := rt.Advise(arr.ID, gpusim.AdvisePreferredLocation, dev); err != nil {
				res.Err = err
				return res
			}
		}
		if _, err := rt.Prefetch(spot.ID, dev, 0); err != nil {
			res.Err = err
			return res
		}
		if _, err := rt.Submit(grcuda.Invocation{Kernel: "blackscholes", Grid: 1024, Block: 256,
			Args: []grcuda.Value{grcuda.ArrValue(call), grcuda.ArrValue(put),
				grcuda.ArrValue(spot), grcuda.ScalarValue(float64(perArray))}}, 0); err != nil {
			res.Err = err
			return res
		}
		if _, err := rt.HostRead(call.ID, 0); err != nil {
			res.Err = err
			return res
		}
	}
	res.Elapsed = rt.Elapsed()
	return res.cap()
}

// AblationStreamOverlap quantifies §IV-A's automatic transfer/computation
// overlap: the compute-heavy Black–Scholes workload on one node with the
// full multi-stream scheduler vs a single stream per device (one block's
// compute overlaps the next block's migrations only with independent
// streams).
func AblationStreamOverlap(footprint memmodel.Bytes) (multi, single Result) {
	run := func(maxStreams int) Result {
		rt := grcuda.NewRuntime(gpusim.NewNode(gpusim.OCIWorkerSpec("ov")),
			kernels.StdRegistry(), grcuda.Options{MaxStreamsPerDevice: maxStreams})
		s := &workloads.SingleNode{RT: rt}
		r := Result{Workload: "bs", Footprint: footprint, Policy: fmt.Sprintf("streams=%d", maxStreams)}
		if err := workloads.BlackScholes().Build(s, workloads.Params{Footprint: footprint, Blocks: 8}); err != nil {
			r.Err = err
			return r
		}
		r.Elapsed = s.Elapsed()
		return r.cap()
	}
	return run(16), run(1)
}

// StrongScaling sweeps GrOUT's node count for one workload at a fixed
// footprint. Partitions scale with the cluster (two blocks per node, at
// least the workload's default four) so every configuration can use every
// GPU.
func StrongScaling(workload string, footprint memmodel.Bytes, nodeCounts []int) Series {
	s := Series{Name: workload}
	for _, nodes := range nodeCounts {
		blocks := 2 * nodes
		if blocks < 4 {
			blocks = 4
		}
		var r Result
		if nodes <= 1 {
			r = RunSingle(workload, workloads.Params{Footprint: footprint, Blocks: blocks})
		} else {
			vs, _ := policy.NewVectorStep(TunedVector(workload))
			r = RunGrout(workload, workloads.Params{Footprint: footprint, Blocks: blocks}, nodes, vs)
		}
		s.Points = append(s.Points, Point{X: float64(nodes), Value: r.Seconds(), Capped: r.Capped})
	}
	return s
}

// UtilizationReport summarizes a finished GrOUT run: per-worker device
// statistics and network volume — the kind of dashboard a user consults
// to understand a placement (ships with the library, not in the paper).
type UtilizationReport struct {
	Workers []WorkerUtilization
	Moved   memmodel.Bytes
	P2P     int
}

// WorkerUtilization aggregates one worker's devices.
type WorkerUtilization struct {
	Node             cluster.NodeID
	KernelsRun       int64
	PagesMigratedIn  int64
	PagesEvicted     int64
	PagesWrittenBack int64
}

// Utilization builds the report from a controller and its local fabric.
func Utilization(ctl *core.Controller, fab *core.LocalFabric) UtilizationReport {
	rep := UtilizationReport{Moved: ctl.MovedBytes(), P2P: ctl.P2PMoves()}
	for _, w := range fab.Workers() {
		var u WorkerUtilization
		u.Node = w
		for _, st := range fab.WorkerStats(w) {
			u.KernelsRun += st.KernelsRun
			u.PagesMigratedIn += st.PagesMigratedIn
			u.PagesEvicted += st.PagesEvicted
			u.PagesWrittenBack += st.PagesWrittenBack
		}
		rep.Workers = append(rep.Workers, u)
	}
	return rep
}

// WhatIfHardware sweeps Black–Scholes footprints on a single node built
// from each device generation: scale-up moves the oversubscription knee
// (V100: 32 GiB per node, A100: 80 GiB per node) but cannot remove it —
// the paper's §V-F argument that scale-up runs out at 16 GPUs and
// oversubscription eventually returns.
func WhatIfHardware() []Series {
	specs := map[string]gpusim.NodeSpec{
		"2x V100 16GiB": gpusim.OCIWorkerSpec("v100"),
		"2x A100 40GiB": gpusim.A100WorkerSpec("a100"),
	}
	sizes := []memmodel.Bytes{
		4 * memmodel.GiB, 32 * memmodel.GiB, 64 * memmodel.GiB, 80 * memmodel.GiB,
		96 * memmodel.GiB, 160 * memmodel.GiB, 240 * memmodel.GiB,
	}
	var out []Series
	for _, name := range []string{"2x V100 16GiB", "2x A100 40GiB"} {
		s := Series{Name: name}
		for _, size := range sizes {
			rt := grcuda.NewRuntime(gpusim.NewNode(specs[name]),
				kernels.StdRegistry(), grcuda.Options{})
			sess := &workloads.SingleNode{RT: rt}
			r := Result{Footprint: size}
			if err := workloads.BlackScholes().Build(sess, workloads.Params{Footprint: size}); err != nil {
				s.Points = append(s.Points, Point{X: size.GiBf(), Value: -1})
				continue
			}
			r.Elapsed = sess.Elapsed()
			r = r.cap()
			s.Points = append(s.Points, Point{X: size.GiBf(), Value: r.Seconds(), Capped: r.Capped})
		}
		out = append(out, s)
	}
	return out
}
