package bench

import "testing"

// TestRecoveryOverhead pins the measurement's contract: the faulted run
// recovers, and the recovered values are bit-identical to the clean run
// (RecoveryOverhead errors on any mismatch).
func TestRecoveryOverhead(t *testing.T) {
	rep, err := RecoveryOverhead(16)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failovers < 1 || rep.Recoveries < 1 {
		t.Fatalf("report = %+v, want at least one failover and recovery", rep)
	}
	if rep.RecoveryTime <= 0 {
		t.Fatalf("recovery time %v, want > 0", rep.RecoveryTime)
	}
}

// BenchmarkRecovery feeds bench.sh's recovery-overhead row: the same
// axpy chain clean vs with a mid-stream chaos kill (failover + lineage
// replay included in the op).
func BenchmarkRecovery(b *testing.B) {
	const ces = 64
	for _, tc := range []struct {
		name   string
		killAt int
	}{
		{"clean", 0},
		{"chaos-kill", (ces + 4) / 2},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, err := recoveryRun(ces, tc.killAt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
