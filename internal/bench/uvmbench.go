package bench

// The workload-level oversubscription figure (DESIGN.md §5.10): where
// FigOversub sweeps a synthetic access pattern on one simulated GPU,
// FigUVMBench runs the UVMBench-style workload suite end to end across
// the footprint ladder at 1, 2 and 4 workers, per prefetch+evict combo.
// One series per fleet size makes the paper's claim visible in a single
// table: the 1-worker column falls off the Figure-1 cliff and the wider
// fleets flatten it. `groutbench -fig uvmbench` prints it; the
// BenchmarkUVMBench rows feed BENCH_workloads.json.

import (
	"fmt"
	"sort"

	"grout/internal/workloads"
)

// FigUVMBench sweeps one workload across the footprint ladder for every
// requested fleet size and returns one series per (combo, workers) pair
// (X = footprint over one worker's device memory, Value = modeled
// makespan seconds), plus the raw points for cliff reporting.
func FigUVMBench(workload string, cfg workloads.UVMSweepConfig) ([]Series, []workloads.UVMSweepPoint, error) {
	cfg.Workloads = []string{workload}
	pts, err := workloads.UVMBenchSweep(cfg)
	if err != nil {
		return nil, nil, err
	}
	bySeries := make(map[string]*Series)
	var order []string
	for _, p := range pts {
		name := fmt.Sprintf("%s+%s/%dw", p.Prefetch, p.Evict, p.Workers)
		s, ok := bySeries[name]
		if !ok {
			s = &Series{Name: name}
			bySeries[name] = s
			order = append(order, name)
		}
		s.Points = append(s.Points, Point{X: p.Factor, Value: float64(p.MakespanNs) / 1e9})
	}
	series := make([]Series, 0, len(order))
	for _, name := range order {
		series = append(series, *bySeries[name])
	}
	return series, pts, nil
}

// FmtUVMCliffs renders the per-fleet-size cliff summary of one
// workload's sweep as aligned text lines: where the makespan-per-factor
// slope leaves the flat regime at 1 worker, and where (or whether) it
// does at 2 and 4.
func FmtUVMCliffs(pts []workloads.UVMSweepPoint, maxFactor float64) string {
	cliffs := workloads.UVMCliffs(pts)
	keys := make([]workloads.UVMCliffKey, 0, len(pts))
	seen := make(map[workloads.UVMCliffKey]bool)
	for _, p := range pts {
		k := workloads.UVMCliffKey{Workload: p.Workload, Prefetch: p.Prefetch,
			Evict: p.Evict, Workers: p.Workers}
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Prefetch != b.Prefetch {
			return a.Prefetch < b.Prefetch
		}
		if a.Evict != b.Evict {
			return a.Evict < b.Evict
		}
		return a.Workers < b.Workers
	})
	out := ""
	for _, k := range keys {
		label := fmt.Sprintf("%s %s+%s %dw", k.Workload, k.Prefetch, k.Evict, k.Workers)
		if c, ok := cliffs[k]; ok {
			out += fmt.Sprintf("  %-32s cliff at %.1fx\n", label, c)
		} else {
			out += fmt.Sprintf("  %-32s flat through %.1fx\n", label, maxFactor)
		}
	}
	return out
}
