package bench

// The oversubscription-cliff figure (DESIGN.md §5.7): the sweep driver in
// internal/workloads measured per-launch time across the footprint ladder
// for every prefetch/eviction policy combination; this file turns those
// points into printable series and the per-combo cliff summary behind
// `groutbench -fig oversub`.

import (
	"fmt"
	"sort"

	"grout/internal/memmodel"
	"grout/internal/workloads"
)

// FigOversub runs the oversubscription sweep for one access pattern and
// returns one series per prefetch+evict combination (X = footprint over
// device memory, Value = modeled seconds per launch), plus the raw sweep
// points for regime and cliff reporting.
func FigOversub(pattern memmodel.Pattern) ([]Series, []workloads.SweepPoint, error) {
	pts, err := workloads.OversubscriptionSweep(workloads.SweepConfig{
		Patterns: []memmodel.Pattern{pattern},
	})
	if err != nil {
		return nil, nil, err
	}
	bySeries := make(map[string]*Series)
	var order []string
	for _, p := range pts {
		name := p.Prefetch + "+" + p.Evict
		s, ok := bySeries[name]
		if !ok {
			s = &Series{Name: name}
			bySeries[name] = s
			order = append(order, name)
		}
		s.Points = append(s.Points, Point{
			X:     p.Factor,
			Value: float64(p.NsPerLaunch) / 1e9,
		})
	}
	series := make([]Series, 0, len(order))
	for _, name := range order {
		series = append(series, *bySeries[name])
	}
	return series, pts, nil
}

// OversubCliffs returns, per "prefetch+evict" combination, the lowest
// oversubscription factor at which any launch of that combo entered the
// storm regime. Combos that never collapsed within the swept ladder are
// absent from the map — the cliff sits past the last rung.
func OversubCliffs(pts []workloads.SweepPoint) map[string]float64 {
	cliffs := make(map[string]float64)
	for _, p := range pts {
		if p.Regimes["storm"] == 0 {
			continue
		}
		name := p.Prefetch + "+" + p.Evict
		if c, ok := cliffs[name]; !ok || p.Factor < c {
			cliffs[name] = p.Factor
		}
	}
	return cliffs
}

// FmtOversubCliffs renders the cliff summary as aligned text lines,
// sorted so the baseline reads first and shifts are easy to eyeball.
func FmtOversubCliffs(pts []workloads.SweepPoint, maxFactor float64) string {
	cliffs := OversubCliffs(pts)
	names := make(map[string]bool)
	for _, p := range pts {
		names[p.Prefetch+"+"+p.Evict] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	out := ""
	for _, n := range sorted {
		if c, ok := cliffs[n]; ok {
			out += fmt.Sprintf("  %-24s storm cliff at %.1fx\n", n, c)
		} else {
			out += fmt.Sprintf("  %-24s no storm within %.1fx\n", n, maxFactor)
		}
	}
	return out
}
