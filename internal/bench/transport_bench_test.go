package bench

import (
	"fmt"
	"testing"

	"grout/internal/cluster"
	"grout/internal/gpusim"
	"grout/internal/grcuda"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/transport"
)

// BenchmarkTransportThroughput measures array-shipping throughput over
// real loopback TCP for both wire protocols, 1 KiB to 256 MiB. The MB/s
// column is the figure of merit: the framed wire's chunked zero-copy path
// versus gob's reflection-driven element encoding. Run via
// scripts/bench.sh, which records the results in BENCH_transport.json.
func BenchmarkTransportThroughput(b *testing.B) {
	sizes := []struct {
		name  string
		bytes int
	}{
		{"1KiB", 1 << 10},
		{"64KiB", 64 << 10},
		{"1MiB", 1 << 20},
		{"16MiB", 16 << 20},
		{"256MiB", 256 << 20},
	}
	for _, wire := range []transport.Wire{transport.WireGob, transport.WireFramed} {
		for _, sz := range sizes {
			b.Run(fmt.Sprintf("%v/%s", wire, sz.name), func(b *testing.B) {
				benchTransfer(b, wire, sz.bytes)
			})
		}
	}
}

func benchTransfer(b *testing.B, wire transport.Wire, bytes int) {
	w, err := transport.NewWorkerServer("127.0.0.1:0", gpusim.OCIWorkerSpec("bench"), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = w.Close() })
	fab, err := transport.DialWith([]string{w.Addr()}, transport.DialOptions{Wire: wire})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = fab.Close() })

	elems := int64(bytes) / int64(memmodel.Float32.Size())
	if err := fab.EnsureArray(1, grcuda.ArrayMeta{ID: 1, Kind: memmodel.Float32, Len: elems}); err != nil {
		b.Fatal(err)
	}
	src := kernels.NewBuffer(memmodel.Float32, int(elems))
	for i := 0; i < src.Len(); i += 97 {
		src.Set(i, float64(i))
	}

	b.SetBytes(int64(bytes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fab.MoveArray(1, cluster.ControllerID, 1, 0, src, nil); err != nil {
			b.Fatal(err)
		}
	}
}
