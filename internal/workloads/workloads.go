package workloads

import (
	"fmt"

	"grout/internal/core"
	"grout/internal/dag"
	"grout/internal/memmodel"
)

// Params sizes a workload run.
type Params struct {
	// Footprint is the total memory footprint the paper sizes workloads
	// by (4 GiB ... 160 GiB).
	Footprint memmodel.Bytes
	// Iterations applies to iterative workloads (CG). Zero means the
	// default.
	Iterations int
	// Blocks overrides the partition count. Zero means the workload
	// default.
	Blocks int
}

func (p Params) iterations(def int) int {
	if p.Iterations > 0 {
		return p.Iterations
	}
	return def
}

func (p Params) blocks(def int) int {
	if p.Blocks > 0 {
		return p.Blocks
	}
	return def
}

// Workload is one member of the evaluation suite.
type Workload struct {
	// Name is the suite key: "bs", "mle", "cg" or "mv".
	Name string
	// Description is a one-line summary for reports.
	Description string
	// Build submits the workload's full CE graph to the session.
	Build func(s Session, p Params) error
}

// Suite returns the paper's workload suite keyed by name.
func Suite() map[string]*Workload {
	return map[string]*Workload{
		"bs":  BlackScholes(),
		"mle": MLE(),
		"cg":  CG(),
		"mv":  MV(),
	}
}

// arr is shorthand for an array argument.
func arr(id dag.ArrayID) core.ArgRef { return core.ArrRef(id) }

// num is shorthand for a scalar argument.
func num(v float64) core.ArgRef { return core.ScalarRef(v) }

// BlackScholes prices European options over B independent partitions —
// the massively parallel workload of the paper's Figure 1. Footprint is
// split across three arrays (spot, call, put) per partition.
func BlackScholes() *Workload {
	return &Workload{
		Name:        "bs",
		Description: "Black-Scholes option pricing (Fig. 1)",
		Build: func(s Session, p Params) error {
			blocks := p.blocks(4)
			perArray := int64(p.Footprint) / int64(3*blocks) / 4 // float32 elements
			if perArray < 1 {
				return fmt.Errorf("bs: footprint %v too small for %d blocks", p.Footprint, blocks)
			}
			for b := 0; b < blocks; b++ {
				spot, err := s.NewArray(memmodel.Float32, perArray)
				if err != nil {
					return err
				}
				call, err := s.NewArray(memmodel.Float32, perArray)
				if err != nil {
					return err
				}
				put, err := s.NewArray(memmodel.Float32, perArray)
				if err != nil {
					return err
				}
				if buf := s.Buffer(spot); buf != nil {
					for i := 0; i < buf.Len(); i++ {
						buf.Set(i, 60+float64((i+b*7)%100))
					}
				}
				if err := s.HostWrite(spot); err != nil {
					return err
				}
				if err := s.Launch("blackscholes", 1024, 256,
					arr(call), arr(put), arr(spot), num(float64(perArray))); err != nil {
					return err
				}
				if err := s.HostRead(call); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// MLE is the Machine-Learning Ensemble of the paper's Figure 5: the input
// dataset, row-partitioned, flows through two scoring pipelines of
// different depth (the paper notes the imbalance between branches) whose
// class scores are combined by a final vote. The feature-matrix gathers
// are data-dependent (random pattern), which is why MLE collapses at the
// lowest oversubscription factor in Figure 6a.
func MLE() *Workload {
	const features = 4096
	return &Workload{
		Name:        "mle",
		Description: "ML ensemble inference, two imbalanced pipelines (Fig. 5)",
		Build: func(s Session, p Params) error {
			blocks := p.blocks(4)
			rowsPerBlock := int64(p.Footprint) / int64(blocks) / 4 / features
			if rowsPerBlock < 1 {
				return fmt.Errorf("mle: footprint %v too small for %d blocks", p.Footprint, blocks)
			}
			rows := num(float64(rowsPerBlock))
			feat := num(float64(features))
			for b := 0; b < blocks; b++ {
				// Per-partition model replicas (small): each data
				// partition carries its own weight copies, so partitions
				// share no arrays and the scheduler is free to place
				// them independently.
				wr1, err := s.NewArray(memmodel.Float32, features)
				if err != nil {
					return err
				}
				wr2, err := s.NewArray(memmodel.Float32, features)
				if err != nil {
					return err
				}
				wn, err := s.NewArray(memmodel.Float32, features)
				if err != nil {
					return err
				}
				for _, w := range []dag.ArrayID{wr1, wr2, wn} {
					if buf := s.Buffer(w); buf != nil {
						for i := 0; i < buf.Len(); i++ {
							buf.Set(i, float64(i%13)/13-0.5)
						}
					}
					if err := s.HostWrite(w); err != nil {
						return err
					}
				}
				X, err := s.NewArray(memmodel.Float32, rowsPerBlock*features)
				if err != nil {
					return err
				}
				if buf := s.Buffer(X); buf != nil {
					for i := 0; i < buf.Len(); i++ {
						buf.Set(i, float64((i*31+b)%7)/7)
					}
				}
				if err := s.HostWrite(X); err != nil {
					return err
				}
				sr, err := s.NewArray(memmodel.Float32, rowsPerBlock)
				if err != nil {
					return err
				}
				sr2, err := s.NewArray(memmodel.Float32, rowsPerBlock)
				if err != nil {
					return err
				}
				sn, err := s.NewArray(memmodel.Float32, rowsPerBlock)
				if err != nil {
					return err
				}
				out, err := s.NewArray(memmodel.Float32, rowsPerBlock)
				if err != nil {
					return err
				}
				// Pipeline R: two scoring passes over X (the deep branch).
				if err := s.Launch("rowdot", 1024, 256, arr(sr), arr(X), arr(wr1), rows, feat); err != nil {
					return err
				}
				if err := s.Launch("relu", 1024, 256, arr(sr), rows); err != nil {
					return err
				}
				if err := s.Launch("rowdot", 1024, 256, arr(sr2), arr(X), arr(wr2), rows, feat); err != nil {
					return err
				}
				if err := s.Launch("axpy", 1024, 256, arr(sr), arr(sr2), num(0.5), rows); err != nil {
					return err
				}
				if err := s.Launch("softmax", 1, 256, arr(sr), rows); err != nil {
					return err
				}
				// Pipeline N: one scoring pass (the shallow branch).
				if err := s.Launch("rowdot", 1024, 256, arr(sn), arr(X), arr(wn), rows, feat); err != nil {
					return err
				}
				if err := s.Launch("softmax", 1, 256, arr(sn), rows); err != nil {
					return err
				}
				// Ensemble vote.
				if err := s.Launch("combine_argmax", 1024, 256, arr(out), arr(sr), arr(sn), rows); err != nil {
					return err
				}
				if err := s.HostRead(out); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// CG solves a row-partitioned dense symmetric system by conjugate
// gradient: the chain of inter-dependent CEs (per-partition gemv, partial
// dots, scalar reductions, vector updates) that stresses network
// communication in the paper's Figure 5. All solver scalars stay in
// one-element device arrays, so no host synchronization breaks the DAG.
func CG() *Workload {
	return &Workload{
		Name:        "cg",
		Description: "conjugate gradient on a dense SPD system (Fig. 5)",
		Build: func(s Session, p Params) error {
			iters := p.iterations(16)
			// Row partitions of an N x N matrix; footprint ~= N^2*4.
			n := int64(1)
			for n*n*4 < int64(p.Footprint) {
				n++
			}
			_, err := buildCG(s, n, iters, p.blocks(4))
			return err
		},
	}
}

// CGHandles exposes the solver's result arrays: the solution blocks (in
// row order) and the final squared residual.
type CGHandles struct {
	X  []dag.ArrayID
	RR dag.ArrayID
	N  int64
}

// buildCG submits a CG solve of an N×N system split into B row blocks
// (one gemv CE per block per iteration, with gather and reduction trees
// joining the partitions).
func buildCG(s Session, n int64, iters, nBlocks int) (CGHandles, error) {
	if n < 2 {
		return CGHandles{}, fmt.Errorf("cg: system size %d too small", n)
	}
	if nBlocks < 1 {
		nBlocks = 1
	}
	if int64(nBlocks) > n {
		nBlocks = int(n)
	}
	newVec := func(len64 int64) (dag.ArrayID, error) { return s.NewArray(memmodel.Float32, len64) }

	// Row block lengths: n split as evenly as possible.
	lens := make([]int64, nBlocks)
	base := n / int64(nBlocks)
	rem := n % int64(nBlocks)
	for b := range lens {
		lens[b] = base
		if int64(b) < rem {
			lens[b]++
		}
	}

	// Matrix blocks are generated on the GPU (cg_matgen): write-only CEs
	// the scheduler's exploration phase spreads across nodes, so the big
	// operand never ships from the controller.
	a := make([]dag.ArrayID, nBlocks)
	offset := int64(0)
	for b := range a {
		var err error
		if a[b], err = newVec(lens[b] * n); err != nil {
			return CGHandles{}, err
		}
		if err = s.Launch("cg_matgen", 1024, 256, arr(a[b]),
			num(float64(offset)), num(float64(lens[b])), num(float64(n))); err != nil {
			return CGHandles{}, err
		}
		offset += lens[b]
	}

	x := make([]dag.ArrayID, nBlocks)
	r := make([]dag.ArrayID, nBlocks)
	pb := make([]dag.ArrayID, nBlocks)
	q := make([]dag.ArrayID, nBlocks)
	pqPart := make([]dag.ArrayID, nBlocks)
	rrPart := make([]dag.ArrayID, nBlocks)
	for b := 0; b < nBlocks; b++ {
		var err error
		if x[b], err = newVec(lens[b]); err != nil {
			return CGHandles{}, err
		}
		if r[b], err = newVec(lens[b]); err != nil {
			return CGHandles{}, err
		}
		if pb[b], err = newVec(lens[b]); err != nil {
			return CGHandles{}, err
		}
		if q[b], err = newVec(lens[b]); err != nil {
			return CGHandles{}, err
		}
		if pqPart[b], err = newVec(1); err != nil {
			return CGHandles{}, err
		}
		if rrPart[b], err = newVec(1); err != nil {
			return CGHandles{}, err
		}
	}
	rr, err := newVec(1)
	if err != nil {
		return CGHandles{}, err
	}
	rrNew, err := newVec(1)
	if err != nil {
		return CGHandles{}, err
	}
	pq, err := newVec(1)
	if err != nil {
		return CGHandles{}, err
	}
	alpha, err := newVec(1)
	if err != nil {
		return CGHandles{}, err
	}
	beta, err := newVec(1)
	if err != nil {
		return CGHandles{}, err
	}

	// Gather tree: pairwise gather2 CEs reassemble p from its blocks.
	// Temporaries are allocated once and reused every iteration.
	gather, err := newGatherTree(s, pb, lens)
	if err != nil {
		return CGHandles{}, err
	}
	// Reduction trees for the partial scalars.
	pqTree, err := newAddTree(s, pqPart, pq)
	if err != nil {
		return CGHandles{}, err
	}
	rrTree, err := newAddTree(s, rrPart, rrNew)
	if err != nil {
		return CGHandles{}, err
	}
	rrInitTree, err := newAddTree(s, rrPart, rr)
	if err != nil {
		return CGHandles{}, err
	}

	// x = 0, r = b (all ones), p = r.
	for b := 0; b < nBlocks; b++ {
		cnt := num(float64(lens[b]))
		if err := s.Launch("fill", 256, 256, arr(x[b]), num(0), cnt); err != nil {
			return CGHandles{}, err
		}
		if err := s.Launch("fill", 256, 256, arr(r[b]), num(1), cnt); err != nil {
			return CGHandles{}, err
		}
		if err := s.Launch("copy", 256, 256, arr(pb[b]), arr(r[b]), cnt); err != nil {
			return CGHandles{}, err
		}
		if err := s.Launch("dot", 256, 256, arr(rrPart[b]), arr(r[b]), arr(r[b]), cnt); err != nil {
			return CGHandles{}, err
		}
	}
	if err := rrInitTree.run(s); err != nil {
		return CGHandles{}, err
	}

	for it := 0; it < iters; it++ {
		// p_full = [p_0; ...; p_B-1]; q_b = A_b p_full.
		if err := gather.run(s); err != nil {
			return CGHandles{}, err
		}
		for b := 0; b < nBlocks; b++ {
			if err := s.Launch("gemv", 1024, 256, arr(q[b]), arr(a[b]), arr(gather.root),
				num(float64(lens[b])), num(float64(n))); err != nil {
				return CGHandles{}, err
			}
		}
		// pq = p.q; alpha = rr/pq.
		for b := 0; b < nBlocks; b++ {
			if err := s.Launch("dot", 256, 256, arr(pqPart[b]), arr(pb[b]), arr(q[b]),
				num(float64(lens[b]))); err != nil {
				return CGHandles{}, err
			}
		}
		if err := pqTree.run(s); err != nil {
			return CGHandles{}, err
		}
		if err := s.Launch("div_s", 1, 1, arr(alpha), arr(rr), arr(pq)); err != nil {
			return CGHandles{}, err
		}
		// x += alpha p; r -= alpha q; rr_new = r.r.
		for b := 0; b < nBlocks; b++ {
			cnt := num(float64(lens[b]))
			if err := s.Launch("axpy_s", 256, 256, arr(x[b]), arr(pb[b]), arr(alpha), num(1), cnt); err != nil {
				return CGHandles{}, err
			}
			if err := s.Launch("axpy_s", 256, 256, arr(r[b]), arr(q[b]), arr(alpha), num(-1), cnt); err != nil {
				return CGHandles{}, err
			}
			if err := s.Launch("dot", 256, 256, arr(rrPart[b]), arr(r[b]), arr(r[b]), cnt); err != nil {
				return CGHandles{}, err
			}
		}
		if err := rrTree.run(s); err != nil {
			return CGHandles{}, err
		}
		// beta = rr_new/rr; p = r + beta p; rr = rr_new.
		if err := s.Launch("div_s", 1, 1, arr(beta), arr(rrNew), arr(rr)); err != nil {
			return CGHandles{}, err
		}
		for b := 0; b < nBlocks; b++ {
			if err := s.Launch("xpay_s", 256, 256, arr(pb[b]), arr(r[b]), arr(beta),
				num(float64(lens[b]))); err != nil {
				return CGHandles{}, err
			}
		}
		if err := s.Launch("copy", 1, 1, arr(rr), arr(rrNew), num(1)); err != nil {
			return CGHandles{}, err
		}
	}
	// Read back the solution and the final residual norm.
	for b := 0; b < nBlocks; b++ {
		if err := s.HostRead(x[b]); err != nil {
			return CGHandles{}, err
		}
	}
	if err := s.HostRead(rr); err != nil {
		return CGHandles{}, err
	}
	return CGHandles{X: x, RR: rr, N: n}, nil
}

// gatherTree reassembles partitioned vectors by pairwise gather2 CEs.
type gatherTree struct {
	// steps are (dst, src0, src1, n0, n1) gather2 launches in order.
	steps [][5]any
	root  dag.ArrayID
}

func newGatherTree(s Session, blocks []dag.ArrayID, lens []int64) (*gatherTree, error) {
	t := &gatherTree{}
	level := append([]dag.ArrayID(nil), blocks...)
	sizes := append([]int64(nil), lens...)
	for len(level) > 1 {
		var next []dag.ArrayID
		var nextSizes []int64
		for i := 0; i+1 < len(level); i += 2 {
			dst, err := s.NewArray(memmodel.Float32, sizes[i]+sizes[i+1])
			if err != nil {
				return nil, err
			}
			t.steps = append(t.steps, [5]any{dst, level[i], level[i+1], sizes[i], sizes[i+1]})
			next = append(next, dst)
			nextSizes = append(nextSizes, sizes[i]+sizes[i+1])
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
			nextSizes = append(nextSizes, sizes[len(sizes)-1])
		}
		level, sizes = next, nextSizes
	}
	t.root = level[0]
	return t, nil
}

func (t *gatherTree) run(s Session) error {
	for _, st := range t.steps {
		if err := s.Launch("gather2", 256, 256,
			arr(st[0].(dag.ArrayID)), arr(st[1].(dag.ArrayID)), arr(st[2].(dag.ArrayID)),
			num(float64(st[3].(int64))), num(float64(st[4].(int64)))); err != nil {
			return err
		}
	}
	return nil
}

// addTree reduces partial one-element scalars into a destination scalar by
// pairwise add_s CEs (copy when there is a single partial).
type addTree struct {
	steps [][3]dag.ArrayID // dst, src0, src1
	copy1 bool
	src   dag.ArrayID
	dst   dag.ArrayID
}

func newAddTree(s Session, parts []dag.ArrayID, dst dag.ArrayID) (*addTree, error) {
	t := &addTree{dst: dst}
	if len(parts) == 1 {
		t.copy1 = true
		t.src = parts[0]
		return t, nil
	}
	level := append([]dag.ArrayID(nil), parts...)
	for len(level) > 1 {
		var next []dag.ArrayID
		for i := 0; i+1 < len(level); i += 2 {
			var out dag.ArrayID
			if len(level) == 2 {
				out = dst
			} else {
				var err error
				if out, err = s.NewArray(memmodel.Float32, 1); err != nil {
					return nil, err
				}
			}
			t.steps = append(t.steps, [3]dag.ArrayID{out, level[i], level[i+1]})
			next = append(next, out)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return t, nil
}

func (t *addTree) run(s Session) error {
	if t.copy1 {
		return s.Launch("copy", 1, 1, arr(t.dst), arr(t.src), num(1))
	}
	for _, st := range t.steps {
		if err := s.Launch("add_s", 1, 1, arr(st[0]), arr(st[1]), arr(st[2])); err != nil {
			return err
		}
	}
	return nil
}

// CGExplicit builds a CG solve of an explicit N×N system (tests and the
// numeric example use this to control conditioning directly), returning
// handles to the solution and residual arrays.
func CGExplicit(s Session, n int64, iters, blocks int) (CGHandles, error) {
	return buildCG(s, n, iters, blocks)
}

// MV is the row-partitioned dense matrix-vector product of the paper's
// Figure 5: independent gemv CEs over matrix row blocks sharing the dense
// input vector, joined by the result read-back. Its single massive
// sequential sweep is what makes the storm cliff most dramatic (342× in
// Figure 6a).
func MV() *Workload {
	const cols = 16384
	return &Workload{
		Name:        "mv",
		Description: "row-partitioned dense matrix-vector product (Fig. 5)",
		Build: func(s Session, p Params) error {
			blocks := p.blocks(8)
			rowsPerBlock := int64(p.Footprint) / int64(blocks) / 4 / cols
			if rowsPerBlock < 1 {
				return fmt.Errorf("mv: footprint %v too small for %d blocks", p.Footprint, blocks)
			}
			x, err := s.NewArray(memmodel.Float32, cols)
			if err != nil {
				return err
			}
			if buf := s.Buffer(x); buf != nil {
				buf.Fill(1)
			}
			if err := s.HostWrite(x); err != nil {
				return err
			}
			rows := num(float64(rowsPerBlock))
			for b := 0; b < blocks; b++ {
				A, err := s.NewArray(memmodel.Float32, rowsPerBlock*cols)
				if err != nil {
					return err
				}
				if buf := s.Buffer(A); buf != nil {
					for i := 0; i < buf.Len(); i++ {
						buf.Set(i, float64((i+b)%5))
					}
				}
				if err := s.HostWrite(A); err != nil {
					return err
				}
				y, err := s.NewArray(memmodel.Float32, rowsPerBlock)
				if err != nil {
					return err
				}
				if err := s.Launch("gemv", 1024, 256, arr(y), arr(A), arr(x), rows, num(cols)); err != nil {
					return err
				}
				if err := s.HostRead(y); err != nil {
					return err
				}
			}
			return nil
		},
	}
}
