package workloads

// The sharded-control-plane differential gate (DESIGN.md §5.8): every
// suite workload must produce bit-identical array contents (and
// identical error text) on a 4-shard plane — where each shard
// controller schedules over a 2-worker partition — as on a 1-shard
// plane owning the whole 8-worker fleet. The shards run the workloads
// concurrently, so this is also the -race companion for the plane. A
// chaos variant kills a worker mid-run on both sides and demands the
// same identity through lineage recovery.

import (
	"bytes"
	"sort"
	"sync"
	"testing"

	"grout/internal/cluster"
	"grout/internal/core"
	"grout/internal/dag"
	"grout/internal/policy"
	"grout/internal/shard"
)

// newDiffPlane builds a plane matching runDifferential's controller
// configuration: numeric, pipelined, optimizer window on, batched
// min-transfer-time policy.
func newDiffPlane(t *testing.T, shards int, chaos *core.ChaosOptions) *shard.Plane {
	t.Helper()
	opts := shard.Options{
		Shards:  shards,
		Workers: 8,
		NewPolicy: func(int) (policy.Policy, error) {
			return policy.NewMinTransferTime(policy.Medium), nil
		},
		Core: core.Options{Numeric: true, Pipeline: true, OptimizeWindow: 16},
	}
	if chaos != nil {
		opts.Core.Failover = true
		opts.Wrap = func(inner core.Fabric) core.Fabric {
			return core.NewChaosFabric(inner, *chaos)
		}
	}
	p, err := shard.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// runOnShard builds one workload against a single shard controller and
// returns every live array's final bytes plus the run's error text.
func runOnShard(ctl *core.Controller, w *Workload) ([][]byte, string) {
	s := &AsyncGrout{Ctl: ctl}
	rec := &recorder{Session: s, live: make(map[dag.ArrayID]bool)}
	errText := ""
	if err := w.Build(rec, gateParams(w.Name)); err != nil {
		errText = err.Error()
	}
	if err := s.Wait(); err != nil && errText == "" {
		errText = err.Error()
	}
	var out [][]byte
	for _, id := range rec.order {
		if !rec.live[id] {
			continue
		}
		if _, err := ctl.HostRead(id); err != nil {
			if errText == "" {
				errText = err.Error()
			}
			out = append(out, nil)
			continue
		}
		arr := ctl.Array(id)
		out = append(out, append([]byte(nil), arr.Buf.RawBytes()...))
	}
	return out, errText
}

func shardDifferential(t *testing.T, chaos func() *core.ChaosOptions) {
	t.Helper()
	suite := FullSuite()
	names := make([]string, 0, len(suite))
	for name := range suite {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			var baseChaos, shardChaos *core.ChaosOptions
			if chaos != nil {
				baseChaos, shardChaos = chaos(), chaos()
			}
			base := newDiffPlane(t, 1, baseChaos)
			want, wantErr := runOnShard(base.Controllers[0], suite[name])

			p := newDiffPlane(t, 4, shardChaos)
			type result struct {
				out     [][]byte
				errText string
			}
			results := make([]result, p.Shards())
			var wg sync.WaitGroup
			for s := 0; s < p.Shards(); s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					out, errText := runOnShard(p.Controllers[s], suite[name])
					results[s] = result{out, errText}
				}(s)
			}
			wg.Wait()

			for s, r := range results {
				if r.errText != wantErr {
					t.Fatalf("shard %d error text diverged:\n  1-shard: %q\n  4-shard: %q",
						s, wantErr, r.errText)
				}
				if len(r.out) != len(want) {
					t.Fatalf("shard %d live array count diverged: %d vs %d", s, len(r.out), len(want))
				}
				for i := range want {
					if !bytes.Equal(want[i], r.out[i]) {
						t.Fatalf("shard %d: array %d of %d diverged from the 1-shard run",
							s, i, len(want))
					}
				}
			}
		})
	}
}

// Every suite workload, run on all four shards at once, is bit-identical
// to the 1-shard plane.
func TestShardDifferentialSuite(t *testing.T) {
	shardDifferential(t, nil)
}

// The same identity must survive a chaos worker kill: worker 1 (shard
// 0's partition on the 4-shard plane; just another worker on the
// 1-shard plane) dies at its second launch on both sides, and lineage
// recovery keeps every shard's results bit-identical.
func TestShardDifferentialSuiteUnderChaos(t *testing.T) {
	shardDifferential(t, func() *core.ChaosOptions {
		return &core.ChaosOptions{KillAtLaunch: map[cluster.NodeID]int{1: 2}, Seed: 42}
	})
}
