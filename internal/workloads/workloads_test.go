package workloads

import (
	"math"
	"testing"

	"grout/internal/cluster"
	"grout/internal/core"
	"grout/internal/dag"
	"grout/internal/gpusim"
	"grout/internal/grcuda"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/policy"
)

func singleNode(t testing.TB, numeric bool) *SingleNode {
	t.Helper()
	rt := grcuda.NewRuntime(gpusim.NewNode(gpusim.OCIWorkerSpec("w")),
		kernels.StdRegistry(), grcuda.Options{ExecuteNumeric: numeric})
	return &SingleNode{RT: rt}
}

func groutSystem(t testing.TB, workers int, pol policy.Policy, numeric bool) *Grout {
	t.Helper()
	clu := cluster.New(cluster.PaperSpec(workers))
	fab := core.NewLocalFabric(clu, kernels.StdRegistry(), numeric)
	return &Grout{Ctl: core.NewController(fab, pol, core.Options{Numeric: numeric})}
}

func TestSuiteComplete(t *testing.T) {
	suite := Suite()
	for _, name := range []string{"bs", "mle", "cg", "mv"} {
		w, ok := suite[name]
		if !ok || w.Build == nil || w.Name != name || w.Description == "" {
			t.Fatalf("suite entry %q malformed: %+v", name, w)
		}
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}
	if p.iterations(8) != 8 || p.blocks(4) != 4 {
		t.Fatalf("defaults not applied")
	}
	p = Params{Iterations: 3, Blocks: 2}
	if p.iterations(8) != 3 || p.blocks(4) != 2 {
		t.Fatalf("overrides not applied")
	}
}

func TestWorkloadsRejectTinyFootprints(t *testing.T) {
	for name, w := range Suite() {
		s := singleNode(t, false)
		if err := w.Build(s, Params{Footprint: 16}); err == nil && name != "cg" {
			t.Errorf("%s accepted a 16-byte footprint", name)
		}
	}
}

func TestBlackScholesSingleNodeShape(t *testing.T) {
	s := singleNode(t, false)
	if err := BlackScholes().Build(s, Params{Footprint: 256 * memmodel.MiB, Blocks: 4}); err != nil {
		t.Fatal(err)
	}
	g := s.RT.Graph()
	// Per block: host-write, kernel, host-read = 12 CEs.
	if g.Size() != 12 {
		t.Fatalf("bs CE count = %d, want 12", g.Size())
	}
	// Blocks are independent: 4 connected chains of depth 3.
	if d := g.MaxDepth(); d != 3 {
		t.Fatalf("bs depth = %d, want 3", d)
	}
	if len(g.Roots()) != 4 {
		t.Fatalf("bs roots = %d, want 4", len(g.Roots()))
	}
}

func TestMLEDagShape(t *testing.T) {
	s := singleNode(t, false)
	if err := MLE().Build(s, Params{Footprint: 512 * memmodel.MiB, Blocks: 2}); err != nil {
		t.Fatal(err)
	}
	g := s.RT.Graph()
	// Per block: 3 weight host-writes + X host-write + 8 kernels + read
	// = 13 CEs over 2 blocks.
	if g.Size() != 26 {
		t.Fatalf("mle CE count = %d, want 26", g.Size())
	}
	// The deep pipeline (rowdot, relu, rowdot-join via axpy, softmax,
	// combine, read) gives depth >= 6; two branches join at combine.
	if d := g.MaxDepth(); d < 6 {
		t.Fatalf("mle depth = %d, want >= 6", d)
	}
}

func TestCGDagShape(t *testing.T) {
	s := singleNode(t, false)
	if _, err := CGExplicit(s, 64, 3, 2); err != nil {
		t.Fatal(err)
	}
	g := s.RT.Graph()
	// Init: 2 host-writes + per block 4 CEs + 1 add_s = 11.
	// Per iteration: gather2 + 2 gemv + 2 dot + add_s + div_s + 4 axpy_s
	//              + 2 dot + add_s + div_s + 2 xpay_s + copy = 18.
	// Final: 3 host-reads.
	want := 11 + 3*18 + 3
	if g.Size() != want {
		t.Fatalf("cg CE count = %d, want %d", g.Size(), want)
	}
	// CG is a long dependency chain: depth grows with iterations.
	if d := g.MaxDepth(); d < 3*6 {
		t.Fatalf("cg depth = %d, want >= 18", d)
	}
}

func TestMVDagShape(t *testing.T) {
	s := singleNode(t, false)
	if err := MV().Build(s, Params{Footprint: memmodel.GiB, Blocks: 8}); err != nil {
		t.Fatal(err)
	}
	g := s.RT.Graph()
	// x write + per block (A write + gemv + y read) = 1 + 24.
	if g.Size() != 25 {
		t.Fatalf("mv CE count = %d, want 25", g.Size())
	}
	// Row partitions are independent: shallow DAG.
	if d := g.MaxDepth(); d != 3 {
		t.Fatalf("mv depth = %d, want 3", d)
	}
}

func TestCGConvergesNumerically(t *testing.T) {
	s := singleNode(t, true)
	h, err := CGExplicit(s, 64, 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	rr := s.Buffer(h.RR).At(0)
	res := math.Sqrt(rr) / math.Sqrt(float64(h.N)) // ||r|| / ||b||
	if res > 1e-3 {
		t.Fatalf("CG residual too large: %v", res)
	}
	// The solver must expose the full solution.
	var total int
	for _, xb := range h.X {
		total += s.Buffer(xb).Len()
	}
	if int64(total) != h.N {
		t.Fatalf("solution blocks cover %d of %d rows", total, h.N)
	}
}

func TestMVNumericCorrectness(t *testing.T) {
	s := singleNode(t, true)
	// Tiny MV: footprint sized so rowsPerBlock = 1, cols = 16384.
	foot := memmodel.Bytes(2 * 16384 * 4)
	if err := MV().Build(s, Params{Footprint: foot, Blocks: 2}); err != nil {
		t.Fatal(err)
	}
	// x is all ones; block b matrix entries are (i+b)%5. Row sums are
	// deterministic; verify y values.
	for id := int64(1); id < 16; id++ {
		arr := s.RT.Array(dagArrayID(id))
		if arr == nil || arr.Len != 1 {
			continue
		}
	}
	// Verify via direct recomputation on the first block's buffers.
	var A, y *grcuda.Array
	for id := int64(1); id < 16; id++ {
		arr := s.RT.Array(dagArrayID(id))
		if arr == nil {
			continue
		}
		switch arr.Len {
		case 16384 * 1:
			if A == nil && arr.Buf != nil && id > 1 {
				A = arr
			}
		case 1:
			if y == nil {
				y = arr // block 0's result, matching the captured A
			}
		}
	}
	if A == nil || y == nil {
		t.Fatalf("arrays not found")
	}
	var want float64
	for i := 0; i < A.Buf.Len(); i++ {
		want += A.Buf.At(i)
	}
	if got := y.Buf.At(0); math.Abs(got-want) > math.Abs(want)*1e-5 {
		t.Fatalf("mv y = %v, want %v", got, want)
	}
}

func TestMLERunsOnGrout(t *testing.T) {
	g := groutSystem(t, 2, policy.NewRoundRobin(), true)
	if err := MLE().Build(g, Params{Footprint: 8 * memmodel.MiB, Blocks: 2}); err != nil {
		t.Fatal(err)
	}
	if g.Elapsed() == 0 {
		t.Fatalf("no elapsed time recorded")
	}
	// Ensemble output is one-hot: every element 0 or 1.
	for id := int64(1); id < 32; id++ {
		arr := g.Ctl.Array(dagArrayID(id))
		if arr == nil || arr.Buf == nil {
			continue
		}
	}
}

// The port-by-one-line property (paper Listing 2): the same workload code
// produces numerically identical results on GrCUDA and on GrOUT.
func TestWorkloadPortability(t *testing.T) {
	for _, name := range []string{"bs", "mv"} {
		w := Suite()[name]
		p := Params{Footprint: 8 * memmodel.MiB, Blocks: 2}

		sn := singleNode(t, true)
		if err := w.Build(sn, p); err != nil {
			t.Fatalf("%s single: %v", name, err)
		}
		gr := groutSystem(t, 2, policy.NewRoundRobin(), true)
		if err := w.Build(gr, p); err != nil {
			t.Fatalf("%s grout: %v", name, err)
		}
		// Compare every array with a buffer on both sides.
		for id := int64(1); id < 64; id++ {
			a := sn.RT.Array(dagArrayID(id))
			b := gr.Ctl.Array(dagArrayID(id))
			if a == nil || b == nil || a.Buf == nil || b.Buf == nil {
				continue
			}
			// Only compare arrays the host has consistent (read back or
			// never shipped): outputs were host-read in both builds.
			if !b.UpToDateOn(cluster.ControllerID) {
				continue
			}
			if d := a.Buf.MaxAbsDiff(b.Buf); d > 1e-5 {
				t.Fatalf("%s array %d differs by %v between runtimes", name, id, d)
			}
		}
	}
}

// The paper's Figure 7 crossover: at 2x oversubscription MV is still
// better on a single node (GrOUT pays the network), but at 3x the
// single-node storm regime makes distribution win by a wide margin.
func TestDistributionCrossoverMatchesPaper(t *testing.T) {
	run := func(foot memmodel.Bytes) (single, grout float64) {
		sn := singleNode(t, false)
		if err := MV().Build(sn, Params{Footprint: foot}); err != nil {
			t.Fatal(err)
		}
		gr := groutSystem(t, 2, policy.NewRoundRobin(), false)
		if err := MV().Build(gr, Params{Footprint: foot}); err != nil {
			t.Fatal(err)
		}
		return sn.Elapsed().Seconds(), gr.Elapsed().Seconds()
	}
	s64, g64 := run(64 * memmodel.GiB)
	if g64 <= s64 {
		t.Fatalf("at 2x, single node should still win: single %.1fs vs grout %.1fs", s64, g64)
	}
	s96, g96 := run(96 * memmodel.GiB)
	speedup := s96 / g96
	if speedup < 5 {
		t.Fatalf("at 3x, GrOUT speedup = %.2fx (single %.1fs, grout %.1fs), want > 5x",
			speedup, s96, g96)
	}
}

// dagArrayID converts a raw int64 to a dag.ArrayID (test brevity helper).
func dagArrayID(id int64) dag.ArrayID { return dag.ArrayID(id) }

func TestExtendedSuite(t *testing.T) {
	ext := ExtendedSuite()
	for _, name := range []string{"bs", "mle", "cg", "mv", "images", "deep"} {
		if _, ok := ext[name]; !ok {
			t.Fatalf("extended suite missing %q", name)
		}
	}
	// The base suite is not polluted.
	if _, ok := Suite()["images"]; ok {
		t.Fatalf("base suite contains extension workloads")
	}
}

func TestImagesDagShape(t *testing.T) {
	s := singleNode(t, false)
	if err := Images().Build(s, Params{Footprint: 384 * memmodel.MiB, Blocks: 2}); err != nil {
		t.Fatal(err)
	}
	g := s.RT.Graph()
	// Per block: host-write + 4 kernels + host-read = 12 over 2 blocks.
	if g.Size() != 12 {
		t.Fatalf("images CE count = %d, want 12", g.Size())
	}
	// blur -> sharpen -> combine -> combine -> read is a depth-6 chain
	// including the initial write.
	if d := g.MaxDepth(); d != 6 {
		t.Fatalf("images depth = %d, want 6", d)
	}
}

func TestImagesNumeric(t *testing.T) {
	s := singleNode(t, true)
	if err := Images().Build(s, Params{Footprint: memmodel.Bytes(3 * 256 * 4), Blocks: 1}); err != nil {
		t.Fatal(err)
	}
	// Verify the unsharp-mask arithmetic on one interior pixel: the
	// final img = orig + 0.6*(blur - sharp).
	var img, blur, sharp *grcuda.Array
	for id := int64(1); id < 8; id++ {
		arr := s.RT.Array(dagArrayID(id))
		if arr == nil {
			continue
		}
		switch id {
		case 1:
			img = arr
		case 2:
			blur = arr
		case 3:
			sharp = arr
		}
	}
	if img == nil || blur == nil || sharp == nil {
		t.Fatalf("arrays missing")
	}
	i := 100
	orig := float64((i * 7) % 255)
	want := orig + 0.6*(blur.Buf.At(i)-sharp.Buf.At(i))
	if d := math.Abs(img.Buf.At(i) - want); d > 1e-3 {
		t.Fatalf("unsharp mask at %d: got %v want %v", i, img.Buf.At(i), want)
	}
}

func TestDeepDagShapeAndNumeric(t *testing.T) {
	s := singleNode(t, true)
	if err := Deep().Build(s, Params{Footprint: memmodel.Bytes(2 * 2048 * 4 * 4), Blocks: 2}); err != nil {
		t.Fatal(err)
	}
	g := s.RT.Graph()
	// Per block: 3 host-writes + 5 kernels + 1 read = 18 over 2 blocks.
	if g.Size() != 18 {
		t.Fatalf("deep CE count = %d, want 18", g.Size())
	}
	if d := g.MaxDepth(); d < 7 {
		t.Fatalf("deep depth = %d, want >= 7", d)
	}
	// The softmax outputs are probability vectors.
	for id := int64(1); id < 20; id++ {
		arr := s.RT.Array(dagArrayID(id))
		if arr == nil || arr.Buf == nil || arr.Len != 4 {
			continue
		}
		var sum float64
		for i := 0; i < int(arr.Len); i++ {
			sum += arr.Buf.At(i)
		}
		// h2 arrays end softmaxed; h arrays do not sum to 1 — accept
		// either but require no NaNs.
		if sum != sum {
			t.Fatalf("NaN in activation %d", id)
		}
	}
}

func TestExtendedWorkloadsRunOnGrout(t *testing.T) {
	for name, w := range map[string]*Workload{"images": Images(), "deep": Deep()} {
		g := groutSystem(t, 2, policy.NewRoundRobin(), true)
		if err := w.Build(g, Params{Footprint: 8 * memmodel.MiB, Blocks: 2}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.Elapsed() == 0 {
			t.Fatalf("%s: no time recorded", name)
		}
	}
}
