package workloads

// The UVMBench-style workload suite (ROADMAP item 4): ML, graph, linear
// algebra and streaming workloads written in mini-CUDA against the
// Session interface, so every entry runs unmodified embedded (core
// controller), over a solo TCP fleet, or through the multi-tenant
// gateway — the three deployment modes of the system.
//
// The irregular members are the point of the suite:
//
//   - spmv and pagerank gather through CSR column indices
//     (x[colidx[j]]): the static analyzer classifies those loads as
//     Random, which blinds the pattern-based prefetchers and forces the
//     gpusim policies onto the online AllocHistory fault signal.
//   - bfs writes dist[v] at a *loaded* index and kmeans/logreg
//     accumulate through float atomicAdd: the race analysis cannot
//     prove block partitions independent, so those kernels fall back to
//     serial execution — deterministic, never miscompiled — while the
//     rest of the suite keeps the parallel engine.
//
// Every workload generates its large operands on the GPU with small
// deterministic kernels (like cg_matgen): the sweep's cost-only runs
// never ship giant buffers from the controller, placement policies see
// write-only producer CEs they are free to spread, and numeric runs
// stay bit-identical across engines and deployments.
//
// Generator launches are ordered array-major (every partition's rowptr,
// then every partition's colidx, ...), not partition-major. Input-free
// CEs are placed by the online policies' round-robin exploration, so
// each pass of exactly `blocks` launches advances the explorer one full
// lap: when blocks is a multiple of the fleet size (the sweep default,
// 8 over 1/2/4 workers), partition b's arrays all land on the same
// worker and the partition's compute CEs exploit instead of bouncing.
// Partition-major generation would deal one partition's arrays across
// the fleet and leave no node above the viability threshold — every
// node then accretes replicas of everything, which is exactly the
// oversubscription pathology the sweep is trying to isolate.

import (
	"fmt"

	"grout/internal/core"
	"grout/internal/dag"
	"grout/internal/memmodel"
)

// UVMSuite returns the UVMBench-style workloads keyed by name:
// ML (kmeans, logreg, conv), graph (bfs, pagerank), linear algebra
// (spmv) and streaming (triad, stencil2d).
func UVMSuite() map[string]*Workload {
	return map[string]*Workload{
		"kmeans":    KMeans(),
		"logreg":    LogReg(),
		"conv":      Conv(),
		"bfs":       BFS(),
		"pagerank":  PageRank(),
		"spmv":      SpMV(),
		"triad":     Triad(),
		"stencil2d": Stencil2D(),
	}
}

// FullSuite returns every workload: the paper's suite, the extension
// workloads, and the UVMBench-style suite. The differential gates run
// over this set.
func FullSuite() map[string]*Workload {
	s := ExtendedSuite()
	for name, w := range UVMSuite() {
		s[name] = w
	}
	return s
}

// ---- shared mini-CUDA building blocks ----

// uvmGenFSrc fills a float array from a deterministic integer lattice:
// x[i] = ((i*mul + off) % md) * scale. With mul=0 it zeroes.
const uvmGenFSrc = `
extern "C" __global__ void uvm_genf(float *x, int mul, int off, int md, float scale, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        x[i] = (float)((i * mul + off) % md) * scale;
    }
}`

const uvmGenFSig = "pointer float, sint32, sint32, sint32, float, sint32"

// uvmGenISrc is the integer-array twin of uvm_genf.
const uvmGenISrc = `
extern "C" __global__ void uvm_geni(int *x, int mul, int off, int md, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        x[i] = (i * mul + off) % md;
    }
}`

const uvmGenISig = "pointer int, sint32, sint32, sint32, sint32"

// csrGenSrc generates a fixed-degree CSR adjacency deterministically:
// rowptr[i] = i*deg and, per edge slot, a column scattered over [0, cols)
// by a small affine lattice — data-dependent enough that consumers must
// gather through it, deterministic enough to verify on the host.
const csrRowGenSrc = `
extern "C" __global__ void csr_rowgen(int *rowptr, int deg, int rows) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i <= rows) {
        rowptr[i] = i * deg;
    }
}`

const csrRowGenSig = "pointer int, sint32, sint32"

const csrColGenSrc = `
extern "C" __global__ void csr_colgen(int *colidx, int deg, int cols, int seed, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        int r = i / deg;
        int k = i % deg;
        colidx[i] = (r * 7 + k * 461 + seed * 97 + 1) % cols;
    }
}`

const csrColGenSig = "pointer int, sint32, sint32, sint32, sint32"

// kernelSrc is one mini-CUDA kernel a workload builds at session start.
type kernelSrc struct {
	src, sig string
}

// buildAll compiles each kernel through the session's buildkernel path;
// repeat builds are compile-cache hits on every backend.
func buildAll(s Session, ks ...kernelSrc) error {
	for _, k := range ks {
		if _, err := s.BuildKernel(k.src, k.sig); err != nil {
			return err
		}
	}
	return nil
}

// grid1d sizes a 1-D launch covering n threads at the given block size,
// with no excess blocks: race-safe kernels index exactly [0, n).
func grid1d(n int64, block int) int {
	g := (n + int64(block) - 1) / int64(block)
	if g < 1 {
		g = 1
	}
	return int(g)
}

const uvmBlock = 256

// launchN launches kernel over n threads (block size 256).
func launchN(s Session, kernel string, n int64, args ...any) error {
	refs := make([]core.ArgRef, 0, len(args))
	for _, a := range args {
		switch v := a.(type) {
		case dag.ArrayID:
			refs = append(refs, arr(v))
		case int:
			refs = append(refs, num(float64(v)))
		case int64:
			refs = append(refs, num(float64(v)))
		case float64:
			refs = append(refs, num(v))
		default:
			return fmt.Errorf("launchN: bad arg %T", a)
		}
	}
	return s.Launch(kernel, grid1d(n, uvmBlock), uvmBlock, refs...)
}

// ---- streaming: stream triad ----

const triadSrc = `
extern "C" __global__ void triad3(float *a, const float *b, const float *c, float s, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        a[i] = b[i] + s * c[i];
    }
}`

const triadSig = "pointer float, const pointer float, const pointer float, float, sint32"

// Triad is the STREAM triad: a = b + s*c over independent partitions.
// Pure sequential bandwidth — the workload whose oversubscription cliff
// the stride prefetcher flattens hardest.
func Triad() *Workload {
	return &Workload{
		Name:        "triad",
		Description: "STREAM triad a=b+s*c (UVMBench streaming)",
		Build: func(s Session, p Params) error {
			blocks := p.blocks(4)
			iters := p.iterations(4)
			per := int64(p.Footprint) / int64(3*blocks) / 4
			if per < 1 {
				return fmt.Errorf("triad: footprint %v too small for %d blocks", p.Footprint, blocks)
			}
			if err := buildAll(s,
				kernelSrc{uvmGenFSrc, uvmGenFSig},
				kernelSrc{triadSrc, triadSig}); err != nil {
				return err
			}
			as := make([]dag.ArrayID, blocks)
			bs := make([]dag.ArrayID, blocks)
			cs := make([]dag.ArrayID, blocks)
			for b := 0; b < blocks; b++ {
				var err error
				if as[b], err = s.NewArray(memmodel.Float32, per); err != nil {
					return err
				}
				if bs[b], err = s.NewArray(memmodel.Float32, per); err != nil {
					return err
				}
				if cs[b], err = s.NewArray(memmodel.Float32, per); err != nil {
					return err
				}
			}
			for b := 0; b < blocks; b++ {
				if err := launchN(s, "uvm_genf", per, bs[b], 3, b, 251, 0.5, per); err != nil {
					return err
				}
			}
			for b := 0; b < blocks; b++ {
				if err := launchN(s, "uvm_genf", per, cs[b], 7, b+1, 127, 0.25, per); err != nil {
					return err
				}
			}
			for b := 0; b < blocks; b++ {
				for it := 0; it < iters; it++ {
					if err := launchN(s, "triad3", per, as[b], bs[b], cs[b], 2.0, per); err != nil {
						return err
					}
				}
				if err := s.HostRead(as[b]); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// ---- streaming: 2-D 5-point stencil ----

const stencil5Src = `
extern "C" __global__ void stencil5(float *out, const float *in, int w, int h) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int n = w * h;
    if (i < n) {
        int x = i % w;
        int y = i / w;
        float acc = in[i];
        if (x > 0) { acc += in[i - 1]; }
        if (x < w - 1) { acc += in[i + 1]; }
        if (y > 0) { acc += in[i - w]; }
        if (y < h - 1) { acc += in[i + w]; }
        out[i] = 0.2 * acc;
    }
}`

const stencil5Sig = "pointer float, const pointer float, sint32, sint32"

// Stencil2D iterates a 5-point Jacobi stencil over a 2-D plate,
// ping-ponging between two buffers per partition.
func Stencil2D() *Workload {
	const width = int64(1024)
	return &Workload{
		Name:        "stencil2d",
		Description: "2-D 5-point Jacobi stencil, ping-pong buffers (UVMBench streaming)",
		Build: func(s Session, p Params) error {
			blocks := p.blocks(4)
			iters := p.iterations(4)
			per := int64(p.Footprint) / int64(2*blocks) / 4
			w := width
			if per < 2*w {
				w = 16 // keep tiny test footprints 2-D
			}
			h := per / w
			if h < 2 {
				return fmt.Errorf("stencil2d: footprint %v too small for %d blocks", p.Footprint, blocks)
			}
			n := w * h
			if err := buildAll(s,
				kernelSrc{uvmGenFSrc, uvmGenFSig},
				kernelSrc{stencil5Src, stencil5Sig}); err != nil {
				return err
			}
			cur := make([]dag.ArrayID, blocks)
			nxt := make([]dag.ArrayID, blocks)
			for b := 0; b < blocks; b++ {
				var err error
				if cur[b], err = s.NewArray(memmodel.Float32, n); err != nil {
					return err
				}
				if nxt[b], err = s.NewArray(memmodel.Float32, n); err != nil {
					return err
				}
			}
			for b := 0; b < blocks; b++ {
				if err := launchN(s, "uvm_genf", n, cur[b], 13, b, 255, 1.0, n); err != nil {
					return err
				}
			}
			for b := 0; b < blocks; b++ {
				c, x := cur[b], nxt[b]
				for it := 0; it < iters; it++ {
					if err := launchN(s, "stencil5", n, x, c, w, h); err != nil {
						return err
					}
					c, x = x, c
				}
				if err := s.HostRead(c); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// ---- linear algebra: SpMV over CSR ----

const spmvRowsSrc = `
extern "C" __global__ void spmv_rows(float *y, const int *rowptr, const int *colidx, const float *vals, const float *x, int rows) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < rows) {
        float sum = 0.0;
        int e0 = rowptr[i];
        int e1 = rowptr[i + 1];
        for (int j = e0; j < e1; j++) {
            sum += vals[j] * x[colidx[j]];
        }
        y[i] = sum;
    }
}`

const spmvRowsSig = "pointer float, const pointer int, const pointer int, const pointer float, const pointer float, sint32"

// spmvDegree is the fixed row degree of the synthetic CSR matrices.
const spmvDegree = 8

// SpMV is a row-partitioned sparse matrix-vector product over CSR: each
// row block owns its rowptr/colidx/vals and gathers the shared dense x
// through data-dependent column indices — the Random-pattern access the
// static analyzer cannot see past, so prefetch policies must learn from
// the online fault history.
func SpMV() *Workload {
	return &Workload{
		Name:        "spmv",
		Description: "CSR sparse matrix-vector product, indexed gather (UVMBench linear algebra)",
		Build: func(s Session, p Params) error {
			blocks := p.blocks(4)
			iters := p.iterations(4)
			// Footprint per column: deg*(col+val) + y + rowptr + x share.
			cols := int64(p.Footprint) / int64(spmvDegree*8+12)
			rowsB := cols / int64(blocks)
			if rowsB < 1 {
				return fmt.Errorf("spmv: footprint %v too small for %d blocks", p.Footprint, blocks)
			}
			cols = rowsB * int64(blocks)
			if err := buildAll(s,
				kernelSrc{uvmGenFSrc, uvmGenFSig},
				kernelSrc{csrRowGenSrc, csrRowGenSig},
				kernelSrc{csrColGenSrc, csrColGenSig},
				kernelSrc{spmvRowsSrc, spmvRowsSig}); err != nil {
				return err
			}
			x, err := s.NewArray(memmodel.Float32, cols)
			if err != nil {
				return err
			}
			if err := launchN(s, "uvm_genf", cols, x, 5, 1, 64, 0.125, cols); err != nil {
				return err
			}
			edges := rowsB * spmvDegree
			rowptr := make([]dag.ArrayID, blocks)
			colidx := make([]dag.ArrayID, blocks)
			vals := make([]dag.ArrayID, blocks)
			ys := make([]dag.ArrayID, blocks)
			for b := 0; b < blocks; b++ {
				var err error
				if rowptr[b], err = s.NewArray(memmodel.Int32, rowsB+1); err != nil {
					return err
				}
				if colidx[b], err = s.NewArray(memmodel.Int32, edges); err != nil {
					return err
				}
				if vals[b], err = s.NewArray(memmodel.Float32, edges); err != nil {
					return err
				}
				if ys[b], err = s.NewArray(memmodel.Float32, rowsB); err != nil {
					return err
				}
			}
			for b := 0; b < blocks; b++ {
				if err := launchN(s, "csr_rowgen", rowsB+1, rowptr[b], spmvDegree, rowsB); err != nil {
					return err
				}
			}
			for b := 0; b < blocks; b++ {
				if err := launchN(s, "csr_colgen", edges, colidx[b], spmvDegree, cols, b, edges); err != nil {
					return err
				}
			}
			for b := 0; b < blocks; b++ {
				if err := launchN(s, "uvm_genf", edges, vals[b], 11, b, 32, 0.0625, edges); err != nil {
					return err
				}
			}
			for b := 0; b < blocks; b++ {
				for it := 0; it < iters; it++ {
					if err := launchN(s, "spmv_rows", rowsB, ys[b], rowptr[b], colidx[b], vals[b], x, rowsB); err != nil {
						return err
					}
				}
				if err := s.HostRead(ys[b]); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// ---- graph: BFS ----

const bfsInitSrc = `
extern "C" __global__ void bfs_init(int *dist, int src, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        if (i == src) {
            dist[i] = 0;
        } else {
            dist[i] = -1;
        }
    }
}`

const bfsInitSig = "pointer int, sint32, sint32"

// bfs_step relaxes one frontier level: threads whose vertex sits on the
// current frontier (dist == depth) scatter depth+1 into unvisited
// neighbors. The writes land at *loaded* indices (dist[v]), so the race
// analysis refuses to parallelize the grid and the kernel runs serial —
// the correct, deterministic fallback for an indirect scatter.
const bfsStepSrc = `
extern "C" __global__ void bfs_step(int *dist, int *frontier, const int *rowptr, const int *colidx, int depth, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        if (dist[i] == depth) {
            int e0 = rowptr[i];
            int e1 = rowptr[i + 1];
            for (int j = e0; j < e1; j++) {
                int v = colidx[j];
                if (dist[v] < 0) {
                    dist[v] = depth + 1;
                    frontier[depth] = frontier[depth] + 1;
                }
            }
        }
    }
}`

const bfsStepSig = "pointer int, pointer int, const pointer int, const pointer int, sint32, sint32"

// bfsDegree is the fixed out-degree of the synthetic graphs.
const bfsDegree = 8

// BFS is level-synchronous breadth-first search over fixed-degree CSR
// graphs, one independent graph per partition (batched multi-source
// BFS). The frontier scatter is the suite's serial-fallback showcase.
func BFS() *Workload {
	return &Workload{
		Name:        "bfs",
		Description: "level-synchronous BFS, CSR frontier scatter (UVMBench graph)",
		Build: func(s Session, p Params) error {
			blocks := p.blocks(4)
			levels := p.iterations(8)
			// Per vertex: dist + rowptr + deg columns + frontier share.
			nB := int64(p.Footprint) / int64(blocks) / int64(bfsDegree*4+12)
			if nB < 2 {
				return fmt.Errorf("bfs: footprint %v too small for %d blocks", p.Footprint, blocks)
			}
			if err := buildAll(s,
				kernelSrc{uvmGenISrc, uvmGenISig},
				kernelSrc{csrRowGenSrc, csrRowGenSig},
				kernelSrc{csrColGenSrc, csrColGenSig},
				kernelSrc{bfsInitSrc, bfsInitSig},
				kernelSrc{bfsStepSrc, bfsStepSig}); err != nil {
				return err
			}
			edges := nB * bfsDegree
			rowptr := make([]dag.ArrayID, blocks)
			colidx := make([]dag.ArrayID, blocks)
			dist := make([]dag.ArrayID, blocks)
			frontier := make([]dag.ArrayID, blocks)
			for b := 0; b < blocks; b++ {
				var err error
				if rowptr[b], err = s.NewArray(memmodel.Int32, nB+1); err != nil {
					return err
				}
				if colidx[b], err = s.NewArray(memmodel.Int32, edges); err != nil {
					return err
				}
				if dist[b], err = s.NewArray(memmodel.Int32, nB); err != nil {
					return err
				}
				if frontier[b], err = s.NewArray(memmodel.Int32, int64(levels)); err != nil {
					return err
				}
			}
			for b := 0; b < blocks; b++ {
				if err := launchN(s, "csr_rowgen", nB+1, rowptr[b], bfsDegree, nB); err != nil {
					return err
				}
			}
			for b := 0; b < blocks; b++ {
				if err := launchN(s, "csr_colgen", edges, colidx[b], bfsDegree, nB, b, edges); err != nil {
					return err
				}
			}
			for b := 0; b < blocks; b++ {
				if err := launchN(s, "uvm_geni", int64(levels), frontier[b], 0, 0, 1, levels); err != nil {
					return err
				}
			}
			for b := 0; b < blocks; b++ {
				if err := launchN(s, "bfs_init", nB, dist[b], 0, nB); err != nil {
					return err
				}
			}
			for b := 0; b < blocks; b++ {
				for depth := 0; depth < levels; depth++ {
					if err := launchN(s, "bfs_step", nB, dist[b], frontier[b], rowptr[b], colidx[b], depth, nB); err != nil {
						return err
					}
				}
				if err := s.HostRead(dist[b]); err != nil {
					return err
				}
				if err := s.HostRead(frontier[b]); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// ---- graph: PageRank ----

// pr_gather pulls rank mass along in-edges: a pure gather through the
// CSR column indices (Random pattern), race-free because every thread
// writes only next[i] at its own global id — the parallel counterpoint
// to bfs_step's serial scatter.
const prGatherSrc = `
extern "C" __global__ void pr_gather(float *next, const int *rowptr, const int *colidx, const float *rank, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        float sum = 0.0;
        int e0 = rowptr[i];
        int e1 = rowptr[i + 1];
        for (int j = e0; j < e1; j++) {
            sum += rank[colidx[j]];
        }
        next[i] = sum;
    }
}`

const prGatherSig = "pointer float, const pointer int, const pointer int, const pointer float, sint32"

const prApplySrc = `
extern "C" __global__ void pr_apply(float *rank, const float *next, float damp, float base, float invdeg, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        rank[i] = base + damp * next[i] * invdeg;
    }
}`

const prApplySig = "pointer float, const pointer float, float, float, float, sint32"

// prDegree is the fixed (in- and out-) degree of the rank graphs.
const prDegree = 8

// PageRank is pull-style PageRank over a fixed-degree graph partitioned
// into row blocks: each iteration reassembles the global rank vector
// from its blocks (gather tree, as in CG), gathers along in-edges, and
// applies the damped update per block.
func PageRank() *Workload {
	return &Workload{
		Name:        "pagerank",
		Description: "pull-based PageRank, CSR indexed gather (UVMBench graph)",
		Build: func(s Session, p Params) error {
			blocks := p.blocks(4)
			iters := p.iterations(4)
			// Per vertex: rank + next + rowptr + deg columns (+ gather
			// temporaries of about one rank vector).
			nB := int64(p.Footprint) / int64(blocks) / int64(prDegree*4+16)
			if nB < 1 {
				return fmt.Errorf("pagerank: footprint %v too small for %d blocks", p.Footprint, blocks)
			}
			n := nB * int64(blocks)
			if err := buildAll(s,
				kernelSrc{uvmGenFSrc, uvmGenFSig},
				kernelSrc{csrRowGenSrc, csrRowGenSig},
				kernelSrc{csrColGenSrc, csrColGenSig},
				kernelSrc{prGatherSrc, prGatherSig},
				kernelSrc{prApplySrc, prApplySig}); err != nil {
				return err
			}
			rank := make([]dag.ArrayID, blocks)
			next := make([]dag.ArrayID, blocks)
			rowptr := make([]dag.ArrayID, blocks)
			colidx := make([]dag.ArrayID, blocks)
			lens := make([]int64, blocks)
			edges := nB * prDegree
			for b := 0; b < blocks; b++ {
				lens[b] = nB
				var err error
				if rank[b], err = s.NewArray(memmodel.Float32, nB); err != nil {
					return err
				}
				if next[b], err = s.NewArray(memmodel.Float32, nB); err != nil {
					return err
				}
				if rowptr[b], err = s.NewArray(memmodel.Int32, nB+1); err != nil {
					return err
				}
				if colidx[b], err = s.NewArray(memmodel.Int32, edges); err != nil {
					return err
				}
			}
			for b := 0; b < blocks; b++ {
				// rank starts uniform 1/n: (i*0+1)%2 * (1/n).
				if err := launchN(s, "uvm_genf", nB, rank[b], 0, 1, 2, 1.0/float64(n), nB); err != nil {
					return err
				}
			}
			for b := 0; b < blocks; b++ {
				if err := launchN(s, "csr_rowgen", nB+1, rowptr[b], prDegree, nB); err != nil {
					return err
				}
			}
			for b := 0; b < blocks; b++ {
				if err := launchN(s, "csr_colgen", edges, colidx[b], prDegree, n, b, edges); err != nil {
					return err
				}
			}
			gather, err := newGatherTree(s, rank, lens)
			if err != nil {
				return err
			}
			const damp = 0.85
			base := (1 - damp) / float64(n)
			for it := 0; it < iters; it++ {
				if err := gather.run(s); err != nil {
					return err
				}
				for b := 0; b < blocks; b++ {
					if err := launchN(s, "pr_gather", nB, next[b], rowptr[b], colidx[b], gather.root, nB); err != nil {
						return err
					}
				}
				for b := 0; b < blocks; b++ {
					if err := launchN(s, "pr_apply", nB, rank[b], next[b], damp, base, 1.0/float64(prDegree), nB); err != nil {
						return err
					}
				}
			}
			for b := 0; b < blocks; b++ {
				if err := s.HostRead(rank[b]); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// ---- ML: k-means ----

const kmAssignSrc = `
extern "C" __global__ void km_assign(int *assign, const float *x, const float *cent, int k, int d, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        int best = 0;
        float bestd = 0.0;
        for (int c = 0; c < k; c++) {
            float dist = 0.0;
            for (int j = 0; j < d; j++) {
                float diff = x[i * d + j] - cent[c * d + j];
                dist += diff * diff;
            }
            if (c == 0 || dist < bestd) {
                bestd = dist;
                best = c;
            }
        }
        assign[i] = best;
    }
}`

const kmAssignSig = "pointer int, const pointer float, const pointer float, sint32, sint32, sint32"

// km_accum scatters every point into its cluster's running sum through
// float atomicAdd: accumulation order changes float results, so the
// engine serializes the kernel (deterministic) rather than miscompile.
const kmAccumSrc = `
extern "C" __global__ void km_accum(float *sums, int *counts, const float *x, const int *assign, int d, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        int c = assign[i];
        for (int j = 0; j < d; j++) {
            atomicAdd(&sums[c * d + j], x[i * d + j]);
        }
        atomicAdd(&counts[c], 1);
    }
}`

const kmAccumSig = "pointer float, pointer int, const pointer float, const pointer int, sint32, sint32"

const kmRecenterSrc = `
extern "C" __global__ void km_recenter(float *cent, const float *sums, const int *counts, int d, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        int c = i / d;
        float cnt = (float)counts[c];
        if (cnt > 0.0) {
            cent[i] = sums[i] / cnt;
        }
    }
}`

const kmRecenterSig = "pointer float, const pointer float, const pointer int, sint32, sint32"

// kmK and kmDims shape the k-means problem.
const (
	kmK    = 8
	kmDims = 16
)

// KMeans is Lloyd's algorithm over row-partitioned points with
// per-partition centroid replicas: assign (parallel), accumulate
// (serial — float atomic scatter), recenter (parallel), iterated.
func KMeans() *Workload {
	return &Workload{
		Name:        "kmeans",
		Description: "k-means clustering, atomic scatter accumulate (UVMBench ML)",
		Build: func(s Session, p Params) error {
			blocks := p.blocks(4)
			iters := p.iterations(3)
			nB := int64(p.Footprint) / int64(blocks) / int64(kmDims*4+4)
			if nB < 1 {
				return fmt.Errorf("kmeans: footprint %v too small for %d blocks", p.Footprint, blocks)
			}
			if err := buildAll(s,
				kernelSrc{uvmGenFSrc, uvmGenFSig},
				kernelSrc{uvmGenISrc, uvmGenISig},
				kernelSrc{kmAssignSrc, kmAssignSig},
				kernelSrc{kmAccumSrc, kmAccumSig},
				kernelSrc{kmRecenterSrc, kmRecenterSig}); err != nil {
				return err
			}
			const kd = int64(kmK * kmDims)
			xs := make([]dag.ArrayID, blocks)
			cent := make([]dag.ArrayID, blocks)
			sums := make([]dag.ArrayID, blocks)
			counts := make([]dag.ArrayID, blocks)
			assign := make([]dag.ArrayID, blocks)
			for b := 0; b < blocks; b++ {
				var err error
				if xs[b], err = s.NewArray(memmodel.Float32, nB*kmDims); err != nil {
					return err
				}
				if cent[b], err = s.NewArray(memmodel.Float32, kd); err != nil {
					return err
				}
				if sums[b], err = s.NewArray(memmodel.Float32, kd); err != nil {
					return err
				}
				if counts[b], err = s.NewArray(memmodel.Int32, kmK); err != nil {
					return err
				}
				if assign[b], err = s.NewArray(memmodel.Int32, nB); err != nil {
					return err
				}
			}
			for b := 0; b < blocks; b++ {
				if err := launchN(s, "uvm_genf", nB*kmDims, xs[b], 29, b*3+1, 101, 0.01, nB*kmDims); err != nil {
					return err
				}
			}
			for b := 0; b < blocks; b++ {
				if err := launchN(s, "uvm_genf", kd, cent[b], 17, b, 101, 0.01, kd); err != nil {
					return err
				}
			}
			for b := 0; b < blocks; b++ {
				for it := 0; it < iters; it++ {
					if err := launchN(s, "km_assign", nB, assign[b], xs[b], cent[b], kmK, kmDims, nB); err != nil {
						return err
					}
					if err := launchN(s, "uvm_genf", kd, sums[b], 0, 0, 1, 0.0, kd); err != nil {
						return err
					}
					if err := launchN(s, "uvm_geni", kmK, counts[b], 0, 0, 1, kmK); err != nil {
						return err
					}
					if err := launchN(s, "km_accum", nB, sums[b], counts[b], xs[b], assign[b], kmDims, nB); err != nil {
						return err
					}
					if err := launchN(s, "km_recenter", kd, cent[b], sums[b], counts[b], kmDims, kd); err != nil {
						return err
					}
				}
				if err := s.HostRead(cent[b]); err != nil {
					return err
				}
				if err := s.HostRead(assign[b]); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// ---- ML: logistic regression ----

const lrFwdSrc = `
extern "C" __global__ void lr_fwd(float *p, const float *x, const float *w, int d, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        float z = 0.0;
        for (int j = 0; j < d; j++) {
            z += x[i * d + j] * w[j];
        }
        p[i] = 1.0 / (1.0 + expf(-z));
    }
}`

const lrFwdSig = "pointer float, const pointer float, const pointer float, sint32, sint32"

// lr_grad accumulates the batch gradient through float atomicAdd — like
// km_accum, proven order-sensitive and executed serially.
const lrGradSrc = `
extern "C" __global__ void lr_grad(float *grad, const float *x, const float *p, const float *y, int d, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        float e = p[i] - y[i];
        for (int j = 0; j < d; j++) {
            atomicAdd(&grad[j], e * x[i * d + j]);
        }
    }
}`

const lrGradSig = "pointer float, const pointer float, const pointer float, const pointer float, sint32, sint32"

const lrStepSrc = `
extern "C" __global__ void lr_step(float *w, const float *grad, float lr, int d) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < d) {
        w[i] = w[i] - lr * grad[i];
    }
}`

const lrStepSig = "pointer float, const pointer float, float, sint32"

// lrDims is the logistic-regression feature width.
const lrDims = 32

// LogReg is batch-gradient logistic regression over row-partitioned
// examples with per-partition weight replicas: forward (parallel),
// gradient (serial — float atomic accumulate), step (parallel).
func LogReg() *Workload {
	return &Workload{
		Name:        "logreg",
		Description: "logistic regression, batch gradient descent (UVMBench ML)",
		Build: func(s Session, p Params) error {
			blocks := p.blocks(4)
			epochs := p.iterations(3)
			nB := int64(p.Footprint) / int64(blocks) / int64(lrDims*4+8)
			if nB < 1 {
				return fmt.Errorf("logreg: footprint %v too small for %d blocks", p.Footprint, blocks)
			}
			if err := buildAll(s,
				kernelSrc{uvmGenFSrc, uvmGenFSig},
				kernelSrc{lrFwdSrc, lrFwdSig},
				kernelSrc{lrGradSrc, lrGradSig},
				kernelSrc{lrStepSrc, lrStepSig}); err != nil {
				return err
			}
			xs := make([]dag.ArrayID, blocks)
			ys := make([]dag.ArrayID, blocks)
			ws := make([]dag.ArrayID, blocks)
			prs := make([]dag.ArrayID, blocks)
			grads := make([]dag.ArrayID, blocks)
			for b := 0; b < blocks; b++ {
				var err error
				if xs[b], err = s.NewArray(memmodel.Float32, nB*lrDims); err != nil {
					return err
				}
				if ys[b], err = s.NewArray(memmodel.Float32, nB); err != nil {
					return err
				}
				if ws[b], err = s.NewArray(memmodel.Float32, lrDims); err != nil {
					return err
				}
				if prs[b], err = s.NewArray(memmodel.Float32, nB); err != nil {
					return err
				}
				if grads[b], err = s.NewArray(memmodel.Float32, lrDims); err != nil {
					return err
				}
			}
			for b := 0; b < blocks; b++ {
				if err := launchN(s, "uvm_genf", nB*lrDims, xs[b], 31, b*7+3, 97, 0.01, nB*lrDims); err != nil {
					return err
				}
			}
			for b := 0; b < blocks; b++ {
				if err := launchN(s, "uvm_genf", nB, ys[b], 1, b, 2, 1.0, nB); err != nil {
					return err
				}
			}
			for b := 0; b < blocks; b++ {
				if err := launchN(s, "uvm_genf", lrDims, ws[b], 0, 0, 1, 0.0, lrDims); err != nil {
					return err
				}
			}
			lr := 0.1 / float64(nB)
			for b := 0; b < blocks; b++ {
				for e := 0; e < epochs; e++ {
					if err := launchN(s, "lr_fwd", nB, prs[b], xs[b], ws[b], lrDims, nB); err != nil {
						return err
					}
					if err := launchN(s, "uvm_genf", lrDims, grads[b], 0, 0, 1, 0.0, lrDims); err != nil {
						return err
					}
					if err := launchN(s, "lr_grad", nB, grads[b], xs[b], prs[b], ys[b], lrDims, nB); err != nil {
						return err
					}
					if err := launchN(s, "lr_step", lrDims, ws[b], grads[b], lr, lrDims); err != nil {
						return err
					}
				}
				if err := s.HostRead(ws[b]); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// ---- ML: CNN convolution layer ----

const conv3x3Src = `
extern "C" __global__ void conv3x3(float *out, const float *in, const float *wgt, float bias, int w, int h, int f) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int hw = w * h;
    int n = hw * f;
    if (i < n) {
        int ff = i / hw;
        int p = i % hw;
        int x = p % w;
        int y = p / w;
        float acc = bias;
        for (int ky = 0; ky < 3; ky++) {
            for (int kx = 0; kx < 3; kx++) {
                int xx = x + kx - 1;
                int yy = y + ky - 1;
                if (xx >= 0 && xx < w && yy >= 0 && yy < h) {
                    acc += in[yy * w + xx] * wgt[ff * 9 + ky * 3 + kx];
                }
            }
        }
        if (acc < 0.0) { acc = 0.0; }
        out[i] = acc;
    }
}`

const conv3x3Sig = "pointer float, const pointer float, const pointer float, float, sint32, sint32, sint32"

const convCombineSrc = `
extern "C" __global__ void conv_combine(float *img, const float *out, int hw, int f) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < hw) {
        float acc = 0.0;
        for (int c = 0; c < f; c++) {
            acc += out[c * hw + i];
        }
        img[i] = acc / (float)f;
    }
}`

const convCombineSig = "pointer float, const pointer float, sint32, sint32"

// convFilters is the conv layer's output-channel count.
const convFilters = 8

// Conv is a CNN convolution layer: per partition, a 3x3 multi-filter
// convolution with fused bias+ReLU, channel-averaged back into the
// image and iterated — the deep-learning layer shape of UVMBench.
func Conv() *Workload {
	const width = int64(512)
	return &Workload{
		Name:        "conv",
		Description: "CNN 3x3 conv layer, multi-filter + fused ReLU (UVMBench ML)",
		Build: func(s Session, p Params) error {
			blocks := p.blocks(4)
			layers := p.iterations(2)
			// Per pixel: image + f output planes + combined image.
			hw := int64(p.Footprint) / int64(blocks) / int64((convFilters+2)*4)
			w := width
			if hw < 2*w {
				w = 8
			}
			h := hw / w
			if h < 2 {
				return fmt.Errorf("conv: footprint %v too small for %d blocks", p.Footprint, blocks)
			}
			hw = w * h
			n := hw * convFilters
			if err := buildAll(s,
				kernelSrc{uvmGenFSrc, uvmGenFSig},
				kernelSrc{conv3x3Src, conv3x3Sig},
				kernelSrc{convCombineSrc, convCombineSig}); err != nil {
				return err
			}
			imgs := make([]dag.ArrayID, blocks)
			outs := make([]dag.ArrayID, blocks)
			wgts := make([]dag.ArrayID, blocks)
			for b := 0; b < blocks; b++ {
				var err error
				if imgs[b], err = s.NewArray(memmodel.Float32, hw); err != nil {
					return err
				}
				if outs[b], err = s.NewArray(memmodel.Float32, n); err != nil {
					return err
				}
				if wgts[b], err = s.NewArray(memmodel.Float32, convFilters*9); err != nil {
					return err
				}
			}
			for b := 0; b < blocks; b++ {
				if err := launchN(s, "uvm_genf", hw, imgs[b], 19, b, 255, 0.0625, hw); err != nil {
					return err
				}
			}
			for b := 0; b < blocks; b++ {
				if err := launchN(s, "uvm_genf", convFilters*9, wgts[b], 13, b+2, 37, 0.05, convFilters*9); err != nil {
					return err
				}
			}
			for b := 0; b < blocks; b++ {
				for l := 0; l < layers; l++ {
					if err := launchN(s, "conv3x3", n, outs[b], imgs[b], wgts[b], 0.01, w, h, convFilters); err != nil {
						return err
					}
					if err := launchN(s, "conv_combine", hw, imgs[b], outs[b], hw, convFilters); err != nil {
						return err
					}
				}
				if err := s.HostRead(imgs[b]); err != nil {
					return err
				}
			}
			return nil
		},
	}
}
