package workloads

import (
	"fmt"

	"grout/internal/memmodel"
)

// This file extends the paper's three-workload suite with two more members
// of the GrCUDA benchmark family the paper draws from (Parravicini et al.,
// IPDPS'21): an image-processing pipeline and a dense-network inference —
// additional coverage for the scheduler (deeper DAGs, stencil locality,
// layered reuse) beyond the paper's evaluation.

// ExtendedSuite returns the paper's suite plus the extension workloads.
func ExtendedSuite() map[string]*Workload {
	s := Suite()
	s["images"] = Images()
	s["deep"] = Deep()
	return s
}

// Images is a three-stage per-partition pipeline: blur (stencil), sharpen
// (second stencil on the blurred image) and an unsharp-mask combine back
// into the original — a diamond-shaped DAG per partition.
func Images() *Workload {
	return &Workload{
		Name:        "images",
		Description: "image pipeline: blur, sharpen, unsharp combine (extension)",
		Build: func(s Session, p Params) error {
			blocks := p.blocks(4)
			// Footprint across three images per partition.
			perArray := int64(p.Footprint) / int64(3*blocks) / 4
			if perArray < 2 {
				return fmt.Errorf("images: footprint %v too small for %d blocks", p.Footprint, blocks)
			}
			cnt := num(float64(perArray))
			for b := 0; b < blocks; b++ {
				img, err := s.NewArray(memmodel.Float32, perArray)
				if err != nil {
					return err
				}
				if buf := s.Buffer(img); buf != nil {
					for i := 0; i < buf.Len(); i++ {
						buf.Set(i, float64((i*7+b)%255))
					}
				}
				if err := s.HostWrite(img); err != nil {
					return err
				}
				blur, err := s.NewArray(memmodel.Float32, perArray)
				if err != nil {
					return err
				}
				sharp, err := s.NewArray(memmodel.Float32, perArray)
				if err != nil {
					return err
				}
				if err := s.Launch("stencil3", 1024, 256, arr(blur), arr(img), cnt); err != nil {
					return err
				}
				if err := s.Launch("stencil3", 1024, 256, arr(sharp), arr(blur), cnt); err != nil {
					return err
				}
				// Unsharp mask: img += 0.6 * (img - sharp) approximated
				// as two axpys through the blurred buffer.
				if err := s.Launch("axpy", 1024, 256, arr(img), arr(sharp), num(-0.6), cnt); err != nil {
					return err
				}
				if err := s.Launch("axpy", 1024, 256, arr(img), arr(blur), num(0.6), cnt); err != nil {
					return err
				}
				if err := s.HostRead(img); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// Deep is a three-layer dense-network inference over row-partitioned
// batches: per partition, gemv → bias+ReLU → gemv → bias+ReLU → gemv →
// softmax, with per-partition weight replicas (as in MLE).
func Deep() *Workload {
	const features = 2048
	return &Workload{
		Name:        "deep",
		Description: "3-layer dense network inference (extension)",
		Build: func(s Session, p Params) error {
			blocks := p.blocks(4)
			rowsPerBlock := int64(p.Footprint) / int64(blocks) / 4 / features
			if rowsPerBlock < 1 {
				return fmt.Errorf("deep: footprint %v too small for %d blocks", p.Footprint, blocks)
			}
			rows := num(float64(rowsPerBlock))
			feat := num(float64(features))
			for b := 0; b < blocks; b++ {
				X, err := s.NewArray(memmodel.Float32, rowsPerBlock*features)
				if err != nil {
					return err
				}
				if buf := s.Buffer(X); buf != nil {
					for i := 0; i < buf.Len(); i++ {
						buf.Set(i, float64((i+b)%9)/9)
					}
				}
				if err := s.HostWrite(X); err != nil {
					return err
				}
				// Per-partition weights and biases (layers 2-3 operate on
				// the rows-long activation vector).
				w1, err := s.NewArray(memmodel.Float32, features)
				if err != nil {
					return err
				}
				bias, err := s.NewArray(memmodel.Float32, 1)
				if err != nil {
					return err
				}
				if buf := s.Buffer(w1); buf != nil {
					buf.Fill(0.01)
				}
				if err := s.HostWrite(w1); err != nil {
					return err
				}
				if buf := s.Buffer(bias); buf != nil {
					buf.Fill(0.1)
				}
				if err := s.HostWrite(bias); err != nil {
					return err
				}
				h, err := s.NewArray(memmodel.Float32, rowsPerBlock)
				if err != nil {
					return err
				}
				h2, err := s.NewArray(memmodel.Float32, rowsPerBlock)
				if err != nil {
					return err
				}
				// Layer 1: scores over the feature matrix.
				if err := s.Launch("rowdot", 1024, 256, arr(h), arr(X), arr(w1), rows, feat); err != nil {
					return err
				}
				if err := s.Launch("bias_relu", 1024, 256, arr(h), arr(bias), rows); err != nil {
					return err
				}
				// Layers 2-3: transforms of the activation vector.
				if err := s.Launch("stencil3", 1024, 256, arr(h2), arr(h), rows); err != nil {
					return err
				}
				if err := s.Launch("bias_relu", 1024, 256, arr(h2), arr(bias), rows); err != nil {
					return err
				}
				if err := s.Launch("softmax", 1, 256, arr(h2), rows); err != nil {
					return err
				}
				if err := s.HostRead(h2); err != nil {
					return err
				}
			}
			return nil
		},
	}
}
