// Package workloads implements the paper's evaluation suite as CE graphs:
// Black–Scholes (Figure 1), and the three GrCUDA-suite workloads of
// Figure 5 — the Machine-Learning Ensemble (MLE), Conjugate Gradient (CG)
// and dense Matrix-Vector product (MV). Each workload is written once
// against the Session interface and runs unchanged on a single-node
// GrCUDA runtime (the baseline) or on a GrOUT controller (the scale-out
// system) — the code-portability property of paper Listing 2.
package workloads

import (
	"grout/internal/core"
	"grout/internal/dag"
	"grout/internal/grcuda"
	"grout/internal/memmodel"
	"grout/internal/sim"
)

// Session is the runtime surface a workload builds against.
type Session interface {
	// NewArray allocates a framework-managed array.
	NewArray(kind memmodel.ElemKind, n int64) (dag.ArrayID, error)
	// Launch submits a kernel CE.
	Launch(kernel string, grid, block int, args ...core.ArgRef) error
	// HostRead makes the array consistent on the host (consume results).
	HostRead(id dag.ArrayID) error
	// HostWrite marks the array as (re)initialized by host code.
	HostWrite(id dag.ArrayID) error
	// Buffer returns the host buffer backing an array in numeric mode,
	// or nil in cost-only mode.
	Buffer(id dag.ArrayID) BufferLike
	// Free releases a framework-managed array everywhere.
	Free(id dag.ArrayID) error
	// BuildKernel compiles a mini-CUDA kernel from source (paper
	// Listing 1's buildkernel) and returns its registered name for
	// Launch. Building an already-registered kernel is a cheap cache
	// hit on every backend.
	BuildKernel(src, signature string) (string, error)
	// Elapsed reports the workload makespan so far.
	Elapsed() sim.VirtualTime
}

// BufferLike is the subset of kernels.Buffer the workloads need for
// initialization and verification, kept as an interface so sessions can
// report "no buffer" with nil.
type BufferLike interface {
	Len() int
	At(i int) float64
	Set(i int, v float64)
	Fill(v float64)
}

// SingleNode adapts a grcuda.Runtime (the paper's baseline) to Session.
type SingleNode struct {
	RT *grcuda.Runtime
}

// NewArray implements Session.
func (s *SingleNode) NewArray(kind memmodel.ElemKind, n int64) (dag.ArrayID, error) {
	arr, err := s.RT.NewArray(kind, n)
	if err != nil {
		return 0, err
	}
	return arr.ID, nil
}

// Launch implements Session.
func (s *SingleNode) Launch(kernel string, grid, block int, args ...core.ArgRef) error {
	vals := make([]grcuda.Value, len(args))
	for i, a := range args {
		if a.IsArray {
			vals[i] = grcuda.ArrValue(s.RT.Array(a.Array))
		} else {
			vals[i] = grcuda.ScalarValue(a.Scalar)
		}
	}
	_, err := s.RT.Submit(grcuda.Invocation{Kernel: kernel, Grid: grid, Block: block, Args: vals}, 0)
	return err
}

// HostRead implements Session.
func (s *SingleNode) HostRead(id dag.ArrayID) error {
	_, err := s.RT.HostRead(id, 0)
	return err
}

// HostWrite implements Session.
func (s *SingleNode) HostWrite(id dag.ArrayID) error {
	_, err := s.RT.HostWrite(id, 0)
	return err
}

// Buffer implements Session.
func (s *SingleNode) Buffer(id dag.ArrayID) BufferLike {
	arr := s.RT.Array(id)
	if arr == nil || arr.Buf == nil {
		return nil
	}
	return arr.Buf
}

// Free implements Session.
func (s *SingleNode) Free(id dag.ArrayID) error { return s.RT.FreeArray(id) }

// BuildKernel implements Session.
func (s *SingleNode) BuildKernel(src, signature string) (string, error) {
	def, err := s.RT.BuildKernel(src, signature)
	if err != nil {
		return "", err
	}
	return def.Name, nil
}

// Elapsed implements Session.
func (s *SingleNode) Elapsed() sim.VirtualTime { return s.RT.Elapsed() }

// Grout adapts a core.Controller (the scale-out system) to Session.
type Grout struct {
	Ctl *core.Controller
}

// NewArray implements Session.
func (g *Grout) NewArray(kind memmodel.ElemKind, n int64) (dag.ArrayID, error) {
	arr, err := g.Ctl.NewArray(kind, n)
	if err != nil {
		return 0, err
	}
	return arr.ID, nil
}

// Launch implements Session.
func (g *Grout) Launch(kernel string, grid, block int, args ...core.ArgRef) error {
	_, err := g.Ctl.Launch(core.Invocation{Kernel: kernel, Grid: grid, Block: block, Args: args})
	return err
}

// HostRead implements Session.
func (g *Grout) HostRead(id dag.ArrayID) error {
	_, err := g.Ctl.HostRead(id)
	return err
}

// HostWrite implements Session.
func (g *Grout) HostWrite(id dag.ArrayID) error {
	_, err := g.Ctl.HostWrite(id)
	return err
}

// Buffer implements Session.
func (g *Grout) Buffer(id dag.ArrayID) BufferLike {
	arr := g.Ctl.Array(id)
	if arr == nil || arr.Buf == nil {
		return nil
	}
	return arr.Buf
}

// Free implements Session.
func (g *Grout) Free(id dag.ArrayID) error { return g.Ctl.FreeArray(id) }

// BuildKernel implements Session: the controller compiles once and
// broadcasts the kernel to every worker.
func (g *Grout) BuildKernel(src, signature string) (string, error) {
	def, err := g.Ctl.BuildKernel(src, signature)
	if err != nil {
		return "", err
	}
	return def.Name, nil
}

// Elapsed implements Session.
func (g *Grout) Elapsed() sim.VirtualTime { return g.Ctl.Elapsed() }

// AsyncGrout adapts a core.Controller to Session through Submit instead
// of the blocking Launch, so consecutive launches actually reach the
// controller's pipeline and lookahead optimizer window as a stream — the
// Grout adapter's Launch-per-CE synchronization would cap every window
// at one entry. Dispatch failures behave like a poisoned stream: the
// first one is sticky and reported by every later call and by Wait.
// Not safe for concurrent use, like the sessions it adapts.
type AsyncGrout struct {
	Ctl *core.Controller

	pending []*core.Pending
	err     error
}

// settle reaps resolved pendings without blocking; sync points call
// reap(true) to wait them all out. The first error sticks.
func (g *AsyncGrout) reap(wait bool) error {
	if wait {
		// Flush parked window entries first or their Pendings never
		// resolve; Drain also surfaces pipeline errors.
		if err := g.Ctl.Drain(); err != nil && g.err == nil {
			g.err = err
		}
		for _, p := range g.pending {
			if _, err := p.Wait(); err != nil && g.err == nil {
				g.err = err
			}
		}
		g.pending = g.pending[:0]
	}
	return g.err
}

// Wait blocks until every submitted CE has dispatched and reports the
// session's sticky error, if any.
func (g *AsyncGrout) Wait() error { return g.reap(true) }

// NewArray implements Session.
func (g *AsyncGrout) NewArray(kind memmodel.ElemKind, n int64) (dag.ArrayID, error) {
	if err := g.err; err != nil {
		return 0, err
	}
	arr, err := g.Ctl.NewArray(kind, n)
	if err != nil {
		return 0, err
	}
	return arr.ID, nil
}

// Launch implements Session: submission only; completion is observed at
// the next synchronization point.
func (g *AsyncGrout) Launch(kernel string, grid, block int, args ...core.ArgRef) error {
	if err := g.err; err != nil {
		return err
	}
	p, err := g.Ctl.Submit(core.Invocation{Kernel: kernel, Grid: grid, Block: block, Args: args})
	if err != nil {
		g.err = err
		return err
	}
	g.pending = append(g.pending, p)
	return nil
}

// HostRead implements Session; it is a synchronization point.
func (g *AsyncGrout) HostRead(id dag.ArrayID) error {
	if err := g.reap(true); err != nil {
		return err
	}
	_, err := g.Ctl.HostRead(id)
	return err
}

// HostWrite implements Session; it is a synchronization point.
func (g *AsyncGrout) HostWrite(id dag.ArrayID) error {
	if err := g.reap(true); err != nil {
		return err
	}
	_, err := g.Ctl.HostWrite(id)
	return err
}

// Buffer implements Session.
func (g *AsyncGrout) Buffer(id dag.ArrayID) BufferLike {
	arr := g.Ctl.Array(id)
	if arr == nil || arr.Buf == nil {
		return nil
	}
	return arr.Buf
}

// BuildKernel implements Session; it is a synchronization point (the
// controller drains its pipeline before registering, and the sticky
// error must win over any compile error).
func (g *AsyncGrout) BuildKernel(src, signature string) (string, error) {
	if err := g.reap(true); err != nil {
		return "", err
	}
	def, err := g.Ctl.BuildKernel(src, signature)
	if err != nil {
		return "", err
	}
	return def.Name, nil
}

// Free implements Session; it is a synchronization point.
func (g *AsyncGrout) Free(id dag.ArrayID) error {
	if err := g.reap(true); err != nil {
		return err
	}
	return g.Ctl.FreeArray(id)
}

// Elapsed implements Session; it is a synchronization point (the
// controller drains to time-stamp the makespan).
func (g *AsyncGrout) Elapsed() sim.VirtualTime {
	if g.reap(true) != nil {
		return 0
	}
	return g.Ctl.Elapsed()
}
