package workloads

// Tests for the UVMBench-style suite: static race-analysis verdicts for
// every kernel (which engine path each takes), cost-only DAG builds on
// both backends, and numeric correctness against host-side references
// that mirror the engine's arithmetic (float64 compute, float32
// truncation at buffer stores, serial thread order for the kernels the
// analysis refuses to parallelize).

import (
	"math"
	"testing"

	"grout/internal/cluster"
	"grout/internal/dag"
	"grout/internal/memmodel"
	"grout/internal/minicuda"
	"grout/internal/policy"
)

// gateParams sizes one workload for the differential gates: big enough
// to exercise multi-partition scheduling, small enough that running the
// whole suite across every policy combo under -race stays fast. The
// bit-identical properties the gates prove are footprint-independent.
func gateParams(name string) Params {
	foot := 4 * memmodel.MiB
	switch name {
	case "triad", "stencil2d":
		foot = memmodel.MiB
	case "spmv", "pagerank", "conv":
		foot = 512 * memmodel.KiB
	case "bfs", "kmeans", "logreg":
		foot = 256 * memmodel.KiB
	}
	return Params{Footprint: foot, Blocks: 2}
}

func TestUVMSuiteComplete(t *testing.T) {
	suite := UVMSuite()
	want := []string{"kmeans", "logreg", "conv", "bfs", "pagerank", "spmv", "triad", "stencil2d"}
	if len(suite) != len(want) {
		t.Fatalf("suite has %d entries, want %d", len(suite), len(want))
	}
	for _, name := range want {
		w, ok := suite[name]
		if !ok || w.Build == nil || w.Name != name || w.Description == "" {
			t.Fatalf("suite entry %q malformed: %+v", name, w)
		}
	}
	full := FullSuite()
	for name := range ExtendedSuite() {
		if full[name] == nil {
			t.Errorf("FullSuite missing extended workload %q", name)
		}
	}
	for _, name := range want {
		if full[name] == nil {
			t.Errorf("FullSuite missing UVM workload %q", name)
		}
	}
}

// TestUVMKernelRaceAnalysis pins the engine path of every suite kernel:
// the irregular writers must fall to the serial path (never miscompile),
// everything else must keep the parallel engine.
func TestUVMKernelRaceAnalysis(t *testing.T) {
	cases := []struct {
		name          string
		src           string
		parallel      bool
		orderSensitve bool
	}{
		{"uvm_genf", uvmGenFSrc, true, false},
		{"uvm_geni", uvmGenISrc, true, false},
		{"csr_rowgen", csrRowGenSrc, true, false},
		{"csr_colgen", csrColGenSrc, true, false},
		{"triad3", triadSrc, true, false},
		{"stencil5", stencil5Src, true, false},
		{"spmv_rows", spmvRowsSrc, true, false},
		{"bfs_init", bfsInitSrc, true, false},
		// bfs_step scatters dist[v] at a loaded index: unprovable.
		{"bfs_step", bfsStepSrc, false, false},
		{"pr_gather", prGatherSrc, true, false},
		{"pr_apply", prApplySrc, true, false},
		{"km_assign", kmAssignSrc, true, false},
		// km_accum/lr_grad write only through atomicAdd (race-free) but
		// accumulate floats, whose ordering changes results: serial.
		{"km_accum", kmAccumSrc, true, true},
		{"km_recenter", kmRecenterSrc, true, false},
		{"lr_fwd", lrFwdSrc, true, false},
		{"lr_grad", lrGradSrc, true, true},
		{"lr_step", lrStepSrc, true, false},
		{"conv3x3", conv3x3Src, true, false},
		{"conv_combine", convCombineSrc, true, false},
	}
	for _, c := range cases {
		par, os, err := minicuda.RaceAnalysis(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if par != c.parallel || os != c.orderSensitve {
			t.Errorf("%s: (parallel, orderSensitive) = (%v, %v), want (%v, %v)",
				c.name, par, os, c.parallel, c.orderSensitve)
		}
	}
}

// TestUVMWorkloadsCostOnly builds every workload in cost-only mode on
// both backends — the mode the oversubscription sweep runs in.
func TestUVMWorkloadsCostOnly(t *testing.T) {
	for name, w := range UVMSuite() {
		s := singleNode(t, false)
		if err := w.Build(s, Params{Footprint: 32 * memmodel.MiB}); err != nil {
			t.Fatalf("%s single-node: %v", name, err)
		}
		if s.RT.Graph().Size() == 0 {
			t.Fatalf("%s built an empty DAG", name)
		}
		g := groutSystem(t, 4, policy.NewMinTransferTime(policy.Medium), false)
		if err := w.Build(g, Params{Footprint: 32 * memmodel.MiB}); err != nil {
			t.Fatalf("%s grout: %v", name, err)
		}
	}
}

func TestUVMWorkloadsRejectTinyFootprints(t *testing.T) {
	for name, w := range UVMSuite() {
		s := singleNode(t, false)
		if err := w.Build(s, Params{Footprint: 16}); err == nil {
			t.Errorf("%s accepted a 16-byte footprint", name)
		}
	}
}

// vals reads an array's buffer into a float64 slice.
func vals(t *testing.T, s Session, id dag.ArrayID) []float64 {
	t.Helper()
	buf := s.Buffer(id)
	if buf == nil {
		t.Fatalf("array %d has no buffer", id)
	}
	out := make([]float64, buf.Len())
	for i := range out {
		out[i] = buf.At(i)
	}
	return out
}

func maxDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if x := math.Abs(a[i] - b[i]); x > d {
			d = x
		}
	}
	return d
}

func TestTriadNumeric(t *testing.T) {
	s := singleNode(t, true)
	if err := Triad().Build(s, Params{Footprint: 96 * memmodel.KiB, Blocks: 1}); err != nil {
		t.Fatal(err)
	}
	a, b, c := vals(t, s, 1), vals(t, s, 2), vals(t, s, 3)
	// Generator: b[i] = ((3i+0)%251)*0.5.
	for i := 0; i < 8; i++ {
		if want := float64(float32(float64((i*3)%251) * 0.5)); b[i] != want {
			t.Fatalf("b[%d] = %v, want %v", i, b[i], want)
		}
	}
	for i := range a {
		if want := float64(float32(b[i] + 2*c[i])); a[i] != want {
			t.Fatalf("a[%d] = %v, want %v", i, a[i], want)
		}
	}
}

func TestStencil2DNumeric(t *testing.T) {
	s := singleNode(t, true)
	if err := Stencil2D().Build(s, Params{Footprint: 96 * memmodel.KiB, Blocks: 1, Iterations: 4}); err != nil {
		t.Fatal(err)
	}
	const w, h = 1024, 12
	n := w * h
	// Reference: init then 4 Jacobi sweeps with float32 stores.
	cur := make([]float64, n)
	for i := range cur {
		cur[i] = float64(float32(float64((i*13)%255) * 1.0))
	}
	nxt := make([]float64, n)
	for it := 0; it < 4; it++ {
		for i := 0; i < n; i++ {
			x, y := i%w, i/w
			acc := cur[i]
			if x > 0 {
				acc += cur[i-1]
			}
			if x < w-1 {
				acc += cur[i+1]
			}
			if y > 0 {
				acc += cur[i-w]
			}
			if y < h-1 {
				acc += cur[i+w]
			}
			nxt[i] = float64(float32(0.2 * acc))
		}
		cur, nxt = nxt, cur
	}
	// 4 iterations of ping-pong leave the final state in array 1.
	got := vals(t, s, 1)
	if len(got) != n {
		t.Fatalf("stencil array len = %d, want %d", len(got), n)
	}
	if d := maxDiff(got, cur); d > 0 {
		t.Fatalf("stencil diverged from reference by %v", d)
	}
}

func TestSpMVNumeric(t *testing.T) {
	s := singleNode(t, true)
	if err := SpMV().Build(s, Params{Footprint: 128 * memmodel.KiB, Blocks: 1, Iterations: 2}); err != nil {
		t.Fatal(err)
	}
	x, rowptr, colidx, v, y := vals(t, s, 1), vals(t, s, 2), vals(t, s, 3), vals(t, s, 4), vals(t, s, 5)
	rows := len(y)
	cols := len(x)
	for i := 0; i <= rows; i++ {
		if rowptr[i] != float64(i*spmvDegree) {
			t.Fatalf("rowptr[%d] = %v", i, rowptr[i])
		}
	}
	for e := 0; e < 16; e++ {
		r, k := e/spmvDegree, e%spmvDegree
		if want := float64((r*7 + k*461 + 1) % cols); colidx[e] != want {
			t.Fatalf("colidx[%d] = %v, want %v", e, colidx[e], want)
		}
	}
	for i := 0; i < rows; i++ {
		sum := 0.0
		for j := i * spmvDegree; j < (i+1)*spmvDegree; j++ {
			sum += v[j] * x[int(colidx[j])]
		}
		if got, want := y[i], float64(float32(sum)); got != want {
			t.Fatalf("y[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestBFSNumeric(t *testing.T) {
	s := singleNode(t, true)
	const levels = 6
	if err := BFS().Build(s, Params{Footprint: 128 * memmodel.KiB, Blocks: 1, Iterations: levels}); err != nil {
		t.Fatal(err)
	}
	rowptr, colidx, dist, frontier := vals(t, s, 1), vals(t, s, 2), vals(t, s, 3), vals(t, s, 4)
	n := len(dist)
	// Reference BFS replicating the kernel's serial thread order.
	ref := make([]int, n)
	for i := range ref {
		ref[i] = -1
	}
	ref[0] = 0
	refFront := make([]int, levels)
	for depth := 0; depth < levels; depth++ {
		for i := 0; i < n; i++ {
			if ref[i] != depth {
				continue
			}
			for j := int(rowptr[i]); j < int(rowptr[i+1]); j++ {
				v := int(colidx[j])
				if ref[v] < 0 {
					ref[v] = depth + 1
					refFront[depth]++
				}
			}
		}
	}
	reached := 0
	for i := 0; i < n; i++ {
		if dist[i] != float64(ref[i]) {
			t.Fatalf("dist[%d] = %v, want %d", i, dist[i], ref[i])
		}
		if ref[i] >= 0 {
			reached++
		}
	}
	for d := 0; d < levels; d++ {
		if frontier[d] != float64(refFront[d]) {
			t.Fatalf("frontier[%d] = %v, want %d", d, frontier[d], refFront[d])
		}
	}
	// The traversal must actually expand: several levels, many vertices.
	if frontier[0] == 0 || frontier[1] == 0 || reached < n/10 {
		t.Fatalf("degenerate traversal: frontier=%v reached=%d/%d", frontier, reached, n)
	}
}

func TestPageRankNumeric(t *testing.T) {
	s := singleNode(t, true)
	const iters = 3
	if err := PageRank().Build(s, Params{Footprint: 128 * memmodel.KiB, Blocks: 2, Iterations: iters}); err != nil {
		t.Fatal(err)
	}
	// Allocation order: per block rank, next, rowptr, colidx; then the
	// gather destination.
	rank0, rowptr0, colidx0 := vals(t, s, 1), vals(t, s, 3), vals(t, s, 4)
	rank1, rowptr1, colidx1 := vals(t, s, 5), vals(t, s, 7), vals(t, s, 8)
	nB := len(rank0)
	n := 2 * nB
	const damp = 0.85
	base := (1 - damp) / float64(n)
	// Reference: uniform start, then pull iterations over both blocks.
	ref := make([]float64, n)
	for i := range ref {
		ref[i] = float64(float32(1.0 / float64(n)))
	}
	rp := [][]float64{rowptr0, rowptr1}
	ci := [][]float64{colidx0, colidx1}
	for it := 0; it < iters; it++ {
		next := make([]float64, n)
		for b := 0; b < 2; b++ {
			for i := 0; i < nB; i++ {
				sum := 0.0
				for j := int(rp[b][i]); j < int(rp[b][i+1]); j++ {
					sum += ref[int(ci[b][j])]
				}
				next[b*nB+i] = float64(float32(sum))
			}
		}
		for i := range ref {
			ref[i] = float64(float32(base + damp*next[i]*(1.0/float64(prDegree))))
		}
	}
	got := append(append([]float64(nil), rank0...), rank1...)
	if d := maxDiff(got, ref); d > 1e-7 {
		t.Fatalf("pagerank diverged from reference by %v", d)
	}
	// Rank mass stays near 1 (uniform-degree graph, no dangling nodes).
	mass := 0.0
	for _, r := range got {
		mass += r
	}
	if math.Abs(mass-1) > 0.05 {
		t.Fatalf("rank mass = %v, want ~1", mass)
	}
}

func TestKMeansNumeric(t *testing.T) {
	s := singleNode(t, true)
	const iters = 2
	if err := KMeans().Build(s, Params{Footprint: 64 * memmodel.KiB, Blocks: 1, Iterations: iters}); err != nil {
		t.Fatal(err)
	}
	x, cent, assign := vals(t, s, 1), vals(t, s, 2), vals(t, s, 5)
	nB := len(assign)
	// Reference Lloyd iterations: float64 distances, float32 stores, and
	// the kernel's serial accumulation order for sums.
	refCent := make([]float64, kmK*kmDims)
	for i := range refCent {
		refCent[i] = float64(float32(float64((i*17)%101) * 0.01))
	}
	refAssign := make([]int, nB)
	for it := 0; it < iters; it++ {
		for i := 0; i < nB; i++ {
			best, bestd := 0, 0.0
			for c := 0; c < kmK; c++ {
				d := 0.0
				for j := 0; j < kmDims; j++ {
					diff := x[i*kmDims+j] - refCent[c*kmDims+j]
					d += diff * diff
				}
				if c == 0 || d < bestd {
					best, bestd = c, d
				}
			}
			refAssign[i] = best
		}
		sums := make([]float64, kmK*kmDims)
		counts := make([]int, kmK)
		for i := 0; i < nB; i++ {
			c := refAssign[i]
			for j := 0; j < kmDims; j++ {
				sums[c*kmDims+j] = float64(float32(sums[c*kmDims+j] + x[i*kmDims+j]))
			}
			counts[c]++
		}
		for i := range refCent {
			if cnt := counts[i/kmDims]; cnt > 0 {
				refCent[i] = float64(float32(sums[i] / float64(cnt)))
			}
		}
	}
	for i := range refAssign {
		if assign[i] != float64(refAssign[i]) {
			t.Fatalf("assign[%d] = %v, want %d", i, assign[i], refAssign[i])
		}
	}
	if d := maxDiff(cent, refCent); d > 1e-6 {
		t.Fatalf("centroids diverged from reference by %v", d)
	}
	// Clustering must be non-trivial: more than one cluster in use.
	used := map[int]bool{}
	for _, a := range refAssign {
		used[a] = true
	}
	if len(used) < 2 {
		t.Fatalf("all points in one cluster")
	}
}

func TestLogRegNumeric(t *testing.T) {
	s := singleNode(t, true)
	const epochs = 2
	if err := LogReg().Build(s, Params{Footprint: 64 * memmodel.KiB, Blocks: 1, Iterations: epochs}); err != nil {
		t.Fatal(err)
	}
	x, y, w := vals(t, s, 1), vals(t, s, 2), vals(t, s, 3)
	nB := len(y)
	lr := 0.1 / float64(nB)
	refW := make([]float64, lrDims)
	for e := 0; e < epochs; e++ {
		p := make([]float64, nB)
		for i := 0; i < nB; i++ {
			z := 0.0
			for j := 0; j < lrDims; j++ {
				z += x[i*lrDims+j] * refW[j]
			}
			p[i] = float64(float32(1.0 / (1.0 + math.Exp(-z))))
		}
		grad := make([]float64, lrDims)
		for i := 0; i < nB; i++ {
			e := p[i] - y[i]
			for j := 0; j < lrDims; j++ {
				grad[j] = float64(float32(grad[j] + e*x[i*lrDims+j]))
			}
		}
		for j := 0; j < lrDims; j++ {
			refW[j] = float64(float32(refW[j] - lr*grad[j]))
		}
	}
	if d := maxDiff(w, refW); d > 1e-6 {
		t.Fatalf("weights diverged from reference by %v", d)
	}
	moved := 0.0
	for _, v := range refW {
		moved += math.Abs(v)
	}
	if moved == 0 {
		t.Fatalf("weights never moved")
	}
}

func TestConvNumeric(t *testing.T) {
	s := singleNode(t, true)
	if err := Conv().Build(s, Params{Footprint: 64 * memmodel.KiB, Blocks: 1, Iterations: 1}); err != nil {
		t.Fatal(err)
	}
	img, wgt := vals(t, s, 1), vals(t, s, 3)
	const w = 512
	hw := len(img)
	h := hw / w
	// Reference: the initial image, one conv layer, channel average.
	ref := make([]float64, hw)
	for i := range ref {
		ref[i] = float64(float32(float64((i*19)%255) * 0.0625))
	}
	out := make([]float64, hw*convFilters)
	for f := 0; f < convFilters; f++ {
		for p := 0; p < hw; p++ {
			x, y := p%w, p/w
			acc := 0.01
			for ky := 0; ky < 3; ky++ {
				for kx := 0; kx < 3; kx++ {
					xx, yy := x+kx-1, y+ky-1
					if xx >= 0 && xx < w && yy >= 0 && yy < h {
						acc += ref[yy*w+xx] * wgt[f*9+ky*3+kx]
					}
				}
			}
			if acc < 0 {
				acc = 0
			}
			out[f*hw+p] = float64(float32(acc))
		}
	}
	comb := make([]float64, hw)
	for p := 0; p < hw; p++ {
		acc := 0.0
		for f := 0; f < convFilters; f++ {
			acc += out[f*hw+p]
		}
		comb[p] = float64(float32(acc / convFilters))
	}
	if d := maxDiff(img, comb); d > 1e-6 {
		t.Fatalf("conv diverged from reference by %v", d)
	}
}

// TestUVMPortability proves bit-identical results between the single-node
// runtime and a 2-worker GrOUT fleet for every new workload (the in-
// package leg of the tri-modal identity; the TCP and gateway legs live in
// the root package's tests).
func TestUVMPortability(t *testing.T) {
	for name, w := range UVMSuite() {
		p := gateParams(name)
		sn := singleNode(t, true)
		if err := w.Build(sn, p); err != nil {
			t.Fatalf("%s single: %v", name, err)
		}
		gr := groutSystem(t, 2, policy.NewRoundRobin(), true)
		if err := w.Build(gr, p); err != nil {
			t.Fatalf("%s grout: %v", name, err)
		}
		for id := int64(1); id < 256; id++ {
			a := sn.RT.Array(dagArrayID(id))
			b := gr.Ctl.Array(dagArrayID(id))
			if a == nil || b == nil || a.Buf == nil || b.Buf == nil {
				continue
			}
			if !b.UpToDateOn(cluster.ControllerID) {
				continue
			}
			if d := a.Buf.MaxAbsDiff(b.Buf); d != 0 {
				t.Fatalf("%s array %d differs by %v between runtimes", name, id, d)
			}
		}
	}
}
