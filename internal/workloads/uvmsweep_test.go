package workloads

import (
	"testing"

	"grout/internal/gpusim"
	"grout/internal/memmodel"
)

// sweepTestConfig scales the sweep down to a 64 MiB device so the full
// footprint ladder stays cheap while preserving the cliff shape: the
// oversubscription regime depends on factor, not on absolute bytes.
func sweepTestConfig(workloads ...string) UVMSweepConfig {
	dev := gpusim.V100Spec("uvmtest/gpu")
	dev.Memory = 64 * memmodel.MiB
	return UVMSweepConfig{
		Workloads: workloads,
		Device:    &dev,
	}
}

func TestUVMBenchSweepShape(t *testing.T) {
	pts, err := UVMBenchSweep(sweepTestConfig("triad"))
	if err != nil {
		t.Fatal(err)
	}
	want := len(DefaultSweepFactors()) * len(DefaultSweepWorkers())
	if len(pts) != want {
		t.Fatalf("got %d points, want %d", len(pts), want)
	}
	ces := pts[0].CEs
	for _, p := range pts {
		if p.Workload != "triad" || p.Prefetch != "eager" || p.Evict != "lru" {
			t.Fatalf("unexpected cell identity: %+v", p)
		}
		if p.MakespanNs <= 0 {
			t.Fatalf("non-positive makespan: %+v", p)
		}
		// The DAG a workload submits is a function of (footprint, blocks)
		// only — fleet size must not change what work exists, just where
		// it runs.
		if p.Workers == pts[0].Workers && p.CEs != ces {
			t.Fatalf("CE count varies within a fleet size: %+v", p)
		}
	}
}

func TestUVMBenchSweepUnknownWorkload(t *testing.T) {
	if _, err := UVMBenchSweep(sweepTestConfig("nope")); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

// TestUVMSweepScaleOutFlattensCliffs is the paper's headline result at
// workload level: each irregular workload falls off a 1-worker
// oversubscription cliff, and adding workers moves the cliff right (or
// off the ladder entirely) because min-transfer-time keeps each
// partition's arrays co-resident and per-node pressure drops to
// factor/workers.
func TestUVMSweepScaleOutFlattensCliffs(t *testing.T) {
	pts, err := UVMBenchSweep(sweepTestConfig("spmv", "bfs", "pagerank"))
	if err != nil {
		t.Fatal(err)
	}
	cliffs := UVMCliffs(pts)
	last := DefaultSweepFactors()[len(DefaultSweepFactors())-1]
	at := func(wl string, workers int) float64 {
		k := UVMCliffKey{Workload: wl, Prefetch: "eager", Evict: "lru", Workers: workers}
		if f, ok := cliffs[k]; ok {
			return f
		}
		// No cliff within the ladder: treat it as past the last rung.
		return last + 1
	}
	for _, wl := range []string{"spmv", "bfs", "pagerank"} {
		c1, c2, c4 := at(wl, 1), at(wl, 2), at(wl, 4)
		if c1 > 2.0 {
			t.Errorf("%s: 1-worker cliff at %.1fx, want <= 2.0x (the Figure-1 slowdown)", wl, c1)
		}
		if c2 <= c1 {
			t.Errorf("%s: 2-worker cliff at %.1fx did not move right of 1-worker cliff %.1fx", wl, c2, c1)
		}
		if c4 <= c1 {
			t.Errorf("%s: 4-worker cliff at %.1fx did not move right of 1-worker cliff %.1fx", wl, c4, c1)
		}
		t.Logf("%s cliffs: 1w=%.1fx 2w=%.1fx 4w=%.1fx (>%0.1fx = off ladder)", wl, c1, c2, c4, last)
	}
}

// TestUVMSweepStreamingStaysCheap pins the contrast case: the regular
// streaming workload has no 4-worker cliff at all on the default ladder.
func TestUVMSweepStreamingStaysCheap(t *testing.T) {
	cfg := sweepTestConfig("triad")
	cfg.Workers = []int{4}
	pts, err := UVMBenchSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cliffs := UVMCliffs(pts); len(cliffs) != 0 {
		t.Fatalf("triad at 4 workers should stay flat on the default ladder, got cliffs %v", cliffs)
	}
}
