package workloads

// The oversubscription sweep driver: the measurement harness behind
// `groutbench -fig oversub`, BenchmarkOversubSweep and BENCH_gpusim.json.
// It runs a fixed kernel-sweep microworkload on a single simulated GPU at
// footprints from below device memory to deep oversubscription, across
// every access pattern and prefetch/eviction policy combination, and
// records where each policy's thrashing cliff sits.

import (
	"fmt"

	"grout/internal/gpusim"
	"grout/internal/memmodel"
)

// SweepPoint is one cell of the oversubscription sweep.
type SweepPoint struct {
	// Factor is the oversubscription factor: footprint over device memory.
	Factor float64 `json:"factor"`
	// Pattern is the access pattern swept.
	Pattern string `json:"pattern"`
	// Prefetch and Evict name the policy combination.
	Prefetch string `json:"prefetch"`
	Evict    string `json:"evict"`
	// NsPerLaunch is the mean modeled wall time per kernel launch.
	NsPerLaunch int64 `json:"ns_per_launch"`
	// BytesMigrated is the total migration traffic over the run.
	BytesMigrated int64 `json:"bytes_migrated"`
	// Regimes counts launches per migration regime.
	Regimes map[string]int `json:"regimes"`
}

// SweepConfig parameterizes OversubscriptionSweep.
type SweepConfig struct {
	// Factors are the oversubscription factors (footprint / device
	// memory). Zero-length selects the default 0.5x → 4x ladder.
	Factors []float64
	// Patterns are the access patterns to sweep. Zero-length selects all.
	Patterns []memmodel.Pattern
	// Combos are (prefetch, evict) policy pairs. Zero-length selects the
	// full cross product of registered policies.
	Combos [][2]string
	// Launches is the number of kernel launches per cell (default 8).
	Launches int
	// Device overrides the swept GPU (default a V100). CI boxes point
	// this at a scaled-down spec so the ladder stays cheap.
	Device *gpusim.DeviceSpec
	// HostMemory overrides the node's host memory (default 512 GiB); it
	// bounds how deep the eviction target can spill.
	HostMemory memmodel.Bytes
}

// DefaultSweepFactors is the footprint ladder of the oversubscription
// sweep: below device memory, at it, and past every pattern's cliff.
func DefaultSweepFactors() []float64 {
	return []float64{0.5, 1.0, 1.5, 2.0, 3.0, 4.0}
}

// AllPatterns lists the access patterns the sweep covers.
func AllPatterns() []memmodel.Pattern {
	return []memmodel.Pattern{
		memmodel.Sequential, memmodel.Strided, memmodel.Broadcast, memmodel.Random,
	}
}

// AllPolicyCombos is the cross product of the registered prefetch and
// eviction policies.
func AllPolicyCombos() [][2]string {
	var combos [][2]string
	for _, p := range gpusim.PrefetchPolicyNames() {
		for _, e := range gpusim.EvictionPolicyNames() {
			combos = append(combos, [2]string{p, e})
		}
	}
	return combos
}

func (c SweepConfig) withDefaults() SweepConfig {
	if len(c.Factors) == 0 {
		c.Factors = DefaultSweepFactors()
	}
	if len(c.Patterns) == 0 {
		c.Patterns = AllPatterns()
	}
	if len(c.Combos) == 0 {
		c.Combos = AllPolicyCombos()
	}
	if c.Launches <= 0 {
		c.Launches = 8
	}
	if c.Device == nil {
		d := gpusim.V100Spec("sweep/gpu0")
		c.Device = &d
	}
	if c.HostMemory <= 0 {
		c.HostMemory = 512 * memmodel.GiB
	}
	return c
}

// OversubscriptionSweep measures one SweepPoint per (factor, pattern,
// policy combo) cell. Every cell runs on a fresh single-V100 node whose
// live UVM allocation is exactly factor × device memory, so the node's
// allocation pressure is the paper's oversubscription x-axis.
func OversubscriptionSweep(cfg SweepConfig) ([]SweepPoint, error) {
	cfg = cfg.withDefaults()
	var out []SweepPoint
	for _, combo := range cfg.Combos {
		for _, pattern := range cfg.Patterns {
			for _, factor := range cfg.Factors {
				pt, err := sweepCell(cfg, factor, pattern, combo)
				if err != nil {
					return nil, err
				}
				out = append(out, pt)
			}
		}
	}
	return out, nil
}

func sweepCell(cfg SweepConfig, factor float64, pattern memmodel.Pattern, combo [2]string) (SweepPoint, error) {
	launches := cfg.Launches
	spec := gpusim.NodeSpec{
		Name:       "sweep",
		Devices:    []gpusim.DeviceSpec{*cfg.Device},
		HostMemory: cfg.HostMemory,
	}
	n := gpusim.NewNode(spec)
	if err := n.UseMemoryPolicies(combo[0], combo[1]); err != nil {
		return SweepPoint{}, err
	}
	size := memmodel.Bytes(factor * float64(spec.TotalDeviceMemory()))
	id, err := n.Alloc(size)
	if err != nil {
		return SweepPoint{}, fmt.Errorf("sweep cell %.1fx: %w", factor, err)
	}

	pt := SweepPoint{
		Factor:   factor,
		Pattern:  pattern.String(),
		Prefetch: combo[0],
		Evict:    combo[1],
		Regimes:  make(map[string]int),
	}
	kc := gpusim.KernelCost{Name: "sweep", Elements: 1 << 20, OpsPerElement: 2}
	var end int64
	for i := 0; i < launches; i++ {
		res, err := n.Launch(0, 0, kc, []gpusim.ArgBinding{
			{Alloc: id, Access: memmodel.Access{
				Mode: memmodel.Read, Pattern: pattern, Fraction: 1, Passes: 1,
			}},
		}, 0)
		if err != nil {
			return SweepPoint{}, err
		}
		end = int64(res.Interval.End)
		pt.BytesMigrated += int64(res.BytesMigrated)
		pt.Regimes[res.Regime.String()]++
	}
	pt.NsPerLaunch = end / int64(launches)
	return pt, nil
}
