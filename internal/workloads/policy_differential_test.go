package workloads

// The memory-policy differential gate: every suite workload, run with
// every prefetch/eviction policy combination installed on every worker,
// must produce bit-identical array contents (and identical error text)
// to the LRU/eager baseline. Policies move modeled time — what migrates
// when, at which bandwidth — but never data: numeric results are computed
// by the kernels' host implementations and must not depend on how the
// simulator charges for page traffic.

import (
	"bytes"
	"sort"
	"testing"

	"grout/internal/cluster"
	"grout/internal/core"
	"grout/internal/dag"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/policy"
)

// runPolicyDifferential builds one workload on a fresh fleet whose
// workers all run the given memory-policy combination, returning every
// live array's final bytes plus the run's error text.
func runPolicyDifferential(t *testing.T, w *Workload, prefetch, evict string) ([][]byte, string) {
	t.Helper()
	clu := cluster.New(cluster.PaperSpec(4))
	fab := core.NewLocalFabric(clu, kernels.StdRegistry(), true)
	for _, id := range fab.Workers() {
		if err := fab.Runtime(id).Node().UseMemoryPolicies(prefetch, evict); err != nil {
			t.Fatalf("UseMemoryPolicies(%q, %q): %v", prefetch, evict, err)
		}
	}
	ctl := core.NewController(fab, policy.NewMinTransferTime(policy.Medium),
		core.Options{Numeric: true, Pipeline: true})
	defer ctl.Close()

	s := &AsyncGrout{Ctl: ctl}
	rec := &recorder{Session: s, live: make(map[dag.ArrayID]bool)}
	errText := ""
	if err := w.Build(rec, gateParams(w.Name)); err != nil {
		errText = err.Error()
	}
	if err := s.Wait(); err != nil && errText == "" {
		errText = err.Error()
	}
	var out [][]byte
	for _, id := range rec.order {
		if !rec.live[id] {
			continue
		}
		if _, err := ctl.HostRead(id); err != nil {
			if errText == "" {
				errText = err.Error()
			}
			out = append(out, nil)
			continue
		}
		arr := ctl.Array(id)
		out = append(out, append([]byte(nil), arr.Buf.RawBytes()...))
	}
	return out, errText
}

func TestMemoryPolicyDifferentialSuite(t *testing.T) {
	suite := FullSuite()
	names := make([]string, 0, len(suite))
	for name := range suite {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			base, baseErr := runPolicyDifferential(t, suite[name], "eager", "lru")
			for _, combo := range AllPolicyCombos() {
				if combo[0] == "eager" && combo[1] == "lru" {
					continue
				}
				got, gotErr := runPolicyDifferential(t, suite[name], combo[0], combo[1])
				if gotErr != baseErr {
					t.Fatalf("%s+%s: error text diverged:\n  baseline: %q\n  policy:   %q",
						combo[0], combo[1], baseErr, gotErr)
				}
				if len(got) != len(base) {
					t.Fatalf("%s+%s: live array count diverged: %d vs %d",
						combo[0], combo[1], len(base), len(got))
				}
				for i := range base {
					if !bytes.Equal(base[i], got[i]) {
						t.Fatalf("%s+%s: array %d of %d diverged from the LRU baseline",
							combo[0], combo[1], i, len(base))
					}
				}
			}
		})
	}
}

func TestOversubscriptionSweepShape(t *testing.T) {
	pts, err := OversubscriptionSweep(SweepConfig{
		Factors:  []float64{0.5, 1.5},
		Patterns: []memmodel.Pattern{memmodel.Sequential},
		Combos:   [][2]string{{"eager", "lru"}, {"stride", "lru"}},
		Launches: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4", len(pts))
	}
	byKey := make(map[string]SweepPoint)
	for _, p := range pts {
		byKey[p.Prefetch+"/"+p.Pattern+"/"+fmtFactor(p.Factor)] = p
		if p.NsPerLaunch <= 0 {
			t.Errorf("cell %+v: non-positive ns/launch", p)
		}
		if len(p.Regimes) == 0 {
			t.Errorf("cell %+v: empty regime histogram", p)
		}
	}
	// Below device memory both policies are resident and identical in
	// regime; at 1.5x the stride policy must beat the baseline >=2x (the
	// BENCH_gpusim.json acceptance row).
	if r := byKey["eager/sequential/0.5"].Regimes["resident"]; r != 4 {
		t.Errorf("0.5x not resident: %+v", byKey["eager/sequential/0.5"])
	}
	base := byKey["eager/sequential/1.5"].NsPerLaunch
	stride := byKey["stride/sequential/1.5"].NsPerLaunch
	if base < 2*stride {
		t.Errorf("at 1.5x: baseline %d ns, stride %d ns — want >=2x reduction", base, stride)
	}
}

func fmtFactor(f float64) string {
	switch f {
	case 0.5:
		return "0.5"
	case 1.5:
		return "1.5"
	}
	return ""
}
