package workloads

// The optimizer differential gate: every suite workload, submitted as a
// stream through AsyncGrout, must produce bit-identical array contents
// (and identical error text) with the controller's lookahead optimizer
// window on and off. The window rewrites admission — fusing CEs,
// coalescing and eliminating transfers, and evaluating the policy
// against a frozen snapshot, which legitimately changes placements — so
// this is the property that proves the rewrites never change results.

import (
	"bytes"
	"sort"
	"testing"

	"grout/internal/cluster"
	"grout/internal/core"
	"grout/internal/dag"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/policy"
)

// recorder tracks the live framework arrays a workload allocates, so the
// differential can read back every buffer the run left behind.
type recorder struct {
	Session
	order []dag.ArrayID
	live  map[dag.ArrayID]bool
}

func (r *recorder) NewArray(kind memmodel.ElemKind, n int64) (dag.ArrayID, error) {
	id, err := r.Session.NewArray(kind, n)
	if err == nil {
		r.order = append(r.order, id)
		r.live[id] = true
	}
	return id, err
}

func (r *recorder) Free(id dag.ArrayID) error {
	err := r.Session.Free(id)
	if err == nil {
		delete(r.live, id)
	}
	return err
}

// runDifferential builds one workload on a fresh fleet and returns every
// live array's final bytes (in allocation order) plus the run's error
// text ("" for success).
func runDifferential(t *testing.T, w *Workload, optimize bool) ([][]byte, string) {
	t.Helper()
	clu := cluster.New(cluster.PaperSpec(4))
	fab := core.NewLocalFabric(clu, kernels.StdRegistry(), true)
	opts := core.Options{Numeric: true, Pipeline: true}
	if optimize {
		opts.OptimizeWindow = 16
	}
	// min-transfer-time also exercises the batched policy path.
	ctl := core.NewController(fab, policy.NewMinTransferTime(policy.Medium), opts)
	defer ctl.Close()

	s := &AsyncGrout{Ctl: ctl}
	rec := &recorder{Session: s, live: make(map[dag.ArrayID]bool)}
	errText := ""
	if err := w.Build(rec, gateParams(w.Name)); err != nil {
		errText = err.Error()
	}
	if err := s.Wait(); err != nil && errText == "" {
		errText = err.Error()
	}
	var out [][]byte
	for _, id := range rec.order {
		if !rec.live[id] {
			continue
		}
		if _, err := ctl.HostRead(id); err != nil {
			if errText == "" {
				errText = err.Error()
			}
			out = append(out, nil)
			continue
		}
		arr := ctl.Array(id)
		out = append(out, append([]byte(nil), arr.Buf.RawBytes()...))
	}
	return out, errText
}

func TestOptimizerDifferentialSuite(t *testing.T) {
	suite := FullSuite()
	names := make([]string, 0, len(suite))
	for name := range suite {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			base, baseErr := runDifferential(t, suite[name], false)
			opt, optErr := runDifferential(t, suite[name], true)
			if baseErr != optErr {
				t.Fatalf("error text diverged:\n  window off: %q\n  window on:  %q", baseErr, optErr)
			}
			if len(base) != len(opt) {
				t.Fatalf("live array count diverged: %d vs %d", len(base), len(opt))
			}
			for i := range base {
				if !bytes.Equal(base[i], opt[i]) {
					t.Fatalf("array %d of %d diverged with the optimizer window on", i, len(base))
				}
			}
		})
	}
}
