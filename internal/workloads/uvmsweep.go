package workloads

// The workload-level oversubscription sweep — the end-to-end harness
// behind `groutbench -fig uvmbench` and BENCH_workloads.json. Where
// sweep.go drives a synthetic access pattern on one simulated GPU, this
// driver runs the *real* UVMBench-style workloads across three axes:
//
//   footprint   0.5x → 4x of one worker's device memory
//   policy      prefetch/evict combination installed on every worker
//   fleet size  1, 2, 4 workers
//
// Every cell is a fresh cost-only fleet. The 1-worker column reproduces
// the paper's Figure-1 cliff per workload; the 2- and 4-worker columns
// show transparent scale-out flattening it, because min-transfer-time
// spreads the partitions and per-node pressure drops to factor/workers.

import (
	"fmt"
	"sort"

	"grout/internal/cluster"
	"grout/internal/core"
	"grout/internal/gpusim"
	"grout/internal/kernels"
	"grout/internal/memmodel"
	"grout/internal/policy"
	"grout/internal/sim"
)

// UVMSweepPoint is one cell of the workload sweep.
type UVMSweepPoint struct {
	// Workload is the suite key ("bfs", "spmv", ...).
	Workload string `json:"workload"`
	// Factor is footprint over one worker's device memory.
	Factor float64 `json:"factor"`
	// Workers is the fleet size the cell ran on.
	Workers int `json:"workers"`
	// Prefetch and Evict name the policy combination on every worker.
	Prefetch string `json:"prefetch"`
	Evict    string `json:"evict"`
	// MakespanNs is the modeled end-to-end makespan of the workload.
	MakespanNs int64 `json:"makespan_ns"`
	// CEs is the number of computational elements the build submitted.
	CEs int `json:"ces"`
}

// UVMSweepConfig parameterizes UVMBenchSweep. The zero value sweeps the
// full suite over the default ladder at 1/2/4 workers with the baseline
// eager+lru policy combo.
type UVMSweepConfig struct {
	// Workloads are suite keys from UVMSuite. Zero-length selects all,
	// sorted by name.
	Workloads []string
	// Factors is the footprint ladder (x device memory of ONE worker).
	Factors []float64
	// Workers are the fleet sizes. Zero-length selects 1, 2, 4.
	Workers []int
	// Combos are (prefetch, evict) pairs installed on every worker.
	// Zero-length selects the eager+lru baseline only; pass
	// AllPolicyCombos() for the full policy axis.
	Combos [][2]string
	// Device overrides the per-worker GPU (default one V100 per worker,
	// so the oversubscription denominator is 16 GiB).
	Device *gpusim.DeviceSpec
	// HostMemory overrides per-worker host memory (default 512 GiB).
	HostMemory memmodel.Bytes
	// Blocks overrides the partition count (default 8, so min-transfer-
	// time has partitions to spread at every fleet size).
	Blocks int
	// Iterations overrides each workload's iteration default.
	Iterations int
}

// DefaultSweepWorkers is the fleet-size axis of the workload sweep.
func DefaultSweepWorkers() []int { return []int{1, 2, 4} }

func (c UVMSweepConfig) withDefaults() UVMSweepConfig {
	if len(c.Workloads) == 0 {
		for name := range UVMSuite() {
			c.Workloads = append(c.Workloads, name)
		}
		sort.Strings(c.Workloads)
	}
	if len(c.Factors) == 0 {
		c.Factors = DefaultSweepFactors()
	}
	if len(c.Workers) == 0 {
		c.Workers = DefaultSweepWorkers()
	}
	if len(c.Combos) == 0 {
		c.Combos = [][2]string{{"eager", "lru"}}
	}
	if c.Device == nil {
		d := gpusim.V100Spec("uvm/gpu")
		c.Device = &d
	}
	if c.HostMemory <= 0 {
		c.HostMemory = 512 * memmodel.GiB
	}
	if c.Blocks <= 0 {
		c.Blocks = 8
	}
	return c
}

// UVMBenchSweep measures one UVMSweepPoint per (workload, factor,
// workers, combo) cell, each on a fresh cost-only fleet.
func UVMBenchSweep(cfg UVMSweepConfig) ([]UVMSweepPoint, error) {
	cfg = cfg.withDefaults()
	suite := UVMSuite()
	var out []UVMSweepPoint
	for _, name := range cfg.Workloads {
		w, ok := suite[name]
		if !ok {
			return nil, fmt.Errorf("uvmsweep: unknown workload %q", name)
		}
		for _, combo := range cfg.Combos {
			for _, workers := range cfg.Workers {
				for _, factor := range cfg.Factors {
					pt, err := uvmSweepCell(cfg, w, factor, workers, combo)
					if err != nil {
						return nil, fmt.Errorf("uvmsweep %s %.1fx %dw %s+%s: %w",
							name, factor, workers, combo[0], combo[1], err)
					}
					out = append(out, pt)
				}
			}
		}
	}
	return out, nil
}

// sweepFleetSpec builds the sweep's cluster: `workers` nodes with one
// swept GPU each, on the paper's OCI network profile.
func sweepFleetSpec(cfg UVMSweepConfig, workers int) cluster.Spec {
	s := cluster.Spec{
		ControllerEgressBW:  1e9,
		ControllerIngressBW: 1e9,
		WorkerNICBW:         500e6,
		Latency:             sim.VirtualTime(250_000),
	}
	for i := 0; i < workers; i++ {
		dev := *cfg.Device
		dev.Name = fmt.Sprintf("uvm%d/gpu0", i+1)
		s.Workers = append(s.Workers, gpusim.NodeSpec{
			Name:       fmt.Sprintf("uvm%d", i+1),
			Devices:    []gpusim.DeviceSpec{dev},
			HostMemory: cfg.HostMemory,
		})
	}
	return s
}

func uvmSweepCell(cfg UVMSweepConfig, w *Workload, factor float64, workers int, combo [2]string) (UVMSweepPoint, error) {
	clu := cluster.New(sweepFleetSpec(cfg, workers))
	fab := core.NewLocalFabric(clu, kernels.StdRegistry(), false)
	for _, id := range fab.Workers() {
		if err := fab.Runtime(id).Node().UseMemoryPolicies(combo[0], combo[1]); err != nil {
			return UVMSweepPoint{}, err
		}
	}
	ctl := core.NewController(fab, policy.NewMinTransferTime(policy.Medium),
		core.Options{Pipeline: true})
	defer ctl.Close()

	s := &AsyncGrout{Ctl: ctl}
	footprint := memmodel.Bytes(factor * float64(cfg.Device.Memory))
	p := Params{Footprint: footprint, Blocks: cfg.Blocks, Iterations: cfg.Iterations}
	if err := w.Build(s, p); err != nil {
		return UVMSweepPoint{}, err
	}
	if err := s.Wait(); err != nil {
		return UVMSweepPoint{}, err
	}
	return UVMSweepPoint{
		Workload:   w.Name,
		Factor:     factor,
		Workers:    workers,
		Prefetch:   combo[0],
		Evict:      combo[1],
		MakespanNs: int64(s.Elapsed()),
		CEs:        ctl.Graph().Size(),
	}, nil
}

// UVMCliffKey identifies one (workload, combo, fleet-size) series of the
// sweep.
type UVMCliffKey struct {
	Workload string
	Prefetch string
	Evict    string
	Workers  int
}

// UVMCliffs locates each series' oversubscription cliff: the lowest
// factor whose footprint-normalized makespan (makespan/factor — the
// workloads do proportionally more work at bigger footprints) exceeds
// 2.5x the series' cheapest rung. Series that never left the flat regime
// within the ladder are absent — their cliff sits past the last rung.
func UVMCliffs(pts []UVMSweepPoint) map[UVMCliffKey]float64 {
	type rung struct {
		factor float64
		slope  float64
	}
	series := make(map[UVMCliffKey][]rung)
	for _, p := range pts {
		if p.Factor <= 0 {
			continue
		}
		k := UVMCliffKey{p.Workload, p.Prefetch, p.Evict, p.Workers}
		series[k] = append(series[k], rung{p.Factor, float64(p.MakespanNs) / p.Factor})
	}
	cliffs := make(map[UVMCliffKey]float64)
	for k, rungs := range series {
		sort.Slice(rungs, func(i, j int) bool { return rungs[i].factor < rungs[j].factor })
		base := rungs[0].slope
		if base <= 0 {
			continue
		}
		for _, r := range rungs {
			if r.slope > 2.5*base {
				cliffs[k] = r.factor
				break
			}
		}
	}
	return cliffs
}
