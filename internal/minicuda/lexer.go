package minicuda

import (
	"strings"
	"unicode"
)

// lexer turns source text into tokens. It handles // and /* */ comments
// and multi-character operators.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// twoCharOps are the recognized two-character operators. Order matters
// only for readability; lookup is exact.
var twoCharOps = map[string]bool{
	"==": true, "!=": true, "<=": true, ">=": true, "&&": true, "||": true,
	"+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"++": true, "--": true, "<<": true, ">>": true, "::": true,
}

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) peekByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peekByteAt(n int) byte {
	if l.off+n >= len(l.src) {
		return 0
	}
	return l.src[l.off+n]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// skipSpaceAndComments consumes whitespace and both comment styles.
func (l *lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.advance()
		case c == '/' && l.peekByteAt(1) == '/':
			for l.off < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekByteAt(1) == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peekByte() == '*' && l.peekByteAt(1) == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return errf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return token{Kind: tokEOF, Pos: pos}, nil
	}
	c := l.peekByte()

	if isIdentStart(c) {
		var b strings.Builder
		for l.off < len(l.src) && isIdentPart(l.peekByte()) {
			b.WriteByte(l.advance())
		}
		return token{Kind: tokIdent, Lit: b.String(), Pos: pos}, nil
	}

	if unicode.IsDigit(rune(c)) || (c == '.' && unicode.IsDigit(rune(l.peekByteAt(1)))) {
		var b strings.Builder
		seenDot, seenExp := false, false
		for l.off < len(l.src) {
			c := l.peekByte()
			switch {
			case unicode.IsDigit(rune(c)):
				b.WriteByte(l.advance())
			case c == '.' && !seenDot && !seenExp:
				seenDot = true
				b.WriteByte(l.advance())
			case (c == 'e' || c == 'E') && !seenExp:
				seenExp = true
				b.WriteByte(l.advance())
				if s := l.peekByte(); s == '+' || s == '-' {
					b.WriteByte(l.advance())
				}
			case c == 'f' || c == 'F': // float suffix
				l.advance()
				return token{Kind: tokNumber, Lit: b.String(), Pos: pos}, nil
			default:
				return token{Kind: tokNumber, Lit: b.String(), Pos: pos}, nil
			}
		}
		return token{Kind: tokNumber, Lit: b.String(), Pos: pos}, nil
	}

	if c == '"' {
		l.advance()
		var b strings.Builder
		for l.off < len(l.src) && l.peekByte() != '"' {
			b.WriteByte(l.advance())
		}
		if l.off >= len(l.src) {
			return token{}, errf(pos, "unterminated string literal")
		}
		l.advance()
		return token{Kind: tokString, Lit: b.String(), Pos: pos}, nil
	}

	// Operators and punctuation.
	if l.off+1 < len(l.src) {
		two := l.src[l.off : l.off+2]
		if twoCharOps[two] {
			l.advance()
			l.advance()
			return token{Kind: tokPunct, Lit: two, Pos: pos}, nil
		}
	}
	switch c {
	case '+', '-', '*', '/', '%', '<', '>', '=', '!', '&', '|', '^', '~',
		'(', ')', '{', '}', '[', ']', ',', ';', '.', '?', ':':
		l.advance()
		return token{Kind: tokPunct, Lit: string(c), Pos: pos}, nil
	}
	return token{}, errf(pos, "unexpected character %q", string(c))
}

// lexAll tokenizes the entire source.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == tokEOF {
			return toks, nil
		}
	}
}
