package minicuda

import (
	"grout/internal/memmodel"
)

// Param is one kernel parameter.
type Param struct {
	Name    string
	Kind    memmodel.ElemKind
	Pointer bool
	Const   bool
	Pos     Pos
}

// Kernel is a parsed __global__ function.
type Kernel struct {
	Name   string
	Params []Param
	Body   []Stmt
	Pos    Pos
	// funcs are the module's __device__ helper functions, visible to the
	// kernel's body.
	funcs map[string]*DeviceFunc
}

// DeviceFunc is a parsed __device__ helper function. Helpers take scalar
// parameters and return a scalar; pointer parameters are rejected (their
// aliasing semantics are out of the dialect's scope).
type DeviceFunc struct {
	Name   string
	Params []Param
	Ret    memmodel.ElemKind
	Body   []Stmt
	Pos    Pos
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// DeclStmt declares a local scalar: "int i = expr;".
type DeclStmt struct {
	Name string
	Kind memmodel.ElemKind
	Init Expr // may be nil
	Pos  Pos
}

// AssignStmt assigns to an identifier or array element. Op is "=", "+=",
// "-=", "*=", "/=" or "%=".
type AssignStmt struct {
	Target Expr // *IdentExpr or *IndexExpr
	Op     string
	Value  Expr
	Pos    Pos
}

// IncStmt is "x++;" or "x--;".
type IncStmt struct {
	Target Expr // *IdentExpr or *IndexExpr
	Decr   bool
	Pos    Pos
}

// IfStmt is a conditional.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt // may be nil
	Pos  Pos
}

// ForStmt is a C-style for loop.
type ForStmt struct {
	Init Stmt // may be nil; DeclStmt, AssignStmt or IncStmt
	Cond Expr // may be nil (infinite loops are rejected at parse time)
	Post Stmt // may be nil
	Body []Stmt
	Pos  Pos
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body []Stmt
	Pos  Pos
}

// ReturnStmt exits the thread (kernels, Value nil) or returns a scalar
// from a __device__ helper.
type ReturnStmt struct {
	Value Expr // nil in kernels
	Pos   Pos
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt skips to the innermost loop's next iteration.
type ContinueStmt struct{ Pos Pos }

// ExprStmt evaluates an expression for its side effects (calls).
type ExprStmt struct {
	X   Expr
	Pos Pos
}

func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*IncStmt) stmtNode()      {}
func (*IfStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ExprStmt) stmtNode()     {}

// Expr is an expression node.
type Expr interface{ exprNode() }

// NumberExpr is a numeric literal.
type NumberExpr struct {
	Val   float64
	IsInt bool
	Pos   Pos
}

// IdentExpr references a parameter or local variable.
type IdentExpr struct {
	Name string
	Pos  Pos
}

// IndexExpr is base[idx] where base names a pointer parameter.
type IndexExpr struct {
	Base string
	Idx  Expr
	Pos  Pos
}

// MemberExpr is one of the CUDA builtin vectors: threadIdx.x, blockIdx.y,
// blockDim.z, gridDim.x.
type MemberExpr struct {
	Base  string
	Field string
	Pos   Pos
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op   string
	L, R Expr
	Pos  Pos
}

// UnaryExpr is -x, !x or ~x.
type UnaryExpr struct {
	Op  string
	X   Expr
	Pos Pos
}

// CastExpr is "(float) x" style conversion.
type CastExpr struct {
	Kind memmodel.ElemKind
	X    Expr
	Pos  Pos
}

// CallExpr invokes a math builtin or atomicAdd.
type CallExpr struct {
	Name string
	Args []Expr
	Pos  Pos
}

// AddrExpr is &base[idx], only valid as atomicAdd's first argument.
type AddrExpr struct {
	X   *IndexExpr
	Pos Pos
}

// CondExpr is the ternary c ? t : f.
type CondExpr struct {
	C, T, F Expr
	Pos     Pos
}

func (*NumberExpr) exprNode() {}
func (*IdentExpr) exprNode()  {}
func (*IndexExpr) exprNode()  {}
func (*MemberExpr) exprNode() {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*CastExpr) exprNode()   {}
func (*CallExpr) exprNode()   {}
func (*AddrExpr) exprNode()   {}
func (*CondExpr) exprNode()   {}
