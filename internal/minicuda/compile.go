package minicuda

import (
	"fmt"

	"grout/internal/kernels"
	"grout/internal/memmodel"
)

// Engine selects which execution engine a compiled Def uses.
type Engine int

const (
	// EngineAuto lowers the kernel to the slot-compiled program and falls
	// back to the reference interpreter for the (rare) kernels the lowerer
	// cannot express. The default.
	EngineAuto Engine = iota
	// EngineCompiled requires the slot-compiled program; compilation fails
	// if the kernel cannot be lowered.
	EngineCompiled
	// EngineInterp forces the reference tree-walking interpreter.
	EngineInterp
)

// EngineOpts tunes kernel execution. The zero value is the default
// configuration: auto engine, GOMAXPROCS workers for parallel-safe
// kernels, strict (serializing) float atomics, default step budget.
type EngineOpts struct {
	Engine Engine
	// Workers partitions the grid's blocks: 0 means GOMAXPROCS, 1 forces
	// serial execution. Kernels the safety analysis cannot prove
	// race-free always run serial regardless.
	Workers int
	// RelaxedAtomics allows parallel execution of kernels whose atomicAdd
	// accumulation order affects the result (float sums); the outcome is
	// then hardware-like: correct up to floating-point reassociation.
	RelaxedAtomics bool
	// MaxThreadSteps overrides the per-thread statement budget (0 uses
	// the default).
	MaxThreadSteps int
}

// Compile parses a kernel source string and returns the kernels.Def for
// the (single) kernel it contains, optionally checked against an NFI
// signature string ("pointer float, const pointer float, sint32"). An
// empty signature accepts the parameter list as written — paper Listing 1
// passes both the source and the signature to buildkernel.
//
// Results are cached by (source, signature): repeated buildkernel calls
// return the already compiled Def without any front-end work.
func Compile(src, signature string) (*kernels.Def, error) {
	return cachedCompile(src, signature)
}

// CompileOpts compiles with explicit engine options, bypassing the cache
// (cached Defs always use the default options).
func CompileOpts(src, signature string, opts EngineOpts) (*kernels.Def, error) {
	return compileUncached(src, signature, opts)
}

// RaceAnalysis reports the engine's static verdicts for the (single)
// kernel in src. parallelSafe is the race analysis: every written buffer
// is touched only at the thread's own global id (or through atomicAdd),
// so block partitions may execute concurrently. orderSensitive reports
// an atomicAdd accumulation whose interleaving changes the result (a
// non-integer added value), which also forces serial execution unless
// RelaxedAtomics is set. A kernel failing either check still executes
// correctly — it runs on the deterministic serial path, never
// miscompiled. Workload tests use this probe to pin which path each
// kernel takes.
func RaceAnalysis(src string) (parallelSafe, orderSensitive bool, err error) {
	ks, err := Parse(src)
	if err != nil {
		return false, false, err
	}
	if len(ks) != 1 {
		return false, false, fmt.Errorf("minicuda: source contains %d kernels; RaceAnalysis takes one", len(ks))
	}
	p, err := lowerProgram(ks[0])
	if err != nil {
		return false, false, err
	}
	return p.parallelSafe, p.hasAtomic && !p.atomicValInt, nil
}

func compileUncached(src, signature string, opts EngineOpts) (*kernels.Def, error) {
	frontendRuns.Add(1)
	ks, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(ks) != 1 {
		return nil, fmt.Errorf("minicuda: source contains %d kernels; name one with CompileNamed", len(ks))
	}
	return buildDef(ks[0], signature, opts)
}

// CompileNamed compiles one kernel from a source module that may define
// several.
func CompileNamed(src, name, signature string) (*kernels.Def, error) {
	frontendRuns.Add(1)
	ks, err := Parse(src)
	if err != nil {
		return nil, err
	}
	for _, k := range ks {
		if k.Name == name {
			return buildDef(k, signature, EngineOpts{})
		}
	}
	return nil, fmt.Errorf("minicuda: kernel %q not found in source", name)
}

// CompileAll compiles every kernel in a source module.
func CompileAll(src string) ([]*kernels.Def, error) {
	frontendRuns.Add(1)
	ks, err := Parse(src)
	if err != nil {
		return nil, err
	}
	defs := make([]*kernels.Def, len(ks))
	for i, k := range ks {
		d, err := buildDef(k, "", EngineOpts{})
		if err != nil {
			return nil, err
		}
		defs[i] = d
	}
	return defs, nil
}

// buildDef assembles the kernels.Def from the parsed kernel, its static
// analysis, and — engine permitting — its lowered program.
func buildDef(k *Kernel, signature string, opts EngineOpts) (*kernels.Def, error) {
	sig := signatureOf(k)
	if signature != "" {
		declared, err := kernels.ParseSignature(signature)
		if err != nil {
			return nil, err
		}
		if err := matchSignatures(k, declared); err != nil {
			return nil, err
		}
		sig = declared
	}

	an := analyze(k)
	kcopy := k // capture

	var prog *program
	if opts.Engine != EngineInterp {
		p, perr := lowerProgram(k)
		if perr != nil {
			if opts.Engine == EngineCompiled {
				return nil, perr
			}
			// EngineAuto: the reference interpreter handles the
			// dynamic-scoping corner the lowerer bailed on.
		} else {
			prog = p
		}
	}

	// scalarOf resolves a scalar parameter's runtime value from argument
	// metadata, for loop-bound-dependent cost estimates.
	scalarOf := func(meta []kernels.ArgMeta) func(string) (float64, bool) {
		return func(name string) (float64, bool) {
			for i, p := range kcopy.Params {
				if p.Name == name && !p.Pointer && i < len(meta) {
					return meta[i].Scalar, true
				}
			}
			return 0, false
		}
	}

	def := &kernels.Def{
		Name: k.Name,
		Sig:  sig,
		CostOfLaunch: func(grid, block int, meta []kernels.ArgMeta) kernels.Cost {
			threads := int64(grid) * int64(block)
			if threads < 1 {
				threads = 1
			}
			return kernels.Cost{
				Elements:      threads,
				OpsPerElement: an.ops(scalarOf(meta)),
			}
		},
		AccessOf: func(meta []kernels.ArgMeta) []memmodel.Access {
			return an.access
		},
		RunLaunch: func(grid, block int, args []kernels.Arg) error {
			if prog != nil {
				return prog.launch(grid, block, args, opts)
			}
			return runLaunch(kcopy, grid, block, args, opts.MaxThreadSteps)
		},
	}
	// A non-nil check before assigning keeps Fusion a clean nil interface
	// for non-elementwise kernels (a typed nil would read as "fusable").
	if ew := ElementwiseOf(k); ew != nil {
		def.Fusion = ew
	}
	return def, nil
}

// signatureOf derives the NFI signature from the parameter list.
func signatureOf(k *Kernel) kernels.Signature {
	var sig kernels.Signature
	for _, p := range k.Params {
		sig.Params = append(sig.Params, kernels.Param{
			Name:    p.Name,
			Kind:    p.Kind,
			Pointer: p.Pointer,
			Const:   p.Const,
		})
	}
	return sig
}

// matchSignatures verifies a declared NFI signature against the kernel's
// parameter list.
func matchSignatures(k *Kernel, declared kernels.Signature) error {
	if len(declared.Params) != len(k.Params) {
		return fmt.Errorf("minicuda: %s has %d parameters, signature declares %d",
			k.Name, len(k.Params), len(declared.Params))
	}
	for i, dp := range declared.Params {
		kp := k.Params[i]
		if dp.Pointer != kp.Pointer {
			return fmt.Errorf("minicuda: %s parameter %d pointer-ness mismatch", k.Name, i)
		}
		if dp.Pointer && dp.Kind != kp.Kind {
			return fmt.Errorf("minicuda: %s parameter %d kind mismatch: source %v, signature %v",
				k.Name, i, kp.Kind, dp.Kind)
		}
	}
	return nil
}
