package minicuda

import (
	"fmt"

	"grout/internal/kernels"
	"grout/internal/memmodel"
)

// Compile parses a kernel source string and returns the kernels.Def for
// the (single) kernel it contains, optionally checked against an NFI
// signature string ("pointer float, const pointer float, sint32"). An
// empty signature accepts the parameter list as written — paper Listing 1
// passes both the source and the signature to buildkernel.
func Compile(src, signature string) (*kernels.Def, error) {
	ks, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(ks) != 1 {
		return nil, fmt.Errorf("minicuda: source contains %d kernels; name one with CompileNamed", len(ks))
	}
	return buildDef(ks[0], signature)
}

// CompileNamed compiles one kernel from a source module that may define
// several.
func CompileNamed(src, name, signature string) (*kernels.Def, error) {
	ks, err := Parse(src)
	if err != nil {
		return nil, err
	}
	for _, k := range ks {
		if k.Name == name {
			return buildDef(k, signature)
		}
	}
	return nil, fmt.Errorf("minicuda: kernel %q not found in source", name)
}

// CompileAll compiles every kernel in a source module.
func CompileAll(src string) ([]*kernels.Def, error) {
	ks, err := Parse(src)
	if err != nil {
		return nil, err
	}
	defs := make([]*kernels.Def, len(ks))
	for i, k := range ks {
		d, err := buildDef(k, "")
		if err != nil {
			return nil, err
		}
		defs[i] = d
	}
	return defs, nil
}

// buildDef assembles the kernels.Def from the parsed kernel and its
// static analysis.
func buildDef(k *Kernel, signature string) (*kernels.Def, error) {
	sig := signatureOf(k)
	if signature != "" {
		declared, err := kernels.ParseSignature(signature)
		if err != nil {
			return nil, err
		}
		if err := matchSignatures(k, declared); err != nil {
			return nil, err
		}
		sig = declared
	}

	an := analyze(k)
	kcopy := k // capture

	// scalarOf resolves a scalar parameter's runtime value from argument
	// metadata, for loop-bound-dependent cost estimates.
	scalarOf := func(meta []kernels.ArgMeta) func(string) (float64, bool) {
		return func(name string) (float64, bool) {
			for i, p := range kcopy.Params {
				if p.Name == name && !p.Pointer && i < len(meta) {
					return meta[i].Scalar, true
				}
			}
			return 0, false
		}
	}

	return &kernels.Def{
		Name: k.Name,
		Sig:  sig,
		CostOfLaunch: func(grid, block int, meta []kernels.ArgMeta) kernels.Cost {
			threads := int64(grid) * int64(block)
			if threads < 1 {
				threads = 1
			}
			return kernels.Cost{
				Elements:      threads,
				OpsPerElement: an.ops(scalarOf(meta)),
			}
		},
		AccessOf: func(meta []kernels.ArgMeta) []memmodel.Access {
			return an.access
		},
		RunLaunch: func(grid, block int, args []kernels.Arg) error {
			return runLaunch(kcopy, grid, block, args)
		},
	}, nil
}

// signatureOf derives the NFI signature from the parameter list.
func signatureOf(k *Kernel) kernels.Signature {
	var sig kernels.Signature
	for _, p := range k.Params {
		sig.Params = append(sig.Params, kernels.Param{
			Name:    p.Name,
			Kind:    p.Kind,
			Pointer: p.Pointer,
			Const:   p.Const,
		})
	}
	return sig
}

// matchSignatures verifies a declared NFI signature against the kernel's
// parameter list.
func matchSignatures(k *Kernel, declared kernels.Signature) error {
	if len(declared.Params) != len(k.Params) {
		return fmt.Errorf("minicuda: %s has %d parameters, signature declares %d",
			k.Name, len(k.Params), len(declared.Params))
	}
	for i, dp := range declared.Params {
		kp := k.Params[i]
		if dp.Pointer != kp.Pointer {
			return fmt.Errorf("minicuda: %s parameter %d pointer-ness mismatch", k.Name, i)
		}
		if dp.Pointer && dp.Kind != kp.Kind {
			return fmt.Errorf("minicuda: %s parameter %d kind mismatch: source %v, signature %v",
				k.Name, i, kp.Kind, dp.Kind)
		}
	}
	return nil
}
