// Package minicuda is the reproduction's stand-in for NVRTC: it compiles
// kernels written in a restricted CUDA-C dialect from source strings, as
// GrOUT's buildkernel API does (paper Listing 1). A compiled kernel is a
// kernels.Def: it carries
//
//   - a numeric implementation — the kernel body interpreted per thread
//     over the launch grid, so examples compute real results;
//   - a static access-pattern analysis — per pointer parameter, the access
//     mode (read/write) and page-visit pattern (sequential, strided,
//     random, broadcast) the UVM cost model needs;
//   - an operation-count estimate for the compute-time model.
//
// The dialect supports the kernel style of the GrCUDA benchmark suite:
// __global__ void functions; float/double/int/long scalars and pointers
// (with const); threadIdx/blockIdx/blockDim/gridDim builtins (.x/.y/.z);
// if/else, for, while, return; arithmetic, comparison and logical
// operators; calls to a set of math builtins plus atomicAdd. Shared
// memory, synchronization and dynamic parallelism are out of scope.
package minicuda

import "fmt"

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // operators and punctuation, Lit holds the spelling
)

var tokKindNames = [...]string{"EOF", "identifier", "number", "string", "punctuation"}

func (k tokKind) String() string {
	if int(k) < len(tokKindNames) {
		return tokKindNames[k]
	}
	return fmt.Sprintf("tokKind(%d)", int(k))
}

// token is one lexical element.
type token struct {
	Kind tokKind
	Lit  string
	Pos  Pos
}

// Pos is a source position for error reporting.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a compilation error with its source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("minicuda: %s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
