package minicuda

import (
	"fmt"
	"math"

	"grout/internal/memmodel"
)

// This file lowers a checked kernel AST into a slot-addressed program of
// Go closures: every local variable (and scalar parameter) is resolved to
// a dense register-file index at compile time, math builtins become direct
// function values, launch-constant subexpressions (threadIdx.y, blockDim.x
// products, numeric arithmetic) are folded, and the canonical global-id
// expression blockIdx.x*blockDim.x+threadIdx.x compiles to a single
// precomputed register read. The result executes the same dynamic
// semantics as the reference tree-walker in interp.go — statement-for-
// statement step accounting, identical error messages, identical
// evaluation order — but without per-access map lookups or AST dispatch.
//
// Lowering is deliberately partial: the dialect's dynamic-scoping corner
// cases (a kernel-body declaration shadowing a parameter, a read of a
// variable that is declared somewhere but not on every path to the read)
// cannot be expressed with one static slot per name, so the lowerer bails
// and the kernel Def falls back to the interpreter. Real kernels never hit
// these; the differential fuzz target keeps both engines honest.

// exprFn evaluates a lowered expression. Runtime errors are raised by
// panicking with a *Error; the launch driver recovers them.
type exprFn func(*env) value

// stmtFn executes a lowered statement and reports control flow.
type stmtFn func(*env) ctrl

// etype is what is statically known about an expression's int-ness.
type etype int

const (
	tDyn   etype = iota // depends on runtime values
	tInt                // always isInt
	tFloat              // never isInt
)

func kindType(k memmodel.ElemKind) etype {
	if k == memmodel.Int32 || k == memmodel.Int64 {
		return tInt
	}
	return tFloat
}

func kindIsInt(k memmodel.ElemKind) bool {
	return k == memmodel.Int32 || k == memmodel.Int64
}

// cexpr is a lowered expression with its static summary.
type cexpr struct {
	fn  exprFn
	typ etype
	// cv is non-nil when the expression is a compile-time constant (fn
	// still works and returns *cv).
	cv *value
	// ff, when set, evaluates the expression with side effects identical
	// to fn and returns fn(e).f without boxing a value. Stores, indexing,
	// conditions and float arithmetic only consume the f field, so this
	// rail carries most of a numeric kernel's inner loop.
	ff func(*env) float64
	// bf likewise returns fn(e).truthy().
	bf func(*env) bool
	// slot, when isSlot, marks the expression as a pure read of
	// e.regs[e.base+slot] (a local or scalar parameter). No expression
	// can mutate a register of the current frame — assignment is a
	// statement and __device__ calls get their own frame — so rail
	// constructors may fuse such operands into the parent closure
	// regardless of evaluation order.
	slot   int
	isSlot bool
}

// floatFn returns the cheapest evaluator of the expression's f field.
func (c cexpr) floatFn() func(*env) float64 {
	if c.ff != nil {
		return c.ff
	}
	fn := c.fn
	return func(e *env) float64 { return fn(e).f }
}

// boolFn returns the cheapest evaluator of the expression's truthiness.
func (c cexpr) boolFn() func(*env) bool {
	if c.bf != nil {
		return c.bf
	}
	if c.ff != nil {
		ff := c.ff
		return func(e *env) bool { return ff(e) != 0 }
	}
	fn := c.fn
	return func(e *env) bool { return fn(e).truthy() }
}

// wrapFloat boxes a float rail as the canonical fn (result is never int).
func wrapFloat(ff func(*env) float64) exprFn {
	return func(e *env) value { return value{f: ff(e)} }
}

// wrapInt boxes a float rail whose result is statically int-valued.
func wrapInt(ff func(*env) float64) exprFn {
	return func(e *env) value { return value{f: ff(e), isInt: true} }
}

func constExpr(v value) cexpr {
	t := tFloat
	if v.isInt {
		t = tInt
	}
	f, b := v.f, v.truthy()
	return cexpr{
		fn:  func(*env) value { return v },
		typ: t,
		cv:  &v,
		ff:  func(*env) float64 { return f },
		bf:  func(*env) bool { return b },
	}
}

// errExpr always raises err when evaluated — used for shapes the checker
// reports lazily at runtime (unknown names, arity mismatches), preserving
// the interpreter's behaviour of failing only if the expression executes.
func errExpr(err *Error) cexpr {
	return cexpr{fn: func(*env) value { panic(err) }}
}

// cfunc is a lowered __device__ helper.
type cfunc struct {
	name   string
	ret    memmodel.ElemKind
	nslots int
	// paramSlots maps argument position to frame slot. Duplicate
	// parameter names share one slot, so this is not always the
	// identity: the last argument written wins, as in the
	// interpreter's per-frame variable map.
	paramSlots []int
	body       []stmtFn
}

// program is a fully lowered kernel ready for (parallel) execution.
type program struct {
	k      *Kernel
	nslots int
	body   []stmtFn
	// scalarSlot[i] is the register slot of scalar parameter i, -1 for
	// pointer parameters; scalarInt mirrors the parameter kind.
	scalarSlot []int
	scalarInt  []bool
	// parallelSafe: block partitions may execute concurrently (every
	// pointer parameter is read-only, touched only at the thread's own
	// global id, or touched only through atomicAdd).
	parallelSafe bool
	// hasAtomic / atomicParams / atomicValInt drive the launch-time
	// decision of whether parallel atomicAdd reordering can change the
	// result (float accumulation, or fractional adds into int buffers).
	hasAtomic    bool
	atomicParams []int
	atomicValInt bool
}

// bailErr aborts lowering; the Def falls back to the interpreter.
type bailErr struct{ reason string }

// lowerer holds per-module lowering state.
type lowerer struct {
	k    *Kernel
	fns  map[string]*cfunc
	prog *program
}

// lowerProgram compiles a kernel to a program, or reports why it must run
// on the reference interpreter.
func lowerProgram(k *Kernel) (p *program, err error) {
	defer func() {
		if r := recover(); r != nil {
			if b, ok := r.(bailErr); ok {
				p, err = nil, fmt.Errorf("minicuda: %s: not compilable: %s", k.Name, b.reason)
				return
			}
			panic(r)
		}
	}()
	lw := &lowerer{k: k, fns: make(map[string]*cfunc)}
	lw.prog = &program{k: k, atomicValInt: true}

	pre := prepass(k.Body)
	for _, prm := range k.Params {
		if len(pre.declKinds[prm.Name]) > 0 {
			panic(bailErr{fmt.Sprintf("declaration shadows parameter %s", prm.Name)})
		}
	}

	sc := &scope{
		lw:       lw,
		kernel:   true,
		pre:      pre,
		slots:    make(map[string]int),
		declared: make(map[string]bool),
		typs:     pre.slotTypes(nil),
		definite: make(map[string]bool),
		paramIdx: make(map[string]int, len(k.Params)),
		consts:   make(map[string]value),
	}
	for name := range pre.declKinds {
		sc.declared[name] = true
	}
	lw.prog.scalarSlot = make([]int, len(k.Params))
	lw.prog.scalarInt = make([]bool, len(k.Params))
	for i, prm := range k.Params {
		sc.paramIdx[prm.Name] = i
		lw.prog.scalarSlot[i] = -1
		lw.prog.scalarInt[i] = kindIsInt(prm.Kind)
		if !prm.Pointer {
			lw.prog.scalarSlot[i] = sc.slotFor(prm.Name)
		}
	}

	lw.prog.body = sc.lowerStmts(k.Body)
	lw.prog.nslots = sc.nslots
	lw.prog.parallelSafe = analyzeParallel(k, pre.gidAliases())
	return lw.prog, nil
}

// ---- pre-pass ----

// preInfo summarizes one function body: every declaration (by name and
// kind) and every store to a plain identifier, anywhere in the body.
type preInfo struct {
	declKinds map[string][]memmodel.ElemKind
	stores    map[string]int
	// gidDecl marks names whose (sole) declaration initializer is the
	// canonical global-id expression.
	gidDecl map[string]bool
}

func prepass(stmts []Stmt) *preInfo {
	pre := &preInfo{
		declKinds: make(map[string][]memmodel.ElemKind),
		stores:    make(map[string]int),
		gidDecl:   make(map[string]bool),
	}
	pre.walkStmts(stmts)
	return pre
}

func (pre *preInfo) walkStmts(stmts []Stmt) {
	for _, s := range stmts {
		pre.walkStmt(s)
	}
}

func (pre *preInfo) walkStmt(s Stmt) {
	switch st := s.(type) {
	case *DeclStmt:
		pre.declKinds[st.Name] = append(pre.declKinds[st.Name], st.Kind)
		if st.Init != nil && isGidExpr(st.Init) {
			pre.gidDecl[st.Name] = true
		}
	case *AssignStmt:
		if id, ok := st.Target.(*IdentExpr); ok {
			pre.stores[id.Name]++
		}
	case *IncStmt:
		if id, ok := st.Target.(*IdentExpr); ok {
			pre.stores[id.Name]++
		}
	case *IfStmt:
		pre.walkStmts(st.Then)
		pre.walkStmts(st.Else)
	case *ForStmt:
		if st.Init != nil {
			pre.walkStmt(st.Init)
		}
		if st.Post != nil {
			pre.walkStmt(st.Post)
		}
		pre.walkStmts(st.Body)
	case *WhileStmt:
		pre.walkStmts(st.Body)
	}
}

// slotTypes derives each name's static int-ness: assignments preserve the
// declared int-ness (store semantics), so a slot's type is static exactly
// when every declaration of the name agrees. params seeds device-function
// parameters into the map.
func (pre *preInfo) slotTypes(params []Param) map[string]etype {
	typs := make(map[string]etype)
	merge := func(name string, t etype) {
		if cur, ok := typs[name]; ok && cur != t {
			typs[name] = tDyn
			return
		}
		typs[name] = t
	}
	for _, p := range params {
		merge(p.Name, kindType(p.Kind))
	}
	for name, kinds := range pre.declKinds {
		for _, k := range kinds {
			merge(name, kindType(k))
		}
	}
	return typs
}

// gidAliases returns the locals that provably hold the thread's global id:
// declared exactly once with the canonical initializer, never reassigned,
// and of a kind that represents every id up to the launch limit exactly
// (float32 collapses distinct ids above 2^24, so it does not qualify).
func (pre *preInfo) gidAliases() map[string]bool {
	out := make(map[string]bool)
	for name := range pre.gidDecl {
		if len(pre.declKinds[name]) == 1 && pre.stores[name] == 0 &&
			pre.declKinds[name][0] != memmodel.Float32 {
			out[name] = true
		}
	}
	return out
}

// isGidExpr reports whether e is blockIdx.x*blockDim.x + threadIdx.x
// (factors and addends in either order).
func isGidExpr(e Expr) bool {
	b, ok := e.(*BinaryExpr)
	if !ok || b.Op != "+" {
		return false
	}
	return (isBlockBaseX(b.L) && isMemberX(b.R, "threadIdx")) ||
		(isBlockBaseX(b.R) && isMemberX(b.L, "threadIdx"))
}

func isMemberX(e Expr, base string) bool {
	m, ok := e.(*MemberExpr)
	return ok && m.Base == base && m.Field == "x"
}

func isBlockBaseX(e Expr) bool {
	b, ok := e.(*BinaryExpr)
	if !ok || b.Op != "*" {
		return false
	}
	return (isMemberX(b.L, "blockIdx") && isMemberX(b.R, "blockDim")) ||
		(isMemberX(b.L, "blockDim") && isMemberX(b.R, "blockIdx"))
}

// ---- scope ----

// scope is the per-function lowering context. definite tracks which names
// are declared on every path to the current program point; reading a name
// that is declared somewhere but not definitely is a dynamic-scoping
// corner the slot model cannot express, so it bails.
type scope struct {
	lw       *lowerer
	kernel   bool
	pre      *preInfo
	slots    map[string]int
	nslots   int
	declared map[string]bool
	typs     map[string]etype
	definite map[string]bool
	paramIdx map[string]int // kernel scope only
	// consts holds locals propagated as compile-time constants: declared
	// exactly once, never reassigned, with a constant initializer. Their
	// declarations still execute (one budget step) but store nothing, and
	// every dominated read folds.
	consts map[string]value
}

func (sc *scope) slotFor(name string) int {
	if s, ok := sc.slots[name]; ok {
		return s
	}
	s := sc.nslots
	sc.slots[name] = s
	sc.nslots++
	return s
}

func copySet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func intersect(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a))
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// ---- statements ----

func (sc *scope) lowerStmts(stmts []Stmt) []stmtFn {
	fns := make([]stmtFn, len(stmts))
	for i, s := range stmts {
		fns[i] = sc.lowerStmt(s)
	}
	return fns
}

func runStmts(e *env, fns []stmtFn) ctrl {
	for _, fn := range fns {
		if c := fn(e); c != ctrlNone {
			return c
		}
	}
	return ctrlNone
}

func (sc *scope) lowerStmt(s Stmt) stmtFn {
	switch st := s.(type) {
	case *DeclStmt:
		pos, kind := st.Pos, st.Kind
		if st.Init != nil {
			init := sc.lowerExpr(st.Init)
			// Constant propagation: a local declared exactly once, never
			// reassigned, with a constant initializer holds the same value
			// at every dominated read. The declaration still costs its
			// budget step; the name never needs a slot. Names already
			// definite here (a device-function body redeclaring its own
			// parameter) are excluded — reads textually before the
			// declaration could observe the slot on a later loop
			// iteration.
			if init.cv != nil && !sc.definite[st.Name] &&
				len(sc.pre.declKinds[st.Name]) == 1 && sc.pre.stores[st.Name] == 0 {
				sc.consts[st.Name] = coerce(*init.cv, kind)
				sc.definite[st.Name] = true
				return func(e *env) ctrl {
					e.step(pos)
					return ctrlNone
				}
			}
			slot := sc.slotFor(st.Name)
			sc.definite[st.Name] = true
			vf := init.floatFn()
			// coerce reads only the f field, so each kind gets a direct
			// rail-fed store.
			switch kind {
			case memmodel.Int32:
				return func(e *env) ctrl {
					e.step(pos)
					e.regs[e.base+slot] = value{f: float64(int32(vf(e))), isInt: true}
					return ctrlNone
				}
			case memmodel.Int64:
				return func(e *env) ctrl {
					e.step(pos)
					e.regs[e.base+slot] = value{f: float64(int64(vf(e))), isInt: true}
					return ctrlNone
				}
			case memmodel.Float32:
				return func(e *env) ctrl {
					e.step(pos)
					e.regs[e.base+slot] = value{f: float64(float32(vf(e)))}
					return ctrlNone
				}
			default:
				return func(e *env) ctrl {
					e.step(pos)
					e.regs[e.base+slot] = value{f: vf(e)}
					return ctrlNone
				}
			}
		}
		slot := sc.slotFor(st.Name)
		sc.definite[st.Name] = true
		zero := value{isInt: kindIsInt(kind)}
		return func(e *env) ctrl {
			e.step(pos)
			e.regs[e.base+slot] = zero
			return ctrlNone
		}

	case *AssignStmt:
		pos := st.Pos
		var valFn func(*env) float64
		if st.Op == "=" {
			valFn = sc.lowerExpr(st.Value).floatFn()
		} else {
			// Compound assignment: the interpreter evaluates the value,
			// then reads the target (index expressions are evaluated
			// again by the store), then applies the base operator.
			rfn := sc.lowerExpr(st.Value).fn
			tfn := sc.lowerExpr(st.Target).fn
			op := st.Op[:1]
			valFn = func(e *env) float64 {
				r := rfn(e)
				cur := tfn(e)
				v, err := binop(op, cur, r, pos)
				if err != nil {
					panic(err)
				}
				return v.f
			}
		}
		// Fused fast paths: the store target is re-resolved inline so the
		// whole statement is one closure. Semantics match the generic
		// path exactly — value first, then the index (compound targets
		// evaluate their index twice, once in valFn's target read and
		// once here, as in the interpreter).
		if id, ok := st.Target.(*IdentExpr); ok && sc.definite[id.Name] {
			if _, isConst := sc.consts[id.Name]; !isConst {
				slot := sc.slotFor(id.Name)
				switch sc.typs[id.Name] {
				case tInt:
					return func(e *env) ctrl {
						e.step(pos)
						e.regs[e.base+slot] = value{f: float64(int64(valFn(e))), isInt: true}
						return ctrlNone
					}
				case tFloat:
					return func(e *env) ctrl {
						e.step(pos)
						e.regs[e.base+slot] = value{f: valFn(e)}
						return ctrlNone
					}
				}
			}
		}
		if ix, ok := st.Target.(*IndexExpr); ok && sc.kernel {
			if pi, pok := sc.paramIdx[ix.Base]; pok && sc.lw.k.Params[pi].Pointer {
				idxFn := sc.indexOf(ix.Idx)
				base, ipos := ix.Base, ix.Pos
				return func(e *env) ctrl {
					e.step(pos)
					f := valFn(e)
					idx := idxFn(e)
					buf := e.args[pi].Buf
					if idx < 0 || idx >= buf.Len() {
						panic(errf(ipos, "index %d out of range for %s (length %d)", idx, base, buf.Len()))
					}
					buf.Set(idx, f)
					return ctrlNone
				}
			}
		}
		store := sc.lowerStore(st.Target)
		return func(e *env) ctrl {
			e.step(pos)
			store(e, valFn(e))
			return ctrlNone
		}

	case *IncStmt:
		pos := st.Pos
		d := 1.0
		if st.Decr {
			d = -1
		}
		if id, ok := st.Target.(*IdentExpr); ok && sc.definite[id.Name] {
			if _, isConst := sc.consts[id.Name]; !isConst {
				slot := sc.slotFor(id.Name)
				switch sc.typs[id.Name] {
				case tInt:
					return func(e *env) ctrl {
						e.step(pos)
						r := &e.regs[e.base+slot]
						r.f = float64(int64(r.f + d))
						return ctrlNone
					}
				case tFloat:
					return func(e *env) ctrl {
						e.step(pos)
						e.regs[e.base+slot].f += d
						return ctrlNone
					}
				}
			}
		}
		tfn := sc.lowerExpr(st.Target).floatFn()
		store := sc.lowerStore(st.Target)
		return func(e *env) ctrl {
			e.step(pos)
			store(e, tfn(e)+d)
			return ctrlNone
		}

	case *IfStmt:
		pos := st.Pos
		cfn := sc.lowerExpr(st.Cond).boolFn()
		base := sc.definite
		sc.definite = copySet(base)
		thenFns := sc.lowerStmts(st.Then)
		thenDef := sc.definite
		sc.definite = copySet(base)
		elseFns := sc.lowerStmts(st.Else)
		sc.definite = intersect(thenDef, sc.definite)
		return func(e *env) ctrl {
			e.step(pos)
			if cfn(e) {
				return runStmts(e, thenFns)
			}
			return runStmts(e, elseFns)
		}

	case *ForStmt:
		pos := st.Pos
		var initFn stmtFn
		if st.Init != nil {
			initFn = sc.lowerStmt(st.Init)
		}
		// The condition and post-statement can run with only a prefix of
		// the body executed (continue, zero iterations), so they — and
		// everything after the loop — see only the definite set from
		// before the body.
		condSet := copySet(sc.definite)
		cfn := sc.lowerExpr(st.Cond).boolFn()
		sc.definite = copySet(condSet)
		bodyFns := sc.lowerStmts(st.Body)
		var postFn stmtFn
		if st.Post != nil {
			sc.definite = copySet(condSet)
			postFn = sc.lowerStmt(st.Post)
		}
		sc.definite = condSet
		return func(e *env) ctrl {
			if initFn != nil {
				if c := initFn(e); c != ctrlNone {
					return c
				}
			}
			for {
				e.step(pos)
				if !cfn(e) {
					return ctrlNone
				}
				c := runStmts(e, bodyFns)
				if c == ctrlReturn {
					return ctrlReturn
				}
				if c == ctrlBreak {
					return ctrlNone
				}
				if postFn != nil {
					if c := postFn(e); c != ctrlNone {
						return c
					}
				}
			}
		}

	case *WhileStmt:
		pos := st.Pos
		condSet := copySet(sc.definite)
		cfn := sc.lowerExpr(st.Cond).boolFn()
		sc.definite = copySet(condSet)
		bodyFns := sc.lowerStmts(st.Body)
		sc.definite = condSet
		return func(e *env) ctrl {
			for {
				e.step(pos)
				if !cfn(e) {
					return ctrlNone
				}
				c := runStmts(e, bodyFns)
				if c == ctrlReturn {
					return ctrlReturn
				}
				if c == ctrlBreak {
					return ctrlNone
				}
			}
		}

	case *BreakStmt:
		return func(*env) ctrl { return ctrlBreak }

	case *ContinueStmt:
		return func(*env) ctrl { return ctrlContinue }

	case *ReturnStmt:
		pos := st.Pos
		if sc.kernel {
			if st.Value != nil {
				err := errf(pos, "kernels return void")
				return func(*env) ctrl { panic(err) }
			}
			return func(*env) ctrl { return ctrlReturn }
		}
		if st.Value == nil {
			err := errf(pos, "__device__ function must return a value")
			return func(*env) ctrl { panic(err) }
		}
		vfn := sc.lowerExpr(st.Value).fn
		return func(e *env) ctrl {
			e.retVal = vfn(e)
			return ctrlReturn
		}

	case *ExprStmt:
		pos := st.Pos
		fn := sc.lowerExpr(st.X).fn
		return func(e *env) ctrl {
			e.step(pos)
			fn(e)
			return ctrlNone
		}
	}
	panic(bailErr{fmt.Sprintf("unknown statement %T", s)})
}

// lowerStore compiles the write half of an assignment. The returned
// function receives the already-evaluated value, preserving the
// interpreter's evaluate-value-first ordering (including for targets that
// turn out to be invalid at runtime). Every store sink — local slots,
// scalar-parameter coercion, buffer Set — consumes only the value's f
// field, so stores ride the unboxed float rail.
func (sc *scope) lowerStore(target Expr) func(*env, float64) {
	switch t := target.(type) {
	case *IdentExpr:
		name, pos := t.Name, t.Pos
		if sc.definite[name] {
			if _, isConst := sc.consts[name]; isConst {
				// Unreachable by construction (const-propagated locals
				// have zero stores); bail defensively rather than
				// miscompile.
				panic(bailErr{fmt.Sprintf("store to constant local %s", name)})
			}
			slot := sc.slotFor(name)
			switch sc.typs[name] {
			case tInt:
				return func(e *env, f float64) {
					e.regs[e.base+slot] = value{f: float64(int64(f)), isInt: true}
				}
			case tFloat:
				return func(e *env, f float64) {
					e.regs[e.base+slot] = value{f: f}
				}
			default:
				return func(e *env, f float64) {
					cur := &e.regs[e.base+slot]
					if cur.isInt {
						cur.f = float64(int64(f))
					} else {
						cur.f = f
					}
				}
			}
		}
		if sc.declared[name] {
			panic(bailErr{fmt.Sprintf("store to %s before its declaration dominates", name)})
		}
		if sc.kernel {
			if i, ok := sc.paramIdx[name]; ok {
				prm := sc.lw.k.Params[i]
				if prm.Pointer {
					err := errf(pos, "cannot assign to pointer parameter %s", name)
					return func(*env, float64) { panic(err) }
				}
				slot, kind := sc.lw.prog.scalarSlot[i], prm.Kind
				return func(e *env, f float64) {
					e.regs[e.base+slot] = coerce(value{f: f}, kind)
				}
			}
		}
		err := errf(pos, "assignment to undeclared variable %s", name)
		return func(*env, float64) { panic(err) }

	case *IndexExpr:
		pi, ok := -1, false
		if sc.kernel {
			pi, ok = sc.paramIdx[t.Base]
		}
		if !ok || !sc.lw.k.Params[pi].Pointer {
			err := errf(t.Pos, "%s is not a pointer parameter", t.Base)
			return func(*env, float64) { panic(err) }
		}
		base, pos := t.Base, t.Pos
		idxFn := sc.indexOf(t.Idx)
		return func(e *env, f float64) {
			idx := idxFn(e)
			buf := e.args[pi].Buf
			if idx < 0 || idx >= buf.Len() {
				panic(errf(pos, "index %d out of range for %s (length %d)", idx, base, buf.Len()))
			}
			buf.Set(idx, f)
		}
	}
	panic(bailErr{fmt.Sprintf("bad assignment target %T", target)})
}

// ---- expressions ----

// indexOf compiles an index expression to a direct int function. The
// overwhelmingly common index — a plain local like the i of x[i] — is
// fused into the parent closure (one register read) instead of paying a
// closure call per buffer access. Identifier reads have no side effects,
// so fusion cannot reorder anything.
func (sc *scope) indexOf(x Expr) func(*env) int {
	if id, ok := x.(*IdentExpr); ok && sc.definite[id.Name] {
		if _, isConst := sc.consts[id.Name]; !isConst {
			slot := sc.slotFor(id.Name)
			return func(e *env) int { return int(e.regs[e.base+slot].f) }
		}
	}
	f := sc.lowerExpr(x).floatFn()
	return func(e *env) int { return int(f(e)) }
}

func (sc *scope) lowerExpr(e Expr) cexpr {
	switch x := e.(type) {
	case *NumberExpr:
		return constExpr(value{f: x.Val, isInt: x.IsInt})

	case *IdentExpr:
		name := x.Name
		if sc.definite[name] {
			if cv, ok := sc.consts[name]; ok {
				return constExpr(cv)
			}
			slot := sc.slotFor(name)
			return cexpr{
				fn:   func(e *env) value { return e.regs[e.base+slot] },
				typ:  sc.typs[name],
				ff:   func(e *env) float64 { return e.regs[e.base+slot].f },
				slot: slot, isSlot: true,
			}
		}
		if sc.declared[name] {
			panic(bailErr{fmt.Sprintf("read of %s before its declaration dominates", name)})
		}
		if sc.kernel {
			if i, ok := sc.paramIdx[name]; ok {
				prm := sc.lw.k.Params[i]
				if prm.Pointer {
					return errExpr(errf(x.Pos, "pointer parameter %s used as a scalar", name))
				}
				slot := sc.lw.prog.scalarSlot[i]
				return cexpr{
					fn:   func(e *env) value { return e.regs[e.base+slot] },
					typ:  kindType(prm.Kind),
					ff:   func(e *env) float64 { return e.regs[e.base+slot].f },
					slot: slot, isSlot: true,
				}
			}
		}
		return errExpr(errf(x.Pos, "undefined variable %s", name))

	case *IndexExpr:
		pi, ok := -1, false
		if sc.kernel {
			pi, ok = sc.paramIdx[x.Base]
		}
		if !ok || !sc.lw.k.Params[pi].Pointer {
			return errExpr(errf(x.Pos, "%s is not a pointer parameter", x.Base))
		}
		base, pos := x.Base, x.Pos
		idxFn := sc.indexOf(x.Idx)
		// The element's int-ness follows the buffer actually passed at
		// launch, as in the interpreter, so the static type is unknown —
		// but the f field is the element either way, so the float rail
		// carries reads that feed float contexts without boxing.
		return cexpr{
			fn: func(e *env) value {
				idx := idxFn(e)
				buf := e.args[pi].Buf
				if idx < 0 || idx >= buf.Len() {
					panic(errf(pos, "index %d out of range for %s (length %d)", idx, base, buf.Len()))
				}
				return value{f: buf.At(idx), isInt: kindIsInt(buf.Kind)}
			},
			ff: func(e *env) float64 {
				idx := idxFn(e)
				buf := e.args[pi].Buf
				if idx < 0 || idx >= buf.Len() {
					panic(errf(pos, "index %d out of range for %s (length %d)", idx, base, buf.Len()))
				}
				return buf.At(idx)
			},
		}

	case *MemberExpr:
		dim := 0
		switch x.Field {
		case "y":
			dim = 1
		case "z":
			dim = 2
		}
		switch x.Base {
		case "threadIdx":
			if dim > 0 {
				return constExpr(intVal(0))
			}
			return cexpr{fn: func(e *env) value { return value{f: float64(e.tid), isInt: true} }, typ: tInt,
				ff: func(e *env) float64 { return float64(e.tid) }}
		case "blockIdx":
			if dim > 0 {
				return constExpr(intVal(0))
			}
			return cexpr{fn: func(e *env) value { return value{f: float64(e.bid), isInt: true} }, typ: tInt,
				ff: func(e *env) float64 { return float64(e.bid) }}
		case "blockDim":
			if dim > 0 {
				return constExpr(intVal(1))
			}
			return cexpr{fn: func(e *env) value { return value{f: float64(e.bdim), isInt: true} }, typ: tInt,
				ff: func(e *env) float64 { return float64(e.bdim) }}
		case "gridDim":
			if dim > 0 {
				return constExpr(intVal(1))
			}
			return cexpr{fn: func(e *env) value { return value{f: float64(e.gdim), isInt: true} }, typ: tInt,
				ff: func(e *env) float64 { return float64(e.gdim) }}
		}
		return errExpr(errf(x.Pos, "unknown builtin %s", x.Base))

	case *BinaryExpr:
		if x.Op == "&&" || x.Op == "||" {
			return sc.lowerLogic(x)
		}
		if isGidExpr(x) {
			return cexpr{fn: func(e *env) value { return value{f: e.gidf, isInt: true} }, typ: tInt,
				ff: func(e *env) float64 { return e.gidf }}
		}
		l := sc.lowerExpr(x.L)
		r := sc.lowerExpr(x.R)
		return lowerBinop(x.Op, l, r, x.Pos)

	case *UnaryExpr:
		v := sc.lowerExpr(x.X)
		switch x.Op {
		case "-":
			if v.cv != nil {
				return constExpr(value{f: -v.cv.f, isInt: v.cv.isInt})
			}
			switch v.typ {
			case tFloat:
				vf := v.floatFn()
				neg := func(e *env) float64 { return -vf(e) }
				return cexpr{fn: wrapFloat(neg), typ: tFloat, ff: neg}
			case tInt:
				vf := v.floatFn()
				neg := func(e *env) float64 { return -vf(e) }
				return cexpr{fn: wrapInt(neg), typ: tInt, ff: neg}
			}
			vfn := v.fn
			return cexpr{fn: func(e *env) value {
				a := vfn(e)
				return value{f: -a.f, isInt: a.isInt}
			}, typ: tDyn}
		case "!":
			if v.cv != nil {
				return constExpr(boolVal(!v.cv.truthy()))
			}
			vb := v.boolFn()
			bf := func(e *env) bool { return !vb(e) }
			return cexpr{fn: func(e *env) value { return boolVal(bf(e)) }, typ: tInt, bf: bf}
		case "~":
			if v.cv != nil {
				return constExpr(intVal(^v.cv.int()))
			}
			vf := v.floatFn()
			ff := func(e *env) float64 { return float64(^int64(vf(e))) }
			return cexpr{fn: wrapInt(ff), typ: tInt, ff: ff}
		}
		vfn := v.fn
		err := errf(x.Pos, "unknown unary operator %s", x.Op)
		return cexpr{fn: func(e *env) value { vfn(e); panic(err) }}

	case *CastExpr:
		v := sc.lowerExpr(x.X)
		if v.cv != nil {
			return constExpr(coerce(*v.cv, x.Kind))
		}
		vf := v.floatFn()
		// coerce reads only the f field; each target kind gets a direct
		// rail-to-rail conversion.
		switch x.Kind {
		case memmodel.Int32:
			ff := func(e *env) float64 { return float64(int32(vf(e))) }
			return cexpr{fn: wrapInt(ff), typ: tInt, ff: ff}
		case memmodel.Int64:
			ff := func(e *env) float64 { return float64(int64(vf(e))) }
			return cexpr{fn: wrapInt(ff), typ: tInt, ff: ff}
		case memmodel.Float32:
			ff := func(e *env) float64 { return float64(float32(vf(e))) }
			return cexpr{fn: wrapFloat(ff), typ: tFloat, ff: ff}
		default:
			return cexpr{fn: wrapFloat(vf), typ: tFloat, ff: vf}
		}

	case *CondExpr:
		c := sc.lowerExpr(x.C)
		if c.cv != nil {
			// The interpreter evaluates only the chosen branch; folding the
			// condition means the other branch is never even lowered.
			if c.cv.truthy() {
				return sc.lowerExpr(x.T)
			}
			return sc.lowerExpr(x.F)
		}
		tt := sc.lowerExpr(x.T)
		ft := sc.lowerExpr(x.F)
		typ := tDyn
		if tt.typ == ft.typ {
			typ = tt.typ
		}
		cb := c.boolFn()
		if typ == tFloat || typ == tInt {
			tf, ffn := tt.floatFn(), ft.floatFn()
			ff := func(e *env) float64 {
				if cb(e) {
					return tf(e)
				}
				return ffn(e)
			}
			if typ == tInt {
				return cexpr{fn: wrapInt(ff), typ: tInt, ff: ff}
			}
			return cexpr{fn: wrapFloat(ff), typ: tFloat, ff: ff}
		}
		tfn, ffn := tt.fn, ft.fn
		return cexpr{fn: func(e *env) value {
			if cb(e) {
				return tfn(e)
			}
			return ffn(e)
		}, typ: typ}

	case *CallExpr:
		return sc.lowerCall(x)

	case *AddrExpr:
		return errExpr(errf(x.Pos, "& outside atomicAdd"))
	}
	panic(bailErr{fmt.Sprintf("unknown expression %T", e)})
}

// lowerLogic compiles && and || with short-circuit evaluation. A constant
// left side that decides the result skips lowering the right side
// entirely — the interpreter would never evaluate it either.
func (sc *scope) lowerLogic(x *BinaryExpr) cexpr {
	and := x.Op == "&&"
	l := sc.lowerExpr(x.L)
	if l.cv != nil {
		if l.cv.truthy() != and {
			// false && _  /  true || _
			return constExpr(boolVal(!and))
		}
		r := sc.lowerExpr(x.R)
		if r.cv != nil {
			return constExpr(boolVal(r.cv.truthy()))
		}
		rb := r.boolFn()
		return cexpr{fn: func(e *env) value { return boolVal(rb(e)) }, typ: tInt, bf: rb}
	}
	lb := l.boolFn()
	rb := sc.lowerExpr(x.R).boolFn()
	var bf func(*env) bool
	if and {
		bf = func(e *env) bool { return lb(e) && rb(e) }
	} else {
		bf = func(e *env) bool { return lb(e) || rb(e) }
	}
	return cexpr{fn: func(e *env) value { return boolVal(bf(e)) }, typ: tInt, bf: bf}
}

func arithType(a, b etype) etype {
	switch {
	case a == tInt && b == tInt:
		return tInt
	case a == tFloat || b == tFloat:
		return tFloat
	default:
		return tDyn
	}
}

// lowerBinop compiles an arithmetic or comparison operator. The operator
// is known statically, so every case dispatches directly instead of going
// through the interpreter's string switch; only int-ness may remain a
// runtime property of the operand values.
func lowerBinop(op string, l, r cexpr, pos Pos) cexpr {
	if l.cv != nil && r.cv != nil {
		if v, err := binop(op, *l.cv, *r.cv, pos); err == nil {
			return constExpr(v)
		}
		// Constant expressions that error (1/0, 1.5 % 2) keep erroring at
		// run time, exactly when the expression is reached.
		lv, rv := *l.cv, *r.cv
		return cexpr{fn: func(*env) value {
			v, err := binop(op, lv, rv, pos)
			if err != nil {
				panic(err)
			}
			return v
		}}
	}
	at := arithType(l.typ, r.typ)
	switch op {
	case "+":
		if at != tDyn {
			return railRes(at, railAdd(l, r))
		}
		lf, rf := l.fn, r.fn
		return cexpr{fn: func(e *env) value {
			a, b := lf(e), rf(e)
			return value{f: a.f + b.f, isInt: a.isInt && b.isInt}
		}}
	case "-":
		if at != tDyn {
			return railRes(at, railSub(l, r))
		}
		lf, rf := l.fn, r.fn
		return cexpr{fn: func(e *env) value {
			a, b := lf(e), rf(e)
			return value{f: a.f - b.f, isInt: a.isInt && b.isInt}
		}}
	case "*":
		if at != tDyn {
			return railRes(at, railMul(l, r))
		}
		lf, rf := l.fn, r.fn
		return cexpr{fn: func(e *env) value {
			a, b := lf(e), rf(e)
			return value{f: a.f * b.f, isInt: a.isInt && b.isInt}
		}}
	case "/":
		if l.typ == tInt && r.typ == tInt {
			la, ra := l.floatFn(), r.floatFn()
			var ff func(*env) float64
			if r.cv != nil && r.cv.int() != 0 {
				c := r.cv.int()
				ff = func(e *env) float64 { return float64(int64(la(e)) / c) }
			} else {
				ff = func(e *env) float64 {
					a := int64(la(e))
					b := int64(ra(e))
					if b == 0 {
						panic(errf(pos, "integer division by zero"))
					}
					return float64(a / b)
				}
			}
			return cexpr{fn: wrapInt(ff), typ: tInt, ff: ff}
		}
		if l.typ == tFloat || r.typ == tFloat {
			return railRes(tFloat, railDiv(l, r))
		}
		lf, rf := l.fn, r.fn
		return cexpr{fn: func(e *env) value {
			a, b := lf(e), rf(e)
			if a.isInt && b.isInt {
				if b.int() == 0 {
					panic(errf(pos, "integer division by zero"))
				}
				return intVal(a.int() / b.int())
			}
			return floatVal(a.f / b.f)
		}}
	case "%":
		if l.typ == tInt && r.typ == tInt {
			la, ra := l.floatFn(), r.floatFn()
			ff := func(e *env) float64 {
				a := int64(la(e))
				b := int64(ra(e))
				if b == 0 {
					panic(errf(pos, "integer modulo by zero"))
				}
				return float64(a % b)
			}
			return cexpr{fn: wrapInt(ff), typ: tInt, ff: ff}
		}
		lf, rf := l.fn, r.fn
		return cexpr{fn: func(e *env) value {
			a, b := lf(e), rf(e)
			v, err := binop("%", a, b, pos)
			if err != nil {
				panic(err)
			}
			return v
		}, typ: tInt}
	case "<":
		return cmpRes(railLT(l, r))
	case ">":
		return cmpRes(railGT(l, r))
	case "<=":
		return cmpRes(railLE(l, r))
	case ">=":
		return cmpRes(railGE(l, r))
	case "==":
		return cmpRes(railEQ(l, r))
	case "!=":
		return cmpRes(railNE(l, r))
	}
	lf, rf := l.fn, r.fn
	err := errf(pos, "unknown operator %s", op)
	return cexpr{fn: func(e *env) value { lf(e); rf(e); panic(err) }}
}

// railRes boxes a float-rail evaluator as a full cexpr. resT is tInt (both
// operands statically int, result exact in float64 semantics) or tFloat
// (at least one operand statically float).
func railRes(resT etype, ff func(*env) float64) cexpr {
	if resT == tInt {
		return cexpr{fn: wrapInt(ff), typ: tInt, ff: ff}
	}
	return cexpr{fn: wrapFloat(ff), typ: tFloat, ff: ff}
}

func cmpRes(bf func(*env) bool) cexpr {
	return cexpr{fn: func(e *env) value { return boolVal(bf(e)) }, typ: tInt, bf: bf}
}

// The rail op constructors below are monomorphic per operator — the
// operator is baked into the closure body rather than passed as a function
// value, so each node costs exactly its operand evaluations plus one
// machine op. A constant operand is captured, not called, and a slot-read
// operand (isSlot) is fused to a direct register access — both are pure,
// so neither fusion can reorder side effects.

func railAdd(l, r cexpr) func(*env) float64 {
	if l.cv != nil {
		c := l.cv.f
		if r.isSlot {
			s := r.slot
			return func(e *env) float64 { return c + e.regs[e.base+s].f }
		}
		rf := r.floatFn()
		return func(e *env) float64 { return c + rf(e) }
	}
	if r.cv != nil {
		c := r.cv.f
		if l.isSlot {
			s := l.slot
			return func(e *env) float64 { return e.regs[e.base+s].f + c }
		}
		lf := l.floatFn()
		return func(e *env) float64 { return lf(e) + c }
	}
	if l.isSlot && r.isSlot {
		a, b := l.slot, r.slot
		return func(e *env) float64 { return e.regs[e.base+a].f + e.regs[e.base+b].f }
	}
	if l.isSlot {
		a, rf := l.slot, r.floatFn()
		return func(e *env) float64 { return e.regs[e.base+a].f + rf(e) }
	}
	if r.isSlot {
		lf, b := l.floatFn(), r.slot
		return func(e *env) float64 { return lf(e) + e.regs[e.base+b].f }
	}
	lf, rf := l.floatFn(), r.floatFn()
	return func(e *env) float64 { return lf(e) + rf(e) }
}

func railSub(l, r cexpr) func(*env) float64 {
	if l.cv != nil {
		c := l.cv.f
		if r.isSlot {
			s := r.slot
			return func(e *env) float64 { return c - e.regs[e.base+s].f }
		}
		rf := r.floatFn()
		return func(e *env) float64 { return c - rf(e) }
	}
	if r.cv != nil {
		c := r.cv.f
		if l.isSlot {
			s := l.slot
			return func(e *env) float64 { return e.regs[e.base+s].f - c }
		}
		lf := l.floatFn()
		return func(e *env) float64 { return lf(e) - c }
	}
	if l.isSlot && r.isSlot {
		a, b := l.slot, r.slot
		return func(e *env) float64 { return e.regs[e.base+a].f - e.regs[e.base+b].f }
	}
	if l.isSlot {
		a, rf := l.slot, r.floatFn()
		return func(e *env) float64 { return e.regs[e.base+a].f - rf(e) }
	}
	if r.isSlot {
		lf, b := l.floatFn(), r.slot
		return func(e *env) float64 { return lf(e) - e.regs[e.base+b].f }
	}
	lf, rf := l.floatFn(), r.floatFn()
	return func(e *env) float64 { return lf(e) - rf(e) }
}

func railMul(l, r cexpr) func(*env) float64 {
	if l.cv != nil {
		c := l.cv.f
		if r.isSlot {
			s := r.slot
			return func(e *env) float64 { return c * e.regs[e.base+s].f }
		}
		rf := r.floatFn()
		return func(e *env) float64 { return c * rf(e) }
	}
	if r.cv != nil {
		c := r.cv.f
		if l.isSlot {
			s := l.slot
			return func(e *env) float64 { return e.regs[e.base+s].f * c }
		}
		lf := l.floatFn()
		return func(e *env) float64 { return lf(e) * c }
	}
	if l.isSlot && r.isSlot {
		a, b := l.slot, r.slot
		return func(e *env) float64 { return e.regs[e.base+a].f * e.regs[e.base+b].f }
	}
	if l.isSlot {
		a, rf := l.slot, r.floatFn()
		return func(e *env) float64 { return e.regs[e.base+a].f * rf(e) }
	}
	if r.isSlot {
		lf, b := l.floatFn(), r.slot
		return func(e *env) float64 { return lf(e) * e.regs[e.base+b].f }
	}
	lf, rf := l.floatFn(), r.floatFn()
	return func(e *env) float64 { return lf(e) * rf(e) }
}

func railDiv(l, r cexpr) func(*env) float64 {
	if l.cv != nil {
		c := l.cv.f
		if r.isSlot {
			s := r.slot
			return func(e *env) float64 { return c / e.regs[e.base+s].f }
		}
		rf := r.floatFn()
		return func(e *env) float64 { return c / rf(e) }
	}
	if r.cv != nil {
		c := r.cv.f
		if l.isSlot {
			s := l.slot
			return func(e *env) float64 { return e.regs[e.base+s].f / c }
		}
		lf := l.floatFn()
		return func(e *env) float64 { return lf(e) / c }
	}
	if l.isSlot && r.isSlot {
		a, b := l.slot, r.slot
		return func(e *env) float64 { return e.regs[e.base+a].f / e.regs[e.base+b].f }
	}
	if l.isSlot {
		a, rf := l.slot, r.floatFn()
		return func(e *env) float64 { return e.regs[e.base+a].f / rf(e) }
	}
	if r.isSlot {
		lf, b := l.floatFn(), r.slot
		return func(e *env) float64 { return lf(e) / e.regs[e.base+b].f }
	}
	lf, rf := l.floatFn(), r.floatFn()
	return func(e *env) float64 { return lf(e) / rf(e) }
}

// The comparison constructors evaluate the left operand first, exactly
// like the interpreter — a flipped-operand encoding of > as < would
// reorder side effects.
func railLT(l, r cexpr) func(*env) bool {
	if l.cv != nil {
		c := l.cv.f
		if r.isSlot {
			s := r.slot
			return func(e *env) bool { return c < e.regs[e.base+s].f }
		}
		rf := r.floatFn()
		return func(e *env) bool { return c < rf(e) }
	}
	if r.cv != nil {
		c := r.cv.f
		if l.isSlot {
			s := l.slot
			return func(e *env) bool { return e.regs[e.base+s].f < c }
		}
		lf := l.floatFn()
		return func(e *env) bool { return lf(e) < c }
	}
	if l.isSlot && r.isSlot {
		a, b := l.slot, r.slot
		return func(e *env) bool { return e.regs[e.base+a].f < e.regs[e.base+b].f }
	}
	if l.isSlot {
		a, rf := l.slot, r.floatFn()
		return func(e *env) bool { return e.regs[e.base+a].f < rf(e) }
	}
	if r.isSlot {
		lf, b := l.floatFn(), r.slot
		return func(e *env) bool { return lf(e) < e.regs[e.base+b].f }
	}
	lf, rf := l.floatFn(), r.floatFn()
	return func(e *env) bool { return lf(e) < rf(e) }
}

func railLE(l, r cexpr) func(*env) bool {
	if l.cv != nil {
		c := l.cv.f
		if r.isSlot {
			s := r.slot
			return func(e *env) bool { return c <= e.regs[e.base+s].f }
		}
		rf := r.floatFn()
		return func(e *env) bool { return c <= rf(e) }
	}
	if r.cv != nil {
		c := r.cv.f
		if l.isSlot {
			s := l.slot
			return func(e *env) bool { return e.regs[e.base+s].f <= c }
		}
		lf := l.floatFn()
		return func(e *env) bool { return lf(e) <= c }
	}
	if l.isSlot && r.isSlot {
		a, b := l.slot, r.slot
		return func(e *env) bool { return e.regs[e.base+a].f <= e.regs[e.base+b].f }
	}
	if l.isSlot {
		a, rf := l.slot, r.floatFn()
		return func(e *env) bool { return e.regs[e.base+a].f <= rf(e) }
	}
	if r.isSlot {
		lf, b := l.floatFn(), r.slot
		return func(e *env) bool { return lf(e) <= e.regs[e.base+b].f }
	}
	lf, rf := l.floatFn(), r.floatFn()
	return func(e *env) bool { return lf(e) <= rf(e) }
}

func railGT(l, r cexpr) func(*env) bool {
	if l.cv != nil {
		c := l.cv.f
		if r.isSlot {
			s := r.slot
			return func(e *env) bool { return c > e.regs[e.base+s].f }
		}
		rf := r.floatFn()
		return func(e *env) bool { return c > rf(e) }
	}
	if r.cv != nil {
		c := r.cv.f
		if l.isSlot {
			s := l.slot
			return func(e *env) bool { return e.regs[e.base+s].f > c }
		}
		lf := l.floatFn()
		return func(e *env) bool { return lf(e) > c }
	}
	if l.isSlot && r.isSlot {
		a, b := l.slot, r.slot
		return func(e *env) bool { return e.regs[e.base+a].f > e.regs[e.base+b].f }
	}
	if l.isSlot {
		a, rf := l.slot, r.floatFn()
		return func(e *env) bool { return e.regs[e.base+a].f > rf(e) }
	}
	if r.isSlot {
		lf, b := l.floatFn(), r.slot
		return func(e *env) bool { return lf(e) > e.regs[e.base+b].f }
	}
	lf, rf := l.floatFn(), r.floatFn()
	return func(e *env) bool { return lf(e) > rf(e) }
}

func railGE(l, r cexpr) func(*env) bool {
	if l.cv != nil {
		c := l.cv.f
		if r.isSlot {
			s := r.slot
			return func(e *env) bool { return c >= e.regs[e.base+s].f }
		}
		rf := r.floatFn()
		return func(e *env) bool { return c >= rf(e) }
	}
	if r.cv != nil {
		c := r.cv.f
		if l.isSlot {
			s := l.slot
			return func(e *env) bool { return e.regs[e.base+s].f >= c }
		}
		lf := l.floatFn()
		return func(e *env) bool { return lf(e) >= c }
	}
	if l.isSlot && r.isSlot {
		a, b := l.slot, r.slot
		return func(e *env) bool { return e.regs[e.base+a].f >= e.regs[e.base+b].f }
	}
	if l.isSlot {
		a, rf := l.slot, r.floatFn()
		return func(e *env) bool { return e.regs[e.base+a].f >= rf(e) }
	}
	if r.isSlot {
		lf, b := l.floatFn(), r.slot
		return func(e *env) bool { return lf(e) >= e.regs[e.base+b].f }
	}
	lf, rf := l.floatFn(), r.floatFn()
	return func(e *env) bool { return lf(e) >= rf(e) }
}

func railEQ(l, r cexpr) func(*env) bool {
	if l.cv != nil {
		c := l.cv.f
		if r.isSlot {
			s := r.slot
			return func(e *env) bool { return c == e.regs[e.base+s].f }
		}
		rf := r.floatFn()
		return func(e *env) bool { return c == rf(e) }
	}
	if r.cv != nil {
		c := r.cv.f
		if l.isSlot {
			s := l.slot
			return func(e *env) bool { return e.regs[e.base+s].f == c }
		}
		lf := l.floatFn()
		return func(e *env) bool { return lf(e) == c }
	}
	if l.isSlot && r.isSlot {
		a, b := l.slot, r.slot
		return func(e *env) bool { return e.regs[e.base+a].f == e.regs[e.base+b].f }
	}
	if l.isSlot {
		a, rf := l.slot, r.floatFn()
		return func(e *env) bool { return e.regs[e.base+a].f == rf(e) }
	}
	if r.isSlot {
		lf, b := l.floatFn(), r.slot
		return func(e *env) bool { return lf(e) == e.regs[e.base+b].f }
	}
	lf, rf := l.floatFn(), r.floatFn()
	return func(e *env) bool { return lf(e) == rf(e) }
}

func railNE(l, r cexpr) func(*env) bool {
	if l.cv != nil {
		c := l.cv.f
		if r.isSlot {
			s := r.slot
			return func(e *env) bool { return c != e.regs[e.base+s].f }
		}
		rf := r.floatFn()
		return func(e *env) bool { return c != rf(e) }
	}
	if r.cv != nil {
		c := r.cv.f
		if l.isSlot {
			s := l.slot
			return func(e *env) bool { return e.regs[e.base+s].f != c }
		}
		lf := l.floatFn()
		return func(e *env) bool { return lf(e) != c }
	}
	if l.isSlot && r.isSlot {
		a, b := l.slot, r.slot
		return func(e *env) bool { return e.regs[e.base+a].f != e.regs[e.base+b].f }
	}
	if l.isSlot {
		a, rf := l.slot, r.floatFn()
		return func(e *env) bool { return e.regs[e.base+a].f != rf(e) }
	}
	if r.isSlot {
		lf, b := l.floatFn(), r.slot
		return func(e *env) bool { return lf(e) != e.regs[e.base+b].f }
	}
	lf, rf := l.floatFn(), r.floatFn()
	return func(e *env) bool { return lf(e) != rf(e) }
}

// ---- calls ----

func (sc *scope) lowerCall(x *CallExpr) cexpr {
	if f, ok := sc.lw.k.funcs[x.Name]; ok {
		return sc.lowerDeviceCall(x, f)
	}
	if x.Name == "atomicAdd" {
		return sc.lowerAtomicAdd(x)
	}
	b, ok := lookupMath(x.Name)
	if !ok {
		return errExpr(errf(x.Pos, "unknown function %s", x.Name))
	}
	if len(x.Args) != b.arity {
		return errExpr(errf(x.Pos, "%s takes %d arguments, got %d", x.Name, b.arity, len(x.Args)))
	}
	a0 := sc.lowerExpr(x.Args[0])
	if b.arity == 1 {
		fn1 := b.fn1
		// Math builtins are pure functions of their f fields: constant
		// arguments fold the whole call at compile time (expf(-r*T) in an
		// option-pricing kernel never reaches the inner loop).
		if a0.cv != nil {
			return constExpr(floatVal(fn1(a0.cv.f)))
		}
		a0f := a0.floatFn()
		ff := railMath1(x.Name, fn1, a0f)
		return cexpr{fn: wrapFloat(ff), typ: tFloat, ff: ff}
	}
	a1 := sc.lowerExpr(x.Args[1])
	fn2 := b.fn2
	if a0.cv != nil && a1.cv != nil {
		return constExpr(floatVal(fn2(a0.cv.f, a1.cv.f)))
	}
	a0f, a1f := a0.floatFn(), a1.floatFn()
	ff := func(e *env) float64 {
		v0 := a0f(e)
		return fn2(v0, a1f(e))
	}
	return cexpr{fn: wrapFloat(ff), typ: tFloat, ff: ff}
}

// railMath1 compiles an arity-1 math call. The hot builtins get direct
// call sites (math.Sqrt and math.Abs are compiler intrinsics when called
// directly; the rest at least skip the indirect fn1 load) — the fallback
// through the table value is the same function, so results are
// bit-identical either way.
func railMath1(name string, fn1 func(float64) float64, a0f func(*env) float64) func(*env) float64 {
	if n := len(name); n > 1 && name[n-1] == 'f' {
		if _, ok := mathBuiltins[name[:n-1]]; ok {
			name = name[:n-1]
		}
	}
	switch name {
	case "sqrt":
		return func(e *env) float64 { return math.Sqrt(a0f(e)) }
	case "exp":
		return func(e *env) float64 { return math.Exp(a0f(e)) }
	case "log":
		return func(e *env) float64 { return math.Log(a0f(e)) }
	case "erfc":
		return func(e *env) float64 { return math.Erfc(a0f(e)) }
	case "fabs", "abs":
		return func(e *env) float64 { return math.Abs(a0f(e)) }
	}
	return func(e *env) float64 { return fn1(a0f(e)) }
}

func (sc *scope) lowerDeviceCall(x *CallExpr, f *DeviceFunc) cexpr {
	if len(x.Args) != len(f.Params) {
		return errExpr(errf(x.Pos, "%s takes %d arguments, got %d", f.Name, len(f.Params), len(x.Args)))
	}
	cf := sc.lw.deviceFunc(f)
	argFns := make([]exprFn, len(x.Args))
	argKinds := make([]memmodel.ElemKind, len(x.Args))
	for i, a := range x.Args {
		argFns[i] = sc.lowerExpr(a).fn
		argKinds[i] = f.Params[i].Kind
	}
	pos, name, ret := x.Pos, f.Name, f.Ret
	return cexpr{fn: func(e *env) value {
		// Reserve the callee frame first, then evaluate arguments in the
		// caller's frame, writing results directly into the reservation.
		// A nested call inside an argument appends after the reservation
		// and truncates back, so already-stored arguments survive.
		newBase := len(e.regs)
		if cap(e.regs) >= newBase+cf.nslots {
			e.regs = e.regs[:newBase+cf.nslots]
		} else {
			e.regs = append(e.regs, make([]value, cf.nslots)...)
		}
		for i, afn := range argFns {
			e.regs[newBase+cf.paramSlots[i]] = coerce(afn(e), argKinds[i])
		}
		saved := e.base
		e.base = newBase
		c := runStmts(e, cf.body)
		e.base = saved
		e.regs = e.regs[:newBase]
		if c != ctrlReturn {
			panic(errf(pos, "__device__ function %s ended without returning", name))
		}
		rv := e.retVal
		e.retVal = value{}
		return coerce(rv, ret)
	}, typ: kindType(ret)}
}

// deviceFunc lowers a __device__ helper once per module (memoized). The
// parser rejects recursion, so on-demand lowering terminates.
func (lw *lowerer) deviceFunc(f *DeviceFunc) *cfunc {
	if cf, ok := lw.fns[f.Name]; ok {
		return cf
	}
	cf := &cfunc{name: f.Name, ret: f.Ret}
	pre := prepass(f.Body)
	sc := &scope{
		lw:       lw,
		pre:      pre,
		slots:    make(map[string]int),
		declared: make(map[string]bool),
		typs:     pre.slotTypes(f.Params),
		definite: make(map[string]bool),
		consts:   make(map[string]value),
	}
	// Parameters are ordinary locals of the helper's frame (slots 0..n-1),
	// definite from entry; a body declaration of the same name reuses the
	// slot, exactly like the interpreter's flat per-frame variable map.
	for _, prm := range f.Params {
		cf.paramSlots = append(cf.paramSlots, sc.slotFor(prm.Name))
		sc.declared[prm.Name] = true
		sc.definite[prm.Name] = true
	}
	for name := range pre.declKinds {
		sc.declared[name] = true
	}
	cf.body = sc.lowerStmts(f.Body)
	cf.nslots = sc.nslots
	lw.fns[f.Name] = cf
	return cf
}

func (sc *scope) lowerAtomicAdd(x *CallExpr) cexpr {
	if len(x.Args) != 2 {
		return errExpr(errf(x.Pos, "atomicAdd takes 2 arguments"))
	}
	addr, ok := x.Args[0].(*AddrExpr)
	if !ok {
		return errExpr(errf(x.Pos, "atomicAdd's first argument must be &array[index]"))
	}
	ix := addr.X
	pi, pok := -1, false
	if sc.kernel {
		pi, pok = sc.paramIdx[ix.Base]
	}
	if !pok || !sc.lw.k.Params[pi].Pointer {
		return errExpr(errf(ix.Pos, "%s is not a pointer parameter", ix.Base))
	}
	idxFn := sc.indexOf(ix.Idx)
	val := sc.lowerExpr(x.Args[1])
	valFn := val.floatFn()
	base, pos := ix.Base, ix.Pos

	prog := sc.lw.prog
	prog.hasAtomic = true
	prog.atomicParams = appendUnique(prog.atomicParams, pi)
	if val.typ != tInt {
		prog.atomicValInt = false
	}

	ff := func(e *env) float64 {
		idx := idxFn(e)
		buf := e.args[pi].Buf
		if idx < 0 || idx >= buf.Len() {
			panic(errf(pos, "index %d out of range for %s (length %d)", idx, base, buf.Len()))
		}
		v := valFn(e)
		if e.par {
			return buf.AtomicAdd(idx, v)
		}
		old := buf.At(idx)
		buf.Set(idx, old+v)
		return old
	}
	return cexpr{fn: wrapFloat(ff), typ: tFloat, ff: ff}
}

func appendUnique(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// ---- parallel-safety analysis ----

// paramAccess accumulates how one pointer parameter is touched.
type paramAccess struct {
	plain       bool // any non-atomic read or write
	plainWrite  bool
	plainAllGid bool // every plain access indexes the thread's global id
	atomic      bool
}

// analyzeParallel decides whether block partitions of the grid may run
// concurrently: every pointer parameter must be read-only, touched only at
// the thread's own global id (each element then belongs to exactly one
// thread), or touched exclusively through atomicAdd (the CAS loop makes
// concurrent updates safe; ordering is handled separately at launch).
func analyzeParallel(k *Kernel, gidAlias map[string]bool) bool {
	acc := make(map[string]*paramAccess)
	get := func(base string) *paramAccess {
		a, ok := acc[base]
		if !ok {
			a = &paramAccess{plainAllGid: true}
			acc[base] = a
		}
		return a
	}
	isGidIdx := func(e Expr) bool {
		if isGidExpr(e) {
			return true
		}
		id, ok := e.(*IdentExpr)
		return ok && gidAlias[id.Name]
	}
	plain := func(ix *IndexExpr, write bool) {
		a := get(ix.Base)
		a.plain = true
		a.plainWrite = a.plainWrite || write
		if !isGidIdx(ix.Idx) {
			a.plainAllGid = false
		}
	}

	var walkExpr func(e Expr)
	var walkStmts func(stmts []Stmt)
	walkExpr = func(e Expr) {
		switch x := e.(type) {
		case *IndexExpr:
			plain(x, false)
			walkExpr(x.Idx)
		case *BinaryExpr:
			walkExpr(x.L)
			walkExpr(x.R)
		case *UnaryExpr:
			walkExpr(x.X)
		case *CastExpr:
			walkExpr(x.X)
		case *CondExpr:
			walkExpr(x.C)
			walkExpr(x.T)
			walkExpr(x.F)
		case *CallExpr:
			for _, arg := range x.Args {
				if ad, ok := arg.(*AddrExpr); ok {
					if x.Name == "atomicAdd" {
						get(ad.X.Base).atomic = true
					}
					walkExpr(ad.X.Idx)
					continue
				}
				walkExpr(arg)
			}
		}
	}
	var walk func(s Stmt)
	walk = func(s Stmt) {
		switch st := s.(type) {
		case *DeclStmt:
			if st.Init != nil {
				walkExpr(st.Init)
			}
		case *AssignStmt:
			walkExpr(st.Value)
			if ix, ok := st.Target.(*IndexExpr); ok {
				plain(ix, true)
				if st.Op != "=" {
					plain(ix, false)
				}
				walkExpr(ix.Idx)
			}
		case *IncStmt:
			if ix, ok := st.Target.(*IndexExpr); ok {
				plain(ix, true)
				plain(ix, false)
				walkExpr(ix.Idx)
			}
		case *IfStmt:
			walkExpr(st.Cond)
			walkStmts(st.Then)
			walkStmts(st.Else)
		case *ForStmt:
			if st.Init != nil {
				walk(st.Init)
			}
			walkExpr(st.Cond)
			if st.Post != nil {
				walk(st.Post)
			}
			walkStmts(st.Body)
		case *WhileStmt:
			walkExpr(st.Cond)
			walkStmts(st.Body)
		case *ReturnStmt:
			if st.Value != nil {
				walkExpr(st.Value)
			}
		case *ExprStmt:
			walkExpr(st.X)
		}
	}
	walkStmts = func(stmts []Stmt) {
		for _, s := range stmts {
			walk(s)
		}
	}
	walkStmts(k.Body)

	for _, a := range acc {
		written := a.plainWrite || a.atomic
		if !written {
			continue
		}
		if a.atomic && !a.plain {
			continue
		}
		if !a.atomic && a.plainAllGid {
			continue
		}
		return false
	}
	return true
}
