package minicuda

import (
	"fmt"
	"runtime"
	"sync"

	"grout/internal/kernels"
)

// env is the execution state of one grid partition: a flat register file
// holding the kernel frame at [0, nslots) plus pushed __device__ frames,
// the thread coordinates of the thread currently running, and the
// per-thread step budget. One env is private to one executor goroutine;
// the only state shared between partitions is the argument buffers, and
// the parallel-safety analysis (lower.go) guarantees those are touched
// without conflicts.
type env struct {
	args []kernels.Arg
	regs []value
	base int

	tid, bid   int
	bdim, gdim int
	// gidf is the precomputed global thread id blockIdx*blockDim+threadIdx
	// as a float64, so the canonical indexing expression is one load.
	gidf float64

	steps    int
	maxSteps int

	retVal value
	// par selects the CAS-based atomicAdd; the serial engine keeps the
	// interpreter's plain read-modify-write (bit-identical arithmetic).
	par bool
}

// step charges one statement against the thread's budget. The panic lives
// in a separate function so step itself stays within the inlining budget —
// it is executed once per statement per thread.
func (e *env) step(pos Pos) {
	e.steps++
	if e.steps > e.maxSteps {
		e.stepFail(pos)
	}
}

//go:noinline
func (e *env) stepFail(pos Pos) {
	panic(errf(pos, "execution exceeded %d steps (infinite loop?)", e.maxSteps))
}

// seedEntry reseeds one scalar-parameter slot at each thread start:
// scalar-parameter assignments are thread-local, as in CUDA, so every
// thread begins from the launch arguments.
type seedEntry struct {
	slot int
	v    value
}

// launch executes the program over a 1-D grid, partitioning contiguous
// block ranges across workers when the kernel is provably safe to run
// concurrently. Serial execution (and each worker's own range) visits
// threads in exactly the interpreter's order, so results are
// deterministic; with atomics the launch stays serial unless the adds are
// order-insensitive (integer) or the caller opts into RelaxedAtomics.
func (p *program) launch(grid, block int, args []kernels.Arg, opts EngineOpts) error {
	k := p.k
	if err := validateLaunch(k.Name, grid, block, len(args), len(k.Params)); err != nil {
		return err
	}
	for i, prm := range k.Params {
		if prm.Pointer && args[i].Buf == nil {
			return fmt.Errorf("minicuda: %s: parameter %s needs a device array", k.Name, prm.Name)
		}
		if !prm.Pointer && args[i].Buf != nil {
			return fmt.Errorf("minicuda: %s: parameter %s is a scalar", k.Name, prm.Name)
		}
	}
	maxSteps := opts.MaxThreadSteps
	if maxSteps <= 0 {
		maxSteps = maxThreadSteps
	}
	var seeds []seedEntry
	for i, slot := range p.scalarSlot {
		if slot >= 0 {
			seeds = append(seeds, seedEntry{slot: slot, v: value{f: args[i].Scalar, isInt: p.scalarInt[i]}})
		}
	}

	workers := p.workers(grid, args, opts)
	if workers <= 1 {
		if err := p.runBlocks(0, grid, grid, block, args, seeds, maxSteps, false); err != nil {
			return fmt.Errorf("minicuda: %s: %w", k.Name, err)
		}
		return nil
	}

	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * grid / workers
		hi := (w + 1) * grid / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = p.runBlocks(lo, hi, grid, block, args, seeds, maxSteps, true)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("minicuda: %s: %w", k.Name, err)
		}
	}
	return nil
}

// workers picks the partition count for a launch. Workers==1 forces the
// serial engine; 0 means GOMAXPROCS. Unsafe kernels always run serial, as
// do order-sensitive atomic accumulations unless RelaxedAtomics is set.
func (p *program) workers(grid int, args []kernels.Arg, opts EngineOpts) int {
	w := opts.Workers
	if w == 1 {
		return 1
	}
	if !p.parallelSafe {
		return 1
	}
	if p.orderSensitive(args) && !opts.RelaxedAtomics {
		return 1
	}
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > grid {
		w = grid
	}
	if w < 1 {
		w = 1
	}
	return w
}

// orderSensitive reports whether concurrent atomicAdd interleavings could
// change the numeric result: float accumulation rounds per-operation, and
// fractional adds into integer buffers truncate per-operation. Pure
// integer adds into integer buffers commute exactly.
func (p *program) orderSensitive(args []kernels.Arg) bool {
	if !p.hasAtomic {
		return false
	}
	if !p.atomicValInt {
		return true
	}
	for _, pi := range p.atomicParams {
		if buf := args[pi].Buf; buf != nil && !kindIsInt(buf.Kind) {
			return true
		}
	}
	return false
}

// runBlocks executes the contiguous block range [b0, b1) on one goroutine,
// visiting threads in grid order. Runtime errors arrive as *Error panics
// from the compiled closures.
func (p *program) runBlocks(b0, b1, grid, block int, args []kernels.Arg, seeds []seedEntry, maxSteps int, par bool) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*Error); ok {
				err = pe
				return
			}
			panic(r)
		}
	}()
	e := &env{
		args:     args,
		regs:     make([]value, p.nslots, p.nslots+16),
		bdim:     block,
		gdim:     grid,
		maxSteps: maxSteps,
		par:      par,
	}
	for b := b0; b < b1; b++ {
		e.bid = b
		base := b * block
		for t := 0; t < block; t++ {
			e.tid = t
			e.gidf = float64(base + t)
			e.steps = 0
			for _, s := range seeds {
				e.regs[s.slot] = s.v
			}
			runStmts(e, p.body)
		}
	}
	return nil
}
