package minicuda

// FuzzDifferential feeds arbitrary source text through both execution
// engines and asserts bit-for-bit agreement (results, error presence, and
// error text). Inputs that fail to parse or to lower are uninteresting —
// the parser has its own fuzz coverage — so they are skipped; everything
// that compiles on both paths must behave identically.

import "testing"

func FuzzDifferential(f *testing.F) {
	f.Add(saxpySrc)
	f.Add(suiteGemvSrc)
	f.Add(suiteBSSrc)
	f.Add(suiteAxpySSrc)
	f.Add(suiteSpmvSrc)
	f.Add(deviceFuncSrc)
	f.Add(contendedIntSrc)
	f.Add(contendedFloatSrc)
	f.Add(`
__global__ void k(float *y, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { y[i] = sqrtf(fabsf((float)i - 3.5)) + powf(2.0, (float)(i % 5)); }
}`)
	f.Add(`
__global__ void k(int *y, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int s = 0;
    for (int j = i; j > 0; j--) { s += j % 3 == 0 ? -j : j; if (s > 50) { break; } }
    if (i < n) { y[i] = s; }
}`)
	f.Fuzz(func(t *testing.T, src string) {
		ks, err := Parse(src)
		if err != nil {
			t.Skip()
		}
		if len(ks) > 2 {
			ks = ks[:2]
		}
		for _, k := range ks {
			if len(k.Params) > 8 {
				continue
			}
			runDifferential(t, k, 4, 8, 64, 50_000)
		}
	})
}
