package minicuda

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"
	"sync/atomic"

	"grout/internal/kernels"
)

// The compiled-kernel cache makes repeated buildkernel calls (the paper's
// port-by-one-line loop re-issues the same source every run) skip the
// whole front end: lex, parse, check and lowering run once per distinct
// (source, signature) pair and the resulting Def — including its lowered
// program — is shared. Defs are stateless per launch, so one cached Def
// serves concurrent launches.

// CacheKey returns the compiled-kernel cache key for a buildkernel
// request: hex SHA-256 over the source and the declared signature.
// Registry-level caches (grcuda runtime, controller, transport worker) use
// the same key so a repeated buildkernel resolves to the already
// registered kernel without re-entering the compiler.
func CacheKey(src, signature string) string {
	h := sha256.New()
	h.Write([]byte(src))
	h.Write([]byte{0})
	h.Write([]byte(signature))
	return hex.EncodeToString(h.Sum(nil))
}

// maxCachedDefs bounds the process-wide cache; fuzzing and adversarial
// callers generate unbounded distinct sources. Evicting everything on
// overflow is fine: steady-state workloads compile a handful of kernels.
const maxCachedDefs = 4096

var (
	defCacheMu sync.Mutex
	defCache   = make(map[string]*kernels.Def)

	cacheHits    atomic.Uint64
	cacheMisses  atomic.Uint64
	frontendRuns atomic.Uint64
)

// CompileStats reports cache hits, misses, and how many times the compiler
// front end (lex/parse/check/lower) actually ran. Tests assert the hit
// path performs zero front-end work.
func CompileStats() (hits, misses, frontend uint64) {
	return cacheHits.Load(), cacheMisses.Load(), frontendRuns.Load()
}

// FlushCompileCache empties the compiled-kernel cache (tests, and the
// overflow path).
func FlushCompileCache() {
	defCacheMu.Lock()
	defCache = make(map[string]*kernels.Def)
	defCacheMu.Unlock()
}

// cachedCompile resolves src+signature through the cache, compiling with
// default engine options on miss. Compile errors are not cached.
func cachedCompile(src, signature string) (*kernels.Def, error) {
	key := CacheKey(src, signature)
	defCacheMu.Lock()
	if d, ok := defCache[key]; ok {
		defCacheMu.Unlock()
		cacheHits.Add(1)
		return d, nil
	}
	defCacheMu.Unlock()
	cacheMisses.Add(1)
	def, err := compileUncached(src, signature, EngineOpts{})
	if err != nil {
		return nil, err
	}
	defCacheMu.Lock()
	if len(defCache) >= maxCachedDefs {
		defCache = make(map[string]*kernels.Def)
	}
	defCache[key] = def
	defCacheMu.Unlock()
	return def, nil
}
