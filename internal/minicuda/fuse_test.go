package minicuda

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"grout/internal/kernels"
	"grout/internal/memmodel"
)

func compileEW(t *testing.T, src string) (*kernels.Def, *Elementwise) {
	t.Helper()
	def, err := Compile(src, "")
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	ew, _ := def.Fusion.(*Elementwise)
	return def, ew
}

func TestElementwiseOfAccepts(t *testing.T) {
	for name, src := range map[string]string{
		"scale": `__global__ void scale(float *y, const float *x, float a, int n) {
			int i = blockIdx.x * blockDim.x + threadIdx.x;
			if (i < n) { y[i] = a * x[i]; }
		}`,
		"two-stores": `__global__ void pair(float *s, double *d, const float *x, int n) {
			int i = threadIdx.x + blockDim.x * blockIdx.x;
			if (i < n) { s[i] = x[i] + 1.0; d[i] = (double)(x[i]) * 0.5; }
		}`,
		"locals-builtins-cond": `__global__ void lbc(float *y, const float *x, float a, int n) {
			int i = blockIdx.x * blockDim.x + threadIdx.x;
			if (i < n) {
				float t = sqrtf(fabsf(x[i]));
				y[i] = t > a ? t : a + (float)(i);
			}
		}`,
	} {
		def, ew := compileEW(t, src)
		if ew == nil {
			t.Errorf("%s: expected fusable, got Fusion=nil", name)
			continue
		}
		if ew.Guard < 0 || len(ew.Stores) == 0 {
			t.Errorf("%s: bad descriptor %+v", name, ew)
		}
		if def.Fusion != any(ew) {
			t.Errorf("%s: Def.Fusion not the descriptor", name)
		}
	}
}

func TestElementwiseOfRejects(t *testing.T) {
	for name, src := range map[string]string{
		"loop": `__global__ void k(float *y, int n) {
			int i = blockIdx.x * blockDim.x + threadIdx.x;
			if (i < n) { for (int j = 0; j < 3; j++) { y[i] = (float)(j); } }
		}`,
		"atomic": `__global__ void k(float *y, const float *x, int n) {
			int i = blockIdx.x * blockDim.x + threadIdx.x;
			if (i < n) { atomicAdd(&y[0], x[i]); }
		}`,
		"read-after-store": `__global__ void k(float *y, const float *x, float a, int n) {
			int i = blockIdx.x * blockDim.x + threadIdx.x;
			if (i < n) { y[i] = a * x[i] + y[i]; }
		}`,
		"shifted-index": `__global__ void k(float *y, const float *x, int n) {
			int i = blockIdx.x * blockDim.x + threadIdx.x;
			if (i < n) { y[i] = x[i + 1]; }
		}`,
		"compound-assign": `__global__ void k(float *y, int n) {
			int i = blockIdx.x * blockDim.x + threadIdx.x;
			if (i < n) { y[i] += 1.0; }
		}`,
		"else-branch": `__global__ void k(float *y, int n) {
			int i = blockIdx.x * blockDim.x + threadIdx.x;
			if (i < n) { y[i] = 1.0; } else { y[0] = 0.0; }
		}`,
		"guard-not-param": `__global__ void k(float *y, int n) {
			int i = blockIdx.x * blockDim.x + threadIdx.x;
			int m = n - 1;
			if (i < m) { y[i] = 1.0; }
		}`,
		"device-call": `
		__device__ float dbl(float v) { return v + v; }
		__global__ void k(float *y, const float *x, int n) {
			int i = blockIdx.x * blockDim.x + threadIdx.x;
			if (i < n) { y[i] = dbl(x[i]); }
		}`,
		"no-store": `__global__ void k(const float *x, int n) {
			int i = blockIdx.x * blockDim.x + threadIdx.x;
			if (i < n) { float t = x[i]; }
		}`,
	} {
		src := src
		t.Run(name, func(t *testing.T) {
			def, err := Compile(src, "")
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if def.Fusion != nil {
				t.Fatalf("expected Fusion=nil, got %#v", def.Fusion)
			}
		})
	}
}

const fuseProducerSrc = `__global__ void scale(float *s, const float *x, float a, int n) {
	int i = blockIdx.x * blockDim.x + threadIdx.x;
	if (i < n) { s[i] = a * x[i]; }
}`

const fuseConsumerSrc = `__global__ void shift(float *o, const float *u, const float *v, float b, int n) {
	int i = blockIdx.x * blockDim.x + threadIdx.x;
	if (i < n) { o[i] = u[i] + v[i] * b; }
}`

// runFusedPair compiles the pair, fuses with consumer param 1 (u) linked
// to producer store 0 (s), runs producer-then-consumer and the fused
// kernel on identical inputs, and compares bit-for-bit.
func runFusedPair(t *testing.T, drop bool) *FusedKernel {
	t.Helper()
	pd, p := compileEW(t, fuseProducerSrc)
	cd, c := compileEW(t, fuseConsumerSrc)
	if p == nil || c == nil {
		t.Fatal("pair not fusable")
	}
	spec := FuseSpec{Link: map[int]int{1: 0}}
	if drop {
		spec.Drop = map[int]bool{0: true}
	}
	fk, err := FuseElementwise(p, c, spec)
	if err != nil {
		t.Fatalf("fuse: %v", err)
	}
	fd, err := Compile(fk.Src, "")
	if err != nil {
		t.Fatalf("fused source does not compile: %v\n%s", err, fk.Src)
	}
	if fd.Fusion == nil {
		t.Errorf("fused kernel lost the elementwise shape:\n%s", fk.Src)
	}

	const grid, block, n = 4, 8, 25
	mk := func(seed float64) *kernels.Buffer {
		b := kernels.NewBuffer(memmodel.Float32, n+7) // guard tail stays untouched
		for i := 0; i < b.Len(); i++ {
			b.Set(i, math.Sin(seed+float64(i)*0.7)*3)
		}
		return b
	}
	x, v := mk(1), mk(2)
	sSeq, oSeq := mk(9), mk(10)
	sFus, oFus := mk(9), mk(10)
	a, bscal := 1.25, -0.75

	if err := pd.ExecuteLaunch(grid, block, []kernels.Arg{
		kernels.BufArg(sSeq), kernels.BufArg(x), kernels.ScalarArg(a), kernels.ScalarArg(n)}); err != nil {
		t.Fatalf("producer: %v", err)
	}
	if err := cd.ExecuteLaunch(grid, block, []kernels.Arg{
		kernels.BufArg(oSeq), kernels.BufArg(sSeq), kernels.BufArg(v),
		kernels.ScalarArg(bscal), kernels.ScalarArg(n)}); err != nil {
		t.Fatalf("consumer: %v", err)
	}

	pArgs := []kernels.Arg{kernels.BufArg(sFus), kernels.BufArg(x),
		kernels.ScalarArg(a), kernels.ScalarArg(n)}
	cArgs := []kernels.Arg{kernels.BufArg(oFus), {}, kernels.BufArg(v),
		kernels.ScalarArg(bscal), kernels.ScalarArg(n)}
	var fArgs []kernels.Arg
	for _, fp := range fk.Params {
		if fp.FromConsumer {
			fArgs = append(fArgs, cArgs[fp.Index])
		} else {
			fArgs = append(fArgs, pArgs[fp.Index])
		}
	}
	if err := fd.ExecuteLaunch(grid, block, fArgs); err != nil {
		t.Fatalf("fused: %v", err)
	}

	for i := 0; i < oSeq.Len(); i++ {
		if math.Float64bits(oSeq.At(i)) != math.Float64bits(oFus.At(i)) {
			t.Fatalf("output diverges at %d: seq %v fused %v (drop=%v)\n%s",
				i, oSeq.At(i), oFus.At(i), drop, fk.Src)
		}
	}
	for i := 0; i < sSeq.Len(); i++ {
		want := sSeq.At(i)
		if drop && i < n {
			want = mk(9).At(i) // elided store leaves the intermediate alone
		}
		if math.Float64bits(want) != math.Float64bits(sFus.At(i)) {
			t.Fatalf("intermediate diverges at %d: want %v got %v (drop=%v)", i, want, sFus.At(i), drop)
		}
	}
	return fk
}

func TestFuseElementwise(t *testing.T) {
	fk := runFusedPair(t, false)
	if len(fk.Params) != 8 { // 4 producer + 5 consumer - 1 linked
		t.Fatalf("param count %d, want 8: %+v", len(fk.Params), fk.Params)
	}
	if !strings.Contains(fk.Src, "p_s[_gi] =") {
		t.Fatalf("kept store missing:\n%s", fk.Src)
	}
}

func TestFuseElementwiseDropStore(t *testing.T) {
	fk := runFusedPair(t, true)
	if len(fk.Params) != 7 { // dropped store also leaves the signature
		t.Fatalf("param count %d, want 7: %+v", len(fk.Params), fk.Params)
	}
	if strings.Contains(fk.Src, "p_s[_gi]") {
		t.Fatalf("dropped store still materialized:\n%s", fk.Src)
	}
}

func TestFuseNameDeterministic(t *testing.T) {
	_, p := compileEW(t, fuseProducerSrc)
	_, c := compileEW(t, fuseConsumerSrc)
	a, err := FuseElementwise(p, c, FuseSpec{Link: map[int]int{1: 0}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FuseElementwise(p, c, FuseSpec{Link: map[int]int{1: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != b.Name || a.Src != b.Src {
		t.Fatalf("fusion not deterministic: %q vs %q", a.Name, b.Name)
	}
	d, err := FuseElementwise(p, c, FuseSpec{Link: map[int]int{1: 0}, Drop: map[int]bool{0: true}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Name == a.Name {
		t.Fatal("distinct fusions share a name")
	}
}

func TestFuseSpecValidation(t *testing.T) {
	_, p := compileEW(t, fuseProducerSrc)
	_, c := compileEW(t, fuseConsumerSrc)
	for name, spec := range map[string]FuseSpec{
		"empty-link":         {},
		"link-to-store":      {Link: map[int]int{0: 0}}, // consumer's o is a store
		"link-to-scalar":     {Link: map[int]int{3: 0}}, // b is not a pointer
		"link-from-nonstore": {Link: map[int]int{1: 1}}, // producer's x is read-only
		"drop-unlinked":      {Link: map[int]int{1: 0}, Drop: map[int]bool{1: true}},
	} {
		if _, err := FuseElementwise(p, c, spec); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// FuzzFusion generates elementwise producer→consumer chains from the fuzz
// input, fuses them (optionally twice, collapsing a three-kernel chain),
// and asserts the fused launch is bit-identical to running the chain
// kernel by kernel — including when the consumer aliases the
// intermediate, and when the elided store drops the intermediate write.
func FuzzFusion(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{7, 6, 5, 4, 3, 2, 1, 0})
	f.Add([]byte{255, 128, 64, 32, 16, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			t.Skip()
		}
		next := func() byte {
			b := data[0]
			data = append(data[1:], b)
			return b
		}
		// Random elementwise expression over reads r0[i]/r1[i], scalar a,
		// the index, and literals; depth-bounded.
		var gen func(depth int) string
		ops := []string{"+", "-", "*"}
		funcs := []string{"sqrtf", "fabsf", "expf"}
		gen = func(depth int) string {
			if depth <= 0 {
				switch next() % 5 {
				case 0:
					return "r0[i]"
				case 1:
					return "r1[i]"
				case 2:
					return "a"
				case 3:
					return "(float)(i)"
				default:
					return fmt.Sprintf("%d.%d", next()%8, next()%10)
				}
			}
			switch next() % 4 {
			case 0:
				return fmt.Sprintf("(%s %s %s)", gen(depth-1), ops[next()%3], gen(depth-1))
			case 1:
				return fmt.Sprintf("%s(%s)", funcs[next()%3], gen(depth-1))
			case 2:
				return fmt.Sprintf("(%s > 0.0 ? %s : %s)", gen(depth-1), gen(depth-1), gen(depth-1))
			default:
				return gen(depth - 1)
			}
		}
		mkSrc := func(name string) string {
			body := gen(int(next())%3 + 1)
			return fmt.Sprintf(`__global__ void %s(float *w, const float *r0, const float *r1, float a, int n) {
	int i = blockIdx.x * blockDim.x + threadIdx.x;
	if (i < n) { float t = %s; w[i] = t %s %s; }
}`, name, body, ops[next()%3], gen(1))
		}

		chain := 2 + int(next())%2 // 2 or 3 kernels
		srcs := make([]string, chain)
		defs := make([]*kernels.Def, chain)
		ews := make([]*Elementwise, chain)
		for k := 0; k < chain; k++ {
			srcs[k] = mkSrc(fmt.Sprintf("k%d", k))
			def, err := Compile(srcs[k], "")
			if err != nil {
				t.Fatalf("generated source does not compile: %v\n%s", err, srcs[k])
			}
			defs[k] = def
			ew, _ := def.Fusion.(*Elementwise)
			if ew == nil {
				t.Fatalf("generated kernel not fusable:\n%s", srcs[k])
			}
			ews[k] = ew
		}

		const grid, block, n = 3, 7, 17
		mk := func(seed int) *kernels.Buffer {
			b := kernels.NewBuffer(memmodel.Float32, n+3)
			for i := 0; i < b.Len(); i++ {
				b.Set(i, math.Sin(float64(seed)+float64(i))*2)
			}
			return b
		}
		// Chain wiring: k0(w0, x, y) → k1(w1, w0, y) [→ k2(w2, w1, w0)].
		// Scalars vary per kernel; the guard n is shared (a fusion
		// precondition the optimizer enforces).
		x, y := mk(1), mk(2)
		scal := []float64{1.5, -0.5, 2.25}
		bufArgs := func(w, r0, r1 *kernels.Buffer, k int) []kernels.Arg {
			return []kernels.Arg{kernels.BufArg(w), kernels.BufArg(r0),
				kernels.BufArg(r1), kernels.ScalarArg(scal[k]), kernels.ScalarArg(n)}
		}

		// Sequential reference.
		wSeq := []*kernels.Buffer{mk(10), mk(11), mk(12)}
		seqIn := func(k int) (r0, r1 *kernels.Buffer) {
			switch k {
			case 0:
				return x, y
			case 1:
				return wSeq[0], y
			default:
				return wSeq[1], wSeq[0]
			}
		}
		for k := 0; k < chain; k++ {
			r0, r1 := seqIn(k)
			if err := defs[k].ExecuteLaunch(grid, block, bufArgs(wSeq[k], r0, r1, k)); err != nil {
				t.Fatalf("seq k%d: %v", k, err)
			}
		}

		// Fused: collapse k0→k1 (link r0), then optionally (fused)→k2,
		// which links both of k2's reads (r0=w1, r1=w0).
		drop01 := chain == 2 && next()%2 == 0 // w0 dead only in the 2-chain
		spec := FuseSpec{Link: map[int]int{1: 0}}
		if drop01 {
			spec.Drop = map[int]bool{0: true}
		}
		f01, err := FuseElementwise(ews[0], ews[1], spec)
		if err != nil {
			t.Fatalf("fuse 0→1: %v", err)
		}
		fd, err := Compile(f01.Src, "")
		if err != nil {
			t.Fatalf("fused 0→1 does not compile: %v\n%s", err, f01.Src)
		}
		wFus := []*kernels.Buffer{mk(10), mk(11), mk(12)}
		kArgs := [][]kernels.Arg{
			bufArgs(wFus[0], x, y, 0),
			bufArgs(wFus[1], nil, y, 1),
			bufArgs(wFus[2], wFus[1], wFus[0], 2),
		}
		resolve := func(fk *FusedKernel, prod, cons []kernels.Arg) []kernels.Arg {
			out := make([]kernels.Arg, len(fk.Params))
			for i, fp := range fk.Params {
				if fp.FromConsumer {
					out[i] = cons[fp.Index]
				} else {
					out[i] = prod[fp.Index]
				}
			}
			return out
		}
		fArgs := resolve(f01, kArgs[0], kArgs[1])
		if chain == 3 {
			few, _ := fd.Fusion.(*Elementwise)
			if few == nil {
				t.Fatalf("fused 0→1 lost elementwise shape:\n%s", f01.Src)
			}
			// k2 reads r0=w1 (store of the fused kernel) and r1=w0 (also a
			// store of the fused kernel): link both.
			w1Store, w0Store := -1, -1
			for fi, fp := range f01.Params {
				if !fp.FromConsumer && fp.Index == 0 {
					w0Store = fi
				}
				if fp.FromConsumer && fp.Index == 0 {
					w1Store = fi
				}
			}
			f012, err := FuseElementwise(few, ews[2],
				FuseSpec{Link: map[int]int{1: w1Store, 2: w0Store}})
			if err != nil {
				t.Fatalf("fuse (01)→2: %v", err)
			}
			fd2, err := Compile(f012.Src, "")
			if err != nil {
				t.Fatalf("fused (01)→2 does not compile: %v\n%s", err, f012.Src)
			}
			fd, fArgs = fd2, resolve(f012, fArgs, kArgs[2])
		}
		if err := fd.ExecuteLaunch(grid, block, fArgs); err != nil {
			t.Fatalf("fused exec: %v", err)
		}

		for k := 0; k < chain; k++ {
			if drop01 && k == 0 {
				continue // elided intermediate intentionally diverges
			}
			for i := 0; i < wSeq[k].Len(); i++ {
				a, b := wSeq[k].At(i), wFus[k].At(i)
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("w%d[%d]: seq %v fused %v\nchain=%d drop=%v", k, i, a, b, chain, drop01)
				}
			}
		}
	})
}
