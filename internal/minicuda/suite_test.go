package minicuda

// Cross-validation of the runtime compiler against the native kernel
// library: the paper's suite kernels written in the CUDA dialect must
// produce the same numbers AND the same static access classification as
// their hand-written Go counterparts — the property that makes
// runtime-compiled and pre-compiled kernels interchangeable in the
// scheduler.

import (
	"math/rand"
	"testing"

	"grout/internal/kernels"
	"grout/internal/memmodel"
)

const suiteGemvSrc = `
extern "C" __global__ void gemv(float *y, const float *A, const float *x, int rows, int cols) {
    int row = blockIdx.x * blockDim.x + threadIdx.x;
    if (row < rows) {
        float sum = 0.0;
        for (int j = 0; j < cols; j++) {
            sum += A[row * cols + j] * x[j];
        }
        y[row] = sum;
    }
}`

const suiteBSSrc = `
extern "C" __global__ void blackscholes(float *call, float *put, const float *spot, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        float K = 100.0;
        float r = 0.05;
        float vol = 0.2;
        float T = 1.0;
        float s = spot[i];
        if (s <= 0.0) {
            call[i] = 0.0;
            put[i] = K * expf(0.0 - r * T);
            return;
        }
        float sigRt = vol * sqrtf(T);
        float d1 = (logf(s / K) + (r + vol * vol / 2.0) * T) / sigRt;
        float d2 = d1 - sigRt;
        float df = K * expf(0.0 - r * T);
        call[i] = s * 0.5 * erfcf((0.0 - d1) / sqrtf(2.0)) - df * 0.5 * erfcf((0.0 - d2) / sqrtf(2.0));
        put[i] = df * 0.5 * erfcf(d2 / sqrtf(2.0)) - s * 0.5 * erfcf(d1 / sqrtf(2.0));
    }
}`

const suiteAxpySSrc = `
extern "C" __global__ void axpy_s(float *y, const float *x, const float *coef, float sign, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        y[i] = y[i] + sign * coef[0] * x[i];
    }
}`

const suiteSpmvSrc = `
extern "C" __global__ void spmv_csr(float *y, const int *rowptr, const int *colidx,
                                    const float *vals, const float *x, int rows) {
    int r = blockIdx.x * blockDim.x + threadIdx.x;
    if (r < rows) {
        float sum = 0.0;
        for (int k = rowptr[r]; k < rowptr[r + 1]; k++) {
            sum += vals[k] * x[colidx[k]];
        }
        y[r] = sum;
    }
}`

func randBuf(rng *rand.Rand, kind memmodel.ElemKind, n int) *kernels.Buffer {
	b := kernels.NewBuffer(kind, n)
	for i := 0; i < n; i++ {
		b.Set(i, rng.Float64()*10-5)
	}
	return b
}

func TestSuiteGemvMatchesNative(t *testing.T) {
	compiled := compile(t, suiteGemvSrc, "")
	native, _ := kernels.StdRegistry().Lookup("gemv")
	rng := rand.New(rand.NewSource(7))
	const rows, cols = 33, 17
	A := randBuf(rng, memmodel.Float32, rows*cols)
	x := randBuf(rng, memmodel.Float32, cols)
	yc := kernels.NewBuffer(memmodel.Float32, rows)
	yn := kernels.NewBuffer(memmodel.Float32, rows)
	if err := compiled.ExecuteLaunch(2, 32, []kernels.Arg{
		kernels.BufArg(yc), kernels.BufArg(A), kernels.BufArg(x),
		kernels.ScalarArg(rows), kernels.ScalarArg(cols)}); err != nil {
		t.Fatal(err)
	}
	if err := native.Execute([]kernels.Arg{
		kernels.BufArg(yn), kernels.BufArg(A), kernels.BufArg(x),
		kernels.ScalarArg(rows), kernels.ScalarArg(cols)}); err != nil {
		t.Fatal(err)
	}
	if d := yc.MaxAbsDiff(yn); d > 1e-4 {
		t.Fatalf("compiled gemv differs from native by %v", d)
	}
	// Access classifications must also agree: A sequential read, x
	// broadcast read, y sequential write.
	cAccs := compiled.Access(nil)
	nAccs := native.Access([]kernels.ArgMeta{
		{IsBuffer: true, Len: rows * cols}, {IsBuffer: true, Len: rows * cols},
		{IsBuffer: true, Len: cols}, {Scalar: rows}, {Scalar: cols}})
	for i := 0; i < 3; i++ {
		if cAccs[i].Pattern != nAccs[i].Pattern || cAccs[i].Mode != nAccs[i].Mode {
			t.Fatalf("gemv access %d: compiled %v/%v vs native %v/%v",
				i, cAccs[i].Mode, cAccs[i].Pattern, nAccs[i].Mode, nAccs[i].Pattern)
		}
	}
}

func TestSuiteBlackScholesMatchesNative(t *testing.T) {
	compiled := compile(t, suiteBSSrc, "")
	native, _ := kernels.StdRegistry().Lookup("blackscholes")
	const n = 257
	spot := kernels.NewBuffer(memmodel.Float32, n)
	for i := 0; i < n; i++ {
		spot.Set(i, float64(i)) // includes the degenerate s=0 case
	}
	cc := kernels.NewBuffer(memmodel.Float32, n)
	pc := kernels.NewBuffer(memmodel.Float32, n)
	cn := kernels.NewBuffer(memmodel.Float32, n)
	pn := kernels.NewBuffer(memmodel.Float32, n)
	if err := compiled.ExecuteLaunch(3, 128, []kernels.Arg{
		kernels.BufArg(cc), kernels.BufArg(pc), kernels.BufArg(spot), kernels.ScalarArg(n)}); err != nil {
		t.Fatal(err)
	}
	if err := native.Execute([]kernels.Arg{
		kernels.BufArg(cn), kernels.BufArg(pn), kernels.BufArg(spot), kernels.ScalarArg(n)}); err != nil {
		t.Fatal(err)
	}
	if d := cc.MaxAbsDiff(cn); d > 1e-3 {
		t.Fatalf("compiled BS call prices differ by %v", d)
	}
	if d := pc.MaxAbsDiff(pn); d > 1e-3 {
		t.Fatalf("compiled BS put prices differ by %v", d)
	}
}

func TestSuiteAxpySMatchesNative(t *testing.T) {
	compiled := compile(t, suiteAxpySSrc, "")
	native, _ := kernels.StdRegistry().Lookup("axpy_s")
	rng := rand.New(rand.NewSource(11))
	const n = 100
	x := randBuf(rng, memmodel.Float32, n)
	coef := kernels.NewBuffer(memmodel.Float32, 1)
	coef.Set(0, 1.75)
	yc := randBuf(rng, memmodel.Float32, n)
	yn := yc.Clone()
	argsC := []kernels.Arg{kernels.BufArg(yc), kernels.BufArg(x), kernels.BufArg(coef),
		kernels.ScalarArg(-1), kernels.ScalarArg(n)}
	argsN := []kernels.Arg{kernels.BufArg(yn), kernels.BufArg(x), kernels.BufArg(coef),
		kernels.ScalarArg(-1), kernels.ScalarArg(n)}
	if err := compiled.ExecuteLaunch(1, 128, argsC); err != nil {
		t.Fatal(err)
	}
	if err := native.Execute(argsN); err != nil {
		t.Fatal(err)
	}
	if d := yc.MaxAbsDiff(yn); d > 1e-4 {
		t.Fatalf("compiled axpy_s differs from native by %v", d)
	}
}

func TestSuiteSpmvMatchesNative(t *testing.T) {
	compiled := compile(t, suiteSpmvSrc, "")
	native, _ := kernels.StdRegistry().Lookup("spmv_csr")
	rng := rand.New(rand.NewSource(13))
	// Random sparse 20x20 matrix, ~4 entries per row.
	const rows = 20
	rowptr := kernels.NewBuffer(memmodel.Int32, rows+1)
	var colidx, vals []float64
	nnz := 0
	for r := 0; r < rows; r++ {
		rowptr.Set(r, float64(nnz))
		for k := 0; k < 1+rng.Intn(6); k++ {
			colidx = append(colidx, float64(rng.Intn(rows)))
			vals = append(vals, rng.Float64()*4-2)
			nnz++
		}
	}
	rowptr.Set(rows, float64(nnz))
	ci := kernels.NewBuffer(memmodel.Int32, nnz)
	va := kernels.NewBuffer(memmodel.Float32, nnz)
	for i := 0; i < nnz; i++ {
		ci.Set(i, colidx[i])
		va.Set(i, vals[i])
	}
	x := randBuf(rng, memmodel.Float32, rows)
	yc := kernels.NewBuffer(memmodel.Float32, rows)
	yn := kernels.NewBuffer(memmodel.Float32, rows)
	argsC := []kernels.Arg{kernels.BufArg(yc), kernels.BufArg(rowptr), kernels.BufArg(ci),
		kernels.BufArg(va), kernels.BufArg(x), kernels.ScalarArg(rows)}
	argsN := []kernels.Arg{kernels.BufArg(yn), kernels.BufArg(rowptr), kernels.BufArg(ci),
		kernels.BufArg(va), kernels.BufArg(x), kernels.ScalarArg(rows)}
	if err := compiled.ExecuteLaunch(1, 32, argsC); err != nil {
		t.Fatal(err)
	}
	if err := native.Execute(argsN); err != nil {
		t.Fatal(err)
	}
	if d := yc.MaxAbsDiff(yn); d > 1e-4 {
		t.Fatalf("compiled spmv differs from native by %v", d)
	}
	// The data-dependent gather on x must classify as Random, exactly as
	// the native kernel declares it.
	accs := compiled.Access(nil)
	if accs[4].Pattern != memmodel.Random {
		t.Fatalf("compiled spmv x pattern = %v, want random", accs[4].Pattern)
	}
}
