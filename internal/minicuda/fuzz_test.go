package minicuda

import "testing"

// FuzzParse drives the lexer+parser with arbitrary inputs; the invariant
// is no panic and, on success, a non-empty kernel list that re-analyzes
// without panicking.
func FuzzParse(f *testing.F) {
	f.Add(saxpySrc)
	f.Add(gemvSrc)
	f.Add(deviceFuncSrc)
	f.Add(`__global__ void k(float *x, int n) { x[0] = 1.0; }`)
	f.Add(`__device__ float h(float a) { return a; } __global__ void k(float *x, int n) { x[0] = h(2.0); }`)
	f.Add(`/* comment */ extern "C" __global__ void k(int n) { return; }`)
	f.Add(`__global__`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, src string) {
		ks, err := Parse(src)
		if err != nil {
			return
		}
		for _, k := range ks {
			_ = analyze(k) // must not panic either
		}
	})
}
