package minicuda

// Tests for the slot-compiled execution engine: bit-for-bit agreement with
// the reference interpreter, the parallel grid executor and its safety
// analysis, the per-thread step budget, the launch-size guard, and the
// compiled-kernel cache.

import (
	"errors"
	"math"
	"runtime"
	"strings"
	"testing"

	"grout/internal/kernels"
	"grout/internal/memmodel"
)

// diffArgs builds deterministic launch arguments for a kernel: buffers of
// length n filled with a mix of signs and magnitudes, scalars set to n so
// guard conditions like (i < n) bite.
func diffArgs(k *Kernel, n int) []kernels.Arg {
	args := make([]kernels.Arg, len(k.Params))
	for i, prm := range k.Params {
		if !prm.Pointer {
			args[i] = kernels.ScalarArg(float64(n))
			continue
		}
		buf := kernels.NewBuffer(prm.Kind, n)
		for j := 0; j < n; j++ {
			if kindIsInt(prm.Kind) {
				buf.Set(j, float64(j%7-3))
			} else {
				buf.Set(j, float64(j)*0.37-3.1)
			}
		}
		args[i] = kernels.BufArg(buf)
	}
	return args
}

func cloneArgs(args []kernels.Arg) []kernels.Arg {
	out := make([]kernels.Arg, len(args))
	for i, a := range args {
		out[i] = a
		if a.Buf != nil {
			out[i].Buf = a.Buf.Clone()
		}
	}
	return out
}

// buffersBitEqual compares two argument lists element-for-element at the
// bit level (NaNs compare equal to NaNs).
func buffersBitEqual(t *testing.T, name string, a, b []kernels.Arg) {
	t.Helper()
	for i := range a {
		if a[i].Buf == nil {
			continue
		}
		x, y := a[i].Buf, b[i].Buf
		for j := 0; j < x.Len(); j++ {
			xv, yv := x.At(j), y.At(j)
			if math.Float64bits(xv) == math.Float64bits(yv) {
				continue
			}
			if math.IsNaN(xv) && math.IsNaN(yv) {
				continue
			}
			t.Fatalf("%s: param %d element %d differs: interp %v (bits %x) vs compiled %v (bits %x)",
				name, i, j, xv, math.Float64bits(xv), yv, math.Float64bits(yv))
		}
	}
}

// runDifferential executes one kernel on both engines and fails the test
// on any divergence: error presence, error text, or buffer bits. When the
// kernel is provably parallel-safe and order-insensitive it additionally
// checks that a 4-way partitioned run is bit-identical to the serial one.
func runDifferential(t *testing.T, k *Kernel, grid, block, n, maxSteps int) {
	t.Helper()
	prog, perr := lowerProgram(k)
	if perr != nil {
		// Not lowerable: Def construction falls back to the interpreter;
		// nothing to compare.
		return
	}
	base := diffArgs(k, n)

	argsI := cloneArgs(base)
	errI := runLaunch(k, grid, block, argsI, maxSteps)

	argsC := cloneArgs(base)
	errC := prog.launch(grid, block, argsC, EngineOpts{Workers: 1, MaxThreadSteps: maxSteps})

	if (errI == nil) != (errC == nil) {
		t.Fatalf("%s: engines disagree on failure: interp=%v compiled=%v", k.Name, errI, errC)
	}
	if errI != nil {
		if errI.Error() != errC.Error() {
			t.Fatalf("%s: error text differs:\ninterp:   %v\ncompiled: %v", k.Name, errI, errC)
		}
		return
	}
	buffersBitEqual(t, k.Name, argsI, argsC)

	if prog.parallelSafe && !prog.orderSensitive(base) {
		argsP := cloneArgs(base)
		if err := prog.launch(grid, block, argsP, EngineOpts{Workers: 4, MaxThreadSteps: maxSteps}); err != nil {
			t.Fatalf("%s: parallel run failed: %v", k.Name, err)
		}
		buffersBitEqual(t, k.Name+" (parallel)", argsI, argsP)
	}
}

func diffSource(t *testing.T, src string, grid, block, n int) {
	t.Helper()
	ks, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, k := range ks {
		runDifferential(t, k, grid, block, n, 200_000)
	}
}

func TestEngineDifferentialSuite(t *testing.T) {
	for name, src := range map[string]string{
		"saxpy":  saxpySrc,
		"gemv":   suiteGemvSrc,
		"bs":     suiteBSSrc,
		"axpys":  suiteAxpySSrc,
		"spmv":   suiteSpmvSrc,
		"device": deviceFuncSrc,
	} {
		t.Run(name, func(t *testing.T) { diffSource(t, src, 4, 8, 32) })
	}
}

func TestEngineDifferentialTricky(t *testing.T) {
	cases := map[string]string{
		"compound_index": `
__global__ void k(float *y, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { y[i] += (float)(i % 3); y[i] *= 2.0; y[n - 1 - i] -= 0.5; }
}`,
		"scalar_param_assign": `
__global__ void k(float *y, float a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    a = a * 0.5 + (float)i;
    if (i < n) { y[i] = a; }
}`,
		"int_semantics": `
__global__ void k(int *y, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        int a = i * 7 - n;
        int b = (a / 3) + (a % 5);
        y[i] = b / (1 + i) + (i == 0 ? 42 : ~b);
    }
}`,
		"float32_rounding": `
__global__ void k(float *y, const float *x, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        float acc = 0.0;
        for (int j = 0; j <= i; j++) { acc += x[j] * 1.0001; }
        y[i] = acc;
    }
}`,
		"builtins_yz": `
__global__ void k(float *y, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x + threadIdx.y * 100 + blockIdx.z;
    if (i < n) { y[i] = (float)(blockDim.y + gridDim.z + gridDim.x * 1000); }
}`,
		"while_break_continue": `
__global__ void k(float *y, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int j = 0;
    float s = 0.0;
    while (1) {
        j++;
        if (j > n) { break; }
        if (j % 2 == 0) { continue; }
        s += (float)j;
    }
    if (i < n) { y[i] = s; }
}`,
		"atomic_int": `
__global__ void k(int *hist, const int *x, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        int b = x[i] % 4;
        if (b < 0) { b = 0 - b; }
        atomicAdd(&hist[b], 1);
    }
}`,
		"atomic_float": `
__global__ void k(float *sum, const float *x, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { atomicAdd(&sum[0], x[i] * x[i]); }
}`,
		"oob_error": `
__global__ void k(float *y, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    y[i + n] = 1.0;
}`,
		"div_zero_error": `
__global__ void k(int *y, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { y[i] = n / (i - 2); }
}`,
		"mod_float_error": `
__global__ void k(float *y, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) { return; }
    y[i] = (float)(i % 2);
    if (i == 3) { y[i] = y[i] % 2.0; }
}`,
		"const_fold_error_guarded": `
__global__ void k(int *y, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < 0) { y[i] = 1 / 0; }
    if (i < n) { y[i] = 7 / 2 + 10 % 3; }
}`,
		"cond_decl_then_read": `
__global__ void k(float *y, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        float v = 0.0;
        if (i % 2 == 0) { v = 1.5; } else { v = 0.5; }
        y[i] = v;
    }
}`,
		"nonsafe_reverse": `
__global__ void k(float *y, const float *x, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { y[n - 1 - i] = x[i]; }
}`,
		// Duplicate __device__ parameter names share one variable in the
		// interpreter's per-frame map (last argument wins); the compiled
		// frame must map both arguments onto the same slot rather than
		// overrun the frame (found by FuzzDifferential).
		"dup_device_params": `
__device__ float pick(float a, float a) { return a + 1.0; }
__global__ void k(float *y, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { y[i] = pick(3.0, i * 1.0); }
}`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) { diffSource(t, src, 4, 8, 32) })
	}
}

// TestShadowedParamFallsBack: a kernel-body declaration shadowing a
// parameter is one of the dynamic-scoping corners the lowerer rejects; the
// Def must transparently fall back to the interpreter and keep the
// interpreter's semantics (param read before the shadowing declaration,
// local read after).
func TestShadowedParamFallsBack(t *testing.T) {
	src := `
__global__ void shadow(float *y, float a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    float before = a;
    float a = 2.0;
    if (i < n) { y[i] = before * 100.0 + a; }
}`
	ks, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, perr := lowerProgram(ks[0]); perr == nil {
		t.Fatalf("shadowing kernel unexpectedly lowered")
	} else if !strings.Contains(perr.Error(), "shadows parameter") {
		t.Fatalf("unexpected bail reason: %v", perr)
	}
	def, err := Compile(src, "")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	y := kernels.NewBuffer(memmodel.Float32, 4)
	if err := def.ExecuteLaunch(1, 4, []kernels.Arg{
		kernels.BufArg(y), kernels.ScalarArg(3), kernels.ScalarArg(4)}); err != nil {
		t.Fatalf("launch: %v", err)
	}
	if y.At(0) != 302 {
		t.Fatalf("shadow semantics broken: got %v, want 302", y.At(0))
	}
}

// TestPerThreadStepBudget is the regression test for the shared-budget
// bug: the 5M-step budget is per thread, so a launch whose total statement
// count far exceeds it — but whose every thread stays well under — must
// succeed on both engines.
func TestPerThreadStepBudget(t *testing.T) {
	src := `
__global__ void busy(float *y, int iters) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    float s = 0.0;
    for (int j = 0; j < iters; j++) { s += 1.0; }
    y[i] = s;
}`
	// 64 blocks x 32 threads x ~3000 steps/thread ≈ 19M total statements,
	// nearly 4x the per-thread budget of 5M.
	grid, block, iters := 64, 32, 1000
	for _, engine := range []Engine{EngineCompiled, EngineInterp} {
		def, err := CompileOpts(src, "", EngineOpts{Engine: engine})
		if err != nil {
			t.Fatalf("compile (engine %d): %v", engine, err)
		}
		y := kernels.NewBuffer(memmodel.Float32, grid*block)
		if err := def.ExecuteLaunch(grid, block, []kernels.Arg{
			kernels.BufArg(y), kernels.ScalarArg(float64(iters))}); err != nil {
			t.Fatalf("engine %d: per-thread budget regressed to per-launch: %v", engine, err)
		}
		if y.At(grid*block-1) != float64(iters) {
			t.Fatalf("engine %d: wrong result %v", engine, y.At(grid*block-1))
		}
	}
}

// TestInfiniteLoopStillGuarded: the per-thread reset must not disable the
// guard for genuinely runaway threads (also covered by the seed test; kept
// here for the compiled engine explicitly).
func TestInfiniteLoopStillGuardedCompiled(t *testing.T) {
	src := `
__global__ void spin(float *y, int n) {
    int i = 0;
    while (n >= 0) { i++; }
    y[0] = (float) i;
}`
	def, err := CompileOpts(src, "", EngineOpts{Engine: EngineCompiled})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	y := kernels.NewBuffer(memmodel.Float32, 1)
	err = def.ExecuteLaunch(1, 1, []kernels.Arg{kernels.BufArg(y), kernels.ScalarArg(1)})
	if err == nil || !strings.Contains(err.Error(), "steps") {
		t.Fatalf("runaway thread not caught: %v", err)
	}
}

func TestLaunchTooLarge(t *testing.T) {
	for _, engine := range []Engine{EngineCompiled, EngineInterp} {
		def, err := CompileOpts(saxpySrc, "", EngineOpts{Engine: engine})
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		y := kernels.NewBuffer(memmodel.Float32, 4)
		x := kernels.NewBuffer(memmodel.Float32, 4)
		args := []kernels.Arg{kernels.BufArg(y), kernels.BufArg(x),
			kernels.ScalarArg(1), kernels.ScalarArg(4)}
		err = def.ExecuteLaunch(70000, 70000, args)
		if err == nil {
			t.Fatalf("engine %d: 4.9e9-thread launch accepted", engine)
		}
		if !errors.Is(err, ErrLaunchTooLarge) {
			t.Fatalf("engine %d: want ErrLaunchTooLarge, got %v", engine, err)
		}
	}
}

const contendedIntSrc = `
__global__ void count(int *out, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { atomicAdd(&out[0], 1); }
}`

const contendedFloatSrc = `
__global__ void fsum(float *out, const float *x, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { atomicAdd(&out[0], x[i]); }
}`

// TestAtomicAddParallelInt: a many-block contended integer accumulation
// under the parallel executor is exact (run with -race in CI).
func TestAtomicAddParallelInt(t *testing.T) {
	def, err := CompileOpts(contendedIntSrc, "", EngineOpts{Engine: EngineCompiled, Workers: 8})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	grid, block := 64, 64
	out := kernels.NewBuffer(memmodel.Int32, 1)
	if err := def.ExecuteLaunch(grid, block, []kernels.Arg{
		kernels.BufArg(out), kernels.ScalarArg(float64(grid * block))}); err != nil {
		t.Fatalf("launch: %v", err)
	}
	if got := out.At(0); got != float64(grid*block) {
		t.Fatalf("contended int sum: got %v, want %d", got, grid*block)
	}
}

// TestAtomicAddParallelFloat: float accumulation under RelaxedAtomics
// matches the serial sum within reassociation tolerance.
func TestAtomicAddParallelFloat(t *testing.T) {
	grid, block := 32, 32
	n := grid * block
	x := kernels.NewBuffer(memmodel.Float32, n)
	var serial float64
	for i := 0; i < n; i++ {
		x.Set(i, float64(i%17)*0.25-1)
	}

	serialOut := kernels.NewBuffer(memmodel.Float32, 1)
	defSerial, err := CompileOpts(contendedFloatSrc, "", EngineOpts{Engine: EngineCompiled, Workers: 1})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := defSerial.ExecuteLaunch(grid, block, []kernels.Arg{
		kernels.BufArg(serialOut), kernels.BufArg(x), kernels.ScalarArg(float64(n))}); err != nil {
		t.Fatalf("serial launch: %v", err)
	}
	serial = serialOut.At(0)

	defPar, err := CompileOpts(contendedFloatSrc, "", EngineOpts{
		Engine: EngineCompiled, Workers: 8, RelaxedAtomics: true})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	parOut := kernels.NewBuffer(memmodel.Float32, 1)
	if err := defPar.ExecuteLaunch(grid, block, []kernels.Arg{
		kernels.BufArg(parOut), kernels.BufArg(x), kernels.ScalarArg(float64(n))}); err != nil {
		t.Fatalf("parallel launch: %v", err)
	}
	if diff := math.Abs(parOut.At(0) - serial); diff > 1e-2*math.Max(1, math.Abs(serial)) {
		t.Fatalf("relaxed float sum too far off: parallel %v vs serial %v", parOut.At(0), serial)
	}
}

// TestFloatAtomicsDefaultSerial: without RelaxedAtomics an order-sensitive
// accumulation must run on one worker so results stay deterministic.
func TestFloatAtomicsDefaultSerial(t *testing.T) {
	ks, err := Parse(contendedFloatSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, perr := lowerProgram(ks[0])
	if perr != nil {
		t.Fatalf("lower: %v", perr)
	}
	if !prog.parallelSafe || !prog.hasAtomic {
		t.Fatalf("analysis wrong: safe=%v atomic=%v", prog.parallelSafe, prog.hasAtomic)
	}
	out := kernels.NewBuffer(memmodel.Float32, 1)
	x := kernels.NewBuffer(memmodel.Float32, 8)
	args := []kernels.Arg{kernels.BufArg(out), kernels.BufArg(x), kernels.ScalarArg(8)}
	if !prog.orderSensitive(args) {
		t.Fatalf("float accumulation not flagged order-sensitive")
	}
	if w := prog.workers(32, args, EngineOpts{}); w != 1 {
		t.Fatalf("order-sensitive kernel got %d workers, want 1", w)
	}
	if w := prog.workers(32, args, EngineOpts{Workers: 8, RelaxedAtomics: true}); w != 8 {
		t.Fatalf("relaxed atomics ignored: got %d workers", w)
	}
}

// TestUnsafeKernelStaysSerial: writes at a non-global-id index defeat the
// safety proof, so the launch must not be partitioned.
func TestUnsafeKernelStaysSerial(t *testing.T) {
	src := `
__global__ void rev(float *y, const float *x, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { y[n - 1 - i] = x[i]; }
}`
	ks, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, perr := lowerProgram(ks[0])
	if perr != nil {
		t.Fatalf("lower: %v", perr)
	}
	if prog.parallelSafe {
		t.Fatalf("reverse-scatter kernel wrongly proven parallel-safe")
	}
	args := diffArgs(ks[0], 8)
	if w := prog.workers(32, args, EngineOpts{Workers: 8}); w != 1 {
		t.Fatalf("unsafe kernel got %d workers, want 1", w)
	}
}

// TestGidAliasRecognized: the canonical int i = blockIdx.x*blockDim.x +
// threadIdx.x alias makes gid-indexed accesses provably private per
// thread.
func TestGidAliasRecognized(t *testing.T) {
	ks, err := Parse(saxpySrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, perr := lowerProgram(ks[0])
	if perr != nil {
		t.Fatalf("lower: %v", perr)
	}
	if !prog.parallelSafe {
		t.Fatalf("saxpy not proven parallel-safe")
	}
	if w := prog.workers(1024, diffArgs(ks[0], 16), EngineOpts{}); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("default workers = %d, want GOMAXPROCS (%d)", w, runtime.GOMAXPROCS(0))
	}
}

// TestCompileCacheHit asserts the acceptance criterion directly: a second
// Compile of the same (source, signature) does zero front-end work — no
// lex, no parse, no check, no lowering — and returns the identical Def.
func TestCompileCacheHit(t *testing.T) {
	FlushCompileCache()
	sig := "pointer float, const pointer float, float, sint32"
	d1, err := Compile(saxpySrc, sig)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	hits0, _, frontend0 := CompileStats()
	d2, err := Compile(saxpySrc, sig)
	if err != nil {
		t.Fatalf("recompile: %v", err)
	}
	hits1, _, frontend1 := CompileStats()
	if d1 != d2 {
		t.Fatalf("cache hit returned a different Def")
	}
	if frontend1 != frontend0 {
		t.Fatalf("cache hit ran the front end (%d -> %d runs)", frontend0, frontend1)
	}
	if hits1 != hits0+1 {
		t.Fatalf("cache hit not counted: %d -> %d", hits0, hits1)
	}
	// A different signature is a different kernel build.
	_, _, frontendBefore := CompileStats()
	if _, err := Compile(saxpySrc, ""); err != nil {
		t.Fatalf("compile: %v", err)
	}
	if _, _, after := CompileStats(); after != frontendBefore+1 {
		t.Fatalf("distinct signature did not recompile")
	}
}

// TestParallelDeterminism: partitioned execution of a safe kernel is
// bit-identical to serial execution, whatever the worker count.
func TestParallelDeterminism(t *testing.T) {
	ks, err := Parse(suiteGemvSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	k := ks[0]
	rows, cols := 37, 11
	mk := func() []kernels.Arg {
		y := kernels.NewBuffer(memmodel.Float32, rows)
		A := kernels.NewBuffer(memmodel.Float32, rows*cols)
		x := kernels.NewBuffer(memmodel.Float32, cols)
		for i := 0; i < rows*cols; i++ {
			A.Set(i, math.Sin(float64(i)))
		}
		for i := 0; i < cols; i++ {
			x.Set(i, math.Cos(float64(i)))
		}
		return []kernels.Arg{kernels.BufArg(y), kernels.BufArg(A), kernels.BufArg(x),
			kernels.ScalarArg(float64(rows)), kernels.ScalarArg(float64(cols))}
	}
	prog, perr := lowerProgram(k)
	if perr != nil {
		t.Fatalf("lower: %v", perr)
	}
	ref := mk()
	if err := prog.launch(5, 8, ref, EngineOpts{Workers: 1}); err != nil {
		t.Fatalf("serial: %v", err)
	}
	for _, workers := range []int{2, 3, 4, 7} {
		got := mk()
		if err := prog.launch(5, 8, got, EngineOpts{Workers: workers}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		buffersBitEqual(t, "gemv", ref, got)
	}
}
