package minicuda

// AST-level elementwise kernel fusion.
//
// The optimizer's fusion pass (internal/optimizer) combines a
// producer→consumer pair of elementwise kernels into one launch,
// eliminating the intermediate array's materialization and its
// controller→worker transfer. This file holds the compiler half of the
// pass: recognizing the canonical elementwise shape at compile time
// (ElementwiseOf, surfaced through kernels.Def.Fusion) and constructing
// the fused kernel's source (FuseElementwise). The fused source goes
// back through Compile, so it hits the same source-hash compile cache,
// the same analysis, and the same lowering as any hand-written kernel —
// fusion introduces no second execution path.
//
// Race analysis / serial-equivalence argument. A kernel passing
// ElementwiseOf touches arrays only at the canonical global thread index
//
//	int i = blockIdx.x * blockDim.x + threadIdx.x;
//	if (i < n) { ... base[i] ... }
//
// with no loops, no atomics, no device-function calls and no reads of
// any stored array. Every memory access of thread t therefore lands on
// element t, so threads are fully isolated. Fusing producer P and
// consumer C (same grid, block, and guard bound) makes thread t execute
// exactly the statements thread t of P then thread t of C would have
// executed, in that order; since no other thread's statements can touch
// element t under either schedule, the fused launch is equivalent to
// running P then C — for any argument aliasing, including in-place
// chains. Consumer reads of a producer-stored element go through a
// scalar temporary of the stored array's element kind, whose declaration
// coerces exactly like the array store would (float32 rounding
// included), so results stay bit-identical. TestFuseElementwise and
// FuzzFusion check this equivalence numerically.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"grout/internal/memmodel"
)

// Elementwise is the compile-time fusion descriptor of a kernel with the
// canonical elementwise shape. It is attached to kernels.Def.Fusion by
// Compile; the AST stays private to this package.
type Elementwise struct {
	k *Kernel
	// Idx is the name of the global-thread-index local.
	Idx string
	// Guard is the index of the scalar parameter bounding the guard
	// (the n of "if (i < n)").
	Guard int
	// Stores lists, in body order, the indices of the pointer parameters
	// the kernel writes. Each is stored exactly once and never read.
	Stores []int
}

// NumParams reports the kernel's parameter count.
func (e *Elementwise) NumParams() int { return len(e.k.Params) }

// IsStore reports whether parameter i is one of the kernel's stores.
func (e *Elementwise) IsStore(i int) bool {
	for _, s := range e.Stores {
		if s == i {
			return true
		}
	}
	return false
}

// ElementwiseOf recognizes the canonical elementwise shape and returns
// its descriptor, or nil when the kernel does not qualify. The shape is
// deliberately strict — a thread-index declaration, a single guard
// against a scalar parameter, and a straight-line body of scalar
// declarations and element stores, all indexed by the thread index:
//
//	__global__ void axpy(float *y, const float *x, float a, int n) {
//	    int i = blockIdx.x * blockDim.x + threadIdx.x;
//	    if (i < n) { y[i] = a * x[i] + y[i]; }    // rejected: stores y, reads y
//	}
//
// (the example is rejected; "out[i] = a * x[i] + y[i]" qualifies).
// Loops, atomics, device-function calls, reads of stored parameters,
// and any index other than the plain thread index all disqualify.
func ElementwiseOf(k *Kernel) *Elementwise {
	if len(k.Body) != 2 {
		return nil
	}
	decl, ok := k.Body[0].(*DeclStmt)
	if !ok || decl.Kind != memmodel.Int32 || decl.Init == nil || !isGidExpr(decl.Init) {
		return nil
	}
	guard, ok := k.Body[1].(*IfStmt)
	if !ok || guard.Else != nil {
		return nil
	}
	cond, ok := guard.Cond.(*BinaryExpr)
	if !ok || cond.Op != "<" {
		return nil
	}
	lhs, ok := cond.L.(*IdentExpr)
	if !ok || lhs.Name != decl.Name {
		return nil
	}
	rhs, ok := cond.R.(*IdentExpr)
	if !ok {
		return nil
	}
	guardIdx := paramIndex(k, rhs.Name)
	if guardIdx < 0 || k.Params[guardIdx].Pointer {
		return nil
	}

	e := &Elementwise{k: k, Idx: decl.Name, Guard: guardIdx}
	stored := map[string]bool{}
	locals := map[string]bool{}
	var exprs []Expr
	for _, st := range guard.Then {
		switch s := st.(type) {
		case *DeclStmt:
			if s.Init == nil || s.Name == decl.Name || paramIndex(k, s.Name) >= 0 || locals[s.Name] {
				return nil
			}
			locals[s.Name] = true
			exprs = append(exprs, s.Init)
		case *AssignStmt:
			if s.Op != "=" {
				return nil
			}
			target, ok := s.Target.(*IndexExpr)
			if !ok || !isIdent(target.Idx, decl.Name) {
				return nil
			}
			pi := paramIndex(k, target.Base)
			if pi < 0 || !k.Params[pi].Pointer || stored[target.Base] {
				return nil
			}
			stored[target.Base] = true
			e.Stores = append(e.Stores, pi)
			exprs = append(exprs, s.Value)
		default:
			return nil
		}
	}
	if len(e.Stores) == 0 {
		return nil
	}
	for _, x := range exprs {
		if !e.okExpr(x, locals, stored) {
			return nil
		}
	}
	return e
}

// okExpr admits the expressions fusable bodies may contain: scalars,
// locals, the thread index, builtin vectors, math builtins, and element
// reads of non-stored pointer parameters at the thread index.
func (e *Elementwise) okExpr(x Expr, locals, stored map[string]bool) bool {
	switch v := x.(type) {
	case *NumberExpr:
		return true
	case *IdentExpr:
		if v.Name == e.Idx || locals[v.Name] {
			return true
		}
		pi := paramIndex(e.k, v.Name)
		return pi >= 0 && !e.k.Params[pi].Pointer
	case *IndexExpr:
		pi := paramIndex(e.k, v.Base)
		return pi >= 0 && e.k.Params[pi].Pointer && !stored[v.Base] && isIdent(v.Idx, e.Idx)
	case *MemberExpr:
		return true // threadIdx/blockIdx/blockDim/gridDim: per-thread pure
	case *BinaryExpr:
		return e.okExpr(v.L, locals, stored) && e.okExpr(v.R, locals, stored)
	case *UnaryExpr:
		return e.okExpr(v.X, locals, stored)
	case *CastExpr:
		return e.okExpr(v.X, locals, stored)
	case *CondExpr:
		return e.okExpr(v.C, locals, stored) && e.okExpr(v.T, locals, stored) && e.okExpr(v.F, locals, stored)
	case *CallExpr:
		if _, device := e.k.funcs[v.Name]; device {
			return false // helper bodies would need re-emission; keep the pass simple
		}
		for _, a := range v.Args {
			if !e.okExpr(a, locals, stored) {
				return false
			}
		}
		return true
	default:
		return false // AddrExpr (atomics) and anything new
	}
}

func isIdent(x Expr, name string) bool {
	id, ok := x.(*IdentExpr)
	return ok && id.Name == name
}

// paramDecl prints a renamed parameter declaration.
func paramDecl(p Param, name string) string {
	var b strings.Builder
	if p.Const {
		b.WriteString("const ")
	}
	b.WriteString(p.Kind.String())
	b.WriteString(" ")
	if p.Pointer {
		b.WriteString("*")
	}
	b.WriteString(name)
	return b.String()
}

func paramIndex(k *Kernel, name string) int {
	for i, p := range k.Params {
		if p.Name == name {
			return i
		}
	}
	return -1
}

// FusedParam maps one fused-kernel parameter back to the original pair.
type FusedParam struct {
	// FromConsumer selects which original kernel Index refers to.
	FromConsumer bool
	// Index is the parameter index in that kernel.
	Index int
}

// FusedKernel is the output of FuseElementwise: compilable source plus
// the argument mapping the optimizer uses to build the fused invocation.
type FusedKernel struct {
	// Name is the fused kernel's deterministic, content-derived name.
	Name string
	// Src is the complete __global__ source; compile it with Compile to
	// hit the source-hash cache.
	Src string
	// Params maps each fused parameter to its origin.
	Params []FusedParam
}

// FuseSpec directs a fusion. The optimizer fills it from the window's
// array bindings; FuseElementwise validates it structurally.
type FuseSpec struct {
	// Link maps consumer parameter indices to the producer store
	// parameter whose element value they read (both sides bound to the
	// same array in the window). Linked consumer parameters disappear
	// from the fused signature; their reads become the store's scalar
	// temporary. Must be non-empty, and linked consumer parameters must
	// not themselves be stores.
	Link map[int]int
	// Drop marks producer store parameters whose array store is elided
	// entirely (the optimizer proved the intermediate dead: no reader
	// before a full overwrite inside the lookahead window). A dropped
	// parameter must be linked by at least one consumer parameter and
	// disappears from the fused signature.
	Drop map[int]bool
}

// FuseElementwise builds the fused kernel for a producer→consumer pair.
// The caller (the optimizer) is responsible for the schedule-level
// legality: equal grid/block, equal guard argument values, no CE between
// the pair touching the producer's arrays, and tenant isolation. This
// function owns the AST-level construction and its structural checks.
func FuseElementwise(p, c *Elementwise, spec FuseSpec) (*FusedKernel, error) {
	if len(spec.Link) == 0 {
		return nil, fmt.Errorf("minicuda: fuse of %s into %s links nothing", p.k.Name, c.k.Name)
	}
	linkedStores := map[int]bool{}
	for ci, pi := range spec.Link {
		if ci < 0 || ci >= len(c.k.Params) || !c.k.Params[ci].Pointer || c.IsStore(ci) {
			return nil, fmt.Errorf("minicuda: fuse link target %d is not a read-only pointer of %s", ci, c.k.Name)
		}
		if !p.IsStore(pi) {
			return nil, fmt.Errorf("minicuda: fuse link source %d is not a store of %s", pi, p.k.Name)
		}
		linkedStores[pi] = true
	}
	for pi := range spec.Drop {
		if !linkedStores[pi] {
			return nil, fmt.Errorf("minicuda: dropped store %d of %s is not linked", pi, p.k.Name)
		}
	}

	// Fused parameter list: producer parameters (minus dropped stores),
	// then consumer parameters (minus linked reads). Renaming with side
	// prefixes makes cross-kernel collisions impossible, chains included.
	var params []FusedParam
	var sig []string
	pName := make([]string, len(p.k.Params))
	for i, prm := range p.k.Params {
		pName[i] = "p_" + prm.Name
		if spec.Drop[i] {
			continue
		}
		params = append(params, FusedParam{Index: i})
		sig = append(sig, paramDecl(prm, pName[i]))
	}
	cName := make([]string, len(c.k.Params))
	for i, prm := range c.k.Params {
		cName[i] = "c_" + prm.Name
		if _, linked := spec.Link[i]; linked {
			continue
		}
		params = append(params, FusedParam{FromConsumer: true, Index: i})
		sig = append(sig, paramDecl(prm, cName[i]))
	}

	// Scalar temporaries carrying linked store values, one per linked
	// producer store, declared with the store's element kind so the
	// coercion matches the array store it replaces.
	temp := map[int]string{}
	tempOrder := make([]int, 0, len(linkedStores))
	for pi := range linkedStores {
		tempOrder = append(tempOrder, pi)
	}
	sort.Ints(tempOrder)
	for n, pi := range tempOrder {
		temp[pi] = fmt.Sprintf("_t%d", n)
	}

	var body strings.Builder
	body.WriteString("  int _gi = blockIdx.x * blockDim.x + threadIdx.x;\n")
	fmt.Fprintf(&body, "  if (_gi < %s) {\n", pName[p.Guard])
	if err := emitSide(&body, p, pName, func(storeParam int) (string, bool) {
		return temp[storeParam], spec.Drop[storeParam]
	}, nil); err != nil {
		return nil, err
	}
	consumerElem := map[string]string{}
	for ci, pi := range spec.Link {
		consumerElem[c.k.Params[ci].Name] = temp[pi]
	}
	if err := emitSide(&body, c, cName, func(int) (string, bool) { return "", false }, consumerElem); err != nil {
		return nil, err
	}
	body.WriteString("  }\n")

	name := "fused_" + CacheKey(body.String()+"|"+strings.Join(sig, ","), "")[:12]
	src := fmt.Sprintf("__global__ void %s(%s) {\n%s}\n", name, strings.Join(sig, ", "), body.String())
	return &FusedKernel{Name: name, Src: src, Params: params}, nil
}

// emitSide prints one kernel's guarded body with renamed identifiers.
// storeTemp reports, for a store parameter, the temporary carrying its
// value (empty for none) and whether the array store itself is elided.
// elemSub substitutes whole element reads base[idx] by a temporary.
func emitSide(w *strings.Builder, e *Elementwise, name []string,
	storeTemp func(int) (string, bool), elemSub map[string]string) error {
	pr := &printer{
		k:     e.k,
		idx:   e.Idx,
		param: name,
		local: map[string]string{},
		elem:  elemSub,
	}
	guard := e.k.Body[1].(*IfStmt)
	for _, st := range guard.Then {
		switch s := st.(type) {
		case *DeclStmt:
			// Side-prefix locals like parameters: "p_"/"c_" never clash
			// with "_gi"/"_tN" or the other side's names.
			pr.local[s.Name] = name[0][:2] + s.Name
			init, err := pr.expr(s.Init)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "    %s %s = %s;\n", s.Kind, pr.local[s.Name], init)
		case *AssignStmt:
			target := s.Target.(*IndexExpr)
			pi := paramIndex(e.k, target.Base)
			val, err := pr.expr(s.Value)
			if err != nil {
				return err
			}
			tmp, drop := storeTemp(pi)
			if tmp != "" {
				fmt.Fprintf(w, "    %s %s = %s;\n", e.k.Params[pi].Kind, tmp, val)
				val = tmp
			}
			if !drop {
				fmt.Fprintf(w, "    %s[_gi] = %s;\n", name[pi], val)
			}
		default:
			return fmt.Errorf("minicuda: unexpected statement in elementwise body of %s", e.k.Name)
		}
	}
	return nil
}

// printer renders elementwise-body expressions back to source with
// renamed identifiers. It only handles the node set okExpr admits.
type printer struct {
	k     *Kernel
	idx   string
	param []string
	local map[string]string
	elem  map[string]string // element reads substituted by temporaries
}

func (pr *printer) expr(x Expr) (string, error) {
	switch v := x.(type) {
	case *NumberExpr:
		return formatNumber(v), nil
	case *IdentExpr:
		if v.Name == pr.idx {
			return "_gi", nil
		}
		if n, ok := pr.local[v.Name]; ok {
			return n, nil
		}
		if pi := paramIndex(pr.k, v.Name); pi >= 0 {
			return pr.param[pi], nil
		}
		return "", fmt.Errorf("minicuda: fuse: unknown identifier %s", v.Name)
	case *IndexExpr:
		if t, ok := pr.elem[v.Base]; ok {
			return t, nil
		}
		pi := paramIndex(pr.k, v.Base)
		if pi < 0 {
			return "", fmt.Errorf("minicuda: fuse: unknown array %s", v.Base)
		}
		return pr.param[pi] + "[_gi]", nil
	case *MemberExpr:
		return v.Base + "." + v.Field, nil
	case *BinaryExpr:
		l, err := pr.expr(v.L)
		if err != nil {
			return "", err
		}
		r, err := pr.expr(v.R)
		if err != nil {
			return "", err
		}
		return "(" + l + " " + v.Op + " " + r + ")", nil
	case *UnaryExpr:
		s, err := pr.expr(v.X)
		if err != nil {
			return "", err
		}
		return v.Op + "(" + s + ")", nil
	case *CastExpr:
		s, err := pr.expr(v.X)
		if err != nil {
			return "", err
		}
		return "(" + v.Kind.String() + ")(" + s + ")", nil
	case *CondExpr:
		cs, err := pr.expr(v.C)
		if err != nil {
			return "", err
		}
		ts, err := pr.expr(v.T)
		if err != nil {
			return "", err
		}
		fs, err := pr.expr(v.F)
		if err != nil {
			return "", err
		}
		return "(" + cs + " ? " + ts + " : " + fs + ")", nil
	case *CallExpr:
		args := make([]string, len(v.Args))
		for i, a := range v.Args {
			s, err := pr.expr(a)
			if err != nil {
				return "", err
			}
			args[i] = s
		}
		return v.Name + "(" + strings.Join(args, ", ") + ")", nil
	default:
		return "", fmt.Errorf("minicuda: fuse: unprintable expression %T", x)
	}
}

// formatNumber round-trips a literal, preserving its int/float spelling:
// "2" parses as an integer (integer division semantics) while "2.0"
// parses as a float, so the distinction must survive printing.
func formatNumber(v *NumberExpr) string {
	if v.IsInt {
		if v.Val < 0 {
			return "(0 - " + strconv.FormatInt(-int64(v.Val), 10) + ")"
		}
		return strconv.FormatInt(int64(v.Val), 10)
	}
	s := strconv.FormatFloat(v.Val, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	if strings.HasPrefix(s, "-") {
		// The lexer has no negative literals; re-parse as a negation.
		s = "(0.0 - " + s[1:] + ")"
	}
	return s
}
