package minicuda

import (
	"math"
	"strings"
	"testing"

	"grout/internal/kernels"
	"grout/internal/memmodel"
)

const deviceFuncSrc = `
__device__ float cnd(float d) {
    return 0.5 * erfcf((0.0 - d) / sqrtf(2.0));
}

__device__ float payoff(float s, float k) {
    return fmaxf(s - k, 0.0);
}

extern "C" __global__ void priceish(float *out, const float *spot, float strike, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        out[i] = payoff(spot[i], strike) + cnd(spot[i] / strike - 1.0);
    }
}`

func TestDeviceFunctions(t *testing.T) {
	def := compile(t, deviceFuncSrc, "")
	const n = 64
	out := kernels.NewBuffer(memmodel.Float32, n)
	spot := kernels.NewBuffer(memmodel.Float32, n)
	for i := 0; i < n; i++ {
		spot.Set(i, 80+float64(i))
	}
	if err := def.ExecuteLaunch(2, 32, []kernels.Arg{
		kernels.BufArg(out), kernels.BufArg(spot),
		kernels.ScalarArg(100), kernels.ScalarArg(n)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		s := spot.At(i)
		want := math.Max(s-100, 0) + 0.5*math.Erfc(-(s/100-1)/math.Sqrt2)
		if math.Abs(out.At(i)-want) > 1e-4 {
			t.Fatalf("out[%d] = %v, want %v", i, out.At(i), want)
		}
	}
}

func TestDeviceFunctionChains(t *testing.T) {
	src := `
__device__ float twice(float x) {
    return 2.0 * x;
}
__device__ float quad(float x) {
    return twice(twice(x));
}
__global__ void apply(float *y, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { y[i] = quad((float) i); }
}`
	def := compile(t, src, "")
	y := kernels.NewBuffer(memmodel.Float32, 8)
	if err := def.ExecuteLaunch(1, 8, []kernels.Arg{
		kernels.BufArg(y), kernels.ScalarArg(8)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if y.At(i) != 4*float64(i) {
			t.Fatalf("y[%d] = %v, want %v", i, y.At(i), 4*i)
		}
	}
}

func TestDeviceFunctionControlFlow(t *testing.T) {
	src := `
__device__ int collatzSteps(int x, int cap) {
    int steps = 0;
    while (x > 1 && steps < cap) {
        if (x % 2 == 0) {
            x = x / 2;
        } else {
            x = 3 * x + 1;
        }
        steps++;
    }
    return steps;
}
__global__ void collatz(float *y, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { y[i] = (float) collatzSteps(i + 1, 100); }
}`
	def := compile(t, src, "")
	y := kernels.NewBuffer(memmodel.Float32, 8)
	if err := def.ExecuteLaunch(1, 8, []kernels.Arg{
		kernels.BufArg(y), kernels.ScalarArg(8)}); err != nil {
		t.Fatal(err)
	}
	// Collatz steps for 1..8: 0,1,7,2,5,8,16,3.
	want := []float64{0, 1, 7, 2, 5, 8, 16, 3}
	for i := range want {
		if y.At(i) != want[i] {
			t.Fatalf("collatz(%d) = %v, want %v", i+1, y.At(i), want[i])
		}
	}
}

func TestDeviceFunctionErrors(t *testing.T) {
	cases := map[string]string{
		"recursion": `
__device__ float f(float x) { return f(x - 1.0); }
__global__ void k(float *y, int n) { y[0] = f(3.0); }`,
		"mutual recursion": `
__device__ float f(float x) { return g(x); }
__device__ float g(float x) { return f(x); }
__global__ void k(float *y, int n) { y[0] = f(3.0); }`,
		"pointer param": `
__device__ float f(float *x) { return x[0]; }
__global__ void k(float *y, int n) { y[0] = 1.0; }`,
		"duplicate": `
__device__ float f(float x) { return x; }
__device__ float f(float x) { return x; }
__global__ void k(float *y, int n) { y[0] = 1.0; }`,
		"void return type": `
__device__ void f(float x) { return; }
__global__ void k(float *y, int n) { y[0] = 1.0; }`,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: parse succeeded", name)
		}
	}
}

func TestDeviceFunctionRuntimeErrors(t *testing.T) {
	// Falling off the end of a __device__ function is a runtime error.
	src := `
__device__ float f(float x) {
    if (x > 0.0) { return x; }
    x = x + 1.0;
}
__global__ void k(float *y, int n) {
    y[0] = f(0.0 - 1.0);
}`
	def := compile(t, src, "")
	y := kernels.NewBuffer(memmodel.Float32, 1)
	err := def.ExecuteLaunch(1, 1, []kernels.Arg{kernels.BufArg(y), kernels.ScalarArg(1)})
	if err == nil || !strings.Contains(err.Error(), "without returning") {
		t.Fatalf("missing-return not caught: %v", err)
	}
	// Arity mismatch at the call site.
	src2 := `
__device__ float f(float x) { return x; }
__global__ void k(float *y, int n) { y[0] = f(1.0, 2.0); }`
	def2 := compile(t, src2, "")
	if err := def2.ExecuteLaunch(1, 1, []kernels.Arg{
		kernels.BufArg(y), kernels.ScalarArg(1)}); err == nil {
		t.Fatalf("arity mismatch accepted")
	}
	// return-with-value inside a kernel body.
	src3 := `__global__ void k(float *y, int n) { return 3.0; }`
	def3 := compile(t, src3, "")
	if err := def3.ExecuteLaunch(1, 1, []kernels.Arg{
		kernels.BufArg(y), kernels.ScalarArg(1)}); err == nil {
		t.Fatalf("value return from kernel accepted")
	}
}

func TestDeviceFunctionScoping(t *testing.T) {
	// A helper's local named like a kernel parameter must not leak.
	src := `
__device__ float f(float n) {
    float acc = n * 2.0;
    return acc;
}
__global__ void k(float *y, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { y[i] = f((float) i) + (float) n; }
}`
	def := compile(t, src, "")
	y := kernels.NewBuffer(memmodel.Float32, 4)
	if err := def.ExecuteLaunch(1, 4, []kernels.Arg{
		kernels.BufArg(y), kernels.ScalarArg(4)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if want := 2*float64(i) + 4; y.At(i) != want {
			t.Fatalf("y[%d] = %v, want %v", i, y.At(i), want)
		}
	}
}

func TestDeviceFunctionCostAndAccess(t *testing.T) {
	def := compile(t, deviceFuncSrc, "")
	// Cost must include the helper bodies (more than a bare elementwise op).
	cost := def.CostLaunch(4, 64, []kernels.ArgMeta{
		{IsBuffer: true, Len: 256}, {IsBuffer: true, Len: 256},
		{Scalar: 100}, {Scalar: 256}})
	if cost.OpsPerElement < 10 {
		t.Fatalf("ops/element = %v, want >= 10 (helpers inlined)", cost.OpsPerElement)
	}
	// spot[i] with i linear stays sequential even though the value feeds
	// helpers.
	accs := def.Access(nil)
	if accs[1].Pattern != memmodel.Sequential {
		t.Fatalf("spot pattern = %v, want sequential", accs[1].Pattern)
	}
}

// The call-classification fix: a math function OF the thread id used as an
// index is no longer linear, but it is not data-dependent either.
func TestNonlinearIndexClassification(t *testing.T) {
	src := `
__global__ void scatterish(float *out, const float *in, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        int j = (int) fabsf((float)(i * i % n));
        out[i] = in[j];
    }
}`
	def := compile(t, src, "")
	accs := def.Access(nil)
	if accs[1].Pattern != memmodel.Strided {
		t.Fatalf("nonlinear index pattern = %v, want strided", accs[1].Pattern)
	}
}

func TestBreakAndContinue(t *testing.T) {
	src := `
__global__ void countodd(float *y, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        int count = 0;
        for (int j = 0; j < 100; j++) {
            if (j >= i) {
                break;
            }
            if (j % 2 == 0) {
                continue;
            }
            count++;
        }
        y[i] = (float) count;
    }
}`
	def := compile(t, src, "")
	y := kernels.NewBuffer(memmodel.Float32, 8)
	if err := def.ExecuteLaunch(1, 8, []kernels.Arg{
		kernels.BufArg(y), kernels.ScalarArg(8)}); err != nil {
		t.Fatal(err)
	}
	// Odd j's strictly below i: floor(i/2).
	for i := 0; i < 8; i++ {
		if y.At(i) != float64(i/2) {
			t.Fatalf("y[%d] = %v, want %v", i, y.At(i), i/2)
		}
	}
}

func TestBreakInWhile(t *testing.T) {
	src := `
__global__ void findfirst(float *y, const float *x, float target, int n) {
    int i = 0;
    while (i < n) {
        if (x[i] == target) {
            break;
        }
        i++;
    }
    y[0] = (float) i;
}`
	def := compile(t, src, "")
	x := kernels.NewBuffer(memmodel.Float32, 8)
	x.Set(5, 42)
	y := kernels.NewBuffer(memmodel.Float32, 1)
	if err := def.ExecuteLaunch(1, 1, []kernels.Arg{
		kernels.BufArg(y), kernels.BufArg(x), kernels.ScalarArg(42), kernels.ScalarArg(8)}); err != nil {
		t.Fatal(err)
	}
	if y.At(0) != 5 {
		t.Fatalf("findfirst = %v, want 5", y.At(0))
	}
}

func TestBreakOutsideLoopRejected(t *testing.T) {
	for _, src := range []string{
		`__global__ void k(float *y, int n) { break; }`,
		`__global__ void k(float *y, int n) { continue; }`,
		`__device__ float f(float x) { break; return x; }
__global__ void k(float *y, int n) { y[0] = f(1.0); }`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted: %s", src)
		}
	}
	// break inside a loop inside a device function is fine.
	ok := `
__device__ float f(float x) {
    while (x > 0.0) { break; }
    return x;
}
__global__ void k(float *y, int n) { y[0] = f(1.0); }`
	if _, err := Parse(ok); err != nil {
		t.Fatalf("valid device-function break rejected: %v", err)
	}
}
