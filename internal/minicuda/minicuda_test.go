package minicuda

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"grout/internal/kernels"
	"grout/internal/memmodel"
)

const saxpySrc = `
extern "C" __global__ void saxpy(float *y, const float *x, float a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        y[i] = y[i] + a * x[i];
    }
}`

func compile(t *testing.T, src, sig string) *kernels.Def {
	t.Helper()
	def, err := Compile(src, sig)
	if err != nil {
		t.Fatal(err)
	}
	return def
}

func TestLexerBasics(t *testing.T) {
	toks, err := lexAll(`foo 12 3.5 1e-3 2.0f <= ++ // comment
	/* block
	comment */ bar "C"`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokKind
	var lits []string
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
		lits = append(lits, tk.Lit)
	}
	want := []string{"foo", "12", "3.5", "1e-3", "2.0", "<=", "++", "bar", "C", ""}
	if len(lits) != len(want) {
		t.Fatalf("tokens = %v", lits)
	}
	for i := range want {
		if lits[i] != want[i] {
			t.Fatalf("token %d = %q, want %q (all: %v)", i, lits[i], want[i], lits)
		}
	}
	if kinds[8] != tokString {
		t.Fatalf("string literal kind = %v", kinds[8])
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lexAll("a $ b"); err == nil {
		t.Fatalf("bad character accepted")
	}
	if _, err := lexAll("/* unterminated"); err == nil {
		t.Fatalf("unterminated comment accepted")
	}
	if _, err := lexAll(`"unterminated`); err == nil {
		t.Fatalf("unterminated string accepted")
	}
}

func TestParseSaxpy(t *testing.T) {
	ks, err := Parse(saxpySrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 1 {
		t.Fatalf("kernel count = %d", len(ks))
	}
	k := ks[0]
	if k.Name != "saxpy" || len(k.Params) != 4 {
		t.Fatalf("kernel = %s/%d params", k.Name, len(k.Params))
	}
	if !k.Params[0].Pointer || k.Params[0].Const {
		t.Fatalf("param y = %+v", k.Params[0])
	}
	if !k.Params[1].Pointer || !k.Params[1].Const {
		t.Fatalf("param x = %+v", k.Params[1])
	}
	if k.Params[2].Pointer || k.Params[2].Kind != memmodel.Float32 {
		t.Fatalf("param a = %+v", k.Params[2])
	}
	if k.Params[3].Kind != memmodel.Int32 {
		t.Fatalf("param n = %+v", k.Params[3])
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":              ``,
		"no global":          `void f(int n) {}`,
		"bad type":           `__global__ void f(quaternion q) {}`,
		"dup param":          `__global__ void f(int a, float a) {}`,
		"ptr-to-ptr":         `__global__ void f(float **x) {}`,
		"unterminated block": `__global__ void f(int n) { if (n) {`,
		"assign to call":     `__global__ void f(int n) { sqrt(n) = 3; }`,
		"bare expr":          `__global__ void f(int n) { n + 1; }`,
		"infinite for":       `__global__ void f(int n) { for (;;) { n = 1; } }`,
		"index non-pointer":  `__global__ void f(int n) { int i = 0; i[0] = 1; }`,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: parse succeeded", name)
		}
	}
}

func TestCompileAndRunSaxpy(t *testing.T) {
	def := compile(t, saxpySrc, "pointer float, const pointer float, float, sint32")
	const n = 100
	y := kernels.NewBuffer(memmodel.Float32, n)
	x := kernels.NewBuffer(memmodel.Float32, n)
	for i := 0; i < n; i++ {
		y.Set(i, 1)
		x.Set(i, float64(i))
	}
	args := []kernels.Arg{
		kernels.BufArg(y), kernels.BufArg(x),
		kernels.ScalarArg(2), kernels.ScalarArg(n),
	}
	// 4 blocks x 32 threads = 128 threads covering n=100 with a guard.
	if err := def.ExecuteLaunch(4, 32, args); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if want := 1 + 2*float64(i); y.At(i) != want {
			t.Fatalf("y[%d] = %v, want %v", i, y.At(i), want)
		}
	}
}

func TestCompiledMatchesNativeAxpy(t *testing.T) {
	def := compile(t, saxpySrc, "")
	native, _ := kernels.StdRegistry().Lookup("axpy")
	f := func(seed uint8) bool {
		const n = 64
		yc := kernels.NewBuffer(memmodel.Float32, n)
		xc := kernels.NewBuffer(memmodel.Float32, n)
		for i := 0; i < n; i++ {
			yc.Set(i, float64((int(seed)+i)%17))
			xc.Set(i, float64((int(seed)*3+i)%23))
		}
		yn := yc.Clone()
		xn := xc.Clone()
		alpha := float64(seed%7) + 0.5
		if err := def.ExecuteLaunch(2, 32, []kernels.Arg{
			kernels.BufArg(yc), kernels.BufArg(xc),
			kernels.ScalarArg(alpha), kernels.ScalarArg(n)}); err != nil {
			return false
		}
		if err := native.Execute([]kernels.Arg{
			kernels.BufArg(yn), kernels.BufArg(xn),
			kernels.ScalarArg(alpha), kernels.ScalarArg(n)}); err != nil {
			return false
		}
		return yc.MaxAbsDiff(yn) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAccessAnalysisSaxpy(t *testing.T) {
	def := compile(t, saxpySrc, "")
	accs := def.Access(nil)
	if accs[0].Mode != memmodel.ReadWrite {
		t.Fatalf("y mode = %v, want rw", accs[0].Mode)
	}
	if accs[1].Mode != memmodel.Read {
		t.Fatalf("x mode = %v, want r", accs[1].Mode)
	}
	if accs[0].Pattern != memmodel.Sequential || accs[1].Pattern != memmodel.Sequential {
		t.Fatalf("saxpy patterns = %v/%v, want sequential", accs[0].Pattern, accs[1].Pattern)
	}
}

// condWriteSrc stores out[i] only when a loaded value allows it. Threads
// whose branch folds the other way keep the array's old bytes, so the
// analysis must report ReadWrite: declaring a full overwrite would let
// the runtime skip shipping the bytes this kernel preserves.
const condWriteSrc = `
__global__ void cond_write(float *out, const float *gate, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        float g = gate[i];
        if (g > 0.0) {
            out[i] = g * 2.0;
        }
    }
}`

func TestAccessAnalysisConditionalWrite(t *testing.T) {
	def := compile(t, condWriteSrc, "")
	accs := def.Access(nil)
	if accs[0].Mode != memmodel.ReadWrite {
		t.Fatalf("out mode = %v, want rw (data-dependent branch makes the store partial)", accs[0].Mode)
	}
	if accs[1].Mode != memmodel.Read {
		t.Fatalf("gate mode = %v, want r", accs[1].Mode)
	}
}

// The canonical thread guard alone stays a full overwrite — it is how
// every kernel bounds its grid, not a data-dependent store.
const guardOnlySrc = `
__global__ void guard_only(float *out, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        out[i] = 1.0;
    }
}`

func TestAccessAnalysisGuardStaysFullWrite(t *testing.T) {
	def := compile(t, guardOnlySrc, "")
	accs := def.Access(nil)
	if accs[0].Mode != memmodel.Write {
		t.Fatalf("out mode = %v, want w (thread guard is not a partial store)", accs[0].Mode)
	}
}

// A data-dependent trip count gates the body's stores like a branch:
// zero iterations preserve old bytes.
const condLoopSrc = `
__global__ void cond_loop(float *out, const float *len, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        int m = (int)len[i];
        for (int j = 0; j < m; j++) {
            out[i] = (float)j;
        }
    }
}`

func TestAccessAnalysisConditionalLoopWrite(t *testing.T) {
	def := compile(t, condLoopSrc, "")
	accs := def.Access(nil)
	if accs[0].Mode != memmodel.ReadWrite {
		t.Fatalf("out mode = %v, want rw (data-dependent trip count makes the store partial)", accs[0].Mode)
	}
}

const gemvSrc = `
__global__ void gemv(float *y, const float *A, const float *x, int rows, int cols) {
    int row = blockIdx.x * blockDim.x + threadIdx.x;
    if (row < rows) {
        float sum = 0.0;
        for (int j = 0; j < cols; j++) {
            sum += A[row * cols + j] * x[j];
        }
        y[row] = sum;
    }
}`

func TestAccessAnalysisGemv(t *testing.T) {
	def := compile(t, gemvSrc, "")
	accs := def.Access(nil)
	if accs[0].Pattern != memmodel.Sequential || accs[0].Mode != memmodel.Write {
		t.Fatalf("y access = %+v", accs[0])
	}
	// A[row*cols+j]: per-thread contiguous row sweep -> sequential.
	if accs[1].Pattern != memmodel.Sequential || accs[1].Mode != memmodel.Read {
		t.Fatalf("A access = %+v", accs[1])
	}
	// x[j]: loop-only index, every thread reads it all -> broadcast.
	if accs[2].Pattern != memmodel.Broadcast {
		t.Fatalf("x pattern = %v, want broadcast", accs[2].Pattern)
	}
}

func TestGemvNumeric(t *testing.T) {
	def := compile(t, gemvSrc, "")
	// 3x2 matrix [[1,2],[3,4],[5,6]] * [10,100] = [210, 430, 650]
	A := kernels.NewBuffer(memmodel.Float32, 6)
	for i := 0; i < 6; i++ {
		A.Set(i, float64(i+1))
	}
	x := kernels.NewBuffer(memmodel.Float32, 2)
	x.Set(0, 10)
	x.Set(1, 100)
	y := kernels.NewBuffer(memmodel.Float32, 3)
	if err := def.ExecuteLaunch(1, 4, []kernels.Arg{
		kernels.BufArg(y), kernels.BufArg(A), kernels.BufArg(x),
		kernels.ScalarArg(3), kernels.ScalarArg(2)}); err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{210, 430, 650} {
		if y.At(i) != want {
			t.Fatalf("y[%d] = %v, want %v", i, y.At(i), want)
		}
	}
}

const gatherSrc = `
__global__ void gather(float *out, const float *src, const int *idx, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        out[i] = src[idx[i]];
    }
}`

func TestAccessAnalysisGather(t *testing.T) {
	def := compile(t, gatherSrc, "")
	accs := def.Access(nil)
	// src[idx[i]]: data-dependent index -> random.
	if accs[1].Pattern != memmodel.Random {
		t.Fatalf("src pattern = %v, want random", accs[1].Pattern)
	}
	// idx[i] itself is a sequential read.
	if accs[2].Pattern != memmodel.Sequential {
		t.Fatalf("idx pattern = %v, want sequential", accs[2].Pattern)
	}
}

const stridedSrc = `
__global__ void transposeish(float *out, const float *in, int n, int stride) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        out[i] = in[i * stride];
    }
}`

func TestAccessAnalysisStrided(t *testing.T) {
	def := compile(t, stridedSrc, "")
	accs := def.Access(nil)
	if accs[1].Pattern != memmodel.Strided {
		t.Fatalf("in pattern = %v, want strided", accs[1].Pattern)
	}
}

const atomicSrc = `
__global__ void reduce_sum(float *out, const float *x, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        atomicAdd(&out[0], x[i]);
    }
}`

func TestAtomicAddReduction(t *testing.T) {
	def := compile(t, atomicSrc, "")
	const n = 50
	out := kernels.NewBuffer(memmodel.Float32, 1)
	x := kernels.NewBuffer(memmodel.Float32, n)
	var want float64
	for i := 0; i < n; i++ {
		x.Set(i, float64(i))
		want += float64(i)
	}
	if err := def.ExecuteLaunch(2, 32, []kernels.Arg{
		kernels.BufArg(out), kernels.BufArg(x), kernels.ScalarArg(n)}); err != nil {
		t.Fatal(err)
	}
	if out.At(0) != want {
		t.Fatalf("reduction = %v, want %v", out.At(0), want)
	}
	accs := def.Access(nil)
	if !accs[0].Mode.Writes() || !accs[0].Mode.Reads() {
		t.Fatalf("atomic target mode = %v, want rw", accs[0].Mode)
	}
}

const mathSrc = `
__global__ void mathy(float *y, const float *x, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        float v = x[i];
        y[i] = sqrtf(fabsf(v)) + expf(0.0f - v) + fmaxf(v, 1.0f);
    }
}`

func TestMathBuiltins(t *testing.T) {
	// fmaxf is fmax+f suffix; ensure the f-suffix resolution works.
	src := strings.ReplaceAll(mathSrc, "fmaxf", "fmax")
	def := compile(t, src, "")
	const n = 8
	y := kernels.NewBuffer(memmodel.Float32, n)
	x := kernels.NewBuffer(memmodel.Float32, n)
	for i := 0; i < n; i++ {
		x.Set(i, float64(i)-3)
	}
	if err := def.ExecuteLaunch(1, n, []kernels.Arg{
		kernels.BufArg(y), kernels.BufArg(x), kernels.ScalarArg(n)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v := x.At(i)
		want := math.Sqrt(math.Abs(v)) + math.Exp(-v) + math.Max(v, 1)
		if math.Abs(y.At(i)-want) > 1e-4 {
			t.Fatalf("y[%d] = %v, want %v", i, y.At(i), want)
		}
	}
}

func TestWhileAndIncDec(t *testing.T) {
	src := `
__global__ void countdown(float *y, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        int c = 0;
        int k = i;
        while (k > 0) {
            k--;
            c++;
        }
        y[i] = (float) c;
    }
}`
	def := compile(t, src, "")
	const n = 10
	y := kernels.NewBuffer(memmodel.Float32, n)
	if err := def.ExecuteLaunch(1, 16, []kernels.Arg{
		kernels.BufArg(y), kernels.ScalarArg(n)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if y.At(i) != float64(i) {
			t.Fatalf("y[%d] = %v, want %v", i, y.At(i), i)
		}
	}
}

func TestTernaryAndLogic(t *testing.T) {
	src := `
__global__ void clampsign(float *y, const float *x, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n && i >= 0) {
        y[i] = x[i] > 0.0 ? 1.0 : (x[i] < 0.0 ? 0.0 - 1.0 : 0.0);
    }
}`
	def := compile(t, src, "")
	y := kernels.NewBuffer(memmodel.Float32, 3)
	x := kernels.NewBuffer(memmodel.Float32, 3)
	x.Set(0, -5)
	x.Set(1, 0)
	x.Set(2, 9)
	if err := def.ExecuteLaunch(1, 4, []kernels.Arg{
		kernels.BufArg(y), kernels.BufArg(x), kernels.ScalarArg(3)}); err != nil {
		t.Fatal(err)
	}
	if y.At(0) != -1 || y.At(1) != 0 || y.At(2) != 1 {
		t.Fatalf("signs = [%v %v %v]", y.At(0), y.At(1), y.At(2))
	}
}

func TestRuntimeErrors(t *testing.T) {
	def := compile(t, saxpySrc, "")
	y := kernels.NewBuffer(memmodel.Float32, 4)
	x := kernels.NewBuffer(memmodel.Float32, 4)
	// n larger than buffers: guarded by i<n, so this writes out of
	// bounds and must error.
	err := def.ExecuteLaunch(1, 32, []kernels.Arg{
		kernels.BufArg(y), kernels.BufArg(x),
		kernels.ScalarArg(1), kernels.ScalarArg(32)})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-bounds write not caught: %v", err)
	}
	// Bad launch config.
	if err := def.ExecuteLaunch(0, 32, []kernels.Arg{
		kernels.BufArg(y), kernels.BufArg(x),
		kernels.ScalarArg(1), kernels.ScalarArg(4)}); err == nil {
		t.Fatalf("zero grid accepted")
	}
	// Division by zero.
	divSrc := `
__global__ void div0(float *y, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int z = 0;
    if (i < n) { y[i] = (float)(i / z); }
}`
	d2 := compile(t, divSrc, "")
	if err := d2.ExecuteLaunch(1, 1, []kernels.Arg{
		kernels.BufArg(y), kernels.ScalarArg(1)}); err == nil {
		t.Fatalf("integer division by zero accepted")
	}
}

func TestInfiniteLoopGuard(t *testing.T) {
	src := `
__global__ void spin(float *y, int n) {
    int i = 0;
    while (n >= 0) {
        i++;
    }
    y[0] = (float) i;
}`
	def := compile(t, src, "")
	y := kernels.NewBuffer(memmodel.Float32, 1)
	err := def.ExecuteLaunch(1, 1, []kernels.Arg{kernels.BufArg(y), kernels.ScalarArg(1)})
	if err == nil || !strings.Contains(err.Error(), "steps") {
		t.Fatalf("infinite loop not caught: %v", err)
	}
}

func TestCostEstimateUsesLoopBounds(t *testing.T) {
	def := compile(t, gemvSrc, "")
	meta := []kernels.ArgMeta{
		{IsBuffer: true, Len: 1 << 20}, {IsBuffer: true, Len: 1 << 20},
		{IsBuffer: true, Len: 1024},
		{Scalar: 1024}, {Scalar: 1024},
	}
	small := def.CostLaunch(4, 256, meta)
	metaBig := append([]kernels.ArgMeta(nil), meta...)
	metaBig[4] = kernels.ArgMeta{Scalar: 4096}
	big := def.CostLaunch(4, 256, metaBig)
	if big.OpsPerElement <= small.OpsPerElement {
		t.Fatalf("cost not scaled by loop bound: %v vs %v",
			big.OpsPerElement, small.OpsPerElement)
	}
	if small.Elements != 4*256 {
		t.Fatalf("elements = %d, want grid*block", small.Elements)
	}
}

func TestCompileNamedAndAll(t *testing.T) {
	src := saxpySrc + "\n" + gemvSrc
	if _, err := Compile(src, ""); err == nil {
		t.Fatalf("multi-kernel Compile without name accepted")
	}
	def, err := CompileNamed(src, "gemv", "")
	if err != nil || def.Name != "gemv" {
		t.Fatalf("CompileNamed = %v, %v", def, err)
	}
	if _, err := CompileNamed(src, "missing", ""); err == nil {
		t.Fatalf("missing kernel accepted")
	}
	defs, err := CompileAll(src)
	if err != nil || len(defs) != 2 {
		t.Fatalf("CompileAll = %d defs, %v", len(defs), err)
	}
}

func TestSignatureMismatch(t *testing.T) {
	if _, err := Compile(saxpySrc, "pointer float, pointer float"); err == nil {
		t.Fatalf("arity mismatch accepted")
	}
	if _, err := Compile(saxpySrc, "sint32, const pointer float, float, sint32"); err == nil {
		t.Fatalf("pointer-ness mismatch accepted")
	}
	if _, err := Compile(saxpySrc, "pointer double, const pointer float, float, sint32"); err == nil {
		t.Fatalf("kind mismatch accepted")
	}
	// A matching signature is accepted and used.
	def, err := Compile(saxpySrc, "pointer float, const pointer float, float, sint32")
	if err != nil {
		t.Fatal(err)
	}
	if !def.Sig.Params[1].Const {
		t.Fatalf("declared const lost")
	}
}

// Property: parser never panics on mutated sources.
func TestParserRobustness(t *testing.T) {
	base := saxpySrc
	f := func(cut uint16, insert byte) bool {
		pos := int(cut) % len(base)
		mutated := base[:pos] + string(insert) + base[pos:]
		defer func() {
			if recover() != nil {
				t.Errorf("parser panicked on mutated input")
			}
		}()
		_, _ = Parse(mutated) // errors are fine; panics are not
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
