package minicuda

import (
	"errors"
	"fmt"
	"math"

	"grout/internal/kernels"
	"grout/internal/memmodel"
)

// value is a runtime scalar. Arithmetic is performed in float64; isInt
// tracks C integer semantics for division, modulo and bit operations.
type value struct {
	f     float64
	isInt bool
}

func intVal(v int64) value     { return value{f: float64(v), isInt: true} }
func floatVal(v float64) value { return value{f: v} }

func (v value) truthy() bool { return v.f != 0 }
func (v value) int() int64   { return int64(v.f) }

// mathBuiltin is one callable math function: exactly one of fn1/fn2 is
// set, matching arity. Direct typed function values (rather than a
// []float64 thunk) let both engines call builtins without an argument
// slice allocation per call.
type mathBuiltin struct {
	arity int
	fn1   func(float64) float64
	fn2   func(float64, float64) float64
}

// mathBuiltins maps callable math functions to implementations. Both the
// float (suffix f) and double spellings are accepted.
var mathBuiltins = map[string]mathBuiltin{
	"sqrt":  {arity: 1, fn1: math.Sqrt},
	"exp":   {arity: 1, fn1: math.Exp},
	"log":   {arity: 1, fn1: math.Log},
	"fabs":  {arity: 1, fn1: math.Abs},
	"abs":   {arity: 1, fn1: math.Abs},
	"sin":   {arity: 1, fn1: math.Sin},
	"cos":   {arity: 1, fn1: math.Cos},
	"tanh":  {arity: 1, fn1: math.Tanh},
	"erfc":  {arity: 1, fn1: math.Erfc},
	"erf":   {arity: 1, fn1: math.Erf},
	"floor": {arity: 1, fn1: math.Floor},
	"ceil":  {arity: 1, fn1: math.Ceil},
	"pow":   {arity: 2, fn2: math.Pow},
	"fmin":  {arity: 2, fn2: math.Min},
	"fmax":  {arity: 2, fn2: math.Max},
	"min":   {arity: 2, fn2: math.Min},
	"max":   {arity: 2, fn2: math.Max},
}

// lookupMath resolves a math builtin, accepting the CUDA "f" suffix
// (sqrtf, expf, ...).
func lookupMath(name string) (mathBuiltin, bool) {
	if b, ok := mathBuiltins[name]; ok {
		return b, true
	}
	if n := len(name); n > 1 && name[n-1] == 'f' {
		if b, ok := mathBuiltins[name[:n-1]]; ok {
			return b, true
		}
	}
	return mathBuiltin{}, false
}

// maxThreadSteps bounds per-thread statement execution, converting
// accidental infinite loops into errors.
const maxThreadSteps = 5_000_000

// maxLaunchThreads caps a launch's total thread count at the 32-bit-style
// grid limit real CUDA enforces; it also keeps grid*block products away
// from int overflow on any platform.
const maxLaunchThreads = int64(1) << 31

// ErrLaunchTooLarge reports a launch whose grid×block thread count
// exceeds maxLaunchThreads. Matched with errors.Is.
var ErrLaunchTooLarge = errors.New("launch exceeds the thread-count limit")

// validateLaunch checks a launch configuration; shared by both engines.
func validateLaunch(name string, grid, block int, nargs, nparams int) error {
	if grid < 1 || block < 1 {
		return fmt.Errorf("minicuda: %s: invalid launch configuration %dx%d", name, grid, block)
	}
	if total := int64(grid) * int64(block); total > maxLaunchThreads {
		return fmt.Errorf("minicuda: %s: %dx%d launch is %d threads (limit %d): %w",
			name, grid, block, total, maxLaunchThreads, ErrLaunchTooLarge)
	}
	if nargs != nparams {
		return fmt.Errorf("minicuda: %s: got %d arguments, want %d", name, nargs, nparams)
	}
	return nil
}

// interp executes one kernel launch.
type interp struct {
	k *Kernel
	// paramIdx maps parameter names to positions.
	paramIdx map[string]int
	// args are the launch arguments, indexed like Params (a private copy:
	// scalar-parameter assignments are thread-local, as in CUDA, and must
	// not leak into the caller's slice).
	args []kernels.Arg
	// scalarInit snapshots the launch's scalar arguments so each thread
	// starts from them regardless of assignments by earlier threads.
	scalarInit []float64
	// locals maps local variable names to values (per thread).
	locals map[string]value
	// builtin thread coordinates.
	threadIdx, blockIdx, blockDim, gridDim [3]int
	steps                                  int
	maxSteps                               int
	// retVal carries a __device__ function's return value alongside
	// ctrlReturn; depth counts nested device-function frames.
	retVal value
	depth  int
}

// errReturn is an internal control-flow signal.
type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlReturn
	ctrlBreak
	ctrlContinue
)

// runLaunch interprets the kernel over a 1-D grid of grid×block threads.
// maxSteps bounds per-thread statement execution (0 means the default).
func runLaunch(k *Kernel, grid, block int, args []kernels.Arg, maxSteps int) error {
	if err := validateLaunch(k.Name, grid, block, len(args), len(k.Params)); err != nil {
		return err
	}
	paramIdx := make(map[string]int, len(k.Params))
	for i, prm := range k.Params {
		paramIdx[prm.Name] = i
		if prm.Pointer && args[i].Buf == nil {
			return fmt.Errorf("minicuda: %s: parameter %s needs a device array", k.Name, prm.Name)
		}
		if !prm.Pointer && args[i].Buf != nil {
			return fmt.Errorf("minicuda: %s: parameter %s is a scalar", k.Name, prm.Name)
		}
	}
	if maxSteps <= 0 {
		maxSteps = maxThreadSteps
	}
	scalarInit := make([]float64, len(args))
	for i, a := range args {
		scalarInit[i] = a.Scalar
	}
	in := &interp{
		k:          k,
		paramIdx:   paramIdx,
		args:       append([]kernels.Arg(nil), args...),
		scalarInit: scalarInit,
		maxSteps:   maxSteps,
		blockDim:   [3]int{block, 1, 1},
		gridDim:    [3]int{grid, 1, 1},
	}
	for b := 0; b < grid; b++ {
		for t := 0; t < block; t++ {
			in.blockIdx = [3]int{b, 0, 0}
			in.threadIdx = [3]int{t, 0, 0}
			in.locals = make(map[string]value, 8)
			// The step budget and scalar parameters are per thread: a long
			// honest grid must not exhaust a launch-wide budget, and a
			// scalar assignment must not leak into the next thread.
			in.steps = 0
			for i := range in.args {
				in.args[i].Scalar = scalarInit[i]
			}
			if _, err := in.execStmts(k.Body); err != nil {
				return fmt.Errorf("minicuda: %s: %w", k.Name, err)
			}
		}
	}
	return nil
}

func (in *interp) step(pos Pos) error {
	in.steps++
	if in.steps > in.maxSteps {
		return errf(pos, "execution exceeded %d steps (infinite loop?)", in.maxSteps)
	}
	return nil
}

func (in *interp) execStmts(stmts []Stmt) (ctrl, error) {
	for _, s := range stmts {
		c, err := in.execStmt(s)
		if err != nil || c != ctrlNone {
			return c, err
		}
	}
	return ctrlNone, nil
}

func (in *interp) execStmt(s Stmt) (ctrl, error) {
	switch st := s.(type) {
	case *DeclStmt:
		if err := in.step(st.Pos); err != nil {
			return ctrlNone, err
		}
		v := value{isInt: st.Kind == memmodel.Int32 || st.Kind == memmodel.Int64}
		if st.Init != nil {
			iv, err := in.eval(st.Init)
			if err != nil {
				return ctrlNone, err
			}
			v = coerce(iv, st.Kind)
		}
		in.locals[st.Name] = v
		return ctrlNone, nil

	case *AssignStmt:
		if err := in.step(st.Pos); err != nil {
			return ctrlNone, err
		}
		rhs, err := in.eval(st.Value)
		if err != nil {
			return ctrlNone, err
		}
		if st.Op != "=" {
			cur, err := in.eval(st.Target)
			if err != nil {
				return ctrlNone, err
			}
			rhs, err = binop(st.Op[:1], cur, rhs, st.Pos)
			if err != nil {
				return ctrlNone, err
			}
		}
		return ctrlNone, in.store(st.Target, rhs)

	case *IncStmt:
		if err := in.step(st.Pos); err != nil {
			return ctrlNone, err
		}
		cur, err := in.eval(st.Target)
		if err != nil {
			return ctrlNone, err
		}
		d := 1.0
		if st.Decr {
			d = -1
		}
		return ctrlNone, in.store(st.Target, value{f: cur.f + d, isInt: cur.isInt})

	case *IfStmt:
		if err := in.step(st.Pos); err != nil {
			return ctrlNone, err
		}
		cond, err := in.eval(st.Cond)
		if err != nil {
			return ctrlNone, err
		}
		if cond.truthy() {
			return in.execStmts(st.Then)
		}
		return in.execStmts(st.Else)

	case *ForStmt:
		if st.Init != nil {
			if c, err := in.execStmt(st.Init); err != nil || c != ctrlNone {
				return c, err
			}
		}
		for {
			if err := in.step(st.Pos); err != nil {
				return ctrlNone, err
			}
			cond, err := in.eval(st.Cond)
			if err != nil {
				return ctrlNone, err
			}
			if !cond.truthy() {
				return ctrlNone, nil
			}
			c, err := in.execStmts(st.Body)
			if err != nil || c == ctrlReturn {
				return c, err
			}
			if c == ctrlBreak {
				return ctrlNone, nil
			}
			if st.Post != nil {
				if c, err := in.execStmt(st.Post); err != nil || c != ctrlNone {
					return c, err
				}
			}
		}

	case *WhileStmt:
		for {
			if err := in.step(st.Pos); err != nil {
				return ctrlNone, err
			}
			cond, err := in.eval(st.Cond)
			if err != nil {
				return ctrlNone, err
			}
			if !cond.truthy() {
				return ctrlNone, nil
			}
			c, err := in.execStmts(st.Body)
			if err != nil || c == ctrlReturn {
				return c, err
			}
			if c == ctrlBreak {
				return ctrlNone, nil
			}
		}

	case *BreakStmt:
		return ctrlBreak, nil

	case *ContinueStmt:
		return ctrlContinue, nil

	case *ReturnStmt:
		if st.Value != nil {
			if in.depth == 0 {
				return ctrlNone, errf(st.Pos, "kernels return void")
			}
			v, err := in.eval(st.Value)
			if err != nil {
				return ctrlNone, err
			}
			in.retVal = v
		} else if in.depth > 0 {
			return ctrlNone, errf(st.Pos, "__device__ function must return a value")
		}
		return ctrlReturn, nil

	case *ExprStmt:
		if err := in.step(st.Pos); err != nil {
			return ctrlNone, err
		}
		_, err := in.eval(st.X)
		return ctrlNone, err
	}
	return ctrlNone, fmt.Errorf("minicuda: unknown statement %T", s)
}

// store writes to an identifier or array element.
func (in *interp) store(target Expr, v value) error {
	switch t := target.(type) {
	case *IdentExpr:
		if _, isLocal := in.locals[t.Name]; !isLocal {
			if i, ok := in.paramIdx[t.Name]; ok && in.depth == 0 {
				prm := in.k.Params[i]
				if prm.Pointer {
					return errf(t.Pos, "cannot assign to pointer parameter %s", t.Name)
				}
				in.args[i].Scalar = coerce(v, prm.Kind).f
				return nil
			}
		}
		cur, ok := in.locals[t.Name]
		if !ok {
			return errf(t.Pos, "assignment to undeclared variable %s", t.Name)
		}
		v.isInt = cur.isInt
		if cur.isInt {
			v.f = float64(int64(v.f))
		}
		in.locals[t.Name] = v
		return nil
	case *IndexExpr:
		buf, idx, err := in.element(t)
		if err != nil {
			return err
		}
		buf.Set(idx, v.f)
		return nil
	}
	return fmt.Errorf("minicuda: bad assignment target %T", target)
}

// element resolves an IndexExpr to its buffer and bounds-checked index.
func (in *interp) element(ix *IndexExpr) (*kernels.Buffer, int, error) {
	pi, ok := in.paramIdx[ix.Base]
	if !ok || !in.k.Params[pi].Pointer {
		return nil, 0, errf(ix.Pos, "%s is not a pointer parameter", ix.Base)
	}
	iv, err := in.eval(ix.Idx)
	if err != nil {
		return nil, 0, err
	}
	idx := int(iv.f)
	buf := in.args[pi].Buf
	if idx < 0 || idx >= buf.Len() {
		return nil, 0, errf(ix.Pos, "index %d out of range for %s (length %d)", idx, ix.Base, buf.Len())
	}
	return buf, idx, nil
}

func (in *interp) eval(e Expr) (value, error) {
	switch x := e.(type) {
	case *NumberExpr:
		return value{f: x.Val, isInt: x.IsInt}, nil

	case *IdentExpr:
		if v, ok := in.locals[x.Name]; ok {
			return v, nil
		}
		if i, ok := in.paramIdx[x.Name]; ok && in.depth == 0 {
			prm := in.k.Params[i]
			if prm.Pointer {
				return value{}, errf(x.Pos, "pointer parameter %s used as a scalar", x.Name)
			}
			return value{f: in.args[i].Scalar,
				isInt: prm.Kind == memmodel.Int32 || prm.Kind == memmodel.Int64}, nil
		}
		return value{}, errf(x.Pos, "undefined variable %s", x.Name)

	case *IndexExpr:
		buf, idx, err := in.element(x)
		if err != nil {
			return value{}, err
		}
		kind := buf.Kind
		return value{f: buf.At(idx), isInt: kind == memmodel.Int32 || kind == memmodel.Int64}, nil

	case *MemberExpr:
		dim := 0
		switch x.Field {
		case "y":
			dim = 1
		case "z":
			dim = 2
		}
		switch x.Base {
		case "threadIdx":
			return intVal(int64(in.threadIdx[dim])), nil
		case "blockIdx":
			return intVal(int64(in.blockIdx[dim])), nil
		case "blockDim":
			return intVal(int64(in.blockDim[dim])), nil
		case "gridDim":
			return intVal(int64(in.gridDim[dim])), nil
		}
		return value{}, errf(x.Pos, "unknown builtin %s", x.Base)

	case *BinaryExpr:
		l, err := in.eval(x.L)
		if err != nil {
			return value{}, err
		}
		// Short-circuit logic.
		switch x.Op {
		case "&&":
			if !l.truthy() {
				return intVal(0), nil
			}
			r, err := in.eval(x.R)
			if err != nil {
				return value{}, err
			}
			return boolVal(r.truthy()), nil
		case "||":
			if l.truthy() {
				return intVal(1), nil
			}
			r, err := in.eval(x.R)
			if err != nil {
				return value{}, err
			}
			return boolVal(r.truthy()), nil
		}
		r, err := in.eval(x.R)
		if err != nil {
			return value{}, err
		}
		return binop(x.Op, l, r, x.Pos)

	case *UnaryExpr:
		v, err := in.eval(x.X)
		if err != nil {
			return value{}, err
		}
		switch x.Op {
		case "-":
			return value{f: -v.f, isInt: v.isInt}, nil
		case "!":
			return boolVal(!v.truthy()), nil
		case "~":
			return intVal(^v.int()), nil
		}
		return value{}, errf(x.Pos, "unknown unary operator %s", x.Op)

	case *CastExpr:
		v, err := in.eval(x.X)
		if err != nil {
			return value{}, err
		}
		return coerce(v, x.Kind), nil

	case *CondExpr:
		c, err := in.eval(x.C)
		if err != nil {
			return value{}, err
		}
		if c.truthy() {
			return in.eval(x.T)
		}
		return in.eval(x.F)

	case *CallExpr:
		return in.evalCall(x)

	case *AddrExpr:
		return value{}, errf(x.Pos, "& outside atomicAdd")
	}
	return value{}, fmt.Errorf("minicuda: unknown expression %T", e)
}

func (in *interp) evalCall(x *CallExpr) (value, error) {
	if f, ok := in.k.funcs[x.Name]; ok {
		if len(x.Args) != len(f.Params) {
			return value{}, errf(x.Pos, "%s takes %d arguments, got %d", f.Name, len(f.Params), len(x.Args))
		}
		args := make([]value, len(x.Args))
		for i, a := range x.Args {
			v, err := in.eval(a)
			if err != nil {
				return value{}, err
			}
			args[i] = v
		}
		return in.callDevice(f, args, x.Pos)
	}
	if x.Name == "atomicAdd" {
		if len(x.Args) != 2 {
			return value{}, errf(x.Pos, "atomicAdd takes 2 arguments")
		}
		addr, ok := x.Args[0].(*AddrExpr)
		if !ok {
			return value{}, errf(x.Pos, "atomicAdd's first argument must be &array[index]")
		}
		buf, idx, err := in.element(addr.X)
		if err != nil {
			return value{}, err
		}
		v, err := in.eval(x.Args[1])
		if err != nil {
			return value{}, err
		}
		old := buf.At(idx)
		buf.Set(idx, old+v.f)
		return floatVal(old), nil
	}
	b, ok := lookupMath(x.Name)
	if !ok {
		return value{}, errf(x.Pos, "unknown function %s", x.Name)
	}
	if len(x.Args) != b.arity {
		return value{}, errf(x.Pos, "%s takes %d arguments, got %d", x.Name, b.arity, len(x.Args))
	}
	a0, err := in.eval(x.Args[0])
	if err != nil {
		return value{}, err
	}
	if b.arity == 1 {
		return floatVal(b.fn1(a0.f)), nil
	}
	a1, err := in.eval(x.Args[1])
	if err != nil {
		return value{}, err
	}
	return floatVal(b.fn2(a0.f, a1.f)), nil
}

func boolVal(b bool) value {
	if b {
		return intVal(1)
	}
	return intVal(0)
}

// coerce converts a value to a declared kind.
func coerce(v value, kind memmodel.ElemKind) value {
	switch kind {
	case memmodel.Int32:
		return intVal(int64(int32(v.f)))
	case memmodel.Int64:
		return intVal(int64(v.f))
	case memmodel.Float32:
		return floatVal(float64(float32(v.f)))
	default:
		return floatVal(v.f)
	}
}

// binop applies a binary operator with C-like semantics: integer division
// and modulo when both operands are integers.
func binop(op string, l, r value, pos Pos) (value, error) {
	bothInt := l.isInt && r.isInt
	switch op {
	case "+":
		return value{f: l.f + r.f, isInt: bothInt}, nil
	case "-":
		return value{f: l.f - r.f, isInt: bothInt}, nil
	case "*":
		return value{f: l.f * r.f, isInt: bothInt}, nil
	case "/":
		if bothInt {
			if r.int() == 0 {
				return value{}, errf(pos, "integer division by zero")
			}
			return intVal(l.int() / r.int()), nil
		}
		return floatVal(l.f / r.f), nil
	case "%":
		if !bothInt {
			return value{}, errf(pos, "%% requires integer operands")
		}
		if r.int() == 0 {
			return value{}, errf(pos, "integer modulo by zero")
		}
		return intVal(l.int() % r.int()), nil
	case "<":
		return boolVal(l.f < r.f), nil
	case ">":
		return boolVal(l.f > r.f), nil
	case "<=":
		return boolVal(l.f <= r.f), nil
	case ">=":
		return boolVal(l.f >= r.f), nil
	case "==":
		return boolVal(l.f == r.f), nil
	case "!=":
		return boolVal(l.f != r.f), nil
	}
	return value{}, errf(pos, "unknown operator %s", op)
}

// callDevice executes a __device__ helper in its own variable frame.
func (in *interp) callDevice(f *DeviceFunc, args []value, pos Pos) (value, error) {
	saved := in.locals
	in.locals = make(map[string]value, len(f.Params)+4)
	for i, prm := range f.Params {
		in.locals[prm.Name] = coerce(args[i], prm.Kind)
	}
	in.depth++
	c, err := in.execStmts(f.Body)
	in.depth--
	in.locals = saved
	if err != nil {
		return value{}, err
	}
	if c != ctrlReturn {
		return value{}, errf(pos, "__device__ function %s ended without returning", f.Name)
	}
	ret := in.retVal
	in.retVal = value{}
	return coerce(ret, f.Ret), nil
}
