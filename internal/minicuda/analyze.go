package minicuda

import (
	"grout/internal/memmodel"
)

// idxClass summarizes what an index expression depends on; the UVM cost
// model turns it into a page-visit pattern.
type idxClass struct {
	// hasLoad: the index depends on data loaded from an array
	// (data-dependent gather — random access).
	hasLoad bool
	// hasTid: the index depends on the thread coordinates.
	hasTid bool
	// tidLinear: the thread-id term has unit coefficient (the canonical
	// blockIdx*blockDim+threadIdx global id, possibly plus constants).
	tidLinear bool
	// tidScaled: the thread-id term is multiplied by something.
	tidScaled bool
	// hasLoop / loopScaled: same for loop-counter terms.
	hasLoop    bool
	loopScaled bool
}

func (c idxClass) merge(o idxClass) idxClass {
	return idxClass{
		hasLoad:    c.hasLoad || o.hasLoad,
		hasTid:     c.hasTid || o.hasTid,
		tidLinear:  c.tidLinear || o.tidLinear,
		tidScaled:  c.tidScaled || o.tidScaled,
		hasLoop:    c.hasLoop || o.hasLoop,
		loopScaled: c.loopScaled || o.loopScaled,
	}
}

// pattern maps an index class to the memory-model pattern.
func (c idxClass) pattern() memmodel.Pattern {
	switch {
	case c.hasLoad:
		return memmodel.Random
	case c.hasTid && c.tidScaled && c.hasLoop && !c.loopScaled:
		// row*cols + j: each thread sweeps a contiguous row; globally a
		// dense sequential cover.
		return memmodel.Sequential
	case c.hasTid && c.tidLinear && !c.tidScaled && !c.loopScaled:
		return memmodel.Sequential
	case c.hasTid:
		return memmodel.Strided
	default:
		// No thread dependence: every thread touches the same elements.
		return memmodel.Broadcast
	}
}

// analysis is the static summary of a kernel.
type analysis struct {
	// access[i] describes pointer parameter i (zero for scalars).
	access []memmodel.Access
	// ops estimates per-thread operation count given the scalar
	// arguments (loop bounds are often scalar parameters).
	ops func(scalarOf func(name string) (float64, bool)) float64
}

// analyzer walks the kernel body.
type analyzer struct {
	k *Kernel
	// varClass tracks locals' index classes (fixpoint over assignments).
	varClass map[string]idxClass
	// reads/writes per pointer param name.
	reads  map[string]bool
	writes map[string]bool
	// patterns accumulates the worst pattern seen per param.
	patterns map[string]memmodel.Pattern
	changed  bool
}

// analyze produces the kernel's static summary.
func analyze(k *Kernel) analysis {
	a := &analyzer{
		k:        k,
		varClass: make(map[string]idxClass),
		reads:    make(map[string]bool),
		writes:   make(map[string]bool),
		patterns: make(map[string]memmodel.Pattern),
	}
	// Fixpoint over variable classes (assignments can chain); the class
	// lattice is tiny so few rounds suffice.
	for round := 0; round < 4; round++ {
		a.changed = false
		a.walkStmts(k.Body, false)
		if !a.changed {
			break
		}
	}
	// Final pass records array access patterns with settled classes.
	a.reads = make(map[string]bool)
	a.writes = make(map[string]bool)
	a.patterns = make(map[string]memmodel.Pattern)
	a.walkStmts(k.Body, true)

	accs := make([]memmodel.Access, len(k.Params))
	for i, prm := range k.Params {
		if !prm.Pointer {
			continue
		}
		mode := memmodel.Read
		r, w := a.reads[prm.Name], a.writes[prm.Name]
		switch {
		case r && w:
			mode = memmodel.ReadWrite
		case w:
			mode = memmodel.Write
		}
		pat, ok := a.patterns[prm.Name]
		if !ok {
			pat = memmodel.Sequential
		}
		accs[i] = memmodel.Access{Param: i, Mode: mode, Pattern: pat, Fraction: 1, Passes: 1}
	}
	return analysis{access: accs, ops: opsEstimator(k)}
}

// recordPattern widens the recorded pattern for a parameter (higher
// collapse risk wins: Random > Broadcast > Strided > Sequential in terms
// of cost impact ordering used here).
func (a *analyzer) recordPattern(param string, p memmodel.Pattern) {
	cur, ok := a.patterns[param]
	if !ok || patternSeverity(p) > patternSeverity(cur) {
		a.patterns[param] = p
	}
}

func patternSeverity(p memmodel.Pattern) int {
	switch p {
	case memmodel.Random:
		return 3
	case memmodel.Broadcast:
		return 2
	case memmodel.Strided:
		return 1
	default:
		return 0
	}
}

// setVarClass merges a class into a variable, tracking fixpoint progress.
func (a *analyzer) setVarClass(name string, c idxClass) {
	merged := a.varClass[name].merge(c)
	if merged != a.varClass[name] {
		a.varClass[name] = merged
		a.changed = true
	}
}

func (a *analyzer) walkStmts(stmts []Stmt, record bool) {
	for _, s := range stmts {
		a.walkStmt(s, record, false, false)
	}
}

// walkStmt traverses a statement; inLoop marks loop bodies so counters
// assigned there keep their loop character. condLoad marks statements
// guarded by a data-dependent branch (a condition that loads from an
// array): a store there is a *partial* overwrite — threads whose branch
// folds the other way keep the array's old bytes — so the parameter must
// read as well as write, or the runtime would treat the launch as a full
// overwrite and skip shipping the bytes the kernel preserves. The
// canonical thread guard (i < n, tid and scalars only) stays a full
// overwrite, as every kernel carries it.
func (a *analyzer) walkStmt(s Stmt, record, inLoop, condLoad bool) {
	switch st := s.(type) {
	case *DeclStmt:
		if st.Init != nil {
			a.walkExpr(st.Init, record)
			a.setVarClass(st.Name, a.classify(st.Init))
		}
	case *AssignStmt:
		a.walkExpr(st.Value, record)
		if id, ok := st.Target.(*IdentExpr); ok {
			c := a.classify(st.Value)
			if st.Op != "=" {
				c = c.merge(a.varClass[id.Name])
			}
			if inLoop {
				c = c.merge(idxClass{hasLoop: true})
			}
			a.setVarClass(id.Name, c)
		}
		if ix, ok := st.Target.(*IndexExpr); ok {
			a.walkExpr(ix.Idx, record)
			if record {
				a.writes[ix.Base] = true
				if st.Op != "=" || condLoad {
					a.reads[ix.Base] = true
				}
				a.recordPattern(ix.Base, a.classify(ix.Idx).pattern())
			}
		}
	case *IncStmt:
		if id, ok := st.Target.(*IdentExpr); ok {
			a.setVarClass(id.Name, a.varClass[id.Name].merge(idxClass{hasLoop: true}))
		}
		if ix, ok := st.Target.(*IndexExpr); ok {
			a.walkExpr(ix.Idx, record)
			if record {
				a.reads[ix.Base] = true
				a.writes[ix.Base] = true
				a.recordPattern(ix.Base, a.classify(ix.Idx).pattern())
			}
		}
	case *IfStmt:
		a.walkExpr(st.Cond, record)
		branch := condLoad || a.classify(st.Cond).hasLoad
		for _, t := range st.Then {
			a.walkStmt(t, record, inLoop, branch)
		}
		for _, e := range st.Else {
			a.walkStmt(e, record, inLoop, branch)
		}
	case *ForStmt:
		if st.Init != nil {
			a.walkStmt(st.Init, record, inLoop, condLoad)
			// The induction variable is a loop counter.
			if d, ok := st.Init.(*DeclStmt); ok {
				a.setVarClass(d.Name, a.varClass[d.Name].merge(idxClass{hasLoop: true}))
			}
			if as, ok := st.Init.(*AssignStmt); ok {
				if id, ok := as.Target.(*IdentExpr); ok {
					a.setVarClass(id.Name, a.varClass[id.Name].merge(idxClass{hasLoop: true}))
				}
			}
		}
		body := condLoad
		if st.Cond != nil {
			a.walkExpr(st.Cond, record)
			// A data-dependent trip count gates the body's stores the same
			// way a branch does: zero iterations preserve the old bytes.
			body = body || a.classify(st.Cond).hasLoad
		}
		if st.Post != nil {
			a.walkStmt(st.Post, record, true, body)
		}
		for _, b := range st.Body {
			a.walkStmt(b, record, true, body)
		}
	case *WhileStmt:
		a.walkExpr(st.Cond, record)
		body := condLoad || a.classify(st.Cond).hasLoad
		for _, b := range st.Body {
			a.walkStmt(b, record, true, body)
		}
	case *ExprStmt:
		a.walkExpr(st.X, record)
	case *ReturnStmt:
	}
}

// walkExpr records array reads and their patterns.
func (a *analyzer) walkExpr(e Expr, record bool) {
	switch x := e.(type) {
	case *IndexExpr:
		a.walkExpr(x.Idx, record)
		if record {
			a.reads[x.Base] = true
			a.recordPattern(x.Base, a.classify(x.Idx).pattern())
		}
	case *BinaryExpr:
		a.walkExpr(x.L, record)
		a.walkExpr(x.R, record)
	case *UnaryExpr:
		a.walkExpr(x.X, record)
	case *CastExpr:
		a.walkExpr(x.X, record)
	case *CondExpr:
		a.walkExpr(x.C, record)
		a.walkExpr(x.T, record)
		a.walkExpr(x.F, record)
	case *CallExpr:
		for _, arg := range x.Args {
			if ad, ok := arg.(*AddrExpr); ok {
				a.walkExpr(ad.X.Idx, record)
				if record && x.Name == "atomicAdd" {
					a.reads[ad.X.Base] = true
					a.writes[ad.X.Base] = true
					a.recordPattern(ad.X.Base, a.classify(ad.X.Idx).pattern())
				}
				continue
			}
			a.walkExpr(arg, record)
		}
	}
}

// classify computes the index class of an expression.
func (a *analyzer) classify(e Expr) idxClass {
	switch x := e.(type) {
	case *NumberExpr:
		return idxClass{}
	case *IdentExpr:
		return a.varClass[x.Name] // scalar params and unknowns: constant
	case *IndexExpr:
		return idxClass{hasLoad: true}
	case *MemberExpr:
		switch x.Base {
		case "threadIdx":
			return idxClass{hasTid: true, tidLinear: true}
		case "blockIdx":
			return idxClass{hasTid: true, tidLinear: true}
		default: // blockDim, gridDim: launch constants
			return idxClass{}
		}
	case *BinaryExpr:
		l, r := a.classify(x.L), a.classify(x.R)
		switch x.Op {
		case "+", "-":
			// The canonical global id blockIdx*blockDim + threadIdx
			// stays linear: scaled tid + linear tid is the dense cover.
			m := l.merge(r)
			if isBlockBase(x.L) || isBlockBase(x.R) {
				m.tidScaled = false
				m.tidLinear = true
			}
			return m
		case "*", "/", "%":
			m := l.merge(r)
			if isBlockBase(x) {
				// blockIdx * blockDim: the block-base half of the
				// canonical global id.
				return idxClass{hasTid: true, tidLinear: true}
			}
			if m.hasTid {
				m.tidScaled = true
				m.tidLinear = false
			}
			if m.hasLoop {
				m.loopScaled = true
			}
			return m
		default:
			return l.merge(r)
		}
	case *UnaryExpr:
		return a.classify(x.X)
	case *CastExpr:
		return a.classify(x.X)
	case *CondExpr:
		return a.classify(x.T).merge(a.classify(x.F))
	case *CallExpr:
		// Math builtins and __device__ helpers are pure functions of
		// their arguments: the result's class is the arguments' merge,
		// made nonlinear (a sqrt of the thread id no longer walks
		// sequentially).
		var m idxClass
		for _, arg := range x.Args {
			if _, ok := arg.(*AddrExpr); ok {
				continue
			}
			m = m.merge(a.classify(arg))
		}
		if m.hasTid {
			m.tidScaled = true
			m.tidLinear = false
		}
		return m
	}
	return idxClass{}
}

// isBlockBase reports whether e is the blockIdx*blockDim product (either
// order, any axis).
func isBlockBase(e Expr) bool {
	b, ok := e.(*BinaryExpr)
	if !ok || b.Op != "*" {
		return false
	}
	lm, lok := b.L.(*MemberExpr)
	rm, rok := b.R.(*MemberExpr)
	if !lok || !rok {
		return false
	}
	return (lm.Base == "blockIdx" && rm.Base == "blockDim") ||
		(lm.Base == "blockDim" && rm.Base == "blockIdx")
}

// opsEstimator builds a per-thread operation-count estimate. Loops whose
// bound is a scalar parameter multiply by that parameter's runtime value;
// loops with constant bounds multiply by the constant; anything else uses
// a fixed factor.
func opsEstimator(k *Kernel) func(scalarOf func(string) (float64, bool)) float64 {
	const unknownLoopFactor = 8
	scalarParams := make(map[string]bool)
	for _, p := range k.Params {
		if !p.Pointer {
			scalarParams[p.Name] = true
		}
	}

	// Pre-compute each __device__ helper's body cost (the call graph is
	// acyclic by construction).
	funcOps := make(map[string]float64, len(k.funcs))

	var countStmts func(stmts []Stmt, scalarOf func(string) (float64, bool)) float64
	var countExpr func(e Expr) float64

	countExpr = func(e Expr) float64 {
		switch x := e.(type) {
		case *BinaryExpr:
			return 1 + countExpr(x.L) + countExpr(x.R)
		case *UnaryExpr:
			return 1 + countExpr(x.X)
		case *CastExpr:
			return countExpr(x.X)
		case *CondExpr:
			return 1 + countExpr(x.C) + countExpr(x.T) + countExpr(x.F)
		case *CallExpr:
			n := 4.0 // math builtins cost a few ops
			if body, ok := funcOps[x.Name]; ok {
				n = body + 1 // call overhead plus the helper's body
			}
			for _, a := range x.Args {
				if ad, ok := a.(*AddrExpr); ok {
					n += countExpr(ad.X.Idx)
					continue
				}
				n += countExpr(a)
			}
			return n
		case *IndexExpr:
			return 1 + countExpr(x.Idx)
		default:
			return 0
		}
	}

	loopTrips := func(f *ForStmt, scalarOf func(string) (float64, bool)) float64 {
		cond, ok := f.Cond.(*BinaryExpr)
		if !ok {
			return unknownLoopFactor
		}
		bound := cond.R
		if cond.Op == ">" || cond.Op == ">=" {
			bound = cond.L
		}
		switch b := bound.(type) {
		case *NumberExpr:
			if b.Val > 0 {
				return b.Val
			}
		case *IdentExpr:
			if scalarParams[b.Name] {
				if v, ok := scalarOf(b.Name); ok && v > 0 {
					return v
				}
			}
		}
		return unknownLoopFactor
	}

	countStmts = func(stmts []Stmt, scalarOf func(string) (float64, bool)) float64 {
		var n float64
		for _, s := range stmts {
			switch st := s.(type) {
			case *DeclStmt:
				if st.Init != nil {
					n += 1 + countExpr(st.Init)
				}
			case *AssignStmt:
				n += 1 + countExpr(st.Value)
				if ix, ok := st.Target.(*IndexExpr); ok {
					n += countExpr(ix.Idx)
				}
			case *IncStmt:
				n++
			case *IfStmt:
				n += countExpr(st.Cond)
				// Both branches may run across threads; average them.
				n += (countStmts(st.Then, scalarOf) + countStmts(st.Else, scalarOf)) / 2
			case *ForStmt:
				trips := loopTrips(st, scalarOf)
				body := countStmts(st.Body, scalarOf) + 2 // cond+post
				n += trips * body
			case *WhileStmt:
				n += unknownLoopFactor * (countStmts(st.Body, scalarOf) + 1)
			case *ExprStmt:
				n += countExpr(st.X)
			case *ReturnStmt:
				if st.Value != nil {
					n += countExpr(st.Value)
				}
			}
		}
		return n
	}

	return func(scalarOf func(string) (float64, bool)) float64 {
		// Resolve helper costs bottom-up each evaluation (loop bounds may
		// reference scalar parameters).
		for name := range funcOps {
			delete(funcOps, name)
		}
		progress := true
		for progress && len(funcOps) < len(k.funcs) {
			progress = false
			for name, f := range k.funcs {
				if _, done := funcOps[name]; done {
					continue
				}
				ready := true
				for _, callee := range calledNames(f.Body) {
					if _, isFunc := k.funcs[callee]; isFunc {
						if _, done := funcOps[callee]; !done {
							ready = false
						}
					}
				}
				if ready {
					funcOps[name] = countStmts(f.Body, scalarOf)
					progress = true
				}
			}
		}
		ops := countStmts(k.Body, scalarOf)
		if ops < 1 {
			ops = 1
		}
		return ops
	}
}
