package minicuda

import (
	"strconv"
	"strings"

	"grout/internal/memmodel"
)

// parser is a recursive-descent parser for the kernel dialect.
type parser struct {
	toks []token
	pos  int
	// pointerParams tracks pointer parameter names of the kernel being
	// parsed, to distinguish a[i] indexing from misuse.
	pointerParams map[string]bool
	// loopDepth tracks loop nesting so break/continue outside a loop are
	// rejected at parse time.
	loopDepth int
}

// Parse parses a source string into its __global__ kernels (with any
// __device__ helpers attached).
func Parse(src string) ([]*Kernel, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	funcs := make(map[string]*DeviceFunc)
	var kernels []*Kernel
	for !p.at(tokEOF, "") {
		// Skip the optional extern "C" linkage on either kind.
		if p.accept(tokIdent, "extern") {
			if _, err := p.expect(tokString, ""); err != nil {
				return nil, err
			}
		}
		switch {
		case p.at(tokIdent, "__device__"):
			f, err := p.parseDeviceFunc()
			if err != nil {
				return nil, err
			}
			if _, dup := funcs[f.Name]; dup {
				return nil, errf(f.Pos, "duplicate __device__ function %q", f.Name)
			}
			funcs[f.Name] = f
		default:
			k, err := p.parseKernel()
			if err != nil {
				return nil, err
			}
			k.funcs = funcs
			kernels = append(kernels, k)
		}
	}
	if len(kernels) == 0 {
		return nil, errf(Pos{1, 1}, "no kernels in source")
	}
	if err := checkDeviceFuncs(funcs); err != nil {
		return nil, err
	}
	return kernels, nil
}

// parseDeviceFunc parses "__device__ <type> name(scalar params) { body }".
func (p *parser) parseDeviceFunc() (*DeviceFunc, error) {
	start := p.cur().Pos
	if _, err := p.expect(tokIdent, "__device__"); err != nil {
		return nil, err
	}
	retTok, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	ret, ok := scalarKind(retTok.Lit)
	if !ok {
		return nil, errf(retTok.Pos, "__device__ functions must return a scalar type, got %q", retTok.Lit)
	}
	nameTok, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	f := &DeviceFunc{Name: nameTok.Lit, Ret: ret, Pos: start}
	// Device-function bodies may not index arrays; suspend the kernel's
	// pointer-parameter scope.
	savedPtrs := p.pointerParams
	savedDepth := p.loopDepth
	p.pointerParams = map[string]bool{}
	p.loopDepth = 0
	defer func() { p.pointerParams = savedPtrs; p.loopDepth = savedDepth }()
	for !p.at(tokPunct, ")") {
		if len(f.Params) > 0 {
			if _, err := p.expect(tokPunct, ","); err != nil {
				return nil, err
			}
		}
		prm, err := p.parseParam()
		if err != nil {
			return nil, err
		}
		if prm.Pointer {
			return nil, errf(prm.Pos, "__device__ function parameters must be scalars")
		}
		f.Params = append(f.Params, prm)
	}
	p.next() // consume )
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

// checkDeviceFuncs rejects recursion (direct or mutual): the interpreter
// and the cost model both require a call DAG.
func checkDeviceFuncs(funcs map[string]*DeviceFunc) error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := make(map[string]int, len(funcs))
	var visit func(name string) error
	visit = func(name string) error {
		f, ok := funcs[name]
		if !ok {
			return nil // math builtin or unknown; resolved at runtime
		}
		switch state[name] {
		case grey:
			return errf(f.Pos, "recursive __device__ function %q", name)
		case black:
			return nil
		}
		state[name] = grey
		for _, callee := range calledNames(f.Body) {
			if err := visit(callee); err != nil {
				return err
			}
		}
		state[name] = black
		return nil
	}
	for name := range funcs {
		if err := visit(name); err != nil {
			return err
		}
	}
	return nil
}

// calledNames collects function names invoked anywhere in a body.
func calledNames(stmts []Stmt) []string {
	var names []string
	var walkExpr func(e Expr)
	walkExpr = func(e Expr) {
		switch x := e.(type) {
		case *CallExpr:
			names = append(names, x.Name)
			for _, a := range x.Args {
				walkExpr(a)
			}
		case *BinaryExpr:
			walkExpr(x.L)
			walkExpr(x.R)
		case *UnaryExpr:
			walkExpr(x.X)
		case *CastExpr:
			walkExpr(x.X)
		case *CondExpr:
			walkExpr(x.C)
			walkExpr(x.T)
			walkExpr(x.F)
		case *IndexExpr:
			walkExpr(x.Idx)
		case *AddrExpr:
			walkExpr(x.X.Idx)
		}
	}
	var walkStmt func(s Stmt)
	walkStmt = func(s Stmt) {
		switch st := s.(type) {
		case *DeclStmt:
			if st.Init != nil {
				walkExpr(st.Init)
			}
		case *AssignStmt:
			walkExpr(st.Target)
			walkExpr(st.Value)
		case *IncStmt:
			walkExpr(st.Target)
		case *IfStmt:
			walkExpr(st.Cond)
			for _, t := range st.Then {
				walkStmt(t)
			}
			for _, e := range st.Else {
				walkStmt(e)
			}
		case *ForStmt:
			if st.Init != nil {
				walkStmt(st.Init)
			}
			if st.Cond != nil {
				walkExpr(st.Cond)
			}
			if st.Post != nil {
				walkStmt(st.Post)
			}
			for _, b := range st.Body {
				walkStmt(b)
			}
		case *WhileStmt:
			walkExpr(st.Cond)
			for _, b := range st.Body {
				walkStmt(b)
			}
		case *ReturnStmt:
			if st.Value != nil {
				walkExpr(st.Value)
			}
		case *ExprStmt:
			walkExpr(st.X)
		}
	}
	for _, s := range stmts {
		walkStmt(s)
	}
	return names
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

// at reports whether the current token matches kind (and literal, when
// non-empty).
func (p *parser) at(kind tokKind, lit string) bool {
	t := p.cur()
	return t.Kind == kind && (lit == "" || t.Lit == lit)
}

// accept consumes the current token when it matches.
func (p *parser) accept(kind tokKind, lit string) bool {
	if p.at(kind, lit) {
		p.pos++
		return true
	}
	return false
}

// expect consumes a required token or fails.
func (p *parser) expect(kind tokKind, lit string) (token, error) {
	if !p.at(kind, lit) {
		t := p.cur()
		want := lit
		if want == "" {
			want = kind.String()
		}
		return token{}, errf(t.Pos, "expected %q, found %q", want, t.Lit)
	}
	return p.next(), nil
}

// scalarKinds maps type names to element kinds.
func scalarKind(name string) (memmodel.ElemKind, bool) {
	return memmodel.KindFromName(name)
}

// parseKernel parses: __global__ void name(params) { body } (any
// extern "C" linkage was consumed by the caller).
func (p *parser) parseKernel() (*Kernel, error) {
	start := p.cur().Pos
	if _, err := p.expect(tokIdent, "__global__"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIdent, "void"); err != nil {
		return nil, err
	}
	nameTok, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	k := &Kernel{Name: nameTok.Lit, Pos: start}
	p.pointerParams = make(map[string]bool)
	for !p.at(tokPunct, ")") {
		if len(k.Params) > 0 {
			if _, err := p.expect(tokPunct, ","); err != nil {
				return nil, err
			}
		}
		param, err := p.parseParam()
		if err != nil {
			return nil, err
		}
		for _, existing := range k.Params {
			if existing.Name == param.Name {
				return nil, errf(param.Pos, "duplicate parameter %q", param.Name)
			}
		}
		if param.Pointer {
			p.pointerParams[param.Name] = true
		}
		k.Params = append(k.Params, param)
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	k.Body = body
	return k, nil
}

// parseParam parses "const float *x", "float* y", "int n", "long long k".
func (p *parser) parseParam() (Param, error) {
	start := p.cur().Pos
	var prm Param
	prm.Pos = start
	if p.accept(tokIdent, "const") {
		prm.Const = true
	}
	typTok, err := p.expect(tokIdent, "")
	if err != nil {
		return prm, err
	}
	typName := typTok.Lit
	if typName == "long" && p.at(tokIdent, "long") {
		p.next()
		typName = "long long"
	}
	if typName == "unsigned" { // accept "unsigned int" as int
		if p.at(tokIdent, "int") || p.at(tokIdent, "long") {
			p.next()
		}
		typName = "int"
	}
	kind, ok := scalarKind(typName)
	if !ok {
		return prm, errf(typTok.Pos, "unknown type %q", typName)
	}
	prm.Kind = kind
	for p.accept(tokPunct, "*") {
		if prm.Pointer {
			return prm, errf(start, "pointers to pointers are not supported")
		}
		prm.Pointer = true
	}
	nameTok, err := p.expect(tokIdent, "")
	if err != nil {
		return prm, err
	}
	prm.Name = nameTok.Lit
	if !prm.Pointer && prm.Const {
		prm.Const = false // const scalars are just scalars
	}
	return prm, nil
}

// parseBlock parses "{ stmt* }".
func (p *parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for !p.at(tokPunct, "}") {
		if p.at(tokEOF, "") {
			return nil, errf(p.cur().Pos, "unexpected end of source in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.next() // consume }
	return stmts, nil
}

// parseBody parses either a block or a single statement (if/for bodies).
func (p *parser) parseBody() ([]Stmt, error) {
	if p.at(tokPunct, "{") {
		return p.parseBlock()
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return []Stmt{s}, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.Kind == tokIdent && t.Lit == "if":
		return p.parseIf()
	case t.Kind == tokIdent && t.Lit == "for":
		return p.parseFor()
	case t.Kind == tokIdent && t.Lit == "while":
		return p.parseWhile()
	case t.Kind == tokIdent && t.Lit == "break":
		if p.loopDepth == 0 {
			return nil, errf(t.Pos, "break outside a loop")
		}
		p.next()
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: t.Pos}, nil
	case t.Kind == tokIdent && t.Lit == "continue":
		if p.loopDepth == 0 {
			return nil, errf(t.Pos, "continue outside a loop")
		}
		p.next()
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: t.Pos}, nil
	case t.Kind == tokIdent && t.Lit == "return":
		p.next()
		st := &ReturnStmt{Pos: t.Pos}
		if !p.at(tokPunct, ";") {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Value = v
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return st, nil
	case t.Kind == tokIdent && isTypeName(t.Lit):
		return p.parseDecl(true)
	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return s, nil
	}
}

func isTypeName(s string) bool {
	switch s {
	case "int", "long", "float", "double", "unsigned":
		return true
	}
	return false
}

// parseDecl parses "int i = 0;" (semi controls whether ';' is consumed).
func (p *parser) parseDecl(semi bool) (Stmt, error) {
	start := p.cur().Pos
	typTok := p.next()
	typName := typTok.Lit
	if typName == "long" && p.at(tokIdent, "long") {
		p.next()
		typName = "long long"
	}
	if typName == "unsigned" {
		if p.at(tokIdent, "int") || p.at(tokIdent, "long") {
			p.next()
		}
		typName = "int"
	}
	kind, ok := scalarKind(typName)
	if !ok {
		return nil, errf(typTok.Pos, "unknown type %q", typName)
	}
	nameTok, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	d := &DeclStmt{Name: nameTok.Lit, Kind: kind, Pos: start}
	if p.accept(tokPunct, "=") {
		d.Init, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if semi {
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// parseSimpleStmt parses an assignment, inc/dec or expression statement
// without consuming the trailing semicolon.
func (p *parser) parseSimpleStmt() (Stmt, error) {
	start := p.cur().Pos
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == tokPunct {
		switch t.Lit {
		case "=", "+=", "-=", "*=", "/=", "%=":
			if !isLValue(lhs) {
				return nil, errf(t.Pos, "left side of %s is not assignable", t.Lit)
			}
			p.next()
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{Target: lhs, Op: t.Lit, Value: rhs, Pos: start}, nil
		case "++", "--":
			if !isLValue(lhs) {
				return nil, errf(t.Pos, "operand of %s is not assignable", t.Lit)
			}
			p.next()
			return &IncStmt{Target: lhs, Decr: t.Lit == "--", Pos: start}, nil
		}
	}
	if _, ok := lhs.(*CallExpr); !ok {
		return nil, errf(start, "expression statement must be a call")
	}
	return &ExprStmt{X: lhs, Pos: start}, nil
}

func isLValue(e Expr) bool {
	switch e.(type) {
	case *IdentExpr, *IndexExpr:
		return true
	}
	return false
}

func (p *parser) parseIf() (Stmt, error) {
	start := p.next().Pos // "if"
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	then, err := p.parseBody()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then, Pos: start}
	if p.accept(tokIdent, "else") {
		if p.at(tokIdent, "if") {
			nested, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			st.Else = []Stmt{nested}
		} else {
			st.Else, err = p.parseBody()
			if err != nil {
				return nil, err
			}
		}
	}
	return st, nil
}

func (p *parser) parseFor() (Stmt, error) {
	start := p.next().Pos // "for"
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	st := &ForStmt{Pos: start}
	if !p.at(tokPunct, ";") {
		var err error
		if isTypeName(p.cur().Lit) && p.cur().Kind == tokIdent {
			st.Init, err = p.parseDecl(false)
		} else {
			st.Init, err = p.parseSimpleStmt()
		}
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	if p.at(tokPunct, ";") {
		return nil, errf(p.cur().Pos, "for loop requires a condition")
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	st.Cond = cond
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	if !p.at(tokPunct, ")") {
		st.Post, err = p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	p.loopDepth++
	st.Body, err = p.parseBody()
	p.loopDepth--
	if err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) parseWhile() (Stmt, error) {
	start := p.next().Pos // "while"
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	p.loopDepth++
	body, err := p.parseBody()
	p.loopDepth--
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Pos: start}, nil
}

// Operator precedence, loosest first.
var precedence = map[string]int{
	"||": 1,
	"&&": 2,
	"==": 3, "!=": 3,
	"<": 4, ">": 4, "<=": 4, ">=": 4,
	"+": 5, "-": 5,
	"*": 6, "/": 6, "%": 6,
}

func (p *parser) parseExpr() (Expr, error) {
	return p.parseTernary()
}

func (p *parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if !p.at(tokPunct, "?") {
		return cond, nil
	}
	pos := p.next().Pos
	t, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ":"); err != nil {
		return nil, err
	}
	f, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &CondExpr{C: cond, T: t, F: f, Pos: pos}, nil
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != tokPunct {
			return left, nil
		}
		prec, ok := precedence[t.Lit]
		if !ok || prec < minPrec {
			return left, nil
		}
		p.next()
		right, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: t.Lit, L: left, R: right, Pos: t.Pos}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.Kind == tokPunct {
		switch t.Lit {
		case "-", "!", "~":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &UnaryExpr{Op: t.Lit, X: x, Pos: t.Pos}, nil
		case "&":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			idx, ok := x.(*IndexExpr)
			if !ok {
				return nil, errf(t.Pos, "& is only supported on array elements")
			}
			return &AddrExpr{X: idx, Pos: t.Pos}, nil
		case "(":
			// Either a cast "(float) x" or a parenthesized expression.
			if p.pos+2 < len(p.toks) {
				n1, n2 := p.toks[p.pos+1], p.toks[p.pos+2]
				if n1.Kind == tokIdent && isTypeName(n1.Lit) && n2.Kind == tokPunct && n2.Lit == ")" {
					p.next() // (
					kind, _ := scalarKind(n1.Lit)
					p.next() // type
					p.next() // )
					x, err := p.parseUnary()
					if err != nil {
						return nil, err
					}
					return &CastExpr{Kind: kind, X: x, Pos: t.Pos}, nil
				}
			}
			p.next()
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return p.parsePostfix(x)
		}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case tokNumber:
		p.next()
		isInt := !strings.ContainsAny(t.Lit, ".eE")
		v, err := strconv.ParseFloat(t.Lit, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad number %q", t.Lit)
		}
		return &NumberExpr{Val: v, IsInt: isInt, Pos: t.Pos}, nil
	case tokIdent:
		p.next()
		// Builtin vector members.
		if isBuiltinVector(t.Lit) {
			if _, err := p.expect(tokPunct, "."); err != nil {
				return nil, err
			}
			f, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			if f.Lit != "x" && f.Lit != "y" && f.Lit != "z" {
				return nil, errf(f.Pos, "unknown member %s.%s", t.Lit, f.Lit)
			}
			return &MemberExpr{Base: t.Lit, Field: f.Lit, Pos: t.Pos}, nil
		}
		// Call.
		if p.at(tokPunct, "(") {
			p.next()
			call := &CallExpr{Name: t.Lit, Pos: t.Pos}
			for !p.at(tokPunct, ")") {
				if len(call.Args) > 0 {
					if _, err := p.expect(tokPunct, ","); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
			}
			p.next()
			return call, nil
		}
		return p.parsePostfix(&IdentExpr{Name: t.Lit, Pos: t.Pos})
	}
	return nil, errf(t.Pos, "unexpected token %q", t.Lit)
}

// parsePostfix applies array indexing to a primary expression.
func (p *parser) parsePostfix(x Expr) (Expr, error) {
	for p.at(tokPunct, "[") {
		open := p.next()
		id, ok := x.(*IdentExpr)
		if !ok || !p.pointerParams[id.Name] {
			return nil, errf(open.Pos, "only pointer parameters can be indexed")
		}
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
		x = &IndexExpr{Base: id.Name, Idx: idx, Pos: open.Pos}
	}
	return x, nil
}

func isBuiltinVector(name string) bool {
	switch name {
	case "threadIdx", "blockIdx", "blockDim", "gridDim":
		return true
	}
	return false
}
