package gpusim

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"grout/internal/memmodel"
)

// policyCombos enumerates every prefetch × eviction policy pairing.
func policyCombos() [][2]string {
	var combos [][2]string
	for _, p := range PrefetchPolicyNames() {
		for _, e := range EvictionPolicyNames() {
			combos = append(combos, [2]string{p, e})
		}
	}
	return combos
}

func TestAdviseValidation(t *testing.T) {
	n := NewNode(NodeSpec{
		Name:       "adv",
		Devices:    []DeviceSpec{V100Spec("adv/gpu0")},
		HostMemory: 64 * memmodel.GiB,
	})
	id, err := n.Alloc(1 * memmodel.GiB)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}

	for _, adv := range []Advise{AdviseNone, AdviseReadMostly} {
		if err := n.SetAdvise(id, adv, 0); err != nil {
			t.Errorf("SetAdvise(%v): %v", adv, err)
		}
	}
	if err := n.SetAdvise(id, AdvisePreferredLocation, 0); err != nil {
		t.Errorf("SetAdvise(preferred, 0): %v", err)
	}

	// Unknown enum values (hostile wire input) must be a typed error.
	for _, adv := range []Advise{Advise(-1), Advise(99)} {
		err := n.SetAdvise(id, adv, 0)
		if !errors.Is(err, ErrUnknownAdvise) {
			t.Errorf("SetAdvise(%d) = %v, want ErrUnknownAdvise", int(adv), err)
		}
	}
	// Preferred location must name a device the node has.
	for _, dev := range []int{-1, 1, 7} {
		err := n.SetAdvise(id, AdvisePreferredLocation, dev)
		if !errors.Is(err, ErrBadPreferredDevice) {
			t.Errorf("SetAdvise(preferred, %d) = %v, want ErrBadPreferredDevice", dev, err)
		}
	}
	// Rejected hints must not have changed the allocation's state.
	if a := n.allocs[id]; a.advise != AdvisePreferredLocation || a.preferred != 0 {
		t.Errorf("rejected advise mutated state: advise=%v preferred=%d", a.advise, a.preferred)
	}
}

func TestPolicyRegistry(t *testing.T) {
	if _, err := NewPrefetchPolicy("bogus"); err == nil {
		t.Error("NewPrefetchPolicy(bogus) succeeded, want error")
	}
	if _, err := NewEvictionPolicy("bogus"); err == nil {
		t.Error("NewEvictionPolicy(bogus) succeeded, want error")
	}
	for _, name := range PrefetchPolicyNames() {
		p, err := NewPrefetchPolicy(name)
		if err != nil {
			t.Fatalf("NewPrefetchPolicy(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("policy %q reports name %q", name, p.Name())
		}
	}
	for _, name := range EvictionPolicyNames() {
		e, err := NewEvictionPolicy(name)
		if err != nil {
			t.Fatalf("NewEvictionPolicy(%q): %v", name, err)
		}
		if e.Name() != name {
			t.Errorf("policy %q reports name %q", name, e.Name())
		}
	}

	n := NewNode(NodeSpec{
		Name:       "reg",
		Devices:    []DeviceSpec{V100Spec("reg/gpu0")},
		HostMemory: 64 * memmodel.GiB,
	})
	if err := n.UseMemoryPolicies("stride", "stream"); err != nil {
		t.Fatalf("UseMemoryPolicies: %v", err)
	}
	if p, e := n.MemoryPolicies(); p != "stride" || e != "stream" {
		t.Errorf("MemoryPolicies() = %q, %q", p, e)
	}
	if err := n.UseMemoryPolicies("nope", "lru"); err == nil {
		t.Error("UseMemoryPolicies(nope) succeeded, want error")
	}
	// A failed install must not have half-applied.
	if p, e := n.MemoryPolicies(); p != "stride" || e != "stream" {
		t.Errorf("failed install mutated policies: %q, %q", p, e)
	}
}

func TestAllocHistoryRing(t *testing.T) {
	var h AllocHistory
	if h.Len() != 0 || h.Launches() != 0 || h.MissRatio() != 0 || h.DenseShare() != 0 {
		t.Fatal("zero history not empty")
	}
	for i := 0; i < historyRing+3; i++ {
		pat := memmodel.Random
		if i%2 == 0 {
			pat = memmodel.Sequential
		}
		h.record(FaultRecord{Pattern: pat, Touched: 100, Missed: int64(i)})
	}
	if h.Launches() != historyRing+3 {
		t.Errorf("Launches() = %d, want %d", h.Launches(), historyRing+3)
	}
	if h.Len() != historyRing {
		t.Errorf("Len() = %d, want %d", h.Len(), historyRing)
	}
	// At(0) is the newest: Missed == historyRing+2.
	if got := h.At(0).Missed; got != historyRing+2 {
		t.Errorf("At(0).Missed = %d, want %d", got, historyRing+2)
	}
	if got := h.At(h.Len() - 1).Missed; got != 3 {
		t.Errorf("oldest Missed = %d, want 3", got)
	}
	// Ring holds Missed 3..10 over Touched 100 each: mean 6.5/100.
	if got, want := h.MissRatio(), 0.065; got != want {
		t.Errorf("MissRatio() = %v, want %v", got, want)
	}
	if got := h.DenseShare(); got != 0.5 {
		t.Errorf("DenseShare() = %v, want 0.5", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("At(Len()) did not panic")
		}
	}()
	h.At(h.Len())
}

// checkAccounting verifies per-allocation invariants and node-level
// residency-sum consistency. Device capacity may be exceeded by at most
// the pages pinned there: a plan sized to the full device cannot evict
// pinned bystanders, and that bounded overflow is a pre-existing modeling
// artifact the bit-compatibility goldens encode (stats-gpu0 holds 9216
// resident pages on an 8192-page device). Any overflow beyond the pinned
// share is a real accounting bug.
func checkAccounting(t *testing.T, n *Node) {
	t.Helper()
	perDev := make([]int64, len(n.devices))
	pinnedOn := make([]int64, len(n.devices))
	for _, a := range n.allocs {
		a.checkInvariants()
		for d, r := range a.residentOn {
			perDev[d] += r
			if a.advise == AdvisePreferredLocation && a.preferred == d {
				pinnedOn[d] += r
			}
		}
	}
	for i, d := range n.devices {
		if perDev[i] != d.residentPages {
			t.Fatalf("device %d resident mismatch: sum %d, counter %d",
				i, perDev[i], d.residentPages)
		}
		if d.residentPages < 0 {
			t.Fatalf("device %d negative residency %d", i, d.residentPages)
		}
		if d.residentPages > d.CapacityPages()+pinnedOn[i] {
			t.Fatalf("device %d over capacity beyond pinned allowance: %d > %d + %d",
				i, d.residentPages, d.CapacityPages(), pinnedOn[i])
		}
	}
}

// TestEvictionInvariantsProperty drives randomized launch sequences
// through every policy combination and asserts after every decision that
// (a) global page accounting holds and (b) pages pinned by
// AdvisePreferredLocation were never evicted from their preferred device.
func TestEvictionInvariantsProperty(t *testing.T) {
	patterns := []memmodel.Pattern{
		memmodel.Sequential, memmodel.Strided, memmodel.Broadcast, memmodel.Random,
	}
	modes := []memmodel.AccessMode{memmodel.Read, memmodel.Write, memmodel.ReadWrite}

	for _, combo := range policyCombos() {
		combo := combo
		t.Run(combo[0]+"+"+combo[1], func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			n := NewNode(NodeSpec{
				Name:       "prop",
				Devices:    []DeviceSpec{V100Spec("prop/gpu0"), V100Spec("prop/gpu1")},
				HostMemory: 200 * memmodel.GiB,
			})
			if err := n.UseMemoryPolicies(combo[0], combo[1]); err != nil {
				t.Fatalf("UseMemoryPolicies: %v", err)
			}

			// A pinned allocation warmed onto device 0, plus a population of
			// bystanders big enough to force eviction churn.
			pinned, _ := n.Alloc(2 * memmodel.GiB)
			if err := n.SetAdvise(pinned, AdvisePreferredLocation, 0); err != nil {
				t.Fatalf("SetAdvise: %v", err)
			}
			n.Prefetch(pinned, 0, 0)
			pinnedPages := n.ResidentPagesOf(pinned, 0)
			if pinnedPages == 0 {
				t.Fatal("pinned prefetch moved no pages")
			}

			var ids []AllocID
			for i := 0; i < 6; i++ {
				id, err := n.Alloc(memmodel.Bytes(4+rng.Intn(20)) * memmodel.GiB)
				if err != nil {
					t.Fatalf("Alloc: %v", err)
				}
				ids = append(ids, id)
			}

			kc := KernelCost{Name: "prop", Elements: 1 << 18, OpsPerElement: 2}
			var now int64
			for step := 0; step < 60; step++ {
				dev := rng.Intn(2)
				nargs := 1 + rng.Intn(3)
				var args []ArgBinding
				for j := 0; j < nargs; j++ {
					args = append(args, ArgBinding{
						Alloc: ids[rng.Intn(len(ids))],
						Access: memmodel.Access{
							Mode:     modes[rng.Intn(len(modes))],
							Pattern:  patterns[rng.Intn(len(patterns))],
							Fraction: 0.25 + 0.75*rng.Float64(),
							Passes:   1 + rng.Intn(3),
						},
					})
				}
				res, err := n.Launch(dev, 0, kc, args, 0)
				if err != nil {
					t.Fatalf("step %d: Launch: %v", step, err)
				}
				now = int64(res.Interval.End)
				_ = now
				checkAccounting(t, n)
				if got := n.ResidentPagesOf(pinned, 0); got < pinnedPages {
					t.Fatalf("step %d: pinned allocation lost pages: %d -> %d",
						step, pinnedPages, got)
				}
			}
		})
	}
}

// TestEvictVictimsSkipsPinnedAndPlan exercises the victim selector
// directly: pinned allocations and plan members must never lose pages,
// no matter what the policy's ordering says, and the demanded page count
// must come out of the remaining bystanders.
func TestEvictVictimsSkipsPinnedAndPlan(t *testing.T) {
	for _, evictName := range EvictionPolicyNames() {
		t.Run(evictName, func(t *testing.T) {
			n := NewNode(NodeSpec{
				Name:       "victim",
				Devices:    []DeviceSpec{V100Spec("victim/gpu0")},
				HostMemory: 64 * memmodel.GiB,
			})
			if err := n.UseMemoryPolicies("", evictName); err != nil {
				t.Fatalf("UseMemoryPolicies: %v", err)
			}
			d := n.Device(0)

			pinned, _ := n.Alloc(2 * memmodel.GiB)
			planMember, _ := n.Alloc(2 * memmodel.GiB)
			bystander, _ := n.Alloc(4 * memmodel.GiB)
			if err := n.SetAdvise(pinned, AdvisePreferredLocation, 0); err != nil {
				t.Fatalf("SetAdvise: %v", err)
			}
			for _, id := range []AllocID{pinned, planMember, bystander} {
				if _, err := n.Prefetch(id, 0, 0); err != nil {
					t.Fatalf("Prefetch(%d): %v", id, err)
				}
			}
			pinnedBefore := n.ResidentPagesOf(pinned, 0)
			planBefore := n.ResidentPagesOf(planMember, 0)
			byBefore := n.ResidentPagesOf(bystander, 0)

			need := byBefore / 2
			n.evictVictims(d, map[AllocID]bool{planMember: true}, need, 0)

			if got := n.ResidentPagesOf(pinned, 0); got != pinnedBefore {
				t.Errorf("pinned pages evicted: %d -> %d", pinnedBefore, got)
			}
			if got := n.ResidentPagesOf(planMember, 0); got != planBefore {
				t.Errorf("plan-member pages evicted: %d -> %d", planBefore, got)
			}
			if got := n.ResidentPagesOf(bystander, 0); got != byBefore-need {
				t.Errorf("bystander pages %d -> %d, want %d", byBefore, got, byBefore-need)
			}
			if err := n.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// newSweepNode builds a single-V100 node whose live allocation equals
// factor × device memory, returning the allocation to sweep.
func newSweepNode(t testing.TB, prefetch, evict string, factor float64) (*Node, AllocID) {
	t.Helper()
	n := NewNode(NodeSpec{
		Name:       "sweep",
		Devices:    []DeviceSpec{V100Spec("sweep/gpu0")},
		HostMemory: 512 * memmodel.GiB,
	})
	if err := n.UseMemoryPolicies(prefetch, evict); err != nil {
		t.Fatalf("UseMemoryPolicies(%q, %q): %v", prefetch, evict, err)
	}
	size := memmodel.Bytes(factor * float64(n.Spec().TotalDeviceMemory()))
	id, err := n.Alloc(size)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	return n, id
}

// sweepLaunch runs `launches` sequential sweeps over the allocation and
// returns the mean wall time per launch.
func sweepLaunch(t testing.TB, n *Node, id AllocID, pattern memmodel.Pattern, launches int) int64 {
	t.Helper()
	kc := KernelCost{Name: "sweep", Elements: 1 << 20, OpsPerElement: 2}
	var ready int64
	for i := 0; i < launches; i++ {
		res, err := n.Launch(0, 0, kc, []ArgBinding{
			{Alloc: id, Access: memmodel.Access{
				Mode: memmodel.Read, Pattern: pattern, Fraction: 1, Passes: 1,
			}},
		}, 0)
		if err != nil {
			t.Fatalf("Launch %d: %v", i, err)
		}
		ready = int64(res.Interval.End)
	}
	return ready / int64(launches)
}

// TestStrideShiftsCliff is the tentpole acceptance check in miniature: at
// 1.5× oversubscription on a sequential sweep, stride-aware prefetch must
// model ≥2× less time per launch than the LRU baseline, and the collapse
// cliff must sit at higher pressure under stride than under eager.
func TestStrideShiftsCliff(t *testing.T) {
	const launches = 8

	base, baseID := newSweepNode(t, "eager", "lru", 1.5)
	baseNs := sweepLaunch(t, base, baseID, memmodel.Sequential, launches)

	stride, strideID := newSweepNode(t, "stride", "lru", 1.5)
	strideNs := sweepLaunch(t, stride, strideID, memmodel.Sequential, launches)

	if baseNs < 2*strideNs {
		t.Errorf("at 1.5x oversub: baseline %d ns/launch, stride %d ns/launch — want >=2x reduction",
			baseNs, strideNs)
	}

	// The cliff shift: at pressure 3.0 (past sequential's static threshold
	// 2.6, below stride's shifted 3.9) eager storms while stride streams.
	eagerN, eagerID := newSweepNode(t, "eager", "lru", 3.0)
	res, err := eagerN.Launch(0, 0, KernelCost{Name: "k", Elements: 1 << 20, OpsPerElement: 2},
		[]ArgBinding{{Alloc: eagerID, Access: memmodel.Access{
			Mode: memmodel.Read, Pattern: memmodel.Sequential, Fraction: 1, Passes: 1,
		}}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regime != Storm {
		t.Errorf("eager at 3.0x: regime %v, want storm", res.Regime)
	}

	strideN, strideID2 := newSweepNode(t, "stride", "lru", 3.0)
	res, err = strideN.Launch(0, 0, KernelCost{Name: "k", Elements: 1 << 20, OpsPerElement: 2},
		[]ArgBinding{{Alloc: strideID2, Access: memmodel.Access{
			Mode: memmodel.Read, Pattern: memmodel.Sequential, Fraction: 1, Passes: 1,
		}}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regime != Streaming {
		t.Errorf("stride at 3.0x: regime %v, want streaming (shifted cliff)", res.Regime)
	}
}

func TestPredictStall(t *testing.T) {
	spec := NodeSpec{
		Name:       "stall",
		Devices:    []DeviceSpec{V100Spec("stall/gpu0")},
		HostMemory: 512 * memmodel.GiB,
	}
	devMem := spec.TotalDeviceMemory()

	n := NewNode(spec)
	// Fits comfortably: no predicted stall.
	if got := n.PredictStall(0, devMem/2, memmodel.Sequential); got != 0 {
		t.Errorf("resident PredictStall = %d, want 0", got)
	}

	// Oversubscribed: positive stall, and monotone in added pressure.
	low := n.PredictStall(0, devMem*3/2, memmodel.Sequential)
	high := n.PredictStall(4*devMem, devMem*3/2, memmodel.Sequential)
	if low <= 0 {
		t.Errorf("streaming PredictStall = %d, want > 0", low)
	}
	if high <= low {
		t.Errorf("PredictStall not increasing with pressure: %d <= %d", high, low)
	}

	// A stride-prefetching node predicts cheaper streaming stalls than the
	// demand-paging baseline — placement can prefer it.
	s := NewNode(spec)
	if err := s.UseMemoryPolicies("stride", "lru"); err != nil {
		t.Fatal(err)
	}
	if es, ss := n.PredictStall(0, devMem*3/2, memmodel.Sequential),
		s.PredictStall(0, devMem*3/2, memmodel.Sequential); ss >= es {
		t.Errorf("stride stall %d >= eager stall %d, want cheaper", ss, es)
	}

	// The allocation-pressure escalation mirrors Launch: ballast on the
	// node raises the prediction for substantial working sets.
	b := NewNode(spec)
	if _, err := b.Alloc(100 * memmodel.GiB); err != nil {
		t.Fatal(err)
	}
	if got := b.PredictStall(0, devMem/2, memmodel.Sequential); got <= 0 {
		t.Errorf("ballasted PredictStall = %d, want > 0 (storm from allocation pressure)", got)
	}
}

func TestPolicyNamesDeterministic(t *testing.T) {
	// Flag help and error messages embed these lists; keep them sorted.
	for _, names := range [][]string{PrefetchPolicyNames(), EvictionPolicyNames()} {
		for i := 1; i < len(names); i++ {
			if names[i-1] >= names[i] {
				t.Fatalf("names not sorted: %v", names)
			}
		}
	}
	if fmt.Sprint(PrefetchPolicyNames()) != "[adaptive eager stride]" {
		t.Errorf("prefetch names = %v", PrefetchPolicyNames())
	}
	if fmt.Sprint(EvictionPolicyNames()) != "[lru stream working-set]" {
		t.Errorf("eviction names = %v", EvictionPolicyNames())
	}
}
