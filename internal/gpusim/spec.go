// Package gpusim is a discrete-event simulator of a multi-GPU node with
// NVIDIA-style Unified Virtual Memory (UVM). It models the behaviour that
// the GrOUT paper measures: page-granular migration between host and
// device, LRU eviction with dirty write-back, fault batching, prefetching
// and memory-advise hints, CUDA streams and copy engines — and, centrally,
// the collapse of effective migration bandwidth once a workload's working
// set oversubscribes device memory past a pattern-dependent threshold.
//
// Three migration regimes are modelled (per kernel launch):
//
//   - resident: the kernel's working set fits in device memory. Only
//     first-touch pages migrate, at bulk (prefetcher-friendly) bandwidth.
//
//   - streaming: the working set exceeds device memory but stays below the
//     pattern's collapse threshold. The overflow portion cycles through
//     device memory each pass at fault-limited bandwidth. Slowdowns here
//     are a small constant factor — the paper's "almost linear" region.
//
//   - storm: past the collapse threshold the driver splinters 2 MiB blocks
//     into small chunks, faults stop batching, evictions ping-pong with
//     demand misses, and every pass re-migrates the full working set at
//     storm bandwidth (~100 MB/s effective). This is the 70–342× regime of
//     the paper's Figure 6a. Shao et al. (ICPE'22) attribute the collapse
//     to Frequently-Accessed-Low-Locality pages and fault-handling
//     serialization; we model the aggregate effect.
package gpusim

import (
	"grout/internal/memmodel"
	"grout/internal/sim"
)

// DeviceSpec describes one simulated GPU.
type DeviceSpec struct {
	// Name is a diagnostic label, e.g. "V100-0".
	Name string
	// Memory is the device memory capacity.
	Memory memmodel.Bytes
	// Throughput is sustained element-operations per second for the
	// simulated kernels (a fused compute+HBM figure).
	Throughput float64
	// LaunchLatency is the fixed kernel-launch overhead.
	LaunchLatency sim.VirtualTime
	// BulkBW is host<->device migration bandwidth when transfers coalesce
	// (prefetch or dense first-touch), bytes/second.
	BulkBW float64
	// FaultBW is the effective migration bandwidth when pages move on
	// demand through the fault engine (streaming regime), bytes/second.
	FaultBW float64
	// StormBW is the effective bandwidth once fault handling collapses
	// (storm regime), bytes/second.
	StormBW float64
	// PeerBW is device<->device bandwidth within the node, bytes/second.
	PeerBW float64
}

// V100Spec returns a specification approximating the paper's NVIDIA Tesla
// V100 (16 GiB) behind PCIe 3.0 x16.
func V100Spec(name string) DeviceSpec {
	return DeviceSpec{
		Name:          name,
		Memory:        16 * memmodel.GiB,
		Throughput:    4e11,                   // fused element-ops/s; HBM2-bound workloads
		LaunchLatency: sim.VirtualTime(8_000), // 8 µs
		BulkBW:        12e9,                   // PCIe3 x16 effective
		FaultBW:       3e9,                    // demand-paged streaming
		StormBW:       0.24e9,                 // splintered-fault base rate
		PeerBW:        10e9,
	}
}

// NodeSpec describes one simulated server: its GPUs and host memory.
type NodeSpec struct {
	Name    string
	Devices []DeviceSpec
	// HostMemory bounds total UVM allocations on the node.
	HostMemory memmodel.Bytes
}

// OCIWorkerSpec returns the paper's worker node: two V100 16 GiB GPUs and
// 180 GiB of host RAM (Intel Platinum 8167M machine on OCI).
func OCIWorkerSpec(name string) NodeSpec {
	return NodeSpec{
		Name: name,
		Devices: []DeviceSpec{
			V100Spec(name + "/gpu0"),
			V100Spec(name + "/gpu1"),
		},
		HostMemory: 180 * memmodel.GiB,
	}
}

// TotalDeviceMemory reports the sum of device memory across the node's
// GPUs — the denominator of the paper's oversubscription factor (32 GiB
// for the OCI worker).
func (s NodeSpec) TotalDeviceMemory() memmodel.Bytes {
	var total memmodel.Bytes
	for _, d := range s.Devices {
		total += d.Memory
	}
	return total
}

// collapseThreshold reports the working-set pressure (touched bytes over
// device capacity) past which the given access pattern enters the storm
// regime. Random access defeats batching immediately; dense sequential
// sweeps survive the longest because the prefetcher keeps ahead of them.
func collapseThreshold(p memmodel.Pattern) float64 {
	switch p {
	case memmodel.Sequential:
		return 2.6
	case memmodel.Strided:
		return 2.0
	case memmodel.Broadcast:
		return 1.3
	default: // Random
		return 1.0
	}
}

// batchEfficiency scales migration bandwidth by how well the pattern's
// faults coalesce (resident & streaming regimes).
func batchEfficiency(p memmodel.Pattern) float64 {
	switch p {
	case memmodel.Sequential:
		return 1.0
	case memmodel.Strided:
		return 0.7
	case memmodel.Broadcast:
		return 0.6
	default: // Random
		return 0.25
	}
}

// stormEfficiency scales storm-regime bandwidth. The ordering inverts
// relative to batchEfficiency on purpose: once a working set larger than
// device memory cycles under LRU eviction, a dense sequential sweep is the
// pathological case — every page is evicted exactly before its next use,
// so the hit rate is zero and eviction write-backs interleave with demand
// misses page by page. A random walk still re-hits the cached fraction.
// This is what makes the paper's MV blow up by 342× while the
// random-access MLE "only" degrades ~72× (Fig. 6a).
func stormEfficiency(p memmodel.Pattern) float64 {
	switch p {
	case memmodel.Sequential:
		return 0.04
	case memmodel.Strided:
		return 0.08
	case memmodel.Broadcast:
		return 0.3
	default: // Random
		return 1.0
	}
}

// A100Spec returns a specification approximating an NVIDIA A100 40 GiB
// (PCIe 4.0): 2.5x the V100's memory and double its transfer rates. Used
// by the what-if hardware sweep — newer devices move the oversubscription
// knee, they do not remove it.
func A100Spec(name string) DeviceSpec {
	return DeviceSpec{
		Name:          name,
		Memory:        40 * memmodel.GiB,
		Throughput:    8e11,
		LaunchLatency: sim.VirtualTime(6_000), // 6 µs
		BulkBW:        24e9,                   // PCIe4 x16 effective
		FaultBW:       6e9,
		StormBW:       0.48e9,
		PeerBW:        20e9,
	}
}

// A100WorkerSpec returns a worker node with two A100 40 GiB GPUs and
// 512 GiB of host RAM.
func A100WorkerSpec(name string) NodeSpec {
	return NodeSpec{
		Name: name,
		Devices: []DeviceSpec{
			A100Spec(name + "/gpu0"),
			A100Spec(name + "/gpu1"),
		},
		HostMemory: 512 * memmodel.GiB,
	}
}
