package gpusim

// Pluggable UVM memory-management policies (DESIGN.md §5.7). The
// simulator's fixed pipeline — eager demand prefetch, LRU eviction —
// becomes two policy seams: a PrefetchPolicy decides how much of a
// launch's migration traffic the prefetcher moves ahead of the access
// front (coalesced, overlapping compute) instead of through the
// serialized fault path, and how far the pattern's collapse threshold
// shifts as a result; an EvictionPolicy decides victim ordering and how
// much residency a streaming argument retains behind the front.
//
// Policies are fed by two signal sources: the static per-argument
// memmodel.Pattern descriptors the mini-CUDA compiler extracts, and the
// online per-allocation fault/reuse history ring the node maintains
// across launches. The baselines ("eager"/"lru") reproduce the
// pre-policy simulator bit for bit.

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"grout/internal/memmodel"
	"grout/internal/sim"
)

// ErrUnknownPrefetchPolicy and ErrUnknownEvictionPolicy classify registry
// lookups of unregistered policy names (wrapped with the offending name).
var (
	ErrUnknownPrefetchPolicy = errors.New("gpusim: unknown prefetch policy")
	ErrUnknownEvictionPolicy = errors.New("gpusim: unknown eviction policy")
)

// historyRing is the depth of the per-allocation fault history: deep
// enough to see a workload's steady state, shallow enough to forget a
// phase change within a few launches.
const historyRing = 8

// FaultRecord is one launch's footprint on an allocation, as seen by the
// node's fault engine.
type FaultRecord struct {
	// Time is the launch's completion time.
	Time sim.VirtualTime
	// Device is the launch device.
	Device int
	// Pattern is the merged access pattern of the launch's bindings.
	Pattern memmodel.Pattern
	// Regime is the migration regime the launch executed in.
	Regime Regime
	// Touched is the pages the launch touched per pass; Missed is how
	// many of them faulted (served from host or a peer device).
	Touched, Missed int64
}

// AllocHistory is the online fault/reuse ring of one allocation. The
// zero value is an empty history.
type AllocHistory struct {
	ring  [historyRing]FaultRecord
	count int64
}

func (h *AllocHistory) record(r FaultRecord) {
	h.ring[h.count%historyRing] = r
	h.count++
}

// Launches reports how many launches ever touched the allocation.
func (h *AllocHistory) Launches() int64 { return h.count }

// Len reports how many records the ring currently holds.
func (h *AllocHistory) Len() int {
	if h.count < historyRing {
		return int(h.count)
	}
	return historyRing
}

// At returns the i-th most recent record; At(0) is the newest. It panics
// outside [0, Len()).
func (h *AllocHistory) At(i int) FaultRecord {
	if i < 0 || i >= h.Len() {
		panic(fmt.Sprintf("gpusim: history index %d out of range [0,%d)", i, h.Len()))
	}
	return h.ring[(h.count-1-int64(i))%historyRing]
}

// MissRatio reports faulted pages over touched pages across the ring —
// the allocation's observed fault rate. Zero history reports 0.
func (h *AllocHistory) MissRatio() float64 {
	var touched, missed int64
	for i := 0; i < h.Len(); i++ {
		r := h.At(i)
		touched += r.Touched
		missed += r.Missed
	}
	if touched == 0 {
		return 0
	}
	return float64(missed) / float64(touched)
}

// DenseShare reports the fraction of ring records whose pattern is a
// dense sweep (sequential or strided) — the prefetcher-friendly share of
// the allocation's recent traffic.
func (h *AllocHistory) DenseShare() float64 {
	n := h.Len()
	if n == 0 {
		return 0
	}
	dense := 0
	for i := 0; i < n; i++ {
		switch h.At(i).Pattern {
		case memmodel.Sequential, memmodel.Strided:
			dense++
		}
	}
	return float64(dense) / float64(n)
}

// PlanView is the read-only view of one argument plan that memory
// policies decide on: the compiler's static descriptor plus the launch's
// miss accounting and the allocation's online history. Hist is nil for
// hypothetical queries (stall prediction for placement).
type PlanView struct {
	Alloc    AllocID
	Pattern  memmodel.Pattern
	Mode     memmodel.AccessMode
	Fraction float64
	Passes   int
	// Touched/Hits/MissHost/MissPeer are the plan's page accounting
	// against the launch device.
	Touched, Hits, MissHost, MissPeer int64
	// Pressure is the launch's oversubscription pressure (working set or
	// node allocation over device capacity, whichever governs).
	Pressure float64
	Hist     *AllocHistory
}

// PrefetchDecision is a PrefetchPolicy's answer for one argument plan.
type PrefetchDecision struct {
	// BulkFraction in [0,1] is the share of the plan's demand-miss (and
	// streaming-regime cycled) traffic the prefetcher moves at bulk
	// bandwidth overlapping compute, instead of serialized through the
	// fault engine. 0 reproduces pure demand paging.
	BulkFraction float64
	// ThresholdScale multiplies the pattern's storm-collapse threshold: a
	// prefetcher running ahead of a dense sweep keeps faults batched
	// deeper into oversubscription. 1 reproduces the static threshold.
	ThresholdScale float64
}

// normalize clamps a decision into its legal range.
func (d PrefetchDecision) normalize() PrefetchDecision {
	if d.BulkFraction < 0 {
		d.BulkFraction = 0
	}
	if d.BulkFraction > 1 {
		d.BulkFraction = 1
	}
	if d.ThresholdScale <= 0 {
		d.ThresholdScale = 1
	}
	return d
}

// PrefetchPolicy shapes how a launch's migration traffic moves.
// Implementations must be deterministic pure functions of the view; the
// node serializes calls.
type PrefetchPolicy interface {
	// Name returns the policy's registry name.
	Name() string
	// Decide returns the prefetch decision for one argument plan.
	Decide(view PlanView) PrefetchDecision
}

// VictimView is the per-allocation view an EvictionPolicy orders victims
// by. Pinned allocations and the current launch's plan are never offered
// as victims — the node enforces that invariant, not the policy.
type VictimView struct {
	Alloc    AllocID
	LastUse  sim.VirtualTime
	Resident int64
	Dirty    int64
	Hist     *AllocHistory
}

// EvictionPolicy controls what leaves device memory and what a launch
// keeps behind.
type EvictionPolicy interface {
	// Name returns the policy's registry name.
	Name() string
	// Retention scales the residency share a plan argument keeps after
	// its launch, in [0,1]. 1 reproduces the proportional-share default;
	// lower values self-evict behind the access front, freeing capacity
	// for allocations that will actually re-hit it.
	Retention(view PlanView, regime Regime) float64
	// Less orders eviction victims: pages of a are evicted before pages
	// of b. Must be a strict weak ordering; ties on every signal should
	// fall back to VictimView.Alloc for determinism.
	Less(a, b VictimView) bool
}

// clampRetention keeps policy output in [0,1].
func clampRetention(r float64) float64 {
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// ---- prefetch policies ----------------------------------------------------

// eagerPrefetch is the baseline: pure demand paging, static thresholds —
// bit-compatible with the pre-policy simulator.
type eagerPrefetch struct{}

func (eagerPrefetch) Name() string { return "eager" }

func (eagerPrefetch) Decide(PlanView) PrefetchDecision {
	return PrefetchDecision{BulkFraction: 0, ThresholdScale: 1}
}

// stridePrefetch runs ahead of dense access fronts: sequential and
// strided arguments have most of their miss traffic moved by coalesced
// prefetch overlapping compute, and tolerate deeper oversubscription
// before fault batching collapses (the cliff shift). Random access gets
// no speculation — prefetching it would waste fault-path bandwidth.
type stridePrefetch struct{}

func (stridePrefetch) Name() string { return "stride" }

func (stridePrefetch) Decide(v PlanView) PrefetchDecision {
	var d PrefetchDecision
	switch v.Pattern {
	case memmodel.Sequential:
		d = PrefetchDecision{BulkFraction: 0.9, ThresholdScale: 1.5}
	case memmodel.Strided:
		d = PrefetchDecision{BulkFraction: 0.75, ThresholdScale: 1.35}
	case memmodel.Broadcast:
		d = PrefetchDecision{BulkFraction: 0.3, ThresholdScale: 1}
	default: // Random
		return PrefetchDecision{BulkFraction: 0, ThresholdScale: 1}
	}
	// The prefetcher locks onto the stride after observing a pass; the
	// first launch of an allocation still pays mostly demand faults.
	if v.Hist == nil || v.Hist.Len() == 0 {
		d.BulkFraction *= 0.5
	}
	return d
}

// adaptivePrefetch is history-driven: it speculates in proportion to the
// dense share of the allocation's observed traffic, ignoring the static
// descriptor until the ring has evidence. An allocation that keeps being
// swept earns deep prefetch; one that keeps being walked randomly stays
// on demand paging.
type adaptivePrefetch struct{}

func (adaptivePrefetch) Name() string { return "adaptive" }

func (adaptivePrefetch) Decide(v PlanView) PrefetchDecision {
	if v.Hist == nil || v.Hist.Len() == 0 {
		return PrefetchDecision{BulkFraction: 0, ThresholdScale: 1}
	}
	ds := v.Hist.DenseShare()
	return PrefetchDecision{BulkFraction: 0.9 * ds, ThresholdScale: 1 + 0.5*ds}
}

// ---- eviction policies ----------------------------------------------------

// lruEviction is the baseline: least-recently-used victim ordering, full
// proportional-share retention — bit-compatible with the pre-policy
// simulator.
type lruEviction struct{}

func (lruEviction) Name() string { return "lru" }

func (lruEviction) Retention(PlanView, Regime) float64 { return 1 }

func (lruEviction) Less(a, b VictimView) bool {
	if a.LastUse != b.LastUse {
		return a.LastUse < b.LastUse
	}
	return a.Alloc < b.Alloc
}

// streamEviction self-evicts behind dense access fronts: a single-pass
// sweep's pages are dead the moment the front passes them, so retaining
// them only poisons the cache for allocations with actual reuse. Victim
// ordering prefers allocations whose history is sweep-dominated.
type streamEviction struct{}

func (streamEviction) Name() string { return "stream" }

func (streamEviction) Retention(v PlanView, regime Regime) float64 {
	if regime == Resident {
		return 1
	}
	if (v.Pattern == memmodel.Sequential || v.Pattern == memmodel.Strided) && v.Passes <= 1 {
		return 0.25 // keep only the tail window behind the front
	}
	return 1
}

func (streamEviction) Less(a, b VictimView) bool {
	as, bs := denseShareOf(a.Hist), denseShareOf(b.Hist)
	if as != bs {
		return as > bs // sweep-dominated allocations evict first
	}
	if a.LastUse != b.LastUse {
		return a.LastUse < b.LastUse
	}
	return a.Alloc < b.Alloc
}

// workingSetEviction keeps hot random-access working sets pinned: victim
// ordering evicts the least-frequently-launched allocations first, and
// cycling sweeps under pressure give up half their share instead of
// poisoning the cache of allocations that re-hit their pages.
type workingSetEviction struct{}

func (workingSetEviction) Name() string { return "working-set" }

func (workingSetEviction) Retention(v PlanView, regime Regime) float64 {
	if regime == Resident || v.Pattern == memmodel.Random {
		return 1 // the hot set stays
	}
	return 0.5
}

func (workingSetEviction) Less(a, b VictimView) bool {
	af, bf := launchesOf(a.Hist), launchesOf(b.Hist)
	if af != bf {
		return af < bf // cold allocations evict first
	}
	if a.LastUse != b.LastUse {
		return a.LastUse < b.LastUse
	}
	return a.Alloc < b.Alloc
}

func denseShareOf(h *AllocHistory) float64 {
	if h == nil {
		return 0
	}
	return h.DenseShare()
}

func launchesOf(h *AllocHistory) int64 {
	if h == nil {
		return 0
	}
	return h.Launches()
}

// ---- registry --------------------------------------------------------------

// NewPrefetchPolicy constructs a prefetch policy by name. The empty name
// is the baseline.
func NewPrefetchPolicy(name string) (PrefetchPolicy, error) {
	switch name {
	case "", "eager":
		return eagerPrefetch{}, nil
	case "stride":
		return stridePrefetch{}, nil
	case "adaptive":
		return adaptivePrefetch{}, nil
	}
	return nil, fmt.Errorf("%w: %q (have %s)",
		ErrUnknownPrefetchPolicy, name, strings.Join(PrefetchPolicyNames(), ", "))
}

// NewEvictionPolicy constructs an eviction policy by name. The empty
// name is the baseline.
func NewEvictionPolicy(name string) (EvictionPolicy, error) {
	switch name {
	case "", "lru":
		return lruEviction{}, nil
	case "stream":
		return streamEviction{}, nil
	case "working-set", "ws":
		return workingSetEviction{}, nil
	}
	return nil, fmt.Errorf("%w: %q (have %s)",
		ErrUnknownEvictionPolicy, name, strings.Join(EvictionPolicyNames(), ", "))
}

// PrefetchPolicyNames lists the available prefetch policies.
func PrefetchPolicyNames() []string {
	names := []string{"eager", "stride", "adaptive"}
	sort.Strings(names)
	return names
}

// EvictionPolicyNames lists the available eviction policies.
func EvictionPolicyNames() []string {
	names := []string{"lru", "stream", "working-set"}
	sort.Strings(names)
	return names
}
