package gpusim

import (
	"fmt"

	"grout/internal/memmodel"
	"grout/internal/sim"
)

// Device is one simulated GPU: stream timelines, copy engines and resident
// page accounting.
type Device struct {
	spec  DeviceSpec
	index int
	// streams are the CUDA streams created on this device. Stream 0 is
	// the default stream, always present.
	streams []*sim.Timeline
	// h2d and d2h are the two copy engines (as on Volta).
	h2d *sim.Timeline
	d2h *sim.Timeline
	// faultEngine serializes all demand-paged migration traffic of the
	// device: concurrent kernels on different streams share one fault
	// path (GPU MMU + PCIe link), so their migration phases queue here.
	faultEngine *sim.Timeline
	// residentPages counts pages currently resident across all allocs.
	residentPages int64
	// stats
	pagesMigratedIn  int64
	pagesEvicted     int64
	pagesWrittenBack int64
	kernelsRun       int64
}

func newDevice(spec DeviceSpec, index int) *Device {
	d := &Device{
		spec:        spec,
		index:       index,
		h2d:         sim.NewTimeline(spec.Name + "/h2d"),
		d2h:         sim.NewTimeline(spec.Name + "/d2h"),
		faultEngine: sim.NewTimeline(spec.Name + "/fault-engine"),
	}
	d.streams = []*sim.Timeline{sim.NewTimeline(spec.Name + "/stream0")}
	return d
}

// Spec returns the device's static specification.
func (d *Device) Spec() DeviceSpec { return d.spec }

// Index returns the device's position within its node.
func (d *Device) Index() int { return d.index }

// CapacityPages reports device memory capacity in pages.
func (d *Device) CapacityPages() int64 { return d.spec.Memory.Pages() }

// FreePages reports currently unoccupied pages.
func (d *Device) FreePages() int64 { return d.CapacityPages() - d.residentPages }

// ResidentPages reports currently occupied pages.
func (d *Device) ResidentPages() int64 { return d.residentPages }

// NewStream creates an additional CUDA stream and returns its index.
func (d *Device) NewStream() int {
	idx := len(d.streams)
	d.streams = append(d.streams, sim.NewTimeline(fmt.Sprintf("%s/stream%d", d.spec.Name, idx)))
	return idx
}

// StreamCount reports how many streams exist on the device.
func (d *Device) StreamCount() int { return len(d.streams) }

// Stream returns the timeline for stream idx; it panics on a bad index,
// which indicates a scheduler bug.
func (d *Device) Stream(idx int) *sim.Timeline {
	if idx < 0 || idx >= len(d.streams) {
		panic(fmt.Sprintf("gpusim: %s has no stream %d", d.spec.Name, idx))
	}
	return d.streams[idx]
}

// FreeAt reports the earliest time at which any stream on the device is
// free, and the index of that stream. Used by round-robin/least-busy
// stream policies in the intra-node scheduler.
func (d *Device) FreeAt() (sim.VirtualTime, int) {
	best, bestIdx := d.streams[0].FreeAt(), 0
	for i := 1; i < len(d.streams); i++ {
		if f := d.streams[i].FreeAt(); f < best {
			best, bestIdx = f, i
		}
	}
	return best, bestIdx
}

// Stats is a snapshot of per-device counters.
type Stats struct {
	PagesMigratedIn  int64
	PagesEvicted     int64
	PagesWrittenBack int64
	KernelsRun       int64
	ResidentPages    int64
}

// Stats returns a snapshot of the device's counters.
func (d *Device) Stats() Stats {
	return Stats{
		PagesMigratedIn:  d.pagesMigratedIn,
		PagesEvicted:     d.pagesEvicted,
		PagesWrittenBack: d.pagesWrittenBack,
		KernelsRun:       d.kernelsRun,
		ResidentPages:    d.residentPages,
	}
}

// bytesOf converts pages to bytes.
func bytesOf(pages int64) memmodel.Bytes { return memmodel.Bytes(pages) * memmodel.PageSize }

// secondsToVT converts a floating-point duration in seconds to VirtualTime.
func secondsToVT(s float64) sim.VirtualTime {
	if s < 0 {
		s = 0
	}
	return sim.VirtualTime(s * 1e9)
}

// xferTime computes the virtual time to move n bytes at bw bytes/second.
func xferTime(n memmodel.Bytes, bw float64) sim.VirtualTime {
	if n <= 0 || bw <= 0 {
		return 0
	}
	return secondsToVT(float64(n) / bw)
}
